// Quickstart: load a TPC-H-shaped table, run the same analytical query
// under all three execution models, and print what the hardware saw.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "hwstar/common/timer.h"
#include "hwstar/engine/planner.h"
#include "hwstar/hw/machine_model.h"
#include "hwstar/hw/topology.h"
#include "hwstar/storage/column_store.h"
#include "hwstar/workload/tpch_like.h"

int main() {
  using namespace hwstar;

  // 1. Discover the machine we are running on: the paper's first demand is
  //    that software knows its hardware.
  hw::CpuTopology topo = hw::DiscoverTopology();
  std::printf("host: %s\n", topo.ToString().c_str());

  // 2. Generate a lineitem table (~600K rows at SF 0.1) and materialize it
  //    column-wise.
  workload::TpchConfig cfg;
  cfg.scale_factor = 0.1;
  auto lineitem = workload::MakeLineitem(cfg);
  auto store_result = storage::ColumnStore::FromTable(*lineitem);
  if (!store_result.ok()) {
    std::printf("error: %s\n", store_result.status().ToString().c_str());
    return 1;
  }
  const storage::ColumnStore& store = store_result.value();
  std::printf("lineitem: %llu rows, %.1f MB columnar\n",
              static_cast<unsigned long long>(store.num_rows()),
              static_cast<double>(store.DataBytes()) / (1 << 20));

  // 3. A TPC-H Q6-shaped query: revenue from discounted, small-quantity
  //    line items shipped in year 2 (prices are fixed-point cents).
  using namespace hwstar::engine;
  Query q;
  q.input = &store;
  q.filter = And(And(Ge(Col(6, "l_shipdate"), Lit(365)),
                     Lt(Col(6, "l_shipdate"), Lit(730))),
                 And(Ge(Col(4, "l_discount"), Lit(5)), Lt(Col(2, "l_quantity"), Lit(24))));
  q.aggregate = Mul(Col(3, "l_extendedprice"), Col(4, "l_discount"));
  std::printf("query: %s\n\n", q.ToString().c_str());

  // 4. Execute under each model and compare.
  for (auto model : {ExecutionModel::kVolcano, ExecutionModel::kVectorized,
                     ExecutionModel::kFused}) {
    ExecuteOptions opts;
    opts.model = model;
    WallTimer timer;
    QueryResult r = Execute(q, opts);
    double ms = timer.ElapsedSeconds() * 1e3;
    std::printf("%-11s sum=%lld rows=%llu  %8.2f ms  (%.1f Mrows/s)\n",
                ExecutionModelName(model), static_cast<long long>(r.sum),
                static_cast<unsigned long long>(r.rows_passed), ms,
                static_cast<double>(store.num_rows()) / 1e6 / (ms / 1e3));
  }

  // 5. Let the planner pick for this machine.
  hw::MachineModel machine = hw::MachineModel::FromHost(topo);
  ExecuteOptions chosen = ChooseOptions(q, machine);
  std::printf("\nplanner chose: %s\n", ExecutionModelName(chosen.model));
  return 0;
}
