// Join tuning advisor: demonstrates why "one join implementation" is no
// longer enough. For a sweep of build sizes it runs the oblivious
// no-partitioning join and the cache-sized radix join, prints who wins,
// and shows that the winner flips exactly where the build side outgrows
// the last-level cache -- the paper's core claim made executable.

#include <cstdio>

#include "hwstar/common/timer.h"
#include "hwstar/hw/topology.h"
#include "hwstar/ops/join_nop.h"
#include "hwstar/ops/join_radix.h"
#include "hwstar/perf/harness.h"
#include "hwstar/perf/report.h"
#include "hwstar/workload/distributions.h"

int main() {
  using namespace hwstar;

  auto topo = hw::DiscoverTopology();
  uint64_t llc = topo.CacheSizeBytes(3);
  if (llc == 0) llc = topo.CacheSizeBytes(2);
  if (llc == 0) llc = 8 << 20;
  std::printf("host: %s (LLC = %llu KB)\n\n", topo.ToString().c_str(),
              static_cast<unsigned long long>(llc >> 10));

  perf::ReportTable table(
      "join advisor: NPO vs radix (probe = 4x build, uniform keys)",
      {"build_tuples", "build_mb", "npo_ms", "radix_ms", "radix_bits",
       "winner"});

  for (uint32_t log2n = 14; log2n <= 22; log2n += 2) {
    const uint64_t n = uint64_t{1} << log2n;
    auto build = workload::MakeBuildRelation(n, log2n);
    auto probe = workload::MakeProbeRelation(4 * n, n, 0.0, log2n + 50);

    auto npo = perf::MeasureRepeated(
        [&] {
          auto r = ops::NoPartitionHashJoin(build, probe);
          if (r.matches != probe.size()) std::abort();
        },
        3, 1);

    ops::RadixJoinOptions opts;
    opts.radix_bits = ops::RecommendRadixBits(n, llc);
    auto radix = perf::MeasureRepeated(
        [&] {
          auto r = ops::RadixHashJoin(build, probe, opts);
          if (r.matches != probe.size()) std::abort();
        },
        3, 1);

    const double npo_ms = npo.median_seconds * 1e3;
    const double radix_ms = radix.median_seconds * 1e3;
    table.AddRow({std::to_string(n),
                  perf::ReportTable::Num(static_cast<double>(16 * n) / (1 << 20)),
                  perf::ReportTable::Num(npo_ms),
                  perf::ReportTable::Num(radix_ms),
                  std::to_string(opts.radix_bits),
                  npo_ms <= radix_ms ? "npo" : "radix"});
  }
  table.Print();
  std::printf(
      "\nReading the table: while 48B/tuple x build fits the LLC the\n"
      "oblivious join holds its own; past that, partitioning pays.\n");
  return 0;
}
