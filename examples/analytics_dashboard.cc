// Analytics dashboard scenario: the OLAP workload the paper's introduction
// motivates. Orders and lineitems are generated, a revenue-by-returnflag
// report is computed with grouped aggregation, the orders x lineitem join
// is sized and executed with the hardware-conscious radix join, and a
// compressed column is scanned without decompression.

#include <cstdio>

#include "hwstar/common/timer.h"
#include "hwstar/hw/topology.h"
#include "hwstar/ops/aggregation.h"
#include "hwstar/ops/join_radix.h"
#include "hwstar/ops/relation.h"
#include "hwstar/perf/report.h"
#include "hwstar/storage/column_store.h"
#include "hwstar/storage/compression.h"
#include "hwstar/workload/tpch_like.h"

int main() {
  using namespace hwstar;

  workload::TpchConfig cfg;
  cfg.scale_factor = 0.05;  // 300K lineitems, 75K orders
  auto lineitem = workload::MakeLineitem(cfg);
  auto orders = workload::MakeOrders(cfg);
  auto li = storage::ColumnStore::FromTable(*lineitem).value();
  std::printf("loaded lineitem=%llu orders=%llu rows\n\n",
              static_cast<unsigned long long>(lineitem->num_rows()),
              static_cast<unsigned long long>(orders->num_rows()));

  // Report 1: revenue by return flag (grouped aggregation, TPC-H Q1
  // shape). Keys are the flag column; values are extendedprice.
  {
    const auto& flags = li.IntColumn(7);
    const auto& price = li.IntColumn(3);
    std::vector<uint64_t> keys(flags.begin(), flags.end());
    WallTimer timer;
    ops::HashAggregateOptions opts;
    auto groups =
        ops::HashAggregate(keys, std::span<const int64_t>(price), opts);
    perf::ReportTable table("revenue by l_returnflag",
                            {"flag", "revenue_cents", "lineitems"});
    for (const auto& g : groups) {
      table.AddRow({std::to_string(g.key), std::to_string(g.sum),
                    std::to_string(g.count)});
    }
    table.Print();
    std::printf("aggregated in %.2f ms\n\n", timer.ElapsedSeconds() * 1e3);
  }

  // Report 2: join orders with lineitems (foreign-key join). The advisor
  // sizes the radix fan-out from the discovered LLC.
  {
    ops::Relation build;  // orders: key = o_orderkey, payload = row id
    const uint64_t n_orders = orders->num_rows();
    build.Reserve(n_orders);
    for (uint64_t r = 0; r < n_orders; ++r) {
      build.Append(static_cast<uint64_t>(orders->column(0).GetInt64(r)), r);
    }
    ops::Relation probe;  // lineitems keyed by l_orderkey
    const auto& orderkeys = li.IntColumn(0);
    probe.Reserve(orderkeys.size());
    for (uint64_t r = 0; r < orderkeys.size(); ++r) {
      probe.Append(static_cast<uint64_t>(orderkeys[r]), r);
    }

    auto topo = hw::DiscoverTopology();
    uint64_t llc = topo.CacheSizeBytes(3);
    if (llc == 0) llc = 8 << 20;
    ops::RadixJoinOptions opts;
    opts.radix_bits = ops::RecommendRadixBits(build.size(), llc);
    WallTimer timer;
    auto result = ops::RadixHashJoin(build, probe, opts);
    std::printf(
        "orders JOIN lineitem: %llu matches, radix_bits=%u, %.2f ms\n\n",
        static_cast<unsigned long long>(result.matches), opts.radix_bits,
        timer.ElapsedSeconds() * 1e3);
  }

  // Report 3: operate on compressed data. The discount column has 11
  // distinct values; RLE on the sorted column sums without decoding.
  {
    const auto& discount = li.IntColumn(4);
    std::vector<int64_t> sorted(discount.begin(), discount.end());
    std::sort(sorted.begin(), sorted.end());
    auto rle = storage::RleEncode(sorted);
    std::printf(
        "discount column: raw %.1f MB -> RLE %.2f KB (%zu runs); "
        "RleSum=%lld\n",
        static_cast<double>(sorted.size() * 8) / (1 << 20),
        static_cast<double>(rle.EncodedBytes()) / 1024.0, rle.values.size(),
        static_cast<long long>(storage::RleSum(rle)));
  }
  return 0;
}
