// OLTP + tiered storage scenario: an embedded key-value workload in the
// world the keynote describes -- an ART-indexed, range-sharded store for
// the hot path, and an explicit hot/cold placement decision against a
// flash tier, because "just let the LRU handle it" stops working the
// moment scans enter the mix.

#include <cstdio>

#include "hwstar/common/timer.h"
#include "hwstar/kv/kv_store.h"
#include "hwstar/kv/tiered_store.h"
#include "hwstar/perf/report.h"
#include "hwstar/workload/distributions.h"
#include "hwstar/workload/ycsb_like.h"

int main() {
  using namespace hwstar;

  // Part 1: raw point-op throughput, ART vs B+-tree index.
  {
    perf::ReportTable table("KV point ops (256K records, 512K ops, Zipf .6)",
                            {"index", "ops_per_sec"});
    for (auto index : {kv::IndexKind::kArt, kv::IndexKind::kBTree}) {
      kv::KvOptions opts;
      opts.index = index;
      kv::KvStore store(opts);
      for (uint64_t k = 0; k < (1 << 18); ++k) store.Put(k, k);
      workload::YcsbConfig cfg;
      cfg.record_count = 1 << 18;
      cfg.operation_count = 1 << 19;
      auto ops = workload::MakeYcsbWorkload(cfg);
      WallTimer timer;
      uint64_t sink = 0;
      for (const auto& op : ops) {
        if (op.op == workload::YcsbOp::kRead) {
          sink += store.Get(op.key).value_or(0);
        } else {
          store.Put(op.key, sink);
        }
      }
      const double rate =
          static_cast<double>(ops.size()) / timer.ElapsedSeconds();
      table.AddRow({index == kv::IndexKind::kArt ? "art" : "btree",
                    perf::ReportTable::Num(rate)});
    }
    table.Print();
  }

  // Part 2: hot/cold placement against flash. Zipf traffic plus periodic
  // table scans -- the pattern that poisons LRU.
  {
    perf::ReportTable table(
        "tiering under scan pollution (64K records, 10% in DRAM)",
        {"policy", "hit_rate", "avg_us", "flash_writes"});
    const uint64_t records = 1 << 16;
    auto zipf = workload::ZipfKeys(1 << 19, records, 0.8, 9);
    for (auto policy : {kv::TierPolicy::kLru, kv::TierPolicy::kExpSmoothing}) {
      kv::TieredKvStore::Options opts;
      opts.memory_capacity = records / 10;
      opts.policy = policy;
      opts.es_alpha = 1e-6;
      kv::TieredKvStore store(opts);
      for (uint64_t k = 0; k < records; ++k) store.Load(k, k);
      uint64_t now = 0;
      for (uint64_t i = 0; i < zipf.size(); ++i) {
        (void)store.Read(zipf[i], ++now);
        if ((i + 1) % (64 * 1024) == 0) {
          for (uint64_t k = 0; k < records; ++k) (void)store.Read(k, ++now);
          store.Reclassify(now);
        }
        if (i + 1 == zipf.size() / 4) store.ResetStats();
      }
      table.AddRow({policy == kv::TierPolicy::kLru ? "lru" : "exp-smooth",
                    perf::ReportTable::Num(store.stats().hit_rate()),
                    perf::ReportTable::Num(store.stats().avg_latency_us()),
                    perf::ReportTable::Num(store.flash().writes())});
    }
    table.Print();
    std::printf(
        "\nReading the table: the classifier keeps the true hot set\n"
        "resident through scans; LRU caches whatever passed by last.\n");
  }
  return 0;
}
