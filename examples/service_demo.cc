// Service demo: the hwstar::svc front end serving a mixed OLTP/analytics
// workload end to end -- typed requests with tenants, priorities and
// deadlines, bounded admission, batched execution, and a phase-by-phase
// latency report at the end.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/service_demo

#include <chrono>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "hwstar/engine/expression.h"
#include "hwstar/engine/join_query.h"
#include "hwstar/kv/kv_store.h"
#include "hwstar/storage/column_store.h"
#include "hwstar/svc/service.h"
#include "hwstar/workload/tpch_like.h"

int main() {
  using namespace hwstar;
  using namespace hwstar::engine;

  // 1. Backends: an OLTP key-value store and a TPC-H-shaped column store.
  kv::KvOptions kopts;
  kopts.shards = 8;
  kv::KvStore store(kopts);
  const uint64_t key_stride = ~uint64_t{0} / (1 << 16);
  for (uint64_t i = 0; i < (1 << 16); ++i) store.Put(i * key_stride, i * 100);

  workload::TpchConfig cfg;
  cfg.scale_factor = 0.05;
  auto lineitem = workload::MakeLineitem(cfg);
  auto orders = workload::MakeOrders(cfg);
  auto li = std::move(storage::ColumnStore::FromTable(*lineitem)).value();
  auto od = std::move(storage::ColumnStore::FromTable(*orders)).value();

  // 2. The service: 2 workers, bounded admission (depth 256, per-tenant
  //    quota 64), default step-down overload policy.
  svc::ServiceOptions opts;
  opts.worker_threads = 2;
  opts.admission.max_queue_depth = 256;
  opts.admission.per_tenant_quota = 64;
  svc::Service service(opts, &store);

  // 3. Point gets -- tenant 1, normal priority, 5 ms deadline. The client
  //    paces its burst under the tenant quota (a tight 1000-deep burst
  //    would be shed -- that regime is bench_e14's subject).
  std::vector<std::future<svc::Response>> gets;
  for (uint64_t i = 0; i < 1000; ++i) {
    svc::Request r = svc::Request::PointGet((i * 31 % (1 << 16)) * key_stride,
                                            /*tenant=*/1);
    r.deadline_nanos = svc::ServiceNow() + 5'000'000;
    gets.push_back(service.Submit(std::move(r)));
    if (i % 32 == 31) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }

  // 4. A range scan -- tenant 2, low priority (first to shed under load).
  auto scan = service.Submit(svc::Request::Scan(
      0, 1000 * key_stride, /*limit=*/16, /*tenant=*/2, svc::Priority::kLow));

  // 5. An analytic aggregate and a join -- tenant 3, high priority.
  auto agg = service.Submit(svc::Request::Aggregate(
      &li, Lt(Col(2, "l_quantity"), Lit(24)),
      Mul(Col(3, "l_extendedprice"), Col(4, "l_discount")), /*tenant=*/3,
      svc::Priority::kHigh));

  JoinQuery jq;
  jq.build = &od;
  jq.build_key = 0;  // o_orderkey
  jq.probe = &li;
  jq.probe_key = 0;  // l_orderkey
  jq.aggregate = Col(3, "l_extendedprice");
  auto join = service.Submit(
      svc::Request::Join(&jq, /*tenant=*/3, svc::Priority::kHigh));

  // 6. Collect.
  uint64_t hits = 0;
  for (auto& f : gets) hits += f.get().status.ok() ? 1 : 0;
  std::printf("point gets : %llu/1000 ok\n",
              static_cast<unsigned long long>(hits));
  svc::Response s = scan.get();
  std::printf("scan       : %s, %zu rows%s\n", s.status.ToString().c_str(),
              s.rows.size(), s.degraded ? " (degraded)" : "");
  svc::Response a = agg.get();
  std::printf("aggregate  : %s, rows=%llu sum=%lld\n",
              a.status.ToString().c_str(),
              static_cast<unsigned long long>(a.agg_rows),
              static_cast<long long>(a.agg_sum));
  svc::Response j = join.get();
  std::printf("join       : %s, matches=%llu sum=%lld\n",
              j.status.ToString().c_str(),
              static_cast<unsigned long long>(j.join.matches),
              static_cast<long long>(j.join.sum));

  // 7. The serving-side ledger: where every request spent its life.
  service.Drain();
  std::printf("\n");
  service.PrintReport("service_demo: request lifecycle");
  return 0;
}
