// What-if machine explorer: replays one workload's memory access pattern
// against different simulated machines -- the deterministic what-if
// analysis ("what would this code do on a box with half the cache? on a
// 4-node NUMA machine? without a prefetcher?") that the paper's
// performance-engineering discipline requires, without owning the hardware.

#include <cstdio>

#include "hwstar/common/random.h"
#include "hwstar/hw/machine_model.h"
#include "hwstar/perf/report.h"
#include "hwstar/sim/energy_model.h"
#include "hwstar/sim/hierarchy.h"
#include "hwstar/sim/memory_trace.h"

int main() {
  using namespace hwstar;

  // Record one workload trace: a 75/25 mix of sequential scan and random
  // probes over a 64MB region, the shape of a probe-heavy hash join.
  sim::MemoryTrace trace(1 << 21);
  {
    Xoshiro256 rng(2013);
    const uint64_t base = 1ull << 40;
    const uint64_t bytes = 64ull << 20;
    uint64_t seq = 0;
    for (uint64_t i = 0; i < 1'000'000; ++i) {
      if (i % 4 != 3) {
        trace.Record(base + (seq % bytes), false);
        seq += 64;
      } else {
        trace.Record(base + rng.NextBounded(bytes), false);
      }
    }
  }
  std::printf("recorded %zu accesses (75%% sequential / 25%% random over "
              "64MB)\n\n",
              trace.size());

  struct Config {
    const char* name;
    hw::MachineModel machine;
    sim::MemoryHierarchy::Options options;
  };
  std::vector<Config> configs;
  configs.push_back({"server2013", hw::MachineModel::Server2013(), {}});
  configs.push_back({"desktop", hw::MachineModel::Desktop(), {}});
  configs.push_back({"manycore(noL3)", hw::MachineModel::ManyCore(), {}});
  {
    hw::MachineModel half = hw::MachineModel::Server2013();
    half.caches[2].size_bytes /= 4;
    half.name = "server2013/L3:4";
    configs.push_back({"server2013,L3/4", half, {}});
  }
  {
    sim::MemoryHierarchy::Options nopf;
    nopf.enable_prefetcher = false;
    configs.push_back(
        {"server2013,no-prefetch", hw::MachineModel::Server2013(), nopf});
  }

  perf::ReportTable table(
      "what-if: same trace, different machines",
      {"machine", "cycles_per_access", "llc_miss_ratio", "tlb_miss_ratio",
       "energy_uj"});
  for (auto& cfg : configs) {
    sim::MemoryHierarchy hier(cfg.machine, cfg.options);
    hier.Replay(trace);
    auto stats = hier.Stats();
    sim::EnergyModel energy(cfg.machine);
    const auto& llc = stats.levels.back();
    table.AddRow(
        {cfg.name, perf::ReportTable::Num(stats.cycles_per_access()),
         perf::ReportTable::Num(llc.miss_ratio()),
         perf::ReportTable::Num(stats.tlb.miss_ratio()),
         perf::ReportTable::Num(
             energy.EnergyPicojoules(stats.energy_events) * 1e-6)});
  }
  table.Print();

  std::printf(
      "\nReading the table: shrinking the L3 or dropping the prefetcher\n"
      "raises cycles/access on the *same* code -- software that was 'fast'\n"
      "on one machine is slow on the next, which is the keynote's thesis.\n");
  return 0;
}
