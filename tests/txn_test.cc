#include "hwstar/txn/transaction.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "hwstar/dur/durable_kv_store.h"
#include "hwstar/dur/file_backend.h"

namespace hwstar::txn {
namespace {

using dur::DurableKvOptions;
using dur::DurableKvStore;
using dur::InMemoryFileBackend;

DurableKvOptions FastOptions(uint32_t log_shards = 1) {
  DurableKvOptions o;
  o.log_shards = log_shards;
  o.log.fsync_interval_us = 5;
  return o;
}

TEST(TxnTest, ReadModifyWriteCommits) {
  InMemoryFileBackend fs;
  auto db = DurableKvStore::Open(&fs, "db", FastOptions());
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db.value()->Put(1, 100).ok());

  TxnManager mgr(db.value().get());
  Transaction tx = mgr.Begin();
  uint64_t v = 0;
  bool found = false;
  ASSERT_TRUE(tx.Get(1, &v, &found).ok());
  ASSERT_TRUE(found);
  EXPECT_EQ(v, 100u);
  tx.Put(1, v + 1);
  tx.Put(2, 200);
  ASSERT_TRUE(tx.Commit().ok());

  EXPECT_EQ(db.value()->kv()->Get(1).value(), 101u);
  EXPECT_EQ(db.value()->kv()->Get(2).value(), 200u);
  const TxnStats stats = mgr.stats();
  EXPECT_EQ(stats.begun, 1u);
  EXPECT_EQ(stats.committed, 1u);
  EXPECT_EQ(stats.aborted(), 0u);
}

TEST(TxnTest, ReadYourOwnWritesAndDeletes) {
  InMemoryFileBackend fs;
  auto db = DurableKvStore::Open(&fs, "db", FastOptions());
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db.value()->Put(7, 70).ok());

  TxnManager mgr(db.value().get());
  Transaction tx = mgr.Begin();
  tx.Put(7, 71);
  uint64_t v = 0;
  bool found = false;
  ASSERT_TRUE(tx.Get(7, &v, &found).ok());
  EXPECT_TRUE(found);
  EXPECT_EQ(v, 71u);  // buffered write, not the store's 70

  tx.Delete(7);
  ASSERT_TRUE(tx.Get(7, &v, &found).ok());
  EXPECT_FALSE(found);  // buffered delete wins

  ASSERT_TRUE(tx.Commit().ok());
  EXPECT_FALSE(db.value()->kv()->Get(7).ok());
}

TEST(TxnTest, AbortInstallsNothing) {
  InMemoryFileBackend fs;
  auto db = DurableKvStore::Open(&fs, "db", FastOptions());
  ASSERT_TRUE(db.ok());

  TxnManager mgr(db.value().get());
  Transaction tx = mgr.Begin();
  tx.Put(1, 10);
  tx.Put(2, 20);
  tx.Abort();
  EXPECT_EQ(db.value()->kv()->size(), 0u);
  EXPECT_EQ(mgr.stats().committed, 0u);
}

TEST(TxnTest, WriteWriteConflictAborts) {
  InMemoryFileBackend fs;
  auto db = DurableKvStore::Open(&fs, "db", FastOptions());
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db.value()->Put(1, 0).ok());

  TxnManager mgr(db.value().get());
  // tx reads key 1, then a rival commits a write to it.
  Transaction tx = mgr.Begin();
  uint64_t v = 0;
  bool found = false;
  ASSERT_TRUE(tx.Get(1, &v, &found).ok());
  tx.Put(1, v + 1);

  Transaction rival = mgr.Begin();
  ASSERT_TRUE(rival.Get(1, &v, &found).ok());
  rival.Put(1, v + 100);
  ASSERT_TRUE(rival.Commit().ok());

  // tx's read of key 1 is stale: validation must fail, nothing installed.
  const Status st = tx.Commit();
  EXPECT_EQ(st.code(), StatusCode::kAborted);
  EXPECT_EQ(db.value()->kv()->Get(1).value(), 100u);
  const TxnStats stats = mgr.stats();
  EXPECT_EQ(stats.committed, 1u);
  EXPECT_EQ(stats.aborted_validation, 1u);
}

TEST(TxnTest, ReadOnlyValidationCatchesConcurrentWrite) {
  InMemoryFileBackend fs;
  auto db = DurableKvStore::Open(&fs, "db", FastOptions());
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db.value()->Put(1, 1).ok());
  ASSERT_TRUE(db.value()->Put(2, 2).ok());

  TxnManager mgr(db.value().get());

  // Clean read-only snapshot commits without touching the WAL.
  const uint64_t wal_records_before = db.value()->log_stats().records;
  Transaction clean = mgr.Begin();
  uint64_t v = 0;
  bool found = false;
  ASSERT_TRUE(clean.Get(1, &v, &found).ok());
  ASSERT_TRUE(clean.Commit().ok());
  EXPECT_EQ(db.value()->log_stats().records, wal_records_before);

  // A read-only txn whose snapshot was invalidated must abort.
  Transaction stale = mgr.Begin();
  ASSERT_TRUE(stale.Get(2, &v, &found).ok());
  Transaction writer = mgr.Begin();
  writer.Put(2, 22);
  ASSERT_TRUE(writer.Commit().ok());
  EXPECT_EQ(stale.Commit().code(), StatusCode::kAborted);
}

TEST(TxnTest, RereadOfInvalidatedKeyDoomsTransaction) {
  InMemoryFileBackend fs;
  auto db = DurableKvStore::Open(&fs, "db", FastOptions());
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db.value()->Put(5, 50).ok());

  TxnManager mgr(db.value().get());
  Transaction tx = mgr.Begin();
  uint64_t v = 0;
  bool found = false;
  ASSERT_TRUE(tx.Get(5, &v, &found).ok());

  Transaction writer = mgr.Begin();
  writer.Put(5, 51);
  ASSERT_TRUE(writer.Commit().ok());

  // The stripe version moved between the two reads of the same key: the
  // snapshot is inconsistent and the transaction dooms itself.
  EXPECT_EQ(tx.Get(5, &v, &found).code(), StatusCode::kAborted);
  EXPECT_TRUE(tx.doomed());
  EXPECT_EQ(tx.Commit().code(), StatusCode::kAborted);
  EXPECT_EQ(mgr.stats().aborted_doomed, 1u);
}

TEST(TxnTest, ResetRearmsAfterAbort) {
  InMemoryFileBackend fs;
  auto db = DurableKvStore::Open(&fs, "db", FastOptions());
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db.value()->Put(1, 0).ok());

  TxnManager mgr(db.value().get());
  Transaction tx = mgr.Begin();
  uint64_t v = 0;
  bool found = false;
  ASSERT_TRUE(tx.Get(1, &v, &found).ok());
  tx.Put(1, v + 1);

  Transaction rival = mgr.Begin();
  rival.Put(1, 100);
  ASSERT_TRUE(rival.Commit().ok());

  ASSERT_EQ(tx.Commit().code(), StatusCode::kAborted);
  tx.Reset();
  ASSERT_TRUE(tx.Get(1, &v, &found).ok());
  EXPECT_EQ(v, 100u);
  tx.Put(1, v + 1);
  ASSERT_TRUE(tx.Commit().ok());
  EXPECT_EQ(db.value()->kv()->Get(1).value(), 101u);
}

TEST(TxnTest, CommittedTxnSurvivesReopen) {
  InMemoryFileBackend fs;
  DurableKvOptions opts = FastOptions(/*log_shards=*/2);
  {
    auto db = DurableKvStore::Open(&fs, "db", opts);
    ASSERT_TRUE(db.ok());
    TxnManager mgr(db.value().get());
    Transaction tx = mgr.Begin();
    // Keys in both halves of the keyspace: fragments span log shards,
    // the commit record lives in only one.
    tx.Put(1, 10);
    tx.Put(~uint64_t{0} - 1, 20);
    ASSERT_TRUE(tx.Commit().ok());
  }
  dur::RecoveryInfo info;
  auto db = DurableKvStore::Open(&fs, "db", opts, &info);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(info.txns_applied, 1u);
  EXPECT_EQ(info.txns_dropped, 0u);
  EXPECT_EQ(db.value()->kv()->Get(1).value(), 10u);
  EXPECT_EQ(db.value()->kv()->Get(~uint64_t{0} - 1).value(), 20u);

  // Txn ids never rewind across restarts.
  EXPECT_GT(db.value()->AllocateTxnId(), info.max_txn_id);
}

// N threads, each looping optimistic increments of a small hot key set
// with retry-on-abort: every committed increment must be present in the
// final sums (lost updates are exactly what OCC validation exists to
// prevent). Run under TSan via the sanitize label.
TEST(TxnTest, ConcurrentIncrementsNeverLoseUpdates) {
  InMemoryFileBackend fs;
  DurableKvOptions opts = FastOptions(/*log_shards=*/2);
  opts.kv.latch_free_reads = true;
  auto db = DurableKvStore::Open(&fs, "db", opts);
  ASSERT_TRUE(db.ok());

  constexpr uint64_t kKeys = 4;
  constexpr int kThreads = 4;
  constexpr int kIncrementsPerThread = 200;
  for (uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(db.value()->Put(k, 0).ok());
  }

  TxnManager mgr(db.value().get());
  std::atomic<uint64_t> committed_increments{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      uint64_t x = static_cast<uint64_t>(t) * 0x9e3779b97f4a7c15ULL + 1;
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const uint64_t key = x % kKeys;
        for (;;) {
          Transaction tx = mgr.Begin();
          uint64_t v = 0;
          bool found = false;
          if (!tx.Get(key, &v, &found).ok()) {
            tx.Abort();
            continue;
          }
          tx.Put(key, v + 1);
          const Status st = tx.Commit();
          if (st.ok()) {
            committed_increments.fetch_add(1, std::memory_order_relaxed);
            break;
          }
          ASSERT_EQ(st.code(), StatusCode::kAborted);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  uint64_t sum = 0;
  for (uint64_t k = 0; k < kKeys; ++k) {
    sum += db.value()->kv()->Get(k).value();
  }
  EXPECT_EQ(sum, committed_increments.load());
  EXPECT_EQ(sum,
            static_cast<uint64_t>(kThreads) * kIncrementsPerThread);
  const TxnStats stats = mgr.stats();
  EXPECT_EQ(stats.committed, sum);
  // Explicit Abort() (after a doomed Get) is not a commit-time outcome,
  // so begun can exceed committed + aborted; never the other way.
  EXPECT_GE(stats.begun, stats.committed + stats.aborted());
}

}  // namespace
}  // namespace hwstar::txn
