// Cross-backend bit-identity for every hwstar::simd kernel: each vector
// backend the host supports must produce exactly the scalar backend's
// output on randomized inputs, odd tail lengths, empty inputs, and the
// all-hit / all-miss corners. The suite also pins the dispatch contract:
// ActiveBackend() is the tune::SimdBackend knob clamped to
// BestSupported(), so forcing the knob works on any host and forcing it
// above the host's capability degrades gracefully.

#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "hwstar/common/hash.h"
#include "hwstar/common/random.h"
#include "hwstar/simd/backend.h"
#include "hwstar/simd/kernels.h"
#include "hwstar/tune/tunable.h"

namespace hwstar::simd {
namespace {

// Lengths that exercise empty input, sub-lane sizes, exact lane/word
// multiples, and ragged tails for both the 2-lane and 4-lane backends.
const size_t kLengths[] = {0, 1, 2, 3, 4, 5, 7, 8, 15, 16,
                           63, 64, 65, 127, 128, 1000, 4097};

std::vector<Backend> SupportedBackends() {
  std::vector<Backend> backends;
  for (uint32_t b = 0; b <= static_cast<uint32_t>(BestSupported()); ++b) {
    backends.push_back(static_cast<Backend>(b));
  }
  return backends;
}

/// Saves the tune::SimdBackend knob and restores it on scope exit so
/// forced-backend tests cannot leak into the rest of the binary.
class KnobGuard {
 public:
  KnobGuard() : saved_(tune::SimdBackend().Get()) {}
  ~KnobGuard() { tune::SimdBackend().Set(saved_); }

 private:
  uint64_t saved_;
};

TEST(SimdBackendTest, CapabilityOrderAndNames) {
  EXPECT_LT(Backend::kScalar, Backend::kSse42);
  EXPECT_LT(Backend::kSse42, Backend::kAvx2);
  EXPECT_STREQ(BackendName(Backend::kScalar), "scalar");
  EXPECT_STREQ(BackendName(Backend::kSse42), "sse42");
  EXPECT_STREQ(BackendName(Backend::kAvx2), "avx2");
  EXPECT_EQ(LaneCount(Backend::kScalar), 1u);
  EXPECT_EQ(LaneCount(Backend::kSse42), 2u);
  EXPECT_EQ(LaneCount(Backend::kAvx2), 4u);
}

TEST(SimdBackendTest, ActiveIsKnobClampedToBestSupported) {
  KnobGuard guard;
  const Backend best = BestSupported();

  // Forcing scalar always yields scalar: the vector paths must be
  // optional on every host (this is the knob the forced-portable CI leg
  // and the calibrator's trial loop rely on).
  tune::SimdBackend().Set(0);
  EXPECT_EQ(ActiveBackend(), Backend::kScalar);

  // Forcing the top backend yields the best the host has, never more.
  tune::SimdBackend().Set(static_cast<uint64_t>(Backend::kAvx2));
  EXPECT_EQ(ActiveBackend(), best);

  // Every in-range request at or below best is honored exactly.
  for (Backend b : SupportedBackends()) {
    tune::SimdBackend().Set(static_cast<uint64_t>(b));
    EXPECT_EQ(ActiveBackend(), b) << BackendName(b);
  }
}

TEST(SimdKernelsTest, Mix64BatchMatchesScalarMix64) {
  Xoshiro256 rng(17);
  for (size_t n : kLengths) {
    std::vector<uint64_t> keys(n);
    for (auto& k : keys) k = rng.Next();
    for (uint64_t xor_mask : {uint64_t{0}, uint64_t{0x9e3779b97f4a7c15ULL}}) {
      std::vector<uint64_t> expect(n);
      for (size_t i = 0; i < n; ++i) expect[i] = Mix64(keys[i] ^ xor_mask);
      for (Backend b : SupportedBackends()) {
        std::vector<uint64_t> got(n, 0xdeadbeefULL);
        Mix64Batch(b, keys.data(), n, got.data(), xor_mask);
        EXPECT_EQ(got, expect) << BackendName(b) << " n=" << n
                               << " mask=" << xor_mask;
      }
    }
  }
}

TEST(SimdKernelsTest, BuildRangeBitmapMatchesScalarBitLoop) {
  Xoshiro256 rng(29);
  for (size_t n : kLengths) {
    std::vector<int64_t> values(n);
    for (auto& v : values) v = rng.NextInRange(-1000, 1000);
    struct Range {
      int64_t lo, hi;
    };
    const Range ranges[] = {
        {-100, 100},  // mixed hits
        {-2000, 2000},  // all-hit
        {5000, 6000},  // all-miss
        {0, 0},  // empty interval
        {std::numeric_limits<int64_t>::min(),
         std::numeric_limits<int64_t>::max()},  // extreme bounds
    };
    const size_t num_words = (n + 63) / 64;
    for (const Range& r : ranges) {
      std::vector<uint64_t> expect(num_words, 0);
      for (size_t i = 0; i < n; ++i) {
        const uint64_t bit = static_cast<uint64_t>(values[i] >= r.lo) &
                             static_cast<uint64_t>(values[i] < r.hi);
        expect[i >> 6] |= bit << (i & 63);
      }
      for (Backend b : SupportedBackends()) {
        // Poisoned so a word the kernel failed to overwrite is caught.
        std::vector<uint64_t> got(num_words, ~uint64_t{0});
        BuildRangeBitmap(b, values.data(), n, r.lo, r.hi, got.data());
        EXPECT_EQ(got, expect)
            << BackendName(b) << " n=" << n << " [" << r.lo << ", " << r.hi
            << ")";
        EXPECT_EQ(CountInRange(b, values.data(), n, r.lo, r.hi),
                  CountInRange(Backend::kScalar, values.data(), n, r.lo, r.hi))
            << BackendName(b) << " n=" << n;
      }
    }
  }
}

TEST(SimdKernelsTest, SumMatchesWrappingScalarSum) {
  Xoshiro256 rng(43);
  for (size_t n : kLengths) {
    std::vector<int64_t> values(n);
    for (auto& v : values) v = static_cast<int64_t>(rng.Next());
    // Force wraparound: the contract is mod-2^64, not saturating.
    if (n >= 2) {
      values[0] = std::numeric_limits<int64_t>::max();
      values[1] = std::numeric_limits<int64_t>::max();
    }
    uint64_t expect = 0;
    for (int64_t v : values) expect += static_cast<uint64_t>(v);
    for (Backend b : SupportedBackends()) {
      EXPECT_EQ(static_cast<uint64_t>(Sum(b, values.data(), n)), expect)
          << BackendName(b) << " n=" << n;
    }
  }
}

TEST(SimdKernelsTest, MinMaxMatchScalar) {
  Xoshiro256 rng(59);
  for (size_t n : kLengths) {
    if (n == 0) continue;  // Min/Max require n > 0 (callers guard empty).
    std::vector<int64_t> values(n);
    for (auto& v : values) v = static_cast<int64_t>(rng.Next());
    int64_t expect_min = values[0];
    int64_t expect_max = values[0];
    for (int64_t v : values) {
      expect_min = v < expect_min ? v : expect_min;
      expect_max = v > expect_max ? v : expect_max;
    }
    for (Backend b : SupportedBackends()) {
      EXPECT_EQ(Min(b, values.data(), n), expect_min)
          << BackendName(b) << " n=" << n;
      EXPECT_EQ(Max(b, values.data(), n), expect_max)
          << BackendName(b) << " n=" << n;
    }
  }
}

TEST(SimdKernelsTest, MinMaxExtremesSurvive) {
  // INT64_MIN / INT64_MAX in every lane position of a 4-lane step.
  for (size_t pos = 0; pos < 8; ++pos) {
    std::vector<int64_t> values(8, 0);
    values[pos] = std::numeric_limits<int64_t>::min();
    values[7 - pos] = std::numeric_limits<int64_t>::max();
    for (Backend b : SupportedBackends()) {
      EXPECT_EQ(Min(b, values.data(), values.size()),
                std::numeric_limits<int64_t>::min())
          << BackendName(b) << " pos=" << pos;
      EXPECT_EQ(Max(b, values.data(), values.size()),
                std::numeric_limits<int64_t>::max())
          << BackendName(b) << " pos=" << pos;
    }
  }
}

TEST(SimdKernelsTest, TestBlock512MatchesScalarWordWalk) {
  Xoshiro256 rng(71);
  for (int trial = 0; trial < 200; ++trial) {
    uint64_t block[8];
    uint64_t mask[8];
    for (int w = 0; w < 8; ++w) {
      block[w] = rng.Next();
      // Bias masks sparse so both outcomes occur often.
      mask[w] = rng.Next() & rng.Next() & rng.Next();
    }
    bool expect = true;
    for (int w = 0; w < 8; ++w) {
      expect = expect && (block[w] & mask[w]) == mask[w];
    }
    for (Backend b : SupportedBackends()) {
      EXPECT_EQ(TestBlock512(b, block, mask), expect)
          << BackendName(b) << " trial=" << trial;
    }
  }
}

TEST(SimdKernelsTest, TestBlock512Corners) {
  uint64_t ones[8];
  uint64_t zeros[8] = {};
  for (auto& w : ones) w = ~uint64_t{0};
  for (Backend b : SupportedBackends()) {
    // Empty mask passes against anything; full mask needs a full block.
    EXPECT_TRUE(TestBlock512(b, zeros, zeros)) << BackendName(b);
    EXPECT_TRUE(TestBlock512(b, ones, ones)) << BackendName(b);
    EXPECT_FALSE(TestBlock512(b, zeros, ones)) << BackendName(b);
    // One missing bit in the last word must flip the answer (catches an
    // implementation that early-outs before covering the whole line).
    uint64_t almost[8];
    for (int w = 0; w < 8; ++w) almost[w] = ones[w];
    almost[7] &= ~(uint64_t{1} << 63);
    EXPECT_FALSE(TestBlock512(b, almost, ones)) << BackendName(b);
  }
}

TEST(SimdKernelsTest, FindKeyOrEmptyMatchesScalarScan) {
  Xoshiro256 rng(83);
  const uint64_t kKey = 0x1234567890abcdefULL;
  const uint64_t kEmpty = 0;
  for (size_t n : kLengths) {
    for (int trial = 0; trial < 8; ++trial) {
      std::vector<uint64_t> slots(n);
      // Mostly non-interesting slots with occasional keys/empties, so
      // "first hit" lands at varied offsets (including none).
      for (auto& s : slots) {
        const uint64_t roll = rng.NextBounded(10);
        s = roll == 0 ? kKey : roll == 1 ? kEmpty : (rng.Next() | 1);
      }
      size_t expect = n;
      for (size_t i = 0; i < n; ++i) {
        if (slots[i] == kKey || slots[i] == kEmpty) {
          expect = i;
          break;
        }
      }
      for (Backend b : SupportedBackends()) {
        EXPECT_EQ(FindKeyOrEmpty(b, slots.data(), n, kKey, kEmpty), expect)
            << BackendName(b) << " n=" << n << " trial=" << trial;
      }
    }
  }
}

TEST(SimdKernelsTest, FindKeyOrEmptyFirstHitWinsWithinOneVector) {
  // A key and an empty inside the same 4-lane step: the earlier index
  // must win regardless of which predicate matched it.
  const uint64_t kKey = 7;
  const uint64_t kEmpty = 0;
  std::vector<uint64_t> slots = {5, kEmpty, kKey, 5, 5, 5, 5, 5};
  for (Backend b : SupportedBackends()) {
    EXPECT_EQ(FindKeyOrEmpty(b, slots.data(), slots.size(), kKey, kEmpty), 1u)
        << BackendName(b);
  }
  slots[1] = kKey;
  slots[2] = kEmpty;
  for (Backend b : SupportedBackends()) {
    EXPECT_EQ(FindKeyOrEmpty(b, slots.data(), slots.size(), kKey, kEmpty), 1u)
        << BackendName(b);
  }
}

TEST(SimdKernelsTest, ForcedKnobChangesNothingObservable) {
  // The whole point of the bit-identity contract: flipping the knob
  // between batches is invisible in results. Run the convenience wrapper
  // (hwstar::Mix64Batch, which reads ActiveBackend itself) under every
  // forced setting and demand one answer.
  KnobGuard guard;
  Xoshiro256 rng(97);
  std::vector<uint64_t> keys(513);
  for (auto& k : keys) k = rng.Next();

  tune::SimdBackend().Set(0);
  std::vector<uint64_t> expect(keys.size());
  hwstar::Mix64Batch(keys.data(), keys.size(), expect.data());

  for (uint64_t knob = 1; knob <= static_cast<uint64_t>(Backend::kAvx2);
       ++knob) {
    tune::SimdBackend().Set(knob);
    std::vector<uint64_t> got(keys.size());
    hwstar::Mix64Batch(keys.data(), keys.size(), got.data());
    EXPECT_EQ(got, expect) << "knob=" << knob;
  }
}

}  // namespace
}  // namespace hwstar::simd
