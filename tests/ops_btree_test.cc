#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "hwstar/common/random.h"
#include "hwstar/ops/btree.h"

namespace hwstar::ops {
namespace {

TEST(BPlusTreeTest, EmptyTreeFindsNothing) {
  BPlusTree tree;
  uint64_t v;
  EXPECT_FALSE(tree.Find(1, &v));
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1u);
}

TEST(BPlusTreeTest, InsertAndFind) {
  BPlusTree tree;
  tree.Insert(5, 50);
  tree.Insert(3, 30);
  tree.Insert(8, 80);
  uint64_t v;
  EXPECT_TRUE(tree.Find(5, &v));
  EXPECT_EQ(v, 50u);
  EXPECT_TRUE(tree.Find(3, &v));
  EXPECT_EQ(v, 30u);
  EXPECT_FALSE(tree.Find(4, &v));
  EXPECT_EQ(tree.size(), 3u);
}

TEST(BPlusTreeTest, DuplicateInsertOverwrites) {
  BPlusTree tree;
  tree.Insert(5, 50);
  tree.Insert(5, 99);
  uint64_t v;
  EXPECT_TRUE(tree.Find(5, &v));
  EXPECT_EQ(v, 99u);
  EXPECT_EQ(tree.size(), 1u);
}

TEST(BPlusTreeTest, SplitsGrowHeight) {
  BPlusTree tree(4);
  for (uint64_t k = 0; k < 100; ++k) tree.Insert(k, k * 2);
  EXPECT_GT(tree.height(), 1u);
  uint64_t v;
  for (uint64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(tree.Find(k, &v)) << k;
    EXPECT_EQ(v, k * 2);
  }
}

TEST(BPlusTreeTest, WiderFanoutShallowerTree) {
  BPlusTree narrow(4), wide(64);
  for (uint64_t k = 0; k < 10000; ++k) {
    narrow.Insert(k, k);
    wide.Insert(k, k);
  }
  EXPECT_LT(wide.height(), narrow.height());
}

TEST(BPlusTreeTest, RangeScanInclusive) {
  BPlusTree tree(8);
  for (uint64_t k = 0; k < 100; k += 2) tree.Insert(k, k + 1000);
  std::vector<uint64_t> out;
  EXPECT_EQ(tree.RangeScan(10, 20, &out), 6u);
  EXPECT_EQ(out, (std::vector<uint64_t>{1010, 1012, 1014, 1016, 1018, 1020}));
}

TEST(BPlusTreeTest, RangeScanAcrossLeaves) {
  BPlusTree tree(4);
  for (uint64_t k = 0; k < 1000; ++k) tree.Insert(k, k);
  std::vector<uint64_t> out;
  EXPECT_EQ(tree.RangeScan(0, 999, &out), 1000u);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
}

TEST(BPlusTreeTest, RangeScanEmptyRange) {
  BPlusTree tree(8);
  tree.Insert(10, 1);
  tree.Insert(20, 2);
  std::vector<uint64_t> out;
  EXPECT_EQ(tree.RangeScan(11, 19, &out), 0u);
}

TEST(BPlusTreeTest, RandomInsertionOrder) {
  hwstar::Xoshiro256 rng(13);
  std::vector<uint64_t> keys;
  for (uint64_t k = 0; k < 20000; ++k) keys.push_back(k);
  for (size_t i = keys.size(); i > 1; --i) {
    std::swap(keys[i - 1], keys[rng.NextBounded(i)]);
  }
  BPlusTree tree(16);
  for (uint64_t k : keys) tree.Insert(k, k ^ 0xABCD);
  EXPECT_EQ(tree.size(), 20000u);
  uint64_t v;
  for (uint64_t k = 0; k < 20000; k += 111) {
    ASSERT_TRUE(tree.Find(k, &v));
    EXPECT_EQ(v, k ^ 0xABCD);
  }
}

TEST(BPlusTreeTest, BulkLoadMatchesInserted) {
  std::vector<uint64_t> keys, values;
  for (uint64_t k = 0; k < 5000; ++k) {
    keys.push_back(k * 3);
    values.push_back(k);
  }
  auto loaded = BPlusTree::BulkLoad(keys, values, 32);
  ASSERT_TRUE(loaded.ok());
  const BPlusTree& tree = loaded.value();
  EXPECT_EQ(tree.size(), 5000u);
  uint64_t v;
  for (uint64_t k = 0; k < 5000; k += 7) {
    ASSERT_TRUE(tree.Find(k * 3, &v));
    EXPECT_EQ(v, k);
    EXPECT_FALSE(tree.Find(k * 3 + 1, &v));
  }
}

TEST(BPlusTreeTest, BulkLoadRejectsUnsorted) {
  EXPECT_FALSE(BPlusTree::BulkLoad({3, 1}, {0, 0}).ok());
  EXPECT_FALSE(BPlusTree::BulkLoad({1, 1}, {0, 0}).ok());
  EXPECT_FALSE(BPlusTree::BulkLoad({1}, {0, 0}).ok());
}

TEST(BPlusTreeTest, BulkLoadEmpty) {
  auto loaded = BPlusTree::BulkLoad({}, {});
  ASSERT_TRUE(loaded.ok());
  uint64_t v;
  EXPECT_FALSE(loaded.value().Find(0, &v));
}

TEST(BPlusTreeTest, BulkLoadRangeScan) {
  std::vector<uint64_t> keys, values;
  for (uint64_t k = 0; k < 1000; ++k) {
    keys.push_back(k);
    values.push_back(k * 10);
  }
  auto loaded = BPlusTree::BulkLoad(keys, values, 16);
  ASSERT_TRUE(loaded.ok());
  std::vector<uint64_t> out;
  EXPECT_EQ(loaded.value().RangeScan(500, 509, &out), 10u);
  EXPECT_EQ(out.front(), 5000u);
  EXPECT_EQ(out.back(), 5090u);
}

TEST(BPlusTreeTest, MoveSemantics) {
  BPlusTree a(8);
  a.Insert(1, 10);
  BPlusTree b = std::move(a);
  uint64_t v;
  EXPECT_TRUE(b.Find(1, &v));
  EXPECT_EQ(b.size(), 1u);
}

TEST(BPlusTreeTest, EraseBasic) {
  BPlusTree tree(8);
  tree.Insert(1, 10);
  tree.Insert(2, 20);
  EXPECT_TRUE(tree.Erase(1));
  EXPECT_FALSE(tree.Erase(1));
  EXPECT_FALSE(tree.Erase(99));
  uint64_t v;
  EXPECT_FALSE(tree.Find(1, &v));
  EXPECT_TRUE(tree.Find(2, &v));
  EXPECT_EQ(tree.size(), 1u);
}

TEST(BPlusTreeTest, EraseKeepsScanOrderAndLeafChain) {
  BPlusTree tree(8);  // small fanout: erases leave underfull leaves
  for (uint64_t k = 0; k < 500; ++k) tree.Insert(k, k * 2);
  for (uint64_t k = 0; k < 500; k += 3) EXPECT_TRUE(tree.Erase(k));
  std::vector<uint64_t> got;
  tree.RangeScan(0, 500, &got);
  std::vector<uint64_t> want;
  for (uint64_t k = 0; k < 500; ++k) {
    if (k % 3 != 0) want.push_back(k * 2);
  }
  EXPECT_EQ(got, want);
}

TEST(BPlusTreeTest, RangeScanEntriesMatchesScan) {
  BPlusTree tree(16);
  for (uint64_t k = 0; k < 100; ++k) tree.Insert(k * 7, k);
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  EXPECT_EQ(tree.RangeScanEntries(14, 70, &entries), 9u);
  EXPECT_EQ(entries.front().first, 14u);
  EXPECT_EQ(entries.back().first, 70u);
}

TEST(BPlusTreeTest, RandomInsertEraseAgainstReference) {
  hwstar::Xoshiro256 rng(77);
  BPlusTree tree(8);
  std::map<uint64_t, uint64_t> ref;
  for (uint64_t i = 0; i < 60000; ++i) {
    const uint64_t k = rng.NextBounded(1 << 12);
    if (rng.NextBounded(3) == 0) {
      EXPECT_EQ(tree.Erase(k), ref.erase(k) == 1) << "op " << i;
    } else {
      tree.Insert(k, i);
      ref[k] = i;
    }
  }
  EXPECT_EQ(tree.size(), ref.size());
  uint64_t v;
  for (uint64_t k = 0; k < (1 << 12); ++k) {
    auto it = ref.find(k);
    EXPECT_EQ(tree.Find(k, &v), it != ref.end()) << k;
    if (it != ref.end()) EXPECT_EQ(v, it->second);
  }
}

/// Property: tree lookups agree with binary search over the sorted keys.
class BTreeFanoutTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BTreeFanoutTest, AgreesWithBinarySearch) {
  const uint32_t fanout = GetParam();
  hwstar::Xoshiro256 rng(fanout);
  std::vector<uint64_t> keys;
  BPlusTree tree(fanout);
  for (int i = 0; i < 5000; ++i) {
    uint64_t k = rng.NextBounded(1 << 20);
    tree.Insert(k, k + 1);
    keys.push_back(k);
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  EXPECT_EQ(tree.size(), keys.size());
  for (uint64_t probe = 0; probe < (1 << 20); probe += 4099) {
    const bool in_sorted =
        std::binary_search(keys.begin(), keys.end(), probe);
    uint64_t v;
    EXPECT_EQ(tree.Find(probe, &v), in_sorted);
    if (in_sorted) EXPECT_EQ(v, probe + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Fanouts, BTreeFanoutTest,
                         ::testing::Values(4u, 8u, 32u, 128u));

}  // namespace
}  // namespace hwstar::ops
