#include <gtest/gtest.h>

#include "hwstar/engine/join_query.h"
#include "hwstar/workload/tpch_like.h"

namespace hwstar::engine {
namespace {

using storage::ColumnStore;
using storage::Schema;
using storage::Table;
using storage::TypeId;

/// build: (key, attr) with key = i % 100, attr = i.
/// probe: (key, val) with key = i % 150, val = i * 3.
struct Stores {
  ColumnStore build;
  ColumnStore probe;
};

Stores MakeStores(uint64_t build_rows, uint64_t probe_rows) {
  Schema s({{"key", TypeId::kInt64}, {"attr", TypeId::kInt64}});
  Table bt(s), pt(s);
  for (uint64_t i = 0; i < build_rows; ++i) {
    bt.column(0).AppendInt64(static_cast<int64_t>(i % 100));
    bt.column(1).AppendInt64(static_cast<int64_t>(i));
  }
  for (uint64_t i = 0; i < probe_rows; ++i) {
    pt.column(0).AppendInt64(static_cast<int64_t>(i % 150));
    pt.column(1).AppendInt64(static_cast<int64_t>(i * 3));
  }
  EXPECT_TRUE(bt.SetRowCount(build_rows).ok());
  EXPECT_TRUE(pt.SetRowCount(probe_rows).ok());
  return Stores{std::move(ColumnStore::FromTable(bt)).value(),
                std::move(ColumnStore::FromTable(pt)).value()};
}

/// Reference: nested-loop evaluation of the full JoinQuery semantics.
JoinQueryResult NestedLoopReference(const JoinQuery& q) {
  JoinQueryResult r;
  std::vector<uint64_t> build_keys;
  for (uint64_t i = 0; i < q.build->num_rows(); ++i) {
    if (q.build_filter && q.build_filter->Eval(*q.build, i) == 0) continue;
    ++r.build_rows_passed;
    build_keys.push_back(
        static_cast<uint64_t>(q.build->IntColumn(q.build_key)[i]));
  }
  for (uint64_t i = 0; i < q.probe->num_rows(); ++i) {
    if (q.probe_filter && q.probe_filter->Eval(*q.probe, i) == 0) continue;
    ++r.probe_rows_passed;
    const uint64_t key =
        static_cast<uint64_t>(q.probe->IntColumn(q.probe_key)[i]);
    uint64_t c = 0;
    for (uint64_t bk : build_keys) c += bk == key;
    r.matches += c;
    const int64_t agg = q.aggregate ? q.aggregate->Eval(*q.probe, i) : 1;
    r.sum += static_cast<int64_t>(c) * agg;
  }
  return r;
}

TEST(JoinQueryTest, UnfilteredCountStar) {
  Stores s = MakeStores(1000, 3000);
  JoinQuery q;
  q.build = &s.build;
  q.probe = &s.probe;
  auto ref = NestedLoopReference(q);
  for (auto algo : {JoinAlgorithm::kNoPartition, JoinAlgorithm::kRadix,
                    JoinAlgorithm::kAuto}) {
    JoinExecuteOptions opts;
    opts.algorithm = algo;
    auto got = ExecuteJoin(q, opts);
    EXPECT_EQ(got.matches, ref.matches);
    EXPECT_EQ(got.sum, ref.sum);
  }
}

TEST(JoinQueryTest, FiltersBothSides) {
  Stores s = MakeStores(2000, 5000);
  JoinQuery q;
  q.build = &s.build;
  q.probe = &s.probe;
  q.build_filter = Lt(Col(1), Lit(500));   // build attr < 500
  q.probe_filter = Ge(Col(1), Lit(3000));  // probe val >= 3000
  q.aggregate = Add(Col(1), Lit(1));
  auto ref = NestedLoopReference(q);
  ASSERT_GT(ref.matches, 0u);
  for (auto algo : {JoinAlgorithm::kNoPartition, JoinAlgorithm::kRadix}) {
    JoinExecuteOptions opts;
    opts.algorithm = algo;
    auto got = ExecuteJoin(q, opts);
    EXPECT_EQ(got.matches, ref.matches);
    EXPECT_EQ(got.sum, ref.sum);
    EXPECT_EQ(got.build_rows_passed, ref.build_rows_passed);
    EXPECT_EQ(got.probe_rows_passed, ref.probe_rows_passed);
  }
}

TEST(JoinQueryTest, EmptyAfterFilter) {
  Stores s = MakeStores(100, 100);
  JoinQuery q;
  q.build = &s.build;
  q.probe = &s.probe;
  q.build_filter = Lt(Col(1), Lit(-1));  // nothing passes
  auto got = ExecuteJoin(q);
  EXPECT_EQ(got.matches, 0u);
  EXPECT_EQ(got.sum, 0);
  EXPECT_EQ(got.build_rows_passed, 0u);
}

TEST(JoinQueryTest, ParallelPoolAgrees) {
  Stores s = MakeStores(5000, 20000);
  JoinQuery q;
  q.build = &s.build;
  q.probe = &s.probe;
  q.aggregate = Col(1);
  auto ref = ExecuteJoin(q);
  exec::Executor pool(2);
  JoinExecuteOptions opts;
  opts.algorithm = JoinAlgorithm::kRadix;
  opts.pool = &pool;
  auto got = ExecuteJoin(q, opts);
  EXPECT_EQ(got.matches, ref.matches);
  EXPECT_EQ(got.sum, ref.sum);
}

TEST(JoinQueryTest, TpchQ12Shape) {
  // SELECT SUM(o_totalprice) FROM orders JOIN lineitem
  //   ON o_orderkey = l_orderkey
  // WHERE l_shipdate in [365, 730) -- aggregate over the probe (orders
  // drive the build side).
  workload::TpchConfig cfg;
  cfg.scale_factor = 0.005;
  auto orders = workload::MakeOrders(cfg);
  auto lineitem = workload::MakeLineitem(cfg);
  auto ocs = ColumnStore::FromTable(*orders).value();
  auto lcs = ColumnStore::FromTable(*lineitem).value();

  JoinQuery q;
  q.build = &ocs;
  q.build_key = 0;  // o_orderkey
  q.probe = &lcs;
  q.probe_key = 0;  // l_orderkey
  q.probe_filter = And(Ge(Col(6), Lit(365)), Lt(Col(6), Lit(730)));
  q.aggregate = Col(2);  // l_quantity summed per match
  auto ref = NestedLoopReference(q);
  auto got = ExecuteJoin(q);
  EXPECT_EQ(got.matches, ref.matches);
  EXPECT_EQ(got.sum, ref.sum);
  EXPECT_GT(got.matches, 0u);
}

/// Property: all algorithms agree across size mixes.
class JoinQueryEquivalence
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint64_t>> {};

TEST_P(JoinQueryEquivalence, AlgorithmsAgree) {
  const auto [build_rows, probe_rows] = GetParam();
  Stores s = MakeStores(build_rows, probe_rows);
  JoinQuery q;
  q.build = &s.build;
  q.probe = &s.probe;
  q.probe_filter = Lt(Col(0), Lit(120));
  q.aggregate = Col(1);
  JoinExecuteOptions npo, radix;
  npo.algorithm = JoinAlgorithm::kNoPartition;
  radix.algorithm = JoinAlgorithm::kRadix;
  auto a = ExecuteJoin(q, npo);
  auto b = ExecuteJoin(q, radix);
  EXPECT_EQ(a.matches, b.matches);
  EXPECT_EQ(a.sum, b.sum);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, JoinQueryEquivalence,
    ::testing::Combine(::testing::Values(0u, 1u, 100u, 10000u),
                       ::testing::Values(0u, 1u, 5000u, 50000u)));

}  // namespace
}  // namespace hwstar::engine
