#include <memory>

#include <gtest/gtest.h>

#include "hwstar/ops/bloom_filter.h"
#include "hwstar/ops/join_nop.h"
#include "hwstar/simd/backend.h"
#include "hwstar/tune/tunable.h"
#include "hwstar/workload/distributions.h"

namespace hwstar::ops {
namespace {

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter filter(1000, 10);
  for (uint64_t k = 0; k < 1000; ++k) filter.Add(k * 7);
  for (uint64_t k = 0; k < 1000; ++k) {
    EXPECT_TRUE(filter.MayContain(k * 7)) << k;
  }
}

TEST(BloomFilterTest, FppNearTheory) {
  // 10 bits/key, k=7 -> theoretical fpp ~1%.
  BloomFilter filter(100000, 10);
  for (uint64_t k = 0; k < 100000; ++k) filter.Add(k);
  std::vector<uint64_t> absent;
  for (uint64_t k = 0; k < 50000; ++k) absent.push_back(1000000 + k);
  const double fpp = filter.MeasureFpp(absent);
  EXPECT_LT(fpp, 0.03);
}

TEST(BloomFilterTest, MoreBitsLowerFpp) {
  auto fpp_at = [](uint32_t bits_per_key) {
    BloomFilter f(20000, bits_per_key);
    for (uint64_t k = 0; k < 20000; ++k) f.Add(k);
    std::vector<uint64_t> absent;
    for (uint64_t k = 0; k < 20000; ++k) absent.push_back(1 << 24 | k);
    return f.MeasureFpp(absent);
  };
  EXPECT_GT(fpp_at(4), fpp_at(12));
}

TEST(BlockedBloomFilterTest, NoFalseNegatives) {
  BlockedBloomFilter filter(5000, 10);
  for (uint64_t k = 0; k < 5000; ++k) filter.Add(k * 13 + 1);
  for (uint64_t k = 0; k < 5000; ++k) {
    EXPECT_TRUE(filter.MayContain(k * 13 + 1)) << k;
  }
}

TEST(BlockedBloomFilterTest, FppReasonable) {
  // Blocked filters trade a somewhat higher fpp for single-line probes.
  BlockedBloomFilter filter(100000, 10);
  for (uint64_t k = 0; k < 100000; ++k) filter.Add(k);
  std::vector<uint64_t> absent;
  for (uint64_t k = 0; k < 50000; ++k) absent.push_back(1000000 + k);
  EXPECT_LT(filter.MeasureFpp(absent), 0.08);
}

TEST(BlockedBloomFilterTest, BlockCountSized) {
  BlockedBloomFilter filter(1 << 16, 10);
  EXPECT_GE(filter.num_blocks() * BlockedBloomFilter::kBlockBits,
            uint64_t{1} << 16);
  EXPECT_EQ(filter.MemoryBytes(), filter.num_blocks() * 64);
}

TEST(BloomJoinTest, BloomPreservesJoinResult) {
  // Half the probe keys miss: bloom must not change the match count.
  auto build = workload::MakeBuildRelation(10000, 61);
  Relation probe;
  hwstar::Xoshiro256 rng(62);
  for (uint64_t i = 0; i < 40000; ++i) {
    // Even i: hit (key < 10000); odd i: guaranteed miss.
    const uint64_t key =
        (i % 2 == 0) ? rng.NextBounded(10000) : 1000000 + i;
    probe.Append(key, i);
  }
  NoPartitionJoinOptions plain;
  NoPartitionJoinOptions bloomed;
  bloomed.use_bloom = true;
  const auto expected = NoPartitionHashJoin(build, probe, plain).matches;
  EXPECT_EQ(expected, 20000u);
  EXPECT_EQ(NoPartitionHashJoin(build, probe, bloomed).matches, expected);
  EXPECT_EQ(NoPartitionChainedJoin(build, probe, bloomed).matches, expected);
}

TEST(BloomJoinTest, MaterializedPairsIdentical) {
  auto build = workload::MakeBuildRelation(500, 63);
  auto probe = workload::MakeProbeRelation(1000, 2000, 0.0, 64);
  NoPartitionJoinOptions plain;
  plain.materialize = true;
  NoPartitionJoinOptions bloomed = plain;
  bloomed.use_bloom = true;
  auto a = NoPartitionHashJoin(build, probe, plain);
  auto b = NoPartitionHashJoin(build, probe, bloomed);
  EXPECT_EQ(a.matches, b.matches);
  EXPECT_EQ(a.pairs.size(), b.pairs.size());
}

/// Property: both filter variants are false-negative-free across sizes.
class BloomProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BloomProperty, NeverFalseNegative) {
  const uint64_t n = GetParam();
  hwstar::Xoshiro256 rng(n);
  std::vector<uint64_t> keys(n);
  for (auto& k : keys) k = rng.Next();
  BloomFilter plain(n, 8);
  BlockedBloomFilter blocked(n, 8);
  for (uint64_t k : keys) {
    plain.Add(k);
    blocked.Add(k);
  }
  for (uint64_t k : keys) {
    ASSERT_TRUE(plain.MayContain(k));
    ASSERT_TRUE(blocked.MayContain(k));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BloomProperty,
                         ::testing::Values(1u, 10u, 1000u, 100000u));

TEST(BloomSimdTest, BatchMatchesSingleUnderEveryBackend) {
  // MayContainBatch (group-prefetched, simd-hashed) must agree with
  // per-key MayContain on every key, for both filter variants, under
  // every backend the knob can force — including an odd batch length so
  // the vectorized hash sweep leaves a scalar tail.
  const uint64_t saved = tune::SimdBackend().Get();
  hwstar::Xoshiro256 rng(4242);
  const size_t n = 10007;
  std::vector<uint64_t> keys(n);
  for (size_t i = 0; i < n; ++i) {
    // Half present, half random (mostly absent).
    keys[i] = (i % 2 == 0) ? i / 2 : rng.Next();
  }
  BloomFilter plain(n / 2, 10);
  BlockedBloomFilter blocked(n / 2, 10);
  for (size_t i = 0; i < n; i += 2) {
    plain.Add(keys[i]);
    blocked.Add(keys[i]);
  }

  for (uint64_t knob = 0;
       knob <= static_cast<uint64_t>(simd::Backend::kAvx2); ++knob) {
    tune::SimdBackend().Set(knob);
    std::unique_ptr<bool[]> got_plain(new bool[n]);
    std::unique_ptr<bool[]> got_blocked(new bool[n]);
    plain.MayContainBatch(keys.data(), n, got_plain.get());
    blocked.MayContainBatch(keys.data(), n, got_blocked.get());
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(got_plain[i], plain.MayContain(keys[i]))
          << "knob=" << knob << " i=" << i;
      ASSERT_EQ(got_blocked[i], blocked.MayContain(keys[i]))
          << "knob=" << knob << " i=" << i;
    }
  }
  tune::SimdBackend().Set(saved);
}

TEST(BloomSimdTest, BlockedMayContainBackendInvariant) {
  // The single-key blocked probe runs one whole-line simd::TestBlock512;
  // its answer must not depend on the backend.
  const uint64_t saved = tune::SimdBackend().Get();
  BlockedBloomFilter filter(5000, 10);
  for (uint64_t k = 0; k < 5000; ++k) filter.Add(k * 3 + 1);

  tune::SimdBackend().Set(0);
  std::vector<bool> expect(20000);
  for (uint64_t k = 0; k < 20000; ++k) expect[k] = filter.MayContain(k);

  for (uint64_t knob = 1;
       knob <= static_cast<uint64_t>(simd::Backend::kAvx2); ++knob) {
    tune::SimdBackend().Set(knob);
    for (uint64_t k = 0; k < 20000; ++k) {
      ASSERT_EQ(filter.MayContain(k), expect[k])
          << "knob=" << knob << " key=" << k;
    }
  }
  tune::SimdBackend().Set(saved);
}

}  // namespace
}  // namespace hwstar::ops
