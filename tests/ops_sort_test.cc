#include <gtest/gtest.h>

#include <algorithm>

#include "hwstar/common/random.h"
#include "hwstar/ops/sort.h"

namespace hwstar::ops {
namespace {

std::vector<uint64_t> RandomValues(size_t n, uint64_t domain, uint64_t seed) {
  hwstar::Xoshiro256 rng(seed);
  std::vector<uint64_t> v(n);
  for (auto& x : v) x = rng.NextBounded(domain);
  return v;
}

TEST(RadixSortTest, SortsBasic) {
  std::vector<uint64_t> v = {5, 1, 4, 1, 5, 9, 2, 6};
  RadixSortU64(&v);
  EXPECT_TRUE(IsSortedU64(v));
  EXPECT_EQ(v.front(), 1u);
  EXPECT_EQ(v.back(), 9u);
}

TEST(RadixSortTest, EmptyAndSingle) {
  std::vector<uint64_t> empty;
  RadixSortU64(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<uint64_t> one = {42};
  RadixSortU64(&one);
  EXPECT_EQ(one, (std::vector<uint64_t>{42}));
}

TEST(RadixSortTest, FullWidthKeys) {
  auto v = RandomValues(10000, ~uint64_t{0}, 5);
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  RadixSortU64(&v);
  EXPECT_EQ(v, expected);
}

TEST(RadixSortTest, AdaptiveSkipsConstantBytes) {
  auto v = RandomValues(10000, 1 << 16, 6);  // only 2 varying bytes
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  RadixSortU64Adaptive(&v);
  EXPECT_EQ(v, expected);
}

TEST(RadixSortTest, AdaptiveAllEqual) {
  std::vector<uint64_t> v(100, 7);
  RadixSortU64Adaptive(&v);
  EXPECT_EQ(v, std::vector<uint64_t>(100, 7));
}

TEST(RadixSortRelationTest, PayloadsFollowKeys) {
  Relation rel;
  rel.Append(30, 3);
  rel.Append(10, 1);
  rel.Append(20, 2);
  RadixSortRelation(&rel);
  EXPECT_EQ(rel.keys, (std::vector<uint64_t>{10, 20, 30}));
  EXPECT_EQ(rel.payloads, (std::vector<uint64_t>{1, 2, 3}));
}

TEST(RadixSortRelationTest, StableForEqualKeys) {
  // LSB radix sort is stable: payloads of equal keys keep input order.
  Relation rel;
  rel.Append(5, 0);
  rel.Append(5, 1);
  rel.Append(5, 2);
  rel.Append(1, 9);
  RadixSortRelation(&rel);
  EXPECT_EQ(rel.payloads, (std::vector<uint64_t>{9, 0, 1, 2}));
}

TEST(MergeSortTest, SortsBasic) {
  std::vector<uint64_t> v = {9, 8, 7, 1, 2, 3};
  MergeSortU64(&v);
  EXPECT_TRUE(IsSortedU64(v));
}

TEST(MergeSortTest, AlreadySorted) {
  std::vector<uint64_t> v = {1, 2, 3, 4, 5};
  MergeSortU64(&v);
  EXPECT_EQ(v, (std::vector<uint64_t>{1, 2, 3, 4, 5}));
}

TEST(IsSortedTest, DetectsUnsorted) {
  EXPECT_TRUE(IsSortedU64({}));
  EXPECT_TRUE(IsSortedU64({1}));
  EXPECT_TRUE(IsSortedU64({1, 1, 2}));
  EXPECT_FALSE(IsSortedU64({2, 1}));
}

/// Property: all sorts agree with std::sort over sizes and run sizes.
class SortEquivalence
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(SortEquivalence, MatchesStdSort) {
  const auto [n, run_size] = GetParam();
  auto v = RandomValues(n, 1u << 20, n + run_size);
  auto expected = v;
  std::sort(expected.begin(), expected.end());

  auto radix = v;
  RadixSortU64(&radix);
  EXPECT_EQ(radix, expected);

  auto adaptive = v;
  RadixSortU64Adaptive(&adaptive);
  EXPECT_EQ(adaptive, expected);

  auto merge = v;
  MergeSortU64(&merge, run_size);
  EXPECT_EQ(merge, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SortEquivalence,
    ::testing::Combine(::testing::Values(0u, 1u, 2u, 100u, 1000u, 65536u),
                       ::testing::Values(2u, 16u, 64u, 1024u)));

}  // namespace
}  // namespace hwstar::ops
