#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "hwstar/exec/executor.h"
#include "hwstar/ops/hash_table.h"
#include "hwstar/ops/join_nop.h"
#include "hwstar/ops/join_radix.h"
#include "hwstar/ops/join_sort_merge.h"
#include "hwstar/workload/distributions.h"

namespace hwstar::ops {
namespace {

/// Ground truth: match count via std::map multiset semantics.
uint64_t ReferenceJoinCount(const Relation& r, const Relation& s) {
  std::map<uint64_t, uint64_t> counts;
  for (uint64_t k : r.keys) ++counts[k];
  uint64_t total = 0;
  for (uint64_t k : s.keys) {
    auto it = counts.find(k);
    if (it != counts.end()) total += it->second;
  }
  return total;
}

TEST(LinearProbeTableTest, InsertFindProbe) {
  LinearProbeTable table(100);
  table.Insert(5, 50);
  table.Insert(7, 70);
  uint64_t out = 0;
  EXPECT_TRUE(table.Find(5, &out));
  EXPECT_EQ(out, 50u);
  EXPECT_FALSE(table.Find(6, &out));
  EXPECT_EQ(table.CountMatches(7), 1u);
  EXPECT_EQ(table.CountMatches(42), 0u);
}

TEST(LinearProbeTableTest, DuplicateKeysAllVisited) {
  LinearProbeTable table(100);
  table.Insert(9, 1);
  table.Insert(9, 2);
  table.Insert(9, 3);
  std::vector<uint64_t> values;
  EXPECT_EQ(table.Probe(9, [&](uint64_t v) { values.push_back(v); }), 3u);
  std::sort(values.begin(), values.end());
  EXPECT_EQ(values, (std::vector<uint64_t>{1, 2, 3}));
}

TEST(LinearProbeTableTest, CapacityIsPowerOfTwoAndSized) {
  LinearProbeTable table(1000, 0.5);
  EXPECT_GE(table.capacity(), 2000u);
  EXPECT_EQ(table.capacity() & (table.capacity() - 1), 0u);
}

TEST(LinearProbeTableTest, ProbeLengthGrowsWithLoadFactor) {
  auto fill = [](double lf) {
    LinearProbeTable table(10000, lf);
    std::vector<uint64_t> keys;
    for (uint64_t k = 1; k <= 10000; ++k) {
      table.Insert(k, k);
      keys.push_back(k);
    }
    return table.MeasureAvgProbeLength(keys);
  };
  EXPECT_LT(fill(0.25), fill(0.9));
}

TEST(ChainedTableTest, InsertFindProbe) {
  ChainedTable table(64);
  table.Insert(5, 50);
  table.Insert(5, 51);
  table.Insert(6, 60);
  uint64_t out = 0;
  EXPECT_TRUE(table.Find(6, &out));
  EXPECT_EQ(out, 60u);
  EXPECT_EQ(table.CountMatches(5), 2u);
  EXPECT_EQ(table.CountMatches(99), 0u);
  EXPECT_GT(table.MemoryBytes(), 0u);
}

TEST(JoinTest, TinyHandCheckedJoin) {
  Relation r, s;
  r.Append(1, 100);
  r.Append(2, 200);
  r.Append(2, 201);
  s.Append(2, 900);
  s.Append(3, 901);
  s.Append(1, 902);

  auto npo = NoPartitionHashJoin(r, s);
  EXPECT_EQ(npo.matches, 3u);

  NoPartitionJoinOptions mat;
  mat.materialize = true;
  auto pairs = NoPartitionHashJoin(r, s, mat);
  ASSERT_EQ(pairs.pairs.size(), 3u);
  // key 2 matches payloads {200, 201} x 900; key 1 matches 100 x 902.
  std::multiset<std::pair<uint64_t, uint64_t>> got;
  for (const auto& p : pairs.pairs) got.insert({p.build_payload, p.probe_payload});
  std::multiset<std::pair<uint64_t, uint64_t>> want = {
      {200, 900}, {201, 900}, {100, 902}};
  EXPECT_EQ(got, want);
}

TEST(JoinTest, EmptyInputs) {
  Relation empty, r;
  r.Append(1, 1);
  EXPECT_EQ(NoPartitionHashJoin(empty, r).matches, 0u);
  EXPECT_EQ(NoPartitionHashJoin(r, empty).matches, 0u);
  EXPECT_EQ(RadixHashJoin(empty, empty).matches, 0u);
  EXPECT_EQ(SortMergeJoin(empty, r).matches, 0u);
}

TEST(RadixPartitionTest, PreservesTuplesAndGroupsKeys) {
  Relation input = workload::MakeProbeRelation(5000, 1000, 0.0, 3);
  Relation output;
  std::vector<uint64_t> offsets;
  RadixPartition(input, 4, 0, &output, &offsets);
  ASSERT_EQ(offsets.size(), 17u);
  EXPECT_EQ(offsets.front(), 0u);
  EXPECT_EQ(offsets.back(), input.size());
  // Multiset of (key,payload) preserved.
  std::multiset<std::pair<uint64_t, uint64_t>> in_set, out_set;
  for (uint64_t i = 0; i < input.size(); ++i) {
    in_set.insert({input.keys[i], input.payloads[i]});
    out_set.insert({output.keys[i], output.payloads[i]});
  }
  EXPECT_EQ(in_set, out_set);
  // All occurrences of a key land in one partition.
  std::map<uint64_t, uint64_t> key_part;
  for (uint64_t p = 0; p < 16; ++p) {
    for (uint64_t i = offsets[p]; i < offsets[p + 1]; ++i) {
      auto [it, inserted] = key_part.emplace(output.keys[i], p);
      EXPECT_EQ(it->second, p);
    }
  }
}

TEST(RecommendRadixBitsTest, ScalesWithInput) {
  EXPECT_EQ(RecommendRadixBits(0, 1 << 20), 0u);
  EXPECT_EQ(RecommendRadixBits(1000, 1 << 20), 0u);  // fits in cache
  const uint32_t bits_small = RecommendRadixBits(1 << 20, 1 << 20);
  const uint32_t bits_big = RecommendRadixBits(1 << 24, 1 << 20);
  EXPECT_GT(bits_small, 0u);
  EXPECT_GT(bits_big, bits_small);
}

TEST(RadixJoinTest, TimingPhasesReported) {
  Relation r = workload::MakeBuildRelation(10000, 1);
  Relation s = workload::MakeProbeRelation(40000, 10000, 0.0, 2);
  RadixJoinTiming timing;
  RadixJoinOptions opts;
  opts.radix_bits = 6;
  auto result = RadixHashJoin(r, s, opts, &timing);
  EXPECT_EQ(result.matches, 40000u);
  EXPECT_GE(timing.partition_seconds, 0.0);
  EXPECT_GT(timing.join_seconds, 0.0);
}

TEST(SortMergeJoinTest, PresortedInputsSkipSort) {
  Relation r, s;
  for (uint64_t i = 0; i < 100; ++i) r.Append(i * 2, i);
  for (uint64_t i = 0; i < 100; ++i) s.Append(i, i);
  SortMergeJoinOptions opts;
  opts.inputs_sorted = true;
  // Even keys 0..198 intersect 0..99 -> 50 matches.
  EXPECT_EQ(SortMergeJoin(r, s, opts).matches, 50u);
}

TEST(SortMergeJoinTest, DuplicateCrossProduct) {
  Relation r, s;
  r.Append(7, 1);
  r.Append(7, 2);
  s.Append(7, 3);
  s.Append(7, 4);
  s.Append(7, 5);
  SortMergeJoinOptions opts;
  opts.materialize = true;
  auto result = SortMergeJoin(r, s, opts);
  EXPECT_EQ(result.matches, 6u);
  EXPECT_EQ(result.pairs.size(), 6u);
}

/// Property: all join algorithms agree with the reference count across
/// sizes, skew, radix bits, pass counts, and parallelism.
struct JoinParam {
  uint64_t build_size;
  uint64_t probe_size;
  double theta;
  uint32_t radix_bits;
  uint32_t passes;
  bool parallel;
};

class JoinEquivalence : public ::testing::TestWithParam<JoinParam> {};

TEST_P(JoinEquivalence, AllAlgorithmsAgree) {
  const JoinParam p = GetParam();
  Relation r = workload::MakeBuildRelation(p.build_size, 11);
  Relation s = workload::MakeProbeRelation(p.probe_size, p.build_size,
                                           p.theta, 12);
  const uint64_t expected = ReferenceJoinCount(r, s);
  // Dense build keys: every probe key < build_size matches exactly once.
  EXPECT_EQ(expected, p.probe_size);

  exec::Executor pool(2);

  NoPartitionJoinOptions npo_opts;
  npo_opts.pool = p.parallel ? &pool : nullptr;
  EXPECT_EQ(NoPartitionHashJoin(r, s, npo_opts).matches, expected);
  EXPECT_EQ(NoPartitionChainedJoin(r, s, npo_opts).matches, expected);

  RadixJoinOptions radix_opts;
  radix_opts.radix_bits = p.radix_bits;
  radix_opts.num_passes = p.passes;
  radix_opts.pool = p.parallel ? &pool : nullptr;
  EXPECT_EQ(RadixHashJoin(r, s, radix_opts).matches, expected);

  EXPECT_EQ(SortMergeJoin(r, s).matches, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, JoinEquivalence,
    ::testing::Values(
        JoinParam{16, 64, 0.0, 2, 1, false},
        JoinParam{1000, 4000, 0.0, 4, 1, false},
        JoinParam{1000, 4000, 0.75, 4, 1, false},
        JoinParam{1000, 4000, 0.99, 6, 2, false},
        JoinParam{10000, 40000, 0.0, 8, 1, false},
        JoinParam{10000, 40000, 0.0, 8, 2, false},
        JoinParam{10000, 40000, 0.5, 0, 1, false},
        JoinParam{10000, 40000, 0.0, 8, 1, true},
        JoinParam{10000, 40000, 0.9, 10, 2, true},
        JoinParam{1, 10, 0.0, 3, 1, false}));

/// Materialized pairs agree between NPO and radix (as multisets).
TEST(JoinMaterializeTest, PairsAgreeAcrossAlgorithms) {
  Relation r = workload::MakeBuildRelation(500, 21);
  Relation s = workload::MakeProbeRelation(2000, 500, 0.6, 22);

  NoPartitionJoinOptions npo_opts;
  npo_opts.materialize = true;
  auto npo = NoPartitionHashJoin(r, s, npo_opts);

  RadixJoinOptions radix_opts;
  radix_opts.radix_bits = 4;
  radix_opts.materialize = true;
  auto radix = RadixHashJoin(r, s, radix_opts);

  SortMergeJoinOptions sm_opts;
  sm_opts.materialize = true;
  auto sm = SortMergeJoin(r, s, sm_opts);

  auto to_set = [](const JoinResult& jr) {
    std::multiset<std::pair<uint64_t, uint64_t>> set;
    for (const auto& p : jr.pairs) set.insert({p.build_payload, p.probe_payload});
    return set;
  };
  EXPECT_EQ(to_set(npo), to_set(radix));
  EXPECT_EQ(to_set(npo), to_set(sm));
  EXPECT_EQ(npo.matches, npo.pairs.size());
}

}  // namespace
}  // namespace hwstar::ops
