// Tests for hwstar::tune: the tunable registry (central clamping, the
// knob accessors, ApplyAll publication), the concurrency contract
// (relaxed Set/Get from many threads, knob flips under running kernels
// staying bit-identical), the Calibrator's terminate-and-install-in-
// bounds guarantee, and the Controller's bounded nudges.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "hwstar/exec/morsel.h"
#include "hwstar/hw/machine_model.h"
#include "hwstar/hw/topology.h"
#include "hwstar/kv/kv_store.h"
#include "hwstar/ops/hash_table.h"
#include "hwstar/simd/backend.h"
#include "hwstar/svc/service.h"
#include "hwstar/tune/calibrator.h"
#include "hwstar/tune/controller.h"
#include "hwstar/tune/tunable.h"

namespace hwstar::tune {
namespace {

bool IsPow2(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// Every test leaves the process-wide knobs as it found them.
class TuneTest : public ::testing::Test {
 protected:
  void SetUp() override { Registry::Global().ResetAll(); }
  void TearDown() override { Registry::Global().ResetAll(); }
};

TEST_F(TuneTest, SetClampsToBounds) {
  Tunable t(TunableSpec{"test.bounded", 100, 10, 1000, false, ""});
  EXPECT_EQ(t.Get(), 100u);
  EXPECT_EQ(t.Set(5), 10u);     // below min
  EXPECT_EQ(t.Set(5000), 1000u);  // above max
  EXPECT_EQ(t.Set(500), 500u);
  EXPECT_EQ(t.Reset(), 100u);
}

TEST_F(TuneTest, SetRoundsUpToPowerOfTwo) {
  Tunable t(TunableSpec{"test.pow2", 16, 4, 64, true, ""});
  EXPECT_EQ(t.Set(5), 8u);   // rounded up
  EXPECT_EQ(t.Set(3), 4u);   // rounded up to 4, at min
  EXPECT_EQ(t.Set(0), 4u);   // 0 clamps to min
  EXPECT_EQ(t.Set(65), 64u);  // rounds to 128, clamps to max
  EXPECT_EQ(t.Clamp(33), 64u);
  EXPECT_EQ(t.Get(), 64u);  // Clamp is a pure function; Get unchanged
}

TEST_F(TuneTest, StepUpDownSaturate) {
  Tunable t(TunableSpec{"test.step", 16, 4, 64, true, ""});
  EXPECT_EQ(t.StepUp(), 32u);
  EXPECT_EQ(t.StepUp(), 64u);
  EXPECT_EQ(t.StepUp(), 64u);  // saturates at max
  t.Set(8);
  EXPECT_EQ(t.StepDown(), 4u);
  EXPECT_EQ(t.StepDown(), 4u);  // saturates at min
}

TEST_F(TuneTest, RegistryCreateOrReturn) {
  TunableSpec spec{"test.registry_knob", 7, 1, 100, false, "a test knob"};
  Tunable* a = Registry::Global().Register(spec);
  Tunable* b = Registry::Global().Register(spec);
  EXPECT_EQ(a, b);  // same name -> same tunable
  EXPECT_EQ(Registry::Global().Find("test.registry_knob"), a);
  EXPECT_EQ(Registry::Global().Find("test.no_such"), nullptr);
}

TEST_F(TuneTest, RegistrySetByName) {
  ProbeGroupSize();  // ensure registered
  EXPECT_TRUE(Registry::Global().Set("probe.group_size", 8));
  EXPECT_EQ(ProbeGroupSize().Get(), 8u);
  EXPECT_TRUE(Registry::Global().Set("probe.group_size", 1000));
  EXPECT_EQ(ProbeGroupSize().Get(), 32u);  // clamped by the same spec
  EXPECT_FALSE(Registry::Global().Set("probe.typo", 8));
}

TEST_F(TuneTest, DumpTextListsEveryKnob) {
  // Touch the core accessors so all are registered.
  ProbeGroupSize();
  AmacRingWidth();
  AmacMinTableBytes();
  StreamBatchRows();
  StreamMaxInflight();
  StreamLatenessBound();
  EpochAdvanceInterval();
  EpochRetireBatch();
  MorselRows();
  SimdBackend();
  const std::string dump = Registry::Global().DumpText();
  for (const char* name :
       {"probe.group_size", "probe.amac_ring", "probe.amac_min_table_bytes",
        "stream.batch_rows", "stream.max_inflight", "stream.lateness_bound",
        "epoch.advance_interval", "epoch.retire_batch", "exec.morsel_rows",
        "simd.backend"}) {
    EXPECT_NE(dump.find(std::string("tunable ") + name), std::string::npos)
        << name;
  }
  // Values() agrees with size() and is sorted.
  const auto values = Registry::Global().Values();
  EXPECT_EQ(values.size(), Registry::Global().size());
  for (size_t i = 1; i < values.size(); ++i) {
    EXPECT_LT(values[i - 1].first, values[i].first);
  }
}

TEST_F(TuneTest, ApplyAllPublishesEveryField) {
  hw::MachineModel m;
  m.probe_group_size = 8;
  m.amac_ring_width = 4;
  m.amac_min_table_bytes = 1u << 20;
  m.stream_batch_rows = 512;
  m.stream_max_inflight = 3;
  m.stream_lateness_bound = 77;
  m.epoch_advance_interval = 16;
  m.epoch_retire_batch = 32;
  m.morsel_rows = 1u << 12;
  m.ApplyAll();
  EXPECT_EQ(hw::DefaultProbeGroupSize(), 8u);
  EXPECT_EQ(hw::DefaultAmacRingWidth(), 4u);
  EXPECT_EQ(hw::DefaultAmacMinTableBytes(), 1u << 20);
  EXPECT_EQ(hw::DefaultStreamBatchRows(), 512u);
  EXPECT_EQ(hw::DefaultStreamMaxInflight(), 3u);
  EXPECT_EQ(hw::DefaultStreamLatenessBound(), 77u);
  EXPECT_EQ(hw::DefaultEpochAdvanceInterval(), 16u);
  EXPECT_EQ(hw::DefaultEpochRetireBatch(), 32u);
  EXPECT_EQ(exec::DefaultMorselRows(), 1u << 12);
}

TEST_F(TuneTest, FromHostDerivesAmacGateFromCaches) {
  // A shared LLC: the gate is the per-core share of it.
  hw::CpuTopology topo;
  topo.logical_cores = 8;
  topo.caches = {{1, "Data", 32u << 10, 64, 8, false},
                 {2, "Unified", 256u << 10, 64, 8, false},
                 {3, "Unified", 16u << 20, 64, 16, true}};
  hw::MachineModel m = hw::MachineModel::FromHost(topo);
  EXPECT_EQ(m.amac_min_table_bytes, (16u << 20) / 8);

  // No shared level: the last private level is the gate (clamped up to
  // the knob's 64KB floor when the cache is smaller than that).
  topo.caches = {{1, "Data", 32u << 10, 64, 8, false},
                 {2, "Unified", 512u << 10, 64, 8, false}};
  m = hw::MachineModel::FromHost(topo);
  EXPECT_EQ(m.amac_min_table_bytes, 512u << 10);

  // No cache info at all: FromHost keeps Server2013's hierarchy, so the
  // gate is the per-core share of its 20MB shared LLC.
  topo.caches.clear();
  m = hw::MachineModel::FromHost(topo);
  EXPECT_EQ(m.amac_min_table_bytes, (20u << 20) / 8);
}

// --- Concurrency: the sanitize-label substance -------------------------

TEST_F(TuneTest, ConcurrentSetGetEveryKnobStaysInBounds) {
  // Register the full core set, then hammer every knob from writer
  // threads while readers assert the invariant: any observed value is in
  // bounds and structurally valid. Run under TSan via the sanitize label.
  std::vector<Tunable*> knobs = {
      &ProbeGroupSize(),    &AmacRingWidth(),       &AmacMinTableBytes(),
      &StreamBatchRows(),   &StreamMaxInflight(),   &StreamLatenessBound(),
      &EpochAdvanceInterval(), &EpochRetireBatch(), &MorselRows()};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&, w] {
      uint64_t x = 0x9E3779B97F4A7C15ULL * (w + 1);
      for (int i = 0; i < 4000; ++i) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        for (Tunable* t : knobs) t->Set(x >> (i % 32));
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        for (Tunable* t : knobs) {
          const uint64_t v = t->Get();
          const TunableSpec& spec = t->spec();
          ASSERT_GE(v, spec.min);
          ASSERT_LE(v, spec.max);
          if (spec.power_of_two) {
            ASSERT_TRUE(IsPow2(v));
          }
        }
      }
    });
  }
  threads[0].join();
  threads[1].join();
  stop.store(true, std::memory_order_release);
  threads[2].join();
  threads[3].join();
}

TEST_F(TuneTest, GroupWidthFlipMidRunIsBitIdentical) {
  // The tentpole's safety claim in executable form: flipping the probe
  // group width (and the AMAC gate) while FindBatch streams batches must
  // never change a result, only the miss-overlap schedule. Expected
  // values come from the scalar path up front.
  const uint64_t build_n = 40'000;
  ops::LinearProbeTable gp_table(build_n);
  ops::ChainedTable amac_table(build_n);
  for (uint64_t i = 0; i < build_n; ++i) {
    const uint64_t key = i * 0x9E3779B97F4A7C15ULL + 1;
    gp_table.Insert(key, i + 1);
    amac_table.Insert(key, i + 1);
  }
  const size_t n = 4096;
  std::vector<uint64_t> probes(n);
  for (size_t i = 0; i < n; ++i) {
    // Mostly hits, every 7th a guaranteed miss.
    probes[i] = i % 7 == 0 ? i * 2 + 2  // even keys are never inserted
                           : (i * 131) % build_n * 0x9E3779B97F4A7C15ULL + 1;
  }
  std::vector<uint64_t> want_values(n);
  std::vector<uint8_t> want_found(n);
  for (size_t i = 0; i < n; ++i) {
    uint64_t v = 0;
    want_found[i] = gp_table.Find(probes[i], &v);
    want_values[i] = want_found[i] ? v : 0;
    // Both tables hold identical contents.
    uint64_t cv = 0;
    ASSERT_EQ(amac_table.Find(probes[i], &cv), (bool)want_found[i]);
  }

  std::atomic<bool> stop{false};
  std::thread flipper([&] {
    const uint32_t widths[] = {4, 8, 16, 32};
    const uint64_t gates[] = {64u << 10, 1u << 30};  // ring-on / ring-off
    uint32_t i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      hw::SetDefaultProbeGroupSize(widths[i % 4]);
      hw::SetDefaultAmacRingWidth(widths[(i + 1) % 4]);
      hw::SetDefaultAmacMinTableBytes(gates[i % 2]);
      ++i;
      std::this_thread::yield();
    }
  });

  std::vector<uint64_t> values(n);
  std::unique_ptr<bool[]> found_buf(new bool[n]);
  for (int iter = 0; iter < 150; ++iter) {
    // group 0 = read the (racing) knob; results must not care.
    const size_t gp_hits =
        gp_table.FindBatch(probes.data(), n, values.data(), found_buf.get(),
                           /*group_size=*/0);
    size_t want_hits = 0;
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(values[i], want_values[i]) << "iter " << iter << " i " << i;
      ASSERT_EQ(found_buf[i], (bool)want_found[i]);
      want_hits += want_found[i];
    }
    ASSERT_EQ(gp_hits, want_hits);

    const size_t amac_hits =
        amac_table.FindBatch(probes.data(), n, values.data(), found_buf.get(),
                             /*group_size=*/0);
    ASSERT_EQ(amac_hits, want_hits);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(values[i], want_values[i]) << "iter " << iter << " i " << i;
      ASSERT_EQ(found_buf[i], (bool)want_found[i]);
    }
  }
  stop.store(true, std::memory_order_release);
  flipper.join();
}

// --- Calibrator --------------------------------------------------------

TEST_F(TuneTest, CalibratorRunOnceTerminatesAndInstallsInBounds) {
  // Tier-1, 1-CPU-safe: tiny footprints, one repetition. The assertion
  // is the contract, not the winner: RunOnce returns, and what it
  // installed is inside every spec bound.
  CalibratorOptions opts;
  opts.footprints = {1u << 16, 1u << 18};
  opts.max_table_bytes = 1u << 20;
  opts.keys_per_trial = 2048;
  opts.repetitions = 1;
  Calibrator calibrator(opts);
  const CalibrationResult result = calibrator.RunOnce();

  EXPECT_TRUE(result.installed);
  EXPECT_EQ(result.trials.size(), 2u);
  EXPECT_GE(result.probe_group_size, ProbeGroupSize().spec().min);
  EXPECT_LE(result.probe_group_size, ProbeGroupSize().spec().max);
  EXPECT_TRUE(IsPow2(result.probe_group_size));
  EXPECT_GE(result.amac_ring_width, AmacRingWidth().spec().min);
  EXPECT_LE(result.amac_ring_width, AmacRingWidth().spec().max);
  EXPECT_TRUE(IsPow2(result.amac_ring_width));
  EXPECT_GE(result.amac_min_table_bytes, AmacMinTableBytes().spec().min);
  EXPECT_LE(result.amac_min_table_bytes, AmacMinTableBytes().spec().max);
  // The installs actually landed in the registry.
  EXPECT_EQ(ProbeGroupSize().Get(), result.probe_group_size);
  EXPECT_EQ(AmacRingWidth().Get(), result.amac_ring_width);
  EXPECT_EQ(AmacMinTableBytes().Get(), result.amac_min_table_bytes);
  EXPECT_FALSE(result.ToString().empty());

  // install=false measures without touching the registry.
  Registry::Global().ResetAll();
  opts.install = false;
  const CalibrationResult dry = Calibrator(opts).RunOnce();
  EXPECT_FALSE(dry.installed);
  EXPECT_EQ(ProbeGroupSize().Get(), ProbeGroupSize().spec().default_value);
}

TEST_F(TuneTest, CalibratorInstallsSimdBackendInBounds) {
  // The SIMD trial must install a backend the *host* can execute — on a
  // machine without AVX2 (or a scalar-only build) the winner is clamped
  // to [0, BestSupported()], never just the compile-time maximum. The
  // winner is a measurement so the test asserts the contract, not which
  // backend won.
  CalibratorOptions opts;
  opts.footprints = {1u << 16};
  opts.max_table_bytes = 1u << 20;
  opts.keys_per_trial = 2048;
  opts.repetitions = 1;
  const CalibrationResult result = Calibrator(opts).RunOnce();

  const uint32_t best = static_cast<uint32_t>(simd::BestSupported());
  EXPECT_LE(result.simd_backend, best);
  EXPECT_EQ(SimdBackend().Get(), result.simd_backend);
  // The trial measured scalar plus every supported vector backend, with
  // one scan and one probe sample per backend.
  ASSERT_EQ(result.simd_backends.size(), static_cast<size_t>(best) + 1);
  EXPECT_EQ(result.simd_scan_ns.size(), result.simd_backends.size());
  EXPECT_EQ(result.simd_probe_ns.size(), result.simd_backends.size());
  EXPECT_EQ(result.simd_backends.front(), 0u);  // scalar is always tried
  for (size_t i = 0; i < result.simd_backends.size(); ++i) {
    EXPECT_EQ(result.simd_backends[i], i);
    EXPECT_GT(result.simd_scan_ns[i], 0.0);
    EXPECT_GT(result.simd_probe_ns[i], 0.0);
  }
  // The report names the winning backend.
  EXPECT_NE(result.ToString().find("simd"), std::string::npos);
}

// --- Controller --------------------------------------------------------

TEST_F(TuneTest, ControllerNudgesStreamBatchRows) {
  Controller ctl(nullptr);
  uint64_t p99 = 0;
  uint64_t sheds = 0;
  ctl.WatchStream([&] { return StreamSignals{p99, sheds}; });

  const uint64_t start = StreamBatchRows().Get();
  // p99 over target: one StepDown per tick.
  p99 = ctl.options().emit_p99_target_ns * 2;
  ctl.TickOnce();
  EXPECT_EQ(StreamBatchRows().Get(), start / 2);
  // Deep under target: StepUp.
  p99 = 1;
  ctl.TickOnce();
  EXPECT_EQ(StreamBatchRows().Get(), start);
  // In the hysteresis band: no move.
  p99 = ctl.options().emit_p99_target_ns / 2;
  const uint64_t before_band = StreamBatchRows().Get();
  ctl.TickOnce();
  EXPECT_EQ(StreamBatchRows().Get(), before_band);
  // Sheds win over latency: StepUp even with p99 over target.
  sheds += 5;
  p99 = ctl.options().emit_p99_target_ns * 2;
  ctl.TickOnce();
  EXPECT_EQ(StreamBatchRows().Get(), before_band * 2);
  // Same cumulative shed count again = no new sheds: back to StepDown.
  ctl.TickOnce();
  EXPECT_EQ(StreamBatchRows().Get(), before_band);
  EXPECT_EQ(ctl.ticks(), 5u);
  EXPECT_EQ(ctl.adjustments(), 4u);

  // Bounded: a storm of down-ticks saturates at the spec min, silently.
  p99 = ctl.options().emit_p99_target_ns * 100;
  for (int i = 0; i < 40; ++i) ctl.TickOnce();
  EXPECT_EQ(StreamBatchRows().Get(), StreamBatchRows().spec().min);
}

TEST_F(TuneTest, ControllerStepsEpochKnobsAndDriftsBack) {
  Controller ctl(nullptr);
  uint64_t retired = 0;
  ctl.WatchEpoch([&] { return EpochSignals{retired}; });

  const uint64_t batch_default = EpochRetireBatch().spec().default_value;
  const uint64_t interval_default = EpochAdvanceInterval().spec().default_value;
  // Over budget: both knobs tighten.
  retired = ctl.options().epoch_bytes_budget + 1;
  ctl.TickOnce();
  EXPECT_EQ(EpochRetireBatch().Get(), batch_default / 2);
  EXPECT_EQ(EpochAdvanceInterval().Get(), interval_default / 2);
  ctl.TickOnce();
  EXPECT_EQ(EpochRetireBatch().Get(), batch_default / 4);
  // Pressure gone: one step per tick back toward the defaults, stopping
  // exactly there (never past).
  retired = 0;
  ctl.TickOnce();
  EXPECT_EQ(EpochRetireBatch().Get(), batch_default / 2);
  ctl.TickOnce();
  ctl.TickOnce();
  EXPECT_EQ(EpochRetireBatch().Get(), batch_default);
  EXPECT_EQ(EpochAdvanceInterval().Get(), interval_default);
  // At equilibrium a tick adjusts nothing.
  const uint64_t adjustments = ctl.adjustments();
  ctl.TickOnce();
  EXPECT_EQ(ctl.adjustments(), adjustments);
}

TEST_F(TuneTest, ControllerStartStopOnExecutor) {
  exec::Executor executor(2);
  ControllerOptions opts;
  opts.interval_ms = 1;
  Controller ctl(&executor, opts);
  std::atomic<uint64_t> reads{0};
  ctl.WatchStream([&] {
    reads.fetch_add(1, std::memory_order_relaxed);
    return StreamSignals{};
  });
  ctl.Start();
  ctl.Start();  // idempotent
  while (ctl.ticks() < 3) std::this_thread::yield();
  ctl.Stop();
  ctl.Stop();  // idempotent
  const uint64_t ticks = ctl.ticks();
  EXPECT_GE(ticks, 3u);
  EXPECT_GE(reads.load(), 3u);
  executor.Shutdown();
}

// --- svc surface -------------------------------------------------------

TEST_F(TuneTest, ServiceDumpsTunablesAndAppliesConfigHook) {
  svc::ServiceOptions options;
  options.worker_threads = 1;
  options.tunables = {{"stream.batch_rows", 512}, {"probe.group_size", 8}};
  kv::KvStore kv;
  svc::Service service(options, &kv);
  // The config hook applied (through the central clamp).
  EXPECT_EQ(hw::DefaultStreamBatchRows(), 512u);
  EXPECT_EQ(hw::DefaultProbeGroupSize(), 8u);
  // Metrics dump carries the knob lines next to the metric lines.
  const std::string dump = service.DumpMetricsText();
  EXPECT_NE(dump.find("svc.completed"), std::string::npos);
  EXPECT_NE(dump.find("tunable stream.batch_rows 512"), std::string::npos);
  EXPECT_NE(dump.find("tunable probe.group_size 8"), std::string::npos);
  EXPECT_EQ(service.DumpTunablesText(), Registry::Global().DumpText());
}

}  // namespace
}  // namespace hwstar::tune
