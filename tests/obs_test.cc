#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "hwstar/obs/histogram.h"
#include "hwstar/obs/metric.h"
#include "hwstar/obs/registry.h"

namespace hwstar::obs {
namespace {

// --- Nearest-rank quantile definition -------------------------------------

// The pinned definition: 0-based index ceil(q*n)-1. The regression this
// guards: idx = q*n made p99 of exactly 100 samples return the max
// (index 99) instead of the 99th smallest (index 98).
TEST(NearestRankTest, PinnedDefinition) {
  EXPECT_EQ(NearestRankIndex(0.99, 100), 98u);
  EXPECT_EQ(NearestRankIndex(0.50, 100), 49u);
  EXPECT_EQ(NearestRankIndex(0.90, 100), 89u);
  EXPECT_EQ(NearestRankIndex(1.00, 100), 99u);
  EXPECT_EQ(NearestRankIndex(0.00, 100), 0u);
  EXPECT_EQ(NearestRankIndex(0.01, 100), 0u);
  EXPECT_EQ(NearestRankIndex(0.50, 1), 0u);
  EXPECT_EQ(NearestRankIndex(0.999, 3), 2u);
}

// --- Bucket layout ---------------------------------------------------------

TEST(BucketLayoutTest, BucketsAreContiguousAndExactBelowOneOctave) {
  BucketLayout layout;
  // Unit-width buckets through the first two octaves (values < 128).
  EXPECT_EQ(layout.BucketIndex(0), 0u);
  EXPECT_EQ(layout.BucketIndex(63), 63u);
  EXPECT_EQ(layout.BucketIndex(64), 64u);
  EXPECT_EQ(layout.BucketIndex(127), 127u);
  EXPECT_EQ(layout.BucketIndex(128), 128u);
  for (uint32_t i = 0; i < 128; ++i) {
    EXPECT_EQ(layout.BucketWidth(i), 1u);
    EXPECT_EQ(layout.BucketValue(i), i);
  }
  // Every bucket starts exactly where the previous one ends.
  for (uint32_t i = 0; i + 1 < layout.num_buckets(); ++i) {
    ASSERT_EQ(layout.BucketLowerBound(i) + layout.BucketWidth(i),
              layout.BucketLowerBound(i + 1))
        << "gap at bucket " << i;
  }
}

TEST(BucketLayoutTest, IndexRoundTripsAcrossMagnitudes) {
  BucketLayout layout;
  const uint64_t clamp = (uint64_t{1} << layout.max_value_bits) - 1;
  std::mt19937_64 rng(42);
  for (int trial = 0; trial < 100000; ++trial) {
    const uint64_t v = rng() >> (rng() % 64);  // exponentially spread
    const uint32_t index = layout.BucketIndex(v);
    ASSERT_LT(index, layout.num_buckets());
    const uint64_t clamped = std::min(v, clamp);
    const uint64_t lo = layout.BucketLowerBound(index);
    ASSERT_GE(clamped, lo);
    ASSERT_LT(clamped, lo + layout.BucketWidth(index));
    // The reported value is within half a bucket: <= ~0.8% relative.
    if (v <= clamp && v > 0) {
      const double err =
          std::abs(static_cast<double>(layout.BucketValue(index)) -
                   static_cast<double>(v)) /
          static_cast<double>(v);
      ASSERT_LE(err, 1.0 / 128.0 + 1e-9) << "value " << v;
    }
  }
}

// --- Histogram -------------------------------------------------------------

TEST(HistogramTest, ExactForSmallValuesAndPinnedQuantiles) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Record(v);
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count(), 100u);
  EXPECT_EQ(s.sum(), 5050u);
  EXPECT_EQ(s.max(), 100u);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  // Values below 128 land in unit-width buckets, so quantiles are exact —
  // and must follow the nearest-rank definition: p99 of 1..100 is 99.
  EXPECT_EQ(s.Quantile(0.50), 50u);
  EXPECT_EQ(s.Quantile(0.90), 90u);
  EXPECT_EQ(s.Quantile(0.99), 99u);
  EXPECT_EQ(s.Quantile(1.00), 100u);
}

TEST(HistogramTest, QuantilesWithinBucketErrorBound) {
  Histogram h;
  std::mt19937_64 rng(7);
  std::lognormal_distribution<double> dist(11.0, 1.5);  // ~µs-scale nanos
  std::vector<uint64_t> values;
  values.reserve(200000);
  for (int i = 0; i < 200000; ++i) {
    const auto v = static_cast<uint64_t>(dist(rng)) + 1;
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  const HistogramSnapshot s = h.Snapshot();
  ASSERT_EQ(s.count(), values.size());
  for (double q : {0.50, 0.90, 0.99, 0.999}) {
    const uint64_t exact = values[NearestRankIndex(q, values.size())];
    const uint64_t approx = s.Quantile(q);
    const double rel = std::abs(static_cast<double>(approx) -
                                static_cast<double>(exact)) /
                       static_cast<double>(exact);
    EXPECT_LE(rel, 0.02) << "q=" << q << " exact=" << exact
                         << " approx=" << approx;
  }
}

TEST(HistogramTest, MemoryIsFixedIndependentOfSampleCount) {
  Histogram h;
  h.Record(1);
  const size_t bytes_after_first = h.allocated_bytes();
  EXPECT_GT(bytes_after_first, 0u);
  for (uint64_t i = 0; i < 1000000; ++i) h.Record(i % 100000);
  // A million more samples: not one more byte (same thread, same shard).
  EXPECT_EQ(h.allocated_bytes(), bytes_after_first);
  EXPECT_EQ(h.count(), 1000001u);
}

TEST(HistogramTest, MergeMatchesCombinedRecording) {
  Histogram a, b, combined;
  std::mt19937_64 rng(99);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t v = rng() % 1000000;
    (i % 2 == 0 ? a : b).Record(v);
    combined.Record(v);
  }
  HistogramSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  const HistogramSnapshot expect = combined.Snapshot();
  EXPECT_EQ(merged.count(), expect.count());
  EXPECT_EQ(merged.sum(), expect.sum());
  EXPECT_EQ(merged.max(), expect.max());
  for (double q : {0.5, 0.9, 0.99}) {
    EXPECT_EQ(merged.Quantile(q), expect.Quantile(q)) << "q=" << q;
  }
}

TEST(HistogramTest, ValuesAboveClampSaturateButMaxStaysExact) {
  Histogram h;
  const uint64_t huge = uint64_t{1} << 50;  // above the 2^42 clamp
  h.Record(huge);
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.max(), huge);          // exact max tracked outside buckets
  EXPECT_EQ(s.sum(), huge);          // exact sum too
  EXPECT_GE(s.Quantile(0.5), uint64_t{1} << 41);  // top of range
  EXPECT_LE(s.Quantile(0.5), huge);  // never above the observed max
}

TEST(HistogramTest, EmptySnapshotIsZeroes) {
  Histogram h;
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.Quantile(0.99), 0u);
  EXPECT_EQ(s.max(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

// --- Counter / Gauge -------------------------------------------------------

TEST(CounterTest, ConcurrentAddsAreExact) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAddValue) {
  Gauge g;
  EXPECT_EQ(g.value(), 0);
  g.Set(42);
  EXPECT_EQ(g.value(), 42);
  g.Add(-50);
  EXPECT_EQ(g.value(), -8);
}

// --- Registry --------------------------------------------------------------

TEST(RegistryTest, OwningGetReturnsSameMetricByName) {
  Registry r;
  Counter* c = r.GetCounter("requests");
  c->Add(3);
  EXPECT_EQ(r.GetCounter("requests"), c);
  EXPECT_EQ(r.GetCounter("requests")->value(), 3u);
  Histogram* h = r.GetHistogram("latency");
  EXPECT_EQ(r.GetHistogram("latency"), h);
  EXPECT_EQ(r.size(), 2u);
}

TEST(RegistryTest, DumpTextRendersOwnedAndBorrowed) {
  Registry r;
  r.GetCounter("owned.counter")->Add(3);
  r.GetGauge("owned.gauge")->Set(-2);
  r.GetHistogram("owned.hist")->Record(5);

  Counter borrowed;
  borrowed.Add(7);
  r.RegisterCounter("borrowed.counter", &borrowed);

  const std::string text = r.DumpText();
  EXPECT_NE(text.find("counter owned.counter 3\n"), std::string::npos) << text;
  EXPECT_NE(text.find("gauge owned.gauge -2\n"), std::string::npos) << text;
  EXPECT_NE(text.find("histogram owned.hist count=1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("counter borrowed.counter 7\n"), std::string::npos)
      << text;
  // Borrowed metrics are live views: later updates show in the next dump.
  borrowed.Add(1);
  EXPECT_NE(r.DumpText().find("counter borrowed.counter 8\n"),
            std::string::npos);
}

// --- Concurrency (the TSan target) -----------------------------------------

// N recorders hammer one histogram while a snapshotter reads it. Under
// TSan this proves the hot path is race-free; the final assertions prove
// no sample is lost or double counted, and quantiles stay within the
// bucket error bound of the exact nearest-rank values.
TEST(HistogramConcurrencyTest, ConcurrentRecordAndSnapshot) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;

  std::atomic<bool> stop{false};
  std::thread snapshotter([&] {
    uint64_t last_count = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const HistogramSnapshot s = h.Snapshot();
      // Counts only grow, and never past what's been recorded.
      EXPECT_GE(s.count(), last_count);
      EXPECT_LE(s.count(), kThreads * kPerThread);
      last_count = s.count();
    }
  });

  std::vector<std::thread> recorders;
  std::vector<std::vector<uint64_t>> recorded(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    recorders.emplace_back([&h, &recorded, t] {
      std::mt19937_64 rng(1000 + t);
      std::lognormal_distribution<double> dist(9.0, 2.0);
      auto& mine = recorded[static_cast<size_t>(t)];
      mine.reserve(kPerThread);
      for (uint64_t i = 0; i < kPerThread; ++i) {
        const auto v = static_cast<uint64_t>(dist(rng)) + 1;
        mine.push_back(v);
        h.Record(v);
      }
    });
  }
  for (auto& t : recorders) t.join();
  stop.store(true, std::memory_order_release);
  snapshotter.join();

  std::vector<uint64_t> all;
  uint64_t sum = 0;
  for (const auto& v : recorded) {
    for (uint64_t x : v) {
      all.push_back(x);
      sum += x;
    }
  }
  std::sort(all.begin(), all.end());

  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count(), all.size());  // exact: every sample counted once
  EXPECT_EQ(s.sum(), sum);
  EXPECT_EQ(s.max(), all.back());
  for (double q : {0.5, 0.9, 0.99}) {
    const uint64_t exact = all[NearestRankIndex(q, all.size())];
    const uint64_t approx = s.Quantile(q);
    const double rel = std::abs(static_cast<double>(approx) -
                                static_cast<double>(exact)) /
                       static_cast<double>(exact);
    EXPECT_LE(rel, 0.02) << "q=" << q;
  }
}

TEST(RegistryConcurrencyTest, ConcurrentGetRecordAndDump) {
  Registry r;
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&r] {
      for (int i = 0; i < kIters; ++i) {
        r.GetCounter("shared.counter")->Inc();
        r.GetHistogram("shared.hist")->Record(static_cast<uint64_t>(i));
        if (i % 256 == 0) (void)r.DumpText();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(r.GetCounter("shared.counter")->value(),
            static_cast<uint64_t>(kThreads * kIters));
  EXPECT_EQ(r.GetHistogram("shared.hist")->count(),
            static_cast<uint64_t>(kThreads * kIters));
}

}  // namespace
}  // namespace hwstar::obs
