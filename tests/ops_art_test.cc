#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "hwstar/common/random.h"
#include "hwstar/ops/art.h"

namespace hwstar::ops {
namespace {

TEST(ArtTest, EmptyTree) {
  AdaptiveRadixTree art;
  uint64_t v;
  EXPECT_FALSE(art.Find(0, &v));
  EXPECT_FALSE(art.Find(~uint64_t{0}, &v));
  EXPECT_EQ(art.size(), 0u);
}

TEST(ArtTest, SingleKey) {
  AdaptiveRadixTree art;
  art.Insert(42, 420);
  uint64_t v;
  ASSERT_TRUE(art.Find(42, &v));
  EXPECT_EQ(v, 420u);
  EXPECT_FALSE(art.Find(43, &v));
  EXPECT_EQ(art.size(), 1u);
}

TEST(ArtTest, OverwriteDuplicate) {
  AdaptiveRadixTree art;
  art.Insert(7, 1);
  art.Insert(7, 2);
  uint64_t v;
  ASSERT_TRUE(art.Find(7, &v));
  EXPECT_EQ(v, 2u);
  EXPECT_EQ(art.size(), 1u);
}

TEST(ArtTest, KeysSharingLongPrefix) {
  // Keys differing only in the last byte exercise lazy expansion and
  // path compression: one inner node 7 levels deep (or a compressed
  // path).
  AdaptiveRadixTree art;
  art.Insert(0x1122334455667700ULL, 1);
  art.Insert(0x1122334455667701ULL, 2);
  art.Insert(0x1122334455667802ULL, 3);
  uint64_t v;
  ASSERT_TRUE(art.Find(0x1122334455667700ULL, &v));
  EXPECT_EQ(v, 1u);
  ASSERT_TRUE(art.Find(0x1122334455667701ULL, &v));
  EXPECT_EQ(v, 2u);
  ASSERT_TRUE(art.Find(0x1122334455667802ULL, &v));
  EXPECT_EQ(v, 3u);
  EXPECT_FALSE(art.Find(0x1122334455667703ULL, &v));
  // Only a handful of inner nodes, thanks to path compression.
  auto counts = art.CountNodes();
  EXPECT_EQ(counts.leaves, 3u);
  EXPECT_LE(counts.node4 + counts.node16 + counts.node48 + counts.node256,
            3u);
}

TEST(ArtTest, NodeGrowth4To16To48To256) {
  // Dense low bytes under one parent force every growth step.
  AdaptiveRadixTree art;
  for (uint64_t b = 0; b < 256; ++b) {
    art.Insert(0xAA00 | b, b);
  }
  auto counts = art.CountNodes();
  EXPECT_EQ(counts.leaves, 256u);
  EXPECT_EQ(counts.node256, 1u);
  uint64_t v;
  for (uint64_t b = 0; b < 256; ++b) {
    ASSERT_TRUE(art.Find(0xAA00 | b, &v)) << b;
    EXPECT_EQ(v, b);
  }
}

TEST(ArtTest, AdaptivityCensus) {
  // Sparse random keys should be dominated by small nodes.
  AdaptiveRadixTree art;
  hwstar::Xoshiro256 rng(5);
  for (int i = 0; i < 10000; ++i) art.Insert(rng.Next(), i);
  auto counts = art.CountNodes();
  EXPECT_GT(counts.node4 + counts.node16, counts.node48 + counts.node256);
}

TEST(ArtTest, RangeScanOrderedAndBounded) {
  AdaptiveRadixTree art;
  for (uint64_t k = 0; k < 1000; k += 3) art.Insert(k, k + 1);
  std::vector<uint64_t> out;
  const uint64_t n = art.RangeScan(10, 50, &out);
  // Keys 12,15,...,48 -> 13 values.
  EXPECT_EQ(n, 13u);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  EXPECT_EQ(out.front(), 13u);
  EXPECT_EQ(out.back(), 49u);
}

TEST(ArtTest, RangeScanFullDomainEdges) {
  AdaptiveRadixTree art;
  art.Insert(0, 100);
  art.Insert(~uint64_t{0}, 200);
  art.Insert(1ull << 63, 300);
  std::vector<uint64_t> out;
  EXPECT_EQ(art.RangeScan(0, ~uint64_t{0}, &out), 3u);
  EXPECT_EQ(out, (std::vector<uint64_t>{100, 300, 200}));
}

TEST(ArtTest, MoveSemantics) {
  AdaptiveRadixTree a;
  a.Insert(1, 10);
  AdaptiveRadixTree b = std::move(a);
  uint64_t v;
  EXPECT_TRUE(b.Find(1, &v));
  EXPECT_EQ(b.size(), 1u);
  a = std::move(b);
  EXPECT_TRUE(a.Find(1, &v));
}

TEST(ArtTest, MemoryBytesNonZero) {
  AdaptiveRadixTree art;
  for (uint64_t k = 0; k < 1000; ++k) art.Insert(k, k);
  EXPECT_GT(art.MemoryBytes(), 1000u * 8);
}

TEST(ArtTest, EraseBasic) {
  AdaptiveRadixTree art;
  art.Insert(1, 10);
  art.Insert(2, 20);
  EXPECT_TRUE(art.Erase(1));
  EXPECT_FALSE(art.Erase(1));  // already gone
  EXPECT_FALSE(art.Erase(99));
  uint64_t v;
  EXPECT_FALSE(art.Find(1, &v));
  EXPECT_TRUE(art.Find(2, &v));
  EXPECT_EQ(art.size(), 1u);
  EXPECT_TRUE(art.Erase(2));
  EXPECT_EQ(art.size(), 0u);
  art.Insert(1, 11);  // reusable after emptying
  EXPECT_TRUE(art.Find(1, &v));
  EXPECT_EQ(v, 11u);
}

TEST(ArtTest, EraseCollapsesAcrossNodeKinds) {
  // Dense low bytes grow nodes through N4/N16/N48/N256; erasing back down
  // exercises every RemoveChild shape and the single-child collapse.
  AdaptiveRadixTree art;
  for (uint64_t k = 0; k < 300; ++k) art.Insert(k, k);
  for (uint64_t k = 0; k < 300; k += 2) EXPECT_TRUE(art.Erase(k));
  EXPECT_EQ(art.size(), 150u);
  uint64_t v;
  for (uint64_t k = 0; k < 300; ++k) {
    EXPECT_EQ(art.Find(k, &v), k % 2 == 1) << k;
    if (k % 2 == 1) EXPECT_EQ(v, k);
  }
  std::vector<uint64_t> out;
  EXPECT_EQ(art.RangeScan(0, 300, &out), 150u);
}

TEST(ArtTest, RangeScanEntriesMatchesScan) {
  AdaptiveRadixTree art;
  for (uint64_t k = 0; k < 64; ++k) art.Insert(k << 40, k);
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  EXPECT_EQ(art.RangeScanEntries(0, ~uint64_t{0}, &entries), 64u);
  for (uint64_t k = 0; k < 64; ++k) {
    EXPECT_EQ(entries[k].first, k << 40);
    EXPECT_EQ(entries[k].second, k);
  }
}

TEST(ArtTest, RandomInsertEraseAgainstReference) {
  hwstar::Xoshiro256 rng(2024);
  AdaptiveRadixTree art;
  std::map<uint64_t, uint64_t> ref;
  for (uint64_t i = 0; i < 60000; ++i) {
    const uint64_t k = rng.NextBounded(1 << 12);
    if (rng.NextBounded(3) == 0) {
      EXPECT_EQ(art.Erase(k), ref.erase(k) == 1) << "op " << i;
    } else {
      art.Insert(k, i);
      ref[k] = i;
    }
  }
  EXPECT_EQ(art.size(), ref.size());
  uint64_t v;
  for (uint64_t k = 0; k < (1 << 12); ++k) {
    auto it = ref.find(k);
    EXPECT_EQ(art.Find(k, &v), it != ref.end()) << k;
    if (it != ref.end()) EXPECT_EQ(v, it->second);
  }
}

/// Property: ART agrees with std::map across key distributions.
class ArtEquivalence
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint64_t>> {};

TEST_P(ArtEquivalence, MatchesReferenceMap) {
  const auto [count, domain] = GetParam();
  hwstar::Xoshiro256 rng(count ^ domain);
  AdaptiveRadixTree art;
  std::map<uint64_t, uint64_t> ref;
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t k = rng.NextBounded(domain);
    art.Insert(k, i);
    ref[k] = i;
  }
  EXPECT_EQ(art.size(), ref.size());
  // Point lookups.
  for (uint64_t probe = 0; probe < 2000; ++probe) {
    const uint64_t k = rng.NextBounded(domain * 2);
    uint64_t v;
    const bool found = art.Find(k, &v);
    auto it = ref.find(k);
    EXPECT_EQ(found, it != ref.end()) << k;
    if (found) EXPECT_EQ(v, it->second);
  }
  // Range scan equals in-order reference walk.
  const uint64_t lo = domain / 4, hi = domain / 2;
  std::vector<uint64_t> got, want;
  art.RangeScan(lo, hi, &got);
  for (auto it = ref.lower_bound(lo); it != ref.end() && it->first <= hi;
       ++it) {
    want.push_back(it->second);
  }
  EXPECT_EQ(got, want);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ArtEquivalence,
    ::testing::Combine(::testing::Values(10u, 1000u, 50000u),
                       ::testing::Values(100u, 1u << 16, 1ull << 40)));

}  // namespace
}  // namespace hwstar::ops
