#include <gtest/gtest.h>

#include "hwstar/hw/machine_model.h"
#include "hwstar/sim/cache_sim.h"
#include "hwstar/sim/prefetcher.h"
#include "hwstar/sim/tlb.h"

namespace hwstar::sim {
namespace {

hw::CacheLevelSpec SmallCache(uint64_t size = 1024, uint32_t line = 64,
                              uint32_t ways = 2) {
  hw::CacheLevelSpec spec;
  spec.size_bytes = size;
  spec.line_bytes = line;
  spec.associativity = ways;
  spec.hit_latency_cycles = 4;
  return spec;
}

TEST(CacheLevelTest, FirstAccessMissesSecondHits) {
  CacheLevel cache(SmallCache());
  EXPECT_FALSE(cache.Access(0x1000, false));
  EXPECT_TRUE(cache.Access(0x1000, false));
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(CacheLevelTest, SameLineDifferentBytesHit) {
  CacheLevel cache(SmallCache());
  cache.Access(0x1000, false);
  EXPECT_TRUE(cache.Access(0x1004, false));
  EXPECT_TRUE(cache.Access(0x103F, false));
  // Next line misses.
  EXPECT_FALSE(cache.Access(0x1040, false));
}

TEST(CacheLevelTest, LruEvictionWithinSet) {
  // 1KB, 2-way, 64B lines -> 8 sets. Addresses with identical set index:
  // stride = 8 sets * 64B = 512B.
  CacheLevel cache(SmallCache());
  EXPECT_EQ(cache.num_sets(), 8u);
  cache.Access(0x0000, false);   // set 0, way A
  cache.Access(0x0200, false);   // set 0, way B
  cache.Access(0x0000, false);   // touch A (B becomes LRU)
  cache.Access(0x0400, false);   // evicts B
  EXPECT_TRUE(cache.Contains(0x0000));
  EXPECT_FALSE(cache.Contains(0x0200));
  EXPECT_TRUE(cache.Contains(0x0400));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(CacheLevelTest, DirtyEvictionCountsWriteback) {
  CacheLevel cache(SmallCache());
  cache.Access(0x0000, /*is_write=*/true);
  cache.Access(0x0200, false);
  cache.Access(0x0400, false);  // evicts LRU = dirty 0x0000
  EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(CacheLevelTest, CleanEvictionNoWriteback) {
  CacheLevel cache(SmallCache());
  cache.Access(0x0000, false);
  cache.Access(0x0200, false);
  cache.Access(0x0400, false);
  EXPECT_EQ(cache.stats().writebacks, 0u);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(CacheLevelTest, FlushInvalidatesKeepsStats) {
  CacheLevel cache(SmallCache());
  cache.Access(0x1000, false);
  cache.Flush();
  EXPECT_FALSE(cache.Contains(0x1000));
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_FALSE(cache.Access(0x1000, false));
}

TEST(CacheLevelTest, WorkingSetWithinCapacityAllHitsAfterWarmup) {
  // 1KB cache; touch 512B working set repeatedly.
  CacheLevel cache(SmallCache());
  for (uint64_t a = 0; a < 512; a += 64) cache.Access(a, false);
  cache.ResetStats();
  for (int rep = 0; rep < 10; ++rep) {
    for (uint64_t a = 0; a < 512; a += 64) cache.Access(a, false);
  }
  EXPECT_EQ(cache.stats().misses, 0u);
  EXPECT_EQ(cache.stats().hits, 80u);
}

TEST(CacheLevelTest, WorkingSetBeyondCapacityThrashes) {
  // 1KB cache, sequential sweep over 4KB: with LRU every line misses every
  // round.
  CacheLevel cache(SmallCache());
  for (int rep = 0; rep < 3; ++rep) {
    for (uint64_t a = 0; a < 4096; a += 64) cache.Access(a, false);
  }
  EXPECT_GT(cache.stats().miss_ratio(), 0.99);
}

TEST(CacheLevelTest, DeterministicReplay) {
  CacheLevel a(SmallCache()), b(SmallCache());
  for (uint64_t i = 0; i < 1000; ++i) {
    const uint64_t addr = (i * 2654435761u) % 8192;
    a.Access(addr, i % 3 == 0);
    b.Access(addr, i % 3 == 0);
  }
  EXPECT_EQ(a.stats().hits, b.stats().hits);
  EXPECT_EQ(a.stats().misses, b.stats().misses);
  EXPECT_EQ(a.stats().writebacks, b.stats().writebacks);
}

// Associativity sweep: a conflict pattern of K+1 lines mapping to one set
// thrashes a K-way cache but fits a (K+1)-way cache.
class AssociativityTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(AssociativityTest, ConflictMissesDependOnWays) {
  const uint32_t ways = GetParam();
  hw::CacheLevelSpec spec;
  spec.line_bytes = 64;
  spec.associativity = ways;
  spec.size_bytes = 64 * ways * 8;  // 8 sets
  CacheLevel cache(spec);
  const uint64_t stride = 8 * 64;  // same set every time
  // ways+1 conflicting lines, round-robin: always evicting the next needed.
  for (int rep = 0; rep < 5; ++rep) {
    for (uint32_t k = 0; k <= ways; ++k) {
      cache.Access(k * stride, false);
    }
  }
  EXPECT_GT(cache.stats().miss_ratio(), 0.99);

  // The same pattern with `ways` lines fits.
  CacheLevel cache2(spec);
  for (int rep = 0; rep < 5; ++rep) {
    for (uint32_t k = 0; k < ways; ++k) {
      cache2.Access(k * stride, false);
    }
  }
  EXPECT_EQ(cache2.stats().misses, ways);
}

INSTANTIATE_TEST_SUITE_P(Ways, AssociativityTest,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(TlbTest, HitWithinPage) {
  Tlb tlb(hw::TlbSpec{4, 4096, 30});
  EXPECT_FALSE(tlb.Access(0x1000));
  EXPECT_TRUE(tlb.Access(0x1FFF));
  EXPECT_FALSE(tlb.Access(0x2000));
}

TEST(TlbTest, LruReplacement) {
  Tlb tlb(hw::TlbSpec{2, 4096, 30});
  tlb.Access(0 << 12);
  tlb.Access(1 << 12);
  tlb.Access(0 << 12);       // refresh page 0
  tlb.Access(2 << 12);       // evicts page 1
  EXPECT_TRUE(tlb.Access(0 << 12));
  EXPECT_FALSE(tlb.Access(1 << 12));
}

TEST(TlbTest, MissRatioSequentialVsRandom) {
  // Sequential 64B touches: 1 miss per 64 accesses (4KB pages).
  Tlb seq(hw::TlbSpec{64, 4096, 30});
  for (uint64_t a = 0; a < 64 * 4096; a += 64) seq.Access(a);
  EXPECT_LT(seq.stats().miss_ratio(), 0.02);

  // Random touches over 1024 pages with a 64-entry TLB: mostly misses.
  Tlb rnd(hw::TlbSpec{64, 4096, 30});
  uint64_t x = 12345;
  for (int i = 0; i < 10000; ++i) {
    x = x * 6364136223846793005ULL + 1;
    rnd.Access(((x >> 33) % 1024) << 12);
  }
  EXPECT_GT(rnd.stats().miss_ratio(), 0.8);
}

TEST(TlbTest, FlushDropsEntries) {
  Tlb tlb(hw::TlbSpec{8, 4096, 30});
  tlb.Access(0x1000);
  tlb.Flush();
  EXPECT_FALSE(tlb.Access(0x1000));
}

TEST(PrefetcherTest, DetectsConstantStride) {
  StridePrefetcher pf(4, 2, 2, 64);
  std::vector<uint64_t> out;
  // Sequential lines: stride 64.
  pf.Observe(0, &out);
  pf.Observe(64, &out);    // stride learned
  pf.Observe(128, &out);   // confidence reached
  EXPECT_FALSE(out.empty());
  EXPECT_EQ(out[0], 128u + 64u);
  EXPECT_EQ(out[1], 128u + 128u);
}

TEST(PrefetcherTest, NoPrefetchOnRandomPattern) {
  StridePrefetcher pf(4, 2, 2, 64);
  std::vector<uint64_t> out;
  uint64_t total = 0;
  uint64_t x = 99;
  for (int i = 0; i < 200; ++i) {
    x = x * 6364136223846793005ULL + 1;
    pf.Observe((x >> 30) & ~uint64_t{63}, &out);
    total += out.size();
  }
  // Far-apart random addresses never match a stream window.
  EXPECT_EQ(total, 0u);
}

TEST(PrefetcherTest, NegativeStrideSupported) {
  StridePrefetcher pf(4, 1, 2, 64);
  std::vector<uint64_t> out;
  pf.Observe(1024, &out);
  pf.Observe(960, &out);
  pf.Observe(896, &out);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out[0], 896u - 64u);
}

TEST(PrefetcherTest, ResetForgetsStreams) {
  StridePrefetcher pf(4, 2, 2, 64);
  std::vector<uint64_t> out;
  pf.Observe(0, &out);
  pf.Observe(64, &out);
  pf.Observe(128, &out);
  EXPECT_FALSE(out.empty());
  pf.Reset();
  pf.Observe(192, &out);
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace hwstar::sim
