#include <gtest/gtest.h>

#include "hwstar/ops/selection.h"
#include "hwstar/simd/backend.h"
#include "hwstar/tune/tunable.h"
#include "hwstar/workload/distributions.h"

namespace hwstar::ops {
namespace {

TEST(SelectionTest, BranchingBasic) {
  std::vector<int64_t> v = {5, 10, 15, 20, 25};
  std::vector<uint32_t> out;
  EXPECT_EQ(SelectBranching(v, 10, 21, &out), 3u);
  EXPECT_EQ(out, (std::vector<uint32_t>{1, 2, 3}));
}

TEST(SelectionTest, BranchFreeBasic) {
  std::vector<int64_t> v = {5, 10, 15, 20, 25};
  std::vector<uint32_t> out;
  EXPECT_EQ(SelectBranchFree(v, 10, 21, &out), 3u);
  EXPECT_EQ(out, (std::vector<uint32_t>{1, 2, 3}));
}

TEST(SelectionTest, BitmapBasic) {
  std::vector<int64_t> v = {5, 10, 15, 20, 25};
  std::vector<uint32_t> out;
  EXPECT_EQ(SelectBitmap(v, 10, 21, &out), 3u);
  EXPECT_EQ(out, (std::vector<uint32_t>{1, 2, 3}));
}

TEST(SelectionTest, EmptyInput) {
  std::vector<int64_t> v;
  std::vector<uint32_t> out;
  EXPECT_EQ(SelectBranching(v, 0, 10, &out), 0u);
  EXPECT_EQ(SelectBranchFree(v, 0, 10, &out), 0u);
  EXPECT_EQ(SelectBitmap(v, 0, 10, &out), 0u);
}

TEST(SelectionTest, NothingQualifies) {
  std::vector<int64_t> v = {1, 2, 3};
  std::vector<uint32_t> out;
  EXPECT_EQ(SelectBranchFree(v, 100, 200, &out), 0u);
  EXPECT_TRUE(out.empty());
}

TEST(SelectionTest, EverythingQualifies) {
  std::vector<int64_t> v = {1, 2, 3};
  std::vector<uint32_t> out;
  EXPECT_EQ(SelectBitmap(v, 0, 10, &out), 3u);
  EXPECT_EQ(out.size(), 3u);
}

TEST(SelectionTest, CountMatchesSelect) {
  std::vector<int64_t> v = {3, 1, 4, 1, 5, 9, 2, 6};
  std::vector<uint32_t> out;
  EXPECT_EQ(CountInRange(v, 2, 6), SelectBranching(v, 2, 6, &out));
}

TEST(BitmapTest, BuildSetsExactBits) {
  std::vector<int64_t> v(130, 0);
  v[0] = 100;
  v[64] = 100;
  v[129] = 100;
  std::vector<uint64_t> bitmap;
  BuildSelectionBitmap(v, 50, 200, &bitmap);
  ASSERT_EQ(bitmap.size(), 3u);
  EXPECT_EQ(bitmap[0], 1u);
  EXPECT_EQ(bitmap[1], 1u);
  EXPECT_EQ(bitmap[2], 2u);  // bit 129 = word 2 bit 1
}

TEST(BitmapTest, AndCombines) {
  std::vector<int64_t> v = {1, 5, 10, 50, 100};
  std::vector<uint64_t> a, b;
  BuildSelectionBitmap(v, 0, 51, &a);    // selects 0..3
  BuildSelectionBitmap(v, 5, 1000, &b);  // selects 1..4
  BitmapAnd(&a, b);
  std::vector<uint32_t> out;
  EXPECT_EQ(BitmapToPositions(a, v.size(), &out), 3u);
  EXPECT_EQ(out, (std::vector<uint32_t>{1, 2, 3}));
}

TEST(BitmapTest, PositionsIgnoreTailBits) {
  // 70 values; the bitmap has 2 words with 58 tail bits unused.
  std::vector<int64_t> v(70, 10);
  std::vector<uint64_t> bitmap;
  BuildSelectionBitmap(v, 0, 100, &bitmap);
  std::vector<uint32_t> out;
  EXPECT_EQ(BitmapToPositions(bitmap, 70, &out), 70u);
}

/// Property: all three kernels agree at every selectivity.
class SelectionEquivalence : public ::testing::TestWithParam<double> {};

TEST_P(SelectionEquivalence, KernelsAgree) {
  const double selectivity = GetParam();
  const int64_t threshold = 1000;
  auto v = workload::MakeSelectionInput(20000, selectivity, threshold,
                                        1000000, 7);
  std::vector<uint32_t> a, b, c;
  const uint64_t na = SelectBranching(v, 0, threshold, &a);
  const uint64_t nb = SelectBranchFree(v, 0, threshold, &b);
  const uint64_t nc = SelectBitmap(v, 0, threshold, &c);
  EXPECT_EQ(na, nb);
  EXPECT_EQ(nb, nc);
  EXPECT_EQ(a, b);
  EXPECT_EQ(b, c);
  EXPECT_EQ(CountInRange(v, 0, threshold), na);
  // Measured selectivity tracks the requested one.
  EXPECT_NEAR(static_cast<double>(na) / static_cast<double>(v.size()),
              selectivity, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Selectivities, SelectionEquivalence,
                         ::testing::Values(0.0, 0.001, 0.01, 0.1, 0.25, 0.5,
                                           0.75, 0.9, 0.99, 1.0));

TEST(SelectionSimdTest, ScratchOverloadMatchesBase) {
  auto v = workload::MakeSelectionInput(10007, 0.3, 1000, 1000000, 11);
  std::vector<uint32_t> base, scratched;
  std::vector<uint64_t> scratch;
  const uint64_t na = SelectBitmap(v, 0, 1000, &base);
  // Reuse the scratch across calls the way the engine's filter chain does.
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(SelectBitmap(v, 0, 1000, &scratched, &scratch), na);
    EXPECT_EQ(scratched, base);
  }
}

TEST(SelectionSimdTest, ForcedBackendsAreBitIdentical) {
  // SelectBitmap / CountInRange must produce the same output under every
  // simd backend the knob can request, including ones the host lacks
  // (ActiveBackend clamps them): the bit-identity contract, observed
  // through the ops-layer entry points.
  const uint64_t saved = tune::SimdBackend().Get();
  auto v = workload::MakeSelectionInput(20000, 0.4, 1000, 1000000, 13);
  // Odd length so the vector kernels leave a ragged tail.
  v.resize(v.size() - 3);

  tune::SimdBackend().Set(0);
  std::vector<uint32_t> expect;
  const uint64_t n_expect = SelectBitmap(v, 0, 1000, &expect);
  const uint64_t count_expect = CountInRange(v, 0, 1000);

  for (uint64_t knob = 1;
       knob <= static_cast<uint64_t>(simd::Backend::kAvx2); ++knob) {
    tune::SimdBackend().Set(knob);
    std::vector<uint32_t> got;
    std::vector<uint64_t> scratch;
    EXPECT_EQ(SelectBitmap(v, 0, 1000, &got, &scratch), n_expect)
        << "knob=" << knob;
    EXPECT_EQ(got, expect) << "knob=" << knob;
    EXPECT_EQ(CountInRange(v, 0, 1000), count_expect) << "knob=" << knob;
  }
  tune::SimdBackend().Set(saved);
}

}  // namespace
}  // namespace hwstar::ops
