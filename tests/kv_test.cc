#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <thread>

#include "hwstar/common/random.h"
#include "hwstar/kv/kv_store.h"
#include "hwstar/kv/tiered_store.h"
#include "hwstar/workload/ycsb_like.h"

namespace hwstar::kv {
namespace {

TEST(KvStoreTest, PutGetBasic) {
  KvStore store;
  store.Put(1, 10);
  store.Put(2, 20);
  auto r = store.Get(1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 10u);
  EXPECT_EQ(store.Get(3).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.size(), 2u);
}

TEST(KvStoreTest, OverwriteKeepsSize) {
  KvStore store;
  store.Put(7, 1);
  store.Put(7, 2);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.Get(7).value(), 2u);
}

TEST(KvStoreTest, DeleteBothIndexKinds) {
  for (IndexKind kind : {IndexKind::kArt, IndexKind::kBTree}) {
    KvOptions opts;
    opts.index = kind;
    opts.shards = 2;
    KvStore store(opts);
    for (uint64_t k = 0; k < 100; ++k) store.Put(k << 57, k);
    EXPECT_TRUE(store.Delete(3ull << 57));
    EXPECT_FALSE(store.Delete(3ull << 57));  // already gone
    EXPECT_FALSE(store.Delete(12345));       // never existed
    EXPECT_EQ(store.size(), 99u);
    EXPECT_EQ(store.Get(3ull << 57).status().code(), StatusCode::kNotFound);
    EXPECT_TRUE(store.Get(4ull << 57).ok());
    EXPECT_EQ(store.stats().deletes, 1u);  // only the successful erase
    // Deleted keys vanish from scans too (true erase, not a sentinel).
    std::vector<uint64_t> out;
    EXPECT_EQ(store.RangeScan(0, ~uint64_t{0}, &out), 99u);
  }
}

TEST(KvStoreTest, RangeScanEntriesOrderedPairsAcrossShards) {
  KvOptions opts;
  opts.shards = 4;
  KvStore store(opts);
  for (uint64_t i = 0; i < 64; ++i) store.Put(i << 58 | i, i + 1);
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  EXPECT_EQ(store.RangeScanEntries(0, ~uint64_t{0}, &entries), 64u);
  ASSERT_EQ(entries.size(), 64u);
  for (size_t i = 1; i < entries.size(); ++i) {
    EXPECT_LT(entries[i - 1].first, entries[i].first);
  }
  for (const auto& [key, value] : entries) {
    EXPECT_EQ(store.Get(key).value(), value);
  }
}

TEST(KvStoreTest, StatsCount) {
  KvStore store;
  store.Put(1, 1);
  (void)store.Get(1);
  (void)store.Get(2);
  KvStats s = store.stats();
  EXPECT_EQ(s.puts, 1u);
  EXPECT_EQ(s.gets, 2u);
  EXPECT_EQ(s.hits, 1u);
}

TEST(KvStoreTest, RangeScanOrderedAcrossShards) {
  KvOptions opts;
  opts.shards = 4;
  KvStore store(opts);
  // Keys spread over the whole 64-bit space so every shard holds some.
  std::vector<uint64_t> keys;
  for (uint64_t i = 0; i < 64; ++i) {
    keys.push_back(i << 58 | i);  // top bits vary -> different shards
  }
  for (uint64_t k : keys) store.Put(k, k + 1);
  std::vector<uint64_t> out;
  const uint64_t n = store.RangeScan(0, ~uint64_t{0}, &out);
  EXPECT_EQ(n, keys.size());
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
}

TEST(KvStoreTest, RangeScanEmptyAndInverted) {
  KvStore store;
  store.Put(100, 1);
  std::vector<uint64_t> out;
  EXPECT_EQ(store.RangeScan(10, 50, &out), 0u);
  EXPECT_EQ(store.RangeScan(50, 10, &out), 0u);
}

TEST(KvStoreTest, ConcurrentDisjointWriters) {
  KvOptions opts;
  opts.shards = 4;
  KvStore store(opts);
  std::vector<std::thread> writers;
  for (uint32_t t = 0; t < 4; ++t) {
    writers.emplace_back([&store, t] {
      // Each thread owns one key-range shard (top 2 bits).
      const uint64_t base = static_cast<uint64_t>(t) << 62;
      for (uint64_t i = 0; i < 10000; ++i) {
        store.Put(base | i, i);
      }
    });
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(store.size(), 40000u);
  EXPECT_EQ(store.Get((uint64_t{2} << 62) | 55).value(), 55u);
}

TEST(KvStoreTest, ConcurrentMixedReadersWriters) {
  KvOptions opts;
  opts.shards = 2;
  KvStore store(opts);
  for (uint64_t i = 0; i < 1000; ++i) store.Put(i, i);
  std::atomic<uint64_t> found{0};
  std::thread writer([&store] {
    for (uint64_t i = 1000; i < 2000; ++i) store.Put(i, i);
  });
  std::thread reader([&store, &found] {
    for (uint64_t i = 0; i < 1000; ++i) {
      found += store.Get(i).ok();
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(found.load(), 1000u);
  EXPECT_EQ(store.size(), 2000u);
}

TEST(KvStoreTest, LatchFreeReadersRaceWritersBothIndexKinds) {
  // Writers Put/Delete (serialized per shard by the latch) while readers
  // Get and MultiGet with no latch at all. Values are a pure function of
  // the key, so any hit returning the wrong value is a torn read.
  constexpr auto ValueOf = [](uint64_t key) { return key * 2654435761ULL + 1; };
  for (const IndexKind kind : {IndexKind::kArt, IndexKind::kBTree}) {
    KvOptions opts;
    opts.index = kind;
    opts.shards = 4;
    ASSERT_TRUE(opts.latch_free_reads);  // the default under test
    KvStore store(opts);
    constexpr uint64_t kKeys = 4096;
    const uint64_t stride = ~uint64_t{0} / kKeys;
    for (uint64_t i = 0; i < kKeys; ++i) {
      store.Put(i * stride, ValueOf(i * stride));
    }

    std::atomic<bool> stop{false};
    std::vector<std::thread> writers;
    for (int w = 0; w < 2; ++w) {
      writers.emplace_back([&, w] {
        Xoshiro256 rng(17 + w);
        while (!stop.load(std::memory_order_relaxed)) {
          const uint64_t key = rng.NextBounded(kKeys) * stride;
          if (rng.NextBounded(3) == 0) {
            store.Delete(key);
          } else {
            store.Put(key, ValueOf(key));
          }
        }
      });
    }
    std::vector<std::thread> readers;
    for (int t = 0; t < 3; ++t) {
      readers.emplace_back([&, t] {
        Xoshiro256 rng(90 + t);
        uint64_t keys[32];
        uint64_t values[32];
        bool found[32];
        for (int iter = 0; iter < 3000; ++iter) {
          const uint64_t key = rng.NextBounded(kKeys) * stride;
          auto got = store.Get(key);
          if (got.ok()) EXPECT_EQ(got.value(), ValueOf(key));
          if ((iter & 7) == 0) {
            for (auto& k : keys) k = rng.NextBounded(kKeys) * stride;
            std::sort(keys, keys + 32);  // shard-sorted: exercises runs
            store.MultiGet(keys, 32, values, found);
            for (int j = 0; j < 32; ++j) {
              if (found[j]) {
                EXPECT_EQ(values[j], ValueOf(keys[j]));
              } else {
                EXPECT_EQ(values[j], 0u);
              }
            }
          }
        }
      });
    }
    for (auto& r : readers) r.join();
    stop.store(true);
    for (auto& w : writers) w.join();

    const KvStats s = store.stats();
    EXPECT_GT(s.gets, 0u);
    EXPECT_GT(s.puts, kKeys);
  }
}

// Optimistic B-link-tree range scans racing latch-free point readers AND
// a writer — the mixed-mode contract from kv_store.h, checked under TSan
// via the sanitize label. Stable keys are never touched after load, so
// every scan must report each exactly once with the right value; volatile
// keys churn (put/delete) and may appear or not, but never with a torn
// value, never out of order, never duplicated.
TEST(KvStoreTest, OptimisticRangeScansRaceReadersAndWriter) {
  constexpr auto ValueOf = [](uint64_t key) { return key * 2654435761ULL + 1; };
  KvOptions opts;
  opts.index = IndexKind::kBTree;
  opts.shards = 2;
  ASSERT_TRUE(opts.latch_free_reads);
  KvStore store(opts);

  constexpr uint64_t kKeys = 2048;
  const uint64_t stride = ~uint64_t{0} / kKeys;
  // Even slots stable, odd slots volatile.
  for (uint64_t i = 0; i < kKeys; ++i) store.Put(i * stride, ValueOf(i * stride));

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Xoshiro256 rng(31);
    while (!stop.load(std::memory_order_relaxed)) {
      const uint64_t slot = rng.NextBounded(kKeys / 2) * 2 + 1;
      const uint64_t key = slot * stride;
      if (rng.NextBounded(2) == 0) {
        store.Delete(key);
      } else {
        store.Put(key, ValueOf(key));
      }
    }
  });
  std::thread reader([&] {
    Xoshiro256 rng(47);
    while (!stop.load(std::memory_order_relaxed)) {
      const uint64_t key = rng.NextBounded(kKeys) * stride;
      auto got = store.Get(key);
      if (got.ok()) EXPECT_EQ(got.value(), ValueOf(key));
    }
  });

  std::vector<std::thread> scanners;
  for (int s = 0; s < 2; ++s) {
    scanners.emplace_back([&, s] {
      Xoshiro256 rng(63 + s);
      std::vector<std::pair<uint64_t, uint64_t>> entries;
      for (int iter = 0; iter < 300; ++iter) {
        // Random window, sometimes the whole keyspace.
        uint64_t lo = 0, hi = ~uint64_t{0};
        if (rng.NextBounded(2) == 0) {
          const uint64_t a = rng.NextBounded(kKeys) * stride;
          const uint64_t b = rng.NextBounded(kKeys) * stride;
          lo = std::min(a, b);
          hi = std::max(a, b);
        }
        entries.clear();
        store.RangeScanEntries(lo, hi, &entries);
        uint64_t prev = 0;
        bool first = true;
        uint64_t stable_seen = 0;
        for (const auto& [key, value] : entries) {
          EXPECT_GE(key, lo);
          EXPECT_LE(key, hi);
          if (!first) EXPECT_GT(key, prev);  // ascending, no duplicates
          first = false;
          prev = key;
          EXPECT_EQ(value, ValueOf(key));  // never torn
          if ((key / stride) % 2 == 0 && key == (key / stride) * stride) {
            ++stable_seen;
          }
        }
        // Every stable key inside the window, exactly once.
        uint64_t stable_expected = 0;
        for (uint64_t i = 0; i < kKeys; i += 2) {
          const uint64_t key = i * stride;
          if (key >= lo && key <= hi) ++stable_expected;
        }
        EXPECT_EQ(stable_seen, stable_expected)
            << "window [" << lo << ", " << hi << "]";
      }
    });
  }
  for (auto& t : scanners) t.join();
  stop.store(true);
  writer.join();
  reader.join();
}

/// Property: both index kinds and several shard counts agree with
/// std::map under a YCSB-shaped workload.
struct KvParam {
  IndexKind index;
  uint32_t shards;
};

class KvEquivalence : public ::testing::TestWithParam<KvParam> {};

TEST_P(KvEquivalence, MatchesReferenceMap) {
  const KvParam p = GetParam();
  KvOptions opts;
  opts.index = p.index;
  opts.shards = p.shards;
  KvStore store(opts);
  std::map<uint64_t, uint64_t> ref;

  workload::YcsbConfig cfg;
  cfg.record_count = 4096;
  cfg.operation_count = 50000;
  cfg.read_fraction = 0.5;
  cfg.zipf_theta = 0.5;
  auto ops = workload::MakeYcsbWorkload(cfg);
  uint64_t version = 0;
  for (const auto& op : ops) {
    if (op.op == workload::YcsbOp::kUpdate) {
      store.Put(op.key, ++version);
      ref[op.key] = version;
    } else {
      auto got = store.Get(op.key);
      auto it = ref.find(op.key);
      ASSERT_EQ(got.ok(), it != ref.end());
      if (got.ok()) EXPECT_EQ(got.value(), it->second);
    }
  }
  EXPECT_EQ(store.size(), ref.size());
  // Final range scan agrees with the reference in-order walk.
  std::vector<uint64_t> got_values;
  store.RangeScan(0, cfg.record_count, &got_values);
  std::vector<uint64_t> want_values;
  for (const auto& [k, v] : ref) want_values.push_back(v);
  EXPECT_EQ(got_values, want_values);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KvEquivalence,
    ::testing::Values(KvParam{IndexKind::kArt, 1},
                      KvParam{IndexKind::kArt, 4},
                      KvParam{IndexKind::kBTree, 1},
                      KvParam{IndexKind::kBTree, 8}));

TEST(TieredStoreTest, LruKeepsHotWorkingSetResident) {
  TieredKvStore::Options opts;
  opts.memory_capacity = 100;
  opts.policy = TierPolicy::kLru;
  TieredKvStore store(opts);
  for (uint64_t k = 0; k < 1000; ++k) store.Load(k, k);
  // Repeatedly touch 50 keys: after warmup, all hits.
  uint64_t now = 0;
  for (int rep = 0; rep < 10; ++rep) {
    for (uint64_t k = 0; k < 50; ++k) {
      ASSERT_TRUE(store.Read(k, ++now).ok());
    }
  }
  EXPECT_GT(store.stats().hit_rate(), 0.85);
}

TEST(TieredStoreTest, ExpSmoothingClassifiesHotSet) {
  TieredKvStore::Options opts;
  opts.memory_capacity = 64;
  opts.policy = TierPolicy::kExpSmoothing;
  opts.es_sample_permille = 1000;  // full logging for determinism
  TieredKvStore store(opts);
  for (uint64_t k = 0; k < 1024; ++k) store.Load(k, k);
  // Phase 1: hammer keys 0..63, then reclassify.
  uint64_t now = 0;
  for (int rep = 0; rep < 20; ++rep) {
    for (uint64_t k = 0; k < 64; ++k) (void)store.Read(k, ++now);
  }
  store.Reclassify(now);
  EXPECT_EQ(store.resident_records(), 64u);
  // Phase 2: the same keys now hit memory.
  const auto before = store.stats();
  for (uint64_t k = 0; k < 64; ++k) (void)store.Read(k, ++now);
  const auto after = store.stats();
  EXPECT_EQ(after.memory_hits - before.memory_hits, 64u);
}

TEST(TieredStoreTest, ColdWritesWearFlash) {
  TieredKvStore::Options opts;
  opts.memory_capacity = 4;
  TieredKvStore store(opts);
  uint64_t now = 0;
  for (uint64_t k = 0; k < 1000; ++k) store.Write(k, k, ++now);
  EXPECT_GT(store.flash().writes(), 900u);
  EXPECT_GT(store.flash().WearFraction(10), 0.0);
  EXPECT_GT(store.stats().avg_latency_us(), 1.0);
}

TEST(TieredStoreTest, MissingKeyStillChargedAndNotFound) {
  TieredKvStore store;
  auto r = store.Read(42, 1);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(store.stats().accesses, 1u);
}

TEST(KvStoreTest, MultiGetMatchesGetIncludingMisses) {
  KvOptions opts;
  opts.shards = 8;
  KvStore store(opts);
  const uint64_t stride = ~uint64_t{0} / 1024;  // keys span all shards
  for (uint64_t i = 0; i < 1024; i += 2) store.Put(i * stride, i + 1);

  std::vector<uint64_t> keys;
  for (uint64_t i = 0; i < 256; ++i) keys.push_back((i * 7 % 1024) * stride);
  // Unsorted and sorted (the svc batcher's shard-grouped order) must agree.
  for (int pass = 0; pass < 2; ++pass) {
    std::vector<uint64_t> values(keys.size());
    auto found = std::make_unique<bool[]>(keys.size());
    store.MultiGet(keys.data(), keys.size(), values.data(), found.get());
    for (size_t i = 0; i < keys.size(); ++i) {
      auto ref = store.Get(keys[i]);
      EXPECT_EQ(found[i], ref.ok()) << "key " << keys[i];
      if (ref.ok()) EXPECT_EQ(values[i], ref.value());
    }
    std::sort(keys.begin(), keys.end());
  }
}

TEST(KvStoreTest, RangeScanLimitIsPrefixOfFullScan) {
  KvStore store;
  for (uint64_t k = 0; k < 100; ++k) store.Put(k, k * 2);
  std::vector<uint64_t> full, limited;
  EXPECT_EQ(store.RangeScan(10, 59, &full), 50u);
  EXPECT_EQ(store.RangeScanLimit(10, 59, 7, &limited), 7u);
  ASSERT_EQ(limited.size(), 7u);
  for (size_t i = 0; i < limited.size(); ++i) EXPECT_EQ(limited[i], full[i]);
}

// Writers mutate counters under shard latches while a reader polls
// stats() lock-free: must be TSan-clean (counters are relaxed atomics)
// and add up once the writers join.
TEST(KvStoreTest, StatsReadableWhileConcurrentlyMutated) {
  KvOptions opts;
  opts.shards = 4;
  KvStore store(opts);
  constexpr int kThreads = 4;
  constexpr uint64_t kOpsPerThread = 20000;

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    // Each shard counter is a single atomic, so successive relaxed loads
    // respect its modification order: snapshots are monotonic. (Cross
    // -counter invariants like gets >= hits do NOT hold mid-run under
    // relaxed ordering and are only checked after the writers join.)
    uint64_t last_gets = 0;
    while (!stop.load()) {
      const KvStats s = store.stats();
      EXPECT_GE(s.gets, last_gets);
      last_gets = s.gets;
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&store, t] {
      const uint64_t stride = ~uint64_t{0} / (kThreads * kOpsPerThread);
      for (uint64_t i = 0; i < kOpsPerThread; ++i) {
        const uint64_t key = (t * kOpsPerThread + i) * stride;
        store.Put(key, i);
        (void)store.Get(key);
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true);
  reader.join();

  const KvStats s = store.stats();
  EXPECT_EQ(s.puts, kThreads * kOpsPerThread);
  EXPECT_EQ(s.gets, kThreads * kOpsPerThread);
  EXPECT_EQ(s.hits, kThreads * kOpsPerThread);
}

}  // namespace
}  // namespace hwstar::kv
