#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "hwstar/dur/durable_kv_store.h"
#include "hwstar/dur/file_backend.h"
#include "hwstar/engine/expression.h"
#include "hwstar/kv/kv_store.h"
#include "hwstar/storage/column_store.h"
#include "hwstar/svc/admission.h"
#include "hwstar/svc/batcher.h"
#include "hwstar/svc/overload_policy.h"
#include "hwstar/svc/service.h"

namespace hwstar::svc {
namespace {

/// Two-column store: col 0 = i, col 1 = i % 97.
storage::ColumnStore MakeColumnStore(uint64_t rows) {
  storage::Schema s(
      {{"a", storage::TypeId::kInt64}, {"b", storage::TypeId::kInt64}});
  storage::Table t(s);
  for (uint64_t i = 0; i < rows; ++i) {
    t.column(0).AppendInt64(static_cast<int64_t>(i));
    t.column(1).AppendInt64(static_cast<int64_t>(i % 97));
  }
  EXPECT_TRUE(t.SetRowCount(rows).ok());
  return std::move(storage::ColumnStore::FromTable(t)).value();
}

TicketPtr MakeTicket(Request request) {
  auto t = std::make_unique<Ticket>();
  t->request = std::move(request);
  t->submit_nanos = ServiceNow();
  t->estimated_bytes = EstimatedRequestBytes(t->request);
  return t;
}

// --- AdmissionQueue -------------------------------------------------------

TEST(AdmissionQueueTest, AcceptRejectBoundaryAtMaxDepth) {
  AdmissionOptions opts;
  opts.max_queue_depth = 2;
  AdmissionQueue queue(opts);

  auto t1 = MakeTicket(Request::PointGet(1));
  auto t2 = MakeTicket(Request::PointGet(2));
  auto t3 = MakeTicket(Request::PointGet(3));
  EXPECT_TRUE(queue.TryAdmit(t1).ok());
  EXPECT_TRUE(queue.TryAdmit(t2).ok());
  Status st = queue.TryAdmit(t3);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  ASSERT_NE(t3, nullptr);  // rejected ticket stays with the caller
  EXPECT_EQ(queue.depth(), 2u);

  // Popping frees capacity; the same ticket admits cleanly afterwards.
  std::vector<TicketPtr> out;
  ASSERT_TRUE(queue.PopBatch(&out, 1));
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(queue.TryAdmit(t3).ok());

  const AdmissionStats stats = queue.stats();
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.admitted, 3u);
  EXPECT_EQ(stats.shed_queue_full, 1u);
}

TEST(AdmissionQueueTest, PerTenantQuotaIsolatesTenants) {
  AdmissionOptions opts;
  opts.max_queue_depth = 16;
  opts.per_tenant_quota = 1;
  AdmissionQueue queue(opts);

  auto a1 = MakeTicket(Request::PointGet(1, /*tenant=*/7));
  auto a2 = MakeTicket(Request::PointGet(2, /*tenant=*/7));
  auto b1 = MakeTicket(Request::PointGet(3, /*tenant=*/8));
  EXPECT_TRUE(queue.TryAdmit(a1).ok());
  EXPECT_EQ(queue.TryAdmit(a2).code(), StatusCode::kResourceExhausted);
  // The flooding tenant exhausted its own quota, not tenant 8's.
  EXPECT_TRUE(queue.TryAdmit(b1).ok());
  EXPECT_EQ(queue.tenant_depth(7), 1u);
  EXPECT_EQ(queue.tenant_depth(8), 1u);
  EXPECT_EQ(queue.stats().shed_tenant_quota, 1u);
}

TEST(AdmissionQueueTest, MemoryBudgetRejectsBigScans) {
  AdmissionOptions opts;
  opts.max_queue_depth = 16;
  opts.memory_budget_bytes = 4096;
  AdmissionQueue queue(opts);

  auto small = MakeTicket(Request::PointGet(1));
  auto big = MakeTicket(Request::Scan(0, ~uint64_t{0}, /*limit=*/100000));
  EXPECT_TRUE(queue.TryAdmit(small).ok());
  EXPECT_EQ(queue.TryAdmit(big).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(queue.stats().shed_memory, 1u);
}

TEST(AdmissionQueueTest, PriorityFloorShedsLowFirst) {
  AdmissionQueue queue(AdmissionOptions{});
  auto low = MakeTicket(Request::PointGet(1, 0, Priority::kLow));
  auto normal = MakeTicket(Request::PointGet(2, 0, Priority::kNormal));
  EXPECT_EQ(queue.TryAdmit(low, Priority::kNormal).code(),
            StatusCode::kResourceExhausted);
  EXPECT_TRUE(queue.TryAdmit(normal, Priority::kNormal).ok());
  EXPECT_EQ(queue.stats().shed_priority, 1u);
}

TEST(AdmissionQueueTest, PopReturnsHighestPriorityFirst) {
  AdmissionQueue queue(AdmissionOptions{});
  auto low = MakeTicket(Request::PointGet(1, 0, Priority::kLow));
  auto high = MakeTicket(Request::PointGet(2, 0, Priority::kHigh));
  ASSERT_TRUE(queue.TryAdmit(low).ok());
  ASSERT_TRUE(queue.TryAdmit(high).ok());
  std::vector<TicketPtr> out;
  ASSERT_TRUE(queue.PopBatch(&out, 2));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0]->request.priority, Priority::kHigh);
  EXPECT_EQ(out[1]->request.priority, Priority::kLow);
}

TEST(AdmissionQueueTest, CloseWakesAndDrains) {
  AdmissionQueue queue(AdmissionOptions{});
  std::thread closer([&queue] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    queue.Close();
  });
  std::vector<TicketPtr> out;
  EXPECT_FALSE(queue.PopBatch(&out, 4));  // unblocked by Close
  closer.join();
  auto t = MakeTicket(Request::PointGet(1));
  EXPECT_EQ(queue.TryAdmit(t).code(), StatusCode::kFailedPrecondition);
}

// --- Batcher --------------------------------------------------------------

TEST(BatcherTest, GroupsGetsByShardSortedByKey) {
  BatcherOptions opts;
  opts.max_batch = 8;
  opts.kv_shards = 4;  // shard = top 2 key bits
  Batcher batcher(opts);

  const uint64_t shard_span = ~uint64_t{0} / 4 + 1;
  std::vector<TicketPtr> tickets;
  // Two shards, interleaved and unsorted on arrival.
  tickets.push_back(MakeTicket(Request::PointGet(5)));
  tickets.push_back(MakeTicket(Request::PointGet(shard_span + 9)));
  tickets.push_back(MakeTicket(Request::PointGet(3)));
  tickets.push_back(MakeTicket(Request::PointGet(shard_span + 2)));

  auto batches = batcher.Group(std::move(tickets));
  ASSERT_EQ(batches.size(), 2u);
  for (const auto& b : batches) {
    EXPECT_EQ(b.type, RequestType::kPointGet);
    ASSERT_EQ(b.tickets.size(), 2u);
    EXPECT_LT(b.tickets[0]->request.get.key, b.tickets[1]->request.get.key);
    EXPECT_EQ(batcher.ShardOf(b.tickets[0]->request.get.key), b.shard);
    EXPECT_EQ(batcher.ShardOf(b.tickets[1]->request.get.key), b.shard);
  }
}

TEST(BatcherTest, PutsGroupByShardAndKeepSameKeySubmissionOrder) {
  BatcherOptions opts;
  opts.max_batch = 8;
  opts.kv_shards = 1;
  Batcher batcher(opts);

  // Same-key puts interleaved with others: the sort must be STABLE, so
  // within a batch the same key's values stay in submission order (the
  // last one submitted is the one that wins when applied in order).
  std::vector<TicketPtr> tickets;
  tickets.push_back(MakeTicket(Request::Put(7, 100)));
  tickets.push_back(MakeTicket(Request::Put(3, 30)));
  tickets.push_back(MakeTicket(Request::Put(7, 101)));
  tickets.push_back(MakeTicket(Request::Put(9, 90)));
  tickets.push_back(MakeTicket(Request::Put(7, 102)));

  auto batches = batcher.Group(std::move(tickets));
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].type, RequestType::kPut);
  ASSERT_EQ(batches[0].tickets.size(), 5u);
  std::vector<uint64_t> key7_values;
  for (const auto& t : batches[0].tickets) {
    if (t->request.put.key == 7) key7_values.push_back(t->request.put.value);
  }
  EXPECT_EQ(key7_values, (std::vector<uint64_t>{100, 101, 102}));
  // And the keys themselves are sorted.
  for (size_t i = 1; i < batches[0].tickets.size(); ++i) {
    EXPECT_LE(batches[0].tickets[i - 1]->request.put.key,
              batches[0].tickets[i]->request.put.key);
  }
}

TEST(BatcherTest, RespectsMaxBatchAndSingletonTypes) {
  BatcherOptions opts;
  opts.max_batch = 2;
  opts.kv_shards = 1;
  Batcher batcher(opts);

  std::vector<TicketPtr> tickets;
  for (int i = 0; i < 5; ++i) {
    tickets.push_back(MakeTicket(Request::PointGet(i)));
  }
  tickets.push_back(MakeTicket(Request::Scan(0, 10)));
  tickets.push_back(MakeTicket(Request::Scan(0, 20)));

  auto batches = batcher.Group(std::move(tickets));
  size_t gets = 0, scans = 0;
  for (const auto& b : batches) {
    EXPECT_LE(b.tickets.size(), 2u);
    if (b.type == RequestType::kPointGet) {
      gets += b.tickets.size();
    } else {
      EXPECT_EQ(b.type, RequestType::kScan);
      EXPECT_EQ(b.tickets.size(), 1u);  // scans never merge
      ++scans;
    }
  }
  EXPECT_EQ(gets, 5u);
  EXPECT_EQ(scans, 2u);
}

TEST(BatcherTest, NeverSplitsEqualKeyPutRunAcrossBatches) {
  BatcherOptions opts;
  opts.max_batch = 2;
  opts.kv_shards = 1;
  Batcher batcher(opts);

  // Sorted put order is [1, 2, 5, 5, 5]. A naive max_batch split would
  // leave one key-5 put in the first batch and two in the second; batches
  // for the same shard may run concurrently on different pool workers, so
  // the later-submitted put could be applied first. The whole equal-key
  // run must land in one batch, even past max_batch.
  std::vector<TicketPtr> tickets;
  tickets.push_back(MakeTicket(Request::Put(5, 50)));
  tickets.push_back(MakeTicket(Request::Put(2, 20)));
  tickets.push_back(MakeTicket(Request::Put(5, 51)));
  tickets.push_back(MakeTicket(Request::Put(1, 10)));
  tickets.push_back(MakeTicket(Request::Put(5, 52)));

  auto batches = batcher.Group(std::move(tickets));
  ASSERT_EQ(batches.size(), 2u);
  ASSERT_EQ(batches[0].tickets.size(), 2u);
  EXPECT_EQ(batches[0].tickets[0]->request.put.key, 1u);
  EXPECT_EQ(batches[0].tickets[1]->request.put.key, 2u);
  ASSERT_EQ(batches[1].tickets.size(), 3u);
  std::vector<uint64_t> key5_values;
  for (const auto& t : batches[1].tickets) {
    EXPECT_EQ(t->request.put.key, 5u);
    key5_values.push_back(t->request.put.value);
  }
  EXPECT_EQ(key5_values, (std::vector<uint64_t>{50, 51, 52}));
}

// --- Service end to end ---------------------------------------------------

ServiceOptions NoDegradeOptions() {
  ServiceOptions opts;
  opts.policy = std::make_shared<OverloadPolicy>();  // never degrades
  return opts;
}

TEST(ServiceTest, PointGetScanAggregateRoundTrip) {
  kv::KvOptions kopts;
  kopts.shards = 4;
  kv::KvStore store(kopts);
  for (uint64_t k = 0; k < 1000; ++k) store.Put(k, k * 10);

  Service service(NoDegradeOptions(), &store);
  Response hit = service.Call(Request::PointGet(42));
  EXPECT_TRUE(hit.status.ok());
  EXPECT_EQ(hit.value, 420u);

  Response miss = service.Call(Request::PointGet(5000));
  EXPECT_EQ(miss.status.code(), StatusCode::kNotFound);

  Response scan = service.Call(Request::Scan(10, 19));
  EXPECT_TRUE(scan.status.ok());
  ASSERT_EQ(scan.rows.size(), 10u);
  EXPECT_EQ(scan.rows[0], 100u);
  EXPECT_EQ(scan.rows[9], 190u);

  storage::ColumnStore cs = MakeColumnStore(100);
  Response agg = service.Call(Request::Aggregate(
      &cs, engine::Lt(engine::Col(0), engine::Lit(10)), engine::Col(0)));
  EXPECT_TRUE(agg.status.ok());
  EXPECT_EQ(agg.agg_rows, 10u);
  EXPECT_EQ(agg.agg_sum, 45);
  EXPECT_GT(agg.latency.total_nanos, 0u);
}

TEST(ServiceTest, DeadlineAlreadyExpiredIsShedAtSubmit) {
  kv::KvStore store;
  store.Put(1, 1);
  Service service(NoDegradeOptions(), &store);

  Request req = Request::PointGet(1);
  req.deadline_nanos = ServiceNow() - 1;  // already in the past
  Response r = service.Call(std::move(req));
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(service.metrics().admission.shed_deadline, 1u);
}

// The bit-identical acceptance criterion: the same request set answered
// through the batched service and one-at-a-time directly against the
// backends must produce identical responses, misses included.
TEST(ServiceTest, BatchedResultsIdenticalToUnbatched) {
  kv::KvOptions kopts;
  kopts.shards = 8;
  kv::KvStore store(kopts);
  // Sparse keys spread across the full 64-bit shard space.
  const uint64_t stride = ~uint64_t{0} / 4096;
  for (uint64_t i = 0; i < 4096; i += 2) store.Put(i * stride, i);

  storage::ColumnStore cs = MakeColumnStore(10000);

  std::vector<Request> requests;
  for (uint64_t i = 0; i < 512; ++i) {  // every other key misses
    requests.push_back(Request::PointGet((i * 13 % 4096) * stride));
  }
  for (uint64_t i = 0; i < 16; ++i) {
    requests.push_back(
        Request::Scan(i * stride * 64, (i + 4) * stride * 64));
  }
  for (int64_t i = 0; i < 16; ++i) {
    requests.push_back(Request::Aggregate(
        &cs, engine::Lt(engine::Col(1), engine::Lit(i * 7)),
        engine::Add(engine::Col(0), engine::Col(1))));
  }

  // Batched: through the service, submitted concurrently so the batcher
  // actually forms multi-request batches.
  std::vector<std::future<Response>> futures;
  {
    ServiceOptions opts = NoDegradeOptions();
    opts.max_batch = 32;
    opts.batch_window_nanos = 2'000'000;
    Service service(opts, &store);
    futures.reserve(requests.size());
    for (const Request& r : requests) futures.push_back(service.Submit(r));
    service.Drain();
    const ServiceMetrics m = service.metrics();
    EXPECT_EQ(m.completed, requests.size());
    // The point-get flood must actually have been batched.
    EXPECT_GT(m.mean_batch_size(), 1.0);
  }

  // Unbatched reference: direct library calls.
  for (size_t i = 0; i < requests.size(); ++i) {
    Response got = futures[i].get();
    const Request& req = requests[i];
    switch (req.type) {
      case RequestType::kPointGet: {
        auto ref = store.Get(req.get.key);
        EXPECT_EQ(got.status.ok(), ref.ok()) << "request " << i;
        if (ref.ok()) {
          EXPECT_EQ(got.value, ref.value()) << "request " << i;
        } else {
          EXPECT_EQ(got.status.code(), ref.status().code());
          EXPECT_EQ(got.status.message(), ref.status().message());
        }
        break;
      }
      case RequestType::kScan: {
        std::vector<uint64_t> ref;
        store.RangeScan(req.scan.lo, req.scan.hi, &ref);
        EXPECT_EQ(got.rows, ref) << "request " << i;
        break;
      }
      case RequestType::kAggregate: {
        int64_t sum = 0;
        uint64_t rows = 0;
        for (uint64_t row = 0; row < cs.num_rows(); ++row) {
          if (req.agg.filter->Eval(cs, row) == 0) continue;
          ++rows;
          sum += req.agg.value->Eval(cs, row);
        }
        EXPECT_EQ(got.agg_sum, sum) << "request " << i;
        EXPECT_EQ(got.agg_rows, rows) << "request " << i;
        break;
      }
      case RequestType::kJoin:
      case RequestType::kPut:
      case RequestType::kDelete:
      case RequestType::kTxn:
        break;
    }
  }
}

TEST(ServiceTest, VolatilePutRoundTrip) {
  kv::KvStore store;
  Service service(NoDegradeOptions(), &store);
  Response put = service.Call(Request::Put(7, 70));
  EXPECT_TRUE(put.status.ok());
  EXPECT_EQ(put.latency.wal_nanos, 0u);  // no WAL on the volatile ctor
  EXPECT_EQ(service.Call(Request::PointGet(7)).value, 70u);
  EXPECT_EQ(store.Get(7).value(), 70u);
}

TEST(ServiceTest, DurablePutsFlowThroughWalAndSurviveReopen) {
  dur::InMemoryFileBackend fs;
  dur::DurableKvOptions dopts;
  dopts.kv.shards = 4;
  dopts.log.fsync_interval_us = 20;
  {
    auto db = dur::DurableKvStore::Open(&fs, "db", dopts);
    ASSERT_TRUE(db.ok());

    ServiceOptions opts = NoDegradeOptions();
    opts.max_batch = 32;
    opts.batch_window_nanos = 2'000'000;
    Service service(opts, db.value().get());

    // A concurrent flood so the batcher forms real put batches that ride
    // one group commit each.
    std::vector<std::future<Response>> futures;
    for (uint64_t i = 0; i < 256; ++i) {
      futures.push_back(service.Submit(Request::Put(i, i + 1000)));
    }
    for (auto& f : futures) {
      const Response r = f.get();
      ASSERT_TRUE(r.status.ok());
      EXPECT_GT(r.latency.wal_nanos, 0u);  // a durable put waited on the WAL
    }
    service.Drain();

    // Reads through the same service see the writes.
    EXPECT_EQ(service.Call(Request::PointGet(5)).value, 1005u);

    const ServiceMetrics m = service.metrics();
    EXPECT_EQ(m.wal.count, 256u);
    EXPECT_GT(m.mean_batch_size(), 1.0);
    // Batching must show up in the log too: fewer syncs than puts.
    EXPECT_LT(db.value()->log_stats().groups,
              db.value()->log_stats().records);
  }

  // Every acked put survives a clean reopen.
  auto reopened = dur::DurableKvStore::Open(&fs, "db", dopts);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value()->kv()->size(), 256u);
  EXPECT_EQ(reopened.value()->kv()->Get(200).value(), 1200u);
}


TEST(ServiceTest, MultiThreadedOpenLoopSmoke) {
  kv::KvOptions kopts;
  kopts.shards = 4;
  kv::KvStore store(kopts);
  for (uint64_t k = 0; k < 10000; ++k) store.Put(k, k);

  ServiceOptions opts = NoDegradeOptions();
  opts.admission.max_queue_depth = 0;  // unbounded: nothing may be lost
  Service service(opts, &store);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::atomic<uint64_t> ok{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const uint64_t key = static_cast<uint64_t>(t * kPerThread + i);
        Response r = service.Call(Request::PointGet(
            key, /*tenant=*/static_cast<uint32_t>(t)));
        if (r.status.ok() && r.value == key) ok.fetch_add(1);
      }
    });
  }
  for (auto& s : submitters) s.join();
  service.Drain();

  EXPECT_EQ(ok.load(), static_cast<uint64_t>(kThreads * kPerThread));
  const ServiceMetrics m = service.metrics();
  EXPECT_EQ(m.completed, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(m.admission.shed_total(), 0u);
  EXPECT_EQ(m.total.count, m.completed);
}

TEST(ServiceTest, OverloadShedsInsteadOfQueueingUnbounded) {
  storage::ColumnStore cs = MakeColumnStore(1 << 20);

  ServiceOptions opts = NoDegradeOptions();
  opts.admission.max_queue_depth = 4;  // tiny bound
  opts.worker_threads = 1;
  opts.dispatch_max = 1;  // no batching: drain one aggregate at a time
  opts.max_batch = 1;
  opts.batch_window_nanos = 0;
  kv::KvStore store;
  Service service(opts, &store);

  // Each aggregate takes ~ms; a tight submit loop must overflow depth 4.
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(
        service.Submit(Request::Aggregate(&cs, nullptr, engine::Col(0))));
  }
  uint64_t shed = 0, done = 0;
  for (auto& f : futures) {
    Response r = f.get();
    if (r.status.ok()) {
      ++done;
    } else {
      EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted);
      ++shed;
    }
  }
  EXPECT_GT(shed, 0u);          // backpressure engaged
  EXPECT_GT(done, 0u);          // but admitted work completed
  EXPECT_EQ(shed + done, 100u);
  EXPECT_EQ(service.metrics().admission.shed_queue_full, shed);
}

TEST(ServiceTest, StepDownPolicyClampsScansUnderLoad) {
  StepDownOverloadPolicy policy;
  OverloadSignals idle;
  idle.queue_depth = 0;
  idle.max_queue_depth = 100;
  OverloadSignals busy;
  busy.queue_depth = 80;
  busy.max_queue_depth = 100;

  EXPECT_EQ(policy.ScanLimit(idle, 0), 0u);
  EXPECT_EQ(policy.ScanLimit(busy, 0), policy.scan_limit_under_load);
  EXPECT_EQ(policy.ScanLimit(busy, 10), 10u);
  EXPECT_EQ(policy.JoinAlgorithm(busy, engine::JoinAlgorithm::kRadix),
            engine::JoinAlgorithm::kNoPartition);
  EXPECT_EQ(policy.MinAdmittedPriority(busy), Priority::kLow);
  busy.queue_depth = 95;
  EXPECT_EQ(policy.MinAdmittedPriority(busy), Priority::kNormal);
  // An unbounded queue yields no utilization signal: no degradation.
  OverloadSignals unbounded;
  unbounded.queue_depth = 1 << 20;
  unbounded.max_queue_depth = 0;
  EXPECT_EQ(policy.ScanLimit(unbounded, 0), 0u);
}

// --- Satellite regressions (ISSUE 3) --------------------------------------

// The tenant-depth map used to keep zero-count entries forever: 100k
// distinct tenants each passing through the queue once grew the map to
// 100k entries. Entries must die when their tenant's last request pops.
TEST(AdmissionQueueTest, TenantMapStaysBoundedUnderTenantChurn) {
  AdmissionOptions opts;
  opts.max_queue_depth = 64;
  AdmissionQueue queue(opts);

  std::vector<TicketPtr> out;
  for (uint32_t tenant = 0; tenant < 100000; ++tenant) {
    auto ticket = MakeTicket(Request::PointGet(tenant, tenant));
    ASSERT_TRUE(queue.TryAdmit(ticket).ok());
    if ((tenant & 7) == 7) {
      out.clear();
      ASSERT_TRUE(queue.PopBatch(&out, 8));
      ASSERT_EQ(out.size(), 8u);
    }
    if ((tenant & 4095) == 4095) {
      // Never more live map entries than queued requests.
      ASSERT_LE(queue.tenant_map_size(), static_cast<size_t>(queue.depth()));
      ASSERT_LE(queue.tenant_map_size(), 8u);
    }
  }
  while (queue.depth() > 0) {
    out.clear();
    ASSERT_TRUE(queue.PopBatch(&out, 64));
  }
  EXPECT_EQ(queue.tenant_map_size(), 0u);  // fully drained: empty map
}

// Shutdown rejections used to be counted as shed_queue_full, making a
// clean shutdown look like overload in the shed breakdown operators read.
TEST(AdmissionQueueTest, ShutdownRejectionsCountedSeparately) {
  AdmissionQueue queue(AdmissionOptions{});
  queue.Close();
  auto ticket = MakeTicket(Request::PointGet(1));
  EXPECT_EQ(queue.TryAdmit(ticket).code(), StatusCode::kFailedPrecondition);
  const AdmissionStats stats = queue.stats();
  EXPECT_EQ(stats.shed_shutdown, 1u);
  EXPECT_EQ(stats.shed_queue_full, 0u);  // the overload signal stays clean
  EXPECT_EQ(stats.shed_total(), 1u);     // but totals still include it
}

// The nearest-rank off-by-one: idx = q*size made p99 of exactly 100
// samples return the max (index 99) instead of the 99th smallest
// (ceil(0.99*100)-1 = index 98). Values 1..100 sit in unit-width
// histogram buckets, so the recorder must reproduce them exactly.
TEST(LatencyRecorderTest, QuantilesUseNearestRankDefinition) {
  LatencyRecorder recorder;
  for (uint64_t i = 1; i <= 100; ++i) {
    LatencyBreakdown b;
    b.admit_wait_nanos = i;
    b.batch_wait_nanos = i;
    b.exec_nanos = i;
    b.total_nanos = i;
    recorder.Record(b);
  }
  const LatencySnapshot s = recorder.Snapshot(Phase::kTotal);
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.p50, 50u);
  EXPECT_EQ(s.p90, 90u);
  EXPECT_EQ(s.p99, 99u);  // was 100 (the max) before the fix
  EXPECT_EQ(s.max, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_EQ(recorder.count(), 100u);
  // Phases share the recording path.
  EXPECT_EQ(recorder.Snapshot(Phase::kExec).p99, 99u);
  // No WAL samples were recorded (wal_nanos == 0 throughout).
  EXPECT_EQ(recorder.Snapshot(Phase::kWal).count, 0u);
}

// Drain is now a condition-variable wait (no 100 µs busy-poll). It must
// return promptly on an idle service, release concurrent waiters when
// in-flight work completes, and stay correct across the accepted_
// rollback path taken by rejected submissions.
TEST(ServiceTest, DrainReleasesConcurrentWaitersAndIdlesCleanly) {
  kv::KvOptions kopts;
  kopts.shards = 4;
  kv::KvStore store(kopts);
  for (uint64_t k = 0; k < 1000; ++k) store.Put(k, k);

  ServiceOptions opts = NoDegradeOptions();
  opts.admission.max_queue_depth = 8;  // small: force some rejections
  Service service(opts, &store);

  service.Drain();  // nothing outstanding: returns immediately

  std::atomic<bool> submitting{true};
  std::thread submitter([&] {
    for (int i = 0; i < 5000; ++i) {
      (void)service.Submit(Request::PointGet(static_cast<uint64_t>(i % 1000)));
    }
    submitting.store(false);
  });
  std::vector<std::thread> drainers;
  for (int d = 0; d < 3; ++d) {
    drainers.emplace_back([&] {
      while (submitting.load()) service.Drain();
      service.Drain();
    });
  }
  submitter.join();
  for (auto& t : drainers) t.join();
  service.Drain();

  const ServiceMetrics m = service.metrics();
  // Everything admitted finished; completions + sheds cover all 5000.
  EXPECT_EQ(m.completed + m.admission.shed_total(), 5000u);
}

// The obs registry view: the service's counters and latency histograms
// are registered as live views and render through DumpText.
TEST(ServiceTest, DumpMetricsTextExposesLiveMetrics) {
  kv::KvStore store;
  store.Put(1, 10);
  Service service(NoDegradeOptions(), &store);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(service.Call(Request::PointGet(1)).status.ok());
  }
  service.Drain();
  const std::string text = service.DumpMetricsText();
  EXPECT_NE(text.find("counter svc.completed 10\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("histogram svc.latency.total count=10"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("counter svc.pool.tasks_run"), std::string::npos)
      << text;
  EXPECT_NE(text.find("gauge svc.pool.queue_depth"), std::string::npos)
      << text;
}

// --- Deletes and transactions through the service -------------------------

TEST(BatcherTest, MixedPutDeleteWritesGroupAndNeverSplitOnEqualKey) {
  BatcherOptions opts;
  opts.max_batch = 2;
  opts.kv_shards = 1;
  Batcher batcher(opts);

  // Sorted write order is [1, 2, 5put, 5del, 5put]. The equal-key run on
  // key 5 mixes ops: the never-split rule must hold for the MIX, not just
  // for puts, or a delete could land in a different batch than the put it
  // was submitted after and apply out of order.
  std::vector<TicketPtr> tickets;
  tickets.push_back(MakeTicket(Request::Put(5, 50)));
  tickets.push_back(MakeTicket(Request::Delete(5)));
  tickets.push_back(MakeTicket(Request::Put(2, 20)));
  tickets.push_back(MakeTicket(Request::Put(5, 52)));
  tickets.push_back(MakeTicket(Request::Delete(1)));

  auto batches = batcher.Group(std::move(tickets));
  ASSERT_EQ(batches.size(), 2u);
  ASSERT_EQ(batches[0].tickets.size(), 2u);
  EXPECT_EQ(batches[0].tickets[0]->request.type, RequestType::kDelete);
  EXPECT_EQ(batches[0].tickets[0]->request.del.key, 1u);
  EXPECT_EQ(batches[0].tickets[1]->request.put.key, 2u);
  // The whole key-5 run, in submission order, in one batch.
  ASSERT_EQ(batches[1].tickets.size(), 3u);
  EXPECT_EQ(batches[1].tickets[0]->request.type, RequestType::kPut);
  EXPECT_EQ(batches[1].tickets[0]->request.put.value, 50u);
  EXPECT_EQ(batches[1].tickets[1]->request.type, RequestType::kDelete);
  EXPECT_EQ(batches[1].tickets[2]->request.type, RequestType::kPut);
  EXPECT_EQ(batches[1].tickets[2]->request.put.value, 52u);
}

TEST(ServiceTest, DeleteRoutesToDurableStoreAndReportsPresence) {
  dur::InMemoryFileBackend fs;
  dur::DurableKvOptions dopts;
  dopts.log.fsync_interval_us = 5;
  auto db = dur::DurableKvStore::Open(&fs, "db", dopts);
  ASSERT_TRUE(db.ok());

  Service service(NoDegradeOptions(), db.value().get());
  ASSERT_TRUE(service.Call(Request::Put(1, 10)).status.ok());

  Response hit = service.Call(Request::Delete(1));
  EXPECT_TRUE(hit.status.ok());
  EXPECT_EQ(hit.value, 1u);  // key existed
  Response miss = service.Call(Request::Delete(1));
  EXPECT_TRUE(miss.status.ok());
  EXPECT_EQ(miss.value, 0u);  // already gone

  EXPECT_FALSE(db.value()->kv()->Get(1).ok());
  service.Drain();
  const ServiceMetrics m = service.metrics();
  EXPECT_EQ(m.completed_by_type[static_cast<size_t>(RequestType::kDelete)],
            2u);
  EXPECT_EQ(m.completed_by_type[static_cast<size_t>(RequestType::kPut)], 1u);
}

// Batched deletes must answer exactly like singletons: `value` is 1 iff
// the key existed at apply time. A concurrent flood of put/delete pairs
// forces the batcher to form real mixed write batches.
TEST(ServiceTest, BatchedDeletesMatchSingletonSemantics) {
  dur::InMemoryFileBackend fs;
  dur::DurableKvOptions dopts;
  dopts.kv.shards = 2;
  dopts.log.fsync_interval_us = 5;
  auto db = dur::DurableKvStore::Open(&fs, "db", dopts);
  ASSERT_TRUE(db.ok());

  ServiceOptions opts = NoDegradeOptions();
  opts.max_batch = 32;
  opts.batch_window_nanos = 2'000'000;
  Service service(opts, db.value().get());

  // Even keys exist, odd keys never did.
  std::vector<std::future<Response>> puts;
  for (uint64_t k = 0; k < 64; k += 2) {
    puts.push_back(service.Submit(Request::Put(k, k)));
  }
  for (auto& f : puts) ASSERT_TRUE(f.get().status.ok());

  std::vector<std::future<Response>> deletes;
  for (uint64_t k = 0; k < 64; ++k) {
    deletes.push_back(service.Submit(Request::Delete(k)));
  }
  for (uint64_t k = 0; k < 64; ++k) {
    Response r = deletes[static_cast<size_t>(k)].get();
    ASSERT_TRUE(r.status.ok());
    EXPECT_EQ(r.value, k % 2 == 0 ? 1u : 0u) << "key " << k;
  }
  EXPECT_EQ(db.value()->kv()->size(), 0u);
}

TEST(ServiceTest, TxnRequestRunsMultiKeyTransactionEndToEnd) {
  dur::InMemoryFileBackend fs;
  dur::DurableKvOptions dopts;
  dopts.log.fsync_interval_us = 5;
  auto db = dur::DurableKvStore::Open(&fs, "db", dopts);
  ASSERT_TRUE(db.ok());

  Service service(NoDegradeOptions(), db.value().get());
  ASSERT_TRUE(service.Call(Request::Put(1, 100)).status.ok());
  ASSERT_TRUE(service.Call(Request::Put(2, 200)).status.ok());

  // Reads, a server-side increment, a put and a delete in one atomic txn.
  std::vector<TxnOp> ops;
  ops.push_back({TxnOp::Kind::kGet, 1, 0});
  ops.push_back({TxnOp::Kind::kAdd, 2, 5});    // 200 -> 205, reports old 200
  ops.push_back({TxnOp::Kind::kAdd, 3, 7});    // missing -> treated as 0 -> 7
  ops.push_back({TxnOp::Kind::kPut, 4, 400});
  ops.push_back({TxnOp::Kind::kDelete, 1, 0});

  Response r = service.Call(Request::Txn(std::move(ops)));
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.txn_attempts, 1u);
  ASSERT_EQ(r.txn_values.size(), 3u);  // one slot per kGet/kAdd
  ASSERT_EQ(r.txn_found.size(), 3u);
  EXPECT_EQ(r.txn_values[0], 100u);
  EXPECT_TRUE(r.txn_found[0]);
  EXPECT_EQ(r.txn_values[1], 200u);
  EXPECT_EQ(r.txn_values[2], 0u);
  EXPECT_FALSE(r.txn_found[2]);

  EXPECT_FALSE(db.value()->kv()->Get(1).ok());
  EXPECT_EQ(db.value()->kv()->Get(2).value(), 205u);
  EXPECT_EQ(db.value()->kv()->Get(3).value(), 7u);
  EXPECT_EQ(db.value()->kv()->Get(4).value(), 400u);

  service.Drain();
  EXPECT_EQ(service.metrics()
                .completed_by_type[static_cast<size_t>(RequestType::kTxn)],
            1u);
}

TEST(ServiceTest, TxnOnVolatileServiceFailsPrecondition) {
  kv::KvStore store;
  Service service(NoDegradeOptions(), &store);
  Response r = service.Call(Request::Txn({{TxnOp::Kind::kPut, 1, 10}}));
  EXPECT_EQ(r.status.code(), StatusCode::kFailedPrecondition);
}

// Concurrent kAdd txns on one hot key: the service's retry budget absorbs
// validation aborts, and OCC guarantees no increment is ever lost.
TEST(ServiceTest, ConcurrentTxnIncrementsAreAtomic) {
  dur::InMemoryFileBackend fs;
  dur::DurableKvOptions dopts;
  dopts.kv.latch_free_reads = true;
  dopts.log.fsync_interval_us = 5;
  auto db = dur::DurableKvStore::Open(&fs, "db", dopts);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db.value()->Put(1, 0).ok());

  ServiceOptions opts = NoDegradeOptions();
  opts.worker_threads = 4;
  Service service(opts, db.value().get());

  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::atomic<uint64_t> committed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        for (;;) {
          Response r = service.Call(
              Request::Txn({{TxnOp::Kind::kAdd, 1, 1}}, /*max_attempts=*/8));
          if (r.status.ok()) {
            committed.fetch_add(1, std::memory_order_relaxed);
            break;
          }
          ASSERT_EQ(r.status.code(), StatusCode::kAborted);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(committed.load(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(db.value()->kv()->Get(1).value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace hwstar::svc
