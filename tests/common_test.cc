#include <gtest/gtest.h>

#include <set>

#include "hwstar/common/bits.h"
#include "hwstar/common/hash.h"
#include "hwstar/common/logging.h"
#include "hwstar/common/random.h"
#include "hwstar/common/status.h"
#include "hwstar/common/timer.h"

namespace hwstar {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoryCodesRoundTrip) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

Status FailingStep() { return Status::Internal("boom"); }

Status UsesReturnIfError() {
  HWSTAR_RETURN_IF_ERROR(FailingStep());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(UsesReturnIfError().code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MovesValueOut) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(BitsTest, IsPowerOfTwo) {
  EXPECT_FALSE(bits::IsPowerOfTwo(0));
  EXPECT_TRUE(bits::IsPowerOfTwo(1));
  EXPECT_TRUE(bits::IsPowerOfTwo(2));
  EXPECT_FALSE(bits::IsPowerOfTwo(3));
  EXPECT_TRUE(bits::IsPowerOfTwo(uint64_t{1} << 63));
}

TEST(BitsTest, NextPowerOfTwo) {
  EXPECT_EQ(bits::NextPowerOfTwo(0), 1u);
  EXPECT_EQ(bits::NextPowerOfTwo(1), 1u);
  EXPECT_EQ(bits::NextPowerOfTwo(2), 2u);
  EXPECT_EQ(bits::NextPowerOfTwo(3), 4u);
  EXPECT_EQ(bits::NextPowerOfTwo(1000), 1024u);
  EXPECT_EQ(bits::NextPowerOfTwo(1024), 1024u);
}

TEST(BitsTest, Log2) {
  EXPECT_EQ(bits::Log2Floor(1), 0u);
  EXPECT_EQ(bits::Log2Floor(2), 1u);
  EXPECT_EQ(bits::Log2Floor(3), 1u);
  EXPECT_EQ(bits::Log2Floor(1024), 10u);
  EXPECT_EQ(bits::Log2Ceil(1), 0u);
  EXPECT_EQ(bits::Log2Ceil(3), 2u);
  EXPECT_EQ(bits::Log2Ceil(1024), 10u);
  EXPECT_EQ(bits::Log2Ceil(1025), 11u);
}

TEST(BitsTest, Align) {
  EXPECT_EQ(bits::AlignUp(0, 64), 0u);
  EXPECT_EQ(bits::AlignUp(1, 64), 64u);
  EXPECT_EQ(bits::AlignUp(64, 64), 64u);
  EXPECT_EQ(bits::AlignDown(63, 64), 0u);
  EXPECT_EQ(bits::AlignDown(65, 64), 64u);
}

TEST(BitsTest, ExtractBits) {
  EXPECT_EQ(bits::ExtractBits(0xFF00, 8, 8), 0xFFu);
  EXPECT_EQ(bits::ExtractBits(0b101100, 2, 3), 0b011u);
  EXPECT_EQ(bits::ExtractBits(~uint64_t{0}, 0, 64), ~uint64_t{0});
  EXPECT_EQ(bits::ExtractBits(123, 0, 0), 0u);
}

TEST(HashTest, Mix64Avalanche) {
  // Flipping one input bit should flip roughly half the output bits.
  const uint64_t h0 = Mix64(0x123456789abcdef0ULL);
  const uint64_t h1 = Mix64(0x123456789abcdef1ULL);
  const uint32_t flipped = bits::PopCount(h0 ^ h1);
  EXPECT_GT(flipped, 16u);
  EXPECT_LT(flipped, 48u);
}

TEST(HashTest, Mix64Deterministic) {
  EXPECT_EQ(Mix64(42), Mix64(42));
  EXPECT_NE(Mix64(42), Mix64(43));
}

TEST(HashTest, HashBytesDistinguishesContent) {
  EXPECT_NE(HashString("hello"), HashString("world"));
  EXPECT_EQ(HashString("hello"), HashString("hello"));
  EXPECT_NE(HashBytes("ab", 2), HashBytes("ba", 2));
}

TEST(HashTest, Crc32KnownVector) {
  // CRC32 of "123456789" with the standard polynomial is 0xCBF43926.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST(HashTest, Crc32Seeded) {
  // Chained CRC over split input equals CRC over whole input.
  uint32_t part = Crc32("12345", 5);
  // Note: simple seeding is not chaining; just check determinism and
  // difference.
  EXPECT_NE(Crc32("6789", 4, part), Crc32("6789", 4));
}

TEST(RandomTest, Deterministic) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Xoshiro256 a(7), b(8);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 3);
}

TEST(RandomTest, BoundedStaysInBounds) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RandomTest, BoundedCoversRange) {
  Xoshiro256 rng(2);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RandomTest, DoubleInUnitInterval) {
  Xoshiro256 rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RandomTest, RangeInclusive) {
  Xoshiro256 rng(4);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(TimerTest, MeasuresElapsed) {
  WallTimer t;
  volatile uint64_t sink = 0;
  for (int i = 0; i < 100000; ++i) sink += static_cast<uint64_t>(i);
  EXPECT_GT(t.ElapsedNanos(), 0u);
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
}

TEST(TimerTest, AccumulatorSumsIntervals) {
  AccumulatingTimer acc;
  acc.Start();
  volatile uint64_t sink = 0;
  for (int i = 0; i < 10000; ++i) sink += static_cast<uint64_t>(i);
  acc.Stop();
  const uint64_t first = acc.TotalNanos();
  EXPECT_GT(first, 0u);
  acc.Start();
  for (int i = 0; i < 10000; ++i) sink += static_cast<uint64_t>(i);
  acc.Stop();
  EXPECT_GT(acc.TotalNanos(), first);
  acc.Reset();
  EXPECT_EQ(acc.TotalNanos(), 0u);
}

TEST(LoggingTest, LevelFilters) {
  LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Emitting below the level must not crash (output suppressed).
  HWSTAR_LOG(Info) << "suppressed";
  HWSTAR_LOG(Error) << "visible during tests";
  SetLogLevel(prev);
}

}  // namespace
}  // namespace hwstar
