#include <gtest/gtest.h>

#include <map>

#include "hwstar/exec/executor.h"
#include "hwstar/ops/aggregation.h"
#include "hwstar/workload/distributions.h"

namespace hwstar::ops {
namespace {

std::map<uint64_t, std::pair<int64_t, uint64_t>> Reference(
    const std::vector<uint64_t>& keys, const std::vector<int64_t>& values) {
  std::map<uint64_t, std::pair<int64_t, uint64_t>> ref;
  for (size_t i = 0; i < keys.size(); ++i) {
    auto& [sum, count] = ref[keys[i]];
    sum += values[i];
    ++count;
  }
  return ref;
}

TEST(SumTest, Basic) {
  EXPECT_EQ(Sum(std::vector<int64_t>{1, 2, 3}), 6);
  EXPECT_EQ(Sum(std::vector<int64_t>{}), 0);
  EXPECT_EQ(Sum(std::vector<int64_t>{-5, 5}), 0);
}

TEST(ParallelSumTest, MatchesSequential) {
  std::vector<int64_t> v(1000000);
  for (size_t i = 0; i < v.size(); ++i) v[i] = static_cast<int64_t>(i % 1000) - 500;
  exec::Executor pool(2);
  EXPECT_EQ(ParallelSum(v, &pool), Sum(v));
  EXPECT_EQ(ParallelSum(v, nullptr), Sum(v));
}

TEST(HashAggregateTest, BasicGroups) {
  std::vector<uint64_t> keys = {1, 2, 1, 3, 2, 1};
  std::vector<int64_t> values = {10, 20, 30, 40, 50, 60};
  auto groups = HashAggregate(keys, values);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].key, 1u);
  EXPECT_EQ(groups[0].sum, 100);
  EXPECT_EQ(groups[0].count, 3u);
  EXPECT_EQ(groups[1].key, 2u);
  EXPECT_EQ(groups[1].sum, 70);
  EXPECT_EQ(groups[2].key, 3u);
  EXPECT_EQ(groups[2].sum, 40);
}

TEST(HashAggregateTest, EmptyInput) {
  EXPECT_TRUE(HashAggregate({}, {}).empty());
}

TEST(HashAggregateTest, SingleGroupManyRows) {
  std::vector<uint64_t> keys(10000, 7);
  std::vector<int64_t> values(10000, 2);
  auto groups = HashAggregate(keys, values);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].sum, 20000);
  EXPECT_EQ(groups[0].count, 10000u);
}

TEST(HashAggregateTest, ManyDistinctGroupsForcesGrowth) {
  // More groups than the initial table capacity: exercises Grow().
  std::vector<uint64_t> keys;
  std::vector<int64_t> values;
  for (uint64_t i = 0; i < 50000; ++i) {
    keys.push_back(i);
    values.push_back(static_cast<int64_t>(i));
  }
  auto groups = HashAggregate(keys, values);
  ASSERT_EQ(groups.size(), 50000u);
  EXPECT_EQ(groups[123].key, 123u);
  EXPECT_EQ(groups[123].sum, 123);
}

/// Property: plain, partitioned, and parallel-partitioned aggregation all
/// match the reference across group counts and skew.
struct AggParam {
  uint64_t rows;
  uint64_t groups;
  double theta;
  uint32_t radix_bits;
  bool parallel;
};

class AggEquivalence : public ::testing::TestWithParam<AggParam> {};

TEST_P(AggEquivalence, MatchesReference) {
  const AggParam p = GetParam();
  auto keys = workload::ZipfKeys(p.rows, p.groups, p.theta, 77);
  std::vector<int64_t> values(p.rows);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<int64_t>(i % 997) - 498;
  }
  auto ref = Reference(keys, values);

  exec::Executor pool(2);
  HashAggregateOptions opts;
  opts.radix_bits = p.radix_bits;
  opts.pool = p.parallel ? &pool : nullptr;
  auto groups = HashAggregate(keys, values, opts);

  ASSERT_EQ(groups.size(), ref.size());
  for (const auto& g : groups) {
    auto it = ref.find(g.key);
    ASSERT_NE(it, ref.end());
    EXPECT_EQ(g.sum, it->second.first);
    EXPECT_EQ(g.count, it->second.second);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AggEquivalence,
    ::testing::Values(AggParam{1000, 10, 0.0, 0, false},
                      AggParam{1000, 10, 0.0, 4, false},
                      AggParam{10000, 1000, 0.5, 0, false},
                      AggParam{10000, 1000, 0.5, 6, false},
                      AggParam{10000, 1000, 0.9, 6, true},
                      AggParam{50000, 50000, 0.0, 8, true},
                      AggParam{100, 1, 0.0, 2, false}));

}  // namespace
}  // namespace hwstar::ops
