#include <gtest/gtest.h>

#include <cstring>

#include "hwstar/hw/machine_model.h"
#include "hwstar/mem/aligned.h"
#include "hwstar/mem/arena.h"
#include "hwstar/mem/memory_pool.h"
#include "hwstar/mem/numa_allocator.h"

namespace hwstar::mem {
namespace {

TEST(AlignedTest, RespectsAlignment) {
  for (size_t align : {16, 64, 256, 4096}) {
    void* p = AlignedAlloc(100, align);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u);
    AlignedFree(p);
  }
}

TEST(AlignedTest, ZeroBytesStillValid) {
  void* p = AlignedAlloc(0);
  EXPECT_NE(p, nullptr);
  AlignedFree(p);
}

TEST(AlignedTest, BufferIsWritable) {
  AlignedBuffer buf = MakeAlignedBuffer(4096);
  ASSERT_NE(buf, nullptr);
  std::memset(buf.get(), 0xAB, 4096);
  EXPECT_EQ(buf[0], 0xAB);
  EXPECT_EQ(buf[4095], 0xAB);
}

TEST(ArenaTest, BumpAllocatesDistinctRegions) {
  Arena arena;
  char* a = arena.AllocateArray<char>(100);
  char* b = arena.AllocateArray<char>(100);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  std::memset(a, 1, 100);
  std::memset(b, 2, 100);
  EXPECT_EQ(a[99], 1);
  EXPECT_EQ(b[0], 2);
}

TEST(ArenaTest, AlignmentHonored) {
  Arena arena;
  arena.Allocate(3);  // misalign the cursor
  void* p = arena.Allocate(64, 64);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 64, 0u);
}

TEST(ArenaTest, LargeAllocationGetsOwnBlock) {
  Arena arena(1 << 20);
  void* p = arena.Allocate(4 << 20);
  ASSERT_NE(p, nullptr);
  EXPECT_GE(arena.bytes_reserved(), 4u << 20);
  // Arena remains usable afterwards.
  void* q = arena.Allocate(128);
  EXPECT_NE(q, nullptr);
}

TEST(ArenaTest, ResetRewinds) {
  Arena arena;
  arena.Allocate(1000);
  size_t reserved = arena.bytes_reserved();
  arena.Reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_LE(arena.bytes_reserved(), reserved);
  void* p = arena.Allocate(100);
  EXPECT_NE(p, nullptr);
}

TEST(ArenaTest, TracksAllocatedBytes) {
  Arena arena;
  arena.Allocate(100);
  arena.Allocate(200);
  EXPECT_EQ(arena.bytes_allocated(), 300u);
}

TEST(MemoryPoolTest, TracksUsageAndPeak) {
  MemoryPool pool;
  auto r1 = pool.Allocate(1000);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(pool.bytes_in_use(), 1000);
  auto r2 = pool.Allocate(500);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(pool.bytes_in_use(), 1500);
  EXPECT_EQ(pool.peak_bytes(), 1500);
  pool.Free(r1.value(), 1000);
  EXPECT_EQ(pool.bytes_in_use(), 500);
  EXPECT_EQ(pool.peak_bytes(), 1500);
  pool.Free(r2.value(), 500);
  EXPECT_EQ(pool.bytes_in_use(), 0);
}

TEST(MemoryPoolTest, EnforcesLimit) {
  MemoryPool pool(1024);
  auto r1 = pool.Allocate(512);
  ASSERT_TRUE(r1.ok());
  auto r2 = pool.Allocate(1024);
  EXPECT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kResourceExhausted);
  // Failed allocation must not leak accounting.
  EXPECT_EQ(pool.bytes_in_use(), 512);
  pool.Free(r1.value(), 512);
}

TEST(MemoryPoolTest, DefaultPoolSingleton) {
  EXPECT_EQ(MemoryPool::Default(), MemoryPool::Default());
}

TEST(NumaAllocatorTest, RegistersPlacementWithModel) {
  hw::MachineModel m = hw::MachineModel::Server2013();
  sim::NumaModel model(m);
  NumaAllocator alloc(&model);
  void* p = alloc.Allocate(1 << 16, NumaAllocator::Policy::kFirstTouch, 1);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(model.HomeNode(reinterpret_cast<uint64_t>(p)), 1u);
  alloc.Free(p, 1 << 16);
  EXPECT_EQ(model.HomeNode(reinterpret_cast<uint64_t>(p)), 0u);
}

TEST(NumaAllocatorTest, InterleavePlacesAcrossNodes) {
  hw::MachineModel m = hw::MachineModel::Server2013();
  sim::NumaModel model(m);
  NumaAllocator alloc(&model);
  auto* arr = alloc.AllocateArray<uint64_t>(
      (64 * 4096) / sizeof(uint64_t), NumaAllocator::Policy::kInterleave);
  ASSERT_NE(arr, nullptr);
  const uint64_t base = reinterpret_cast<uint64_t>(arr);
  uint32_t node0 = 0, node1 = 0;
  for (uint64_t page = 0; page < 64; ++page) {
    (model.HomeNode(base + page * 4096) == 0 ? node0 : node1)++;
  }
  EXPECT_EQ(node0, 32u);
  EXPECT_EQ(node1, 32u);
  alloc.Free(arr, 64 * 4096);
}

}  // namespace
}  // namespace hwstar::mem
