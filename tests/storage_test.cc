#include <gtest/gtest.h>

#include "hwstar/storage/column.h"
#include "hwstar/storage/column_store.h"
#include "hwstar/storage/pax.h"
#include "hwstar/storage/row_store.h"
#include "hwstar/storage/table.h"
#include "hwstar/storage/types.h"

namespace hwstar::storage {
namespace {

Schema FixedSchema() {
  return Schema({{"id", TypeId::kInt64},
                 {"qty", TypeId::kInt32},
                 {"price", TypeId::kFloat64}});
}

/// Builds a small 3-column table with deterministic values.
Table MakeTable(uint64_t rows) {
  Table t(FixedSchema());
  for (uint64_t r = 0; r < rows; ++r) {
    t.column(0).AppendInt64(static_cast<int64_t>(r * 10));
    t.column(1).AppendInt32(static_cast<int32_t>(r % 100));
    t.column(2).AppendFloat64(static_cast<double>(r) * 0.5);
    EXPECT_TRUE(t.FinishRow().ok());
  }
  return t;
}

TEST(TypesTest, WidthsAndNames) {
  EXPECT_EQ(TypeWidth(TypeId::kInt32), 4u);
  EXPECT_EQ(TypeWidth(TypeId::kInt64), 8u);
  EXPECT_EQ(TypeWidth(TypeId::kFloat64), 8u);
  EXPECT_EQ(TypeWidth(TypeId::kString), 0u);
  EXPECT_STREQ(TypeName(TypeId::kInt64), "int64");
  EXPECT_TRUE(IsFixedWidth(TypeId::kInt32));
  EXPECT_FALSE(IsFixedWidth(TypeId::kString));
}

TEST(SchemaTest, FieldLookup) {
  Schema s = FixedSchema();
  EXPECT_EQ(s.num_fields(), 3u);
  EXPECT_EQ(s.FieldIndex("qty"), 1);
  EXPECT_EQ(s.FieldIndex("nope"), -1);
}

TEST(SchemaTest, FixedRowWidthAndOffsets) {
  Schema s = FixedSchema();
  auto width = s.FixedRowWidth();
  ASSERT_TRUE(width.ok());
  EXPECT_EQ(width.value(), 20u);
  EXPECT_EQ(s.FixedOffset(0).value(), 0u);
  EXPECT_EQ(s.FixedOffset(1).value(), 8u);
  EXPECT_EQ(s.FixedOffset(2).value(), 12u);
  EXPECT_FALSE(s.FixedOffset(3).ok());
}

TEST(SchemaTest, VariableWidthRejected) {
  Schema s({{"name", TypeId::kString}, {"id", TypeId::kInt64}});
  EXPECT_FALSE(s.FixedRowWidth().ok());
  EXPECT_FALSE(s.FixedOffset(1).ok());
  EXPECT_TRUE(s.FixedOffset(0).ok());  // nothing precedes field 0
}

TEST(SchemaTest, ToStringRendersAllFields) {
  std::string s = FixedSchema().ToString();
  EXPECT_NE(s.find("id:int64"), std::string::npos);
  EXPECT_NE(s.find("price:float64"), std::string::npos);
}

TEST(ColumnTest, TypedAppendAndGet) {
  Column c(TypeId::kInt64);
  c.AppendInt64(5);
  c.AppendInt64(-7);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.GetInt64(0), 5);
  EXPECT_EQ(c.GetInt64(1), -7);
  EXPECT_EQ(c.DataBytes(), 16u);
}

TEST(ColumnTest, StringDictionaryEncoding) {
  Column c(TypeId::kString);
  c.AppendString("red");
  c.AppendString("green");
  c.AppendString("red");
  c.AppendString("blue");
  EXPECT_EQ(c.size(), 4u);
  EXPECT_EQ(c.GetString(0), "red");
  EXPECT_EQ(c.GetString(2), "red");
  EXPECT_EQ(c.GetStringCode(0), c.GetStringCode(2));
  EXPECT_NE(c.GetStringCode(0), c.GetStringCode(1));
  EXPECT_EQ(c.dictionary().size(), 3u);
}

TEST(ColumnTest, SpansExposeDenseData) {
  Column c(TypeId::kFloat64);
  c.AppendFloat64(1.5);
  c.AppendFloat64(2.5);
  auto span = c.Float64Span();
  ASSERT_EQ(span.size(), 2u);
  EXPECT_DOUBLE_EQ(span[0], 1.5);
  EXPECT_DOUBLE_EQ(span[1], 2.5);
  EXPECT_EQ(c.Data(), span.data());
}

TEST(TableTest, FinishRowEnforcesAlignment) {
  Table t(FixedSchema());
  t.column(0).AppendInt64(1);
  // Missing two columns: FinishRow must fail.
  EXPECT_FALSE(t.FinishRow().ok());
  t.column(1).AppendInt32(2);
  t.column(2).AppendFloat64(3.0);
  EXPECT_TRUE(t.FinishRow().ok());
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TableTest, ColumnByName) {
  Table t = MakeTable(3);
  EXPECT_NE(t.ColumnByName("price"), nullptr);
  EXPECT_EQ(t.ColumnByName("ghost"), nullptr);
}

TEST(TableTest, SetRowCountValidates) {
  Table t(FixedSchema());
  t.column(0).AppendInt64(1);
  t.column(1).AppendInt32(1);
  t.column(2).AppendFloat64(1.0);
  EXPECT_FALSE(t.SetRowCount(2).ok());
  EXPECT_TRUE(t.SetRowCount(1).ok());
}

TEST(RowStoreTest, RoundTripsValues) {
  Table t = MakeTable(100);
  auto rs = RowStore::FromTable(t);
  ASSERT_TRUE(rs.ok());
  const RowStore& store = rs.value();
  EXPECT_EQ(store.num_rows(), 100u);
  EXPECT_EQ(store.row_width(), 20u);
  for (uint64_t r = 0; r < 100; ++r) {
    EXPECT_EQ(store.GetInt(r, 0), static_cast<int64_t>(r * 10));
    EXPECT_EQ(store.GetInt(r, 1), static_cast<int64_t>(r % 100));
    EXPECT_DOUBLE_EQ(store.GetFloat(r, 2), static_cast<double>(r) * 0.5);
  }
}

TEST(RowStoreTest, AppendRow) {
  auto rs = RowStore::Create(FixedSchema());
  ASSERT_TRUE(rs.ok());
  RowStore store = std::move(rs).value();
  store.AppendRow({42, 7}, {3.25});
  ASSERT_EQ(store.num_rows(), 1u);
  EXPECT_EQ(store.GetInt(0, 0), 42);
  EXPECT_EQ(store.GetInt(0, 1), 7);
  EXPECT_DOUBLE_EQ(store.GetFloat(0, 2), 3.25);
}

TEST(RowStoreTest, RejectsStringSchema) {
  Schema s({{"name", TypeId::kString}});
  EXPECT_FALSE(RowStore::Create(s).ok());
}

TEST(ColumnStoreTest, WidensAllTypes) {
  Table t = MakeTable(50);
  auto cs = ColumnStore::FromTable(t);
  ASSERT_TRUE(cs.ok());
  const ColumnStore& store = cs.value();
  EXPECT_EQ(store.num_rows(), 50u);
  EXPECT_FALSE(store.IsFloat(0));
  EXPECT_FALSE(store.IsFloat(1));
  EXPECT_TRUE(store.IsFloat(2));
  for (uint64_t r = 0; r < 50; ++r) {
    EXPECT_EQ(store.IntColumn(0)[r], static_cast<int64_t>(r * 10));
    EXPECT_EQ(store.IntColumn(1)[r], static_cast<int64_t>(r % 100));
    EXPECT_DOUBLE_EQ(store.FloatColumn(2)[r], static_cast<double>(r) * 0.5);
  }
}

TEST(ColumnStoreTest, StringCodesWidened) {
  Schema s({{"color", TypeId::kString}});
  Table t(s);
  t.column(0).AppendString("a");
  t.column(0).AppendString("b");
  t.column(0).AppendString("a");
  ASSERT_TRUE(t.SetRowCount(3).ok());
  auto cs = ColumnStore::FromTable(t);
  ASSERT_TRUE(cs.ok());
  EXPECT_EQ(cs.value().IntColumn(0)[0], cs.value().IntColumn(0)[2]);
  EXPECT_NE(cs.value().IntColumn(0)[0], cs.value().IntColumn(0)[1]);
}

TEST(PaxStoreTest, RoundTripsValues) {
  Table t = MakeTable(1000);
  auto ps = PaxStore::FromTable(t, /*rows_per_page=*/128);
  ASSERT_TRUE(ps.ok());
  const PaxStore& store = ps.value();
  EXPECT_EQ(store.num_rows(), 1000u);
  EXPECT_EQ(store.rows_per_page(), 128u);
  EXPECT_EQ(store.num_pages(), 8u);
  for (uint64_t r = 0; r < 1000; r += 37) {
    EXPECT_EQ(store.GetInt(r, 0), static_cast<int64_t>(r * 10));
    EXPECT_EQ(store.GetInt(r, 1), static_cast<int64_t>(r % 100));
    EXPECT_DOUBLE_EQ(store.GetFloat(r, 2), static_cast<double>(r) * 0.5);
  }
}

TEST(PaxStoreTest, MinipagesAreContiguous) {
  Table t = MakeTable(256);
  auto ps = PaxStore::FromTable(t, 128);
  ASSERT_TRUE(ps.ok());
  const PaxStore& store = ps.value();
  const int64_t* mini = store.IntMinipage(0, 0);
  for (uint32_t i = 0; i < 128; ++i) {
    EXPECT_EQ(mini[i], static_cast<int64_t>(i * 10));
  }
}

TEST(PaxStoreTest, LastPagePartiallyFilled) {
  Table t = MakeTable(100);
  auto ps = PaxStore::FromTable(t, 64);
  ASSERT_TRUE(ps.ok());
  EXPECT_EQ(ps.value().num_pages(), 2u);
  EXPECT_EQ(ps.value().RowsInPage(0), 64u);
  EXPECT_EQ(ps.value().RowsInPage(1), 36u);
}

TEST(PaxStoreTest, DefaultRowsPerPageTargets64KB) {
  Table t = MakeTable(10);
  auto ps = PaxStore::FromTable(t);
  ASSERT_TRUE(ps.ok());
  // 3 widened fields -> 24 bytes per row -> 2730 rows in 64KB.
  EXPECT_EQ(ps.value().rows_per_page(), (64u * 1024u) / 24u);
}

TEST(PaxChecksumTest, FreshStoreVerifies) {
  Table t = MakeTable(500);
  auto ps = PaxStore::FromTable(t, 64);
  ASSERT_TRUE(ps.ok());
  EXPECT_TRUE(ps.value().VerifyChecksums().ok());
}

TEST(PaxChecksumTest, DetectsCorruption) {
  Table t = MakeTable(500);
  auto ps = PaxStore::FromTable(t, 64);
  ASSERT_TRUE(ps.ok());
  PaxStore store = std::move(ps).value();
  // Flip one bit in page 3, field 1.
  store.MutableMinipage(3, 1)[7] ^= 1;
  Status st = store.VerifyChecksums();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_NE(st.message().find("page 3"), std::string::npos);
  // Resealing accepts the new contents.
  store.SealChecksums();
  EXPECT_TRUE(store.VerifyChecksums().ok());
}

TEST(PaxChecksumTest, ChecksumsDifferAcrossPages) {
  Table t = MakeTable(500);
  auto ps = PaxStore::FromTable(t, 64);
  ASSERT_TRUE(ps.ok());
  EXPECT_NE(ps.value().PageChecksum(0), ps.value().PageChecksum(1));
}

TEST(LayoutConsistencyTest, AllThreeLayoutsAgree) {
  Table t = MakeTable(333);
  auto rs = RowStore::FromTable(t);
  auto cs = ColumnStore::FromTable(t);
  auto ps = PaxStore::FromTable(t, 50);
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(cs.ok());
  ASSERT_TRUE(ps.ok());
  for (uint64_t r = 0; r < 333; r += 11) {
    EXPECT_EQ(rs.value().GetInt(r, 0), cs.value().IntColumn(0)[r]);
    EXPECT_EQ(cs.value().IntColumn(0)[r], ps.value().GetInt(r, 0));
    EXPECT_DOUBLE_EQ(rs.value().GetFloat(r, 2), ps.value().GetFloat(r, 2));
  }
}

}  // namespace
}  // namespace hwstar::storage
