#include <gtest/gtest.h>

#include "hwstar/hw/machine_model.h"
#include "hwstar/sim/energy_model.h"
#include "hwstar/sim/hierarchy.h"
#include "hwstar/sim/memory_trace.h"
#include "hwstar/sim/numa_model.h"
#include "hwstar/sim/offload_model.h"

namespace hwstar::sim {
namespace {

MemoryHierarchy::Options NoPrefetch() {
  MemoryHierarchy::Options opts;
  opts.enable_prefetcher = false;
  return opts;
}

TEST(HierarchyTest, ColdMissPaysDramLatency) {
  hw::MachineModel m = hw::MachineModel::Server2013();
  MemoryHierarchy hier(m, NoPrefetch());
  const uint32_t lat = hier.Access(0x100000);
  // Miss in all levels: sum of level latencies + TLB miss + DRAM.
  uint32_t expected = m.tlb.miss_penalty_cycles + m.dram_latency_cycles;
  for (const auto& c : m.caches) expected += c.hit_latency_cycles;
  EXPECT_EQ(lat, expected);
}

TEST(HierarchyTest, WarmHitPaysL1Latency) {
  hw::MachineModel m = hw::MachineModel::Server2013();
  MemoryHierarchy hier(m, NoPrefetch());
  hier.Access(0x100000);
  const uint32_t lat = hier.Access(0x100000);
  EXPECT_EQ(lat, m.caches[0].hit_latency_cycles);
}

TEST(HierarchyTest, SequentialScanBeatsRandomAccess) {
  hw::MachineModel m = hw::MachineModel::Server2013();
  const uint64_t bytes = 8 << 20;  // 8MB > L1+L2, fits partly in L3

  MemoryHierarchy seq(m);
  for (uint64_t a = 0; a < bytes; a += 64) seq.Access(0x10000000 + a);
  const double seq_cpa = seq.Stats().cycles_per_access();

  MemoryHierarchy rnd(m);
  uint64_t x = 7;
  const uint64_t lines = bytes / 64;
  for (uint64_t i = 0; i < lines; ++i) {
    x = x * 6364136223846793005ULL + 1;
    rnd.Access(0x10000000 + (x % lines) * 64);
  }
  const double rnd_cpa = rnd.Stats().cycles_per_access();

  // The prefetcher hides latency on the sequential stream; random probes
  // pay nearly full DRAM latency.
  EXPECT_LT(seq_cpa * 2, rnd_cpa);
}

TEST(HierarchyTest, PrefetcherTogglesBehaviour) {
  hw::MachineModel m = hw::MachineModel::Server2013();
  MemoryHierarchy with(m);
  MemoryHierarchy without(m, NoPrefetch());
  for (uint64_t a = 0; a < (4 << 20); a += 64) {
    with.Access(a);
    without.Access(a);
  }
  EXPECT_LT(with.Stats().cycles_per_access(),
            without.Stats().cycles_per_access());
  EXPECT_GT(with.Stats().prefetch.issued, 0u);
}

TEST(HierarchyTest, AccessRangeTouchesEveryLine) {
  hw::MachineModel m = hw::MachineModel::Desktop();
  MemoryHierarchy hier(m, NoPrefetch());
  hier.AccessRange(0x1000, 256);  // 4 lines
  EXPECT_EQ(hier.Stats().accesses, 4u);
  // Unaligned range spanning a line boundary.
  MemoryHierarchy hier2(m, NoPrefetch());
  hier2.AccessRange(0x1030, 64);  // crosses into the next line
  EXPECT_EQ(hier2.Stats().accesses, 2u);
  // Zero bytes -> zero accesses.
  MemoryHierarchy hier3(m, NoPrefetch());
  EXPECT_EQ(hier3.AccessRange(0x1000, 0), 0u);
}

TEST(HierarchyTest, StatsAccumulateAndReset) {
  hw::MachineModel m = hw::MachineModel::Desktop();
  MemoryHierarchy hier(m, NoPrefetch());
  hier.Access(0);
  hier.Access(0);
  HierarchyStats st = hier.Stats();
  EXPECT_EQ(st.accesses, 2u);
  EXPECT_EQ(st.levels[0].hits, 1u);
  EXPECT_EQ(st.levels[0].misses, 1u);
  hier.ResetStats();
  EXPECT_EQ(hier.Stats().accesses, 0u);
  // Contents survive a stats reset.
  EXPECT_EQ(hier.Access(0), m.caches[0].hit_latency_cycles);
  hier.ColdReset();
  EXPECT_GT(hier.Access(0), m.caches[0].hit_latency_cycles);
}

TEST(HierarchyTest, EnergyEventsTrackHierarchy) {
  hw::MachineModel m = hw::MachineModel::Server2013();
  MemoryHierarchy hier(m, NoPrefetch());
  hier.Access(0);           // DRAM
  hier.Access(0);           // L1 hit
  hier.CountInstructions(100);
  EnergyEvents e = hier.Stats().energy_events;
  EXPECT_EQ(e.dram_accesses, 1u);
  EXPECT_EQ(e.l1_hits, 1u);
  EXPECT_EQ(e.instructions, 100u);
}

TEST(HierarchyTest, ReplayMatchesDirectAccesses) {
  hw::MachineModel m = hw::MachineModel::Desktop();
  MemoryTrace trace;
  MemoryHierarchy direct(m, NoPrefetch());
  uint64_t x = 3;
  for (int i = 0; i < 5000; ++i) {
    x = x * 6364136223846793005ULL + 1;
    const uint64_t addr = (x >> 20) % (1 << 20);
    trace.Record(addr, i % 5 == 0);
    direct.Access(addr, i % 5 == 0);
  }
  MemoryHierarchy replayed(m, NoPrefetch());
  replayed.Replay(trace);
  EXPECT_EQ(replayed.Stats().total_cycles, direct.Stats().total_cycles);
  EXPECT_EQ(replayed.Stats().levels[0].misses,
            direct.Stats().levels[0].misses);
}

TEST(MemoryTraceTest, CapacityBoundsAndDropCounting) {
  MemoryTrace trace(10);
  for (int i = 0; i < 25; ++i) trace.Record(i, false);
  EXPECT_EQ(trace.size(), 10u);
  EXPECT_EQ(trace.dropped(), 15u);
  trace.Clear();
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(trace.dropped(), 0u);
}

TEST(NumaModelTest, BindPolicyAllOnNode0) {
  hw::MachineModel m = hw::MachineModel::Server2013();
  NumaModel numa(m);
  numa.RegisterRegion(0x1000, 1 << 20, NumaModel::Policy::kBindNode0);
  for (uint64_t a = 0x1000; a < 0x1000 + (1 << 20); a += 4096) {
    EXPECT_EQ(numa.HomeNode(a), 0u);
  }
}

TEST(NumaModelTest, InterleaveAlternatesPages) {
  hw::MachineModel m = hw::MachineModel::Server2013();  // 2 nodes
  NumaModel numa(m);
  numa.RegisterRegion(0, 1 << 20, NumaModel::Policy::kInterleave);
  EXPECT_EQ(numa.HomeNode(0), 0u);
  EXPECT_EQ(numa.HomeNode(4096), 1u);
  EXPECT_EQ(numa.HomeNode(8192), 0u);
}

TEST(NumaModelTest, FirstTouchOwnsNode) {
  hw::MachineModel m = hw::MachineModel::Server2013();
  NumaModel numa(m);
  numa.RegisterRegion(0x2000, 4096, NumaModel::Policy::kFirstTouch, 1);
  EXPECT_EQ(numa.HomeNode(0x2000), 1u);
}

TEST(NumaModelTest, RemoteAccessCostsMore) {
  hw::MachineModel m = hw::MachineModel::Server2013();
  NumaModel numa(m);
  numa.RegisterRegion(0x2000, 4096, NumaModel::Policy::kFirstTouch, 1);
  // Core 0 is on node 0; the region lives on node 1.
  const uint32_t remote = numa.DramLatency(0, 0x2000);
  // Cores in the upper half map to node 1.
  const uint32_t local = numa.DramLatency(m.cores - 1, 0x2000);
  EXPECT_GT(remote, local);
  EXPECT_EQ(local, m.dram_latency_cycles);
  EXPECT_EQ(numa.stats().remote_accesses, 1u);
  EXPECT_EQ(numa.stats().local_accesses, 1u);
}

TEST(NumaModelTest, UnregisteredDefaultsToNode0) {
  hw::MachineModel m = hw::MachineModel::Server2013();
  NumaModel numa(m);
  EXPECT_EQ(numa.HomeNode(0xDEADBEEF), 0u);
}

TEST(NumaModelTest, UnregisterRemovesRegion) {
  hw::MachineModel m = hw::MachineModel::Server2013();
  NumaModel numa(m);
  numa.RegisterRegion(0x2000, 4096, NumaModel::Policy::kFirstTouch, 1);
  numa.UnregisterRegion(0x2000);
  EXPECT_EQ(numa.HomeNode(0x2000), 0u);
}

TEST(EnergyModelTest, ComputesWeightedSum) {
  hw::MachineModel m = hw::MachineModel::Server2013();
  EnergyModel energy(m);
  EnergyEvents e;
  e.instructions = 10;
  e.l1_hits = 5;
  e.dram_accesses = 2;
  const double pj = energy.EnergyPicojoules(e);
  EXPECT_DOUBLE_EQ(pj, 10 * m.energy_pj_instruction + 5 * m.energy_pj_l1_hit +
                           2 * m.energy_pj_dram);
  EXPECT_DOUBLE_EQ(energy.EnergyNanojoules(e), pj * 1e-3);
  EXPECT_DOUBLE_EQ(energy.EnergyPerTuplePj(e, 10), pj / 10.0);
  EXPECT_DOUBLE_EQ(energy.EnergyPerTuplePj(e, 0), 0.0);
}

TEST(EnergyEventsTest, AccumulateWithPlusEquals) {
  EnergyEvents a, b;
  a.l1_hits = 3;
  b.l1_hits = 4;
  b.dram_accesses = 2;
  a += b;
  EXPECT_EQ(a.l1_hits, 7u);
  EXPECT_EQ(a.dram_accesses, 2u);
}

TEST(OffloadModelTest, SmallInputsFavorCpu) {
  OffloadModel model;
  EXPECT_LT(model.CpuSeconds(1024), model.AccelSeconds(1024));
}

TEST(OffloadModelTest, LargeInputsFavorAccelerator) {
  OffloadModel model;
  const uint64_t big = uint64_t{1} << 30;
  EXPECT_GT(model.CpuSeconds(big), model.AccelSeconds(big));
}

TEST(OffloadModelTest, BreakEvenIsConsistent) {
  OffloadModel model;
  const uint64_t be = model.BreakEvenBytes(1);
  ASSERT_GT(be, 1u);
  EXPECT_GT(model.AccelSeconds(be / 2), model.CpuSeconds(be / 2, 1));
  EXPECT_LE(model.AccelSeconds(be), model.CpuSeconds(be, 1));
}

TEST(OffloadModelTest, MoreCpuCoresPushBreakEvenUp) {
  OffloadModel model;
  const uint64_t be1 = model.BreakEvenBytes(1);
  const uint64_t be2 = model.BreakEvenBytes(2);
  ASSERT_GT(be1, 0u);
  // With 2 cores, either the accelerator never wins (0) or needs more data.
  if (be2 != 0) {
    EXPECT_GT(be2, be1);
  }
}

TEST(OffloadModelTest, SlowAcceleratorNeverWins) {
  OffloadModel::Params p;
  p.accel_bandwidth_gbps = 1.0;
  p.cpu_bandwidth_gbps = 8.0;
  OffloadModel model(p);
  EXPECT_EQ(model.BreakEvenBytes(1), 0u);
}

}  // namespace
}  // namespace hwstar::sim
