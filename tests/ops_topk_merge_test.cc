#include <gtest/gtest.h>

#include <algorithm>

#include "hwstar/common/random.h"
#include "hwstar/ops/merge.h"
#include "hwstar/ops/topk.h"

namespace hwstar::ops {
namespace {

// ---------- top-k ----------

TEST(TopKTest, BasicDescendingOrder) {
  std::vector<uint64_t> v = {5, 1, 9, 3, 7};
  EXPECT_EQ(TopKBySort(v, 3), (std::vector<uint64_t>{9, 7, 5}));
  EXPECT_EQ(TopKByHeap(v, 3), (std::vector<uint64_t>{9, 7, 5}));
  EXPECT_EQ(TopKByThreshold(v, 3), (std::vector<uint64_t>{9, 7, 5}));
}

TEST(TopKTest, KLargerThanInput) {
  std::vector<uint64_t> v = {2, 1};
  EXPECT_EQ(TopKBySort(v, 10), (std::vector<uint64_t>{2, 1}));
  EXPECT_EQ(TopKByHeap(v, 10), (std::vector<uint64_t>{2, 1}));
  EXPECT_EQ(TopKByThreshold(v, 10), (std::vector<uint64_t>{2, 1}));
}

TEST(TopKTest, KZeroAndEmptyInput) {
  std::vector<uint64_t> v = {1, 2, 3};
  EXPECT_TRUE(TopKBySort(v, 0).empty());
  EXPECT_TRUE(TopKByHeap(v, 0).empty());
  EXPECT_TRUE(TopKByThreshold(v, 0).empty());
  std::vector<uint64_t> empty;
  EXPECT_TRUE(TopKByHeap(empty, 5).empty());
  EXPECT_TRUE(TopKByThreshold(empty, 5).empty());
}

TEST(TopKTest, Duplicates) {
  std::vector<uint64_t> v = {7, 7, 7, 3, 9, 9};
  EXPECT_EQ(TopKByHeap(v, 4), (std::vector<uint64_t>{9, 9, 7, 7}));
}

/// Property: all three kernels agree across sizes, k and distributions.
class TopKEquivalence
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint64_t>> {};

TEST_P(TopKEquivalence, KernelsAgree) {
  const auto [n, k] = GetParam();
  hwstar::Xoshiro256 rng(n * 17 + k);
  std::vector<uint64_t> v(n);
  for (auto& x : v) x = rng.NextBounded(n / 2 + 10);  // ensure duplicates
  auto expected = TopKBySort(v, k);
  EXPECT_EQ(TopKByHeap(v, k), expected);
  EXPECT_EQ(TopKByThreshold(v, k), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TopKEquivalence,
    ::testing::Combine(::testing::Values(1u, 100u, 10000u, 100000u),
                       ::testing::Values(1u, 10u, 100u, 5000u)));

// ---------- loser-tree merge ----------

TEST(LoserTreeTest, MergesTwoRuns) {
  std::vector<std::vector<uint64_t>> runs = {{1, 3, 5}, {2, 4, 6}};
  EXPECT_EQ(MergeSortedRuns(runs), (std::vector<uint64_t>{1, 2, 3, 4, 5, 6}));
}

TEST(LoserTreeTest, HandlesEmptyRuns) {
  std::vector<std::vector<uint64_t>> runs = {{}, {5}, {}, {1, 9}};
  EXPECT_EQ(MergeSortedRuns(runs), (std::vector<uint64_t>{1, 5, 9}));
}

TEST(LoserTreeTest, AllEmpty) {
  std::vector<std::vector<uint64_t>> runs = {{}, {}};
  EXPECT_TRUE(MergeSortedRuns(runs).empty());
  std::vector<std::vector<uint64_t>> none;
  EXPECT_TRUE(MergeSortedRuns(none).empty());
}

TEST(LoserTreeTest, SingleRunPassthrough) {
  std::vector<std::vector<uint64_t>> runs = {{1, 2, 2, 3}};
  EXPECT_EQ(MergeSortedRuns(runs), (std::vector<uint64_t>{1, 2, 2, 3}));
}

TEST(LoserTreeTest, NonPowerOfTwoFanIn) {
  std::vector<std::vector<uint64_t>> runs = {{3}, {1}, {2}, {5}, {4}};
  EXPECT_EQ(MergeSortedRuns(runs), (std::vector<uint64_t>{1, 2, 3, 4, 5}));
}

TEST(LoserTreeTest, DuplicatesAcrossRuns) {
  std::vector<std::vector<uint64_t>> runs = {{2, 2}, {2}, {1, 2}};
  EXPECT_EQ(MergeSortedRuns(runs), (std::vector<uint64_t>{1, 2, 2, 2, 2}));
}

TEST(LoserTreeTest, IncrementalApi) {
  std::vector<uint64_t> a = {1, 4}, b = {2, 3};
  LoserTreeMerger merger({{a.data(), a.size()}, {b.data(), b.size()}});
  EXPECT_EQ(merger.remaining(), 4u);
  EXPECT_EQ(merger.Next(), 1u);
  EXPECT_EQ(merger.Next(), 2u);
  EXPECT_EQ(merger.remaining(), 2u);
  EXPECT_EQ(merger.Next(), 3u);
  EXPECT_EQ(merger.Next(), 4u);
  EXPECT_FALSE(merger.HasNext());
}

/// Property: loser tree == linear baseline == std::sort of concatenation.
class MergeEquivalence
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint64_t>> {};

TEST_P(MergeEquivalence, AllAgree) {
  const auto [num_runs, per_run] = GetParam();
  hwstar::Xoshiro256 rng(num_runs * 31 + per_run);
  std::vector<std::vector<uint64_t>> runs(num_runs);
  std::vector<uint64_t> all;
  for (auto& run : runs) {
    const uint64_t len = rng.NextBounded(per_run + 1);
    run.resize(len);
    for (auto& x : run) x = rng.NextBounded(1 << 20);
    std::sort(run.begin(), run.end());
    all.insert(all.end(), run.begin(), run.end());
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(MergeSortedRuns(runs), all);
  EXPECT_EQ(MergeSortedRunsLinear(runs), all);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MergeEquivalence,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 8u, 17u, 64u),
                       ::testing::Values(0u, 1u, 100u, 5000u)));

}  // namespace
}  // namespace hwstar::ops
