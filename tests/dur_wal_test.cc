#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "hwstar/dur/checkpoint.h"
#include "hwstar/dur/durable_kv_store.h"
#include "hwstar/dur/fault_injection.h"
#include "hwstar/dur/file_backend.h"
#include "hwstar/dur/log_writer.h"
#include "hwstar/dur/recovery.h"
#include "hwstar/dur/wal_format.h"

namespace hwstar::dur {
namespace {

WalRecord Put(uint64_t lsn, uint64_t key, uint64_t value) {
  WalRecord r;
  r.type = WalRecordType::kPut;
  r.lsn = lsn;
  r.key = key;
  r.value = value;
  return r;
}

WalRecord Del(uint64_t lsn, uint64_t key) {
  WalRecord r;
  r.type = WalRecordType::kDelete;
  r.lsn = lsn;
  r.key = key;
  return r;
}

TEST(WalFormatTest, RoundTrip) {
  std::string buf;
  EncodeWalRecord(Put(1, 42, 420), &buf);
  EncodeWalRecord(Del(2, 42), &buf);
  EncodeWalRecord(Put(3, ~uint64_t{0}, 0), &buf);

  const WalDecodeResult decoded = DecodeWalBuffer(buf.data(), buf.size());
  EXPECT_TRUE(decoded.clean);
  EXPECT_EQ(decoded.valid_bytes, buf.size());
  ASSERT_EQ(decoded.records.size(), 3u);
  EXPECT_EQ(decoded.records[0], Put(1, 42, 420));
  EXPECT_EQ(decoded.records[1], Del(2, 42));
  EXPECT_EQ(decoded.records[2], Put(3, ~uint64_t{0}, 0));
}

TEST(WalFormatTest, TxnRecordTypesRoundTrip) {
  auto txn_record = [](WalRecordType type, uint64_t lsn, uint64_t tid,
                       uint64_t key, uint64_t value) {
    WalRecord r;
    r.type = type;
    r.lsn = lsn;
    r.txn = tid;
    r.key = key;
    r.value = value;
    return r;
  };
  const std::vector<WalRecord> records = {
      txn_record(WalRecordType::kTxnBegin, 1, 99, 0, /*frags=*/2),
      txn_record(WalRecordType::kTxnPut, 2, 99, 7, 70),
      txn_record(WalRecordType::kTxnDelete, 3, 99, ~uint64_t{0}, 0),
      txn_record(WalRecordType::kTxnCommit, 4, 99, 0, /*total=*/2),
      Put(5, 1, 10),  // plain records interleave freely
  };
  std::string buf;
  for (const WalRecord& r : records) EncodeWalRecord(r, &buf);

  const WalDecodeResult decoded = DecodeWalBuffer(buf.data(), buf.size());
  EXPECT_TRUE(decoded.clean);
  EXPECT_EQ(decoded.valid_bytes, buf.size());
  ASSERT_EQ(decoded.records.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(decoded.records[i], records[i]) << "record " << i;
  }
  EXPECT_TRUE(IsTxnFragment(WalRecordType::kTxnPut));
  EXPECT_TRUE(IsTxnFragment(WalRecordType::kTxnDelete));
  EXPECT_FALSE(IsTxnFragment(WalRecordType::kTxnBegin));
  EXPECT_FALSE(IsTxnFragment(WalRecordType::kTxnCommit));
  EXPECT_FALSE(IsTxnFragment(WalRecordType::kPut));
}

TEST(WalFormatTest, TornTailStopsCleanPrefix) {
  std::string buf;
  EncodeWalRecord(Put(1, 1, 10), &buf);
  const size_t first = buf.size();
  EncodeWalRecord(Put(2, 2, 20), &buf);

  // Every truncation point inside the second record must yield exactly the
  // first record and a dirty tail.
  for (size_t cut = first; cut < buf.size(); ++cut) {
    const WalDecodeResult d = DecodeWalBuffer(buf.data(), cut);
    EXPECT_EQ(d.records.size(), 1u);
    EXPECT_EQ(d.valid_bytes, first);
    if (cut == first) {
      EXPECT_TRUE(d.clean);
    } else {
      EXPECT_FALSE(d.clean);
    }
  }
}

TEST(WalFormatTest, BitFlipDetected) {
  std::string clean;
  EncodeWalRecord(Put(1, 7, 70), &clean);
  EncodeWalRecord(Put(2, 8, 80), &clean);
  for (size_t byte = 0; byte < clean.size(); ++byte) {
    std::string buf = clean;
    buf[byte] = static_cast<char>(buf[byte] ^ 0x10);
    const WalDecodeResult d = DecodeWalBuffer(buf.data(), buf.size());
    // Whichever record the flip hit fails its CRC; nothing past it decodes.
    EXPECT_FALSE(d.clean) << "flip at byte " << byte;
    EXPECT_LT(d.records.size(), 2u);
  }
}

TEST(WalFormatTest, EmptyBufferIsClean) {
  const WalDecodeResult d = DecodeWalBuffer(nullptr, 0);
  EXPECT_TRUE(d.clean);
  EXPECT_TRUE(d.records.empty());
}

TEST(InMemoryBackendTest, DurableBoundary) {
  InMemoryFileBackend fs;
  auto file = fs.OpenForAppend("f");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->Append("aaaa", 4).ok());
  ASSERT_TRUE(file.value()->Sync(SyncMode::kFdatasync).ok());
  ASSERT_TRUE(file.value()->Append("bbbb", 4).ok());

  // Crash: the synced prefix must survive; the unsynced suffix may not.
  fs.SimulateCrash(/*seed=*/7, /*flip_bit=*/false);
  auto data = fs.ReadFile("f");
  ASSERT_TRUE(data.ok());
  ASSERT_GE(data.value().size(), 4u);
  EXPECT_EQ(data.value().substr(0, 4), "aaaa");
}

TEST(InMemoryBackendTest, RenameIsAtomicInstall) {
  InMemoryFileBackend fs;
  auto file = fs.OpenForAppend("f.tmp");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->Append("xyz", 3).ok());
  ASSERT_TRUE(fs.Rename("f.tmp", "f").ok());
  EXPECT_FALSE(fs.Exists("f.tmp"));
  EXPECT_EQ(fs.ReadFile("f").value(), "xyz");
  EXPECT_EQ(fs.Rename("missing", "f").code(), StatusCode::kIoError);
}

TEST(LogWriterTest, SegmentNameRoundTrip) {
  const std::string name = LogWriter::SegmentName("dir/db-wal0", 42);
  EXPECT_EQ(name, "dir/db-wal0-000042.wal");
  uint32_t index = 0;
  ASSERT_TRUE(LogWriter::ParseSegmentIndex(name, &index));
  EXPECT_EQ(index, 42u);
  EXPECT_FALSE(LogWriter::ParseSegmentIndex("dir/db-ckpt", &index));
  EXPECT_FALSE(LogWriter::ParseSegmentIndex("x-12345.wal", &index));
}

TEST(LogWriterTest, PerOpModeWritesDenseLog) {
  InMemoryFileBackend fs;
  LogWriterOptions opts;
  opts.group_commit = false;
  auto writer = LogWriter::Open(&fs, "log", opts, /*next_lsn=*/1,
                                /*next_segment=*/0);
  ASSERT_TRUE(writer.ok());
  for (uint64_t i = 1; i <= 10; ++i) {
    auto lsn = writer.value()->AppendDurable(Put(0, i, i * 10));
    ASSERT_TRUE(lsn.ok());
    EXPECT_EQ(lsn.value(), i);
  }
  EXPECT_EQ(writer.value()->durable_lsn(), 10u);
  EXPECT_EQ(writer.value()->stats().groups, 10u);  // one sync per record

  auto data = fs.ReadFile(LogWriter::SegmentName("log", 0));
  ASSERT_TRUE(data.ok());
  const WalDecodeResult d = DecodeWalBuffer(data.value().data(),
                                            data.value().size());
  EXPECT_TRUE(d.clean);
  ASSERT_EQ(d.records.size(), 10u);
  for (uint64_t i = 0; i < 10; ++i) EXPECT_EQ(d.records[i].lsn, i + 1);
}

TEST(LogWriterTest, GroupCommitConcurrentWriters) {
  InMemoryFileBackend fs;
  LogWriterOptions opts;
  opts.fsync_interval_us = 50;
  auto writer = LogWriter::Open(&fs, "log", opts, 1, 0);
  ASSERT_TRUE(writer.ok());

  constexpr uint32_t kThreads = 8;
  constexpr uint64_t kPerThread = 200;
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        auto lsn = writer.value()->AppendDurable(
            Put(0, (static_cast<uint64_t>(t) << 32) | i, i));
        if (!lsn.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0u);

  constexpr uint64_t kTotal = kThreads * kPerThread;
  EXPECT_EQ(writer.value()->last_lsn(), kTotal);
  EXPECT_EQ(writer.value()->durable_lsn(), kTotal);

  // The point of the exercise: far fewer syncs than records.
  const LogWriterStats stats = writer.value()->stats();
  EXPECT_EQ(stats.records, kTotal);
  EXPECT_LT(stats.groups, kTotal);

  // The log decodes clean and dense.
  auto data = fs.ReadFile(LogWriter::SegmentName("log", 0));
  ASSERT_TRUE(data.ok());
  const WalDecodeResult d = DecodeWalBuffer(data.value().data(),
                                            data.value().size());
  EXPECT_TRUE(d.clean);
  ASSERT_EQ(d.records.size(), kTotal);
  for (uint64_t i = 0; i < kTotal; ++i) EXPECT_EQ(d.records[i].lsn, i + 1);
}

TEST(LogWriterTest, RotateAndTruncate) {
  InMemoryFileBackend fs;
  auto writer = LogWriter::Open(&fs, "log", LogWriterOptions(), 1, 0);
  ASSERT_TRUE(writer.ok());

  ASSERT_TRUE(writer.value()->AppendDurable(Put(0, 1, 1)).ok());
  ASSERT_TRUE(writer.value()->AppendDurable(Put(0, 2, 2)).ok());
  ASSERT_TRUE(writer.value()->Rotate().ok());  // seals segment 0 (lsn 1-2)
  ASSERT_TRUE(writer.value()->AppendDurable(Put(0, 3, 3)).ok());
  ASSERT_TRUE(writer.value()->Rotate().ok());  // seals segment 1 (lsn 3)
  ASSERT_TRUE(writer.value()->AppendDurable(Put(0, 4, 4)).ok());

  EXPECT_TRUE(fs.Exists(LogWriter::SegmentName("log", 0)));
  EXPECT_TRUE(fs.Exists(LogWriter::SegmentName("log", 1)));
  EXPECT_TRUE(fs.Exists(LogWriter::SegmentName("log", 2)));

  // Truncating through lsn 2 removes only the first sealed segment.
  ASSERT_TRUE(writer.value()->TruncateThrough(2).ok());
  EXPECT_FALSE(fs.Exists(LogWriter::SegmentName("log", 0)));
  EXPECT_TRUE(fs.Exists(LogWriter::SegmentName("log", 1)));
  EXPECT_EQ(writer.value()->stats().rotations, 2u);
  EXPECT_EQ(writer.value()->stats().truncated_segments, 1u);
}

// Regression: Rotate() must make forward progress while writers keep the
// staging buffer busy (it seals at a captured cut instead of waiting for
// the buffer to drain, which under sustained load may never happen). The
// concatenated segments must still hold one dense, clean LSN sequence.
TEST(LogWriterTest, RotateMakesProgressUnderSustainedAppends) {
  InMemoryFileBackend fs;
  LogWriterOptions opts;
  opts.fsync_interval_us = 20;
  auto writer = LogWriter::Open(&fs, "log", opts, 1, 0);
  ASSERT_TRUE(writer.ok());

  constexpr uint32_t kThreads = 4;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 0; !stop.load(); ++i) {
        const uint64_t key = (static_cast<uint64_t>(t) << 32) | i;
        if (!writer.value()->AppendDurable(Put(0, key, i)).ok()) {
          failures.fetch_add(1);
          break;
        }
      }
    });
  }
  constexpr uint64_t kRotations = 8;
  for (uint64_t r = 0; r < kRotations; ++r) {
    ASSERT_TRUE(writer.value()->Rotate().ok());
  }
  stop.store(true);
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(writer.value()->stats().rotations, kRotations);

  const uint64_t total = writer.value()->last_lsn();
  EXPECT_EQ(writer.value()->durable_lsn(), total);

  // Replaying the segments in order yields LSNs 1..total with no gaps.
  uint64_t next = 1;
  for (uint32_t seg = 0; fs.Exists(LogWriter::SegmentName("log", seg));
       ++seg) {
    auto data = fs.ReadFile(LogWriter::SegmentName("log", seg));
    ASSERT_TRUE(data.ok());
    const WalDecodeResult d =
        DecodeWalBuffer(data.value().data(), data.value().size());
    EXPECT_TRUE(d.clean) << "segment " << seg;
    for (const WalRecord& rec : d.records) {
      ASSERT_EQ(rec.lsn, next) << "segment " << seg;
      ++next;
    }
  }
  EXPECT_EQ(next, total + 1);
}

TEST(CheckpointTest, RoundTrip) {
  InMemoryFileBackend fs;
  CheckpointData data;
  data.marks = {17, 0, 5};
  data.entries = {{1, 10}, {2, 20}, {3, 30}};
  ASSERT_TRUE(WriteCheckpoint(&fs, "db", data).ok());
  EXPECT_FALSE(fs.Exists("db-ckpt.tmp"));  // tmp renamed away

  auto loaded = ReadCheckpoint(&fs, "db");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().marks, data.marks);
  EXPECT_EQ(loaded.value().entries, data.entries);
}

TEST(CheckpointTest, MissingIsNotFound) {
  InMemoryFileBackend fs;
  EXPECT_EQ(ReadCheckpoint(&fs, "db").status().code(), StatusCode::kNotFound);
}

TEST(CheckpointTest, CorruptionIsIoError) {
  InMemoryFileBackend fs;
  CheckpointData data;
  data.marks = {3};
  data.entries = {{1, 10}};
  ASSERT_TRUE(WriteCheckpoint(&fs, "db", data).ok());

  std::string raw = fs.ReadFile("db-ckpt").value();
  for (size_t byte : {size_t{0}, raw.size() / 2, raw.size() - 1}) {
    InMemoryFileBackend broken;
    std::string mangled = raw;
    mangled[byte] = static_cast<char>(mangled[byte] ^ 0x40);
    auto file = broken.OpenForAppend("db-ckpt");
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file.value()->Append(mangled.data(), mangled.size()).ok());
    EXPECT_EQ(ReadCheckpoint(&broken, "db").status().code(),
              StatusCode::kIoError)
        << "flip at byte " << byte;
  }
}

DurableKvOptions SmallDurableOptions(uint32_t log_shards = 1) {
  DurableKvOptions o;
  o.log_shards = log_shards;
  o.log.fsync_interval_us = 10;
  return o;
}

std::vector<std::pair<uint64_t, uint64_t>> Contents(kv::KvStore* store) {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  store->RangeScanEntries(0, ~uint64_t{0}, &out);
  return out;
}

TEST(DurableKvStoreTest, ReopenRecoversPutsAndTombstones) {
  InMemoryFileBackend fs;
  {
    auto db = DurableKvStore::Open(&fs, "db", SmallDurableOptions());
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(db.value()->Put(1, 10).ok());
    ASSERT_TRUE(db.value()->Put(2, 20).ok());
    ASSERT_TRUE(db.value()->Put(1, 11).ok());  // overwrite
    bool erased = false;
    ASSERT_TRUE(db.value()->Delete(2, &erased).ok());
    EXPECT_TRUE(erased);
    ASSERT_TRUE(db.value()->Delete(99, &erased).ok());  // no-op tombstone
    EXPECT_FALSE(erased);
  }

  RecoveryInfo info;
  auto db = DurableKvStore::Open(&fs, "db", SmallDurableOptions(), &info);
  ASSERT_TRUE(db.ok());
  EXPECT_FALSE(info.checkpoint_loaded);
  EXPECT_EQ(info.records_applied, 5u);
  EXPECT_EQ(Contents(db.value()->kv()),
            (std::vector<std::pair<uint64_t, uint64_t>>{{1, 11}}));
  // LSNs continue after the replayed tail (dense across restarts).
  ASSERT_TRUE(db.value()->Put(3, 30).ok());
  EXPECT_EQ(db.value()->log(0)->last_lsn(), 6u);
}

TEST(DurableKvStoreTest, PutBatchIsDurableAndOrdered) {
  InMemoryFileBackend fs;
  auto db = DurableKvStore::Open(&fs, "db", SmallDurableOptions(2));
  ASSERT_TRUE(db.ok());

  // Includes a same-key pair: later index must win (submission order).
  const std::vector<uint64_t> keys = {5, 5, 1, ~uint64_t{0}, 9};
  const std::vector<uint64_t> values = {50, 51, 10, 77, 90};
  uint64_t wal_wait = 0;
  ASSERT_TRUE(
      db.value()->PutBatch(keys.data(), values.data(), keys.size(), &wal_wait)
          .ok());
  EXPECT_EQ(db.value()->kv()->Get(5).value(), 51u);
  EXPECT_EQ(db.value()->kv()->Get(~uint64_t{0}).value(), 77u);
  EXPECT_EQ(db.value()->kv()->size(), 4u);

  // Reopen: the batch survives.
  db = DurableKvStore::Open(&fs, "db", SmallDurableOptions(2));
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db.value()->kv()->Get(5).value(), 51u);
  EXPECT_EQ(db.value()->kv()->size(), 4u);
}

TEST(DurableKvStoreTest, CheckpointTruncatesLogAndReopens) {
  InMemoryFileBackend fs;
  auto db = DurableKvStore::Open(&fs, "db", SmallDurableOptions());
  ASSERT_TRUE(db.ok());
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(db.value()->Put(i, i * 2).ok());
  }
  ASSERT_TRUE(db.value()->Checkpoint().ok());
  EXPECT_EQ(db.value()->log_stats().truncated_segments, 1u);
  // Post-checkpoint mutations live only in the new segment.
  ASSERT_TRUE(db.value()->Delete(0).ok());
  ASSERT_TRUE(db.value()->Put(200, 400).ok());

  RecoveryInfo info;
  db = DurableKvStore::Open(&fs, "db", SmallDurableOptions(), &info);
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE(info.checkpoint_loaded);
  EXPECT_EQ(info.checkpoint_entries, 100u);
  EXPECT_EQ(info.records_applied, 2u);  // just the post-checkpoint tail
  EXPECT_EQ(db.value()->kv()->size(), 100u);  // 100 - deleted + added
  EXPECT_EQ(db.value()->kv()->Get(0).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(db.value()->kv()->Get(200).value(), 400u);
}

TEST(DurableKvStoreTest, IoErrorPoisonsInsteadOfAborting) {
  FaultPlan plan;
  plan.fail_after_writes = 6;
  plan.mode = FaultMode::kDropWrite;
  FaultyFileBackend fs(plan);
  auto db = DurableKvStore::Open(&fs, "db", SmallDurableOptions());
  ASSERT_TRUE(db.ok());

  // Hammer until the injected fault fires; after that every durable
  // mutation must keep returning kIoError (poisoned, not aborted).
  Status first = Status::OK();
  for (uint64_t i = 0; i < 100 && first.ok(); ++i) {
    first = db.value()->Put(i, i);
  }
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.code(), StatusCode::kIoError);
  EXPECT_EQ(db.value()->Put(1000, 1).code(), StatusCode::kIoError);
  bool erased = false;
  EXPECT_EQ(db.value()->Delete(0, &erased).code(), StatusCode::kIoError);
  EXPECT_EQ(db.value()->Checkpoint().code(), StatusCode::kIoError);
}

TEST(RecoveryTest, TornTailStopsReplayCleanly) {
  InMemoryFileBackend fs;
  // Hand-build shard 0's first segment: three records, then half a record.
  std::string buf;
  EncodeWalRecord(Put(1, 1, 10), &buf);
  EncodeWalRecord(Put(2, 2, 20), &buf);
  EncodeWalRecord(Del(3, 1), &buf);
  std::string torn;
  EncodeWalRecord(Put(4, 4, 40), &torn);
  buf.append(torn.substr(0, torn.size() / 2));

  auto file = fs.OpenForAppend(
      LogWriter::SegmentName(ShardLogPrefix("db", 0), 0));
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->Append(buf.data(), buf.size()).ok());

  kv::KvStore store;
  auto info = Recover(&fs, "db", /*log_shards=*/1, &store);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().records_applied, 3u);
  EXPECT_EQ(info.value().torn_shards, 1u);
  EXPECT_EQ(info.value().next_lsn[0], 4u);  // lsn 4 was lost, gets reused
  EXPECT_EQ(info.value().next_segment[0], 1u);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.Get(2).value(), 20u);
}

TEST(RecoveryTest, GapInLsnSequenceStopsReplay) {
  InMemoryFileBackend fs;
  std::string buf;
  EncodeWalRecord(Put(1, 1, 10), &buf);
  EncodeWalRecord(Put(3, 3, 30), &buf);  // lsn 2 missing: a hole, not a tail
  auto file = fs.OpenForAppend(
      LogWriter::SegmentName(ShardLogPrefix("db", 0), 0));
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->Append(buf.data(), buf.size()).ok());

  kv::KvStore store;
  auto info = Recover(&fs, "db", 1, &store);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().records_applied, 1u);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_FALSE(store.Get(3).ok());
}

TEST(RecoveryTest, ReplayResumesAcrossSegmentsAfterTornTail) {
  InMemoryFileBackend fs;
  const std::string shard_prefix = ShardLogPrefix("db", 0);
  // Segment 0: lsn 1 intact, then a torn lsn 2 — the shape left by a
  // crash. Segment 1: the reopened writer reused lsn 2.
  std::string seg0;
  EncodeWalRecord(Put(1, 1, 10), &seg0);
  std::string torn;
  EncodeWalRecord(Put(2, 2, 99), &torn);
  seg0.append(torn.substr(0, torn.size() - 3));
  std::string seg1;
  EncodeWalRecord(Put(2, 2, 20), &seg1);
  EncodeWalRecord(Put(3, 3, 30), &seg1);

  auto f0 = fs.OpenForAppend(LogWriter::SegmentName(shard_prefix, 0));
  ASSERT_TRUE(f0.ok());
  ASSERT_TRUE(f0.value()->Append(seg0.data(), seg0.size()).ok());
  auto f1 = fs.OpenForAppend(LogWriter::SegmentName(shard_prefix, 1));
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f1.value()->Append(seg1.data(), seg1.size()).ok());

  kv::KvStore store;
  auto info = Recover(&fs, "db", 1, &store);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().records_applied, 3u);
  EXPECT_EQ(info.value().next_lsn[0], 4u);
  EXPECT_EQ(info.value().next_segment[0], 2u);
  EXPECT_EQ(store.Get(2).value(), 20u);  // the reused lsn's value wins
  EXPECT_EQ(store.Get(3).value(), 30u);
}

}  // namespace
}  // namespace hwstar::dur
