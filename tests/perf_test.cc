#include <gtest/gtest.h>

#include "hwstar/perf/counters.h"
#include "hwstar/perf/harness.h"
#include "hwstar/perf/report.h"

namespace hwstar::perf {
namespace {

TEST(CounterSetTest, SetAddGet) {
  CounterSet c;
  c.Set("time", 1.5);
  c.Add("time", 0.5);
  EXPECT_DOUBLE_EQ(c.Get("time"), 2.0);
  EXPECT_DOUBLE_EQ(c.Get("missing"), 0.0);
  EXPECT_TRUE(c.Has("time"));
  EXPECT_FALSE(c.Has("missing"));
}

TEST(CounterSetTest, MergeSums) {
  CounterSet a, b;
  a.Set("x", 1);
  b.Set("x", 2);
  b.Set("y", 3);
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.Get("x"), 3.0);
  EXPECT_DOUBLE_EQ(a.Get("y"), 3.0);
}

TEST(DerivedMetricsTest, Formulas) {
  EXPECT_DOUBLE_EQ(TuplesPerSecond(1000, 2.0), 500.0);
  EXPECT_DOUBLE_EQ(TuplesPerSecond(1000, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(BytesPerSecond(4096, 2.0), 2048.0);
  EXPECT_DOUBLE_EQ(NanosPerTuple(1.0, 1000000000), 1.0);
  EXPECT_DOUBLE_EQ(NanosPerTuple(1.0, 0), 0.0);
}

TEST(ReportTableTest, RendersAlignedColumns) {
  ReportTable table("demo", {"name", "value"});
  table.AddRow({"short", "1"});
  table.AddRow({"a-much-longer-name", "123456"});
  std::string s = table.ToString();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("a-much-longer-name"), std::string::npos);
  EXPECT_NE(s.find("123456"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(ReportTableTest, NumFormatting) {
  EXPECT_EQ(ReportTable::Num(uint64_t{42}), "42");
  EXPECT_EQ(ReportTable::Num(0.0), "0");
  EXPECT_EQ(ReportTable::Num(1.5), "1.500");
  EXPECT_EQ(ReportTable::Num(123456.7), "123457");
}

TEST(ReportTableTest, CsvExport) {
  ReportTable table("csv", {"name", "value"});
  table.AddRow({"plain", "1"});
  table.AddRow({"with,comma", "2"});
  table.AddRow({"with\"quote", "3"});
  const std::string csv = table.ToCsv();
  EXPECT_EQ(csv,
            "name,value\n"
            "plain,1\n"
            "\"with,comma\",2\n"
            "\"with\"\"quote\",3\n");
}

TEST(MeasureRepeatedTest, OrderedStatistics) {
  int calls = 0;
  Measurement m = MeasureRepeated([&calls] { ++calls; }, 5, 2);
  EXPECT_EQ(calls, 7);  // 2 warmups + 5 measured
  EXPECT_EQ(m.repetitions, 5u);
  EXPECT_LE(m.min_seconds, m.median_seconds);
  EXPECT_LE(m.median_seconds, m.max_seconds);
}

TEST(ExperimentTest, CollectsRowsAndPrints) {
  Experiment exp("test-exp");
  CounterSet c;
  c.Set("seconds", 0.25);
  c.Set("mtps", 100);
  exp.AddRow("config-a", c);
  exp.AddRow("config-b", c);
  EXPECT_EQ(exp.rows().size(), 2u);
  EXPECT_EQ(exp.name(), "test-exp");
  // Printing must not crash and must include the configs.
  testing::internal::CaptureStdout();
  exp.PrintTable({"seconds", "mtps"});
  std::string out = testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("config-a"), std::string::npos);
  EXPECT_NE(out.find("0.250"), std::string::npos);
}

}  // namespace
}  // namespace hwstar::perf
