#include <gtest/gtest.h>

#include "hwstar/common/random.h"
#include "hwstar/storage/compression.h"

namespace hwstar::storage {
namespace {

TEST(DictTest, RoundTrip) {
  std::vector<int64_t> v = {5, 5, 9, 5, 9, 1};
  DictEncoded enc = DictEncode(v);
  EXPECT_EQ(enc.dictionary.size(), 3u);
  EXPECT_EQ(DictDecode(enc), v);
}

TEST(DictTest, FirstSeenCodeOrder) {
  DictEncoded enc = DictEncode({30, 10, 30, 20});
  EXPECT_EQ(enc.dictionary, (std::vector<int64_t>{30, 10, 20}));
  EXPECT_EQ(enc.codes, (std::vector<int32_t>{0, 1, 0, 2}));
}

TEST(DictTest, EmptyInput) {
  DictEncoded enc = DictEncode({});
  EXPECT_TRUE(enc.dictionary.empty());
  EXPECT_TRUE(DictDecode(enc).empty());
}

TEST(DictTest, LowCardinalityCompresses) {
  std::vector<int64_t> v(10000, 7);
  for (size_t i = 0; i < v.size(); i += 3) v[i] = 13;
  DictEncoded enc = DictEncode(v);
  EXPECT_LT(enc.EncodedBytes(), v.size() * sizeof(int64_t));
}

TEST(RleTest, RoundTrip) {
  std::vector<int64_t> v = {1, 1, 1, 2, 3, 3, 1};
  RleEncoded enc = RleEncode(v);
  EXPECT_EQ(enc.values, (std::vector<int64_t>{1, 2, 3, 1}));
  EXPECT_EQ(enc.lengths, (std::vector<uint32_t>{3, 1, 2, 1}));
  EXPECT_EQ(RleDecode(enc), v);
}

TEST(RleTest, EmptyAndSingle) {
  EXPECT_TRUE(RleDecode(RleEncode({})).empty());
  EXPECT_EQ(RleDecode(RleEncode({42})), (std::vector<int64_t>{42}));
}

TEST(RleTest, SumOnCompressed) {
  std::vector<int64_t> v = {4, 4, 4, -2, -2, 10};
  RleEncoded enc = RleEncode(v);
  int64_t expected = 0;
  for (int64_t x : v) expected += x;
  EXPECT_EQ(RleSum(enc), expected);
}

TEST(RleTest, LongRunsCompressWell) {
  std::vector<int64_t> v(100000, 5);
  RleEncoded enc = RleEncode(v);
  EXPECT_EQ(enc.values.size(), 1u);
  EXPECT_LT(enc.EncodedBytes(), 64u);
}

TEST(BitPackTest, RoundTripSmallWidth) {
  std::vector<int64_t> v = {0, 1, 2, 3, 7, 6, 5};
  auto enc = BitPack(v);
  ASSERT_TRUE(enc.ok());
  EXPECT_EQ(enc.value().bit_width, 3u);
  EXPECT_EQ(BitUnpack(enc.value()), v);
}

TEST(BitPackTest, AllZeros) {
  std::vector<int64_t> v(100, 0);
  auto enc = BitPack(v);
  ASSERT_TRUE(enc.ok());
  EXPECT_EQ(enc.value().bit_width, 0u);
  EXPECT_EQ(enc.value().EncodedBytes(), 0u);
  EXPECT_EQ(BitUnpack(enc.value()), v);
}

TEST(BitPackTest, RejectsNegative) {
  EXPECT_FALSE(BitPack({1, -1, 2}).ok());
}

TEST(BitPackTest, RandomAccess) {
  std::vector<int64_t> v;
  for (int i = 0; i < 1000; ++i) v.push_back(i % 77);
  auto enc = BitPack(v);
  ASSERT_TRUE(enc.ok());
  for (uint64_t i = 0; i < v.size(); i += 13) {
    EXPECT_EQ(BitPackedGet(enc.value(), i), v[i]);
  }
}

TEST(BitPackTest, CrossWordBoundaries) {
  // Width 7 guarantees values straddle 64-bit word boundaries.
  std::vector<int64_t> v;
  for (int i = 0; i < 200; ++i) v.push_back(i % 128);
  auto enc = BitPack(v);
  ASSERT_TRUE(enc.ok());
  EXPECT_EQ(enc.value().bit_width, 7u);
  EXPECT_EQ(BitUnpack(enc.value()), v);
}

TEST(BitPackTest, CompressionRatioMatchesWidth) {
  std::vector<int64_t> v(8192, 3);
  v[0] = 15;  // width 4
  auto enc = BitPack(v);
  ASSERT_TRUE(enc.ok());
  // 4 bits instead of 64: 16x smaller (plus one word of slack).
  EXPECT_LE(enc.value().EncodedBytes(), v.size() / 2 + 8);
}

TEST(DeltaTest, RoundTrip) {
  std::vector<int64_t> v = {100, 105, 103, 200, 199};
  DeltaEncoded enc = DeltaEncode(v);
  EXPECT_EQ(enc.first, 100);
  EXPECT_EQ(enc.deltas, (std::vector<int64_t>{5, -2, 97, -1}));
  EXPECT_EQ(DeltaDecode(enc), v);
}

TEST(DeltaTest, EmptyAndSingle) {
  EXPECT_TRUE(DeltaDecode(DeltaEncode({})).empty());
  EXPECT_EQ(DeltaDecode(DeltaEncode({9})), (std::vector<int64_t>{9}));
}

TEST(DeltaTest, SortedDataHasSmallDeltas) {
  std::vector<int64_t> v;
  for (int i = 0; i < 1000; ++i) v.push_back(1000000 + i * 3);
  DeltaEncoded enc = DeltaEncode(v);
  for (int64_t d : enc.deltas) EXPECT_EQ(d, 3);
  // Delta + bitpack: the classic sorted-key pipeline.
  auto packed = BitPack(enc.deltas);
  ASSERT_TRUE(packed.ok());
  EXPECT_EQ(packed.value().bit_width, 2u);
}

/// Property test: every scheme round-trips random data of every size.
class CompressionRoundTrip
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint64_t>> {};

TEST_P(CompressionRoundTrip, AllSchemes) {
  const auto [count, domain] = GetParam();
  hwstar::Xoshiro256 rng(count * 31 + domain);
  std::vector<int64_t> v(count);
  for (auto& x : v) {
    x = static_cast<int64_t>(rng.NextBounded(domain));
  }
  EXPECT_EQ(DictDecode(DictEncode(v)), v);
  EXPECT_EQ(RleDecode(RleEncode(v)), v);
  auto packed = BitPack(v);
  ASSERT_TRUE(packed.ok());
  EXPECT_EQ(BitUnpack(packed.value()), v);
  EXPECT_EQ(DeltaDecode(DeltaEncode(v)), v);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CompressionRoundTrip,
    ::testing::Combine(::testing::Values(1u, 2u, 63u, 64u, 65u, 1000u, 4096u),
                       ::testing::Values(1u, 2u, 16u, 1000u, 1u << 20)));

}  // namespace
}  // namespace hwstar::storage
