#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "hwstar/common/random.h"
#include "hwstar/hw/machine_model.h"
#include "hwstar/kv/kv_store.h"
#include "hwstar/ops/art.h"
#include "hwstar/ops/btree.h"
#include "hwstar/ops/hash_table.h"
#include "hwstar/sync/epoch.h"
#include "hwstar/sync/optlock.h"

namespace hwstar::sync {
namespace {

// ---------------------------------------------------------------------------
// OptLock protocol.
// ---------------------------------------------------------------------------

TEST(OptLockTest, FreshLockReadsCleanly) {
  OptLock lock;
  bool restart = false;
  const uint64_t v = lock.ReadLockOrRestart(&restart);
  EXPECT_FALSE(restart);
  EXPECT_FALSE(OptLock::IsLocked(v));
  EXPECT_FALSE(OptLock::IsObsolete(v));
  lock.CheckOrRestart(v, &restart);
  EXPECT_FALSE(restart);
}

TEST(OptLockTest, ReadRestartsWhileWriterHoldsLock) {
  OptLock lock;
  lock.WriteLock();
  bool restart = false;
  lock.ReadLockOrRestart(&restart);
  EXPECT_TRUE(restart);
  lock.WriteUnlock();
  restart = false;
  lock.ReadLockOrRestart(&restart);
  EXPECT_FALSE(restart);
}

TEST(OptLockTest, CheckDetectsInterleavedWriter) {
  OptLock lock;
  bool restart = false;
  const uint64_t v = lock.ReadLockOrRestart(&restart);
  lock.WriteLock();
  lock.WriteUnlock();
  lock.CheckOrRestart(v, &restart);
  EXPECT_TRUE(restart);
}

TEST(OptLockTest, WriteUnlockBumpsVersion) {
  OptLock lock;
  const uint64_t before = lock.Version();
  lock.WriteLock();
  EXPECT_TRUE(OptLock::IsLocked(lock.Version()));
  lock.WriteUnlock();
  const uint64_t after = lock.Version();
  EXPECT_FALSE(OptLock::IsLocked(after));
  EXPECT_NE(before, after);
}

TEST(OptLockTest, UpgradeSucceedsOnCleanVersionOnly) {
  OptLock lock;
  bool restart = false;
  const uint64_t v = lock.ReadLockOrRestart(&restart);
  ASSERT_FALSE(restart);
  EXPECT_TRUE(lock.UpgradeToWriteLock(v, &restart));
  EXPECT_FALSE(restart);
  lock.WriteUnlock();

  // A stale version must not upgrade.
  restart = false;
  EXPECT_FALSE(lock.UpgradeToWriteLock(v, &restart));
  EXPECT_TRUE(restart);
}

TEST(OptLockTest, ObsoleteForcesRestartForever) {
  OptLock lock;
  lock.WriteLock();
  lock.WriteUnlockObsolete();
  bool restart = false;
  const uint64_t v = lock.ReadLockOrRestart(&restart);
  EXPECT_TRUE(restart);
  EXPECT_TRUE(OptLock::IsObsolete(v));
  EXPECT_FALSE(OptLock::IsLocked(v));
}

// ---------------------------------------------------------------------------
// Epoch-based reclamation.
// ---------------------------------------------------------------------------

/// Retirable object whose destruction is observable.
struct Flagged {
  explicit Flagged(std::atomic<uint64_t>* c) : counter(c) {}
  ~Flagged() { counter->fetch_add(1); }
  std::atomic<uint64_t>* counter;
};

TEST(EpochTest, GuardPinsAndUnpins) {
  EpochManager mgr;
  EXPECT_FALSE(mgr.IsPinned());
  {
    EpochManager::Guard guard(mgr);
    EXPECT_TRUE(mgr.IsPinned());
    {
      EpochManager::Guard nested(mgr);  // nesting must be safe
      EXPECT_TRUE(mgr.IsPinned());
    }
    EXPECT_TRUE(mgr.IsPinned());
  }
  EXPECT_FALSE(mgr.IsPinned());
}

TEST(EpochTest, RetireDefersUntilQuiescent) {
  EpochManager mgr;
  std::atomic<uint64_t> freed{0};
  mgr.RetireObject(new Flagged(&freed));
  // Quiescent (nothing pinned): a full reclaim frees it.
  mgr.ReclaimAll();
  EXPECT_EQ(freed.load(), 1u);
  const auto stats = mgr.stats();
  EXPECT_EQ(stats.retired_outstanding, 0u);
  EXPECT_GE(stats.freed_total, 1u);
}

TEST(EpochTest, PinnedReaderBlocksReclamation) {
  EpochManager mgr;
  std::atomic<uint64_t> freed{0};
  std::atomic<bool> pinned{false};
  std::atomic<bool> release{false};
  std::thread reader([&] {
    EpochManager::Guard guard(mgr);
    pinned.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!pinned.load()) std::this_thread::yield();

  // The reader pinned an epoch <= the retire epoch, so nothing the
  // reader might still see may be freed.
  mgr.RetireObject(new Flagged(&freed));
  mgr.ReclaimAll();
  EXPECT_EQ(freed.load(), 0u);
  EXPECT_GE(mgr.stats().retired_outstanding, 1u);

  release.store(true);
  reader.join();
  mgr.ReclaimAll();
  EXPECT_EQ(freed.load(), 1u);
  EXPECT_EQ(mgr.stats().retired_outstanding, 0u);
}

TEST(EpochTest, StatsTrackBytesAndHighWaterMark) {
  EpochManager mgr;
  std::atomic<uint64_t> freed{0};
  for (int i = 0; i < 4; ++i) {
    mgr.Retire(
        new Flagged(&freed),
        [](void* p) {
          Flagged* f = static_cast<Flagged*>(p);
          delete f;
        },
        /*bytes=*/1000);
  }
  const auto mid = mgr.stats();
  EXPECT_GE(mid.retired_bytes, 4000u);
  EXPECT_GE(mid.retired_bytes_hwm, 4000u);
  mgr.ReclaimAll();
  EXPECT_EQ(freed.load(), 4u);
  const auto end = mgr.stats();
  EXPECT_EQ(end.retired_bytes, 0u);
  EXPECT_GE(end.retired_bytes_hwm, 4000u);  // HWM survives the frees
}

TEST(EpochTest, ThreadExitFlushesRetireesToOrphans) {
  EpochManager mgr;
  std::atomic<uint64_t> freed{0};
  std::thread t([&] {
    // Retire from a short-lived thread and exit without reclaiming; the
    // thread-exit hook must hand the list to the orphan pool.
    for (int i = 0; i < 10; ++i) mgr.RetireObject(new Flagged(&freed));
  });
  t.join();
  mgr.ReclaimAll();
  EXPECT_EQ(freed.load(), 10u);
  EXPECT_EQ(mgr.stats().retired_outstanding, 0u);
}

TEST(EpochTest, AdvanceSucceedsWithCurrentEpochPin) {
  EpochManager mgr;
  const uint64_t e0 = mgr.epoch();
  EXPECT_TRUE(mgr.TryAdvance());
  EXPECT_EQ(mgr.epoch(), e0 + 1);

  // A pin in the *current* epoch does not block the advance; the pinned
  // thread has by definition been observed there.
  EpochManager::Guard guard(mgr);
  EXPECT_TRUE(mgr.TryAdvance());
}

// Retire torture: writers retire continuously while every thread also
// pins; the retire lists must stay bounded (sweeps happen inline) and a
// final reclaim must free every last object. Run under ASan this is the
// use-after-free canary for the whole epoch machinery.
TEST(EpochTortureTest, BoundedRetireListsAndFullReclaim) {
  const uint32_t saved_interval = hw::DefaultEpochAdvanceInterval();
  const uint32_t saved_batch = hw::DefaultEpochRetireBatch();
  hw::SetDefaultEpochAdvanceInterval(8);
  hw::SetDefaultEpochRetireBatch(32);

  {
    EpochManager mgr;
    std::atomic<uint64_t> freed{0};
    constexpr int kThreads = 4;
    constexpr int kIters = 20000;
    std::atomic<uint64_t> max_outstanding{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < kIters; ++i) {
          EpochManager::Guard guard(mgr);
          mgr.RetireObject(new Flagged(&freed));
          if ((i & 1023) == 0) {
            const uint64_t out = mgr.stats().retired_outstanding;
            uint64_t seen = max_outstanding.load();
            while (out > seen &&
                   !max_outstanding.compare_exchange_weak(seen, out)) {
            }
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    mgr.ReclaimAll();
    EXPECT_EQ(freed.load(), uint64_t{kThreads} * kIters);
    EXPECT_EQ(mgr.stats().retired_outstanding, 0u);
    // Growth must be bounded by the sweep/advance cadence, nowhere near
    // the kThreads * kIters an unbounded list would reach.
    EXPECT_LT(max_outstanding.load(), 20000u);
    EXPECT_GT(mgr.stats().advances, 0u);
  }

  hw::SetDefaultEpochAdvanceInterval(saved_interval);
  hw::SetDefaultEpochRetireBatch(saved_batch);
}

// Use-after-retire canary on a raw published pointer: readers chase an
// atomic pointer under a pin while the writer swaps and retires it. The
// deleter scribbles, so a reclaim racing a pinned reader shows up as a
// torn invariant (and as a UAF under ASan).
TEST(EpochTortureTest, PublishedPointerSwapNeverTears) {
  struct Pair {
    std::atomic<uint64_t> a;
    std::atomic<uint64_t> b;  // invariant: b == ~a
  };
  EpochManager mgr;
  std::atomic<Pair*> shared{new Pair{{1}, {~uint64_t{1}}}};
  std::atomic<bool> stop{false};

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < 30000; ++i) {
        EpochManager::Guard guard(mgr);
        Pair* p = shared.load(std::memory_order_acquire);
        const uint64_t a = p->a.load(std::memory_order_relaxed);
        const uint64_t b = p->b.load(std::memory_order_relaxed);
        EXPECT_EQ(b, ~a);
      }
    });
  }
  std::thread writer([&] {
    uint64_t next = 2;
    while (!stop.load(std::memory_order_relaxed)) {
      Pair* fresh = new Pair{{next}, {~next}};
      Pair* old = shared.exchange(fresh, std::memory_order_acq_rel);
      mgr.Retire(
          old,
          [](void* p) {
            Pair* pair = static_cast<Pair*>(p);
            pair->a.store(0xdeadbeef, std::memory_order_relaxed);
            pair->b.store(0xdeadbeef, std::memory_order_relaxed);
            delete pair;
          },
          sizeof(Pair));
      ++next;
    }
  });
  for (auto& r : readers) r.join();
  stop.store(true);
  writer.join();
  delete shared.load();
  mgr.ReclaimAll();
  EXPECT_EQ(mgr.stats().retired_outstanding, 0u);
}

// ---------------------------------------------------------------------------
// Index stress: latch-free reads against a live writer.
// ---------------------------------------------------------------------------

constexpr uint64_t kValueMagic = 0x5bd1e995u;
uint64_t StressKey(uint64_t i) {
  // Mix dense low keys with sparse high ones so ART sees deep prefixes,
  // all four node kinds, and collapse-on-erase paths.
  uint64_t s = i;
  return (i & 1) ? i / 2 : SplitMix64(s);
}
uint64_t StressValue(uint64_t key) { return key ^ kValueMagic; }

TEST(ArtConcurrencyTest, FindBatchRacesWriterWithoutTearing) {
  EpochManager mgr;
  ops::AdaptiveRadixTree art;
  art.SetEpochManager(&mgr);
  constexpr uint64_t kKeys = 2048;
  for (uint64_t i = 0; i < kKeys; ++i) {
    art.Insert(StressKey(i), StressValue(StressKey(i)));
  }

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    // The single writer (KvStore's latch serializes writers; here there
    // is just one): toggle keys in and out, forcing node growth, prefix
    // splits, collapses, and epoch retirements under the readers' feet.
    Xoshiro256 rng(7);
    while (!stop.load(std::memory_order_relaxed)) {
      const uint64_t key = StressKey(rng.NextBounded(kKeys));
      if (rng.NextBounded(2) == 0) {
        art.Erase(key);
      } else {
        art.Insert(key, StressValue(key));
      }
    }
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      Xoshiro256 rng(100 + t);
      uint64_t batch[64];
      uint64_t values[64];
      bool found[64];
      for (int iter = 0; iter < 4000; ++iter) {
        {
          EpochManager::Guard guard(mgr);
          const uint64_t key = StressKey(rng.NextBounded(kKeys));
          uint64_t v = 0;
          if (art.Find(key, &v)) {
            EXPECT_EQ(v, StressValue(key));  // never a torn/stale value
          }
        }
        if ((iter & 15) == 0) {
          for (int j = 0; j < 64; ++j) {
            batch[j] = StressKey(rng.NextBounded(kKeys));
          }
          EpochManager::Guard guard(mgr);
          art.FindBatch(batch, 64, values, found);
          for (int j = 0; j < 64; ++j) {
            if (found[j]) {
              EXPECT_EQ(values[j], StressValue(batch[j]));
            } else {
              EXPECT_EQ(values[j], 0u);
            }
          }
        }
      }
    });
  }
  for (auto& r : readers) r.join();
  stop.store(true);
  writer.join();
  mgr.ReclaimAll();
  EXPECT_EQ(mgr.stats().retired_outstanding, 0u);
}

TEST(BtreeConcurrencyTest, FindBatchRacesWriterWithoutTearing) {
  ops::BPlusTree tree(/*fanout=*/16);  // small fanout -> frequent splits
  constexpr uint64_t kKeys = 2048;
  for (uint64_t i = 0; i < kKeys; ++i) {
    tree.Insert(StressKey(i), StressValue(StressKey(i)));
  }

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Xoshiro256 rng(7);
    while (!stop.load(std::memory_order_relaxed)) {
      const uint64_t key = StressKey(rng.NextBounded(kKeys));
      if (rng.NextBounded(3) == 0) {
        tree.Erase(key);
      } else {
        tree.Insert(key, StressValue(key));
      }
    }
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      Xoshiro256 rng(100 + t);
      uint64_t batch[64];
      uint64_t values[64];
      bool found[64];
      for (int iter = 0; iter < 4000; ++iter) {
        const uint64_t key = StressKey(rng.NextBounded(kKeys));
        uint64_t v = 0;
        if (tree.Find(key, &v)) {
          EXPECT_EQ(v, StressValue(key));
        }
        if ((iter & 15) == 0) {
          for (int j = 0; j < 64; ++j) {
            batch[j] = StressKey(rng.NextBounded(kKeys));
          }
          tree.FindBatch(batch, 64, values, found);
          for (int j = 0; j < 64; ++j) {
            if (found[j]) {
              EXPECT_EQ(values[j], StressValue(batch[j]));
            } else {
              EXPECT_EQ(values[j], 0u);
            }
          }
        }
      }
    });
  }
  for (auto& r : readers) r.join();
  stop.store(true);
  writer.join();
}

TEST(HashTableConcurrencyTest, LinearProbeReadersRaceTheBuilder) {
  constexpr uint64_t kN = 50000;
  ops::LinearProbeTable table(kN);
  std::atomic<uint64_t> published{0};
  std::thread writer([&] {
    for (uint64_t k = 1; k <= kN; ++k) {
      table.Insert(k, StressValue(k));
      published.store(k, std::memory_order_release);
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      Xoshiro256 rng(200 + t);
      uint64_t batch[32];
      uint64_t values[32];
      bool found[32];
      for (int iter = 0; iter < 4000; ++iter) {
        const uint64_t hi = published.load(std::memory_order_acquire);
        const uint64_t key = 1 + rng.NextBounded(kN);
        uint64_t v = 0;
        if (table.Find(key, &v)) {
          EXPECT_EQ(v, StressValue(key));
        } else {
          // Only not-yet-published keys may miss.
          EXPECT_GT(key, hi);
        }
        if ((iter & 15) == 0) {
          for (int j = 0; j < 32; ++j) batch[j] = 1 + rng.NextBounded(kN);
          table.FindBatch(batch, 32, values, found);
          for (int j = 0; j < 32; ++j) {
            if (found[j]) EXPECT_EQ(values[j], StressValue(batch[j]));
          }
        }
      }
    });
  }
  for (auto& r : readers) r.join();
  writer.join();
  EXPECT_EQ(table.size(), kN);
}

TEST(HashTableConcurrencyTest, ChainedReadersSurviveBlockGrowth) {
  EpochManager mgr;
  // Tiny bucket count: the node block starts small and must grow many
  // times while readers are mid-chain, exercising Resnapshot and the
  // epoch retirement of replaced blocks.
  ops::ChainedTable table(/*expected_buckets=*/8);
  table.SetEpochManager(&mgr);
  constexpr uint64_t kN = 20000;
  std::atomic<uint64_t> published{0};
  std::thread writer([&] {
    for (uint64_t k = 1; k <= kN; ++k) {
      table.Insert(k, StressValue(k));
      published.store(k, std::memory_order_release);
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      Xoshiro256 rng(300 + t);
      uint64_t batch[32];
      uint64_t values[32];
      bool found[32];
      for (int iter = 0; iter < 3000; ++iter) {
        EpochManager::Guard guard(mgr);
        const uint64_t hi = published.load(std::memory_order_acquire);
        const uint64_t key = 1 + rng.NextBounded(kN);
        uint64_t v = 0;
        if (table.Find(key, &v)) {
          EXPECT_EQ(v, StressValue(key));
        } else {
          EXPECT_GT(key, hi);
        }
        if ((iter & 15) == 0) {
          for (int j = 0; j < 32; ++j) batch[j] = 1 + rng.NextBounded(kN);
          table.FindBatch(batch, 32, values, found);
          for (int j = 0; j < 32; ++j) {
            if (found[j]) EXPECT_EQ(values[j], StressValue(batch[j]));
          }
        }
      }
    });
  }
  for (auto& r : readers) r.join();
  writer.join();
  EXPECT_EQ(table.size(), kN);
  mgr.ReclaimAll();
  EXPECT_EQ(mgr.stats().retired_outstanding, 0u);
}

// ---------------------------------------------------------------------------
// Bit-identity: the optimistic read path must return exactly what the
// latched baseline returns, interleaved with writes, for both tree
// indexes; and the batched hash-table kernels must match their scalar
// counterparts on the same (concurrently built) tables.
// ---------------------------------------------------------------------------

TEST(BitIdentityTest, LatchFreeKvMatchesLatchedKvUnderRandomOps) {
  for (const kv::IndexKind kind : {kv::IndexKind::kArt, kv::IndexKind::kBTree}) {
    kv::KvOptions optimistic;
    optimistic.index = kind;
    optimistic.shards = 4;
    optimistic.latch_free_reads = true;
    kv::KvOptions latched = optimistic;
    latched.latch_free_reads = false;

    kv::KvStore a(optimistic);
    kv::KvStore b(latched);
    Xoshiro256 rng(42);
    constexpr uint64_t kKeySpace = 4000;

    for (int step = 0; step < 20000; ++step) {
      const uint64_t key = rng.NextBounded(kKeySpace) << 50;  // span shards
      switch (rng.NextBounded(5)) {
        case 0:
        case 1: {
          const uint64_t value = rng.Next();
          a.Put(key, value);
          b.Put(key, value);
          break;
        }
        case 2: {
          EXPECT_EQ(a.Delete(key), b.Delete(key));
          break;
        }
        case 3: {
          auto ra = a.Get(key);
          auto rb = b.Get(key);
          ASSERT_EQ(ra.ok(), rb.ok());
          if (ra.ok()) ASSERT_EQ(ra.value(), rb.value());
          break;
        }
        default: {
          uint64_t keys[32];
          for (auto& k : keys) k = rng.NextBounded(kKeySpace) << 50;
          uint64_t va[32], vb[32];
          bool fa[32], fb[32];
          a.MultiGet(keys, 32, va, fa);
          b.MultiGet(keys, 32, vb, fb);
          for (int i = 0; i < 32; ++i) {
            ASSERT_EQ(fa[i], fb[i]);
            ASSERT_EQ(va[i], vb[i]);
          }
          break;
        }
      }
    }
    EXPECT_EQ(a.size(), b.size());
  }
}

TEST(BitIdentityTest, HashTableBatchKernelsMatchScalarProbes) {
  Xoshiro256 rng(9);
  constexpr uint64_t kN = 30000;
  ops::LinearProbeTable lpt(kN);
  ops::ChainedTable chained(kN);
  for (uint64_t i = 0; i < kN; ++i) {
    const uint64_t key = rng.NextBounded(kN);  // duplicates on purpose
    lpt.Insert(key, StressValue(key));
    chained.Insert(key, StressValue(key));
  }
  std::vector<uint64_t> probes(4096);
  for (auto& p : probes) p = rng.NextBounded(2 * kN);

  std::vector<uint64_t> batch_values(probes.size());
  std::unique_ptr<bool[]> batch_found(new bool[probes.size()]);
  lpt.FindBatch(probes.data(), probes.size(), batch_values.data(),
                batch_found.get());
  for (size_t i = 0; i < probes.size(); ++i) {
    uint64_t v = 0;
    const bool hit = lpt.Find(probes[i], &v);
    ASSERT_EQ(batch_found[i], hit);
    ASSERT_EQ(batch_values[i], hit ? v : 0u);
  }

  chained.FindBatch(probes.data(), probes.size(), batch_values.data(),
                    batch_found.get());
  uint64_t scalar_matches = 0, batch_matches = 0;
  for (size_t i = 0; i < probes.size(); ++i) {
    uint64_t v = 0;
    const bool hit = chained.Find(probes[i], &v);
    ASSERT_EQ(batch_found[i], hit);
    ASSERT_EQ(batch_values[i], hit ? v : 0u);
    scalar_matches += chained.CountMatches(probes[i]);
  }
  batch_matches = chained.ProbeBatch(probes.data(), probes.size(),
                                     [](size_t, uint64_t) {});
  EXPECT_EQ(batch_matches, scalar_matches);
}

}  // namespace
}  // namespace hwstar::sync
