// Analytical property tests: the simulated hardware must reproduce the
// closed-form behaviours that make it a trustworthy substitute for PMCs.

#include <gtest/gtest.h>

#include "hwstar/hw/machine_model.h"
#include "hwstar/sim/cache_sim.h"
#include "hwstar/sim/hierarchy.h"

namespace hwstar::sim {
namespace {

/// Sequential scan with stride s over a cold cache must miss exactly once
/// per touched line: miss ratio = min(1, s/line).
class StrideMissRatio : public ::testing::TestWithParam<uint32_t> {};

TEST_P(StrideMissRatio, MatchesClosedForm) {
  const uint32_t stride = GetParam();
  hw::CacheLevelSpec spec;
  spec.size_bytes = 32 * 1024;
  spec.line_bytes = 64;
  spec.associativity = 8;
  CacheLevel cache(spec);
  // One pass over 16MB (much larger than the cache): pure cold/capacity
  // misses, no reuse.
  const uint64_t bytes = 16 << 20;
  for (uint64_t a = 0; a < bytes; a += stride) {
    cache.Access(a, false);
  }
  const double expected =
      stride >= 64 ? 1.0 : static_cast<double>(stride) / 64.0;
  EXPECT_NEAR(cache.stats().miss_ratio(), expected, 0.01) << stride;
}

INSTANTIATE_TEST_SUITE_P(Strides, StrideMissRatio,
                         ::testing::Values(8u, 16u, 32u, 64u, 128u, 256u));

/// A working set of W bytes looped repeatedly hits entirely once W <= C
/// and thrashes (miss ratio 1 under LRU) once W > C, for round-robin
/// sweeps: the capacity cliff in its sharpest form.
class WorkingSetCliff : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WorkingSetCliff, LruSweepIsAllOrNothing) {
  const uint64_t ws_bytes = GetParam();
  hw::CacheLevelSpec spec;
  spec.size_bytes = 64 * 1024;
  spec.line_bytes = 64;
  spec.associativity = 16;  // high associativity: conflict-free
  CacheLevel cache(spec);
  // Warmup pass.
  for (uint64_t a = 0; a < ws_bytes; a += 64) cache.Access(a, false);
  cache.ResetStats();
  for (int rep = 0; rep < 4; ++rep) {
    for (uint64_t a = 0; a < ws_bytes; a += 64) cache.Access(a, false);
  }
  if (ws_bytes <= spec.size_bytes) {
    EXPECT_EQ(cache.stats().misses, 0u) << ws_bytes;
  } else {
    EXPECT_GT(cache.stats().miss_ratio(), 0.99) << ws_bytes;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, WorkingSetCliff,
                         ::testing::Values(16u * 1024, 32u * 1024, 64u * 1024,
                                           128u * 1024, 512u * 1024));

TEST(HierarchyProperty, LatencyMonotoneInDepth) {
  // Warm L1 < warm L2 < warm L3 < DRAM, by construction of the walk.
  hw::MachineModel m = hw::MachineModel::Server2013();
  MemoryHierarchy::Options opts;
  opts.enable_prefetcher = false;
  opts.enable_tlb = false;
  MemoryHierarchy hier(m, opts);

  const uint32_t dram = hier.Access(0);           // cold: full path
  const uint32_t l1 = hier.Access(0);             // L1 warm
  // Evict from L1 only: touch > L1-capacity distinct lines that keep L2.
  for (uint64_t a = 64; a < 64 * 1024; a += 64) hier.Access(a);
  const uint32_t l2 = hier.Access(0);             // L1 miss, L2 hit
  EXPECT_LT(l1, l2);
  EXPECT_LT(l2, dram);
  EXPECT_EQ(l1, m.caches[0].hit_latency_cycles);
}

TEST(HierarchyProperty, EnergyConservation) {
  // Every access is attributed to exactly one service level.
  hw::MachineModel m = hw::MachineModel::Desktop();
  MemoryHierarchy::Options opts;
  opts.enable_prefetcher = false;
  MemoryHierarchy hier(m, opts);
  uint64_t x = 9;
  for (int i = 0; i < 20000; ++i) {
    x = x * 6364136223846793005ULL + 1;
    hier.Access((x >> 24) % (4 << 20));
  }
  auto st = hier.Stats();
  const uint64_t attributed = st.energy_events.l1_hits +
                              st.energy_events.l2_hits +
                              st.energy_events.l3_hits +
                              st.energy_events.dram_accesses;
  EXPECT_EQ(attributed, st.accesses);
}

TEST(HierarchyProperty, InclusiveMissCountsConsistent) {
  // L2 accesses == L1 misses; L3 accesses == L2 misses (demand path,
  // prefetcher off).
  hw::MachineModel m = hw::MachineModel::Server2013();
  MemoryHierarchy::Options opts;
  opts.enable_prefetcher = false;
  MemoryHierarchy hier(m, opts);
  uint64_t x = 77;
  for (int i = 0; i < 50000; ++i) {
    x = x * 6364136223846793005ULL + 1;
    hier.Access((x >> 20) % (64 << 20));
  }
  auto st = hier.Stats();
  EXPECT_EQ(st.levels[1].hits + st.levels[1].misses, st.levels[0].misses);
  EXPECT_EQ(st.levels[2].hits + st.levels[2].misses, st.levels[1].misses);
}

}  // namespace
}  // namespace hwstar::sim
