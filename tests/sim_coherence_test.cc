#include <gtest/gtest.h>

#include "hwstar/sim/coherence.h"
#include "hwstar/sim/roofline.h"

namespace hwstar::sim {
namespace {

TEST(CoherenceTest, PrivateDataStaysCheap) {
  CoherenceModel model(2);
  // Each core reads and writes only its own region: after warmup all hits,
  // no invalidations.
  for (int rep = 0; rep < 3; ++rep) {
    for (uint64_t i = 0; i < 64; ++i) {
      model.Access(0, i * 64, rep == 2);
      model.Access(1, (1 << 20) + i * 64, rep == 2);
    }
  }
  EXPECT_EQ(model.stats().invalidations_sent, 0u);
  EXPECT_EQ(model.stats().coherence_misses, 0u);
}

TEST(CoherenceTest, WriteInvalidatesOtherCopies) {
  CoherenceModel model(2);
  model.Access(0, 0, false);  // core 0 caches the line
  model.Access(1, 0, false);  // core 1 caches it too (shared)
  model.Access(0, 0, true);   // write: must invalidate core 1
  EXPECT_EQ(model.stats().invalidations_sent, 1u);
  // Core 1's next read is a coherence miss served by transfer.
  const uint32_t lat = model.Access(1, 0, false);
  EXPECT_EQ(model.stats().coherence_misses, 1u);
  EXPECT_GT(lat, 4u);
}

TEST(CoherenceTest, ReadAfterRemoteWriteDowngrades) {
  CoherenceModel model(2);
  model.Access(0, 0, true);   // core 0 modified
  model.Access(1, 0, false);  // coherence miss + downgrade to shared
  EXPECT_EQ(model.stats().coherence_misses, 1u);
  // Now both shared: reads hit on both sides.
  model.ResetStats();
  model.Access(0, 0, false);
  model.Access(1, 0, false);
  EXPECT_EQ(model.stats().hits, 2u);
}

TEST(CoherenceTest, PingPongIsExpensive) {
  // Two cores alternately writing one line: every access invalidates.
  CoherenceModel model(2);
  // Baseline: each core writes its own line.
  CoherenceModel private_model(2);
  for (int i = 0; i < 1000; ++i) {
    model.Access(i % 2, 0, true);
    private_model.Access(i % 2, (i % 2) * 4096, true);
  }
  EXPECT_GT(model.stats().cycles_per_access(),
            5 * private_model.stats().cycles_per_access());
  EXPECT_GT(model.stats().invalidations_sent, 900u);
}

TEST(CoherenceTest, FalseSharingVsPadding) {
  // 2 cores incrementing independent counters. Packed: both counters in
  // one line. Padded: one line each. The packed layout ping-pongs even
  // though the *data* is disjoint -- false sharing.
  CoherenceModel packed(2), padded(2);
  for (int i = 0; i < 2000; ++i) {
    const uint32_t core = i % 2;
    packed.Access(core, core * 8, true);       // same 64B line
    padded.Access(core, core * 64, true);      // separate lines
  }
  EXPECT_GT(packed.stats().cycles_per_access(),
            5 * padded.stats().cycles_per_access());
  EXPECT_EQ(padded.stats().invalidations_sent, 0u);
}

TEST(CoherenceTest, CapacityEvictionsStillWork) {
  CoherenceModel::Options opts;
  opts.private_cache_lines = 4;
  CoherenceModel model(1, opts);
  for (uint64_t i = 0; i < 8; ++i) model.Access(0, i * 64, false);
  // Re-reading the first line misses again (evicted).
  model.ResetStats();
  model.Access(0, 0, false);
  EXPECT_EQ(model.stats().capacity_misses, 1u);
}

TEST(CoherenceTest, PerCoreStatsSeparate) {
  CoherenceModel model(2);
  model.Access(0, 0, false);
  model.Access(0, 0, false);
  model.Access(1, 4096, true);
  EXPECT_EQ(model.core_stats(0).reads, 2u);
  EXPECT_EQ(model.core_stats(0).writes, 0u);
  EXPECT_EQ(model.core_stats(1).writes, 1u);
}

TEST(RooflineTest, RidgeSeparatesRegimes) {
  RooflineModel model;  // 16 Gop/s, 25.6 GB/s -> ridge 0.625 op/B
  EXPECT_NEAR(model.RidgeIntensity(), 0.625, 1e-9);
  EXPECT_TRUE(model.IsBandwidthBound(0.1));
  EXPECT_FALSE(model.IsBandwidthBound(10.0));
}

TEST(RooflineTest, AttainableClampsAtPeak) {
  RooflineModel model;
  EXPECT_DOUBLE_EQ(model.AttainableGflops(100.0), 16.0);
  EXPECT_NEAR(model.AttainableGflops(0.1), 2.56, 1e-9);
  EXPECT_DOUBLE_EQ(model.AttainableGflops(0.0), 0.0);
}

TEST(RooflineTest, PredictTakesMaxOfRoofs) {
  RooflineModel model;
  // 1GB moved, 1 op/value at 8B/value -> bandwidth bound.
  const uint64_t bytes = 1u << 30;
  const uint64_t ops = bytes / 8;
  const double t = model.PredictSeconds(bytes, ops);
  EXPECT_NEAR(t, static_cast<double>(bytes) / (25.6e9), 1e-6);
}

TEST(RooflineTest, CompressionPaysWhenBandwidthBound) {
  RooflineModel model;
  const uint64_t bytes = 1u << 30;
  const uint64_t ops = bytes / 8;  // 0.125 op/B: bandwidth bound
  const double raw = model.PredictSeconds(bytes, ops);
  // 4x compression, 2 extra decode ops per value.
  const double compressed =
      model.PredictCompressedSeconds(bytes, ops, 4.0, 2 * ops);
  EXPECT_LT(compressed, raw);
}

TEST(RooflineTest, CompressionHurtsWhenComputeBound) {
  RooflineModel model;
  const uint64_t bytes = 1 << 20;
  const uint64_t ops = 100ull * (bytes / 8);  // deeply compute bound
  const double raw = model.PredictSeconds(bytes, ops);
  const double compressed =
      model.PredictCompressedSeconds(bytes, ops, 4.0, 10 * (bytes / 8));
  EXPECT_GT(compressed, raw);
}

}  // namespace
}  // namespace hwstar::sim
