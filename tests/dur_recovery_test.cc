#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include "hwstar/common/random.h"
#include "hwstar/dur/durable_kv_store.h"
#include "hwstar/dur/fault_injection.h"
#include "hwstar/dur/log_writer.h"
#include "hwstar/dur/recovery.h"
#include "hwstar/dur/wal_format.h"
#include "hwstar/txn/transaction.h"

namespace hwstar::dur {
namespace {

// ---------------------------------------------------------------------------
// Crash-recovery property test. Each trace:
//
//   1. opens a DurableKvStore over a FaultyFileBackend whose plan kills the
//      backend after a random number of writes (drop / torn / bit-flip),
//   2. runs a random op sequence (puts, deletes, occasional checkpoints)
//      until the injected crash surfaces as kIoError,
//   3. drops the unsynced page-cache suffix (SimulateCrash), recovers into
//      a fresh store, and
//   4. checks PREFIX CONSISTENCY against a reference model: per log shard,
//      the recovered state must equal the reference after applying some
//      prefix of that shard's op subsequence, and that prefix must include
//      every op the store acked before the crash (durability: an OK return
//      means the op survives; atomicity: no torn record is ever applied).
//
// Per-shard (rather than global) prefixes are the honest contract: each
// log shard orders and syncs independently, so an op on shard 1 may
// survive while an earlier op on shard 0 does not — but within a shard,
// and therefore for any single key, order is never violated.
// ---------------------------------------------------------------------------

struct TraceOp {
  bool is_put = true;
  uint64_t key = 0;
  uint64_t value = 0;
};

void ApplyToModel(std::map<uint64_t, uint64_t>* model, const TraceOp& op) {
  if (op.is_put) {
    (*model)[op.key] = op.value;
  } else {
    model->erase(op.key);
  }
}

// The same high-bit range mapping DurableKvStore uses for its logs.
uint32_t LogShardOfKey(uint64_t key, uint32_t log_shards) {
  if (log_shards == 1) return 0;
  uint32_t log2 = 0;
  while ((1u << log2) < log_shards) ++log2;
  return static_cast<uint32_t>(key >> (64 - log2));
}

std::map<uint64_t, uint64_t> RecoveredShardContents(kv::KvStore* store,
                                                    uint32_t shard,
                                                    uint32_t log_shards) {
  std::vector<std::pair<uint64_t, uint64_t>> all;
  store->RangeScanEntries(0, ~uint64_t{0}, &all);
  std::map<uint64_t, uint64_t> out;
  for (const auto& [key, value] : all) {
    if (LogShardOfKey(key, log_shards) == shard) out.emplace(key, value);
  }
  return out;
}

/// Runs one randomized trace; returns a failure description or "".
std::string RunTrace(uint64_t seed) {
  Xoshiro256 rng(seed);

  FaultPlan plan;
  plan.fail_after_writes = 1 + rng.NextBounded(300);
  plan.mode = static_cast<FaultMode>(rng.NextBounded(3));
  plan.seed = seed ^ 0x9e3779b97f4a7c15ULL;
  FaultyFileBackend fs(plan);

  DurableKvOptions options;
  options.log_shards = 1u << rng.NextBounded(3);  // 1, 2 or 4
  options.kv.index = rng.NextBounded(2) == 0 ? kv::IndexKind::kArt
                                             : kv::IndexKind::kBTree;
  options.kv.shards = 1u << rng.NextBounded(2);
  options.log.fsync_interval_us = rng.NextBounded(20);
  options.log.fsync_every_n = static_cast<uint32_t>(rng.NextBounded(8));

  auto opened = DurableKvStore::Open(&fs, "db", options);
  if (!opened.ok()) return "open failed: " + opened.status().ToString();
  DurableKvStore* db = opened.value().get();

  // Keys from a small space so overwrites and real deletes are common, but
  // spread over the high bits so every shard sees traffic.
  auto random_key = [&rng]() {
    const uint64_t k = rng.NextBounded(16);
    return k << 60 | k;
  };

  std::vector<TraceOp> ops;          // every op attempted, in order
  std::vector<bool> acked;           // ops[i] returned OK
  constexpr size_t kMaxOps = 400;
  bool crashed = false;
  for (size_t i = 0; i < kMaxOps && !crashed; ++i) {
    if (i > 0 && i % 120 == 0) {
      // Occasional checkpoint; mid-checkpoint crashes are part of the
      // tested surface (install is atomic, so either outcome is legal).
      (void)db->Checkpoint();
    }
    TraceOp op;
    op.is_put = rng.NextBounded(10) < 8;
    op.key = random_key();
    op.value = rng.Next();
    Status st = op.is_put ? db->Put(op.key, op.value) : db->Delete(op.key);
    ops.push_back(op);
    acked.push_back(st.ok());
    if (!st.ok()) {
      if (st.code() != StatusCode::kIoError) {
        return "unexpected op status: " + st.ToString();
      }
      crashed = true;
    }
  }
  opened.value().reset();  // the dying process's destructors still run

  // Power loss: unsynced bytes (partially) vanish; maybe a torn-sector
  // bit flip in what survives.
  fs.disk()->SimulateCrash(seed * 31 + 7, rng.NextBounded(2) == 1);

  kv::KvStore recovered(options.kv);
  auto info = Recover(fs.disk(), "db", options.log_shards, &recovered);
  if (!info.ok()) return "recover failed: " + info.status().ToString();

  // Per-shard prefix consistency.
  for (uint32_t shard = 0; shard < options.log_shards; ++shard) {
    std::vector<TraceOp> shard_ops;
    size_t shard_acked = 0;
    for (size_t i = 0; i < ops.size(); ++i) {
      if (LogShardOfKey(ops[i].key, options.log_shards) != shard) continue;
      shard_ops.push_back(ops[i]);
      if (acked[i]) shard_acked = shard_ops.size();
    }

    const std::map<uint64_t, uint64_t> got =
        RecoveredShardContents(&recovered, shard, options.log_shards);

    // State after the minimum legal prefix (every acked op), then extend
    // one unacked op at a time looking for a match.
    std::map<uint64_t, uint64_t> model;
    for (size_t i = 0; i < shard_acked; ++i) ApplyToModel(&model, shard_ops[i]);
    size_t prefix = shard_acked;
    bool matched = model == got;
    while (!matched && prefix < shard_ops.size()) {
      ApplyToModel(&model, shard_ops[prefix]);
      ++prefix;
      matched = model == got;
    }
    if (!matched) {
      std::ostringstream msg;
      msg << "shard " << shard << ": recovered state (" << got.size()
          << " keys) matches no prefix in [" << shard_acked << ", "
          << shard_ops.size() << "] of " << shard_ops.size() << " shard ops"
          << " (crashed=" << crashed << ")";
      return msg.str();
    }
  }
  return "";
}

TEST(CrashRecoveryPropertyTest, RandomTracesArePrefixConsistent) {
  // >= 100 independent traces (the acceptance bar); each covers a random
  // combination of fault mode, trigger point, index kind, shard counts
  // and group-commit tuning.
  constexpr uint64_t kTraces = 128;
  for (uint64_t seed = 1; seed <= kTraces; ++seed) {
    const std::string failure = RunTrace(seed);
    ASSERT_EQ(failure, "") << "trace seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Transactional crash-recovery property test. Same machinery (fault-
// injected backend, random crash point, SimulateCrash, recover), but the
// trace is a serial sequence of multi-key TRANSACTIONS whose write-sets
// span log shards. The contract under test is commit atomicity: after a
// crash — including one mid-commit, with fragments durable in one shard
// and the commit record lost in another — recovery installs each
// transaction's whole write-set or none of it, and every transaction whose
// Commit() acked OK is fully installed.
//
// Each transaction puts 1..3 FRESH keys (the first is its marker, never
// deleted, so "did txn t apply?" is a single lookup) and sometimes deletes
// one non-marker key of an earlier transaction. Expected presence of any
// key is then a pure function of which txns applied — which is exactly
// what all-or-nothing makes decidable.
// ---------------------------------------------------------------------------

struct TxnTracePut {
  uint64_t key = 0;
  uint64_t value = 0;
  size_t deleted_by = 0;  ///< txn index that deletes this key; 0 = none
};

struct TxnTraceRecord {
  std::vector<TxnTracePut> puts;
  bool acked = false;
};

std::string RunTxnTrace(uint64_t seed) {
  Xoshiro256 rng(seed);

  FaultPlan plan;
  plan.fail_after_writes = 1 + rng.NextBounded(250);
  plan.mode = static_cast<FaultMode>(rng.NextBounded(3));
  plan.seed = seed ^ 0x2545f4914f6cdd1dULL;
  FaultyFileBackend fs(plan);

  DurableKvOptions options;
  options.log_shards = 1u << rng.NextBounded(3);  // 1, 2 or 4
  options.kv.index = rng.NextBounded(2) == 0 ? kv::IndexKind::kArt
                                             : kv::IndexKind::kBTree;
  options.kv.shards = 1u << rng.NextBounded(2);
  options.log.fsync_interval_us = rng.NextBounded(20);
  options.log.fsync_every_n = static_cast<uint32_t>(rng.NextBounded(8));

  auto opened = DurableKvStore::Open(&fs, "db", options);
  if (!opened.ok()) return "open failed: " + opened.status().ToString();
  txn::TxnManager mgr(opened.value().get());

  // Txn t's slot s key: top 2 bits spread the write-set across log
  // shards, the rest identify (t, s) uniquely — fresh keys every txn.
  auto txn_key = [&rng](size_t t, uint64_t slot) {
    return (rng.NextBounded(4) << 62) | (static_cast<uint64_t>(t) << 8) |
           slot;
  };

  std::vector<TxnTraceRecord> trace(1);  // index 0 unused (= "no deleter")
  std::vector<size_t> delete_candidates;  // txns with an undeleted slot 1
  constexpr size_t kMaxTxns = 120;
  bool crashed = false;
  for (size_t t = 1; t <= kMaxTxns && !crashed; ++t) {
    if (t % 40 == 0) (void)opened.value()->Checkpoint();

    TxnTraceRecord rec;
    txn::Transaction tx = mgr.Begin();
    const uint64_t puts = 1 + rng.NextBounded(3);
    for (uint64_t s = 0; s < puts; ++s) {
      TxnTracePut put;
      put.key = txn_key(t, s);
      put.value = t * 1000 + s;
      tx.Put(put.key, put.value);
      rec.puts.push_back(put);
    }
    if (!delete_candidates.empty() && rng.NextBounded(10) < 3) {
      const size_t pick = rng.NextBounded(delete_candidates.size());
      const size_t victim = delete_candidates[pick];
      delete_candidates.erase(delete_candidates.begin() +
                              static_cast<ptrdiff_t>(pick));
      trace[victim].puts[1].deleted_by = t;
      tx.Delete(trace[victim].puts[1].key);
    }
    const Status st = tx.Commit();
    rec.acked = st.ok();
    trace.push_back(rec);
    if (rec.puts.size() >= 2 && rec.puts[1].deleted_by == 0) {
      delete_candidates.push_back(t);
    }
    if (!st.ok()) {
      if (st.code() != StatusCode::kIoError) {
        return "unexpected commit status: " + st.ToString();
      }
      crashed = true;
    }
  }
  opened.value().reset();

  fs.disk()->SimulateCrash(seed * 17 + 3, rng.NextBounded(2) == 1);

  kv::KvStore recovered(options.kv);
  auto info = Recover(fs.disk(), "db", options.log_shards, &recovered);
  if (!info.ok()) return "recover failed: " + info.status().ToString();

  // Which txns applied? Marker key (slot 0, never deleted) decides.
  std::vector<bool> applied(trace.size(), false);
  for (size_t t = 1; t < trace.size(); ++t) {
    applied[t] = recovered.Get(trace[t].puts[0].key).ok();
    if (trace[t].acked && !applied[t]) {
      std::ostringstream msg;
      msg << "txn " << t << " acked but not recovered";
      return msg.str();
    }
  }

  // All-or-nothing: every key's presence/value must follow from the
  // applied set alone. A partial install shows up here as a put present
  // while its sibling marker is absent (or vice versa), or as a delete
  // that happened without the rest of its transaction.
  for (size_t t = 1; t < trace.size(); ++t) {
    for (const TxnTracePut& put : trace[t].puts) {
      const bool deleted =
          put.deleted_by != 0 && applied[put.deleted_by];
      const bool expect_present = applied[t] && !deleted;
      auto got = recovered.Get(put.key);
      if (expect_present != got.ok()) {
        std::ostringstream msg;
        msg << "txn " << t << " key " << put.key << ": expected "
            << (expect_present ? "present" : "absent") << ", got the"
            << " opposite (applied=" << applied[t]
            << " deleted_by=" << put.deleted_by << ")";
        return msg.str();
      }
      if (got.ok() && got.value() != put.value) {
        std::ostringstream msg;
        msg << "txn " << t << " key " << put.key << ": value "
            << got.value() << " != " << put.value;
        return msg.str();
      }
    }
  }
  return "";
}

TEST(CrashRecoveryPropertyTest, TransactionalTracesAreAtomic) {
  constexpr uint64_t kTraces = 128;
  for (uint64_t seed = 1; seed <= kTraces; ++seed) {
    const std::string failure = RunTxnTrace(seed);
    ASSERT_EQ(failure, "") << "txn trace seed " << seed;
  }
}

void WriteSegment(InMemoryFileBackend* fs, const std::string& shard_prefix,
                  uint32_t index, const std::vector<WalRecord>& records) {
  std::string buf;
  for (const WalRecord& r : records) EncodeWalRecord(r, &buf);
  auto f = fs->OpenForAppend(LogWriter::SegmentName(shard_prefix, index));
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(f.value()->Append(buf.data(), buf.size()).ok());
  ASSERT_TRUE(f.value()->Sync(SyncMode::kFsync).ok());
  ASSERT_TRUE(f.value()->Close().ok());
}

WalRecord Put(uint64_t lsn, uint64_t key, uint64_t value) {
  WalRecord r;
  r.lsn = lsn;
  r.key = key;
  r.value = value;
  return r;
}

// Regression (double-crash): a sealed segment with a mid-segment LSN gap
// (a write the device lost) must not hide a later segment in which a
// prior recovery re-issued the lost LSNs. Recovery #1 stops at the gap
// and resumes the dense sequence in a fresh higher-index segment; if a
// second crash follows, recovery #2 must replay that resumption or every
// op acked since recovery #1 is silently dropped.
TEST(RecoveryTest, ResumesPastGapInFreshSegment) {
  InMemoryFileBackend fs;
  const std::string shard_prefix = ShardLogPrefix("db", 0);

  // Segment 0: LSNs 1..5 survive, 6 was lost, stale 7..8 follow the gap.
  WriteSegment(&fs, shard_prefix, 0,
               {Put(1, 1, 10), Put(2, 2, 20), Put(3, 3, 30), Put(4, 4, 40),
                Put(5, 5, 50), Put(7, 7, 70), Put(8, 8, 80)});

  // Recovery #1 applies 1..5 and stops at the gap.
  kv::KvOptions kopts;
  {
    kv::KvStore store(kopts);
    auto info = Recover(&fs, "db", 1, &store);
    ASSERT_TRUE(info.ok()) << info.status();
    EXPECT_EQ(info.value().records_applied, 5u);
    EXPECT_EQ(info.value().next_lsn[0], 6u);
    EXPECT_EQ(info.value().next_segment[0], 1u);
  }

  // The reopened writer re-issues LSNs 6..8 (fresh acked ops) in segment 1.
  WriteSegment(&fs, shard_prefix, 1,
               {Put(6, 106, 6), Put(7, 107, 7), Put(8, 108, 8)});

  // Recovery #2: replay must resume at LSN 6 in segment 1. The stale
  // post-gap records in segment 0 (keys 7, 8) must still not apply.
  kv::KvStore store(kopts);
  auto info = Recover(&fs, "db", 1, &store);
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info.value().records_applied, 8u);
  EXPECT_EQ(info.value().next_lsn[0], 9u);
  for (uint64_t lsn = 6; lsn <= 8; ++lsn) {
    auto got = store.Get(100 + lsn);
    ASSERT_TRUE(got.ok()) << "re-issued lsn " << lsn << " lost";
    EXPECT_EQ(got.value(), lsn);
  }
  EXPECT_FALSE(store.Get(7).ok());
  EXPECT_FALSE(store.Get(8).ok());
}

// Concurrent writers racing the injected crash: every put whose future
// resolved OK before the crash must be present after recovery (keys are
// writer-private, so presence with the exact value is the full contract).
TEST(CrashRecoveryPropertyTest, ConcurrentAckedPutsSurvive) {
  for (uint64_t round = 0; round < 6; ++round) {
    FaultPlan plan;
    plan.fail_after_writes = 20 + round * 37;
    plan.mode = static_cast<FaultMode>(round % 3);
    plan.seed = round + 1;
    FaultyFileBackend fs(plan);

    DurableKvOptions options;
    options.log_shards = 2;
    options.kv.shards = 2;
    options.log.fsync_interval_us = 5;
    auto opened = DurableKvStore::Open(&fs, "db", options);
    ASSERT_TRUE(opened.ok());
    DurableKvStore* db = opened.value().get();

    constexpr uint32_t kThreads = 4;
    std::vector<std::vector<std::pair<uint64_t, uint64_t>>> acked(kThreads);
    std::vector<std::thread> threads;
    for (uint32_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        Xoshiro256 rng(round * 101 + t);
        for (uint64_t i = 0; i < 400; ++i) {
          const uint64_t key = (static_cast<uint64_t>(t) << 56) | i;
          const uint64_t value = rng.Next();
          if (!db->Put(key, value).ok()) break;  // crashed: stop writing
          acked[t].emplace_back(key, value);
        }
      });
    }
    for (auto& th : threads) th.join();
    opened.value().reset();

    fs.disk()->SimulateCrash(round * 13 + 5, /*flip_bit=*/true);
    kv::KvStore recovered(options.kv);
    auto info = Recover(fs.disk(), "db", options.log_shards, &recovered);
    ASSERT_TRUE(info.ok()) << info.status();

    for (uint32_t t = 0; t < kThreads; ++t) {
      for (const auto& [key, value] : acked[t]) {
        auto got = recovered.Get(key);
        ASSERT_TRUE(got.ok())
            << "round " << round << ": acked key " << key << " lost";
        ASSERT_EQ(got.value(), value)
            << "round " << round << ": acked key " << key << " corrupted";
      }
    }
  }
}

}  // namespace
}  // namespace hwstar::dur
