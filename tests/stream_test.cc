// Tests for hwstar::stream: window math, watermark semantics, windowed
// aggregation and streaming-join bit-identity against offline batch
// computation, backpressure shedding, shutdown races, and metrics
// scraping under load. Registered with LABELS sanitize: the pipeline
// tests exercise the Executor-driven concurrent drain paths worth
// running under TSan.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>
#include <tuple>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "hwstar/exec/executor.h"
#include "hwstar/hw/machine_model.h"
#include "hwstar/obs/registry.h"
#include "hwstar/stream/join.h"
#include "hwstar/stream/pipeline.h"
#include "hwstar/stream/source.h"
#include "hwstar/stream/stream_batch.h"
#include "hwstar/stream/watermark.h"
#include "hwstar/stream/window.h"

namespace hwstar::stream {
namespace {

// ---------------------------------------------------------------------------
// Window math.

TEST(WindowSpecTest, TumblingFirstStart) {
  const WindowSpec w = WindowSpec::Tumbling(10);
  EXPECT_TRUE(w.tumbling());
  EXPECT_EQ(w.effective_slide(), 10u);
  EXPECT_EQ(w.FirstStart(0), 0u);
  EXPECT_EQ(w.FirstStart(9), 0u);
  EXPECT_EQ(w.FirstStart(10), 10u);
  EXPECT_EQ(w.FirstStart(25), 20u);
}

TEST(WindowSpecTest, SlidingFirstStartCoversAllWindows) {
  const WindowSpec w = WindowSpec::Sliding(10, 5);
  EXPECT_FALSE(w.tumbling());
  // ts = 12 is covered by windows starting at 5 and 10.
  EXPECT_EQ(w.FirstStart(12), 5u);
  // ts = 3 is only covered by the window starting at 0.
  EXPECT_EQ(w.FirstStart(3), 0u);
  // Enumerating upward by slide while start <= ts visits every cover.
  std::vector<uint64_t> starts;
  for (uint64_t s = w.FirstStart(12); s <= 12; s += w.effective_slide()) {
    starts.push_back(s);
  }
  EXPECT_EQ(starts, (std::vector<uint64_t>{5, 10}));
}

TEST(WindowSpecTest, ZeroSlideMeansTumbling) {
  const WindowSpec w{/*size=*/8, /*slide=*/0};
  EXPECT_TRUE(w.tumbling());
  EXPECT_EQ(w.effective_slide(), 8u);
}

// ---------------------------------------------------------------------------
// Watermark tracker.

TEST(WatermarkTest, BoundedOutOfOrderness) {
  WatermarkTracker t(/*lateness_bound=*/10);
  EXPECT_EQ(t.watermark(), 0u);  // nothing observed: no promise
  t.Observe(5);
  EXPECT_EQ(t.watermark(), 0u);  // 5 - 10 saturates at 0
  t.Observe(25);
  EXPECT_EQ(t.watermark(), 15u);
  t.Observe(18);  // out of order but within bound: watermark holds
  EXPECT_EQ(t.watermark(), 15u);
  t.Observe(100);
  EXPECT_EQ(t.watermark(), 90u);
}

TEST(WatermarkTest, ZeroBoundTracksMax) {
  WatermarkTracker t(/*lateness_bound=*/0);
  t.Observe(7);
  EXPECT_EQ(t.watermark(), 7u);
  t.Observe(3);
  EXPECT_EQ(t.watermark(), 7u);
}

// ---------------------------------------------------------------------------
// WindowAggregator unit semantics (single partition, hand-built batches).

StreamBatch MakeBatch(std::vector<std::tuple<uint64_t, int64_t, uint64_t>> rows,
                      uint64_t watermark) {
  StreamBatch b;
  for (const auto& [k, v, ts] : rows) b.Append(k, v, ts);
  b.watermark = watermark;
  return b;
}

TEST(WindowAggregatorTest, LateIsJudgedAgainstEarlierBatchesWatermark) {
  WindowAggregator agg(WindowSpec::Tumbling(10));
  agg.Bind(1);
  std::vector<WindowResult> out;
  uint64_t late = 0;

  // First batch establishes watermark 15; ts=12 rides in the same batch
  // and must NOT be late (it never competes with its own batch's
  // watermark).
  agg.OnBatch(0, MakeBatch({{1, 1, 20}, {1, 1, 12}}, 15), &out, &late);
  EXPECT_EQ(late, 0u);
  // Window [0,10) had no records; watermark 15 closed it silently, and
  // [10,20) stays open.
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(agg.OpenWindows(0), 2u);  // [10,20) and [20,30)

  // Second batch: ts=12 is now behind watermark 15 -> dropped. ts=16 is
  // in-bound.
  late = 0;
  agg.OnBatch(0, MakeBatch({{1, 1, 12}, {1, 1, 16}}, 15), &out, &late);
  EXPECT_EQ(late, 1u);
  EXPECT_TRUE(out.empty());

  // Flush closes the rest. [10,20) holds ts=12 (batch 1, kept) and ts=16
  // (batch 2); the second ts=12 was dropped. [20,30) holds ts=20.
  late = 0;
  agg.OnBatch(0, MakeBatch({}, StreamBatch::kFlushWatermark), &out, &late);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].window_start, 10u);
  EXPECT_EQ(out[0].count, 2u);
  EXPECT_EQ(out[1].window_start, 20u);
  EXPECT_EQ(out[1].count, 1u);
  EXPECT_EQ(agg.OpenWindows(0), 0u);
}

TEST(WindowAggregatorTest, EmptyWindowsEmitNothing) {
  WindowAggregator agg(WindowSpec::Tumbling(10));
  agg.Bind(1);
  std::vector<WindowResult> out;
  // Records only in [0,10) and [90,100); flush must emit exactly those
  // two windows, not the eight empty ones between them.
  agg.OnBatch(0, MakeBatch({{7, 2, 3}, {7, 2, 95}}, 0), &out, nullptr);
  agg.OnBatch(0, MakeBatch({}, StreamBatch::kFlushWatermark), &out, nullptr);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].window_start, 0u);
  EXPECT_EQ(out[1].window_start, 90u);
}

TEST(WindowAggregatorTest, SlidingRecordCountsInEveryCoveringWindow) {
  WindowAggregator agg(WindowSpec::Sliding(10, 5));
  agg.Bind(1);
  std::vector<WindowResult> out;
  // ts=12 lands in windows [5,15) and [10,20).
  agg.OnBatch(0, MakeBatch({{1, 4, 12}}, 0), &out, nullptr);
  agg.OnBatch(0, MakeBatch({}, StreamBatch::kFlushWatermark), &out, nullptr);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].window_start, 5u);
  EXPECT_EQ(out[0].sum, 4);
  EXPECT_EQ(out[1].window_start, 10u);
  EXPECT_EQ(out[1].sum, 4);
}

TEST(WindowAggregatorTest, EmissionOrderIsWindowThenKey) {
  WindowAggregator agg(WindowSpec::Tumbling(10));
  agg.Bind(1);
  std::vector<WindowResult> out;
  agg.OnBatch(0, MakeBatch({{9, 1, 1}, {2, 1, 2}, {5, 1, 12}}, 0), &out,
              nullptr);
  agg.OnBatch(0, MakeBatch({}, StreamBatch::kFlushWatermark), &out, nullptr);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].window_start, 0u);
  EXPECT_EQ(out[0].key, 2u);
  EXPECT_EQ(out[1].window_start, 0u);
  EXPECT_EQ(out[1].key, 9u);
  EXPECT_EQ(out[2].window_start, 10u);
  EXPECT_EQ(out[2].key, 5u);
}

// ---------------------------------------------------------------------------
// Pipeline end-to-end: bit-identity against offline batch computation.

/// Collects every emitted window result; thread-safe (partitions emit
/// concurrently).
class CollectWindowsSink : public Sink {
 public:
  void OnWindows(uint32_t /*partition*/,
                 const std::vector<WindowResult>& results) override {
    std::lock_guard<std::mutex> lk(mutex_);
    all_.insert(all_.end(), results.begin(), results.end());
  }

  std::vector<WindowResult> Sorted() {
    std::lock_guard<std::mutex> lk(mutex_);
    std::vector<WindowResult> v = all_;
    std::sort(v.begin(), v.end(), [](const WindowResult& a,
                                     const WindowResult& b) {
      return std::tie(a.window_start, a.key) < std::tie(b.window_start, b.key);
    });
    return v;
  }

 private:
  std::mutex mutex_;
  std::vector<WindowResult> all_;
};

/// Collects every row reaching the sink; thread-safe.
class CollectRowsSink : public Sink {
 public:
  void OnBatch(uint32_t /*partition*/, const StreamBatch& batch) override {
    std::lock_guard<std::mutex> lk(mutex_);
    for (size_t i = 0; i < batch.size(); ++i) {
      rows_.emplace_back(batch.keys[i], batch.values[i], batch.event_ts[i]);
    }
  }

  std::vector<std::tuple<uint64_t, int64_t, uint64_t>> Sorted() {
    std::lock_guard<std::mutex> lk(mutex_);
    std::vector<std::tuple<uint64_t, int64_t, uint64_t>> v = rows_;
    std::sort(v.begin(), v.end());
    return v;
  }

 private:
  std::mutex mutex_;
  std::vector<std::tuple<uint64_t, int64_t, uint64_t>> rows_;
};

/// Materializes everything a Source would feed the pipeline — the offline
/// side of the bit-identity tests. A second identically-configured source
/// instance produces the exact same rows (deterministic generators), so
/// the reference computation never re-implements timestamp synthesis.
StreamBatch Materialize(Source* source) {
  StreamBatch all;
  StreamBatch chunk;
  while (true) {
    chunk.Clear();
    if (!source->NextBatch(4096, &chunk)) break;
    for (size_t i = 0; i < chunk.size(); ++i) {
      all.Append(chunk.keys[i], chunk.values[i], chunk.event_ts[i]);
    }
  }
  return all;
}

/// Offline windowed sum/count over a materialized stream — the
/// straight-line reference the pipeline must match bit for bit.
std::vector<WindowResult> OfflineWindows(const StreamBatch& rows,
                                         const WindowSpec& spec) {
  std::map<std::pair<uint64_t, uint64_t>, WindowResult> acc;
  for (size_t i = 0; i < rows.size(); ++i) {
    const uint64_t ts = rows.event_ts[i];
    for (uint64_t start = spec.FirstStart(ts); start <= ts;
         start += spec.effective_slide()) {
      WindowResult& r = acc[{start, rows.keys[i]}];
      r.window_start = start;
      r.window_end = start + spec.size;
      r.key = rows.keys[i];
      r.sum += rows.values[i];
      r.count += 1;
    }
  }
  std::vector<WindowResult> out;
  out.reserve(acc.size());
  for (const auto& [k, v] : acc) out.push_back(v);
  return out;  // map order == (window_start, key) order
}

workload::YcsbConfig SmallYcsb() {
  workload::YcsbConfig cfg;
  cfg.record_count = 512;  // few keys -> every window has repeat keys
  cfg.operation_count = 20000;
  cfg.zipf_theta = 0.8;
  cfg.seed = 42;
  return cfg;
}

TEST(PipelineTest, TumblingAggregationMatchesOfflineBatch) {
  EventTimeOptions time;
  time.step = 1;
  time.max_disorder = 64;

  exec::Executor executor(4);
  YcsbSource source(SmallYcsb(), time);
  WindowAggregator agg(WindowSpec::Tumbling(1000));
  CollectWindowsSink sink;

  PipelineOptions opts;
  opts.partitions = 4;
  opts.batch_rows = 512;
  opts.lateness_bound = 64;  // = max_disorder: nothing may drop
  auto pipeline = PipelineBuilder(&executor)
                      .From(&source)
                      .Aggregate(&agg)
                      .To(&sink)
                      .With(opts)
                      .Build();
  pipeline->Run();

  EXPECT_EQ(pipeline->late_dropped(), 0u);
  EXPECT_EQ(pipeline->batches_shed(), 0u);

  YcsbSource reference(SmallYcsb(), time);
  const StreamBatch rows = Materialize(&reference);
  EXPECT_EQ(pipeline->records_processed(), rows.size());
  const std::vector<WindowResult> expected =
      OfflineWindows(rows, WindowSpec::Tumbling(1000));
  EXPECT_EQ(sink.Sorted(), expected);
  EXPECT_EQ(pipeline->windows_emitted(), expected.size());
}

TEST(PipelineTest, SlidingAggregationMatchesOfflineBatch) {
  EventTimeOptions time;
  time.max_disorder = 32;

  exec::Executor executor(3);
  YcsbSource source(SmallYcsb(), time);
  const WindowSpec spec = WindowSpec::Sliding(1200, 400);
  WindowAggregator agg(spec);
  CollectWindowsSink sink;

  PipelineOptions opts;
  opts.partitions = 3;
  opts.batch_rows = 777;  // batch boundary never aligned with windows
  opts.lateness_bound = 32;
  auto pipeline = PipelineBuilder(&executor)
                      .From(&source)
                      .Aggregate(&agg)
                      .To(&sink)
                      .With(opts)
                      .Build();
  pipeline->Run();

  YcsbSource reference(SmallYcsb(), time);
  EXPECT_EQ(sink.Sorted(), OfflineWindows(Materialize(&reference), spec));
  EXPECT_EQ(pipeline->late_dropped(), 0u);
}

TEST(PipelineTest, SinglePartitionMatchesMultiPartition) {
  EventTimeOptions time;
  time.max_disorder = 16;
  const WindowSpec spec = WindowSpec::Tumbling(500);

  std::vector<WindowResult> results[2];
  const uint32_t parts[2] = {1, 7};
  for (int i = 0; i < 2; ++i) {
    exec::Executor executor(4);
    YcsbSource source(SmallYcsb(), time);
    WindowAggregator agg(spec);
    CollectWindowsSink sink;
    PipelineOptions opts;
    opts.partitions = parts[i];
    opts.batch_rows = 256;
    opts.lateness_bound = 16;
    auto pipeline = PipelineBuilder(&executor)
                        .From(&source)
                        .Aggregate(&agg)
                        .To(&sink)
                        .With(opts)
                        .Build();
    pipeline->Run();
    results[i] = sink.Sorted();
  }
  EXPECT_EQ(results[0], results[1]);
}

// ---------------------------------------------------------------------------
// Streaming join: end-to-end identity, batched vs scalar kernels.

/// Build side: orders-like payload per orderkey.
std::pair<std::vector<uint64_t>, std::vector<int64_t>> MakeBuildSide(
    uint64_t n) {
  std::vector<uint64_t> keys;
  std::vector<int64_t> payloads;
  // Cover half the orderkey space so a realistic fraction of probes miss.
  for (uint64_t k = 1; k <= n; k += 2) {
    keys.push_back(k);
    payloads.push_back(static_cast<int64_t>(k * 31 + 7));
  }
  return {keys, payloads};
}

TEST(StreamJoinTest, PipelineJoinMatchesOfflineAndScalarKernel) {
  workload::TpchConfig tpch;
  tpch.scale_factor = 0.002;  // ~12k lineitem rows
  EventTimeOptions time;
  time.max_disorder = 8;

  // Orderkeys run 1..orders*4 in the generator; cover half of them.
  const auto [bkeys, bpayloads] = MakeBuildSide(8000);

  auto run = [&](const StreamJoinOptions& jopts) {
    exec::Executor executor(4);
    LineitemSource source(tpch, LineitemKey::kOrderKey, time);
    StreamTableJoin join(bkeys.data(), bpayloads.data(), bkeys.size(), jopts);
    CollectRowsSink sink;
    PipelineOptions opts;
    opts.partitions = 4;
    opts.batch_rows = 1024;
    opts.lateness_bound = 8;
    auto pipeline = PipelineBuilder(&executor)
                        .From(&source)
                        .Via(&join)
                        .To(&sink)
                        .With(opts)
                        .Build();
    pipeline->Run();
    return sink.Sorted();
  };

  StreamJoinOptions scalar;
  scalar.use_batched_kernels = false;
  scalar.combine = JoinCombine::kSum;
  StreamJoinOptions batched;
  batched.combine = JoinCombine::kSum;
  StreamJoinOptions bloomed;
  bloomed.combine = JoinCombine::kSum;
  bloomed.bloom_prefilter = true;

  const auto scalar_rows = run(scalar);
  const auto batched_rows = run(batched);
  const auto bloomed_rows = run(bloomed);

  // Offline reference: materialize the stream, probe a plain hash map.
  std::unordered_map<uint64_t, int64_t> build;
  for (size_t i = 0; i < bkeys.size(); ++i) build[bkeys[i]] = bpayloads[i];
  LineitemSource reference(tpch, LineitemKey::kOrderKey, time);
  const StreamBatch rows = Materialize(&reference);
  std::vector<std::tuple<uint64_t, int64_t, uint64_t>> expected;
  for (size_t i = 0; i < rows.size(); ++i) {
    auto it = build.find(rows.keys[i]);
    if (it == build.end()) continue;
    expected.emplace_back(rows.keys[i], rows.values[i] + it->second,
                          rows.event_ts[i]);
  }
  std::sort(expected.begin(), expected.end());

  ASSERT_FALSE(expected.empty());
  EXPECT_LT(expected.size(), rows.size());  // some probes missed
  EXPECT_EQ(scalar_rows, expected);
  EXPECT_EQ(batched_rows, expected);
  EXPECT_EQ(bloomed_rows, expected);
}

TEST(StreamJoinTest, JoinIntoWindowAggregationEndToEnd) {
  // Full chain on the Executor: source -> join -> windowed sum -> sink,
  // against the equivalent offline computation.
  workload::TpchConfig tpch;
  tpch.scale_factor = 0.001;
  EventTimeOptions time;
  time.max_disorder = 4;
  const auto [bkeys, bpayloads] = MakeBuildSide(4000);

  exec::Executor executor(2);
  LineitemSource source(tpch, LineitemKey::kOrderKey, time);
  StreamJoinOptions jopts;
  jopts.combine = JoinCombine::kBuildValue;
  StreamTableJoin join(bkeys.data(), bpayloads.data(), bkeys.size(), jopts);
  const WindowSpec spec = WindowSpec::Tumbling(256);
  WindowAggregator agg(spec);
  CollectWindowsSink sink;
  PipelineOptions opts;
  opts.partitions = 2;
  opts.batch_rows = 300;
  opts.lateness_bound = 4;
  auto pipeline = PipelineBuilder(&executor)
                      .From(&source)
                      .Via(&join)
                      .Aggregate(&agg)
                      .To(&sink)
                      .With(opts)
                      .Build();
  pipeline->Run();

  std::unordered_map<uint64_t, int64_t> build;
  for (size_t i = 0; i < bkeys.size(); ++i) build[bkeys[i]] = bpayloads[i];
  LineitemSource ref_source(tpch, LineitemKey::kOrderKey, time);
  const StreamBatch rows = Materialize(&ref_source);
  StreamBatch joined;
  for (size_t i = 0; i < rows.size(); ++i) {
    auto it = build.find(rows.keys[i]);
    if (it != build.end()) {
      joined.Append(rows.keys[i], it->second, rows.event_ts[i]);
    }
  }
  EXPECT_EQ(sink.Sorted(), OfflineWindows(joined, spec));
}

// ---------------------------------------------------------------------------
// Watermark edge cases through the whole pipeline (VectorSource).

TEST(PipelineTest, LateBeyondBoundDropsWithinBoundSurvives) {
  // lateness_bound 10. Batch 1 reaches ts 30 -> watermark 20. Batch 2
  // carries ts 25 (behind max but >= watermark: kept) and ts 5 (behind
  // watermark: dropped).
  std::vector<StreamBatch> batches;
  batches.push_back(MakeBatch({{1, 1, 10}, {1, 1, 30}}, 0));
  batches.push_back(MakeBatch({{1, 1, 25}, {1, 1, 5}}, 0));
  VectorSource source(std::move(batches));

  exec::Executor executor(2);
  WindowAggregator agg(WindowSpec::Tumbling(100));
  CollectWindowsSink sink;
  PipelineOptions opts;
  opts.partitions = 1;
  opts.lateness_bound = 10;
  auto pipeline = PipelineBuilder(&executor)
                      .From(&source)
                      .Aggregate(&agg)
                      .To(&sink)
                      .With(opts)
                      .Build();
  pipeline->Run();

  EXPECT_EQ(pipeline->late_dropped(), 1u);
  const auto results = sink.Sorted();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].window_start, 0u);
  EXPECT_EQ(results[0].count, 3u);  // 10, 30, 25 survive; 5 dropped
}

TEST(PipelineTest, WatermarkStallEmitsNothingUntilFlush) {
  // All records share one timestamp below the bound: the watermark never
  // leaves 0, so no window can close before the flush.
  auto make_batches = [] {
    std::vector<StreamBatch> batches;
    for (int i = 0; i < 8; ++i) {
      batches.push_back(MakeBatch({{1, 1, 5}, {2, 1, 5}}, 0));
    }
    return batches;
  };

  {
    // Without flush: stalled watermark -> zero emissions.
    VectorSource source(make_batches());
    exec::Executor executor(2);
    WindowAggregator agg(WindowSpec::Tumbling(10));
    CollectWindowsSink sink;
    PipelineOptions opts;
    opts.partitions = 2;
    opts.lateness_bound = 100;
    opts.flush_on_end = false;
    auto pipeline = PipelineBuilder(&executor)
                        .From(&source)
                        .Aggregate(&agg)
                        .To(&sink)
                        .With(opts)
                        .Build();
    pipeline->Run();
    EXPECT_EQ(pipeline->windows_emitted(), 0u);
    EXPECT_TRUE(sink.Sorted().empty());
  }
  {
    // With flush: both keys' [0,10) windows emit.
    VectorSource source(make_batches());
    exec::Executor executor(2);
    WindowAggregator agg(WindowSpec::Tumbling(10));
    CollectWindowsSink sink;
    PipelineOptions opts;
    opts.partitions = 2;
    opts.lateness_bound = 100;
    auto pipeline = PipelineBuilder(&executor)
                        .From(&source)
                        .Aggregate(&agg)
                        .To(&sink)
                        .With(opts)
                        .Build();
    pipeline->Run();
    const auto results = sink.Sorted();
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].key, 1u);
    EXPECT_EQ(results[0].count, 8u);
    EXPECT_EQ(results[1].key, 2u);
    EXPECT_EQ(results[1].count, 8u);
  }
}

// ---------------------------------------------------------------------------
// Backpressure.

/// A sink slow enough to back the partition queues up.
class SlowSink : public Sink {
 public:
  void OnBatch(uint32_t /*partition*/, const StreamBatch& batch) override {
    rows_.fetch_add(batch.size(), std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  uint64_t rows() const { return rows_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> rows_{0};
};

TEST(PipelineTest, DropOldestShedsUnderPressureAndCompletes) {
  workload::YcsbConfig cfg;
  cfg.record_count = 1024;
  cfg.operation_count = 50000;
  cfg.seed = 3;
  EventTimeOptions time;

  exec::Executor executor(2);
  YcsbSource source(cfg, time);
  SlowSink sink;
  PipelineOptions opts;
  opts.partitions = 1;
  opts.batch_rows = 128;  // ~390 batches against a ~1ms/batch sink
  opts.max_inflight = 2;
  opts.backpressure = BackpressurePolicy::kDropOldest;
  auto pipeline = PipelineBuilder(&executor)
                      .From(&source)
                      .To(&sink)
                      .With(opts)
                      .Build();
  pipeline->Run();

  EXPECT_GT(pipeline->batches_shed(), 0u);
  // Shed + processed accounts for every accepted record-batch; nothing
  // hangs and nothing is double-counted.
  EXPECT_LT(pipeline->records_processed(), cfg.operation_count);
  EXPECT_EQ(sink.rows(), pipeline->records_processed());
}

TEST(PipelineTest, BlockingBackpressureLosesNothing) {
  workload::YcsbConfig cfg;
  cfg.record_count = 256;
  cfg.operation_count = 4000;
  cfg.seed = 5;

  exec::Executor executor(2);
  YcsbSource source(cfg, EventTimeOptions{});
  SlowSink sink;
  PipelineOptions opts;
  opts.partitions = 2;
  opts.batch_rows = 64;
  opts.max_inflight = 1;  // worst case: pump blocks on every batch
  auto pipeline = PipelineBuilder(&executor)
                      .From(&source)
                      .To(&sink)
                      .With(opts)
                      .Build();
  pipeline->Run();
  EXPECT_EQ(pipeline->batches_shed(), 0u);
  EXPECT_EQ(pipeline->records_processed(), cfg.operation_count);
}

// ---------------------------------------------------------------------------
// Shutdown races and metrics under load (the TSan targets).

TEST(PipelineTest, StopRacesInFlightEmission) {
  // Stop() from another thread while Run() pumps and partitions emit;
  // under TSan this exercises pump/drain/stop interleavings. Run once
  // per iteration to vary the race window.
  for (int iter = 0; iter < 4; ++iter) {
    workload::YcsbConfig cfg;
    cfg.record_count = 512;
    cfg.operation_count = 200000;
    cfg.seed = 11 + static_cast<uint64_t>(iter);
    EventTimeOptions time;
    time.max_disorder = 32;

    exec::Executor executor(4);
    YcsbSource source(cfg, time);
    WindowAggregator agg(WindowSpec::Tumbling(64));
    CollectWindowsSink sink;
    PipelineOptions opts;
    opts.partitions = 4;
    opts.batch_rows = 256;
    opts.lateness_bound = 32;
    auto pipeline = PipelineBuilder(&executor)
                        .From(&source)
                        .Aggregate(&agg)
                        .To(&sink)
                        .With(opts)
                        .Build();

    std::thread stopper([&] {
      std::this_thread::sleep_for(std::chrono::microseconds(200 * iter));
      pipeline->Stop();
    });
    pipeline->Run();
    stopper.join();
    // Run() returned: every accepted batch is processed or discarded,
    // and destroying the pipeline (end of scope) must be safe.
  }
}

TEST(PipelineTest, MetricsScrapeUnderLoad) {
  workload::YcsbConfig cfg;
  cfg.record_count = 512;
  cfg.operation_count = 100000;
  cfg.seed = 21;
  EventTimeOptions time;
  time.max_disorder = 16;

  exec::Executor executor(4);
  YcsbSource source(cfg, time);
  WindowAggregator agg(WindowSpec::Tumbling(128));
  CollectWindowsSink sink;
  PipelineOptions opts;
  opts.partitions = 4;
  opts.batch_rows = 128;
  opts.lateness_bound = 16;
  opts.name = "scrape_me";
  auto pipeline = PipelineBuilder(&executor)
                      .From(&source)
                      .Aggregate(&agg)
                      .To(&sink)
                      .With(opts)
                      .Build();

  obs::Registry registry;
  pipeline->RegisterMetrics(&registry);

  std::atomic<bool> done{false};
  std::string last_dump;
  std::thread scraper([&] {
    while (!done.load(std::memory_order_acquire)) {
      last_dump = registry.DumpText();
    }
    last_dump = registry.DumpText();
  });
  pipeline->Run();
  done.store(true, std::memory_order_release);
  scraper.join();

  EXPECT_NE(last_dump.find("stream.scrape_me.batches"), std::string::npos);
  EXPECT_NE(last_dump.find("stream.scrape_me.records"), std::string::npos);
  EXPECT_NE(last_dump.find("stream.scrape_me.windows_emitted"),
            std::string::npos);
  EXPECT_NE(last_dump.find("stream.scrape_me.emit_latency_ns"),
            std::string::npos);
  EXPECT_GT(pipeline->windows_emitted(), 0u);
  EXPECT_GT(pipeline->emit_latency_histogram().count(), 0u);
}

// ---------------------------------------------------------------------------
// Builder knob resolution against the hw defaults.

TEST(PipelineBuilderTest, ZeroOptionsResolveToHwDefaults) {
  hw::MachineModel{}.ApplyAll();  // reset process knobs
  exec::Executor executor(2);
  StreamBatch b = MakeBatch({{1, 1, 1}}, 0);
  VectorSource source({b});
  auto pipeline = PipelineBuilder(&executor).From(&source).Build();
  EXPECT_EQ(pipeline->partitions(), 2u);  // executor worker count
  pipeline->Run();
  EXPECT_EQ(pipeline->records_processed(), 1u);
}

}  // namespace
}  // namespace hwstar::stream
