// Verifies the umbrella header is self-contained and the top-level API
// is reachable through it.

#include "hwstar/hwstar.h"

#include <gtest/gtest.h>

namespace {

TEST(UmbrellaTest, CoreTypesReachable) {
  hwstar::Status st = hwstar::Status::OK();
  EXPECT_TRUE(st.ok());
  hwstar::hw::MachineModel m = hwstar::hw::MachineModel::Desktop();
  hwstar::sim::MemoryHierarchy hier(m);
  EXPECT_GT(hier.Access(0x1000), 0u);
  hwstar::ops::Relation rel;
  rel.Append(1, 2);
  EXPECT_EQ(rel.size(), 1u);
  hwstar::kv::KvStore store;
  store.Put(1, 2);
  EXPECT_EQ(store.Get(1).value(), 2u);
  hwstar::engine::Query q;
  EXPECT_EQ(q.input, nullptr);
}

}  // namespace
