#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "hwstar/exec/affinity.h"
#include "hwstar/exec/morsel.h"
#include "hwstar/exec/task_scheduler.h"
#include "hwstar/exec/thread_pool.h"

namespace hwstar::exec {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count](uint32_t) { count.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WorkerIdsInRange) {
  ThreadPool pool(3);
  std::atomic<uint32_t> max_id{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&max_id](uint32_t id) {
      uint32_t cur = max_id.load();
      while (id > cur && !max_id.compare_exchange_weak(cur, id)) {
      }
    });
  }
  pool.WaitIdle();
  EXPECT_LT(max_id.load(), 3u);
  EXPECT_EQ(pool.num_threads(), 3u);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not hang
}

TEST(ThreadPoolTest, ReusableAcrossWaves) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&count](uint32_t) { count.fetch_add(1); });
    }
    pool.WaitIdle();
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, SubmitAfterShutdownFailsCleanly) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  EXPECT_TRUE(pool.Submit([&count](uint32_t) { count.fetch_add(1); }));
  pool.Shutdown();
  EXPECT_EQ(count.load(), 1);  // queued work drains before shutdown completes
  EXPECT_FALSE(pool.Submit([&count](uint32_t) { count.fetch_add(1); }));
  EXPECT_FALSE(pool.TrySubmit([&count](uint32_t) { count.fetch_add(1); }, 8));
  EXPECT_EQ(count.load(), 1);
  pool.Shutdown();  // idempotent
}

TEST(ThreadPoolTest, TrySubmitEnforcesQueueBound) {
  ThreadPool pool(1);
  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  // Park the single worker so submissions accumulate in the queue.
  pool.Submit([&](uint32_t) {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return release; });
  });
  while (pool.queue_depth() != 0) std::this_thread::yield();

  std::atomic<int> done{0};
  EXPECT_TRUE(pool.TrySubmit([&done](uint32_t) { done.fetch_add(1); }, 2));
  EXPECT_TRUE(pool.TrySubmit([&done](uint32_t) { done.fetch_add(1); }, 2));
  // Queue is at the bound: backpressure instead of unbounded growth.
  EXPECT_FALSE(pool.TrySubmit([&done](uint32_t) { done.fetch_add(1); }, 2));
  EXPECT_EQ(pool.queue_depth(), 2u);
  // Unbounded submit still accepts.
  EXPECT_TRUE(pool.Submit([&done](uint32_t) { done.fetch_add(1); }));

  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
  pool.WaitIdle();
  EXPECT_EQ(done.load(), 3);
}

TEST(TaskSchedulerTest, RunsAllTasks) {
  TaskScheduler sched(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    sched.Submit([&count](uint32_t) { count.fetch_add(1); });
  }
  sched.WaitAll();
  EXPECT_EQ(count.load(), 200);
}

TEST(TaskSchedulerTest, StealsFromLoadedWorker) {
  TaskScheduler sched(4);
  std::atomic<int> count{0};
  // Pile everything on worker 0; others must steal to finish quickly.
  for (int i = 0; i < 100; ++i) {
    sched.Submit(
        [&count](uint32_t) {
          volatile uint64_t sink = 0;
          for (int k = 0; k < 50000; ++k) sink += static_cast<uint64_t>(k);
          count.fetch_add(1);
        },
        /*preferred_worker=*/0);
  }
  sched.WaitAll();
  EXPECT_EQ(count.load(), 100);
  EXPECT_GT(sched.stats().steals, 0u);
}

TEST(TaskSchedulerTest, TasksCanSubmitTasks) {
  TaskScheduler sched(2);
  std::atomic<int> count{0};
  sched.Submit([&](uint32_t) {
    for (int i = 0; i < 10; ++i) {
      sched.Submit([&count](uint32_t) { count.fetch_add(1); });
    }
  });
  sched.WaitAll();
  EXPECT_EQ(count.load(), 10);
}

TEST(MorselDispenserTest, CoversEntireRangeExactlyOnce) {
  MorselDispenser dispenser(1000, 64);
  std::vector<bool> covered(1000, false);
  Morsel m;
  while (dispenser.Next(&m)) {
    for (uint64_t i = m.begin; i < m.end; ++i) {
      EXPECT_FALSE(covered[i]);
      covered[i] = true;
    }
  }
  for (bool c : covered) EXPECT_TRUE(c);
}

TEST(MorselDispenserTest, LastMorselClamped) {
  MorselDispenser dispenser(100, 64);
  Morsel m;
  ASSERT_TRUE(dispenser.Next(&m));
  EXPECT_EQ(m.size(), 64u);
  ASSERT_TRUE(dispenser.Next(&m));
  EXPECT_EQ(m.begin, 64u);
  EXPECT_EQ(m.end, 100u);
  EXPECT_FALSE(dispenser.Next(&m));
}

TEST(MorselDispenserTest, EmptyInputYieldsNothing) {
  MorselDispenser dispenser(0, 64);
  Morsel m;
  EXPECT_FALSE(dispenser.Next(&m));
}

TEST(ParallelForTest, MorselSumMatchesSequential) {
  ThreadPool pool(4);
  const uint64_t n = 100000;
  std::vector<int64_t> data(n);
  std::iota(data.begin(), data.end(), 0);
  std::atomic<int64_t> sum{0};
  ParallelForMorsels(&pool, n, 1024, [&](uint32_t, Morsel m) {
    int64_t local = 0;
    for (uint64_t i = m.begin; i < m.end; ++i) local += data[i];
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), static_cast<int64_t>(n * (n - 1) / 2));
}

TEST(ParallelForTest, StaticSplitCoversRange) {
  ThreadPool pool(3);
  const uint64_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  ParallelForStatic(&pool, n, [&](uint32_t, Morsel m) {
    for (uint64_t i = m.begin; i < m.end; ++i) hits[i].fetch_add(1);
  });
  for (uint64_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelForTest, StaticWithFewerItemsThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> total{0};
  ParallelForStatic(&pool, 3, [&](uint32_t, Morsel m) {
    total.fetch_add(static_cast<int>(m.size()));
  });
  EXPECT_EQ(total.load(), 3);
}

TEST(AffinityTest, PinToCoreZeroWorksOnLinux) {
  Status s = PinCurrentThreadToCore(0);
#if defined(__linux__)
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_GE(CurrentCore(), 0);
#else
  EXPECT_EQ(s.code(), StatusCode::kUnimplemented);
#endif
}

TEST(AffinityTest, OutOfRangeCoreRejected) {
#if defined(__linux__)
  Status s = PinCurrentThreadToCore(100000);
  EXPECT_FALSE(s.ok());
#endif
}

}  // namespace
}  // namespace hwstar::exec
