#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "hwstar/exec/affinity.h"
#include "hwstar/exec/executor.h"
#include "hwstar/exec/morsel.h"

namespace hwstar::exec {
namespace {

TEST(ExecutorTest, RunsSubmittedTasks) {
  Executor pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count](uint32_t) { count.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 100);
  EXPECT_EQ(pool.tasks_run(), 100u);
  const ExecutorStats stats = pool.stats();
  EXPECT_EQ(stats.local_pops + stats.steals, 100u);
}

TEST(ExecutorTest, WorkerIdsInRange) {
  Executor pool(3);
  std::atomic<uint32_t> max_id{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&max_id](uint32_t id) {
      uint32_t cur = max_id.load();
      while (id > cur && !max_id.compare_exchange_weak(cur, id)) {
      }
    });
  }
  pool.WaitIdle();
  EXPECT_LT(max_id.load(), 3u);
  EXPECT_EQ(pool.num_threads(), 3u);
}

TEST(ExecutorTest, WaitIdleOnEmptyExecutorReturns) {
  Executor pool(2);
  pool.WaitIdle();  // must not hang
}

TEST(ExecutorTest, ReusableAcrossWaves) {
  Executor pool(2);
  std::atomic<int> count{0};
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&count](uint32_t) { count.fetch_add(1); });
    }
    pool.WaitIdle();
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ExecutorTest, SubmitAfterShutdownFailsCleanly) {
  Executor pool(2);
  std::atomic<int> count{0};
  EXPECT_TRUE(pool.Submit([&count](uint32_t) { count.fetch_add(1); }));
  pool.Shutdown();
  EXPECT_EQ(count.load(), 1);  // queued work drains before shutdown completes
  EXPECT_FALSE(pool.Submit([&count](uint32_t) { count.fetch_add(1); }));
  EXPECT_FALSE(pool.TrySubmit([&count](uint32_t) { count.fetch_add(1); }, 8));
  EXPECT_EQ(count.load(), 1);
  pool.Shutdown();  // idempotent
}

TEST(ExecutorTest, TrySubmitEnforcesQueueBound) {
  Executor pool(1);
  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  // Park the single worker so submissions accumulate unclaimed.
  pool.Submit([&](uint32_t) {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return release; });
  });
  while (pool.queue_depth() != 0) std::this_thread::yield();

  std::atomic<int> done{0};
  EXPECT_TRUE(pool.TrySubmit([&done](uint32_t) { done.fetch_add(1); }, 2));
  EXPECT_TRUE(pool.TrySubmit([&done](uint32_t) { done.fetch_add(1); }, 2));
  // Queue is at the bound: backpressure instead of unbounded growth.
  EXPECT_FALSE(pool.TrySubmit([&done](uint32_t) { done.fetch_add(1); }, 2));
  EXPECT_EQ(pool.queue_depth(), 2u);
  // Unbounded submit still accepts.
  EXPECT_TRUE(pool.Submit([&done](uint32_t) { done.fetch_add(1); }));

  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
  pool.WaitIdle();
  EXPECT_EQ(done.load(), 3);
}

TEST(ExecutorTest, StealsFromLoadedWorker) {
  // Whether a steal lands in a given run is scheduling luck (worker 0
  // can drain its deque before the others wake, especially on few
  // cores), so each attempt first parks worker 0 in a blocker task and
  // only then piles the work onto its deque: while worker 0 sleeps, the
  // thief workers get scheduled against a full deque they alone can
  // drain. The probabilistic assertion still gets a bounded retry on
  // top; completion is checked deterministically every attempt.
  uint64_t steals_seen = 0;
  for (int attempt = 0; attempt < 10 && steals_seen == 0; ++attempt) {
    Executor pool(4);
    std::atomic<int> count{0};
    std::atomic<bool> blocker_running{false};
    pool.Submit(
        [&](uint32_t) {
          blocker_running.store(true);
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
          count.fetch_add(1);
        },
        /*preferred_worker=*/0);
    while (!blocker_running.load()) std::this_thread::yield();
    // Pile everything on worker 0; others must steal to finish quickly.
    for (int i = 0; i < 100; ++i) {
      pool.Submit(
          [&count](uint32_t) {
            volatile uint64_t sink = 0;
            for (int k = 0; k < 50000; ++k)
              sink = sink + static_cast<uint64_t>(k);
            count.fetch_add(1);
          },
          /*preferred_worker=*/0);
    }
    pool.WaitIdle();
    EXPECT_EQ(count.load(), 101);
    steals_seen = pool.stats().steals;
  }
  EXPECT_GT(steals_seen, 0u);
}

TEST(ExecutorTest, SkewedSubmissionStealRateBalancesLoad) {
  // The steal-rate assertion: with every task pinned to one worker's
  // deque, the only way any other worker runs anything is by stealing.
  // Track which worker ran each task; everything not run by worker 0
  // must show up in the steal counter.
  // Whether a steal actually lands in a given run is scheduling luck
  // (worker 0 can drain the whole deque before the others wake), so each
  // attempt parks worker 0 in a blocker task before the pile-on, and the
  // probabilistic "some steal happened" assertion gets a bounded retry;
  // the accounting invariants are checked deterministically every time.
  constexpr int kTasks = 200;
  uint64_t steals_seen = 0;
  for (int attempt = 0; attempt < 10 && steals_seen == 0; ++attempt) {
    Executor pool(4);
    std::atomic<int> ran_elsewhere{0};
    std::atomic<int> count{0};
    std::atomic<bool> blocker_running{false};
    pool.Submit(
        [&](uint32_t worker) {
          blocker_running.store(true);
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
          if (worker != 0) ran_elsewhere.fetch_add(1);
          count.fetch_add(1);
        },
        /*preferred_worker=*/0);
    while (!blocker_running.load()) std::this_thread::yield();
    for (int i = 0; i < kTasks; ++i) {
      pool.Submit(
          [&](uint32_t worker) {
            volatile uint64_t sink = 0;
            for (int k = 0; k < 20000; ++k)
              sink = sink + static_cast<uint64_t>(k);
            if (worker != 0) ran_elsewhere.fetch_add(1);
            count.fetch_add(1);
          },
          /*preferred_worker=*/0);
    }
    pool.WaitIdle();
    const ExecutorStats stats = pool.stats();
    // kTasks piled on plus the blocker.
    EXPECT_EQ(count.load(), kTasks + 1);
    EXPECT_EQ(stats.local_pops + stats.steals,
              static_cast<uint64_t>(kTasks) + 1);
    // Every task that ran off worker 0 was necessarily a steal.
    EXPECT_EQ(stats.steals, static_cast<uint64_t>(ran_elsewhere.load()));
    steals_seen = stats.steals;
  }
  EXPECT_GT(steals_seen, 0u);
}

TEST(ExecutorTest, TasksCanSubmitTasks) {
  Executor pool(2);
  std::atomic<int> count{0};
  pool.Submit([&](uint32_t) {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&count](uint32_t) { count.fetch_add(1); });
    }
  });
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 10);
}

TEST(ExecutorTest, PinnedWorkersRunTasks) {
  ExecutorOptions options;
  options.num_threads = 2;
  options.pin_threads = true;
  Executor pool(options);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&count](uint32_t) { count.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 50);
}

// --- Shutdown races -------------------------------------------------------
// The drain handshake (submitting_/queued_ settle) is what these hammer:
// every submit that returned true must run, even when it races Shutdown.

TEST(ExecutorShutdownRaceTest, ConcurrentTrySubmitVsShutdown) {
  for (int round = 0; round < 20; ++round) {
    auto pool = std::make_unique<Executor>(2);
    std::atomic<uint64_t> accepted{0};
    std::atomic<uint64_t> ran{0};
    std::atomic<bool> stop{false};
    std::vector<std::thread> submitters;
    for (int t = 0; t < 3; ++t) {
      submitters.emplace_back([&] {
        while (!stop.load(std::memory_order_acquire)) {
          if (pool->TrySubmit(
                  [&ran](uint32_t) {
                    ran.fetch_add(1, std::memory_order_relaxed);
                  },
                  /*max_queue_depth=*/64)) {
            accepted.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    // Let the submitters build up steam, then shut down under fire.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    pool->Shutdown();
    stop.store(true, std::memory_order_release);
    for (auto& t : submitters) t.join();
    // Shutdown drains: every accepted task ran, none were stranded.
    EXPECT_EQ(ran.load(), accepted.load());
  }
}

TEST(ExecutorShutdownRaceTest, TasksSubmittingDuringDrain) {
  for (int round = 0; round < 20; ++round) {
    auto pool = std::make_unique<Executor>(2);
    std::atomic<uint64_t> accepted{0};
    std::atomic<uint64_t> ran{0};
    // Self-propagating tasks: each run tries to submit a successor, so
    // submissions keep arriving from *inside* workers while Shutdown
    // drains. Accepted successors must still run.
    std::function<void(uint32_t)> chain = [&](uint32_t) {
      ran.fetch_add(1, std::memory_order_relaxed);
      if (pool->Submit(chain)) {
        accepted.fetch_add(1, std::memory_order_relaxed);
      }
    };
    for (int i = 0; i < 8; ++i) {
      if (pool->Submit(chain)) accepted.fetch_add(1);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    pool->Shutdown();
    EXPECT_EQ(ran.load(), accepted.load());
  }
}

TEST(ExecutorShutdownRaceTest, WaitIdleWithStealingInFlight) {
  Executor pool(4);
  std::atomic<uint64_t> ran{0};
  constexpr int kWaves = 10;
  constexpr int kTasksPerWave = 64;
  std::vector<std::thread> waiters;
  std::atomic<bool> stop{false};
  // Concurrent WaitIdle callers while skewed submissions force steals.
  for (int t = 0; t < 2; ++t) {
    waiters.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) pool.WaitIdle();
    });
  }
  for (int wave = 0; wave < kWaves; ++wave) {
    for (int i = 0; i < kTasksPerWave; ++i) {
      pool.Submit(
          [&ran](uint32_t) {
            volatile uint64_t sink = 0;
            for (int k = 0; k < 2000; ++k) sink = sink + static_cast<uint64_t>(k);
            ran.fetch_add(1, std::memory_order_relaxed);
          },
          /*preferred_worker=*/0);
    }
    pool.WaitIdle();
    EXPECT_EQ(ran.load(), static_cast<uint64_t>((wave + 1) * kTasksPerWave));
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : waiters) t.join();
  EXPECT_EQ(pool.queue_depth(), 0u);
}

// --- Morsels --------------------------------------------------------------

TEST(MorselDispenserTest, CoversEntireRangeExactlyOnce) {
  MorselDispenser dispenser(1000, 64);
  std::vector<bool> covered(1000, false);
  Morsel m;
  while (dispenser.Next(&m)) {
    for (uint64_t i = m.begin; i < m.end; ++i) {
      EXPECT_FALSE(covered[i]);
      covered[i] = true;
    }
  }
  for (bool c : covered) EXPECT_TRUE(c);
}

TEST(MorselDispenserTest, LastMorselClamped) {
  MorselDispenser dispenser(100, 64);
  Morsel m;
  ASSERT_TRUE(dispenser.Next(&m));
  EXPECT_EQ(m.size(), 64u);
  ASSERT_TRUE(dispenser.Next(&m));
  EXPECT_EQ(m.begin, 64u);
  EXPECT_EQ(m.end, 100u);
  EXPECT_FALSE(dispenser.Next(&m));
}

TEST(MorselDispenserTest, EmptyInputYieldsNothing) {
  MorselDispenser dispenser(0, 64);
  Morsel m;
  EXPECT_FALSE(dispenser.Next(&m));
}

TEST(MorselDispenserTest, ExhaustedDispenserStaysExhausted) {
  // The relaxed-load fast path must keep answering false (idle workers
  // poll Next after exhaustion; they must not see a morsel again).
  MorselDispenser dispenser(128, 64);
  Morsel m;
  while (dispenser.Next(&m)) {
  }
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(dispenser.Next(&m));
}

TEST(MorselDispenserTest, DefaultMorselSizeIsTheSharedConstant) {
  MorselDispenser dispenser(1 << 20);
  EXPECT_EQ(dispenser.morsel_size(), kDefaultMorselRows);
}

TEST(ParallelForTest, MorselSumMatchesSequential) {
  Executor pool(4);
  const uint64_t n = 100000;
  std::vector<int64_t> data(n);
  std::iota(data.begin(), data.end(), 0);
  std::atomic<int64_t> sum{0};
  ParallelForMorsels(&pool, n, 1024, [&](uint32_t, Morsel m) {
    int64_t local = 0;
    for (uint64_t i = m.begin; i < m.end; ++i) local += data[i];
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), static_cast<int64_t>(n * (n - 1) / 2));
}

TEST(ParallelForTest, StaticSplitCoversRange) {
  Executor pool(3);
  const uint64_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  ParallelForStatic(&pool, n, [&](uint32_t, Morsel m) {
    for (uint64_t i = m.begin; i < m.end; ++i) hits[i].fetch_add(1);
  });
  for (uint64_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelForTest, StaticWithFewerItemsThanThreads) {
  Executor pool(8);
  std::atomic<int> total{0};
  ParallelForStatic(&pool, 3, [&](uint32_t, Morsel m) {
    total.fetch_add(static_cast<int>(m.size()));
  });
  EXPECT_EQ(total.load(), 3);
}

TEST(AffinityTest, PinToCoreZeroWorksOnLinux) {
  Status s = PinCurrentThreadToCore(0);
#if defined(__linux__)
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_GE(CurrentCore(), 0);
#else
  EXPECT_EQ(s.code(), StatusCode::kUnimplemented);
#endif
}

TEST(AffinityTest, OutOfRangeCoreRejected) {
#if defined(__linux__)
  Status s = PinCurrentThreadToCore(100000);
  EXPECT_FALSE(s.ok());
#endif
}

}  // namespace
}  // namespace hwstar::exec
