#include <gtest/gtest.h>

#include <thread>

#include "hwstar/exec/executor.h"
#include "hwstar/ops/concurrent_hash_table.h"
#include "hwstar/ops/hash_table.h"
#include "hwstar/ops/join_nop.h"
#include "hwstar/workload/distributions.h"

namespace hwstar::ops {
namespace {

TEST(ConcurrentHashTableTest, SerialInsertFind) {
  ConcurrentHashTable table(100);
  table.Insert(5, 50);
  table.Insert(7, 70);
  uint64_t v = 0;
  EXPECT_TRUE(table.Find(5, &v));
  EXPECT_EQ(v, 50u);
  EXPECT_FALSE(table.Find(6, &v));
  EXPECT_EQ(table.CountMatches(7), 1u);
  EXPECT_EQ(table.size(), 2u);
}

TEST(ConcurrentHashTableTest, DuplicatesCounted) {
  ConcurrentHashTable table(100);
  for (int i = 0; i < 5; ++i) table.Insert(9, static_cast<uint64_t>(i));
  EXPECT_EQ(table.CountMatches(9), 5u);
  std::vector<uint64_t> values;
  EXPECT_EQ(table.Probe(9, [&](uint64_t v) { values.push_back(v); }), 5u);
  EXPECT_EQ(values.size(), 5u);
}

TEST(ConcurrentHashTableTest, ConcurrentBuildFindsEverything) {
  const uint64_t n = 200000;
  ConcurrentHashTable table(n);
  const uint32_t kThreads = 4;
  std::vector<std::thread> workers;
  for (uint32_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&table, t, n] {
      for (uint64_t k = t; k < n; k += kThreads) {
        table.Insert(k, k * 2);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(table.size(), n);
  uint64_t v = 0;
  for (uint64_t k = 0; k < n; k += 997) {
    ASSERT_TRUE(table.Find(k, &v)) << k;
    EXPECT_EQ(v, k * 2);
  }
  EXPECT_FALSE(table.Find(n + 5, &v));
}

TEST(ConcurrentHashTableTest, ConcurrentDuplicateKeys) {
  // All threads hammer the same few keys: every insert must land.
  ConcurrentHashTable table(4000);
  std::vector<std::thread> workers;
  for (uint32_t t = 0; t < 4; ++t) {
    workers.emplace_back([&table] {
      for (int i = 0; i < 500; ++i) table.Insert(42, 1);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(table.CountMatches(42), 2000u);
}

TEST(ParallelBuildJoinTest, MatchesSerialJoin) {
  auto build = workload::MakeBuildRelation(50000, 7);
  auto probe = workload::MakeProbeRelation(200000, 50000, 0.5, 8);
  exec::Executor pool(2);
  NoPartitionJoinOptions serial;
  NoPartitionJoinOptions parallel;
  parallel.pool = &pool;
  parallel.parallel_build = true;
  EXPECT_EQ(NoPartitionHashJoin(build, probe, serial).matches,
            NoPartitionHashJoin(build, probe, parallel).matches);
}

TEST(ParallelBuildJoinTest, MaterializedPairsMatch) {
  auto build = workload::MakeBuildRelation(1000, 9);
  auto probe = workload::MakeProbeRelation(5000, 1000, 0.0, 10);
  exec::Executor pool(2);
  NoPartitionJoinOptions serial;
  serial.materialize = true;
  NoPartitionJoinOptions parallel = serial;
  parallel.pool = &pool;
  parallel.parallel_build = true;
  auto a = NoPartitionHashJoin(build, probe, serial);
  auto b = NoPartitionHashJoin(build, probe, parallel);
  EXPECT_EQ(a.matches, b.matches);
  EXPECT_EQ(a.pairs.size(), b.pairs.size());
}

/// CountMatchesBatch must equal the scalar loop at every prefetch
/// distance.
class PrefetchDistance : public ::testing::TestWithParam<uint32_t> {};

TEST_P(PrefetchDistance, BatchEqualsScalar) {
  const uint32_t distance = GetParam();
  auto build = workload::MakeBuildRelation(20000, 11);
  LinearProbeTable table(build.size());
  for (uint64_t i = 0; i < build.size(); ++i) {
    table.Insert(build.keys[i], build.payloads[i]);
  }
  auto probes = workload::UniformKeys(50000, 40000, 12);  // ~50% hits
  uint64_t scalar = 0;
  for (uint64_t k : probes) scalar += table.CountMatches(k);
  EXPECT_EQ(table.CountMatchesBatch(probes.data(), probes.size(), distance),
            scalar);
}

INSTANTIATE_TEST_SUITE_P(Distances, PrefetchDistance,
                         ::testing::Values(0u, 1u, 4u, 8u, 32u, 100000u));

}  // namespace
}  // namespace hwstar::ops
