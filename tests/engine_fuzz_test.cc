// Randomized consistency testing of the engine: random expression trees
// must evaluate identically row-at-a-time and batch-at-a-time, and random
// queries must return identical results under all three execution models.
// Deterministic seeds keep failures reproducible.

#include <gtest/gtest.h>

#include "hwstar/common/random.h"
#include "hwstar/engine/planner.h"

namespace hwstar::engine {
namespace {

using storage::ColumnStore;
using storage::Schema;
using storage::Table;
using storage::TypeId;

constexpr size_t kCols = 4;

ColumnStore MakeStore(uint64_t rows, uint64_t seed) {
  Schema schema({{"c0", TypeId::kInt64},
                 {"c1", TypeId::kInt64},
                 {"c2", TypeId::kInt64},
                 {"c3", TypeId::kInt64}});
  Table t(schema);
  Xoshiro256 rng(seed);
  for (uint64_t i = 0; i < rows; ++i) {
    for (size_t c = 0; c < kCols; ++c) {
      // Small magnitudes so products cannot overflow through a few
      // multiplication levels.
      t.column(c).AppendInt64(rng.NextInRange(-50, 50));
    }
  }
  EXPECT_TRUE(t.SetRowCount(rows).ok());
  return std::move(ColumnStore::FromTable(t)).value();
}

/// Random expression tree of bounded depth. Arithmetic nodes dominate;
/// comparisons/logic appear so both value and boolean shapes are covered.
ExprPtr RandomExpr(Xoshiro256* rng, uint32_t depth) {
  if (depth == 0 || rng->NextBounded(4) == 0) {
    return rng->NextBounded(2) == 0
               ? Col(rng->NextBounded(kCols))
               : Lit(rng->NextInRange(-20, 20));
  }
  ExprPtr l = RandomExpr(rng, depth - 1);
  ExprPtr r = RandomExpr(rng, depth - 1);
  switch (rng->NextBounded(10)) {
    case 0:
    case 1:
      return Add(std::move(l), std::move(r));
    case 2:
      return Sub(std::move(l), std::move(r));
    case 3:
      return Mul(std::move(l), std::move(r));
    case 4:
      return Lt(std::move(l), std::move(r));
    case 5:
      return Le(std::move(l), std::move(r));
    case 6:
      return Gt(std::move(l), std::move(r));
    case 7:
      return Eq(std::move(l), std::move(r));
    case 8:
      return And(std::move(l), std::move(r));
    default:
      return Or(std::move(l), std::move(r));
  }
}

class ExpressionFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExpressionFuzz, BatchMatchesScalar) {
  const uint64_t seed = GetParam();
  Xoshiro256 rng(seed);
  ColumnStore store = MakeStore(512, seed + 1);
  for (int round = 0; round < 20; ++round) {
    ExprPtr e = RandomExpr(&rng, 3);
    std::vector<int64_t> batch(store.num_rows());
    e->EvalBatch(store, 0, store.num_rows(), batch.data());
    for (uint64_t row = 0; row < store.num_rows(); ++row) {
      ASSERT_EQ(batch[row], e->Eval(store, row))
          << "seed=" << seed << " round=" << round
          << " expr=" << e->ToString() << " row=" << row;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExpressionFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

/// Random comparison-shaped filter over one or two columns, so some of
/// the generated queries hit the fused template and others fall back.
ExprPtr RandomFilter(Xoshiro256* rng) {
  auto cmp = [&](ExprPtr l, ExprPtr r) -> ExprPtr {
    switch (rng->NextBounded(4)) {
      case 0:
        return Lt(std::move(l), std::move(r));
      case 1:
        return Le(std::move(l), std::move(r));
      case 2:
        return Gt(std::move(l), std::move(r));
      default:
        return Ge(std::move(l), std::move(r));
    }
  };
  ExprPtr a = cmp(Col(rng->NextBounded(kCols)),
                  Lit(rng->NextInRange(-40, 40)));
  if (rng->NextBounded(2) == 0) return a;
  ExprPtr b = cmp(Col(rng->NextBounded(kCols)),
                  Lit(rng->NextInRange(-40, 40)));
  return And(std::move(a), std::move(b));
}

class QueryFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QueryFuzz, AllModelsAgreeOnRandomQueries) {
  const uint64_t seed = GetParam();
  Xoshiro256 rng(seed);
  ColumnStore store = MakeStore(3000, seed + 7);
  for (int round = 0; round < 15; ++round) {
    Query q;
    q.input = &store;
    q.filter = RandomFilter(&rng);
    switch (rng.NextBounded(3)) {
      case 0:
        q.aggregate = nullptr;  // COUNT(*)
        break;
      case 1:
        q.aggregate = Col(rng.NextBounded(kCols));
        break;
      default:
        q.aggregate =
            Mul(Col(rng.NextBounded(kCols)), Col(rng.NextBounded(kCols)));
        break;
    }
    if (rng.NextBounded(4) == 0) q.group_by = rng.NextBounded(kCols);

    QueryResult volcano = ExecuteVolcano(q);
    VectorizedOptions vopts;
    vopts.batch_size = 1 + static_cast<uint32_t>(rng.NextBounded(300));
    QueryResult vectorized = ExecuteVectorized(q, vopts);
    QueryResult fused = ExecuteFused(q);

    ASSERT_EQ(volcano.sum, vectorized.sum)
        << "seed=" << seed << " round=" << round << " q=" << q.ToString();
    ASSERT_EQ(volcano.sum, fused.sum)
        << "seed=" << seed << " round=" << round << " q=" << q.ToString();
    ASSERT_EQ(volcano.rows_passed, fused.rows_passed);
    ASSERT_EQ(volcano.groups.size(), vectorized.groups.size());
    for (size_t g = 0; g < volcano.groups.size(); ++g) {
      ASSERT_EQ(volcano.groups[g].key, vectorized.groups[g].key);
      ASSERT_EQ(volcano.groups[g].sum, vectorized.groups[g].sum);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryFuzz,
                         ::testing::Values(11u, 12u, 13u, 14u, 15u));

}  // namespace
}  // namespace hwstar::engine
