#include <gtest/gtest.h>

#include <algorithm>

#include "hwstar/ops/hot_cold.h"
#include "hwstar/sim/flash_model.h"
#include "hwstar/workload/distributions.h"

namespace hwstar::ops {
namespace {

TEST(EstimatorTest, FrequentKeyScoresHigher) {
  ExponentialSmoothingEstimator est(0.1);
  uint64_t now = 0;
  for (int i = 0; i < 100; ++i) {
    est.Record(1, ++now);
    if (i % 10 == 0) est.Record(2, ++now);
  }
  EXPECT_GT(est.Estimate(1, now), est.Estimate(2, now));
  EXPECT_EQ(est.Estimate(999, now), 0.0);
}

TEST(EstimatorTest, EstimatesDecayOverTime) {
  ExponentialSmoothingEstimator est(0.1);
  est.Record(5, 10);
  const double fresh = est.Estimate(5, 10);
  const double stale = est.Estimate(5, 100);
  EXPECT_GT(fresh, stale);
  EXPECT_GT(stale, 0.0);
}

TEST(EstimatorTest, TopKOrdersByFrequency) {
  ExponentialSmoothingEstimator est(0.001);
  uint64_t now = 0;
  // Interleaved rounds: key k is accessed in rounds 0..9-k, so key 0 is
  // accessed 10 times, key 9 once, with similar recency profiles.
  for (uint64_t round = 0; round < 10; ++round) {
    for (uint64_t k = 0; k < 10; ++k) {
      if (round < 10 - k) est.Record(k, ++now);
    }
  }
  auto top3 = est.TopK(3, now);
  ASSERT_EQ(top3.size(), 3u);
  EXPECT_EQ(top3[0], 0u);
  EXPECT_EQ(top3[1], 1u);
  EXPECT_EQ(top3[2], 2u);
  // K larger than tracked keys returns all of them.
  EXPECT_EQ(est.TopK(100, now).size(), 10u);
}

TEST(EstimatorTest, SamplingStillFindsHotKeys) {
  // Window-scaled alpha: the trace is 200K accesses long.
  ExponentialSmoothingEstimator est(1e-5, 100);  // 10% sample
  auto trace = workload::ZipfKeys(200000, 10000, 0.9, 11);
  uint64_t now = 0;
  for (uint64_t k : trace) est.Record(k, ++now);
  // The sampled estimator must still rank the true hottest key first.
  auto top = est.TopK(1, now);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0], 0u);  // Zipf rank 0 is most frequent
  EXPECT_LT(est.tracked_keys(), 10000u);  // sampling skipped cold keys
}

TEST(LruTrackerTest, HitsAfterWarmup) {
  LruTracker lru(3);
  EXPECT_FALSE(lru.Access(1));
  EXPECT_FALSE(lru.Access(2));
  EXPECT_TRUE(lru.Access(1));
  EXPECT_FALSE(lru.Access(3));
  EXPECT_FALSE(lru.Access(4));  // evicts 2 (LRU)
  EXPECT_TRUE(lru.Access(1));
  EXPECT_FALSE(lru.Access(2));
  EXPECT_EQ(lru.hits(), 2u);
}

TEST(LruTrackerTest, HitRateComputed) {
  LruTracker lru(10);
  for (int rep = 0; rep < 10; ++rep) {
    for (uint64_t k = 0; k < 5; ++k) lru.Access(k);
  }
  EXPECT_GT(lru.hit_rate(), 0.85);
  lru.ResetStats();
  EXPECT_EQ(lru.hits(), 0u);
}

TEST(FixedSetHitRateTest, ComputesFraction) {
  std::vector<uint64_t> hot = {1, 2};
  std::vector<uint64_t> trace = {1, 2, 3, 1, 4};
  EXPECT_DOUBLE_EQ(FixedSetHitRate(hot, trace), 3.0 / 5.0);
  EXPECT_DOUBLE_EQ(FixedSetHitRate(hot, {}), 0.0);
}

TEST(HotColdQualityTest, EstimatorBeatsLruOnScans) {
  // The workload that defeats LRU: a hot set plus periodic full scans
  // that flush the LRU cache. The offline classifier is scan-resistant.
  const uint64_t kRecords = 2000;
  const uint64_t kHot = 100;
  std::vector<uint64_t> trace;
  hwstar::Xoshiro256 rng(3);
  for (int phase = 0; phase < 20; ++phase) {
    for (int i = 0; i < 500; ++i) {
      trace.push_back(rng.NextBounded(kHot));  // hot accesses
    }
    for (uint64_t k = 0; k < kRecords; ++k) trace.push_back(k);  // scan
  }

  // LRU with capacity = hot-set size.
  LruTracker lru(kHot);
  for (uint64_t k : trace) lru.Access(k);

  // Estimator with the same budget; alpha scaled to the 50K-access trace.
  ExponentialSmoothingEstimator est(2e-5);
  uint64_t now = 0;
  for (uint64_t k : trace) est.Record(k, ++now);
  auto hot_set = est.TopK(kHot, now);
  const double est_rate = FixedSetHitRate(hot_set, trace);

  EXPECT_GT(est_rate, lru.hit_rate());
}

}  // namespace
}  // namespace hwstar::ops

namespace hwstar::sim {
namespace {

TEST(FlashModelTest, CountsAndLatency) {
  FlashModel flash;
  EXPECT_DOUBLE_EQ(flash.Read(), 50.0);
  EXPECT_DOUBLE_EQ(flash.Write(), 200.0);
  EXPECT_EQ(flash.reads(), 1u);
  EXPECT_EQ(flash.writes(), 1u);
  EXPECT_DOUBLE_EQ(flash.total_latency_us(), 250.0);
  flash.ResetStats();
  EXPECT_EQ(flash.reads(), 0u);
}

TEST(FlashModelTest, WearFraction) {
  FlashModel flash;
  for (int i = 0; i < 3000; ++i) flash.Write();
  // 3000 writes over 1 block = full endurance budget.
  EXPECT_DOUBLE_EQ(flash.WearFraction(1), 1.0);
  EXPECT_DOUBLE_EQ(flash.WearFraction(10), 0.1);
  EXPECT_DOUBLE_EQ(flash.WearFraction(0), 0.0);
}

TEST(FlashModelTest, AsymmetryVisible) {
  FlashModel flash;
  EXPECT_GT(flash.Write(), flash.Read());
  EXPECT_GT(flash.Read(), flash.DramAccess());
}

}  // namespace
}  // namespace hwstar::sim
