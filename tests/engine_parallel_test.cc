#include <gtest/gtest.h>

#include "hwstar/engine/parallel.h"
#include "hwstar/ops/join_radix.h"
#include "hwstar/ops/partition.h"
#include "hwstar/workload/distributions.h"

namespace hwstar::engine {
namespace {

using storage::ColumnStore;
using storage::Schema;
using storage::Table;
using storage::TypeId;

ColumnStore MakeStore(uint64_t n) {
  Schema schema({{"a", TypeId::kInt64},
                 {"b", TypeId::kInt64},
                 {"g", TypeId::kInt64}});
  Table t(schema);
  for (uint64_t i = 0; i < n; ++i) {
    t.column(0).AppendInt64(static_cast<int64_t>(i));
    t.column(1).AppendInt64(static_cast<int64_t>((i * 37) % 500));
    t.column(2).AppendInt64(static_cast<int64_t>(i % 13));
  }
  EXPECT_TRUE(t.SetRowCount(n).ok());
  return std::move(ColumnStore::FromTable(t)).value();
}

Query MakeQuery(const ColumnStore& store) {
  Query q;
  q.input = &store;
  q.filter = And(Ge(Col(1), Lit(100)), Lt(Col(1), Lit(300)));
  q.aggregate = Col(0);
  return q;
}

TEST(VectorizedRangeTest, SubrangeSumsPartition) {
  ColumnStore store = MakeStore(10000);
  Query q = MakeQuery(store);
  VectorizedOptions whole;
  QueryResult full = ExecuteVectorized(q, whole);
  // Split at an arbitrary boundary; partial results must add up.
  VectorizedOptions lo, hi;
  lo.row_end = 3777;
  hi.row_begin = 3777;
  QueryResult a = ExecuteVectorized(q, lo);
  QueryResult b = ExecuteVectorized(q, hi);
  EXPECT_EQ(a.sum + b.sum, full.sum);
  EXPECT_EQ(a.rows_passed + b.rows_passed, full.rows_passed);
}

TEST(FusedRangeTest, SubrangeSumsPartition) {
  ColumnStore store = MakeStore(10000);
  Query q = MakeQuery(store);
  QueryResult full = ExecuteFused(q);
  QueryResult a = ExecuteFusedRange(q, 0, 5000);
  QueryResult b = ExecuteFusedRange(q, 5000, 10000);
  EXPECT_EQ(a.sum + b.sum, full.sum);
  EXPECT_EQ(a.rows_passed + b.rows_passed, full.rows_passed);
}

TEST(ParallelExecuteTest, MatchesSerialFused) {
  ColumnStore store = MakeStore(100000);
  Query q = MakeQuery(store);
  exec::Executor pool(2);
  ExecuteOptions opts;
  opts.model = ExecutionModel::kFused;
  QueryResult serial = Execute(q, opts);
  QueryResult parallel = ExecuteParallel(q, &pool, opts, 1 << 12);
  EXPECT_EQ(parallel.sum, serial.sum);
  EXPECT_EQ(parallel.rows_passed, serial.rows_passed);
}

TEST(ParallelExecuteTest, MatchesSerialVectorized) {
  ColumnStore store = MakeStore(100000);
  Query q = MakeQuery(store);
  exec::Executor pool(2);
  ExecuteOptions opts;
  opts.model = ExecutionModel::kVectorized;
  opts.batch_size = 512;
  QueryResult serial = Execute(q, opts);
  QueryResult parallel = ExecuteParallel(q, &pool, opts, 3000);
  EXPECT_EQ(parallel.sum, serial.sum);
  EXPECT_EQ(parallel.rows_passed, serial.rows_passed);
}

TEST(ParallelExecuteTest, GroupedMergesCorrectly) {
  ColumnStore store = MakeStore(50000);
  Query q = MakeQuery(store);
  q.group_by = 2;
  exec::Executor pool(2);
  ExecuteOptions opts;
  opts.model = ExecutionModel::kVectorized;
  QueryResult serial = Execute(q, opts);
  QueryResult parallel = ExecuteParallel(q, &pool, opts, 4096);
  ASSERT_EQ(parallel.groups.size(), serial.groups.size());
  for (size_t g = 0; g < serial.groups.size(); ++g) {
    EXPECT_EQ(parallel.groups[g].key, serial.groups[g].key);
    EXPECT_EQ(parallel.groups[g].sum, serial.groups[g].sum);
    EXPECT_EQ(parallel.groups[g].count, serial.groups[g].count);
  }
}

TEST(ParallelExecuteTest, NullPoolFallsBackToSerial) {
  ColumnStore store = MakeStore(1000);
  Query q = MakeQuery(store);
  ExecuteOptions opts;
  opts.model = ExecutionModel::kFused;
  EXPECT_EQ(ExecuteParallel(q, nullptr, opts).sum, Execute(q, opts).sum);
}

TEST(ParallelExecuteTest, EmptyInput) {
  ColumnStore store = MakeStore(0);
  Query q = MakeQuery(store);
  exec::Executor pool(2);
  ExecuteOptions opts;
  EXPECT_EQ(ExecuteParallel(q, &pool, opts).sum, 0);
}

/// Morsel-size sweep: result invariant to morsel granularity.
class ParallelMorselSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelMorselSweep, ResultInvariant) {
  ColumnStore store = MakeStore(33333);
  Query q = MakeQuery(store);
  exec::Executor pool(2);
  ExecuteOptions opts;
  opts.model = ExecutionModel::kFused;
  QueryResult serial = Execute(q, opts);
  QueryResult parallel = ExecuteParallel(q, &pool, opts, GetParam());
  EXPECT_EQ(parallel.sum, serial.sum);
  EXPECT_EQ(parallel.rows_passed, serial.rows_passed);
}

INSTANTIATE_TEST_SUITE_P(MorselSizes, ParallelMorselSweep,
                         ::testing::Values(1u, 7u, 1024u, 1u << 20));

}  // namespace
}  // namespace hwstar::engine

namespace hwstar::ops {
namespace {

TEST(BufferedPartitionTest, IdenticalToDirectScatter) {
  auto input = workload::MakeProbeRelation(20000, 5000, 0.3, 71);
  for (uint32_t bits : {1u, 4u, 8u, 12u}) {
    Relation direct_out, buffered_out;
    std::vector<uint64_t> direct_off, buffered_off;
    RadixPartition(input, bits, 0, &direct_out, &direct_off);
    RadixPartitionBuffered(input, bits, 0, &buffered_out, &buffered_off);
    EXPECT_EQ(direct_off, buffered_off) << bits;
    EXPECT_EQ(direct_out.keys, buffered_out.keys) << bits;
    EXPECT_EQ(direct_out.payloads, buffered_out.payloads) << bits;
  }
}

TEST(BufferedPartitionTest, EmptyInput) {
  Relation input, out;
  std::vector<uint64_t> off;
  RadixPartitionBuffered(input, 4, 0, &out, &off);
  EXPECT_EQ(out.size(), 0u);
  EXPECT_EQ(off.size(), 17u);
  EXPECT_EQ(off.back(), 0u);
}

TEST(BufferedRadixJoinTest, SameMatches) {
  auto build = workload::MakeBuildRelation(10000, 81);
  auto probe = workload::MakeProbeRelation(40000, 10000, 0.0, 82);
  RadixJoinOptions direct, buffered;
  direct.radix_bits = buffered.radix_bits = 8;
  buffered.buffered_scatter = true;
  EXPECT_EQ(RadixHashJoin(build, probe, direct).matches,
            RadixHashJoin(build, probe, buffered).matches);
}

}  // namespace
}  // namespace hwstar::ops
