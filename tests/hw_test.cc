#include <gtest/gtest.h>

#include "hwstar/hw/cycle_counter.h"
#include "hwstar/hw/machine_model.h"
#include "hwstar/hw/topology.h"

namespace hwstar::hw {
namespace {

TEST(TopologyTest, DiscoversSomething) {
  CpuTopology topo = DiscoverTopology();
  EXPECT_GE(topo.logical_cores, 1u);
  ASSERT_FALSE(topo.caches.empty());
  // At minimum an L1 data/unified cache with a sane line size.
  EXPECT_GT(topo.CacheSizeBytes(1), 0u);
  for (const auto& c : topo.caches) {
    EXPECT_GE(c.line_bytes, 16u);
    EXPECT_LE(c.line_bytes, 256u);
    EXPECT_GT(c.size_bytes, 0u);
  }
}

TEST(TopologyTest, CacheLevelsIncreaseInSize) {
  CpuTopology topo = DiscoverTopology();
  uint64_t prev = 0;
  for (const auto& c : topo.caches) {
    EXPECT_GE(c.size_bytes, prev);
    prev = c.size_bytes;
  }
}

TEST(TopologyTest, ToStringMentionsCores) {
  CpuTopology topo = DiscoverTopology();
  EXPECT_NE(topo.ToString().find("cores="), std::string::npos);
}

TEST(MachineModelTest, Server2013Shape) {
  MachineModel m = MachineModel::Server2013();
  ASSERT_EQ(m.caches.size(), 3u);
  EXPECT_LT(m.caches[0].size_bytes, m.caches[1].size_bytes);
  EXPECT_LT(m.caches[1].size_bytes, m.caches[2].size_bytes);
  EXPECT_LT(m.caches[0].hit_latency_cycles, m.caches[1].hit_latency_cycles);
  EXPECT_LT(m.caches[2].hit_latency_cycles, m.dram_latency_cycles);
  EXPECT_EQ(m.numa_nodes, 2u);
  EXPECT_GT(m.numa_remote_multiplier, 1.0);
}

TEST(MachineModelTest, ManyCoreHasNoL3) {
  MachineModel m = MachineModel::ManyCore();
  EXPECT_EQ(m.caches.size(), 2u);
  EXPECT_GT(m.cores, MachineModel::Server2013().cores);
}

TEST(MachineModelTest, DesktopIsUniformMemory) {
  MachineModel m = MachineModel::Desktop();
  EXPECT_EQ(m.numa_nodes, 1u);
  EXPECT_DOUBLE_EQ(m.numa_remote_multiplier, 1.0);
}

TEST(MachineModelTest, FromHostUsesDiscoveredCaches) {
  CpuTopology topo = DiscoverTopology();
  MachineModel m = MachineModel::FromHost(topo);
  EXPECT_EQ(m.cores, topo.logical_cores);
  EXPECT_EQ(m.caches.size(), topo.caches.size());
  EXPECT_EQ(m.caches[0].size_bytes, topo.caches[0].size_bytes);
}

TEST(MachineModelTest, EnergyRatiosAreHierarchical) {
  MachineModel m = MachineModel::Server2013();
  EXPECT_LT(m.energy_pj_l1_hit, m.energy_pj_l2_hit);
  EXPECT_LT(m.energy_pj_l2_hit, m.energy_pj_l3_hit);
  EXPECT_LT(m.energy_pj_l3_hit, m.energy_pj_dram);
  // DRAM should be roughly two orders of magnitude above L1.
  EXPECT_GT(m.energy_pj_dram / m.energy_pj_l1_hit, 50.0);
}

TEST(MachineModelTest, ToStringIsInformative) {
  std::string s = MachineModel::Server2013().ToString();
  EXPECT_NE(s.find("server2013"), std::string::npos);
  EXPECT_NE(s.find("dram="), std::string::npos);
}

TEST(CycleCounterTest, MonotonicNonDecreasing) {
  uint64_t a = ReadCycleCounter();
  volatile uint64_t sink = 0;
  for (int i = 0; i < 10000; ++i) sink += static_cast<uint64_t>(i);
  uint64_t b = ReadCycleCounter();
  EXPECT_GE(b, a);
}

TEST(CycleCounterTest, FrequencyEstimatePlausible) {
  double hz = EstimateCycleCounterHz();
  // Anything between 100 MHz and 10 GHz counts as plausible.
  EXPECT_GT(hz, 1e8);
  EXPECT_LT(hz, 1e10);
}

TEST(MachineModelTest, StreamKnobDefaultsAndClamping) {
  // Save/restore: the knobs are process-wide.
  const uint32_t rows_before = DefaultStreamBatchRows();
  const uint32_t inflight_before = DefaultStreamMaxInflight();
  const uint64_t bound_before = DefaultStreamLatenessBound();

  MachineModel{}.ApplyAll();
  EXPECT_EQ(DefaultStreamBatchRows(), 4096u);
  EXPECT_EQ(DefaultStreamMaxInflight(), 8u);
  EXPECT_EQ(DefaultStreamLatenessBound(), 1024u);

  SetDefaultStreamBatchRows(1);  // clamped up to 64
  EXPECT_EQ(DefaultStreamBatchRows(), 64u);
  SetDefaultStreamBatchRows(1u << 30);  // clamped down to 1M rows
  EXPECT_EQ(DefaultStreamBatchRows(), 1u << 20);
  SetDefaultStreamBatchRows(2048);
  EXPECT_EQ(DefaultStreamBatchRows(), 2048u);

  SetDefaultStreamMaxInflight(0);  // clamped up to 1
  EXPECT_EQ(DefaultStreamMaxInflight(), 1u);
  SetDefaultStreamMaxInflight(1 << 20);  // clamped down to 4096
  EXPECT_EQ(DefaultStreamMaxInflight(), 4096u);

  SetDefaultStreamLatenessBound(0);  // 0 is legal: nothing may be late
  EXPECT_EQ(DefaultStreamLatenessBound(), 0u);

  SetDefaultStreamBatchRows(rows_before);
  SetDefaultStreamMaxInflight(inflight_before);
  SetDefaultStreamLatenessBound(bound_before);
}

TEST(MachineModelTest, SyncKnobDefaultsAndClamping) {
  const uint32_t interval_before = DefaultEpochAdvanceInterval();
  const uint32_t batch_before = DefaultEpochRetireBatch();

  MachineModel{}.ApplyAll();
  EXPECT_EQ(DefaultEpochAdvanceInterval(), 64u);
  EXPECT_EQ(DefaultEpochRetireBatch(), 128u);

  SetDefaultEpochAdvanceInterval(0);  // clamped up to 1
  EXPECT_EQ(DefaultEpochAdvanceInterval(), 1u);
  SetDefaultEpochAdvanceInterval(~0u);  // clamped down to 1M
  EXPECT_EQ(DefaultEpochAdvanceInterval(), 1u << 20);
  SetDefaultEpochAdvanceInterval(256);
  EXPECT_EQ(DefaultEpochAdvanceInterval(), 256u);

  SetDefaultEpochRetireBatch(0);  // clamped up to 1
  EXPECT_EQ(DefaultEpochRetireBatch(), 1u);
  SetDefaultEpochRetireBatch(~0u);  // clamped down to 1M
  EXPECT_EQ(DefaultEpochRetireBatch(), 1u << 20);

  // ApplyAll publishes whatever the model carries.
  MachineModel m;
  m.epoch_advance_interval = 32;
  m.epoch_retire_batch = 512;
  m.ApplyAll();
  EXPECT_EQ(DefaultEpochAdvanceInterval(), 32u);
  EXPECT_EQ(DefaultEpochRetireBatch(), 512u);

  SetDefaultEpochAdvanceInterval(interval_before);
  SetDefaultEpochRetireBatch(batch_before);
}

TEST(MachineModelTest, ApplyAllPublishesModelValues) {
  const uint32_t rows_before = DefaultStreamBatchRows();
  const uint32_t inflight_before = DefaultStreamMaxInflight();
  const uint64_t bound_before = DefaultStreamLatenessBound();

  // ManyCore trims the micro-batch: smaller per-core caches.
  MachineModel m = MachineModel::ManyCore();
  EXPECT_LT(m.stream_batch_rows, MachineModel{}.stream_batch_rows);
  m.ApplyAll();
  EXPECT_EQ(DefaultStreamBatchRows(), m.stream_batch_rows);
  EXPECT_EQ(DefaultStreamMaxInflight(), m.stream_max_inflight);
  EXPECT_EQ(DefaultStreamLatenessBound(), m.stream_lateness_bound);

  SetDefaultStreamBatchRows(rows_before);
  SetDefaultStreamMaxInflight(inflight_before);
  SetDefaultStreamLatenessBound(bound_before);
}

}  // namespace
}  // namespace hwstar::hw
