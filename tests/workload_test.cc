#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "hwstar/ops/hot_cold.h"
#include "hwstar/workload/distributions.h"
#include "hwstar/workload/tpcc_like.h"
#include "hwstar/workload/tpch_like.h"
#include "hwstar/workload/ycsb_like.h"

namespace hwstar::workload {
namespace {

TEST(ZipfTest, StaysInDomain) {
  ZipfGenerator gen(1000, 0.9, 1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(gen.Next(), 1000u);
  }
}

TEST(ZipfTest, SkewConcentratesMass) {
  // With theta=0.9 the most frequent value should dominate; with theta
  // near 0 the distribution is nearly uniform.
  auto head_mass = [](double theta) {
    ZipfGenerator gen(1000, theta, 5);
    uint64_t head = 0;
    const int draws = 20000;
    for (int i = 0; i < draws; ++i) head += gen.Next() == 0;
    return static_cast<double>(head) / draws;
  };
  EXPECT_GT(head_mass(0.9), 10 * head_mass(0.01));
}

TEST(ZipfTest, RankZeroMostFrequent) {
  ZipfGenerator gen(100, 0.8, 9);
  std::map<uint64_t, uint64_t> freq;
  for (int i = 0; i < 50000; ++i) ++freq[gen.Next()];
  uint64_t max_key = 0, max_count = 0;
  for (auto& [k, c] : freq) {
    if (c > max_count) {
      max_count = c;
      max_key = k;
    }
  }
  EXPECT_EQ(max_key, 0u);
}

TEST(ZipfTest, Deterministic) {
  ZipfGenerator a(1000, 0.5, 3), b(1000, 0.5, 3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(UniformKeysTest, CoverageAndBounds) {
  auto keys = UniformKeys(10000, 100, 4);
  std::map<uint64_t, uint64_t> freq;
  for (uint64_t k : keys) {
    ASSERT_LT(k, 100u);
    ++freq[k];
  }
  EXPECT_EQ(freq.size(), 100u);  // all values hit at 100 draws/value
}

TEST(ZipfKeysTest, ThetaZeroIsUniform) {
  auto a = ZipfKeys(100, 50, 0.0, 6);
  auto b = UniformKeys(100, 50, 6);
  EXPECT_EQ(a, b);
}

TEST(ShuffledDenseKeysTest, IsAPermutation) {
  auto keys = ShuffledDenseKeys(1000, 8);
  auto sorted = keys;
  std::sort(sorted.begin(), sorted.end());
  for (uint64_t i = 0; i < 1000; ++i) EXPECT_EQ(sorted[i], i);
  // And actually shuffled (vanishing chance of identity).
  EXPECT_NE(keys, sorted);
}

TEST(BuildRelationTest, DenseKeysPayloadsAreRowIds) {
  auto rel = MakeBuildRelation(500, 2);
  EXPECT_EQ(rel.size(), 500u);
  for (uint64_t i = 0; i < 500; ++i) EXPECT_EQ(rel.payloads[i], i);
  auto sorted = rel.keys;
  std::sort(sorted.begin(), sorted.end());
  for (uint64_t i = 0; i < 500; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(ProbeRelationTest, KeysWithinDomain) {
  auto rel = MakeProbeRelation(1000, 256, 0.5, 3);
  EXPECT_EQ(rel.size(), 1000u);
  for (uint64_t k : rel.keys) EXPECT_LT(k, 256u);
}

TEST(SelectionInputTest, HitsRequestedSelectivity) {
  for (double sel : {0.01, 0.25, 0.5, 0.9}) {
    auto v = MakeSelectionInput(50000, sel, 1000, 1000000, 5);
    uint64_t hits = 0;
    for (int64_t x : v) hits += x < 1000;
    EXPECT_NEAR(static_cast<double>(hits) / v.size(), sel, 0.01) << sel;
  }
}

TEST(SelectionInputTest, ValuesWithinRange) {
  auto v = MakeSelectionInput(1000, 0.5, 100, 1000, 6);
  for (int64_t x : v) {
    EXPECT_GE(x, 0);
    EXPECT_LT(x, 1000);
  }
}

TEST(DriftingZipfTest, StaysInDomainAndDrifts) {
  const uint64_t domain = 800;
  auto keys = DriftingZipfKeys(20000, domain, 0.9, 10000, 3);
  std::map<uint64_t, uint64_t> phase1, phase2;
  for (uint64_t i = 0; i < 10000; ++i) {
    ASSERT_LT(keys[i], domain);
    ++phase1[keys[i]];
  }
  for (uint64_t i = 10000; i < 20000; ++i) {
    ASSERT_LT(keys[i], domain);
    ++phase2[keys[i]];
  }
  // The modal key shifts by domain/8 between phases.
  auto modal = [](const std::map<uint64_t, uint64_t>& freq) {
    uint64_t key = 0, count = 0;
    for (auto& [k, c] : freq) {
      if (c > count) {
        count = c;
        key = k;
      }
    }
    return key;
  };
  EXPECT_EQ((modal(phase1) + domain / 8) % domain, modal(phase2));
}

TEST(DriftingZipfTest, EstimatorAdaptsAcrossDrift) {
  // After the hot set moves, a fresh TopK must follow it.
  const uint64_t domain = 1000;
  auto keys = DriftingZipfKeys(100000, domain, 0.9, 50000, 4);
  hwstar::ops::ExponentialSmoothingEstimator est(1e-4);
  uint64_t now = 0;
  for (uint64_t i = 0; i < 50000; ++i) est.Record(keys[i], ++now);
  auto hot1 = est.TopK(1, now);
  for (uint64_t i = 50000; i < 100000; ++i) est.Record(keys[i], ++now);
  auto hot2 = est.TopK(1, now);
  ASSERT_EQ(hot1.size(), 1u);
  ASSERT_EQ(hot2.size(), 1u);
  EXPECT_EQ((hot1[0] + domain / 8) % domain, hot2[0]);
}

TEST(TpchTest, LineitemShape) {
  TpchConfig cfg;
  cfg.scale_factor = 0.001;  // 6000 rows
  auto t = MakeLineitem(cfg);
  EXPECT_EQ(t->num_rows(), 6000u);
  EXPECT_EQ(t->schema().num_fields(), 8u);
  EXPECT_EQ(t->schema().FieldIndex("l_shipdate"), 6);
  // Domain checks.
  for (uint64_t r = 0; r < t->num_rows(); r += 97) {
    const int64_t qty = t->column(2).GetInt64(r);
    EXPECT_GE(qty, 1);
    EXPECT_LE(qty, 50);
    const int64_t disc = t->column(4).GetInt64(r);
    EXPECT_GE(disc, 0);
    EXPECT_LE(disc, 10);
    const int64_t date = t->column(6).GetInt64(r);
    EXPECT_GE(date, 0);
    EXPECT_LT(date, 2556);
  }
}

TEST(TpchTest, OrdersShape) {
  TpchConfig cfg;
  cfg.scale_factor = 0.001;
  auto t = MakeOrders(cfg);
  EXPECT_EQ(t->num_rows(), 1500u);
  // Orderkeys are dense 1..N.
  EXPECT_EQ(t->column(0).GetInt64(0), 1);
  EXPECT_EQ(t->column(0).GetInt64(1499), 1500);
}

TEST(TpchTest, Q6SelectivityInExpectedBand) {
  // Q6 shape: one year of dates (1/7 of range), discount in [5,7] (3/11),
  // quantity < 24 (23/50): expected ~2% of rows.
  TpchConfig cfg;
  cfg.scale_factor = 0.01;
  auto t = MakeLineitem(cfg);
  uint64_t hits = 0;
  for (uint64_t r = 0; r < t->num_rows(); ++r) {
    const int64_t date = t->column(6).GetInt64(r);
    const int64_t disc = t->column(4).GetInt64(r);
    const int64_t qty = t->column(2).GetInt64(r);
    hits += (date >= 365 && date < 730) && (disc >= 5 && disc <= 7) &&
            (qty < 24);
  }
  const double sel = static_cast<double>(hits) / t->num_rows();
  EXPECT_GT(sel, 0.01);
  EXPECT_LT(sel, 0.03);
}

TEST(TpchTest, DeterministicAcrossCalls) {
  TpchConfig cfg;
  cfg.scale_factor = 0.0005;
  auto a = MakeLineitem(cfg);
  auto b = MakeLineitem(cfg);
  ASSERT_EQ(a->num_rows(), b->num_rows());
  for (uint64_t r = 0; r < a->num_rows(); r += 31) {
    EXPECT_EQ(a->column(3).GetInt64(r), b->column(3).GetInt64(r));
  }
}

TEST(YcsbTest, OperationMixMatchesConfig) {
  YcsbConfig cfg;
  cfg.operation_count = 100000;
  cfg.read_fraction = 0.7;
  auto ops = MakeYcsbWorkload(cfg);
  ASSERT_EQ(ops.size(), 100000u);
  uint64_t reads = 0;
  for (const auto& op : ops) reads += op.op == YcsbOp::kRead;
  EXPECT_NEAR(static_cast<double>(reads) / ops.size(), 0.7, 0.01);
}

TEST(YcsbTest, KeysWithinRecordSpace) {
  YcsbConfig cfg;
  cfg.record_count = 4096;
  cfg.operation_count = 10000;
  for (const auto& op : MakeYcsbWorkload(cfg)) {
    EXPECT_LT(op.key, 4096u);
  }
}

TEST(YcsbTest, UniformModeWhenThetaZero) {
  YcsbConfig cfg;
  cfg.zipf_theta = 0.0;
  cfg.record_count = 100;
  cfg.operation_count = 50000;
  std::map<uint64_t, uint64_t> freq;
  for (const auto& op : MakeYcsbWorkload(cfg)) ++freq[op.key];
  EXPECT_EQ(freq.size(), 100u);
}

// ---------------------------------------------------------------------------
// Chunked-pull determinism: the stream a consumer sees is a pure function
// of the config, independent of how pulls are chunked — what lets the
// streaming sources re-materialize an identical stream for reference
// computations.

std::vector<YcsbRequest> PullYcsb(const YcsbConfig& cfg, size_t chunk) {
  YcsbStream stream(cfg);
  std::vector<YcsbRequest> all;
  std::vector<YcsbRequest> buf(chunk);
  size_t n;
  while ((n = stream.NextChunk(buf.data(), buf.size())) > 0) {
    all.insert(all.end(), buf.begin(), buf.begin() + n);
  }
  EXPECT_EQ(stream.emitted(), cfg.operation_count);
  return all;
}

TEST(YcsbStreamTest, SameSeedSameStreamAcrossChunkSizes) {
  YcsbConfig cfg;
  cfg.record_count = 4096;
  cfg.operation_count = 10007;  // prime: never aligned with any chunk
  cfg.seed = 1234;
  const auto whole = PullYcsb(cfg, cfg.operation_count);
  for (size_t chunk : {1ul, 7ul, 64ul, 4096ul}) {
    const auto chunked = PullYcsb(cfg, chunk);
    ASSERT_EQ(chunked.size(), whole.size());
    for (size_t i = 0; i < whole.size(); ++i) {
      ASSERT_EQ(chunked[i].key, whole[i].key) << "chunk=" << chunk;
      ASSERT_EQ(chunked[i].op, whole[i].op) << "chunk=" << chunk;
    }
  }
}

TEST(YcsbStreamTest, ChunkedPullMatchesMaterializedWorkload) {
  YcsbConfig cfg;
  cfg.record_count = 1024;
  cfg.operation_count = 5000;
  cfg.zipf_theta = 0.9;
  const auto vec = MakeYcsbWorkload(cfg);
  const auto pulled = PullYcsb(cfg, 333);
  ASSERT_EQ(pulled.size(), vec.size());
  for (size_t i = 0; i < vec.size(); ++i) {
    ASSERT_EQ(pulled[i].key, vec[i].key);
    ASSERT_EQ(pulled[i].op, vec[i].op);
  }
}

std::vector<LineitemRow> PullLineitem(const TpchConfig& cfg, size_t chunk) {
  LineitemStream stream(cfg);
  std::vector<LineitemRow> all;
  std::vector<LineitemRow> buf(chunk);
  size_t n;
  while ((n = stream.NextChunk(buf.data(), buf.size())) > 0) {
    all.insert(all.end(), buf.begin(), buf.begin() + n);
  }
  EXPECT_EQ(stream.emitted(), stream.total_rows());
  return all;
}

TEST(LineitemStreamTest, SameSeedSameStreamAcrossChunkSizes) {
  TpchConfig cfg;
  cfg.scale_factor = 0.001;
  const auto whole = PullLineitem(cfg, 1u << 20);
  ASSERT_FALSE(whole.empty());
  for (size_t chunk : {1ul, 13ul, 1024ul}) {
    const auto chunked = PullLineitem(cfg, chunk);
    ASSERT_EQ(chunked.size(), whole.size());
    for (size_t i = 0; i < whole.size(); ++i) {
      ASSERT_EQ(chunked[i].orderkey, whole[i].orderkey) << "chunk=" << chunk;
      ASSERT_EQ(chunked[i].extendedprice, whole[i].extendedprice);
      ASSERT_EQ(chunked[i].shipdate, whole[i].shipdate);
    }
  }
}

TEST(LineitemStreamTest, ChunkedPullMatchesMaterializedTable) {
  TpchConfig cfg;
  cfg.scale_factor = 0.001;
  auto table = MakeLineitem(cfg);
  const auto pulled = PullLineitem(cfg, 999);
  ASSERT_EQ(pulled.size(), table->num_rows());
  for (size_t i = 0; i < pulled.size(); i += 17) {
    const uint64_t r = static_cast<uint64_t>(i);
    EXPECT_EQ(pulled[i].orderkey, table->column(0).GetInt64(r));
    EXPECT_EQ(pulled[i].partkey, table->column(1).GetInt64(r));
    EXPECT_EQ(pulled[i].extendedprice, table->column(3).GetInt64(r));
  }
}

// --- TPC-C-shaped transaction stream --------------------------------------

TEST(TpccTest, KeyEncodingPartitionsByWarehouseThenTable) {
  // Warehouse occupies the top bits: every key of warehouse w sorts below
  // every key of warehouse w+1, which is what makes range sharding by
  // high bits a per-warehouse partitioning.
  EXPECT_LT(TpccOrderLineKey(0, 255, (1u << 30), 255), TpccWarehouseKey(1));
  EXPECT_LT(TpccWarehouseKey(1), TpccDistrictKey(1, 0));
  EXPECT_LT(TpccDistrictKey(1, 7), TpccCustomerKey(1, 0, 0));
  EXPECT_LT(TpccCustomerKey(1, 3, 9), TpccOrderKey(1, 0, 0));
  // Distinct coordinates produce distinct keys.
  EXPECT_NE(TpccCustomerKey(1, 2, 3), TpccCustomerKey(1, 3, 2));
  EXPECT_NE(TpccOrderKey(1, 2, 3), TpccOrderLineKey(1, 2, 3, 0));
}

TEST(TpccTest, LoadCoversSchemaExactlyOnce) {
  TpccConfig cfg;
  cfg.warehouses = 2;
  cfg.districts_per_warehouse = 3;
  cfg.customers_per_district = 5;
  const auto rows = MakeTpccLoad(cfg);
  // 2 warehouses + 6 districts + 30 customers.
  ASSERT_EQ(rows.size(), 2u + 6u + 30u);
  std::set<uint64_t> keys;
  for (const auto& [key, value] : rows) {
    EXPECT_TRUE(keys.insert(key).second) << "duplicate key " << key;
    EXPECT_GT(value, 0u);
  }
}

TEST(TpccTest, MixMatchesConfiguredFractions) {
  TpccConfig cfg;
  cfg.seed = 11;
  TpccStream stream(cfg);
  uint64_t counts[3] = {0, 0, 0};
  constexpr uint64_t kTxns = 20'000;
  for (uint64_t i = 0; i < kTxns; ++i) {
    ++counts[static_cast<size_t>(stream.Next().kind)];
  }
  EXPECT_EQ(stream.emitted(), kTxns);
  const double new_order = static_cast<double>(counts[0]) / kTxns;
  const double payment = static_cast<double>(counts[1]) / kTxns;
  const double delivery = static_cast<double>(counts[2]) / kTxns;
  EXPECT_NEAR(new_order, cfg.new_order_fraction, 0.02);
  // Early deliveries degrade to payment while queues warm up, so payment
  // sits a little above its configured share and delivery a little below.
  EXPECT_GT(payment, cfg.payment_fraction - 0.02);
  EXPECT_GT(delivery, 0.05);
}

TEST(TpccTest, DeterministicForSameConfig) {
  TpccConfig cfg;
  cfg.seed = 23;
  TpccStream a(cfg);
  TpccStream b(cfg);
  for (int i = 0; i < 500; ++i) {
    const TpccTxn ta = a.Next();
    const TpccTxn tb = b.Next();
    ASSERT_EQ(ta.kind, tb.kind);
    ASSERT_EQ(ta.ops.size(), tb.ops.size());
    for (size_t j = 0; j < ta.ops.size(); ++j) {
      EXPECT_EQ(ta.ops[j].kind, tb.ops[j].kind);
      EXPECT_EQ(ta.ops[j].key, tb.ops[j].key);
      EXPECT_EQ(ta.ops[j].value, tb.ops[j].value);
    }
  }
}

// Replay the stream against a reference map: every delivery must read and
// delete an order that a previous new-order actually inserted (and that
// is still live) — the client-side pending queue does real bookkeeping,
// not wishful key synthesis.
TEST(TpccTest, DeliveriesDeleteLiveOrders) {
  TpccConfig cfg;
  cfg.warehouses = 2;
  cfg.seed = 31;
  TpccStream stream(cfg);
  std::map<uint64_t, uint64_t> model;
  uint64_t deliveries = 0;
  for (int i = 0; i < 10'000; ++i) {
    const TpccTxn txn = stream.Next();
    if (txn.kind == TpccTxnKind::kDelivery) ++deliveries;
    for (const TpccOp& op : txn.ops) {
      switch (op.kind) {
        case TpccOpKind::kGet:
          if (txn.kind == TpccTxnKind::kDelivery) {
            ASSERT_TRUE(model.count(op.key))
                << "delivery read of a never-inserted order";
          }
          break;
        case TpccOpKind::kPut:
          ASSERT_TRUE(model.emplace(op.key, op.value).second)
              << "order key reused while still live";
          break;
        case TpccOpKind::kAdd:
          model[op.key] += op.value;
          break;
        case TpccOpKind::kDelete:
          ASSERT_EQ(model.erase(op.key), 1u)
              << "delivery deleted a missing key";
          break;
      }
    }
  }
  EXPECT_GT(deliveries, 100u);
}

TEST(TpccTest, ActorStridingKeepsOrderKeysDisjoint) {
  TpccConfig cfg;
  cfg.actors = 2;
  std::set<uint64_t> inserted[2];
  for (uint32_t actor = 0; actor < 2; ++actor) {
    cfg.actor = actor;
    TpccStream stream(cfg);
    for (int i = 0; i < 2'000; ++i) {
      const TpccTxn txn = stream.Next();
      if (txn.kind != TpccTxnKind::kNewOrder) continue;
      for (const TpccOp& op : txn.ops) {
        if (op.kind == TpccOpKind::kPut) inserted[actor].insert(op.key);
      }
    }
  }
  for (uint64_t key : inserted[0]) {
    EXPECT_EQ(inserted[1].count(key), 0u) << "key " << key;
  }
}

TEST(TpccTest, RequeuedDeliveryIsReissued) {
  TpccConfig cfg;
  cfg.seed = 41;
  TpccStream stream(cfg);
  for (int i = 0; i < 50'000; ++i) {
    const TpccTxn txn = stream.Next();
    if (txn.kind != TpccTxnKind::kDelivery) continue;
    const uint64_t order_key = txn.ops.front().key;
    // Simulate an abort: the order goes back to the FRONT of its queue,
    // so the next delivery in that district retries the same order.
    stream.RequeueDelivery(txn);
    for (int j = 0; j < 200'000; ++j) {
      const TpccTxn retry = stream.Next();
      if (retry.kind == TpccTxnKind::kDelivery &&
          retry.ops.front().key == order_key) {
        SUCCEED();
        return;
      }
    }
    FAIL() << "requeued order never re-delivered";
  }
  FAIL() << "no delivery generated";
}

}  // namespace
}  // namespace hwstar::workload
