#include <gtest/gtest.h>

#include "hwstar/engine/planner.h"
#include "hwstar/workload/tpch_like.h"

namespace hwstar::engine {
namespace {

using storage::ColumnStore;
using storage::Field;
using storage::Schema;
using storage::Table;
using storage::TypeId;

/// 4-column store: a = 0..n-1, b = i%100, c = i%7, d = 2i.
ColumnStore MakeStore(uint64_t n) {
  Schema schema({{"a", TypeId::kInt64},
                 {"b", TypeId::kInt64},
                 {"c", TypeId::kInt64},
                 {"d", TypeId::kInt64}});
  Table t(schema);
  for (uint64_t i = 0; i < n; ++i) {
    t.column(0).AppendInt64(static_cast<int64_t>(i));
    t.column(1).AppendInt64(static_cast<int64_t>(i % 100));
    t.column(2).AppendInt64(static_cast<int64_t>(i % 7));
    t.column(3).AppendInt64(static_cast<int64_t>(2 * i));
  }
  EXPECT_TRUE(t.SetRowCount(n).ok());
  auto cs = ColumnStore::FromTable(t);
  EXPECT_TRUE(cs.ok());
  return std::move(cs).value();
}

TEST(ExpressionTest, EvalScalars) {
  ColumnStore store = MakeStore(10);
  auto e = Add(Col(0), Lit(5));
  EXPECT_EQ(e->Eval(store, 3), 8);
  auto cmp = Lt(Col(0), Lit(5));
  EXPECT_EQ(cmp->Eval(store, 3), 1);
  EXPECT_EQ(cmp->Eval(store, 7), 0);
  auto logic = And(Ge(Col(0), Lit(2)), Le(Col(0), Lit(4)));
  EXPECT_EQ(logic->Eval(store, 2), 1);
  EXPECT_EQ(logic->Eval(store, 5), 0);
  auto ors = Or(Eq(Col(2), Lit(0)), Eq(Col(2), Lit(1)));
  EXPECT_EQ(ors->Eval(store, 7), 1);  // 7 % 7 == 0
  EXPECT_EQ(ors->Eval(store, 3), 0);
  auto arith = Mul(Sub(Col(3), Col(0)), Lit(3));
  EXPECT_EQ(arith->Eval(store, 4), (8 - 4) * 3);
}

TEST(ExpressionTest, BatchMatchesScalar) {
  ColumnStore store = MakeStore(100);
  auto e = Mul(Add(Col(0), Lit(1)), Col(2));
  std::vector<int64_t> batch(100);
  e->EvalBatch(store, 0, 100, batch.data());
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(batch[i], e->Eval(store, i)) << i;
  }
}

TEST(ExpressionTest, ToStringReadable) {
  auto e = And(Ge(Col(1, "b"), Lit(5)), Lt(Col(1, "b"), Lit(10)));
  EXPECT_EQ(e->ToString(), "((b >= 5) and (b < 10))");
}

TEST(ExpressionTest, StructuralAccessors) {
  auto e = Lt(Col(2), Lit(9));
  EXPECT_EQ(e->kind(), ExprKind::kLt);
  ASSERT_NE(e->left(), nullptr);
  EXPECT_EQ(e->left()->column_index(), 2);
  EXPECT_EQ(e->right()->constant_value(), 9);
  EXPECT_EQ(Lit(5)->left(), nullptr);
}

TEST(QueryTest, ToStringRendersShape) {
  ColumnStore store = MakeStore(1);
  Query q;
  q.input = &store;
  q.filter = Lt(Col(0, "a"), Lit(10));
  q.aggregate = Col(3, "d");
  EXPECT_EQ(q.ToString(), "SELECT SUM(d) WHERE (a < 10)");
}

int64_t ReferenceSum(const ColumnStore& store, uint64_t n) {
  // WHERE b >= 10 AND b < 20: SUM(d).
  int64_t sum = 0;
  for (uint64_t i = 0; i < n; ++i) {
    const int64_t b = store.IntColumn(1)[i];
    if (b >= 10 && b < 20) sum += store.IntColumn(3)[i];
  }
  return sum;
}

Query MakeQuery(const ColumnStore& store) {
  Query q;
  q.input = &store;
  q.filter = And(Ge(Col(1), Lit(10)), Lt(Col(1), Lit(20)));
  q.aggregate = Col(3);
  return q;
}

TEST(ExecutorTest, VolcanoCorrect) {
  ColumnStore store = MakeStore(10000);
  QueryResult r = ExecuteVolcano(MakeQuery(store));
  EXPECT_EQ(r.sum, ReferenceSum(store, 10000));
  EXPECT_EQ(r.rows_passed, 1000u);
}

TEST(ExecutorTest, VectorizedCorrect) {
  ColumnStore store = MakeStore(10000);
  QueryResult r = ExecuteVectorized(MakeQuery(store));
  EXPECT_EQ(r.sum, ReferenceSum(store, 10000));
}

TEST(ExecutorTest, FusedCorrectAndRecognized) {
  ColumnStore store = MakeStore(10000);
  bool recognized = false;
  QueryResult r = ExecuteFused(MakeQuery(store), &recognized);
  EXPECT_TRUE(recognized);
  EXPECT_EQ(r.sum, ReferenceSum(store, 10000));
}

TEST(ExecutorTest, FusedFallsBackOnComplexShapes) {
  ColumnStore store = MakeStore(1000);
  Query q = MakeQuery(store);
  q.filter = Or(Lt(Col(0), Lit(5)), Gt(Col(0), Lit(990)));  // OR: no template
  bool recognized = true;
  QueryResult fused = ExecuteFused(q, &recognized);
  EXPECT_FALSE(recognized);
  QueryResult volcano = ExecuteVolcano(q);
  EXPECT_EQ(fused.sum, volcano.sum);
  EXPECT_EQ(fused.rows_passed, volcano.rows_passed);
}

TEST(ExecutorTest, NoFilterSumsEverything) {
  ColumnStore store = MakeStore(1000);
  Query q;
  q.input = &store;
  q.aggregate = Col(0);
  const int64_t expected = 999 * 1000 / 2;
  EXPECT_EQ(ExecuteVolcano(q).sum, expected);
  EXPECT_EQ(ExecuteVectorized(q).sum, expected);
  EXPECT_EQ(ExecuteFused(q).sum, expected);
}

TEST(ExecutorTest, CountStarWhenNoAggregate) {
  ColumnStore store = MakeStore(500);
  Query q;
  q.input = &store;
  q.filter = Lt(Col(0), Lit(100));
  EXPECT_EQ(ExecuteVolcano(q).sum, 100);
  EXPECT_EQ(ExecuteVectorized(q).sum, 100);
  EXPECT_EQ(ExecuteFused(q).sum, 100);
}

TEST(ExecutorTest, GroupByAgrees) {
  ColumnStore store = MakeStore(7000);
  Query q;
  q.input = &store;
  q.filter = Lt(Col(0), Lit(700));
  q.aggregate = Col(0);
  q.group_by = 2;  // c = i % 7
  QueryResult volcano = ExecuteVolcano(q);
  QueryResult vectorized = ExecuteVectorized(q);
  ASSERT_EQ(volcano.groups.size(), 7u);
  ASSERT_EQ(vectorized.groups.size(), 7u);
  for (size_t g = 0; g < 7; ++g) {
    EXPECT_EQ(volcano.groups[g].key, vectorized.groups[g].key);
    EXPECT_EQ(volcano.groups[g].sum, vectorized.groups[g].sum);
    EXPECT_EQ(volcano.groups[g].count, vectorized.groups[g].count);
  }
  // Fused must fall back for grouped queries yet stay correct.
  bool recognized = true;
  QueryResult fused = ExecuteFused(q, &recognized);
  EXPECT_FALSE(recognized);
  EXPECT_EQ(fused.sum, volcano.sum);
}

TEST(ExecutorTest, EmptyInput) {
  ColumnStore store = MakeStore(0);
  Query q = MakeQuery(store);
  EXPECT_EQ(ExecuteVolcano(q).sum, 0);
  EXPECT_EQ(ExecuteVectorized(q).sum, 0);
  EXPECT_EQ(ExecuteFused(q).sum, 0);
}

/// Property: the three models agree across row counts and batch sizes.
class ModelEquivalence
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint32_t>> {};

TEST_P(ModelEquivalence, AllModelsAgree) {
  const auto [rows, batch] = GetParam();
  ColumnStore store = MakeStore(rows);
  Query q = MakeQuery(store);
  QueryResult volcano = ExecuteVolcano(q);
  VectorizedOptions vopts;
  vopts.batch_size = batch;
  QueryResult vectorized = ExecuteVectorized(q, vopts);
  QueryResult fused = ExecuteFused(q);
  EXPECT_EQ(volcano.sum, vectorized.sum);
  EXPECT_EQ(volcano.sum, fused.sum);
  EXPECT_EQ(volcano.rows_passed, vectorized.rows_passed);
  EXPECT_EQ(volcano.rows_passed, fused.rows_passed);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ModelEquivalence,
    ::testing::Combine(::testing::Values(0u, 1u, 63u, 1000u, 33333u),
                       ::testing::Values(1u, 7u, 256u, 4096u)));

TEST(PlannerTest, ExecuteDispatchesAllModels) {
  ColumnStore store = MakeStore(5000);
  Query q = MakeQuery(store);
  const int64_t expected = ReferenceSum(store, 5000);
  for (auto model : {ExecutionModel::kVolcano, ExecutionModel::kVectorized,
                     ExecutionModel::kFused}) {
    ExecuteOptions opts;
    opts.model = model;
    EXPECT_EQ(Execute(q, opts).sum, expected) << ExecutionModelName(model);
  }
}

TEST(PlannerTest, ChoosesVolcanoForTinyInputs) {
  ColumnStore store = MakeStore(10);
  Query q = MakeQuery(store);
  auto opts = ChooseOptions(q, hw::MachineModel::Server2013());
  EXPECT_EQ(opts.model, ExecutionModel::kVolcano);
}

TEST(PlannerTest, ChoosesFusedForLargeInputs) {
  ColumnStore store = MakeStore(100000);
  Query q = MakeQuery(store);
  auto opts = ChooseOptions(q, hw::MachineModel::Server2013());
  EXPECT_EQ(opts.model, ExecutionModel::kFused);
  EXPECT_GE(opts.batch_size, 64u);
}

TEST(PlannerTest, ExplainMentionsModel) {
  ColumnStore store = MakeStore(100);
  Query q = MakeQuery(store);
  ExecuteOptions opts;
  opts.model = ExecutionModel::kVectorized;
  std::string s = Explain(q, opts);
  EXPECT_NE(s.find("vectorized"), std::string::npos);
  EXPECT_NE(s.find("SELECT"), std::string::npos);
}

TEST(TpchQ6Test, AllModelsAgreeOnQ6Shape) {
  // TPC-H Q6 shape: SUM(extendedprice * discount) over date/discount/
  // quantity ranges. Too many predicates for the 2-column fused template;
  // exercises fallback correctness on a realistic query.
  workload::TpchConfig cfg;
  cfg.scale_factor = 0.002;
  auto lineitem = workload::MakeLineitem(cfg);
  auto cs = ColumnStore::FromTable(*lineitem);
  ASSERT_TRUE(cs.ok());
  const ColumnStore& store = cs.value();

  Query q;
  q.input = &store;
  q.filter = And(And(Ge(Col(6), Lit(365)), Lt(Col(6), Lit(730))),
                 And(Ge(Col(4), Lit(5)), Lt(Col(2), Lit(24))));
  q.aggregate = Mul(Col(3), Col(4));
  QueryResult volcano = ExecuteVolcano(q);
  QueryResult vectorized = ExecuteVectorized(q);
  QueryResult fused = ExecuteFused(q);
  EXPECT_EQ(volcano.sum, vectorized.sum);
  EXPECT_EQ(volcano.sum, fused.sum);
  EXPECT_GT(volcano.rows_passed, 0u);
}

}  // namespace
}  // namespace hwstar::engine
