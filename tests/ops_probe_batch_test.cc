// Bit-identity tests for the batched probe kernels (ops/probe_kernels.h):
// every FindBatch / ProbeBatch / MayContainBatch must produce exactly the
// results of the scalar loop it replaces, across batch sizes that straddle
// the group width, duplicate keys, hit/miss mixes, and both index kinds.
// The concurrency test at the bottom (label: sanitize) races
// ConcurrentHashTable::FindBatch against live inserts under TSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "hwstar/common/random.h"
#include "hwstar/hw/machine_model.h"
#include "hwstar/kv/kv_store.h"
#include "hwstar/ops/art.h"
#include "hwstar/ops/bloom_filter.h"
#include "hwstar/ops/btree.h"
#include "hwstar/ops/concurrent_hash_table.h"
#include "hwstar/ops/hash_table.h"
#include "hwstar/ops/probe_kernels.h"

namespace hwstar::ops {
namespace {

// Batch sizes straddling every compiled group width {4, 8, 16, 32}:
// empty, one, G-1, G, G+1, and a large ragged size.
constexpr size_t kBatchSizes[] = {0, 1, 3, 4, 5, 7, 8, 9, 15, 16, 17,
                                  31, 32, 33, 100, 1000};
// 0 = process default; 5 exercises rounding to a compiled size.
constexpr uint32_t kGroupSizes[] = {0, 4, 5, 8, 16, 32};

/// Probe keys with ~50% hit rate against `universe` (the inserted keys),
/// including duplicates within the batch.
std::vector<uint64_t> MakeProbeKeys(const std::vector<uint64_t>& universe,
                                    size_t n, Xoshiro256& rng) {
  std::vector<uint64_t> probes(n);
  for (size_t i = 0; i < n; ++i) {
    if (!universe.empty() && rng.NextBounded(2) == 0) {
      probes[i] = universe[rng.NextBounded(universe.size())];
      // Duplicate the previous probe occasionally.
      if (i > 0 && rng.NextBounded(8) == 0) probes[i] = probes[i - 1];
    } else {
      probes[i] = rng.Next() >> 1;  // top bit clear: never kEmpty
    }
  }
  return probes;
}

/// Checks index.FindBatch against a scalar index.Find loop for one probe
/// batch, every group size, and both the found-array and found=null forms.
template <typename Index>
void CheckFindBatchIdentity(const Index& index,
                            const std::vector<uint64_t>& probes) {
  const size_t n = probes.size();
  std::vector<uint64_t> want_values(n);
  std::unique_ptr<bool[]> want_found(new bool[n]);
  size_t want_hits = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t v = 0;
    const bool hit = index.Find(probes[i], &v);
    want_values[i] = hit ? v : 0;
    want_found[i] = hit;
    want_hits += hit;
  }
  for (uint32_t group : kGroupSizes) {
    std::vector<uint64_t> values(n, ~uint64_t{0});
    std::unique_ptr<bool[]> found(new bool[n]);
    const size_t hits =
        index.FindBatch(probes.data(), n, values.data(), found.get(), group);
    EXPECT_EQ(hits, want_hits) << "group=" << group << " n=" << n;
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(values[i], want_values[i])
          << "group=" << group << " n=" << n << " i=" << i;
      ASSERT_EQ(found[i], want_found[i])
          << "group=" << group << " n=" << n << " i=" << i;
    }
    // found == nullptr form: values and the hit count must be unchanged.
    std::vector<uint64_t> values2(n, ~uint64_t{0});
    const size_t hits2 =
        index.FindBatch(probes.data(), n, values2.data(), nullptr, group);
    EXPECT_EQ(hits2, want_hits);
    EXPECT_EQ(values2, values);
  }
}

TEST(ProbeBatchTest, LinearProbeFindBatchMatchesScalarFind) {
  Xoshiro256 rng(1);
  std::vector<uint64_t> keys(2000);
  LinearProbeTable table(keys.size());
  for (auto& k : keys) {
    k = rng.Next() >> 1;
    table.Insert(k, k * 3 + 1);
  }
  for (size_t n : kBatchSizes) {
    CheckFindBatchIdentity(table, MakeProbeKeys(keys, n, rng));
  }
}

TEST(ProbeBatchTest, ChainedFindBatchMatchesScalarFind) {
  // Big enough to clear kAmacMinTableBytes, so the AMAC ring itself runs
  // (small tables take the gated scalar walk, covered below).
  Xoshiro256 rng(2);
  std::vector<uint64_t> keys(1 << 17);
  ChainedTable table(keys.size());
  for (auto& k : keys) {
    k = rng.Next() >> 1;
    table.Insert(k, k ^ 0xabcdef);
  }
  ASSERT_GE(table.MemoryBytes(), ChainedTable::kAmacMinTableBytes);
  for (size_t n : kBatchSizes) {
    CheckFindBatchIdentity(table, MakeProbeKeys(keys, n, rng));
  }
}

TEST(ProbeBatchTest, ChainedFindBatchGatedScalarOnSmallTable) {
  Xoshiro256 rng(22);
  std::vector<uint64_t> keys(2000);
  ChainedTable table(keys.size());
  for (auto& k : keys) {
    k = rng.Next() >> 1;
    table.Insert(k, k ^ 0xabcdef);
  }
  ASSERT_LT(table.MemoryBytes(), ChainedTable::kAmacMinTableBytes);
  for (size_t n : kBatchSizes) {
    CheckFindBatchIdentity(table, MakeProbeKeys(keys, n, rng));
  }
}

TEST(ProbeBatchTest, ConcurrentFindBatchMatchesScalarFind) {
  Xoshiro256 rng(3);
  std::vector<uint64_t> keys(2000);
  ConcurrentHashTable table(keys.size());
  for (auto& k : keys) {
    k = rng.Next() >> 1;
    table.Insert(k, k + 99);
  }
  for (size_t n : kBatchSizes) {
    CheckFindBatchIdentity(table, MakeProbeKeys(keys, n, rng));
  }
}

TEST(ProbeBatchTest, ArtFindBatchMatchesScalarFind) {
  Xoshiro256 rng(4);
  std::vector<uint64_t> keys(2000);
  AdaptiveRadixTree art;
  for (auto& k : keys) {
    k = rng.Next();
    art.Insert(k, k * 7);
  }
  // Clustered keys exercise path compression / shared prefixes.
  for (uint64_t i = 0; i < 256; ++i) {
    const uint64_t k = 0x1122334455660000ULL + i;
    keys.push_back(k);
    art.Insert(k, k * 7);
  }
  for (size_t n : kBatchSizes) {
    CheckFindBatchIdentity(art, MakeProbeKeys(keys, n, rng));
  }
}

TEST(ProbeBatchTest, ArtFindBatchOnEmptyTree) {
  AdaptiveRadixTree art;
  const uint64_t probes[] = {0, 1, 42, ~uint64_t{0}};
  uint64_t values[4];
  bool found[4];
  EXPECT_EQ(art.FindBatch(probes, 4, values, found, 4), 0u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(values[i], 0u);
    EXPECT_FALSE(found[i]);
  }
}

TEST(ProbeBatchTest, BtreeFindBatchMatchesScalarFind) {
  Xoshiro256 rng(5);
  for (uint32_t fanout : {8u, 32u}) {
    std::vector<uint64_t> keys(2000);
    BPlusTree tree(fanout);
    for (auto& k : keys) {
      k = rng.Next();
      tree.Insert(k, k + 17);
    }
    for (size_t n : kBatchSizes) {
      CheckFindBatchIdentity(tree, MakeProbeKeys(keys, n, rng));
    }
  }
}

TEST(ProbeBatchTest, LinearProbeBatchMatchesScalarProbeInOrder) {
  // LinearProbeTable supports duplicate keys; ProbeBatch must report every
  // match, in the exact order of the scalar loop (GP preserves order).
  Xoshiro256 rng(6);
  std::vector<uint64_t> keys(500);
  LinearProbeTable table(keys.size() * 2);
  for (auto& k : keys) {
    k = rng.Next() >> 1;
    table.Insert(k, k);
    if (rng.NextBounded(4) == 0) table.Insert(k, k + 1);  // duplicate key
  }
  const auto probes = MakeProbeKeys(keys, 777, rng);
  std::vector<std::pair<size_t, uint64_t>> want, got;
  uint64_t want_matches = 0;
  for (size_t i = 0; i < probes.size(); ++i) {
    want_matches += table.Probe(probes[i], [&](uint64_t v) {
      want.emplace_back(i, v);
    });
  }
  for (uint32_t group : kGroupSizes) {
    got.clear();
    const uint64_t matches = table.ProbeBatch(
        probes.data(), probes.size(),
        [&](size_t i, uint64_t v) { got.emplace_back(i, v); }, group);
    EXPECT_EQ(matches, want_matches) << "group=" << group;
    EXPECT_EQ(got, want) << "group=" << group;
  }
}

TEST(ProbeBatchTest, ChainedProbeBatchMatchesScalarProbeAsMultiset) {
  // AMAC completes keys out of order, so compare (i, value) multisets.
  // Sized past kAmacMinTableBytes so the ring actually runs.
  Xoshiro256 rng(7);
  std::vector<uint64_t> keys(1 << 17);
  ChainedTable table(keys.size());
  for (auto& k : keys) {
    k = rng.Next() >> 1;
    table.Insert(k, k);
    if (rng.NextBounded(4) == 0) table.Insert(k, k + 1);
  }
  ASSERT_GE(table.MemoryBytes(), ChainedTable::kAmacMinTableBytes);
  const auto probes = MakeProbeKeys(keys, 777, rng);
  std::vector<std::pair<size_t, uint64_t>> want, got;
  uint64_t want_matches = 0;
  for (size_t i = 0; i < probes.size(); ++i) {
    want_matches += table.Probe(probes[i], [&](uint64_t v) {
      want.emplace_back(i, v);
    });
  }
  std::sort(want.begin(), want.end());
  for (uint32_t group : kGroupSizes) {
    got.clear();
    const uint64_t matches = table.ProbeBatch(
        probes.data(), probes.size(),
        [&](size_t i, uint64_t v) { got.emplace_back(i, v); }, group);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(matches, want_matches) << "group=" << group;
    EXPECT_EQ(got, want) << "group=" << group;
  }
}

TEST(ProbeBatchTest, BloomMayContainBatchMatchesScalar) {
  Xoshiro256 rng(8);
  std::vector<uint64_t> keys(4000);
  BloomFilter standard(keys.size());
  BlockedBloomFilter blocked(keys.size());
  for (auto& k : keys) {
    k = rng.Next();
    standard.Add(k);
    blocked.Add(k);
  }
  for (size_t n : kBatchSizes) {
    const auto probes = MakeProbeKeys(keys, n, rng);
    for (uint32_t group : kGroupSizes) {
      std::unique_ptr<bool[]> out(new bool[n + 1]);
      standard.MayContainBatch(probes.data(), n, out.get(), group);
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(out[i], standard.MayContain(probes[i]))
            << "standard group=" << group << " n=" << n << " i=" << i;
      }
      blocked.MayContainBatch(probes.data(), n, out.get(), group);
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(out[i], blocked.MayContain(probes[i]))
            << "blocked group=" << group << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(ProbeBatchTest, KvStoreMultiGetMatchesScalarGet) {
  Xoshiro256 rng(9);
  for (kv::IndexKind kind : {kv::IndexKind::kArt, kv::IndexKind::kBTree}) {
    kv::KvOptions opts;
    opts.index = kind;
    opts.shards = 8;
    kv::KvStore store(opts);
    std::vector<uint64_t> keys(3000);
    for (auto& k : keys) {
      k = rng.Next();  // uniform: runs span all shards
      store.Put(k, k ^ 0x5a5a5a5a);
    }
    for (size_t n : kBatchSizes) {
      auto probes = MakeProbeKeys(keys, n, rng);
      // Sorted probes exercise the long same-shard-run path the svc
      // batcher produces; unsorted ones exercise shard switching.
      for (bool sorted : {false, true}) {
        if (sorted) std::sort(probes.begin(), probes.end());
        std::vector<uint64_t> values(n, ~uint64_t{0});
        std::unique_ptr<bool[]> found(new bool[n]);
        store.MultiGet(probes.data(), n, values.data(), found.get());
        for (size_t i = 0; i < n; ++i) {
          auto r = store.Get(probes[i]);
          ASSERT_EQ(found[i], r.ok()) << "n=" << n << " i=" << i;
          ASSERT_EQ(values[i], r.ok() ? r.value() : 0) << "n=" << n;
        }
        // found == nullptr form.
        std::vector<uint64_t> values2(n, ~uint64_t{0});
        store.MultiGet(probes.data(), n, values2.data(), nullptr);
        EXPECT_EQ(values2, values);
      }
    }
  }
}

TEST(ProbeKernelsTest, DefaultGroupSizeRoundTripsAndClamps) {
  const uint32_t before = hw::DefaultProbeGroupSize();
  hw::SetDefaultProbeGroupSize(8);
  EXPECT_EQ(hw::DefaultProbeGroupSize(), 8u);
  // The registry's central clamp: power of two in [4, 32] (the compiled
  // kernel widths), whatever path the value arrives by.
  hw::SetDefaultProbeGroupSize(0);  // clamped up to 4
  EXPECT_EQ(hw::DefaultProbeGroupSize(), 4u);
  hw::SetDefaultProbeGroupSize(1000);  // clamped down to 32
  EXPECT_EQ(hw::DefaultProbeGroupSize(), 32u);
  hw::SetDefaultProbeGroupSize(5);  // rounded up to the next power of two
  EXPECT_EQ(hw::DefaultProbeGroupSize(), 8u);
  hw::MachineModel model = hw::MachineModel::Desktop();
  model.probe_group_size = 16;
  model.ApplyAll();
  EXPECT_EQ(hw::DefaultProbeGroupSize(), 16u);
  hw::SetDefaultProbeGroupSize(before);
}

TEST(ProbeKernelsTest, WithProbeGroupRoundsToCompiledSizes) {
  auto width = [](uint32_t requested) {
    return WithProbeGroup(requested, [](auto g) -> uint32_t {
      return decltype(g)::value;
    });
  };
  EXPECT_EQ(width(1), 4u);
  EXPECT_EQ(width(4), 4u);
  EXPECT_EQ(width(5), 8u);
  EXPECT_EQ(width(8), 8u);
  EXPECT_EQ(width(16), 16u);
  EXPECT_EQ(width(17), 32u);
  EXPECT_EQ(width(64), 32u);
  EXPECT_EQ(width(0), 16u);  // the process default (16 unless retuned)
}

// TSan target (label: sanitize): FindBatch reading while another thread is
// still publishing entries. The scalar safety contract must carry over to
// the prefetch-pipelined kernel: a concurrent probe may miss a racing key
// or see its value as still 0, but never tears, crashes, or reports a
// value other than the published one.
TEST(ProbeBatchConcurrencyTest, FindBatchRacesConcurrentInserts) {
  constexpr size_t kKeys = 4096;
  Xoshiro256 rng(10);
  std::vector<uint64_t> keys(kKeys);
  for (auto& k : keys) k = rng.Next() >> 1;

  ConcurrentHashTable table(kKeys);
  std::atomic<bool> go{false};
  std::thread writer([&] {
    while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
    for (size_t i = 0; i < kKeys; ++i) table.Insert(keys[i], keys[i] + 1);
  });

  std::vector<uint64_t> values(kKeys);
  std::unique_ptr<bool[]> found(new bool[kKeys]);
  go.store(true, std::memory_order_release);
  for (int round = 0; round < 64; ++round) {
    const size_t hits =
        table.FindBatch(keys.data(), kKeys, values.data(), found.get());
    size_t counted = 0;
    for (size_t i = 0; i < kKeys; ++i) {
      if (found[i]) {
        // Key published; value is either published too or still the
        // zero-initialized slot (the documented racing-read outcome).
        EXPECT_TRUE(values[i] == keys[i] + 1 || values[i] == 0)
            << "i=" << i << " value=" << values[i];
        ++counted;
      } else {
        EXPECT_EQ(values[i], 0u);
      }
    }
    EXPECT_EQ(counted, hits);
  }
  writer.join();

  // Deterministic once the writer is joined: every key present, every
  // value published.
  const size_t hits =
      table.FindBatch(keys.data(), kKeys, values.data(), found.get());
  EXPECT_EQ(hits, kKeys);
  for (size_t i = 0; i < kKeys; ++i) {
    EXPECT_TRUE(found[i]);
    EXPECT_EQ(values[i], keys[i] + 1);
  }
}

}  // namespace
}  // namespace hwstar::ops
