#include "hwstar/engine/parallel.h"

#include <map>
#include <mutex>

#include "hwstar/common/macros.h"
#include "hwstar/engine/fused.h"
#include "hwstar/engine/vectorized.h"
#include "hwstar/engine/volcano.h"
#include "hwstar/exec/morsel.h"

namespace hwstar::engine {

QueryResult ExecuteParallel(const Query& query, exec::Executor* executor,
                            const ExecuteOptions& options,
                            uint64_t morsel_size) {
  HWSTAR_CHECK(query.input != nullptr);
  if (executor == nullptr || options.model == ExecutionModel::kVolcano) {
    return Execute(query, options);
  }

  const uint64_t n = query.input->num_rows();
  std::mutex merge_mutex;
  QueryResult total;
  std::map<int64_t, QueryGroup> merged_groups;

  exec::ParallelForMorsels(
      executor, n, morsel_size, [&](uint32_t /*worker*/, exec::Morsel m) {
        QueryResult partial;
        if (options.model == ExecutionModel::kFused) {
          partial = ExecuteFusedRange(query, m.begin, m.end);
        } else {
          VectorizedOptions vopts;
          vopts.batch_size = options.batch_size;
          vopts.row_begin = m.begin;
          vopts.row_end = m.end;
          partial = ExecuteVectorized(query, vopts);
        }
        std::lock_guard<std::mutex> lock(merge_mutex);
        total.sum += partial.sum;
        total.rows_passed += partial.rows_passed;
        for (const auto& g : partial.groups) {
          auto [it, inserted] =
              merged_groups.emplace(g.key, QueryGroup{g.key, 0, 0});
          it->second.sum += g.sum;
          it->second.count += g.count;
        }
      });

  for (const auto& [key, g] : merged_groups) total.groups.push_back(g);
  return total;
}

}  // namespace hwstar::engine
