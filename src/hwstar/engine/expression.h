#ifndef HWSTAR_ENGINE_EXPRESSION_H_
#define HWSTAR_ENGINE_EXPRESSION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hwstar/storage/column_store.h"

namespace hwstar::engine {

/// Expression node kinds.
enum class ExprKind : uint8_t {
  kColumn,
  kConstant,
  kAdd,
  kSub,
  kMul,
  kLt,
  kLe,
  kGt,
  kGe,
  kEq,
  kAnd,
  kOr,
};

/// A scalar expression over the integer view of a ColumnStore row. The
/// engine's value domain is int64 throughout (monetary values are
/// fixed-point cents; string columns are addressed via their dictionary
/// codes), which keeps every kernel monomorphic -- a deliberate
/// hardware-conscious simplification. Comparisons and logical operators
/// yield 0/1.
class Expr {
 public:
  explicit Expr(ExprKind kind) : kind_(kind) {}
  virtual ~Expr() = default;

  ExprKind kind() const { return kind_; }

  /// Row-at-a-time evaluation (used by the Volcano executor; one virtual
  /// dispatch per node per row -- the interpretation overhead E5
  /// measures).
  virtual int64_t Eval(const storage::ColumnStore& store,
                       uint64_t row) const = 0;

  /// Batch evaluation into `out` for rows [begin, end) (used by the
  /// vectorized executor; one virtual dispatch per node per *batch*).
  virtual void EvalBatch(const storage::ColumnStore& store, uint64_t begin,
                         uint64_t end, int64_t* out) const = 0;

  /// Human-readable rendering for plan explain output.
  virtual std::string ToString() const = 0;

  /// Structural accessors for plan pattern matching (the JiT planner walks
  /// these). Defaults cover leaf nodes.
  virtual const Expr* left() const { return nullptr; }
  virtual const Expr* right() const { return nullptr; }
  /// Column index for kColumn nodes; -1 otherwise.
  virtual int column_index() const { return -1; }
  /// Constant value for kConstant nodes; 0 otherwise.
  virtual int64_t constant_value() const { return 0; }

 private:
  ExprKind kind_;
};

using ExprPtr = std::shared_ptr<Expr>;

/// Builders.
ExprPtr Col(size_t index, std::string name = "");
ExprPtr Lit(int64_t value);
ExprPtr Add(ExprPtr l, ExprPtr r);
ExprPtr Sub(ExprPtr l, ExprPtr r);
ExprPtr Mul(ExprPtr l, ExprPtr r);
ExprPtr Lt(ExprPtr l, ExprPtr r);
ExprPtr Le(ExprPtr l, ExprPtr r);
ExprPtr Gt(ExprPtr l, ExprPtr r);
ExprPtr Ge(ExprPtr l, ExprPtr r);
ExprPtr Eq(ExprPtr l, ExprPtr r);
ExprPtr And(ExprPtr l, ExprPtr r);
ExprPtr Or(ExprPtr l, ExprPtr r);

}  // namespace hwstar::engine

#endif  // HWSTAR_ENGINE_EXPRESSION_H_
