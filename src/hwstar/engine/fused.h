#ifndef HWSTAR_ENGINE_FUSED_H_
#define HWSTAR_ENGINE_FUSED_H_

#include "hwstar/engine/plan.h"

namespace hwstar::engine {

/// Executes the query as one fused, specialization-compiled loop -- the
/// result a JiT query compiler would emit. The planner pattern-matches the
/// expression tree onto a small family of templates (range predicates over
/// one or two columns; sum of a column or of a column product); when the
/// query fits, the whole pipeline runs with zero interpretation: no virtual
/// calls, no intermediate vectors, one pass over the data. Returns false
/// through `*recognized` (and falls back to vectorized execution) when the
/// query shape is outside the template family, mirroring how real JiT
/// engines fall back to interpretation.
QueryResult ExecuteFused(const Query& query, bool* recognized = nullptr);

/// Range-restricted variant over rows [begin, end): the building block of
/// morsel-parallel fused execution (engine/parallel.h). Semantics are
/// identical to ExecuteFused restricted to the range.
QueryResult ExecuteFusedRange(const Query& query, uint64_t begin,
                              uint64_t end, bool* recognized = nullptr);

}  // namespace hwstar::engine

#endif  // HWSTAR_ENGINE_FUSED_H_
