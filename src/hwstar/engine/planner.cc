#include "hwstar/engine/planner.h"

#include <sstream>

#include "hwstar/common/macros.h"

namespace hwstar::engine {

QueryResult Execute(const Query& query, const ExecuteOptions& options) {
  switch (options.model) {
    case ExecutionModel::kVolcano:
      return ExecuteVolcano(query);
    case ExecutionModel::kVectorized: {
      VectorizedOptions vopts;
      vopts.batch_size = options.batch_size;
      return ExecuteVectorized(query, vopts);
    }
    case ExecutionModel::kFused:
      return ExecuteFused(query);
  }
  HWSTAR_CHECK(false);
  return QueryResult{};
}

ExecuteOptions ChooseOptions(const Query& query,
                             const hw::MachineModel& machine) {
  ExecuteOptions opts;
  const uint64_t rows = query.input == nullptr ? 0 : query.input->num_rows();
  if (rows < 1024) {
    opts.model = ExecutionModel::kVolcano;
    return opts;
  }
  opts.model = ExecutionModel::kFused;
  // Vectorized fallback batch size: half of L1d in 8-byte values, so the
  // working vectors (predicate + aggregate + selection) stay L1-resident.
  const uint64_t l1 =
      machine.caches.empty() ? 32 * 1024 : machine.caches[0].size_bytes;
  uint64_t batch = (l1 / 2) / sizeof(int64_t);
  if (batch < 64) batch = 64;
  if (batch > 65536) batch = 65536;
  opts.batch_size = static_cast<uint32_t>(batch);
  return opts;
}

std::string Explain(const Query& query, const ExecuteOptions& options) {
  std::ostringstream os;
  os << "Query: " << query.ToString() << "\n";
  os << "Model: " << ExecutionModelName(options.model);
  if (options.model == ExecutionModel::kVectorized) {
    os << " (batch=" << options.batch_size << ")";
  }
  if (options.model == ExecutionModel::kFused) {
    bool recognized = false;
    // Dry-run the matcher on an empty input? Pattern matching is
    // side-effect free, so just report whether the real run would fuse.
    Query probe = query;
    if (probe.input != nullptr && probe.input->num_rows() == 0) {
      ExecuteFused(probe, &recognized);
      os << (recognized ? " (specialized)" : " (fallback: vectorized)");
    }
  }
  os << "\n";
  return os.str();
}

}  // namespace hwstar::engine
