#include "hwstar/engine/plan.h"

#include <sstream>

namespace hwstar::engine {

std::string Query::ToString() const {
  std::ostringstream os;
  os << "SELECT SUM(" << (aggregate ? aggregate->ToString() : "1") << ")";
  if (group_by.has_value()) os << " GROUP BY $" << *group_by;
  if (filter) os << " WHERE " << filter->ToString();
  return os.str();
}

const char* ExecutionModelName(ExecutionModel model) {
  switch (model) {
    case ExecutionModel::kVolcano:
      return "volcano";
    case ExecutionModel::kVectorized:
      return "vectorized";
    case ExecutionModel::kFused:
      return "fused";
  }
  return "?";
}

}  // namespace hwstar::engine
