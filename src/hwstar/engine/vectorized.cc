#include "hwstar/engine/vectorized.h"

#include <algorithm>
#include <limits>
#include <map>
#include <span>
#include <vector>

#include "hwstar/common/macros.h"
#include "hwstar/ops/selection.h"

namespace hwstar::engine {

namespace {

/// Range-filter pattern matching: folds a predicate tree of the shape
/// `And(col >= c1, col < c2)` (any mix of Ge/Gt/Le/Lt over one column,
/// each as `col OP const`) into a single [lo, hi) interval. Matching
/// predicates bypass EvalBatch entirely and run the explicitly
/// data-parallel ops::SelectBitmap kernel; anything else falls back to
/// the interpreted primitive. Bounds that the half-open interval cannot
/// represent are rejected rather than approximated: `col <= INT64_MAX`
/// and `col > INT64_MAX` have no exclusive upper bound / incremented
/// lower bound, and a predicate with no upper bound at all would need
/// hi = 2^63 -- EvalBatch handles those, so semantics never change.
struct RangeMatch {
  int column = -1;
  int64_t lo = std::numeric_limits<int64_t>::min();
  int64_t hi = 0;
  bool has_hi = false;
  bool ok = true;
};

bool BindColumnConst(const Expr* e, int* column, int64_t* c) {
  const Expr* l = e->left();
  const Expr* r = e->right();
  if (l == nullptr || r == nullptr) return false;
  if (l->kind() != ExprKind::kColumn || r->kind() != ExprKind::kConstant) {
    return false;
  }
  *column = l->column_index();
  *c = r->constant_value();
  return true;
}

void FoldPredicate(const Expr* e, RangeMatch* m) {
  if (!m->ok || e == nullptr) {
    m->ok = false;
    return;
  }
  const ExprKind k = e->kind();
  if (k == ExprKind::kAnd) {
    FoldPredicate(e->left(), m);
    FoldPredicate(e->right(), m);
    return;
  }
  int column = -1;
  int64_t c = 0;
  if ((k != ExprKind::kGe && k != ExprKind::kGt && k != ExprKind::kLt &&
       k != ExprKind::kLe) ||
      !BindColumnConst(e, &column, &c)) {
    m->ok = false;
    return;
  }
  if (m->column >= 0 && column != m->column) {
    m->ok = false;
    return;
  }
  m->column = column;
  const int64_t kMax = std::numeric_limits<int64_t>::max();
  switch (k) {
    case ExprKind::kGe:
      m->lo = std::max(m->lo, c);
      break;
    case ExprKind::kGt:
      if (c == kMax) {
        m->ok = false;
        return;
      }
      m->lo = std::max(m->lo, c + 1);
      break;
    case ExprKind::kLt:
      m->hi = m->has_hi ? std::min(m->hi, c) : c;
      m->has_hi = true;
      break;
    case ExprKind::kLe:
      if (c == kMax) {
        m->ok = false;
        return;
      }
      m->hi = m->has_hi ? std::min(m->hi, c + 1) : c + 1;
      m->has_hi = true;
      break;
    default:
      m->ok = false;
      return;
  }
}

bool MatchRangeFilter(const Expr* e, RangeMatch* out) {
  RangeMatch m;
  FoldPredicate(e, &m);
  if (!m.ok || !m.has_hi || m.column < 0) return false;
  *out = m;
  return true;
}

}  // namespace

QueryResult ExecuteVectorized(const Query& query,
                              const VectorizedOptions& options) {
  HWSTAR_CHECK(query.input != nullptr);
  HWSTAR_CHECK(options.batch_size > 0);
  QueryResult result;
  const storage::ColumnStore& store = *query.input;
  const uint64_t n = std::min<uint64_t>(store.num_rows(), options.row_end);
  const uint32_t batch = options.batch_size;

  std::vector<int64_t> pred(batch);
  std::vector<int64_t> agg(batch);
  std::vector<uint32_t> sel(batch);
  std::map<int64_t, QueryGroup> groups;

  // Recognize range predicates once per query; matching filters run the
  // SIMD selection kernel per batch instead of the interpreted EvalBatch.
  // The bitmap scratch lives across batches (the SelectBitmap scratch
  // overload), so the whole filter chain allocates nothing per batch
  // after the first.
  RangeMatch range;
  const bool use_range_kernel =
      query.filter != nullptr && MatchRangeFilter(query.filter.get(), &range);
  const int64_t* range_column =
      use_range_kernel
          ? store.IntColumn(static_cast<size_t>(range.column)).data()
          : nullptr;
  std::vector<uint64_t> bitmap_scratch;

  for (uint64_t begin = options.row_begin; begin < n; begin += batch) {
    const uint64_t end = std::min<uint64_t>(begin + batch, n);
    const uint32_t count = static_cast<uint32_t>(end - begin);

    // Filter primitive: selection vector of batch-relative offsets.
    uint32_t selected = 0;
    if (use_range_kernel) {
      selected = static_cast<uint32_t>(ops::SelectBitmap(
          std::span<const int64_t>(range_column + begin, count), range.lo,
          range.hi, &sel, &bitmap_scratch));
    } else if (query.filter) {
      query.filter->EvalBatch(store, begin, end, pred.data());
      for (uint32_t i = 0; i < count; ++i) {
        sel[selected] = i;
        selected += pred[i] != 0;
      }
    } else {
      for (uint32_t i = 0; i < count; ++i) sel[i] = i;
      selected = count;
    }
    if (selected == 0) continue;

    // Aggregate-input primitive over the full batch, folded through the
    // selection vector. (Evaluating only selected positions would need
    // gather support; evaluating the dense batch keeps primitives simple
    // and sequential, the standard vectorized trade-off.)
    if (query.aggregate) {
      query.aggregate->EvalBatch(store, begin, end, agg.data());
    } else {
      std::fill(agg.begin(), agg.begin() + count, int64_t{1});
    }

    if (query.group_by.has_value()) {
      const int64_t* keys = store.IntColumn(*query.group_by).data() + begin;
      for (uint32_t k = 0; k < selected; ++k) {
        const uint32_t i = sel[k];
        auto [it, inserted] =
            groups.emplace(keys[i], QueryGroup{keys[i], 0, 0});
        it->second.sum += agg[i];
        ++it->second.count;
      }
    }
    int64_t batch_sum = 0;
    for (uint32_t k = 0; k < selected; ++k) batch_sum += agg[sel[k]];
    result.sum += batch_sum;
    result.rows_passed += selected;
  }

  for (const auto& [key, g] : groups) result.groups.push_back(g);
  return result;
}

}  // namespace hwstar::engine
