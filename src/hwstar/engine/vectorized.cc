#include "hwstar/engine/vectorized.h"

#include <algorithm>
#include <map>
#include <vector>

#include "hwstar/common/macros.h"

namespace hwstar::engine {

QueryResult ExecuteVectorized(const Query& query,
                              const VectorizedOptions& options) {
  HWSTAR_CHECK(query.input != nullptr);
  HWSTAR_CHECK(options.batch_size > 0);
  QueryResult result;
  const storage::ColumnStore& store = *query.input;
  const uint64_t n = std::min<uint64_t>(store.num_rows(), options.row_end);
  const uint32_t batch = options.batch_size;

  std::vector<int64_t> pred(batch);
  std::vector<int64_t> agg(batch);
  std::vector<uint32_t> sel(batch);
  std::map<int64_t, QueryGroup> groups;

  for (uint64_t begin = options.row_begin; begin < n; begin += batch) {
    const uint64_t end = std::min<uint64_t>(begin + batch, n);
    const uint32_t count = static_cast<uint32_t>(end - begin);

    // Filter primitive: selection vector of batch-relative offsets.
    uint32_t selected = 0;
    if (query.filter) {
      query.filter->EvalBatch(store, begin, end, pred.data());
      for (uint32_t i = 0; i < count; ++i) {
        sel[selected] = i;
        selected += pred[i] != 0;
      }
    } else {
      for (uint32_t i = 0; i < count; ++i) sel[i] = i;
      selected = count;
    }
    if (selected == 0) continue;

    // Aggregate-input primitive over the full batch, folded through the
    // selection vector. (Evaluating only selected positions would need
    // gather support; evaluating the dense batch keeps primitives simple
    // and sequential, the standard vectorized trade-off.)
    if (query.aggregate) {
      query.aggregate->EvalBatch(store, begin, end, agg.data());
    } else {
      std::fill(agg.begin(), agg.begin() + count, int64_t{1});
    }

    if (query.group_by.has_value()) {
      const int64_t* keys = store.IntColumn(*query.group_by).data() + begin;
      for (uint32_t k = 0; k < selected; ++k) {
        const uint32_t i = sel[k];
        auto [it, inserted] =
            groups.emplace(keys[i], QueryGroup{keys[i], 0, 0});
        it->second.sum += agg[i];
        ++it->second.count;
      }
    }
    int64_t batch_sum = 0;
    for (uint32_t k = 0; k < selected; ++k) batch_sum += agg[sel[k]];
    result.sum += batch_sum;
    result.rows_passed += selected;
  }

  for (const auto& [key, g] : groups) result.groups.push_back(g);
  return result;
}

}  // namespace hwstar::engine
