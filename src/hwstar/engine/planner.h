#ifndef HWSTAR_ENGINE_PLANNER_H_
#define HWSTAR_ENGINE_PLANNER_H_

#include <string>

#include "hwstar/engine/fused.h"
#include "hwstar/engine/plan.h"
#include "hwstar/engine/vectorized.h"
#include "hwstar/engine/volcano.h"
#include "hwstar/hw/machine_model.h"

namespace hwstar::engine {

/// Execution options common to all models.
struct ExecuteOptions {
  ExecutionModel model = ExecutionModel::kFused;
  uint32_t batch_size = 2048;  ///< vectorized only
};

/// Runs the query under the chosen model. All models return identical
/// results; only their hardware behaviour differs (E5).
QueryResult Execute(const Query& query, const ExecuteOptions& options = {});

/// Picks an execution model for the machine: tiny inputs take the Volcano
/// path (setup cost dominates), everything else the fused path, with a
/// vectorized batch size matched to half the L1 cache. A deliberately
/// simple cost model that demonstrates the paper's demand: the *engine*
/// must own hardware decisions, not the application developer.
ExecuteOptions ChooseOptions(const Query& query,
                             const hw::MachineModel& machine);

/// Multi-line explain output: query, chosen model, plan shape.
std::string Explain(const Query& query, const ExecuteOptions& options);

}  // namespace hwstar::engine

#endif  // HWSTAR_ENGINE_PLANNER_H_
