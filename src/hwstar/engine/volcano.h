#ifndef HWSTAR_ENGINE_VOLCANO_H_
#define HWSTAR_ENGINE_VOLCANO_H_

#include "hwstar/engine/plan.h"

namespace hwstar::engine {

/// Executes the query tuple-at-a-time through a Volcano-style iterator
/// tree (Scan -> Filter -> Aggregate), with one virtual Next() call per
/// operator per tuple and per-row expression interpretation. This is how
/// disk-era engines were built -- the per-tuple overhead was noise next to
/// I/O. In main memory it dominates, which is E5's first data point.
QueryResult ExecuteVolcano(const Query& query);

}  // namespace hwstar::engine

#endif  // HWSTAR_ENGINE_VOLCANO_H_
