#ifndef HWSTAR_ENGINE_VECTORIZED_H_
#define HWSTAR_ENGINE_VECTORIZED_H_

#include "hwstar/engine/plan.h"

namespace hwstar::engine {

/// Options for the vectorized executor.
struct VectorizedOptions {
  uint32_t batch_size = 2048;  ///< rows per batch (E5 sweeps this)
  /// Row range to execute over ([row_begin, min(row_end, num_rows))).
  /// Defaults cover the whole input; parallel execution assigns disjoint
  /// ranges to workers.
  uint64_t row_begin = 0;
  uint64_t row_end = ~uint64_t{0};
};

/// Executes the query batch-at-a-time (VectorWise style): the filter
/// produces a selection vector per batch; the aggregate folds the selected
/// positions. Interpretation cost is paid once per *batch*, and each
/// primitive runs as a tight loop over cache-resident vectors -- provided
/// the batch fits in L1/L2, which is exactly the batch-size sweet spot E5
/// exposes.
QueryResult ExecuteVectorized(const Query& query,
                              const VectorizedOptions& options = {});

}  // namespace hwstar::engine

#endif  // HWSTAR_ENGINE_VECTORIZED_H_
