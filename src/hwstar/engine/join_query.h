#ifndef HWSTAR_ENGINE_JOIN_QUERY_H_
#define HWSTAR_ENGINE_JOIN_QUERY_H_

#include <cstdint>

#include "hwstar/engine/expression.h"
#include "hwstar/exec/executor.h"
#include "hwstar/storage/column_store.h"

namespace hwstar::engine {

/// Join algorithm selection for ExecuteJoin.
enum class JoinAlgorithm : uint8_t {
  kAuto = 0,         ///< planner picks by build size vs. LLC
  kNoPartition = 1,  ///< oblivious baseline
  kRadix = 2,        ///< hardware-conscious radix join
};

/// A two-table aggregate join:
///   SELECT SUM(aggregate(probe-row)) FROM build JOIN probe
///     ON build.key == probe.key
///   WHERE build_filter(build-row) AND probe_filter(probe-row)
/// with each qualifying probe row counted once per matching build row.
/// This is the shape of TPC-H's join queries (Q3/Q12 style) reduced to
/// the engine's int64 domain.
struct JoinQuery {
  const storage::ColumnStore* build = nullptr;
  size_t build_key = 0;
  const storage::ColumnStore* probe = nullptr;
  size_t probe_key = 0;
  ExprPtr build_filter;  ///< optional, evaluated over the build store
  ExprPtr probe_filter;  ///< optional, evaluated over the probe store
  ExprPtr aggregate;     ///< over the probe store; null = COUNT(*)
};

/// Result of a join query.
struct JoinQueryResult {
  int64_t sum = 0;
  uint64_t matches = 0;
  uint64_t build_rows_passed = 0;
  uint64_t probe_rows_passed = 0;
};

/// Options for ExecuteJoin.
struct JoinExecuteOptions {
  JoinAlgorithm algorithm = JoinAlgorithm::kAuto;
  uint64_t llc_bytes = 0;           ///< 0 = discover from the host
  exec::Executor* pool = nullptr;   ///< parallel join phase when set
};

/// Executes the join: filters both sides with the vectorized selection
/// path, pipes the survivors through the chosen ops-layer join, and folds
/// the aggregate. kAuto applies the same rule as the ops layer: partition
/// when the build side's working set exceeds the last-level cache.
JoinQueryResult ExecuteJoin(const JoinQuery& query,
                            const JoinExecuteOptions& options = {});

}  // namespace hwstar::engine

#endif  // HWSTAR_ENGINE_JOIN_QUERY_H_
