#include "hwstar/engine/expression.h"

#include <sstream>

#include "hwstar/common/macros.h"

namespace hwstar::engine {

namespace {

class ColumnExpr final : public Expr {
 public:
  ColumnExpr(size_t index, std::string name)
      : Expr(ExprKind::kColumn), index_(index), name_(std::move(name)) {}

  int64_t Eval(const storage::ColumnStore& store, uint64_t row) const override {
    return store.IntColumn(index_)[row];
  }

  void EvalBatch(const storage::ColumnStore& store, uint64_t begin,
                 uint64_t end, int64_t* out) const override {
    const int64_t* src = store.IntColumn(index_).data();
    for (uint64_t i = begin; i < end; ++i) *out++ = src[i];
  }

  std::string ToString() const override {
    return name_.empty() ? "$" + std::to_string(index_) : name_;
  }

  int column_index() const override { return static_cast<int>(index_); }

 private:
  size_t index_;
  std::string name_;
};

class ConstExpr final : public Expr {
 public:
  explicit ConstExpr(int64_t value)
      : Expr(ExprKind::kConstant), value_(value) {}

  int64_t Eval(const storage::ColumnStore&, uint64_t) const override {
    return value_;
  }

  void EvalBatch(const storage::ColumnStore&, uint64_t begin, uint64_t end,
                 int64_t* out) const override {
    for (uint64_t i = begin; i < end; ++i) *out++ = value_;
  }

  std::string ToString() const override { return std::to_string(value_); }

  int64_t constant_value() const override { return value_; }

 private:
  int64_t value_;
};

class BinaryExpr final : public Expr {
 public:
  BinaryExpr(ExprKind kind, ExprPtr l, ExprPtr r)
      : Expr(kind), l_(std::move(l)), r_(std::move(r)) {}

  int64_t Eval(const storage::ColumnStore& store, uint64_t row) const override {
    const int64_t a = l_->Eval(store, row);
    const int64_t b = r_->Eval(store, row);
    return Apply(a, b);
  }

  void EvalBatch(const storage::ColumnStore& store, uint64_t begin,
                 uint64_t end, int64_t* out) const override {
    const uint64_t n = end - begin;
    std::vector<int64_t> lhs(n), rhs(n);
    l_->EvalBatch(store, begin, end, lhs.data());
    r_->EvalBatch(store, begin, end, rhs.data());
    for (uint64_t i = 0; i < n; ++i) out[i] = Apply(lhs[i], rhs[i]);
  }

  std::string ToString() const override {
    std::ostringstream os;
    os << "(" << l_->ToString() << " " << OpName() << " " << r_->ToString()
       << ")";
    return os.str();
  }

  const Expr* left() const override { return l_.get(); }
  const Expr* right() const override { return r_.get(); }

 private:
  int64_t Apply(int64_t a, int64_t b) const {
    switch (kind()) {
      case ExprKind::kAdd:
        return a + b;
      case ExprKind::kSub:
        return a - b;
      case ExprKind::kMul:
        return a * b;
      case ExprKind::kLt:
        return a < b;
      case ExprKind::kLe:
        return a <= b;
      case ExprKind::kGt:
        return a > b;
      case ExprKind::kGe:
        return a >= b;
      case ExprKind::kEq:
        return a == b;
      case ExprKind::kAnd:
        return (a != 0) && (b != 0);
      case ExprKind::kOr:
        return (a != 0) || (b != 0);
      default:
        HWSTAR_CHECK(false);
    }
    return 0;
  }

  const char* OpName() const {
    switch (kind()) {
      case ExprKind::kAdd:
        return "+";
      case ExprKind::kSub:
        return "-";
      case ExprKind::kMul:
        return "*";
      case ExprKind::kLt:
        return "<";
      case ExprKind::kLe:
        return "<=";
      case ExprKind::kGt:
        return ">";
      case ExprKind::kGe:
        return ">=";
      case ExprKind::kEq:
        return "==";
      case ExprKind::kAnd:
        return "and";
      case ExprKind::kOr:
        return "or";
      default:
        return "?";
    }
  }

  ExprPtr l_;
  ExprPtr r_;
};

}  // namespace

ExprPtr Col(size_t index, std::string name) {
  return std::make_shared<ColumnExpr>(index, std::move(name));
}
ExprPtr Lit(int64_t value) { return std::make_shared<ConstExpr>(value); }

#define HWSTAR_DEFINE_BINARY(Name, Kind)                         \
  ExprPtr Name(ExprPtr l, ExprPtr r) {                           \
    return std::make_shared<BinaryExpr>(ExprKind::Kind, std::move(l), \
                                        std::move(r));           \
  }

HWSTAR_DEFINE_BINARY(Add, kAdd)
HWSTAR_DEFINE_BINARY(Sub, kSub)
HWSTAR_DEFINE_BINARY(Mul, kMul)
HWSTAR_DEFINE_BINARY(Lt, kLt)
HWSTAR_DEFINE_BINARY(Le, kLe)
HWSTAR_DEFINE_BINARY(Gt, kGt)
HWSTAR_DEFINE_BINARY(Ge, kGe)
HWSTAR_DEFINE_BINARY(Eq, kEq)
HWSTAR_DEFINE_BINARY(And, kAnd)
HWSTAR_DEFINE_BINARY(Or, kOr)

#undef HWSTAR_DEFINE_BINARY

}  // namespace hwstar::engine
