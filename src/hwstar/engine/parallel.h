#ifndef HWSTAR_ENGINE_PARALLEL_H_
#define HWSTAR_ENGINE_PARALLEL_H_

#include "hwstar/engine/plan.h"
#include "hwstar/engine/planner.h"
#include "hwstar/exec/morsel.h"

namespace hwstar::engine {

/// Morsel-parallel query execution: the input row range is handed out in
/// morsels, each worker executes its morsel through the chosen model
/// (fused or vectorized -- Volcano is inherently serial and is executed
/// as one task), and partial results are merged. Grouped results merge by
/// key. This is the composition of the paper's two multicore demands:
/// compiled-quality inner loops AND elastic scheduling on top.
/// morsel_size 0 reads the tune::MorselRows knob.
QueryResult ExecuteParallel(const Query& query, exec::Executor* executor,
                            const ExecuteOptions& options = {},
                            uint64_t morsel_size = 0);

}  // namespace hwstar::engine

#endif  // HWSTAR_ENGINE_PARALLEL_H_
