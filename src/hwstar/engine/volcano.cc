#include "hwstar/engine/volcano.h"

#include <algorithm>
#include <map>

#include "hwstar/common/macros.h"

namespace hwstar::engine {

namespace {

/// Tuple-at-a-time operator interface: Next() yields a row id or false.
class Operator {
 public:
  virtual ~Operator() = default;
  virtual void Open() = 0;
  virtual bool Next(uint64_t* row) = 0;
  virtual void Close() = 0;
};

class ScanOp final : public Operator {
 public:
  explicit ScanOp(const storage::ColumnStore* store) : store_(store) {}
  void Open() override { cursor_ = 0; }
  bool Next(uint64_t* row) override {
    if (cursor_ >= store_->num_rows()) return false;
    *row = cursor_++;
    return true;
  }
  void Close() override {}

 private:
  const storage::ColumnStore* store_;
  uint64_t cursor_ = 0;
};

class FilterOp final : public Operator {
 public:
  FilterOp(Operator* child, const storage::ColumnStore* store, ExprPtr pred)
      : child_(child), store_(store), pred_(std::move(pred)) {}
  void Open() override { child_->Open(); }
  bool Next(uint64_t* row) override {
    while (child_->Next(row)) {
      if (pred_->Eval(*store_, *row) != 0) return true;
    }
    return false;
  }
  void Close() override { child_->Close(); }

 private:
  Operator* child_;
  const storage::ColumnStore* store_;
  ExprPtr pred_;
};

}  // namespace

QueryResult ExecuteVolcano(const Query& query) {
  HWSTAR_CHECK(query.input != nullptr);
  QueryResult result;

  ScanOp scan(query.input);
  FilterOp filter(&scan, query.input, query.filter);
  Operator* root = query.filter ? static_cast<Operator*>(&filter) : &scan;

  std::map<int64_t, QueryGroup> groups;
  root->Open();
  uint64_t row;
  while (root->Next(&row)) {
    const int64_t v =
        query.aggregate ? query.aggregate->Eval(*query.input, row) : 1;
    result.sum += v;
    ++result.rows_passed;
    if (query.group_by.has_value()) {
      const int64_t key = query.input->IntColumn(*query.group_by)[row];
      auto [it, inserted] = groups.emplace(key, QueryGroup{key, 0, 0});
      it->second.sum += v;
      ++it->second.count;
    }
  }
  root->Close();

  for (const auto& [key, g] : groups) result.groups.push_back(g);
  return result;
}

}  // namespace hwstar::engine
