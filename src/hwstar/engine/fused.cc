#include "hwstar/engine/fused.h"

#include <limits>
#include <vector>

#include "hwstar/common/macros.h"
#include "hwstar/engine/vectorized.h"

namespace hwstar::engine {

namespace {

/// One normalized per-column range condition: lo <= col <= hi.
struct RangeCond {
  int col = -1;
  int64_t lo = std::numeric_limits<int64_t>::min();
  int64_t hi = std::numeric_limits<int64_t>::max();
};

/// Recognized aggregate shapes.
enum class AggShape { kCountStar, kColumn, kColumnProduct };

struct FusedPlan {
  std::vector<RangeCond> conds;  // conjunction, at most 2 for the templates
  AggShape agg = AggShape::kCountStar;
  int agg_col_a = -1;
  int agg_col_b = -1;
};

/// Merges a comparison (col op lit) into the condition list.
bool AddComparison(std::vector<RangeCond>* conds, int col, ExprKind op,
                   int64_t lit, bool col_on_left) {
  // Normalize literal-on-left comparisons by flipping the operator.
  if (!col_on_left) {
    switch (op) {
      case ExprKind::kLt:
        op = ExprKind::kGt;
        break;
      case ExprKind::kLe:
        op = ExprKind::kGe;
        break;
      case ExprKind::kGt:
        op = ExprKind::kLt;
        break;
      case ExprKind::kGe:
        op = ExprKind::kLe;
        break;
      case ExprKind::kEq:
        break;
      default:
        return false;
    }
  }
  RangeCond* cond = nullptr;
  for (auto& c : *conds) {
    if (c.col == col) cond = &c;
  }
  if (cond == nullptr) {
    conds->push_back(RangeCond{col, std::numeric_limits<int64_t>::min(),
                               std::numeric_limits<int64_t>::max()});
    cond = &conds->back();
  }
  switch (op) {
    case ExprKind::kLt:
      if (lit == std::numeric_limits<int64_t>::min()) return false;
      cond->hi = std::min(cond->hi, lit - 1);
      break;
    case ExprKind::kLe:
      cond->hi = std::min(cond->hi, lit);
      break;
    case ExprKind::kGt:
      if (lit == std::numeric_limits<int64_t>::max()) return false;
      cond->lo = std::max(cond->lo, lit + 1);
      break;
    case ExprKind::kGe:
      cond->lo = std::max(cond->lo, lit);
      break;
    case ExprKind::kEq:
      cond->lo = std::max(cond->lo, lit);
      cond->hi = std::min(cond->hi, lit);
      break;
    default:
      return false;
  }
  return true;
}

/// Recursively matches a conjunction of column/literal comparisons.
bool MatchFilter(const Expr* e, std::vector<RangeCond>* conds) {
  if (e == nullptr) return true;
  if (e->kind() == ExprKind::kAnd) {
    return MatchFilter(e->left(), conds) && MatchFilter(e->right(), conds);
  }
  switch (e->kind()) {
    case ExprKind::kLt:
    case ExprKind::kLe:
    case ExprKind::kGt:
    case ExprKind::kGe:
    case ExprKind::kEq: {
      const Expr* l = e->left();
      const Expr* r = e->right();
      if (l->kind() == ExprKind::kColumn && r->kind() == ExprKind::kConstant) {
        return AddComparison(conds, l->column_index(), e->kind(),
                             r->constant_value(), /*col_on_left=*/true);
      }
      if (l->kind() == ExprKind::kConstant && r->kind() == ExprKind::kColumn) {
        return AddComparison(conds, r->column_index(), e->kind(),
                             l->constant_value(), /*col_on_left=*/false);
      }
      return false;
    }
    default:
      return false;
  }
}

bool MatchAggregate(const Expr* e, FusedPlan* plan) {
  if (e == nullptr) {
    plan->agg = AggShape::kCountStar;
    return true;
  }
  if (e->kind() == ExprKind::kColumn) {
    plan->agg = AggShape::kColumn;
    plan->agg_col_a = e->column_index();
    return true;
  }
  if (e->kind() == ExprKind::kMul && e->left() != nullptr &&
      e->right() != nullptr &&
      e->left()->kind() == ExprKind::kColumn &&
      e->right()->kind() == ExprKind::kColumn) {
    plan->agg = AggShape::kColumnProduct;
    plan->agg_col_a = e->left()->column_index();
    plan->agg_col_b = e->right()->column_index();
    return true;
  }
  return false;
}

/// The specialized loops. Each is what a query compiler would emit for its
/// shape: one pass, branch behaviour fully visible to the compiler.
template <typename AggFn>
QueryResult FusedLoop0(uint64_t begin, uint64_t end, AggFn agg) {
  QueryResult r;
  for (uint64_t i = begin; i < end; ++i) {
    r.sum += agg(i);
    ++r.rows_passed;
  }
  return r;
}

template <typename AggFn>
QueryResult FusedLoop1(uint64_t begin, uint64_t end, const int64_t* c0,
                       RangeCond k0, AggFn agg) {
  QueryResult r;
  for (uint64_t i = begin; i < end; ++i) {
    const uint64_t pass = static_cast<uint64_t>(c0[i] >= k0.lo) &
                          static_cast<uint64_t>(c0[i] <= k0.hi);
    r.sum += pass ? agg(i) : 0;
    r.rows_passed += pass;
  }
  return r;
}

template <typename AggFn>
QueryResult FusedLoop2(uint64_t begin, uint64_t end, const int64_t* c0,
                       RangeCond k0, const int64_t* c1, RangeCond k1,
                       AggFn agg) {
  QueryResult r;
  for (uint64_t i = begin; i < end; ++i) {
    const uint64_t pass = static_cast<uint64_t>(c0[i] >= k0.lo) &
                          static_cast<uint64_t>(c0[i] <= k0.hi) &
                          static_cast<uint64_t>(c1[i] >= k1.lo) &
                          static_cast<uint64_t>(c1[i] <= k1.hi);
    r.sum += pass ? agg(i) : 0;
    r.rows_passed += pass;
  }
  return r;
}

template <typename AggFn>
QueryResult Dispatch(const storage::ColumnStore& store, const FusedPlan& plan,
                     uint64_t begin, uint64_t end, AggFn agg) {
  if (plan.conds.empty()) {
    return FusedLoop0(begin, end, agg);
  }
  const int64_t* c0 = store.IntColumn(plan.conds[0].col).data();
  if (plan.conds.size() == 1) {
    return FusedLoop1(begin, end, c0, plan.conds[0], agg);
  }
  const int64_t* c1 = store.IntColumn(plan.conds[1].col).data();
  return FusedLoop2(begin, end, c0, plan.conds[0], c1, plan.conds[1], agg);
}

}  // namespace

QueryResult ExecuteFusedRange(const Query& query, uint64_t begin,
                              uint64_t end, bool* recognized) {
  HWSTAR_CHECK(query.input != nullptr);
  FusedPlan plan;
  const bool ok = !query.group_by.has_value() &&
                  MatchFilter(query.filter.get(), &plan.conds) &&
                  plan.conds.size() <= 2 &&
                  MatchAggregate(query.aggregate.get(), &plan);
  if (recognized != nullptr) *recognized = ok;
  if (!ok) {
    VectorizedOptions opts;
    opts.row_begin = begin;
    opts.row_end = end;
    return ExecuteVectorized(query, opts);
  }

  const storage::ColumnStore& store = *query.input;
  switch (plan.agg) {
    case AggShape::kCountStar:
      return Dispatch(store, plan, begin, end,
                      [](uint64_t) -> int64_t { return 1; });
    case AggShape::kColumn: {
      const int64_t* a = store.IntColumn(plan.agg_col_a).data();
      return Dispatch(store, plan, begin, end,
                      [a](uint64_t i) -> int64_t { return a[i]; });
    }
    case AggShape::kColumnProduct: {
      const int64_t* a = store.IntColumn(plan.agg_col_a).data();
      const int64_t* b = store.IntColumn(plan.agg_col_b).data();
      return Dispatch(store, plan, begin, end,
                      [a, b](uint64_t i) -> int64_t { return a[i] * b[i]; });
    }
  }
  return QueryResult{};
}

QueryResult ExecuteFused(const Query& query, bool* recognized) {
  HWSTAR_CHECK(query.input != nullptr);
  return ExecuteFusedRange(query, 0, query.input->num_rows(), recognized);
}

}  // namespace hwstar::engine
