#ifndef HWSTAR_ENGINE_PLAN_H_
#define HWSTAR_ENGINE_PLAN_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "hwstar/engine/expression.h"
#include "hwstar/storage/column_store.h"

namespace hwstar::engine {

/// The query shape shared by all three execution models:
///   SELECT SUM(aggregate) [, GROUP BY group_by] FROM input WHERE filter.
/// `filter` may be null (no predicate); `group_by` is a column index.
struct Query {
  const storage::ColumnStore* input = nullptr;
  ExprPtr filter;
  ExprPtr aggregate;
  std::optional<size_t> group_by;

  /// "SELECT SUM(...) FROM ... WHERE ..." rendering.
  std::string ToString() const;
};

/// One group of a grouped result.
struct QueryGroup {
  int64_t key;
  int64_t sum;
  uint64_t count;
};

/// Result of executing a Query.
struct QueryResult {
  int64_t sum = 0;            ///< total (ungrouped) sum
  uint64_t rows_passed = 0;   ///< rows surviving the filter
  std::vector<QueryGroup> groups;  ///< sorted by key when grouped
};

/// The three execution models of E5.
enum class ExecutionModel : uint8_t {
  kVolcano = 0,     ///< tuple-at-a-time iterators (oblivious baseline)
  kVectorized = 1,  ///< batch-at-a-time with selection vectors
  kFused = 2,       ///< template-specialized single loop ("compiled")
};

/// Stable model name for reports.
const char* ExecutionModelName(ExecutionModel model);

}  // namespace hwstar::engine

#endif  // HWSTAR_ENGINE_PLAN_H_
