#include "hwstar/engine/join_query.h"

#include <vector>

#include "hwstar/common/macros.h"
#include "hwstar/hw/topology.h"
#include "hwstar/ops/hash_table.h"
#include "hwstar/ops/join_radix.h"
#include "hwstar/ops/relation.h"

namespace hwstar::engine {

namespace {

/// Filters one side and extracts (join key, payload) survivors. Payloads
/// are the per-row values of `payload_expr` (bit-cast), or the row id when
/// the expression is null.
uint64_t FilterSide(const storage::ColumnStore& store, size_t key_col,
                    const Expr* filter, const Expr* payload_expr,
                    ops::Relation* out) {
  const uint64_t n = store.num_rows();
  const int64_t* keys = store.IntColumn(key_col).data();
  constexpr uint32_t kBatch = 4096;
  std::vector<int64_t> pred(kBatch);
  std::vector<int64_t> payload(kBatch);
  out->Reserve(n / 2);
  for (uint64_t begin = 0; begin < n; begin += kBatch) {
    const uint64_t end = std::min<uint64_t>(begin + kBatch, n);
    if (filter != nullptr) {
      filter->EvalBatch(store, begin, end, pred.data());
    }
    if (payload_expr != nullptr) {
      payload_expr->EvalBatch(store, begin, end, payload.data());
    }
    for (uint64_t i = begin; i < end; ++i) {
      if (filter != nullptr && pred[i - begin] == 0) continue;
      const uint64_t key = static_cast<uint64_t>(keys[i]);
      // The join hash table reserves ~0 as its empty sentinel.
      HWSTAR_CHECK(key != ~uint64_t{0});
      const uint64_t p = payload_expr != nullptr
                             ? static_cast<uint64_t>(payload[i - begin])
                             : i;
      out->Append(key, p);
    }
  }
  return out->size();
}

}  // namespace

JoinQueryResult ExecuteJoin(const JoinQuery& query,
                            const JoinExecuteOptions& options) {
  HWSTAR_CHECK(query.build != nullptr && query.probe != nullptr);
  JoinQueryResult result;

  // Filter phase: build side keeps row ids; probe side carries the
  // pre-evaluated aggregate value as its payload so the join phase can
  // fold without re-touching the probe store.
  ops::Relation build_rel, probe_rel;
  result.build_rows_passed =
      FilterSide(*query.build, query.build_key, query.build_filter.get(),
                 /*payload_expr=*/nullptr, &build_rel);
  result.probe_rows_passed =
      FilterSide(*query.probe, query.probe_key, query.probe_filter.get(),
                 query.aggregate.get(), &probe_rel);
  if (build_rel.size() == 0 || probe_rel.size() == 0) return result;

  // Algorithm choice: partition when the build working set (tuples plus
  // table) exceeds the LLC.
  JoinAlgorithm algorithm = options.algorithm;
  uint64_t llc = options.llc_bytes;
  if (algorithm == JoinAlgorithm::kAuto) {
    if (llc == 0) {
      auto topo = hw::DiscoverTopology();
      llc = topo.CacheSizeBytes(3);
      if (llc == 0) llc = topo.CacheSizeBytes(2);
      if (llc == 0) llc = 8 << 20;
    }
    algorithm = build_rel.size() * 48 > llc ? JoinAlgorithm::kRadix
                                            : JoinAlgorithm::kNoPartition;
  }

  const bool count_star = query.aggregate == nullptr;
  if (algorithm == JoinAlgorithm::kNoPartition) {
    ops::LinearProbeTable table(build_rel.size());
    for (uint64_t i = 0; i < build_rel.size(); ++i) {
      table.Insert(build_rel.keys[i], build_rel.payloads[i]);
    }
    // Batched probe keeps a group of probe keys' table misses in flight
    // (ops/probe_kernels.h); the integer fold is order-insensitive, so the
    // kernel's per-match callback order does not matter.
    result.matches += table.ProbeBatch(
        probe_rel.keys.data(), probe_rel.size(), [&](size_t i, uint64_t) {
          result.sum +=
              count_star ? 1 : static_cast<int64_t>(probe_rel.payloads[i]);
        });
    return result;
  }

  ops::RadixJoinOptions radix_opts;
  radix_opts.radix_bits = ops::RecommendRadixBits(
      build_rel.size(), llc == 0 ? (8u << 20) : llc);
  radix_opts.materialize = true;
  radix_opts.pool = options.pool;
  auto join = ops::RadixHashJoin(build_rel, probe_rel, radix_opts);
  result.matches = join.matches;
  if (count_star) {
    result.sum = static_cast<int64_t>(join.matches);
  } else {
    for (const auto& pair : join.pairs) {
      result.sum += static_cast<int64_t>(pair.probe_payload);
    }
  }
  return result;
}

}  // namespace hwstar::engine
