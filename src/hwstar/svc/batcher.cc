#include "hwstar/svc/batcher.h"

#include <algorithm>
#include <map>

#include "hwstar/common/bits.h"
#include "hwstar/common/macros.h"

namespace hwstar::svc {

Batcher::Batcher(BatcherOptions options) : options_(options) {
  HWSTAR_CHECK(bits::IsPowerOfTwo(options_.kv_shards));
  shard_shift_ = 64 - bits::Log2Floor(options_.kv_shards);
}

std::vector<Batch> Batcher::Group(std::vector<TicketPtr> tickets) const {
  std::vector<Batch> batches;
  // Point-gets and puts keyed by shard; aggregates keyed by target store.
  std::map<uint32_t, std::vector<TicketPtr>> gets_by_shard;
  std::map<uint32_t, std::vector<TicketPtr>> puts_by_shard;
  std::map<const storage::ColumnStore*, std::vector<TicketPtr>> aggs_by_store;

  for (auto& t : tickets) {
    switch (t->request.type) {
      case RequestType::kPointGet:
        gets_by_shard[ShardOf(t->request.get.key)].push_back(std::move(t));
        break;
      case RequestType::kPut:
        puts_by_shard[ShardOf(t->request.put.key)].push_back(std::move(t));
        break;
      case RequestType::kAggregate:
        aggs_by_store[t->request.agg.store].push_back(std::move(t));
        break;
      case RequestType::kScan:
      case RequestType::kJoin: {
        Batch b;
        b.type = t->request.type;
        b.tickets.push_back(std::move(t));
        batches.push_back(std::move(b));
        break;
      }
    }
  }

  for (auto& [shard, group] : gets_by_shard) {
    // Ascending key order inside the shard: the MultiGet run walks the
    // index with monotone keys (locality in trie/tree nodes).
    std::sort(group.begin(), group.end(),
              [](const TicketPtr& a, const TicketPtr& b) {
                return a->request.get.key < b->request.get.key;
              });
    for (size_t begin = 0; begin < group.size();
         begin += options_.max_batch) {
      const size_t end =
          std::min(group.size(), begin + options_.max_batch);
      Batch b;
      b.type = RequestType::kPointGet;
      b.shard = shard;
      b.tickets.reserve(end - begin);
      for (size_t i = begin; i < end; ++i) {
        b.tickets.push_back(std::move(group[i]));
      }
      batches.push_back(std::move(b));
    }
  }

  for (auto& [shard, group] : puts_by_shard) {
    // Sorted like gets (locality + one WAL shard mutex per run), but
    // STABLE: two puts to the same key must apply in submission order, or
    // batching would change which value wins.
    std::stable_sort(group.begin(), group.end(),
                     [](const TicketPtr& a, const TicketPtr& b) {
                       return a->request.put.key < b->request.put.key;
                     });
    for (size_t begin = 0; begin < group.size();) {
      size_t end = std::min(group.size(), begin + options_.max_batch);
      // Never split a run of equal keys across batches: batches for the
      // same shard may execute concurrently on different pool workers, so
      // a split run could apply the later-submitted put first — exactly
      // the reordering the stable sort exists to prevent.
      while (end < group.size() &&
             group[end]->request.put.key == group[end - 1]->request.put.key) {
        ++end;
      }
      Batch b;
      b.type = RequestType::kPut;
      b.shard = shard;
      b.tickets.reserve(end - begin);
      for (size_t i = begin; i < end; ++i) {
        b.tickets.push_back(std::move(group[i]));
      }
      batches.push_back(std::move(b));
      begin = end;
    }
  }

  for (auto& [store, group] : aggs_by_store) {
    for (size_t begin = 0; begin < group.size();
         begin += options_.max_batch) {
      const size_t end =
          std::min(group.size(), begin + options_.max_batch);
      Batch b;
      b.type = RequestType::kAggregate;
      b.tickets.reserve(end - begin);
      for (size_t i = begin; i < end; ++i) {
        b.tickets.push_back(std::move(group[i]));
      }
      batches.push_back(std::move(b));
    }
  }

  return batches;
}

}  // namespace hwstar::svc
