#include "hwstar/svc/batcher.h"

#include <algorithm>
#include <map>

#include "hwstar/common/bits.h"
#include "hwstar/common/macros.h"

namespace hwstar::svc {

Batcher::Batcher(BatcherOptions options) : options_(options) {
  HWSTAR_CHECK(bits::IsPowerOfTwo(options_.kv_shards));
  shard_shift_ = 64 - bits::Log2Floor(options_.kv_shards);
}

namespace {

/// The key a write-type ticket (kPut or kDelete) operates on.
uint64_t WriteKey(const TicketPtr& t) {
  return t->request.type == RequestType::kPut ? t->request.put.key
                                              : t->request.del.key;
}

}  // namespace

std::vector<Batch> Batcher::Group(std::vector<TicketPtr> tickets) const {
  std::vector<Batch> batches;
  // Point-gets and writes (puts + deletes) keyed by shard; aggregates
  // keyed by target store.
  std::map<uint32_t, std::vector<TicketPtr>> gets_by_shard;
  std::map<uint32_t, std::vector<TicketPtr>> writes_by_shard;
  std::map<const storage::ColumnStore*, std::vector<TicketPtr>> aggs_by_store;

  for (auto& t : tickets) {
    switch (t->request.type) {
      case RequestType::kPointGet:
        gets_by_shard[ShardOf(t->request.get.key)].push_back(std::move(t));
        break;
      case RequestType::kPut:
      case RequestType::kDelete:
        // One group for BOTH write types: a put and a delete on the same
        // key are an ordered pair exactly like two puts, so they must
        // flow through the same stable sort and never-split rule below.
        writes_by_shard[ShardOf(WriteKey(t))].push_back(std::move(t));
        break;
      case RequestType::kAggregate:
        aggs_by_store[t->request.agg.store].push_back(std::move(t));
        break;
      case RequestType::kScan:
      case RequestType::kJoin:
      case RequestType::kTxn: {
        Batch b;
        b.type = t->request.type;
        b.tickets.push_back(std::move(t));
        batches.push_back(std::move(b));
        break;
      }
    }
  }

  for (auto& [shard, group] : gets_by_shard) {
    // Ascending key order inside the shard: the MultiGet run walks the
    // index with monotone keys (locality in trie/tree nodes).
    std::sort(group.begin(), group.end(),
              [](const TicketPtr& a, const TicketPtr& b) {
                return a->request.get.key < b->request.get.key;
              });
    for (size_t begin = 0; begin < group.size();
         begin += options_.max_batch) {
      const size_t end =
          std::min(group.size(), begin + options_.max_batch);
      Batch b;
      b.type = RequestType::kPointGet;
      b.shard = shard;
      b.tickets.reserve(end - begin);
      for (size_t i = begin; i < end; ++i) {
        b.tickets.push_back(std::move(group[i]));
      }
      batches.push_back(std::move(b));
    }
  }

  for (auto& [shard, group] : writes_by_shard) {
    // Sorted like gets (locality + one WAL shard mutex per run), but
    // STABLE: two writes to the same key — put/put, put/delete, any mix —
    // must apply in submission order, or batching would change which
    // state wins.
    std::stable_sort(group.begin(), group.end(),
                     [](const TicketPtr& a, const TicketPtr& b) {
                       return WriteKey(a) < WriteKey(b);
                     });
    for (size_t begin = 0; begin < group.size();) {
      size_t end = std::min(group.size(), begin + options_.max_batch);
      // Never split a run of equal keys across batches: batches for the
      // same shard may execute concurrently on different pool workers, so
      // a split run could apply the later-submitted write first — exactly
      // the reordering the stable sort exists to prevent. The rule covers
      // ALL write ops on the key, not just puts: a put+delete pair split
      // across batches could resurrect a deleted key.
      while (end < group.size() &&
             WriteKey(group[end]) == WriteKey(group[end - 1])) {
        ++end;
      }
      Batch b;
      b.type = RequestType::kPut;
      b.shard = shard;
      b.tickets.reserve(end - begin);
      for (size_t i = begin; i < end; ++i) {
        b.tickets.push_back(std::move(group[i]));
      }
      batches.push_back(std::move(b));
      begin = end;
    }
  }

  for (auto& [store, group] : aggs_by_store) {
    for (size_t begin = 0; begin < group.size();
         begin += options_.max_batch) {
      const size_t end =
          std::min(group.size(), begin + options_.max_batch);
      Batch b;
      b.type = RequestType::kAggregate;
      b.tickets.reserve(end - begin);
      for (size_t i = begin; i < end; ++i) {
        b.tickets.push_back(std::move(group[i]));
      }
      batches.push_back(std::move(b));
    }
  }

  return batches;
}

}  // namespace hwstar::svc
