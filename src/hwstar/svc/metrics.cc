#include "hwstar/svc/metrics.h"

#include <algorithm>

namespace hwstar::svc {

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kAdmitWait:
      return "admit_wait";
    case Phase::kBatchWait:
      return "batch_wait";
    case Phase::kExec:
      return "exec";
    case Phase::kTotal:
      return "total";
    case Phase::kWal:
      return "wal_sync";
  }
  return "unknown";
}

void LatencyRecorder::Record(const LatencyBreakdown& breakdown) {
  std::lock_guard<std::mutex> lock(mutex_);
  samples_[static_cast<uint8_t>(Phase::kAdmitWait)].push_back(
      breakdown.admit_wait_nanos);
  samples_[static_cast<uint8_t>(Phase::kBatchWait)].push_back(
      breakdown.batch_wait_nanos);
  samples_[static_cast<uint8_t>(Phase::kExec)].push_back(breakdown.exec_nanos);
  samples_[static_cast<uint8_t>(Phase::kTotal)].push_back(
      breakdown.total_nanos);
  if (breakdown.wal_nanos != 0) {
    samples_[static_cast<uint8_t>(Phase::kWal)].push_back(breakdown.wal_nanos);
  }
}

LatencySnapshot LatencyRecorder::Snapshot(Phase phase) const {
  std::vector<uint64_t> sorted;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    sorted = samples_[static_cast<uint8_t>(phase)];
  }
  LatencySnapshot snap;
  if (sorted.empty()) return snap;
  std::sort(sorted.begin(), sorted.end());
  snap.count = sorted.size();
  auto at = [&sorted](double q) {
    size_t idx = static_cast<size_t>(q * static_cast<double>(sorted.size()));
    if (idx >= sorted.size()) idx = sorted.size() - 1;
    return sorted[idx];
  };
  snap.p50 = at(0.50);
  snap.p90 = at(0.90);
  snap.p99 = at(0.99);
  snap.max = sorted.back();
  double sum = 0;
  for (uint64_t s : sorted) sum += static_cast<double>(s);
  snap.mean = sum / static_cast<double>(sorted.size());
  return snap;
}

uint64_t LatencyRecorder::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return samples_[static_cast<uint8_t>(Phase::kTotal)].size();
}

perf::ReportTable MetricsReport(const std::string& title,
                                const ServiceMetrics& metrics) {
  perf::ReportTable table(
      title, {"phase", "count", "p50_us", "p90_us", "p99_us", "max_us",
              "mean_us"});
  auto us = [](uint64_t nanos) {
    return perf::ReportTable::Num(static_cast<double>(nanos) * 1e-3);
  };
  auto add = [&](const char* name, const LatencySnapshot& s) {
    table.AddRow({name, perf::ReportTable::Num(s.count), us(s.p50), us(s.p90),
                  us(s.p99), us(s.max),
                  perf::ReportTable::Num(s.mean * 1e-3)});
  };
  add("admit_wait", metrics.admit_wait);
  add("batch_wait", metrics.batch_wait);
  add("exec", metrics.exec);
  add("wal_sync", metrics.wal);
  add("total", metrics.total);
  table.AddRow({"submitted", perf::ReportTable::Num(metrics.admission.submitted),
                "", "", "", "", ""});
  table.AddRow({"completed", perf::ReportTable::Num(metrics.completed), "", "",
                "", "", ""});
  table.AddRow({"shed", perf::ReportTable::Num(metrics.admission.shed_total()),
                "", "", "", "", ""});
  table.AddRow(
      {"shed_rate_pct",
       perf::ReportTable::Num(metrics.shed_rate() * 100.0), "", "", "", "",
       ""});
  table.AddRow({"degraded", perf::ReportTable::Num(metrics.degraded), "", "",
                "", "", ""});
  table.AddRow({"mean_batch",
                perf::ReportTable::Num(metrics.mean_batch_size()), "", "", "",
                "", ""});
  return table;
}

}  // namespace hwstar::svc
