#include "hwstar/svc/metrics.h"

namespace hwstar::svc {

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kAdmitWait:
      return "admit_wait";
    case Phase::kBatchWait:
      return "batch_wait";
    case Phase::kExec:
      return "exec";
    case Phase::kTotal:
      return "total";
    case Phase::kWal:
      return "wal_sync";
  }
  return "unknown";
}

void LatencyRecorder::Record(const LatencyBreakdown& breakdown) {
  histograms_[static_cast<uint8_t>(Phase::kAdmitWait)].Record(
      breakdown.admit_wait_nanos);
  histograms_[static_cast<uint8_t>(Phase::kBatchWait)].Record(
      breakdown.batch_wait_nanos);
  histograms_[static_cast<uint8_t>(Phase::kExec)].Record(breakdown.exec_nanos);
  histograms_[static_cast<uint8_t>(Phase::kTotal)].Record(
      breakdown.total_nanos);
  if (breakdown.wal_nanos != 0) {
    histograms_[static_cast<uint8_t>(Phase::kWal)].Record(breakdown.wal_nanos);
  }
}

LatencySnapshot LatencyRecorder::Snapshot(Phase phase) const {
  const obs::HistogramSnapshot hs =
      histograms_[static_cast<uint8_t>(phase)].Snapshot();
  LatencySnapshot snap;
  if (hs.count() == 0) return snap;
  snap.count = hs.count();
  snap.p50 = hs.Quantile(0.50);
  snap.p90 = hs.Quantile(0.90);
  snap.p99 = hs.Quantile(0.99);
  snap.max = hs.max();
  snap.mean = hs.mean();
  return snap;
}

uint64_t LatencyRecorder::count() const {
  return histograms_[static_cast<uint8_t>(Phase::kTotal)].count();
}

perf::ReportTable MetricsReport(const std::string& title,
                                const ServiceMetrics& metrics) {
  perf::ReportTable table(
      title, {"phase", "count", "p50_us", "p90_us", "p99_us", "max_us",
              "mean_us"});
  auto us = [](uint64_t nanos) {
    return perf::ReportTable::Num(static_cast<double>(nanos) * 1e-3);
  };
  auto add = [&](const char* name, const LatencySnapshot& s) {
    table.AddRow({name, perf::ReportTable::Num(s.count), us(s.p50), us(s.p90),
                  us(s.p99), us(s.max),
                  perf::ReportTable::Num(s.mean * 1e-3)});
  };
  add("admit_wait", metrics.admit_wait);
  add("batch_wait", metrics.batch_wait);
  add("exec", metrics.exec);
  add("wal_sync", metrics.wal);
  add("total", metrics.total);
  table.AddRow({"submitted", perf::ReportTable::Num(metrics.admission.submitted),
                "", "", "", "", ""});
  table.AddRow({"completed", perf::ReportTable::Num(metrics.completed), "", "",
                "", "", ""});
  table.AddRow({"shed", perf::ReportTable::Num(metrics.admission.shed_total()),
                "", "", "", "", ""});
  table.AddRow(
      {"shed_rate_pct",
       perf::ReportTable::Num(metrics.shed_rate() * 100.0), "", "", "", "",
       ""});
  table.AddRow({"degraded", perf::ReportTable::Num(metrics.degraded), "", "",
                "", "", ""});
  table.AddRow({"mean_batch",
                perf::ReportTable::Num(metrics.mean_batch_size()), "", "", "",
                "", ""});
  return table;
}

}  // namespace hwstar::svc
