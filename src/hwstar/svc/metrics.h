#ifndef HWSTAR_SVC_METRICS_H_
#define HWSTAR_SVC_METRICS_H_

#include <cstdint>
#include <string>

#include "hwstar/obs/histogram.h"
#include "hwstar/perf/report.h"
#include "hwstar/svc/admission.h"
#include "hwstar/svc/request.h"

namespace hwstar::svc {

/// Percentile summary of one latency phase, nanoseconds.
struct LatencySnapshot {
  uint64_t count = 0;
  uint64_t p50 = 0;
  uint64_t p90 = 0;
  uint64_t p99 = 0;
  uint64_t max = 0;
  double mean = 0;
};

/// Which phase of a LatencyBreakdown a snapshot summarizes.
enum class Phase : uint8_t {
  kAdmitWait = 0,
  kBatchWait = 1,
  kExec = 2,
  kTotal = 3,
  /// WAL commit wait (durable requests only; samples are recorded just
  /// for requests that actually waited, so the percentiles describe the
  /// group-commit path, not a sea of zeros from read traffic).
  kWal = 4,
};

const char* PhaseName(Phase phase);

/// Accumulates per-request latency breakdowns and serves percentile
/// snapshots. A thin wrapper over one obs::Histogram per phase: memory is
/// fixed regardless of request count, and Record is a few relaxed atomic
/// bumps on a per-thread shard — no mutex on the completion path. The
/// histograms' log-linear buckets keep reported quantiles within ~0.8% of
/// the exact nearest-rank value (ceil(q*n)-1); max and mean are exact.
/// Thread-safe.
class LatencyRecorder {
 public:
  void Record(const LatencyBreakdown& breakdown);
  LatencySnapshot Snapshot(Phase phase) const;
  uint64_t count() const;

  /// The phase's underlying histogram (for registry registration).
  const obs::Histogram& histogram(Phase phase) const {
    return histograms_[static_cast<uint8_t>(phase)];
  }

 private:
  obs::Histogram histograms_[5];  ///< indexed by Phase
};

/// A full point-in-time view of the service: admission outcomes, batch
/// amortization, and per-phase latency percentiles.
struct ServiceMetrics {
  AdmissionStats admission;
  uint64_t completed = 0;
  /// Completions by request type (indexed by RequestType).
  uint64_t completed_by_type[kNumRequestTypes] = {};
  uint64_t degraded = 0;  ///< completed but clamped/downgraded
  uint64_t batches = 0;
  uint64_t batched_requests = 0;
  LatencySnapshot admit_wait;
  LatencySnapshot batch_wait;
  LatencySnapshot exec;
  LatencySnapshot wal;  ///< durable requests' group-commit wait
  LatencySnapshot total;

  double mean_batch_size() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(batched_requests) /
                              static_cast<double>(batches);
  }
  /// Fraction of submitted requests shed (any reason).
  double shed_rate() const {
    return admission.submitted == 0
               ? 0.0
               : static_cast<double>(admission.shed_total()) /
                     static_cast<double>(admission.submitted);
  }
};

/// Renders the metrics as a perf::ReportTable (one row per latency phase
/// plus a summary row) so service numbers flow through the same report
/// path every bench uses.
perf::ReportTable MetricsReport(const std::string& title,
                                const ServiceMetrics& metrics);

}  // namespace hwstar::svc

#endif  // HWSTAR_SVC_METRICS_H_
