#ifndef HWSTAR_SVC_BATCHER_H_
#define HWSTAR_SVC_BATCHER_H_

#include <cstdint>
#include <vector>

#include "hwstar/svc/admission.h"

namespace hwstar::svc {

struct BatcherOptions {
  /// Maximum requests per executed batch.
  uint32_t max_batch = 64;
  /// Shard count of the backing KvStore (power of two); point-gets are
  /// grouped by the same high-bit range mapping the store uses, so each
  /// batch resolves under a single shard latch via KvStore::MultiGet.
  uint32_t kv_shards = 1;
};

/// One executable batch: requests of the same type that share enough
/// structure to amortize per-request fixed costs (dispatch, latch
/// acquisition, cache warm-up) across the group. A `kPut` batch is the
/// shard's WRITE batch: it may contain kDelete tickets interleaved with
/// puts (both write types share one group so equal-key ordering holds
/// across them).
struct Batch {
  RequestType type = RequestType::kPointGet;
  uint32_t shard = 0;  ///< kv shard for point-get / write batches
  std::vector<TicketPtr> tickets;
};

/// Groups tickets into batches — the serving-side analogue of the
/// paper's "measure against the hardware" rule: instead of paying the
/// fixed dispatch cost per request, compatible small requests ride one
/// morsel-friendly batch.
///
///  - Point-gets group per kv shard and are sorted by key, so one
///    MultiGet serves the batch under one latch with index locality.
///  - Writes (puts AND deletes) group per kv shard and are STABLE-sorted
///    by key (same-key writes keep submission order), so a durable
///    service commits the batch with one WAL group-commit wait instead of
///    one sync per write. Equal-key runs never split across batches,
///    whatever mix of put/delete they contain.
///  - Aggregates group per target ColumnStore: consecutive evaluation
///    reuses the store's columns while they are cache-warm.
///  - Scans, joins, and transactions stay singletons (already
///    coarse-grained work; a transaction serializes itself via
///    validation, not batch placement).
///
/// Grouping never changes results: every request is executed with its own
/// arguments, so batched output is bit-identical to one-at-a-time (the
/// svc_test invariant).
class Batcher {
 public:
  explicit Batcher(BatcherOptions options);

  std::vector<Batch> Group(std::vector<TicketPtr> tickets) const;

  /// The store's range-shard mapping (high key bits).
  uint32_t ShardOf(uint64_t key) const {
    return shard_shift_ >= 64 ? 0 : static_cast<uint32_t>(key >> shard_shift_);
  }

  const BatcherOptions& options() const { return options_; }

 private:
  BatcherOptions options_;
  uint32_t shard_shift_;
};

}  // namespace hwstar::svc

#endif  // HWSTAR_SVC_BATCHER_H_
