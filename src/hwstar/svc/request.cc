#include "hwstar/svc/request.h"

#include <algorithm>
#include <chrono>

namespace hwstar::svc {

const char* RequestTypeName(RequestType type) {
  switch (type) {
    case RequestType::kPointGet:
      return "point_get";
    case RequestType::kScan:
      return "scan";
    case RequestType::kJoin:
      return "join";
    case RequestType::kAggregate:
      return "aggregate";
    case RequestType::kPut:
      return "put";
    case RequestType::kDelete:
      return "delete";
    case RequestType::kTxn:
      return "txn";
  }
  return "unknown";
}

Request Request::PointGet(uint64_t key, uint32_t tenant, Priority priority) {
  Request r;
  r.type = RequestType::kPointGet;
  r.tenant = tenant;
  r.priority = priority;
  r.get.key = key;
  return r;
}

Request Request::Put(uint64_t key, uint64_t value, uint32_t tenant,
                     Priority priority) {
  Request r;
  r.type = RequestType::kPut;
  r.tenant = tenant;
  r.priority = priority;
  r.put.key = key;
  r.put.value = value;
  return r;
}

Request Request::Delete(uint64_t key, uint32_t tenant, Priority priority) {
  Request r;
  r.type = RequestType::kDelete;
  r.tenant = tenant;
  r.priority = priority;
  r.del.key = key;
  return r;
}

Request Request::Txn(std::vector<TxnOp> ops, uint32_t max_attempts,
                     uint32_t tenant, Priority priority) {
  Request r;
  r.type = RequestType::kTxn;
  r.tenant = tenant;
  r.priority = priority;
  r.txn.ops = std::move(ops);
  r.txn.max_attempts = max_attempts == 0 ? 1 : max_attempts;
  return r;
}

Request Request::Scan(uint64_t lo, uint64_t hi, uint64_t limit,
                      uint32_t tenant, Priority priority) {
  Request r;
  r.type = RequestType::kScan;
  r.tenant = tenant;
  r.priority = priority;
  r.scan = {lo, hi, limit};
  return r;
}

Request Request::Join(const engine::JoinQuery* query, uint32_t tenant,
                      Priority priority) {
  Request r;
  r.type = RequestType::kJoin;
  r.tenant = tenant;
  r.priority = priority;
  r.join.query = query;
  return r;
}

Request Request::Aggregate(const storage::ColumnStore* store,
                           engine::ExprPtr filter, engine::ExprPtr value,
                           uint32_t tenant, Priority priority) {
  Request r;
  r.type = RequestType::kAggregate;
  r.tenant = tenant;
  r.priority = priority;
  r.agg.store = store;
  r.agg.filter = std::move(filter);
  r.agg.value = std::move(value);
  return r;
}

uint64_t ServiceNow() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t EstimatedRequestBytes(const Request& request) {
  // Envelope + bookkeeping floor for every request.
  constexpr uint64_t kEnvelope = 256;
  switch (request.type) {
    case RequestType::kPointGet:
    case RequestType::kPut:
    case RequestType::kDelete:
      return kEnvelope;
    case RequestType::kTxn:
      // Ops list + read/write sets + results scale with op count.
      return kEnvelope +
             request.txn.ops.size() * (sizeof(TxnOp) + 4 * sizeof(uint64_t));
    case RequestType::kScan: {
      // 8 bytes per result row; an unlimited scan is charged as if it
      // returned 64K rows (the admission layer must assume the worst).
      constexpr uint64_t kUnlimitedRows = 64 * 1024;
      const uint64_t rows =
          request.scan.limit == 0
              ? kUnlimitedRows
              : std::min<uint64_t>(request.scan.limit, kUnlimitedRows);
      return kEnvelope + rows * sizeof(uint64_t);
    }
    case RequestType::kJoin:
      // Join materializes filtered sides; charge a fixed working-set
      // estimate rather than walking the (borrowed) stores here.
      return kEnvelope + (1u << 16);
    case RequestType::kAggregate:
      // Streaming over batches of 4096 rows; small fixed footprint.
      return kEnvelope + 4096 * sizeof(int64_t) * 2;
  }
  return kEnvelope;
}

}  // namespace hwstar::svc
