#include "hwstar/svc/admission.h"

#include <chrono>

namespace hwstar::svc {

AdmissionQueue::AdmissionQueue(AdmissionOptions options)
    : options_(options) {}

Status AdmissionQueue::TryAdmit(TicketPtr& ticket, Priority min_priority) {
  const Request& req = ticket->request;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.submitted;
    if (closed_) {
      // Not an overload signal: counting this as shed_queue_full would
      // make a clean shutdown look like queue pressure to operators.
      ++stats_.shed_shutdown;
      return Status::FailedPrecondition("service shutting down");
    }
    if (req.deadline_nanos != 0 && ticket->submit_nanos > req.deadline_nanos) {
      ++stats_.shed_deadline;
      return Status::DeadlineExceeded("deadline expired before admission");
    }
    if (req.priority < min_priority) {
      ++stats_.shed_priority;
      return Status::ResourceExhausted(
          "load shed: priority below overload floor");
    }
    if (options_.max_queue_depth != 0 && depth_ >= options_.max_queue_depth) {
      ++stats_.shed_queue_full;
      return Status::ResourceExhausted("load shed: admission queue full");
    }
    if (options_.per_tenant_quota != 0) {
      auto it = tenant_depth_.find(req.tenant);
      if (it != tenant_depth_.end() &&
          it->second >= options_.per_tenant_quota) {
        ++stats_.shed_tenant_quota;
        return Status::ResourceExhausted("load shed: tenant quota exceeded");
      }
    }
    if (options_.memory_budget_bytes != 0 &&
        queued_bytes_ + ticket->estimated_bytes >
            options_.memory_budget_bytes) {
      ++stats_.shed_memory;
      return Status::ResourceExhausted("load shed: memory budget exceeded");
    }
    ++stats_.admitted;
    ++depth_;
    ++tenant_depth_[req.tenant];
    queued_bytes_ += ticket->estimated_bytes;
    queues_[static_cast<uint8_t>(req.priority)].push_back(std::move(ticket));
  }
  cv_.notify_one();
  return Status::OK();
}

bool AdmissionQueue::PopBatch(std::vector<TicketPtr>* out, uint32_t max,
                              uint64_t batch_window_nanos) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return depth_ > 0 || closed_; });
  if (depth_ == 0) return false;  // closed and drained
  if (batch_window_nanos > 0 && depth_ < max && !closed_) {
    // Linger briefly for batch-mates; bail as soon as the batch is full.
    cv_.wait_for(lock, std::chrono::nanoseconds(batch_window_nanos),
                 [this, max] { return depth_ >= max || closed_; });
  }
  // Highest priority first, FIFO within each priority.
  for (int p = kNumPriorities - 1; p >= 0 && out->size() < max; --p) {
    auto& q = queues_[p];
    while (!q.empty() && out->size() < max) {
      TicketPtr t = std::move(q.front());
      q.pop_front();
      --depth_;
      auto td = tenant_depth_.find(t->request.tenant);
      if (td != tenant_depth_.end() && --td->second == 0) {
        // Erase drained tenants: leaving zero-count entries behind grows
        // the map without bound under tenant churn.
        tenant_depth_.erase(td);
      }
      queued_bytes_ -= t->estimated_bytes;
      out->push_back(std::move(t));
    }
  }
  return true;
}

void AdmissionQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

void AdmissionQueue::NoteExpired(uint64_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.expired_in_queue += n;
}

uint32_t AdmissionQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return depth_;
}

uint64_t AdmissionQueue::queued_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queued_bytes_;
}

uint32_t AdmissionQueue::tenant_depth(uint32_t tenant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tenant_depth_.find(tenant);
  return it == tenant_depth_.end() ? 0 : it->second;
}

size_t AdmissionQueue::tenant_map_size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tenant_depth_.size();
}

AdmissionStats AdmissionQueue::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace hwstar::svc
