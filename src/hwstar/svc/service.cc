#include "hwstar/svc/service.h"

#include <algorithm>
#include <chrono>
#include <vector>

#include "hwstar/common/macros.h"
#include "hwstar/dur/durable_kv_store.h"
#include "hwstar/tune/tunable.h"
#include "hwstar/txn/transaction.h"

namespace hwstar::svc {

namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

// Applies ServiceOptions::tunables through the global registry before any
// worker starts, so a service comes up already configured. Unknown names
// fail the HWSTAR_CHECK: a typo'd deployment config must not silently
// leave the knob at its default.
ServiceOptions ApplyTunables(ServiceOptions options) {
  for (const auto& [name, value] : options.tunables) {
    HWSTAR_CHECK(tune::Registry::Global().Set(name, value));
  }
  return options;
}

BatcherOptions MakeBatcherOptions(const ServiceOptions& options,
                                  kv::KvStore* kv) {
  BatcherOptions b;
  b.max_batch = options.max_batch == 0 ? 1 : options.max_batch;
  b.kv_shards = kv != nullptr ? kv->options().shards : 1;
  return b;
}

exec::ExecutorOptions MakeExecutorOptions(const ServiceOptions& options) {
  exec::ExecutorOptions e;
  e.num_threads = options.worker_threads;
  e.pin_threads = options.pin_workers;
  return e;
}

}  // namespace

Service::Service(ServiceOptions options, kv::KvStore* kv)
    : options_(ApplyTunables(std::move(options))),
      kv_(kv),
      policy_(options_.policy != nullptr
                  ? options_.policy
                  : std::make_shared<StepDownOverloadPolicy>()),
      queue_(options_.admission),
      batcher_(MakeBatcherOptions(options_, kv)),
      pool_(MakeExecutorOptions(options_)),
      dispatcher_([this] { DispatcherLoop(); }) {
  RegisterMetrics();
}

Service::Service(ServiceOptions options, dur::DurableKvStore* durable)
    : Service(std::move(options), durable->kv()) {
  // Safe to set after delegation: the dispatcher only reads durable_ while
  // executing batches, and nothing can be admitted before this ctor body
  // runs on the submitting side.
  durable_ = durable;
  txn_mgr_ = std::make_unique<txn::TxnManager>(durable);
}

Service::~Service() {
  Drain();
  queue_.Close();
  if (dispatcher_.joinable()) dispatcher_.join();
  pool_.Shutdown();
}

void Service::RegisterMetrics() {
  for (Phase phase : {Phase::kAdmitWait, Phase::kBatchWait, Phase::kExec,
                      Phase::kTotal, Phase::kWal}) {
    registry_.RegisterHistogram(
        std::string("svc.latency.") + PhaseName(phase),
        &latencies_.histogram(phase));
  }
  registry_.RegisterCounter("svc.completed", &completed_);
  for (uint32_t i = 0; i < kNumRequestTypes; ++i) {
    registry_.RegisterCounter(
        std::string("svc.completed.") +
            RequestTypeName(static_cast<RequestType>(i)),
        &completed_by_type_[i]);
  }
  registry_.RegisterCounter("svc.degraded", &degraded_);
  registry_.RegisterCounter("svc.batches", &batches_);
  registry_.RegisterCounter("svc.batched_requests", &batched_requests_);
  registry_.RegisterCounter("svc.pool.tasks_run", &pool_.tasks_run_counter());
  registry_.RegisterCounter("svc.pool.local_pops", &pool_.local_pops_counter());
  registry_.RegisterCounter("svc.pool.steals", &pool_.steals_counter());
  registry_.RegisterGauge("svc.pool.queue_depth", &pool_.queue_depth_gauge());
}

std::future<Response> Service::Submit(Request request) {
  auto ticket = std::make_unique<Ticket>();
  ticket->request = std::move(request);
  ticket->submit_nanos = ServiceNow();
  ticket->estimated_bytes = EstimatedRequestBytes(ticket->request);
  std::future<Response> future = ticket->promise.get_future();

  // Provisionally count the request as accepted so Drain() never sees
  // finished_ pass accepted_; rolled back on rejection.
  accepted_.fetch_add(1);
  const Status st =
      queue_.TryAdmit(ticket, policy_->MinAdmittedPriority(signals()));
  if (!st.ok()) {
    accepted_.fetch_sub(1);
    NotifyIfDrained();
    CompleteShed(std::move(ticket), st);
  }
  return future;
}

Response Service::Call(Request request) {
  return Submit(std::move(request)).get();
}

void Service::Drain() {
  // CV wait instead of a 100 µs busy-poll: a slow drain (long scans, a
  // stalled WAL device) otherwise burns a core doing nothing.
  std::unique_lock<std::mutex> lock(drain_mutex_);
  drain_cv_.wait(lock,
                 [this] { return accepted_.load() == finished_.load(); });
}

void Service::NotifyIfDrained() {
  if (accepted_.load() != finished_.load()) return;
  // The empty critical section orders this check against a waiter that
  // evaluated the predicate but has not gone to sleep yet; without it the
  // notify could land in that window and be lost.
  { std::lock_guard<std::mutex> lock(drain_mutex_); }
  drain_cv_.notify_all();
}

void Service::DispatcherLoop() {
  std::vector<TicketPtr> popped;
  while (queue_.PopBatch(&popped, options_.dispatch_max,
                         options_.batch_window_nanos)) {
    const uint64_t now = ServiceNow();
    std::vector<TicketPtr> live;
    live.reserve(popped.size());
    for (auto& t : popped) {
      t->admit_nanos = now;
      if (t->request.deadline_nanos != 0 &&
          now > t->request.deadline_nanos) {
        // Never execute expired work: the client stopped waiting, so the
        // cycles would be pure waste — shed it here instead.
        queue_.NoteExpired(1);
        CompleteShed(std::move(t),
                     Status::DeadlineExceeded("deadline expired in queue"));
        finished_.fetch_add(1);
        NotifyIfDrained();
      } else {
        in_flight_.fetch_add(1, kRelaxed);
        live.push_back(std::move(t));
      }
    }
    popped.clear();

    for (Batch& batch : batcher_.Group(std::move(live))) {
      batches_.Inc();
      batched_requests_.Add(batch.tickets.size());
      auto shared = std::make_shared<Batch>(std::move(batch));
      // Bounded hand-off: while the pool is full, hold the pipeline here so
      // new arrivals back up into the admission queue (and get shed there)
      // rather than growing an invisible execution backlog. The pool can't
      // be shut down while the dispatcher runs (see ~Service ordering), so
      // TrySubmit only fails on the depth bound.
      while (!pool_.TrySubmit(
          [this, shared](uint32_t) { ExecuteBatch(shared.get()); },
          options_.max_pending_batches)) {
        std::this_thread::sleep_for(std::chrono::microseconds(20));
      }
    }
  }
}

void Service::ExecuteBatch(Batch* batch) {
  const OverloadSignals sig = signals();

  if (batch->type == RequestType::kPointGet && kv_ != nullptr &&
      batch->tickets.size() > 1) {
    // The batched fast path: one MultiGet resolves the whole (same-shard,
    // key-sorted) batch under a single latch acquisition, and MultiGet in
    // turn serves the run through the index's batched probe kernel
    // (ops/probe_kernels.h) so the batch's index-descent cache misses
    // overlap instead of serializing.
    const uint64_t exec_start = ServiceNow();
    const size_t n = batch->tickets.size();
    std::vector<uint64_t> keys(n);
    std::vector<uint64_t> values(n);
    std::unique_ptr<bool[]> found(new bool[n]);
    for (size_t i = 0; i < n; ++i) {
      keys[i] = batch->tickets[i]->request.get.key;
    }
    kv_->MultiGet(keys.data(), n, values.data(), found.get());
    const uint64_t exec_nanos = ServiceNow() - exec_start;
    for (size_t i = 0; i < n; ++i) {
      Response r;
      if (found[i]) {
        r.value = values[i];
      } else {
        // Same status a direct Get returns, so batching is invisible to
        // clients (the bit-identical invariant svc_test checks).
        r.status = Status::NotFound("key not found");
      }
      Complete(std::move(batch->tickets[i]), std::move(r), exec_start,
               exec_nanos);
    }
    return;
  }

  if (batch->type == RequestType::kPut && durable_ != nullptr &&
      batch->tickets.size() > 1) {
    // The durable fast path: the whole (same-shard, key-sorted, mixed
    // put/delete) write batch is staged in the WAL and rides ONE
    // group-commit wait — the service's batching and the log's fsync
    // amortization compound here.
    const uint64_t exec_start = ServiceNow();
    const size_t n = batch->tickets.size();
    std::vector<dur::WriteOp> ops(n);
    std::unique_ptr<bool[]> erased(new bool[n]);
    for (size_t i = 0; i < n; ++i) {
      const Request& req = batch->tickets[i]->request;
      if (req.type == RequestType::kDelete) {
        ops[i] = dur::WriteOp{req.del.key, 0, true};
      } else {
        ops[i] = dur::WriteOp{req.put.key, req.put.value, false};
      }
    }
    uint64_t wal_wait_nanos = 0;
    const Status st =
        durable_->MutateBatch(ops.data(), n, &wal_wait_nanos, erased.get());
    const uint64_t exec_nanos = ServiceNow() - exec_start;
    for (size_t i = 0; i < n; ++i) {
      Response r;
      r.status = st;
      if (ops[i].is_delete) r.value = erased[i] ? 1 : 0;
      r.latency.wal_nanos = wal_wait_nanos;
      Complete(std::move(batch->tickets[i]), std::move(r), exec_start,
               exec_nanos);
    }
    return;
  }

  for (auto& t : batch->tickets) {
    const uint64_t exec_start = ServiceNow();
    Response r;
    ExecuteOne(t->request, sig, &r);
    const uint64_t exec_nanos = ServiceNow() - exec_start;
    Complete(std::move(t), std::move(r), exec_start, exec_nanos);
  }
}

void Service::ExecuteOne(const Request& request,
                         const OverloadSignals& signals, Response* response) {
  switch (request.type) {
    case RequestType::kPointGet: {
      if (kv_ == nullptr) {
        response->status =
            Status::FailedPrecondition("no kv backend configured");
        return;
      }
      auto result = kv_->Get(request.get.key);
      if (result.ok()) {
        response->value = result.value();
      } else {
        response->status = result.status();
      }
      return;
    }
    case RequestType::kPut: {
      if (durable_ != nullptr) {
        response->status = durable_->Put(request.put.key, request.put.value,
                                         &response->latency.wal_nanos);
        return;
      }
      if (kv_ == nullptr) {
        response->status =
            Status::FailedPrecondition("no kv backend configured");
        return;
      }
      kv_->Put(request.put.key, request.put.value);  // volatile service
      return;
    }
    case RequestType::kDelete: {
      if (durable_ != nullptr) {
        bool erased = false;
        response->status = durable_->Delete(request.del.key, &erased,
                                            &response->latency.wal_nanos);
        response->value = erased ? 1 : 0;
        return;
      }
      if (kv_ == nullptr) {
        response->status =
            Status::FailedPrecondition("no kv backend configured");
        return;
      }
      response->value = kv_->Delete(request.del.key) ? 1 : 0;  // volatile
      return;
    }
    case RequestType::kTxn: {
      if (txn_mgr_ == nullptr) {
        response->status = Status::FailedPrecondition(
            "transactions require a durable backend");
        return;
      }
      Status st;
      for (uint32_t attempt = 0; attempt < request.txn.max_attempts;
           ++attempt) {
        response->txn_attempts = attempt + 1;
        response->txn_values.clear();
        response->txn_found.clear();
        txn::Transaction tx = txn_mgr_->Begin();
        st = Status::OK();
        for (const TxnOp& op : request.txn.ops) {
          switch (op.kind) {
            case TxnOp::Kind::kGet: {
              uint64_t v = 0;
              bool f = false;
              st = tx.Get(op.key, &v, &f);
              if (st.ok()) {
                response->txn_values.push_back(f ? v : 0);
                response->txn_found.push_back(f);
              }
              break;
            }
            case TxnOp::Kind::kPut:
              tx.Put(op.key, op.value);
              break;
            case TxnOp::Kind::kAdd: {
              uint64_t v = 0;
              bool f = false;
              st = tx.Get(op.key, &v, &f);
              if (st.ok()) {
                const uint64_t old = f ? v : 0;
                tx.Put(op.key, old + op.value);
                response->txn_values.push_back(old);
                response->txn_found.push_back(f);
              }
              break;
            }
            case TxnOp::Kind::kDelete:
              tx.Delete(op.key);
              break;
          }
          if (!st.ok()) break;
        }
        if (st.ok()) {
          st = tx.Commit(&response->latency.wal_nanos);
        } else {
          tx.Abort();
        }
        // Retry only optimistic losses; OK and hard errors are final.
        if (st.code() != StatusCode::kAborted) break;
      }
      response->status = st;
      if (!st.ok()) {
        response->txn_values.clear();
        response->txn_found.clear();
      }
      return;
    }
    case RequestType::kScan: {
      if (kv_ == nullptr) {
        response->status =
            Status::FailedPrecondition("no kv backend configured");
        return;
      }
      const uint64_t limit = policy_->ScanLimit(signals, request.scan.limit);
      response->degraded = limit != request.scan.limit;
      kv_->RangeScanLimit(request.scan.lo, request.scan.hi, limit,
                          &response->rows);
      return;
    }
    case RequestType::kJoin: {
      if (request.join.query == nullptr) {
        response->status = Status::InvalidArgument("join request has no query");
        return;
      }
      engine::JoinExecuteOptions jopts;
      jopts.algorithm = policy_->JoinAlgorithm(signals, request.join.algorithm);
      response->degraded = jopts.algorithm != request.join.algorithm;
      // Morsels run serially inside this worker: parallelism here comes
      // from concurrent requests across the pool, and nesting a pool wait
      // inside a pool task would deadlock the fixed-size pool.
      jopts.pool = nullptr;
      response->join = engine::ExecuteJoin(*request.join.query, jopts);
      return;
    }
    case RequestType::kAggregate: {
      const storage::ColumnStore* store = request.agg.store;
      if (store == nullptr) {
        response->status =
            Status::InvalidArgument("aggregate request has no store");
        return;
      }
      const uint64_t n = store->num_rows();
      constexpr uint64_t kBlock = 4096;
      std::vector<int64_t> pred(kBlock);
      std::vector<int64_t> vals(kBlock);
      int64_t sum = 0;
      uint64_t rows = 0;
      for (uint64_t begin = 0; begin < n; begin += kBlock) {
        const uint64_t end = std::min<uint64_t>(begin + kBlock, n);
        if (request.agg.filter != nullptr) {
          request.agg.filter->EvalBatch(*store, begin, end, pred.data());
        }
        if (request.agg.value != nullptr) {
          request.agg.value->EvalBatch(*store, begin, end, vals.data());
        }
        for (uint64_t i = begin; i < end; ++i) {
          if (request.agg.filter != nullptr && pred[i - begin] == 0) continue;
          ++rows;
          sum += request.agg.value != nullptr ? vals[i - begin] : 1;
        }
      }
      response->agg_sum = sum;
      response->agg_rows = rows;
      return;
    }
  }
}

void Service::Complete(TicketPtr ticket, Response response,
                       uint64_t exec_start, uint64_t exec_nanos) {
  const uint64_t now = ServiceNow();
  LatencyBreakdown& lat = response.latency;
  lat.admit_wait_nanos = ticket->admit_nanos - ticket->submit_nanos;
  lat.batch_wait_nanos = exec_start - ticket->admit_nanos;
  lat.exec_nanos = exec_nanos;
  lat.total_nanos = now - ticket->submit_nanos;
  latencies_.Record(lat);
  if (response.degraded) degraded_.Inc();
  completed_.Inc();
  const auto type_idx = static_cast<uint32_t>(ticket->request.type);
  if (type_idx < kNumRequestTypes) completed_by_type_[type_idx].Inc();
  ticket->promise.set_value(std::move(response));
  in_flight_.fetch_sub(1, kRelaxed);
  finished_.fetch_add(1);
  NotifyIfDrained();
}

void Service::CompleteShed(TicketPtr ticket, Status status) {
  Response r;
  r.status = std::move(status);
  const uint64_t now = ServiceNow();
  r.latency.total_nanos = now - ticket->submit_nanos;
  if (ticket->admit_nanos != 0) {
    r.latency.admit_wait_nanos = ticket->admit_nanos - ticket->submit_nanos;
  }
  ticket->promise.set_value(std::move(r));
}

OverloadSignals Service::signals() const {
  OverloadSignals s;
  s.queue_depth = queue_.depth();
  s.max_queue_depth = options_.admission.max_queue_depth;
  s.queued_bytes = queue_.queued_bytes();
  s.in_flight = in_flight_.load(kRelaxed);
  return s;
}

ServiceMetrics Service::metrics() const {
  ServiceMetrics m;
  m.admission = queue_.stats();
  m.completed = completed_.value();
  for (uint32_t i = 0; i < kNumRequestTypes; ++i) {
    m.completed_by_type[i] = completed_by_type_[i].value();
  }
  m.degraded = degraded_.value();
  m.batches = batches_.value();
  m.batched_requests = batched_requests_.value();
  m.admit_wait = latencies_.Snapshot(Phase::kAdmitWait);
  m.batch_wait = latencies_.Snapshot(Phase::kBatchWait);
  m.exec = latencies_.Snapshot(Phase::kExec);
  m.wal = latencies_.Snapshot(Phase::kWal);
  m.total = latencies_.Snapshot(Phase::kTotal);
  return m;
}

void Service::PrintReport(const std::string& title) const {
  MetricsReport(title, metrics()).Print();
}

std::string Service::DumpMetricsText() const {
  // Metrics first, knobs second: one scrape records both what happened
  // and the tunable configuration that made it happen.
  return registry_.DumpText() + DumpTunablesText();
}

std::string Service::DumpTunablesText() const {
  return tune::Registry::Global().DumpText();
}

}  // namespace hwstar::svc
