#ifndef HWSTAR_SVC_REQUEST_H_
#define HWSTAR_SVC_REQUEST_H_

#include <cstdint>
#include <vector>

#include "hwstar/common/status.h"
#include "hwstar/engine/expression.h"
#include "hwstar/engine/join_query.h"
#include "hwstar/storage/column_store.h"

namespace hwstar::svc {

/// The request shapes the service front end accepts: the OLTP point ops
/// and the analytic queries the underlying library already executes,
/// wrapped in one envelope so admission, batching and SLO accounting can
/// treat them uniformly.
enum class RequestType : uint8_t {
  kPointGet = 0,   ///< KV point read
  kScan = 1,       ///< KV ordered range scan
  kJoin = 2,       ///< engine::ExecuteJoin over two column stores
  kAggregate = 3,  ///< filtered SUM/COUNT over one column store
  kPut = 4,        ///< KV upsert (durable when the service has a WAL)
  kDelete = 5,     ///< KV erase (durable tombstone when the service has a WAL)
  kTxn = 6,        ///< optimistic multi-key transaction (durable only)
};

inline constexpr uint32_t kNumRequestTypes = 7;

const char* RequestTypeName(RequestType type);

/// Scheduling priority; higher values are served first and shed last.
enum class Priority : uint8_t {
  kLow = 0,
  kNormal = 1,
  kHigh = 2,
};

inline constexpr uint32_t kNumPriorities = 3;

struct PointGetArgs {
  uint64_t key = 0;
};

struct PutArgs {
  uint64_t key = 0;
  uint64_t value = 0;
};

struct DeleteArgs {
  uint64_t key = 0;
};

/// One step of a kTxn request, executed server-side in order. kAdd is a
/// read-modify-write (value += operand, missing key treated as 0) — the
/// primitive TPC-C's payment/delivery balance updates need without a
/// client round-trip per step.
struct TxnOp {
  enum class Kind : uint8_t {
    kGet = 0,     ///< read key; result reported in Response::txn_values
    kPut = 1,     ///< buffer an upsert
    kAdd = 2,     ///< read, add `value`, buffer the sum; reports the OLD value
    kDelete = 3,  ///< buffer a tombstone
  };
  Kind kind = Kind::kGet;
  uint64_t key = 0;
  uint64_t value = 0;  ///< put value / add operand; unused for get/delete
};

struct TxnArgs {
  std::vector<TxnOp> ops;
  /// Commit retries on optimistic aborts before giving up and returning
  /// kAborted to the client (each retry re-executes every op).
  uint32_t max_attempts = 1;
};

struct ScanArgs {
  uint64_t lo = 0;
  uint64_t hi = 0;
  /// Maximum result rows the client wants (0 = unlimited). The overload
  /// policy may clamp it further under load.
  uint64_t limit = 0;
};

struct JoinArgs {
  /// Borrowed; must outlive the request's completion.
  const engine::JoinQuery* query = nullptr;
  engine::JoinAlgorithm algorithm = engine::JoinAlgorithm::kAuto;
};

struct AggregateArgs {
  /// Borrowed; must outlive the request's completion.
  const storage::ColumnStore* store = nullptr;
  engine::ExprPtr filter;  ///< optional row predicate (0/1)
  engine::ExprPtr value;   ///< summed expression; null = COUNT(*)
};

/// The typed request envelope: one payload (selected by `type`) plus the
/// serving metadata — tenant for quota accounting, priority for queue
/// order and shed order, deadline for SLO enforcement.
struct Request {
  RequestType type = RequestType::kPointGet;
  uint32_t tenant = 0;
  Priority priority = Priority::kNormal;
  /// Absolute deadline in ServiceNow() nanos; 0 = none. Expired requests
  /// are shed at admission or before execution, never executed late.
  uint64_t deadline_nanos = 0;

  PointGetArgs get;
  PutArgs put;
  DeleteArgs del;
  ScanArgs scan;
  JoinArgs join;
  AggregateArgs agg;
  TxnArgs txn;

  static Request PointGet(uint64_t key, uint32_t tenant = 0,
                          Priority priority = Priority::kNormal);
  static Request Put(uint64_t key, uint64_t value, uint32_t tenant = 0,
                     Priority priority = Priority::kNormal);
  static Request Delete(uint64_t key, uint32_t tenant = 0,
                        Priority priority = Priority::kNormal);
  static Request Txn(std::vector<TxnOp> ops, uint32_t max_attempts = 1,
                     uint32_t tenant = 0,
                     Priority priority = Priority::kNormal);
  static Request Scan(uint64_t lo, uint64_t hi, uint64_t limit = 0,
                      uint32_t tenant = 0,
                      Priority priority = Priority::kNormal);
  static Request Join(const engine::JoinQuery* query, uint32_t tenant = 0,
                      Priority priority = Priority::kNormal);
  static Request Aggregate(const storage::ColumnStore* store,
                           engine::ExprPtr filter, engine::ExprPtr value,
                           uint32_t tenant = 0,
                           Priority priority = Priority::kNormal);
};

/// Where a completed (or shed) request spent its life, phase by phase.
/// These are the serving-side analogues of the paper's "measure against
/// the hardware" rule: queueing time is as first-class as execute time.
struct LatencyBreakdown {
  uint64_t admit_wait_nanos = 0;  ///< submit → popped by the dispatcher
  uint64_t batch_wait_nanos = 0;  ///< popped → batch execution start
  uint64_t exec_nanos = 0;        ///< execution (shared across a batch)
  /// Time blocked on the WAL commit (group-commit wait; part of exec).
  /// Zero for non-durable requests.
  uint64_t wal_nanos = 0;
  uint64_t total_nanos = 0;       ///< submit → completion
};

/// Response envelope. `status` is OK on success; ResourceExhausted when
/// load-shed at admission; DeadlineExceeded when the deadline passed
/// before execution; NotFound for a missing point-get key; Aborted for a
/// kTxn that lost its optimistic validation race max_attempts times
/// (nothing installed; safe to resubmit).
struct Response {
  Status status;
  /// True when the overload policy degraded the request (clamped scan
  /// limit or downgraded join algorithm) instead of shedding it.
  bool degraded = false;

  uint64_t value = 0;          ///< point-get result; delete: 1 if key existed
  std::vector<uint64_t> rows;  ///< scan results (ascending key order)
  /// kTxn: one entry per kGet/kAdd op, in op order (the value read; 0 on
  /// miss — txn_found distinguishes). Valid only when status is OK.
  std::vector<uint64_t> txn_values;
  std::vector<bool> txn_found;
  uint32_t txn_attempts = 0;  ///< commit attempts consumed (>= 1 when OK)
  engine::JoinQueryResult join;
  int64_t agg_sum = 0;
  uint64_t agg_rows = 0;

  LatencyBreakdown latency;
};

/// Monotonic nanosecond clock all svc deadlines and timestamps live on.
uint64_t ServiceNow();

/// Conservative estimate of the bytes a request will pin while queued and
/// executing (admission's in-flight memory budget charges this).
uint64_t EstimatedRequestBytes(const Request& request);

}  // namespace hwstar::svc

#endif  // HWSTAR_SVC_REQUEST_H_
