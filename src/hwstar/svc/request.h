#ifndef HWSTAR_SVC_REQUEST_H_
#define HWSTAR_SVC_REQUEST_H_

#include <cstdint>
#include <vector>

#include "hwstar/common/status.h"
#include "hwstar/engine/expression.h"
#include "hwstar/engine/join_query.h"
#include "hwstar/storage/column_store.h"

namespace hwstar::svc {

/// The request shapes the service front end accepts: the OLTP point ops
/// and the analytic queries the underlying library already executes,
/// wrapped in one envelope so admission, batching and SLO accounting can
/// treat them uniformly.
enum class RequestType : uint8_t {
  kPointGet = 0,   ///< KV point read
  kScan = 1,       ///< KV ordered range scan
  kJoin = 2,       ///< engine::ExecuteJoin over two column stores
  kAggregate = 3,  ///< filtered SUM/COUNT over one column store
  kPut = 4,        ///< KV upsert (durable when the service has a WAL)
};

const char* RequestTypeName(RequestType type);

/// Scheduling priority; higher values are served first and shed last.
enum class Priority : uint8_t {
  kLow = 0,
  kNormal = 1,
  kHigh = 2,
};

inline constexpr uint32_t kNumPriorities = 3;

struct PointGetArgs {
  uint64_t key = 0;
};

struct PutArgs {
  uint64_t key = 0;
  uint64_t value = 0;
};

struct ScanArgs {
  uint64_t lo = 0;
  uint64_t hi = 0;
  /// Maximum result rows the client wants (0 = unlimited). The overload
  /// policy may clamp it further under load.
  uint64_t limit = 0;
};

struct JoinArgs {
  /// Borrowed; must outlive the request's completion.
  const engine::JoinQuery* query = nullptr;
  engine::JoinAlgorithm algorithm = engine::JoinAlgorithm::kAuto;
};

struct AggregateArgs {
  /// Borrowed; must outlive the request's completion.
  const storage::ColumnStore* store = nullptr;
  engine::ExprPtr filter;  ///< optional row predicate (0/1)
  engine::ExprPtr value;   ///< summed expression; null = COUNT(*)
};

/// The typed request envelope: one payload (selected by `type`) plus the
/// serving metadata — tenant for quota accounting, priority for queue
/// order and shed order, deadline for SLO enforcement.
struct Request {
  RequestType type = RequestType::kPointGet;
  uint32_t tenant = 0;
  Priority priority = Priority::kNormal;
  /// Absolute deadline in ServiceNow() nanos; 0 = none. Expired requests
  /// are shed at admission or before execution, never executed late.
  uint64_t deadline_nanos = 0;

  PointGetArgs get;
  PutArgs put;
  ScanArgs scan;
  JoinArgs join;
  AggregateArgs agg;

  static Request PointGet(uint64_t key, uint32_t tenant = 0,
                          Priority priority = Priority::kNormal);
  static Request Put(uint64_t key, uint64_t value, uint32_t tenant = 0,
                     Priority priority = Priority::kNormal);
  static Request Scan(uint64_t lo, uint64_t hi, uint64_t limit = 0,
                      uint32_t tenant = 0,
                      Priority priority = Priority::kNormal);
  static Request Join(const engine::JoinQuery* query, uint32_t tenant = 0,
                      Priority priority = Priority::kNormal);
  static Request Aggregate(const storage::ColumnStore* store,
                           engine::ExprPtr filter, engine::ExprPtr value,
                           uint32_t tenant = 0,
                           Priority priority = Priority::kNormal);
};

/// Where a completed (or shed) request spent its life, phase by phase.
/// These are the serving-side analogues of the paper's "measure against
/// the hardware" rule: queueing time is as first-class as execute time.
struct LatencyBreakdown {
  uint64_t admit_wait_nanos = 0;  ///< submit → popped by the dispatcher
  uint64_t batch_wait_nanos = 0;  ///< popped → batch execution start
  uint64_t exec_nanos = 0;        ///< execution (shared across a batch)
  /// Time blocked on the WAL commit (group-commit wait; part of exec).
  /// Zero for non-durable requests.
  uint64_t wal_nanos = 0;
  uint64_t total_nanos = 0;       ///< submit → completion
};

/// Response envelope. `status` is OK on success; ResourceExhausted when
/// load-shed at admission; DeadlineExceeded when the deadline passed
/// before execution; NotFound for a missing point-get key.
struct Response {
  Status status;
  /// True when the overload policy degraded the request (clamped scan
  /// limit or downgraded join algorithm) instead of shedding it.
  bool degraded = false;

  uint64_t value = 0;          ///< point-get result
  std::vector<uint64_t> rows;  ///< scan results (ascending key order)
  engine::JoinQueryResult join;
  int64_t agg_sum = 0;
  uint64_t agg_rows = 0;

  LatencyBreakdown latency;
};

/// Monotonic nanosecond clock all svc deadlines and timestamps live on.
uint64_t ServiceNow();

/// Conservative estimate of the bytes a request will pin while queued and
/// executing (admission's in-flight memory budget charges this).
uint64_t EstimatedRequestBytes(const Request& request);

}  // namespace hwstar::svc

#endif  // HWSTAR_SVC_REQUEST_H_
