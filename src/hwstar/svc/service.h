#ifndef HWSTAR_SVC_SERVICE_H_
#define HWSTAR_SVC_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "hwstar/exec/executor.h"
#include "hwstar/obs/registry.h"
#include "hwstar/kv/kv_store.h"
#include "hwstar/svc/admission.h"
#include "hwstar/svc/batcher.h"
#include "hwstar/svc/metrics.h"
#include "hwstar/svc/overload_policy.h"
#include "hwstar/svc/request.h"

namespace hwstar::dur {
class DurableKvStore;
}  // namespace hwstar::dur

namespace hwstar::txn {
class TxnManager;
}  // namespace hwstar::txn

namespace hwstar::svc {

struct ServiceOptions {
  AdmissionOptions admission;
  /// max_batch for the batcher; kv_shards is taken from the backing store.
  uint32_t max_batch = 64;
  /// Workers executing batches (the cores the service owns).
  uint32_t worker_threads = 2;
  /// Pin each worker to its own logical core (topology-driven). The
  /// serving cores then stay cache-warm across batches and NUMA
  /// first-touch placement is stable; leave off when co-running with
  /// other pools on a small host.
  bool pin_workers = false;
  /// How long the dispatcher lingers for batch-mates when the queue holds
  /// fewer than a full batch. The knob trading a little latency for
  /// amortized fixed costs.
  uint64_t batch_window_nanos = 50'000;
  /// Max tickets the dispatcher pops per round (>= max_batch keeps the
  /// batcher fed with grouping candidates).
  uint32_t dispatch_max = 64;
  /// Bound on batches queued at the worker pool (0 = unbounded). When the
  /// pool is full the dispatcher stops popping, so overload backs up into
  /// the admission queue — the place with quotas and shedding — instead of
  /// hiding in an unbounded execution queue where control can't reach it.
  uint32_t max_pending_batches = 8;
  /// Degradation policy; null installs StepDownOverloadPolicy.
  std::shared_ptr<const OverloadPolicy> policy;
  /// Tunable overrides applied (in order) through tune::Registry at
  /// construction — the deployment-config hook for the knob substrate.
  /// Each entry is (tunable name, value); values clamp to the tunable's
  /// bounds like any other Set. Unknown names are a construction error
  /// (a typo'd config should fail loudly, not silently not-tune).
  std::vector<std::pair<std::string, uint64_t>> tunables;
};

/// The hardware-conscious request-serving front end: clients submit typed
/// requests from any thread; the service admits them against bounded
/// queues (backpressure instead of unbounded growth), batches compatible
/// ones to amortize per-request fixed costs, executes on a fixed worker
/// pool sized to the machine, and accounts every request's life
/// phase-by-phase so p50/p99 and shed rate are first-class outputs.
///
/// Pipeline: Submit → AdmissionQueue → dispatcher (batch window) →
/// Batcher → Executor workers → KvStore / engine::ExecuteJoin.
class Service {
 public:
  /// `kv` backs point-get, put and scan requests (may be null when only
  /// join/aggregate requests are served; those carry their own stores).
  /// Puts through this constructor are volatile (no WAL). Borrowed; must
  /// outlive the service.
  Service(ServiceOptions options, kv::KvStore* kv);

  /// Durable variant: reads go straight to `durable->kv()`; puts and
  /// deletes flow through the WAL's group commit, so a write's future
  /// resolving OK means it survives a crash. The write batches the svc
  /// batcher builds (same-shard, key-sorted) commit with one WAL wait per
  /// batch — the service's batching and the log's group commit compound.
  /// kTxn requests are served too (a TxnManager is constructed over the
  /// store); on a volatile service they fail with FailedPrecondition.
  /// Borrowed; must outlive the service.
  Service(ServiceOptions options, dur::DurableKvStore* durable);

  /// Drains in-flight work, then stops dispatcher and workers.
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Submits a request; never blocks on load (sheds instead). The future
  /// always completes: with results, or with a shed/expired status.
  std::future<Response> Submit(Request request);

  /// Synchronous convenience: Submit + wait.
  Response Call(Request request);

  /// Blocks until every admitted request has completed.
  void Drain();

  /// Point-in-time metrics snapshot.
  ServiceMetrics metrics() const;

  /// Prints the metrics through perf::ReportTable.
  void PrintReport(const std::string& title) const;

  /// Text exposition of every registered service metric (latency
  /// histograms, completion counters, worker-pool counters) — the
  /// scrape-style view of the obs registry — followed by the current
  /// tunable values, so a scrape records the knob configuration that
  /// produced the numbers next to the numbers themselves.
  std::string DumpMetricsText() const;

  /// Text exposition of just the tunable registry (name, current value,
  /// default, bounds per line) — the knob half of DumpMetricsText.
  std::string DumpTunablesText() const;

  /// The service's metric registry (all entries are borrowed views of
  /// live obs metrics; read-only for callers).
  const obs::Registry& registry() const { return registry_; }

  /// Current load signals (what the overload policy sees).
  OverloadSignals signals() const;

  const ServiceOptions& options() const { return options_; }

 private:
  void DispatcherLoop();
  void ExecuteBatch(Batch* batch);
  void ExecuteOne(const Request& request, const OverloadSignals& signals,
                  Response* response);
  void Complete(TicketPtr ticket, Response response, uint64_t exec_start,
                uint64_t exec_nanos);
  void CompleteShed(TicketPtr ticket, Status status);
  /// Wakes Drain() waiters when finished_ has caught up with accepted_.
  /// Called after every finished_ increment (and the accepted_ rollback on
  /// rejected submits); the lock is only touched at the caught-up edge, so
  /// the steady-state completion path stays mutex-free.
  void NotifyIfDrained();
  void RegisterMetrics();

  ServiceOptions options_;
  kv::KvStore* kv_;
  dur::DurableKvStore* durable_ = nullptr;  ///< null = volatile service
  /// OCC coordinator for kTxn requests; non-null iff durable_ is set
  /// (transactions need the WAL's atomic commit framing).
  std::unique_ptr<txn::TxnManager> txn_mgr_;
  std::shared_ptr<const OverloadPolicy> policy_;
  AdmissionQueue queue_;
  Batcher batcher_;
  exec::Executor pool_;

  std::atomic<uint64_t> accepted_{0};   ///< admitted into the queue
  std::atomic<uint64_t> finished_{0};   ///< completed or shed post-admit
  std::atomic<uint32_t> in_flight_{0};  ///< popped, not yet finished
  obs::Counter completed_;
  /// Per-request-type completion counters (indexed by RequestType),
  /// registered as svc.completed.<type name>. Sheds are not counted here
  /// (they never execute); svc.completed stays the cross-type total.
  obs::Counter completed_by_type_[kNumRequestTypes];
  obs::Counter degraded_;
  obs::Counter batches_;
  obs::Counter batched_requests_;
  LatencyRecorder latencies_;
  obs::Registry registry_;  ///< borrowed views of the metrics above

  mutable std::mutex drain_mutex_;
  std::condition_variable drain_cv_;

  std::thread dispatcher_;  ///< last member: started after everything else
};

}  // namespace hwstar::svc

#endif  // HWSTAR_SVC_SERVICE_H_
