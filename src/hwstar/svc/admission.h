#ifndef HWSTAR_SVC_ADMISSION_H_
#define HWSTAR_SVC_ADMISSION_H_

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "hwstar/svc/request.h"

namespace hwstar::svc {

/// Admission bounds. Every bound set to 0 disables that check; with all
/// of them 0 the queue is unbounded and never sheds — the
/// hardware-oblivious baseline bench_e14 measures queueing collapse on.
struct AdmissionOptions {
  /// Maximum queued requests across all tenants and priorities.
  uint32_t max_queue_depth = 1024;
  /// Maximum queued requests per tenant (isolation between tenants: one
  /// flooding tenant exhausts its own quota, not the shared queue).
  uint32_t per_tenant_quota = 0;
  /// Maximum estimated bytes pinned by queued requests.
  uint64_t memory_budget_bytes = 0;
};

/// Why requests were admitted or shed. Monotonic counters.
struct AdmissionStats {
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t shed_queue_full = 0;
  uint64_t shed_tenant_quota = 0;
  uint64_t shed_memory = 0;
  uint64_t shed_priority = 0;   ///< below the policy's admitted floor
  uint64_t shed_deadline = 0;   ///< already expired at submit
  uint64_t shed_shutdown = 0;   ///< submitted after Close(); not overload
  uint64_t expired_in_queue = 0;  ///< expired between admit and execute

  uint64_t shed_total() const {
    return shed_queue_full + shed_tenant_quota + shed_memory +
           shed_priority + shed_deadline + shed_shutdown + expired_in_queue;
  }
};

/// One request in flight through the service: the envelope, the promise
/// its response is delivered on, and the per-phase timestamps.
struct Ticket {
  Request request;
  uint64_t submit_nanos = 0;     ///< stamped by Service::Submit
  uint64_t admit_nanos = 0;      ///< stamped when the dispatcher pops it
  uint64_t estimated_bytes = 0;  ///< EstimatedRequestBytes at submit
  std::promise<Response> promise;
};

using TicketPtr = std::unique_ptr<Ticket>;

/// A bounded, priority-ordered MPMC admission queue: the "never
/// unbounded growth" discipline of McKenney's bounded shared queues.
/// Producers (client threads) call TryAdmit and are rejected — never
/// blocked — when a bound would be exceeded; the consumer (dispatcher)
/// pops batches, highest priority first, FIFO within a priority.
/// Thread-safe.
class AdmissionQueue {
 public:
  explicit AdmissionQueue(AdmissionOptions options);

  /// Admits `ticket` (moving it into the queue) and returns OK, or
  /// rejects it — leaving `ticket` untouched for the caller to complete —
  /// with ResourceExhausted naming the exhausted bound, or
  /// DeadlineExceeded when the deadline already passed.
  /// `min_priority` is the overload policy's current admission floor.
  Status TryAdmit(TicketPtr& ticket, Priority min_priority = Priority::kLow);

  /// Pops up to `max` tickets into `out`, blocking until at least one is
  /// available or Close() was called. When fewer than `max` are queued and
  /// `batch_window_nanos` > 0, lingers up to that long for more arrivals
  /// so per-batch fixed costs amortize over fuller batches.
  /// Returns false only when closed and drained.
  bool PopBatch(std::vector<TicketPtr>* out, uint32_t max,
                uint64_t batch_window_nanos = 0);

  /// Wakes poppers; subsequent TryAdmit calls are rejected.
  void Close();

  /// Counts a request that expired after admission (dispatcher-side).
  void NoteExpired(uint64_t n);

  uint32_t depth() const;
  uint64_t queued_bytes() const;
  uint32_t tenant_depth(uint32_t tenant) const;
  /// Tenants with queued requests right now. Bounded by depth(): entries
  /// are erased when a tenant's last queued request is popped, so tenant
  /// churn never grows the map without bound.
  size_t tenant_map_size() const;
  AdmissionStats stats() const;
  const AdmissionOptions& options() const { return options_; }

 private:
  AdmissionOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  /// One FIFO per priority; index = static_cast<uint8_t>(Priority).
  std::array<std::deque<TicketPtr>, kNumPriorities> queues_;
  std::unordered_map<uint32_t, uint32_t> tenant_depth_;
  uint32_t depth_ = 0;
  uint64_t queued_bytes_ = 0;
  bool closed_ = false;
  AdmissionStats stats_;
};

}  // namespace hwstar::svc

#endif  // HWSTAR_SVC_ADMISSION_H_
