#ifndef HWSTAR_SVC_OVERLOAD_POLICY_H_
#define HWSTAR_SVC_OVERLOAD_POLICY_H_

#include <cstdint>

#include "hwstar/engine/join_query.h"
#include "hwstar/svc/request.h"

namespace hwstar::svc {

/// The load signals a policy decides on. Sampled from the service at
/// admission time and at batch-execution start.
struct OverloadSignals {
  uint32_t queue_depth = 0;
  uint32_t max_queue_depth = 0;  ///< 0 = unbounded
  uint64_t queued_bytes = 0;
  uint32_t in_flight = 0;  ///< admitted but not yet completed

  /// Queue fullness in [0, 1]; 0 when the queue is unbounded (an
  /// unbounded queue gives the policy nothing to react to — which is
  /// exactly why the baseline without admission control collapses).
  double utilization() const {
    if (max_queue_depth == 0) return 0.0;
    const double u =
        static_cast<double>(queue_depth) / static_cast<double>(max_queue_depth);
    return u > 1.0 ? 1.0 : u;
  }
};

/// Pluggable graceful degradation: under load, shrink work before
/// shedding it, and shed the least important work first. Implementations
/// must be thread-safe (const methods, called concurrently).
class OverloadPolicy {
 public:
  virtual ~OverloadPolicy() = default;

  /// Effective scan row limit for a scan requesting `requested` rows
  /// (0 = unlimited). Return `requested` to leave it untouched.
  virtual uint64_t ScanLimit(const OverloadSignals& signals,
                             uint64_t requested) const {
    (void)signals;
    return requested;
  }

  /// Effective join algorithm. Downgrading to kNoPartition trades peak
  /// join speed for a smaller setup/materialization footprint per query.
  virtual engine::JoinAlgorithm JoinAlgorithm(
      const OverloadSignals& signals,
      engine::JoinAlgorithm requested) const {
    (void)signals;
    return requested;
  }

  /// Lowest priority still admitted; requests below it are shed at the
  /// door (drop the lowest-priority tenants first).
  virtual Priority MinAdmittedPriority(const OverloadSignals& signals) const {
    (void)signals;
    return Priority::kLow;
  }
};

/// Default policy: degrade in steps as the admission queue fills.
///  - past `scan_clamp_at` utilization, scans are clamped to
///    `scan_limit_under_load` rows;
///  - past `join_downgrade_at`, joins run the lower-footprint
///    no-partition algorithm (skips the radix partition pass and its
///    scratch memory);
///  - past `drop_low_at`, kLow-priority requests are rejected at
///    admission.
class StepDownOverloadPolicy : public OverloadPolicy {
 public:
  uint64_t scan_limit_under_load = 1024;
  double scan_clamp_at = 0.5;
  double join_downgrade_at = 0.75;
  double drop_low_at = 0.9;

  uint64_t ScanLimit(const OverloadSignals& signals,
                     uint64_t requested) const override {
    if (signals.utilization() < scan_clamp_at) return requested;
    if (requested == 0) return scan_limit_under_load;
    return requested < scan_limit_under_load ? requested
                                             : scan_limit_under_load;
  }

  engine::JoinAlgorithm JoinAlgorithm(
      const OverloadSignals& signals,
      engine::JoinAlgorithm requested) const override {
    if (signals.utilization() < join_downgrade_at) return requested;
    return engine::JoinAlgorithm::kNoPartition;
  }

  Priority MinAdmittedPriority(const OverloadSignals& signals) const override {
    return signals.utilization() >= drop_low_at ? Priority::kNormal
                                                : Priority::kLow;
  }
};

}  // namespace hwstar::svc

#endif  // HWSTAR_SVC_OVERLOAD_POLICY_H_
