#include "hwstar/sim/hierarchy.h"

#include <sstream>

#include "hwstar/common/bits.h"
#include "hwstar/common/macros.h"

namespace hwstar::sim {

MemoryHierarchy::MemoryHierarchy(const hw::MachineModel& machine)
    : MemoryHierarchy(machine, Options{}) {}

MemoryHierarchy::MemoryHierarchy(const hw::MachineModel& machine,
                                 Options options)
    : machine_(machine),
      options_(options),
      tlb_(machine.tlb),
      prefetcher_(8, 2, 2,
                  machine.caches.empty() ? 64 : machine.caches[0].line_bytes),
      numa_(machine),
      line_bytes_(machine.caches.empty() ? 64 : machine.caches[0].line_bytes) {
  HWSTAR_CHECK(!machine.caches.empty());
  levels_.reserve(machine.caches.size());
  for (const auto& spec : machine.caches) levels_.emplace_back(spec);
}

uint32_t MemoryHierarchy::AccessLine(uint64_t addr, bool is_write,
                                     uint32_t core, bool count_latency) {
  uint32_t latency = 0;
  size_t depth = 0;
  bool hit = false;
  for (; depth < levels_.size(); ++depth) {
    latency += levels_[depth].spec().hit_latency_cycles;
    if (levels_[depth].Access(addr, is_write)) {
      hit = true;
      break;
    }
  }
  if (count_latency) {
    if (hit) {
      // Energy: charge the level that served the line.
      if (depth == 0) {
        ++energy_events_.l1_hits;
      } else if (depth == 1) {
        ++energy_events_.l2_hits;
      } else {
        ++energy_events_.l3_hits;
      }
    } else {
      ++energy_events_.dram_accesses;
      latency += options_.enable_numa ? numa_.DramLatency(core, addr)
                                      : machine_.dram_latency_cycles;
    }
  } else if (!hit) {
    // Prefetch fills are free of demand latency but still move data;
    // charge their DRAM energy.
    ++energy_events_.dram_accesses;
  }
  return latency;
}

uint32_t MemoryHierarchy::Access(uint64_t addr, bool is_write, uint32_t core) {
  const uint64_t line_addr = bits::AlignDown(addr, line_bytes_);
  uint32_t latency = 0;

  if (options_.enable_tlb && !tlb_.Access(addr)) {
    latency += tlb_.spec().miss_penalty_cycles;
  }

  latency += AccessLine(line_addr, is_write, core, /*count_latency=*/true);

  if (options_.enable_prefetcher) {
    prefetcher_.Observe(line_addr, &prefetch_buf_);
    for (uint64_t pf : prefetch_buf_) {
      AccessLine(bits::AlignDown(pf, line_bytes_), /*is_write=*/false, core,
                 /*count_latency=*/false);
    }
  }

  ++accesses_;
  total_cycles_ += latency;
  return latency;
}

uint64_t MemoryHierarchy::AccessRange(uint64_t addr, uint64_t bytes,
                                      bool is_write, uint32_t core) {
  if (bytes == 0) return 0;
  uint64_t first = bits::AlignDown(addr, line_bytes_);
  uint64_t last = bits::AlignDown(addr + bytes - 1, line_bytes_);
  uint64_t cycles = 0;
  for (uint64_t a = first; a <= last; a += line_bytes_) {
    cycles += Access(a, is_write, core);
  }
  return cycles;
}

void MemoryHierarchy::Replay(const MemoryTrace& trace) {
  for (const auto& e : trace.entries()) {
    Access(e.addr, e.is_write, e.core);
  }
}

HierarchyStats MemoryHierarchy::Stats() const {
  HierarchyStats st;
  st.accesses = accesses_;
  st.total_cycles = total_cycles_;
  for (const auto& lvl : levels_) st.levels.push_back(lvl.stats());
  st.tlb = tlb_.stats();
  st.numa = numa_.stats();
  st.prefetch = prefetcher_.stats();
  st.energy_events = energy_events_;
  return st;
}

void MemoryHierarchy::ResetStats() {
  accesses_ = 0;
  total_cycles_ = 0;
  energy_events_ = EnergyEvents{};
  for (auto& lvl : levels_) lvl.ResetStats();
  tlb_.ResetStats();
  numa_.ResetStats();
  prefetcher_.ResetStats();
}

void MemoryHierarchy::ColdReset() {
  ResetStats();
  for (auto& lvl : levels_) lvl.Flush();
  tlb_.Flush();
  prefetcher_.Reset();
}

std::string MemoryHierarchy::ToString() const {
  std::ostringstream os;
  os << machine_.name << " accesses=" << accesses_
     << " cpa=" << (accesses_ ? static_cast<double>(total_cycles_) /
                                    static_cast<double>(accesses_)
                              : 0.0)
     << "\n";
  int level = 1;
  for (const auto& lvl : levels_) {
    os << "  L" << level++ << " " << lvl.ToString() << "\n";
  }
  os << "  TLB miss_ratio=" << tlb_.stats().miss_ratio()
     << " NUMA remote=" << numa_.stats().remote_fraction();
  return os.str();
}

}  // namespace hwstar::sim
