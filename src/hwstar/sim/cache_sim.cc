#include "hwstar/sim/cache_sim.h"

#include <sstream>

#include "hwstar/common/bits.h"
#include "hwstar/common/macros.h"

namespace hwstar::sim {

CacheLevel::CacheLevel(const hw::CacheLevelSpec& spec) : spec_(spec) {
  HWSTAR_CHECK(bits::IsPowerOfTwo(spec.line_bytes));
  HWSTAR_CHECK(spec.size_bytes >= uint64_t{spec.line_bytes} * spec.associativity);
  line_shift_ = bits::Log2Floor(spec.line_bytes);
  uint64_t lines = spec.size_bytes / spec.line_bytes;
  num_sets_ = lines / spec.associativity;
  HWSTAR_CHECK(num_sets_ >= 1);
  pow2_sets_ = bits::IsPowerOfTwo(num_sets_);
  ways_.assign(num_sets_ * spec.associativity, Way{});
}

bool CacheLevel::Access(uint64_t addr, bool is_write) {
  const uint64_t set = SetIndex(addr);
  const uint64_t tag = Tag(addr);
  Way* base = &ways_[set * spec_.associativity];
  ++lru_clock_;

  // Hit path.
  for (uint32_t w = 0; w < spec_.associativity; ++w) {
    if (base[w].valid && base[w].tag == tag) {
      base[w].lru = lru_clock_;
      base[w].dirty |= is_write;
      ++stats_.hits;
      return true;
    }
  }

  // Miss: fill into an invalid way or evict the LRU way.
  ++stats_.misses;
  Way* victim = nullptr;
  for (uint32_t w = 0; w < spec_.associativity; ++w) {
    if (!base[w].valid) {
      victim = &base[w];
      break;
    }
  }
  if (victim == nullptr) {
    victim = base;
    for (uint32_t w = 1; w < spec_.associativity; ++w) {
      if (base[w].lru < victim->lru) victim = &base[w];
    }
    ++stats_.evictions;
    if (victim->dirty) ++stats_.writebacks;
  }
  victim->valid = true;
  victim->tag = tag;
  victim->lru = lru_clock_;
  victim->dirty = is_write;
  return false;
}

bool CacheLevel::Contains(uint64_t addr) const {
  const uint64_t set = SetIndex(addr);
  const uint64_t tag = Tag(addr);
  const Way* base = &ways_[set * spec_.associativity];
  for (uint32_t w = 0; w < spec_.associativity; ++w) {
    if (base[w].valid && base[w].tag == tag) return true;
  }
  return false;
}

void CacheLevel::Flush() {
  for (auto& w : ways_) w = Way{};
}

std::string CacheLevel::ToString() const {
  std::ostringstream os;
  os << (spec_.size_bytes >> 10) << "KB/" << spec_.associativity
     << "w: hits=" << stats_.hits << " misses=" << stats_.misses
     << " mr=" << stats_.miss_ratio();
  return os.str();
}

}  // namespace hwstar::sim
