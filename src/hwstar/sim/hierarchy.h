#ifndef HWSTAR_SIM_HIERARCHY_H_
#define HWSTAR_SIM_HIERARCHY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hwstar/hw/machine_model.h"
#include "hwstar/sim/cache_sim.h"
#include "hwstar/sim/energy_model.h"
#include "hwstar/sim/memory_trace.h"
#include "hwstar/sim/numa_model.h"
#include "hwstar/sim/prefetcher.h"
#include "hwstar/sim/tlb.h"

namespace hwstar::sim {

/// Aggregate statistics of a hierarchy run.
struct HierarchyStats {
  uint64_t accesses = 0;
  uint64_t total_cycles = 0;
  std::vector<CacheStats> levels;
  TlbStats tlb;
  NumaStats numa;
  PrefetchStats prefetch;
  EnergyEvents energy_events;

  double cycles_per_access() const {
    return accesses == 0
               ? 0.0
               : static_cast<double>(total_cycles) / static_cast<double>(accesses);
  }
};

/// The complete modeled memory system: TLB -> L1 -> L2 -> ... -> DRAM with
/// a stride prefetcher feeding the first level and a NUMA model deciding
/// DRAM latency. Access() returns the modeled latency of one load/store and
/// accumulates all statistics, giving operators deterministic hardware-like
/// counters. Not thread-safe: use one hierarchy per simulated core (or
/// replay a trace).
class MemoryHierarchy {
 public:
  /// Options toggling model components; disabling the prefetcher exposes
  /// the raw miss stream (useful for ablations).
  struct Options {
    bool enable_prefetcher = true;
    bool enable_tlb = true;
    bool enable_numa = true;
  };

  /// Builds the hierarchy with all model components enabled.
  explicit MemoryHierarchy(const hw::MachineModel& machine);
  MemoryHierarchy(const hw::MachineModel& machine, Options options);

  /// Models one access of the line containing addr from the given core.
  /// Returns the latency in cycles.
  uint32_t Access(uint64_t addr, bool is_write = false, uint32_t core = 0);

  /// Models `bytes` consecutive bytes starting at addr (one Access per
  /// touched cache line). Returns total cycles.
  uint64_t AccessRange(uint64_t addr, uint64_t bytes, bool is_write = false,
                       uint32_t core = 0);

  /// Counts `n` executed instructions into the energy events (the
  /// computation side of the energy proxy).
  void CountInstructions(uint64_t n) { energy_events_.instructions += n; }

  /// Replays a recorded trace, accumulating into this hierarchy's stats.
  void Replay(const MemoryTrace& trace);

  /// Snapshot of all counters.
  HierarchyStats Stats() const;

  /// Resets counters (keeps cache/TLB contents).
  void ResetStats();

  /// Invalidates caches, TLB and prefetcher state and resets counters:
  /// a cold machine.
  void ColdReset();

  NumaModel& numa() { return numa_; }
  const hw::MachineModel& machine() const { return machine_; }
  uint32_t line_bytes() const { return line_bytes_; }

  /// Multi-line report of all levels for debugging/tests.
  std::string ToString() const;

 private:
  /// Walks one line address through the levels; returns latency and
  /// classifies the deepest level reached for energy accounting.
  uint32_t AccessLine(uint64_t addr, bool is_write, uint32_t core,
                      bool count_latency);

  hw::MachineModel machine_;
  Options options_;
  std::vector<CacheLevel> levels_;
  Tlb tlb_;
  StridePrefetcher prefetcher_;
  NumaModel numa_;
  uint32_t line_bytes_;
  uint64_t accesses_ = 0;
  uint64_t total_cycles_ = 0;
  EnergyEvents energy_events_;
  std::vector<uint64_t> prefetch_buf_;
};

}  // namespace hwstar::sim

#endif  // HWSTAR_SIM_HIERARCHY_H_
