#include "hwstar/sim/tlb.h"

#include "hwstar/common/bits.h"
#include "hwstar/common/macros.h"

namespace hwstar::sim {

Tlb::Tlb(const hw::TlbSpec& spec) : spec_(spec) {
  HWSTAR_CHECK(bits::IsPowerOfTwo(spec.page_bytes));
  HWSTAR_CHECK(spec.entries > 0);
  page_shift_ = bits::Log2Floor(spec.page_bytes);
  entries_.assign(spec.entries, Entry{});
}

bool Tlb::Access(uint64_t addr) {
  const uint64_t vpn = addr >> page_shift_;
  ++lru_clock_;
  Entry* victim = &entries_[0];
  for (auto& e : entries_) {
    if (e.valid && e.vpn == vpn) {
      e.lru = lru_clock_;
      ++stats_.hits;
      return true;
    }
    if (!e.valid) {
      victim = &e;
    } else if (victim->valid && e.lru < victim->lru) {
      victim = &e;
    }
  }
  ++stats_.misses;
  victim->valid = true;
  victim->vpn = vpn;
  victim->lru = lru_clock_;
  return false;
}

void Tlb::Flush() {
  for (auto& e : entries_) e = Entry{};
}

}  // namespace hwstar::sim
