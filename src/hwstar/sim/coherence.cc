#include "hwstar/sim/coherence.h"

#include <sstream>

#include "hwstar/common/bits.h"
#include "hwstar/common/macros.h"

namespace hwstar::sim {

CoherenceModel::CoherenceModel(uint32_t cores)
    : CoherenceModel(cores, Options{}) {}

CoherenceModel::CoherenceModel(uint32_t cores, Options options)
    : options_(options), caches_(cores), per_core_(cores) {
  HWSTAR_CHECK(cores >= 1);
  HWSTAR_CHECK(bits::IsPowerOfTwo(options.line_bytes));
}

void CoherenceModel::EvictIfNeeded(CoreCache* cache) {
  if (cache->lines.size() <= options_.private_cache_lines) return;
  // Evict the least recently used line (linear scan over the bounded map;
  // the model favors clarity over speed).
  auto victim = cache->lines.begin();
  for (auto it = cache->lines.begin(); it != cache->lines.end(); ++it) {
    if (it->second.lru < victim->second.lru) victim = it;
  }
  cache->lines.erase(victim);
}

void CoherenceModel::Touch(CoreCache* cache, uint64_t line, LineState state) {
  auto& entry = cache->lines[line];
  entry.state = state;
  entry.lru = ++cache->lru_clock;
  EvictIfNeeded(cache);
}

uint32_t CoherenceModel::Access(uint32_t core, uint64_t addr, bool is_write) {
  HWSTAR_DCHECK(core < caches_.size());
  const uint64_t line = addr / options_.line_bytes;
  CoreCache& self = caches_[core];
  CoherenceStats& cstats = per_core_[core];
  (is_write ? stats_.writes : stats_.reads)++;
  (is_write ? cstats.writes : cstats.reads)++;

  uint32_t latency = options_.hit_latency;
  auto it = self.lines.find(line);
  const bool present = it != self.lines.end();

  // Does any other core hold the line, and in what state?
  bool other_has = false;
  bool other_modified = false;
  for (uint32_t c = 0; c < caches_.size(); ++c) {
    if (c == core) continue;
    auto oit = caches_[c].lines.find(line);
    if (oit != caches_[c].lines.end()) {
      other_has = true;
      other_modified |= oit->second.state == LineState::kModified;
    }
  }

  if (!is_write) {
    if (present) {
      ++stats_.hits;
      ++cstats.hits;
    } else {
      // Miss: coherence miss if another core has it modified (it was
      // stolen from us or never here); otherwise capacity/cold.
      if (other_modified) {
        latency += options_.transfer_latency;
        ++stats_.coherence_misses;
        ++cstats.coherence_misses;
        // The owner downgrades to shared.
        for (uint32_t c = 0; c < caches_.size(); ++c) {
          auto oit = caches_[c].lines.find(line);
          if (oit != caches_[c].lines.end()) {
            oit->second.state = LineState::kShared;
          }
        }
      } else {
        latency += options_.miss_latency;
        ++stats_.capacity_misses;
        ++cstats.capacity_misses;
      }
      Touch(&self, line, LineState::kShared);
      stats_.total_cycles += latency;
      cstats.total_cycles += latency;
      return latency;
    }
    // Read hit: refresh LRU.
    it->second.lru = ++self.lru_clock;
    stats_.total_cycles += latency;
    cstats.total_cycles += latency;
    return latency;
  }

  // Write: need exclusive ownership; invalidate every other copy.
  if (other_has) {
    uint32_t invalidated = 0;
    for (uint32_t c = 0; c < caches_.size(); ++c) {
      if (c == core) continue;
      invalidated += caches_[c].lines.erase(line) != 0 ? 1 : 0;
    }
    latency += options_.invalidate_cost * invalidated;
    if (other_modified) latency += options_.transfer_latency;
    stats_.invalidations_sent += invalidated;
    cstats.invalidations_sent += invalidated;
  }
  if (present) {
    ++stats_.hits;
    ++cstats.hits;
    it->second.state = LineState::kModified;
    it->second.lru = ++self.lru_clock;
  } else {
    if (other_modified) {
      ++stats_.coherence_misses;
      ++cstats.coherence_misses;
      latency += options_.transfer_latency;
    } else if (other_has) {
      // Line was shared elsewhere: upgrade miss, counted as coherence
      // traffic since sharing caused it.
      ++stats_.coherence_misses;
      ++cstats.coherence_misses;
    } else {
      ++stats_.capacity_misses;
      ++cstats.capacity_misses;
      latency += options_.miss_latency;
    }
    Touch(&self, line, LineState::kModified);
  }
  stats_.total_cycles += latency;
  cstats.total_cycles += latency;
  return latency;
}

void CoherenceModel::ResetStats() {
  stats_ = CoherenceStats{};
  for (auto& s : per_core_) s = CoherenceStats{};
}

std::string CoherenceModel::ToString() const {
  std::ostringstream os;
  os << "coherence: cpa=" << stats_.cycles_per_access()
     << " inval=" << stats_.invalidations_sent
     << " coh_miss_frac=" << stats_.coherence_miss_fraction();
  return os.str();
}

}  // namespace hwstar::sim
