#include "hwstar/sim/memory_trace.h"

// MemoryTrace is fully inline; kept as a translation unit for build
// uniformity.
