#ifndef HWSTAR_SIM_NUMA_MODEL_H_
#define HWSTAR_SIM_NUMA_MODEL_H_

#include <cstdint>
#include <map>
#include <vector>

#include "hwstar/hw/machine_model.h"

namespace hwstar::sim {

/// NUMA access statistics.
struct NumaStats {
  uint64_t local_accesses = 0;
  uint64_t remote_accesses = 0;
  double remote_fraction() const {
    uint64_t a = local_accesses + remote_accesses;
    return a == 0 ? 0.0
                  : static_cast<double>(remote_accesses) / static_cast<double>(a);
  }
  void Reset() { *this = NumaStats{}; }
};

/// Models memory-node placement over a flat address space. Allocations are
/// registered with a home node (or interleaved); each DRAM access is then
/// classified local/remote relative to the accessing core's node and charged
/// the remote multiplier. This reproduces the placement sensitivity of real
/// multi-socket machines on a host that has none.
class NumaModel {
 public:
  explicit NumaModel(const hw::MachineModel& machine);

  /// Placement policies for RegisterRegion.
  enum class Policy {
    kBindNode0,      ///< everything on node 0 (the naive default)
    kInterleave,     ///< round-robin pages across nodes
    kFirstTouch,     ///< owner = node passed at registration (caller decides)
  };

  /// Registers [base, base+bytes) with the given policy. For kFirstTouch
  /// the `node` argument gives the touching core's node.
  void RegisterRegion(uint64_t base, uint64_t bytes, Policy policy,
                      uint32_t node = 0);

  /// Removes a registration (e.g., on free).
  void UnregisterRegion(uint64_t base);

  /// Node that owns the page containing addr; unregistered memory defaults
  /// to node 0.
  uint32_t HomeNode(uint64_t addr) const;

  /// Node of a core under a block-cyclic core->node map.
  uint32_t NodeOfCore(uint32_t core) const;

  /// Latency in cycles of a DRAM access from `core` to `addr`, given the
  /// machine's base DRAM latency; records local/remote statistics.
  uint32_t DramLatency(uint32_t core, uint64_t addr);

  uint32_t num_nodes() const { return machine_.numa_nodes; }
  const NumaStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

 private:
  struct Region {
    uint64_t base = 0;
    uint64_t bytes = 0;
    Policy policy = Policy::kBindNode0;
    uint32_t node = 0;
  };

  hw::MachineModel machine_;
  uint32_t page_bytes_;
  std::map<uint64_t, Region> regions_;  // keyed by base
  NumaStats stats_;
};

}  // namespace hwstar::sim

#endif  // HWSTAR_SIM_NUMA_MODEL_H_
