#include "hwstar/sim/roofline.h"

#include <algorithm>
#include <sstream>

namespace hwstar::sim {

double RooflineModel::AttainableGflops(double ops_per_byte) const {
  if (ops_per_byte <= 0) return 0.0;
  return std::min(params_.peak_gflops,
                  ops_per_byte * params_.peak_bandwidth_gbps);
}

double RooflineModel::PredictSeconds(uint64_t bytes, uint64_t ops) const {
  const double compute_s =
      static_cast<double>(ops) / (params_.peak_gflops * 1e9);
  const double memory_s =
      static_cast<double>(bytes) / (params_.peak_bandwidth_gbps * 1e9);
  return std::max(compute_s, memory_s);
}

double RooflineModel::PredictCompressedSeconds(uint64_t bytes, uint64_t ops,
                                               double compression_ratio,
                                               uint64_t extra_decode_ops) const {
  if (compression_ratio < 1.0) compression_ratio = 1.0;
  const uint64_t compressed_bytes =
      static_cast<uint64_t>(static_cast<double>(bytes) / compression_ratio);
  return PredictSeconds(compressed_bytes, ops + extra_decode_ops);
}

std::string RooflineModel::ToString() const {
  std::ostringstream os;
  os << "roofline: " << params_.peak_gflops << " Gop/s, "
     << params_.peak_bandwidth_gbps << " GB/s, ridge at "
     << RidgeIntensity() << " ops/byte";
  return os.str();
}

}  // namespace hwstar::sim
