#include "hwstar/sim/flash_model.h"

namespace hwstar::sim {

double FlashModel::Read() {
  ++reads_;
  total_us_ += params_.read_latency_us;
  return params_.read_latency_us;
}

double FlashModel::Write() {
  ++writes_;
  total_us_ += params_.write_latency_us;
  return params_.write_latency_us;
}

double FlashModel::WearFraction(uint64_t blocks) const {
  if (blocks == 0) return 0.0;
  const double per_block =
      static_cast<double>(writes_) / static_cast<double>(blocks);
  return per_block / static_cast<double>(params_.endurance_writes);
}

void FlashModel::ResetStats() {
  reads_ = 0;
  writes_ = 0;
  total_us_ = 0;
}

}  // namespace hwstar::sim
