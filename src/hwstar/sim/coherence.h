#ifndef HWSTAR_SIM_COHERENCE_H_
#define HWSTAR_SIM_COHERENCE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "hwstar/hw/machine_model.h"

namespace hwstar::sim {

/// Coherence statistics.
struct CoherenceStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t invalidations_sent = 0;   ///< write forced other copies out
  uint64_t coherence_misses = 0;     ///< miss caused by an invalidation
  uint64_t capacity_misses = 0;      ///< ordinary miss
  uint64_t hits = 0;
  uint64_t total_cycles = 0;

  double cycles_per_access() const {
    uint64_t a = reads + writes;
    return a == 0 ? 0.0
                  : static_cast<double>(total_cycles) / static_cast<double>(a);
  }
  double coherence_miss_fraction() const {
    uint64_t m = coherence_misses + capacity_misses;
    return m == 0 ? 0.0
                  : static_cast<double>(coherence_misses) /
                        static_cast<double>(m);
  }
};

/// A line-granular MSI coherence model over per-core private caches. The
/// multicore shift the paper describes did not just add cores; it made
/// *writes to shared cache lines* a communication primitive with a price.
/// This model exposes that price: each core has a private cache directory
/// (line -> M/S state, LRU-bounded); a write invalidates all other copies,
/// and the invalidated cores' next access is a coherence miss that pays
/// the cache-to-cache transfer latency. The canonical pathology it makes
/// measurable is false sharing: independent counters packed into one line
/// (experiment E11).
class CoherenceModel {
 public:
  struct Options {
    uint32_t line_bytes = 64;
    uint32_t private_cache_lines = 512;  ///< per-core capacity (32KB / 64B)
    uint32_t hit_latency = 4;
    uint32_t miss_latency = 200;         ///< serve from memory/LLC
    uint32_t transfer_latency = 60;      ///< dirty line from another core
    uint32_t invalidate_cost = 20;       ///< per invalidation message
  };

  /// Builds the model with default option values.
  explicit CoherenceModel(uint32_t cores);
  CoherenceModel(uint32_t cores, Options options);

  /// Models one read/write of `addr` by `core`; returns latency in cycles.
  uint32_t Access(uint32_t core, uint64_t addr, bool is_write);

  /// Aggregate and per-core statistics.
  const CoherenceStats& stats() const { return stats_; }
  const CoherenceStats& core_stats(uint32_t core) const {
    return per_core_[core];
  }
  void ResetStats();

  uint32_t cores() const { return static_cast<uint32_t>(per_core_.size()); }
  std::string ToString() const;

 private:
  enum class LineState : uint8_t { kShared, kModified };

  struct LineEntry {
    LineState state = LineState::kShared;
    uint64_t lru = 0;
  };

  /// Per-core directory of cached lines (bounded, LRU).
  struct CoreCache {
    std::map<uint64_t, LineEntry> lines;
    uint64_t lru_clock = 0;
  };

  void Touch(CoreCache* cache, uint64_t line, LineState state);
  void EvictIfNeeded(CoreCache* cache);

  Options options_;
  std::vector<CoreCache> caches_;
  CoherenceStats stats_;
  std::vector<CoherenceStats> per_core_;
};

}  // namespace hwstar::sim

#endif  // HWSTAR_SIM_COHERENCE_H_
