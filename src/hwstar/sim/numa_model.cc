#include "hwstar/sim/numa_model.h"

#include "hwstar/common/macros.h"

namespace hwstar::sim {

NumaModel::NumaModel(const hw::MachineModel& machine)
    : machine_(machine), page_bytes_(machine.tlb.page_bytes) {
  HWSTAR_CHECK(machine_.numa_nodes >= 1);
}

void NumaModel::RegisterRegion(uint64_t base, uint64_t bytes, Policy policy,
                               uint32_t node) {
  Region r{base, bytes, policy, node % machine_.numa_nodes};
  regions_[base] = r;
}

void NumaModel::UnregisterRegion(uint64_t base) { regions_.erase(base); }

uint32_t NumaModel::HomeNode(uint64_t addr) const {
  if (machine_.numa_nodes == 1) return 0;
  // Find the last region whose base is <= addr and check containment.
  auto it = regions_.upper_bound(addr);
  if (it == regions_.begin()) return 0;
  --it;
  const Region& r = it->second;
  if (addr >= r.base + r.bytes) return 0;
  switch (r.policy) {
    case Policy::kBindNode0:
      return 0;
    case Policy::kInterleave: {
      uint64_t page = (addr - r.base) / page_bytes_;
      return static_cast<uint32_t>(page % machine_.numa_nodes);
    }
    case Policy::kFirstTouch:
      return r.node;
  }
  return 0;
}

uint32_t NumaModel::NodeOfCore(uint32_t core) const {
  if (machine_.numa_nodes == 1) return 0;
  uint32_t per_node =
      (machine_.cores + machine_.numa_nodes - 1) / machine_.numa_nodes;
  return (core / per_node) % machine_.numa_nodes;
}

uint32_t NumaModel::DramLatency(uint32_t core, uint64_t addr) {
  const uint32_t home = HomeNode(addr);
  if (home == NodeOfCore(core)) {
    ++stats_.local_accesses;
    return machine_.dram_latency_cycles;
  }
  ++stats_.remote_accesses;
  return static_cast<uint32_t>(static_cast<double>(machine_.dram_latency_cycles) *
                               machine_.numa_remote_multiplier);
}

}  // namespace hwstar::sim
