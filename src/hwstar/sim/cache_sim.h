#ifndef HWSTAR_SIM_CACHE_SIM_H_
#define HWSTAR_SIM_CACHE_SIM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "hwstar/hw/machine_model.h"

namespace hwstar::sim {

/// Hit/miss statistics of one cache level.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;

  uint64_t accesses() const { return hits + misses; }
  double miss_ratio() const {
    uint64_t a = accesses();
    return a == 0 ? 0.0 : static_cast<double>(misses) / static_cast<double>(a);
  }
  void Reset() { *this = CacheStats{}; }
};

/// One set-associative, write-back, write-allocate cache level with true-LRU
/// replacement. Deterministic by construction: feeding the same address
/// sequence always produces the same statistics, which is what makes the
/// simulated counters usable as reproducible stand-ins for hardware PMCs.
class CacheLevel {
 public:
  /// Builds a level from its spec. size/line/associativity must be powers
  /// of two and consistent (size >= line * ways).
  explicit CacheLevel(const hw::CacheLevelSpec& spec);

  /// Looks up (and on miss, fills) the line containing `addr`.
  /// Returns true on hit. `is_write` marks the line dirty.
  /// When a dirty line is evicted, `writebacks` is incremented.
  bool Access(uint64_t addr, bool is_write);

  /// Lookup without fill or LRU update; used by inclusive-hierarchy probes
  /// and tests.
  bool Contains(uint64_t addr) const;

  /// Invalidates everything (keeps statistics).
  void Flush();

  const CacheStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  const hw::CacheLevelSpec& spec() const { return spec_; }
  uint64_t num_sets() const { return num_sets_; }

  /// "L?: hits=... misses=... mr=..." summary.
  std::string ToString() const;

 private:
  struct Way {
    uint64_t tag = 0;
    uint64_t lru = 0;  // larger = more recently used
    bool valid = false;
    bool dirty = false;
  };

  uint64_t SetIndex(uint64_t addr) const {
    const uint64_t line = addr >> line_shift_;
    // Mask when the set count is a power of two; modulo otherwise
    // (real LLC slice counts are frequently not powers of two).
    return pow2_sets_ ? (line & (num_sets_ - 1)) : (line % num_sets_);
  }
  uint64_t Tag(uint64_t addr) const { return addr >> line_shift_; }

  hw::CacheLevelSpec spec_;
  uint32_t line_shift_;
  uint64_t num_sets_;
  bool pow2_sets_;
  uint64_t lru_clock_ = 0;
  std::vector<Way> ways_;  // num_sets_ * associativity, row-major by set
  CacheStats stats_;
};

}  // namespace hwstar::sim

#endif  // HWSTAR_SIM_CACHE_SIM_H_
