#ifndef HWSTAR_SIM_ENERGY_MODEL_H_
#define HWSTAR_SIM_ENERGY_MODEL_H_

#include <cstdint>
#include <string>

#include "hwstar/hw/machine_model.h"

namespace hwstar::sim {

/// Raw event counts fed into the energy model.
struct EnergyEvents {
  uint64_t instructions = 0;
  uint64_t l1_hits = 0;
  uint64_t l2_hits = 0;
  uint64_t l3_hits = 0;
  uint64_t dram_accesses = 0;

  EnergyEvents& operator+=(const EnergyEvents& o) {
    instructions += o.instructions;
    l1_hits += o.l1_hits;
    l2_hits += o.l2_hits;
    l3_hits += o.l3_hits;
    dram_accesses += o.dram_accesses;
    return *this;
  }
};

/// Event-based energy proxy: energy = sum(events * per-event cost). The
/// absolute picojoule numbers are coarse, but the *ratios* (a DRAM access
/// costs ~200x an L1 hit) match the published energy-per-operation
/// literature, so comparisons between algorithms are meaningful -- which is
/// all the paper's "energy is a first-class constraint" argument needs.
class EnergyModel {
 public:
  explicit EnergyModel(const hw::MachineModel& machine) : machine_(machine) {}

  /// Total energy in picojoules for the given event counts.
  double EnergyPicojoules(const EnergyEvents& e) const;

  /// Energy in nanojoules (convenience).
  double EnergyNanojoules(const EnergyEvents& e) const {
    return EnergyPicojoules(e) * 1e-3;
  }

  /// Per-tuple energy given a tuple count; returns 0 for empty inputs.
  double EnergyPerTuplePj(const EnergyEvents& e, uint64_t tuples) const {
    return tuples == 0 ? 0.0 : EnergyPicojoules(e) / static_cast<double>(tuples);
  }

  const hw::MachineModel& machine() const { return machine_; }

 private:
  hw::MachineModel machine_;
};

}  // namespace hwstar::sim

#endif  // HWSTAR_SIM_ENERGY_MODEL_H_
