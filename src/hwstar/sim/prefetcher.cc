#include "hwstar/sim/prefetcher.h"

#include <cstdlib>

namespace hwstar::sim {

StridePrefetcher::StridePrefetcher(uint32_t streams, uint32_t degree,
                                   uint32_t confidence, uint32_t line_bytes)
    : degree_(degree),
      confidence_(confidence),
      line_bytes_(line_bytes),
      streams_(streams) {}

void StridePrefetcher::Observe(uint64_t addr, std::vector<uint64_t>* out) {
  out->clear();
  ++lru_clock_;

  // Find the stream whose predicted next address is closest to addr
  // (within 8 lines), i.e., the stream this access most plausibly belongs
  // to.
  Stream* best = nullptr;
  for (auto& s : streams_) {
    if (!s.valid) continue;
    int64_t delta = static_cast<int64_t>(addr) - static_cast<int64_t>(s.last_addr);
    if (std::llabs(delta) <= static_cast<int64_t>(8 * line_bytes_)) {
      if (best == nullptr || s.lru > best->lru) best = &s;
    }
  }

  if (best != nullptr) {
    int64_t delta = static_cast<int64_t>(addr) - static_cast<int64_t>(best->last_addr);
    if (delta != 0 && delta == best->stride) {
      if (++best->hits == confidence_) ++stats_.streams_detected;
    } else {
      best->stride = delta;
      best->hits = delta == 0 ? best->hits : 1;
    }
    best->last_addr = addr;
    best->lru = lru_clock_;
    if (best->hits >= confidence_ && best->stride != 0) {
      for (uint32_t d = 1; d <= degree_; ++d) {
        out->push_back(addr + static_cast<uint64_t>(best->stride) * d);
        ++stats_.issued;
      }
    }
    return;
  }

  // Allocate a new stream in the least recently used slot.
  Stream* victim = &streams_[0];
  for (auto& s : streams_) {
    if (!s.valid) {
      victim = &s;
      break;
    }
    if (s.lru < victim->lru) victim = &s;
  }
  victim->valid = true;
  victim->last_addr = addr;
  victim->stride = 0;
  victim->hits = 0;
  victim->lru = lru_clock_;
}

void StridePrefetcher::Reset() {
  for (auto& s : streams_) s = Stream{};
  lru_clock_ = 0;
}

}  // namespace hwstar::sim
