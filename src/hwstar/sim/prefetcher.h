#ifndef HWSTAR_SIM_PREFETCHER_H_
#define HWSTAR_SIM_PREFETCHER_H_

#include <cstdint>
#include <vector>

namespace hwstar::sim {

/// Prefetcher statistics.
struct PrefetchStats {
  uint64_t issued = 0;
  uint64_t streams_detected = 0;
  void Reset() { *this = PrefetchStats{}; }
};

/// A table-based stride prefetcher: tracks a small number of access
/// streams, detects a repeated stride and, once confident, emits prefetch
/// addresses `degree` strides ahead. This reproduces the qualitative
/// hardware behaviour that makes sequential scans nearly latency-free while
/// leaving random probes exposed to full memory latency -- the asymmetry
/// that drives most layout/algorithm choices discussed in the paper.
class StridePrefetcher {
 public:
  /// `streams`: tracked-stream table size. `degree`: how many lines ahead
  /// to prefetch once a stream is confirmed. `confidence`: consecutive
  /// same-stride hits needed before issuing.
  StridePrefetcher(uint32_t streams = 8, uint32_t degree = 2,
                   uint32_t confidence = 2, uint32_t line_bytes = 64);

  /// Observes a demand access; appends predicted prefetch addresses to
  /// `out` (cleared first).
  void Observe(uint64_t addr, std::vector<uint64_t>* out);

  const PrefetchStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }
  void Reset();

 private:
  struct Stream {
    uint64_t last_addr = 0;
    int64_t stride = 0;
    uint32_t hits = 0;
    uint64_t lru = 0;
    bool valid = false;
  };

  uint32_t degree_;
  uint32_t confidence_;
  uint32_t line_bytes_;
  uint64_t lru_clock_ = 0;
  std::vector<Stream> streams_;
  PrefetchStats stats_;
};

}  // namespace hwstar::sim

#endif  // HWSTAR_SIM_PREFETCHER_H_
