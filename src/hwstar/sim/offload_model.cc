#include "hwstar/sim/offload_model.h"

namespace hwstar::sim {

namespace {
constexpr double kGb = 1e9;
}

double OffloadModel::AccelSeconds(uint64_t bytes) const {
  double t = params_.setup_seconds;
  if (params_.requires_transfer) {
    t += static_cast<double>(bytes) / (params_.transfer_bandwidth_gbps * kGb);
  }
  t += static_cast<double>(bytes) / (params_.accel_bandwidth_gbps * kGb);
  return t;
}

double OffloadModel::CpuSeconds(uint64_t bytes, uint32_t cores) const {
  if (cores == 0) cores = 1;
  double bw = params_.cpu_bandwidth_gbps * kGb * static_cast<double>(cores);
  return static_cast<double>(bytes) / bw;
}

uint64_t OffloadModel::BreakEvenBytes(uint32_t cpu_cores) const {
  // If the effective accelerator streaming rate is not faster than the CPU,
  // the setup cost can never be amortized.
  double accel_rate =
      params_.requires_transfer
          ? 1.0 / (1.0 / params_.accel_bandwidth_gbps +
                   1.0 / params_.transfer_bandwidth_gbps)
          : params_.accel_bandwidth_gbps;
  double cpu_rate =
      params_.cpu_bandwidth_gbps * static_cast<double>(cpu_cores == 0 ? 1 : cpu_cores);
  if (accel_rate <= cpu_rate) return 0;

  uint64_t lo = 1, hi = uint64_t{1} << 40;  // 1 TB
  if (AccelSeconds(lo) <= CpuSeconds(lo, cpu_cores)) return 1;
  if (AccelSeconds(hi) > CpuSeconds(hi, cpu_cores)) return 0;
  while (lo + 1 < hi) {
    uint64_t mid = lo + (hi - lo) / 2;
    if (AccelSeconds(mid) <= CpuSeconds(mid, cpu_cores)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace hwstar::sim
