#ifndef HWSTAR_SIM_TLB_H_
#define HWSTAR_SIM_TLB_H_

#include <cstdint>
#include <vector>

#include "hwstar/hw/machine_model.h"

namespace hwstar::sim {

/// TLB statistics.
struct TlbStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  double miss_ratio() const {
    uint64_t a = hits + misses;
    return a == 0 ? 0.0 : static_cast<double>(misses) / static_cast<double>(a);
  }
  void Reset() { *this = TlbStats{}; }
};

/// Fully-associative LRU TLB. Page size and entry count come from the
/// machine model; switching page_bytes to 2MB models huge pages, which is
/// one of the hardware knobs the paper says software must start caring
/// about (radix joins with fan-out beyond TLB reach collapse without them).
class Tlb {
 public:
  explicit Tlb(const hw::TlbSpec& spec);

  /// Translates the page containing addr; returns true on TLB hit.
  bool Access(uint64_t addr);

  /// Drops all entries (keeps statistics).
  void Flush();

  const TlbStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }
  const hw::TlbSpec& spec() const { return spec_; }

 private:
  struct Entry {
    uint64_t vpn = 0;
    uint64_t lru = 0;
    bool valid = false;
  };

  hw::TlbSpec spec_;
  uint32_t page_shift_;
  uint64_t lru_clock_ = 0;
  std::vector<Entry> entries_;
  TlbStats stats_;
};

}  // namespace hwstar::sim

#endif  // HWSTAR_SIM_TLB_H_
