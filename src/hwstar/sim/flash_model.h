#ifndef HWSTAR_SIM_FLASH_MODEL_H_
#define HWSTAR_SIM_FLASH_MODEL_H_

#include <cstdint>

namespace hwstar::sim {

/// Cost model of a flash/SSD tier. The keynote's storage argument: flash
/// rewrote the economics under the buffer pool -- reads are cheap but not
/// DRAM-cheap, writes are asymmetric, endurance is finite -- so engines
/// must decide *which* data lives where (the hot/cold problem, E13)
/// instead of letting an oblivious LRU decide.
class FlashModel {
 public:
  struct Params {
    double read_latency_us = 50.0;    ///< 4KB random read
    double write_latency_us = 200.0;  ///< 4KB program
    double dram_latency_us = 0.1;     ///< DRAM access for comparison
    uint64_t endurance_writes = 3000; ///< per-block program/erase budget
  };

  FlashModel() = default;
  explicit FlashModel(const Params& params) : params_(params) {}

  /// Records one read/write; returns its latency in microseconds.
  double Read();
  double Write();

  /// Latency of a DRAM access (for tier comparisons); not counted as
  /// flash traffic.
  double DramAccess() const { return params_.dram_latency_us; }

  uint64_t reads() const { return reads_; }
  uint64_t writes() const { return writes_; }
  double total_latency_us() const { return total_us_; }

  /// Fraction of the endurance budget consumed, assuming writes spread
  /// over `blocks` blocks.
  double WearFraction(uint64_t blocks) const;

  void ResetStats();

  const Params& params() const { return params_; }

 private:
  Params params_;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
  double total_us_ = 0;
};

}  // namespace hwstar::sim

#endif  // HWSTAR_SIM_FLASH_MODEL_H_
