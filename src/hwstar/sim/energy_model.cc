#include "hwstar/sim/energy_model.h"

namespace hwstar::sim {

double EnergyModel::EnergyPicojoules(const EnergyEvents& e) const {
  double pj = 0.0;
  pj += static_cast<double>(e.instructions) * machine_.energy_pj_instruction;
  pj += static_cast<double>(e.l1_hits) * machine_.energy_pj_l1_hit;
  pj += static_cast<double>(e.l2_hits) * machine_.energy_pj_l2_hit;
  pj += static_cast<double>(e.l3_hits) * machine_.energy_pj_l3_hit;
  pj += static_cast<double>(e.dram_accesses) * machine_.energy_pj_dram;
  return pj;
}

}  // namespace hwstar::sim
