#ifndef HWSTAR_SIM_OFFLOAD_MODEL_H_
#define HWSTAR_SIM_OFFLOAD_MODEL_H_

#include <cstdint>
#include <string>

namespace hwstar::sim {

/// Cost model of a fixed-function accelerator (FPGA/smart NIC style), as
/// discussed in the paper's heterogeneity section: offloading pays a fixed
/// setup cost (kernel launch, data marshaling, PCIe round-trip) and then
/// streams at a fixed bandwidth, while the CPU starts immediately but
/// streams slower. The interesting output is the break-even data size.
class OffloadModel {
 public:
  struct Params {
    double setup_seconds = 50e-6;          ///< launch + transfer setup
    double accel_bandwidth_gbps = 40.0;    ///< accelerator streaming rate
    double cpu_bandwidth_gbps = 8.0;       ///< single-core CPU streaming rate
    double transfer_bandwidth_gbps = 12.0; ///< host<->device link
    bool requires_transfer = true;         ///< false for coherent/NDP models
  };

  /// Default accelerator: PCIe-attached FPGA-style streaming engine.
  OffloadModel() = default;
  explicit OffloadModel(const Params& params) : params_(params) {}

  /// Time for the accelerator path over `bytes` of input.
  double AccelSeconds(uint64_t bytes) const;

  /// Time for the CPU path over `bytes` of input with `cores` cores
  /// (bandwidth scales linearly up to the given core count).
  double CpuSeconds(uint64_t bytes, uint32_t cores = 1) const;

  /// Smallest input size (bytes) at which the accelerator wins, found by
  /// bisection over [1, 1TB]; returns 0 if the accelerator never wins, and
  /// 1 if it always wins.
  uint64_t BreakEvenBytes(uint32_t cpu_cores = 1) const;

  const Params& params() const { return params_; }

 private:
  Params params_;
};

}  // namespace hwstar::sim

#endif  // HWSTAR_SIM_OFFLOAD_MODEL_H_
