#ifndef HWSTAR_SIM_MEMORY_TRACE_H_
#define HWSTAR_SIM_MEMORY_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hwstar::sim {

/// One recorded memory access.
struct TraceEntry {
  uint64_t addr;
  uint32_t core;
  bool is_write;
};

/// A bounded in-memory access trace. Operators can record their access
/// pattern once and replay it against differently-configured hierarchies
/// (e.g., to ask "what would this join do on a machine with half the L3?"),
/// which is exactly the what-if analysis the paper demands of performance
/// engineering.
class MemoryTrace {
 public:
  /// `capacity`: maximum retained entries; further Records are counted but
  /// dropped (see dropped()).
  explicit MemoryTrace(size_t capacity = 1 << 20) : capacity_(capacity) {}

  /// Appends an access (if capacity allows).
  void Record(uint64_t addr, bool is_write, uint32_t core = 0) {
    if (entries_.size() < capacity_) {
      entries_.push_back(TraceEntry{addr, core, is_write});
    } else {
      ++dropped_;
    }
  }

  const std::vector<TraceEntry>& entries() const { return entries_; }
  uint64_t dropped() const { return dropped_; }
  size_t size() const { return entries_.size(); }
  void Clear() {
    entries_.clear();
    dropped_ = 0;
  }

 private:
  size_t capacity_;
  std::vector<TraceEntry> entries_;
  uint64_t dropped_ = 0;
};

}  // namespace hwstar::sim

#endif  // HWSTAR_SIM_MEMORY_TRACE_H_
