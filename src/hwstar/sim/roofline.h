#ifndef HWSTAR_SIM_ROOFLINE_H_
#define HWSTAR_SIM_ROOFLINE_H_

#include <cstdint>
#include <string>

namespace hwstar::sim {

/// The roofline model: a kernel's attainable throughput is
/// min(peak compute, arithmetic intensity x memory bandwidth). The paper's
/// "strict performance engineering" starts with exactly this question --
/// is a kernel compute- or bandwidth-bound? -- because it decides whether
/// more cores help at all (E1's saturation) and whether compression pays
/// (A3's bytes-vs-cycles trade).
class RooflineModel {
 public:
  struct Params {
    double peak_gflops = 16.0;       ///< per-socket scalar ops (Gop/s)
    double peak_bandwidth_gbps = 25.6;  ///< memory bandwidth (GB/s)
  };

  RooflineModel() = default;
  explicit RooflineModel(const Params& params) : params_(params) {}

  /// Arithmetic intensity (ops/byte) at which the two roofs meet.
  double RidgeIntensity() const {
    return params_.peak_gflops / params_.peak_bandwidth_gbps;
  }

  /// Attainable throughput (Gop/s) at the given intensity.
  double AttainableGflops(double ops_per_byte) const;

  /// True when a kernel of this intensity is limited by bandwidth.
  bool IsBandwidthBound(double ops_per_byte) const {
    return ops_per_byte < RidgeIntensity();
  }

  /// Predicted runtime (seconds) for a kernel moving `bytes` and
  /// executing `ops` operations.
  double PredictSeconds(uint64_t bytes, uint64_t ops) const;

  /// Same kernel with an effective compression ratio r (bytes shrink by
  /// r, ops grow by decode_ops_per_value * values): answers "does
  /// compression pay?" analytically.
  double PredictCompressedSeconds(uint64_t bytes, uint64_t ops,
                                  double compression_ratio,
                                  uint64_t extra_decode_ops) const;

  const Params& params() const { return params_; }
  std::string ToString() const;

 private:
  Params params_;
};

}  // namespace hwstar::sim

#endif  // HWSTAR_SIM_ROOFLINE_H_
