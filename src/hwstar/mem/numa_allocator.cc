#include "hwstar/mem/numa_allocator.h"

namespace hwstar::mem {

void* NumaAllocator::Allocate(size_t bytes, Policy policy, uint32_t node) {
  void* p = AlignedAlloc(bytes);
  if (p != nullptr && model_ != nullptr) {
    model_->RegisterRegion(reinterpret_cast<uint64_t>(p), bytes, policy, node);
  }
  return p;
}

void NumaAllocator::Free(void* ptr, size_t bytes) {
  (void)bytes;
  if (ptr == nullptr) return;
  if (model_ != nullptr) {
    model_->UnregisterRegion(reinterpret_cast<uint64_t>(ptr));
  }
  AlignedFree(ptr);
}

}  // namespace hwstar::mem
