#ifndef HWSTAR_MEM_NUMA_ALLOCATOR_H_
#define HWSTAR_MEM_NUMA_ALLOCATOR_H_

#include <cstddef>
#include <cstdint>

#include "hwstar/mem/aligned.h"
#include "hwstar/sim/numa_model.h"

namespace hwstar::mem {

/// NUMA-aware allocation front-end. On a real multi-socket machine this
/// would call mbind/numa_alloc_onnode; here it allocates normally and
/// *registers the placement policy with the NumaModel*, so simulated runs
/// charge remote-access latency exactly as the chosen policy implies. The
/// API is the one a production system would expose, which is the point:
/// placement must be an explicit, first-class decision.
class NumaAllocator {
 public:
  using Policy = sim::NumaModel::Policy;

  /// The allocator registers placements with (and must not outlive)
  /// `model`.
  explicit NumaAllocator(sim::NumaModel* model) : model_(model) {}

  /// Allocates `bytes` under `policy`; `node` is the home node for
  /// kFirstTouch.
  void* Allocate(size_t bytes, Policy policy, uint32_t node = 0);

  /// Frees and unregisters.
  void Free(void* ptr, size_t bytes);

  /// Typed helpers.
  template <typename T>
  T* AllocateArray(size_t count, Policy policy, uint32_t node = 0) {
    return static_cast<T*>(Allocate(count * sizeof(T), policy, node));
  }

  sim::NumaModel* model() const { return model_; }

 private:
  sim::NumaModel* model_;
};

}  // namespace hwstar::mem

#endif  // HWSTAR_MEM_NUMA_ALLOCATOR_H_
