#ifndef HWSTAR_MEM_MEMORY_POOL_H_
#define HWSTAR_MEM_MEMORY_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "hwstar/common/status.h"

namespace hwstar::mem {

/// Tracks live/peak allocation of a component. All storage-layer
/// allocations go through a pool so experiments can report memory
/// footprints alongside time and simulated-hardware counters (the paper's
/// point that performance engineering must account for all resources).
/// Thread-safe.
class MemoryPool {
 public:
  /// `limit_bytes` = 0 means unlimited.
  explicit MemoryPool(size_t limit_bytes = 0) : limit_bytes_(limit_bytes) {}

  MemoryPool(const MemoryPool&) = delete;
  MemoryPool& operator=(const MemoryPool&) = delete;

  /// Allocates cache-line-aligned memory, or ResourceExhausted when the
  /// limit would be exceeded.
  Result<void*> Allocate(size_t bytes);

  /// Returns memory to the pool. `bytes` must match the Allocate size.
  void Free(void* ptr, size_t bytes);

  int64_t bytes_in_use() const {
    return in_use_.load(std::memory_order_relaxed);
  }
  int64_t peak_bytes() const { return peak_.load(std::memory_order_relaxed); }
  size_t limit_bytes() const { return limit_bytes_; }

  /// Process-wide default pool (unlimited).
  static MemoryPool* Default();

 private:
  size_t limit_bytes_;
  std::atomic<int64_t> in_use_{0};
  std::atomic<int64_t> peak_{0};
};

}  // namespace hwstar::mem

#endif  // HWSTAR_MEM_MEMORY_POOL_H_
