#include "hwstar/mem/aligned.h"

#include <cstdlib>

#include "hwstar/common/bits.h"
#include "hwstar/common/macros.h"

namespace hwstar::mem {

void* AlignedAlloc(size_t bytes, size_t alignment) {
  HWSTAR_CHECK(bits::IsPowerOfTwo(alignment));
  if (alignment < sizeof(void*)) alignment = sizeof(void*);
  if (bytes == 0) bytes = alignment;
  // std::aligned_alloc requires size to be a multiple of alignment.
  size_t rounded = static_cast<size_t>(bits::AlignUp(bytes, alignment));
  return std::aligned_alloc(alignment, rounded);
}

void AlignedFree(void* ptr) { std::free(ptr); }

AlignedBuffer MakeAlignedBuffer(size_t bytes, size_t alignment) {
  return AlignedBuffer(static_cast<uint8_t*>(AlignedAlloc(bytes, alignment)));
}

}  // namespace hwstar::mem
