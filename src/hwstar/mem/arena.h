#ifndef HWSTAR_MEM_ARENA_H_
#define HWSTAR_MEM_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hwstar/mem/aligned.h"

namespace hwstar::mem {

/// A bump allocator over cache-line-aligned blocks. Allocation is a pointer
/// increment; everything is freed at once when the arena dies (or on
/// Reset()). Used by operators for per-query scratch memory so hot loops
/// never touch the general-purpose allocator -- one of the "strict
/// performance engineering" practices the paper calls for.
class Arena {
 public:
  /// `block_bytes`: granularity of the underlying block allocations.
  explicit Arena(size_t block_bytes = 1 << 20);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Allocates `bytes` with the given alignment (power of two). Never
  /// returns nullptr; aborts on out-of-memory (scratch allocators treat
  /// OOM as a programmer error).
  void* Allocate(size_t bytes, size_t alignment = alignof(std::max_align_t));

  /// Typed array allocation (uninitialized).
  template <typename T>
  T* AllocateArray(size_t count) {
    return static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
  }

  /// Releases all blocks but the first and rewinds to the start.
  void Reset();

  /// Total bytes handed out since construction/Reset.
  size_t bytes_allocated() const { return bytes_allocated_; }
  /// Total bytes reserved from the system.
  size_t bytes_reserved() const { return bytes_reserved_; }

 private:
  struct Block {
    AlignedBuffer buf;
    size_t size = 0;
  };

  void AddBlock(size_t min_bytes);

  size_t block_bytes_;
  std::vector<Block> blocks_;
  uint8_t* cur_ = nullptr;
  uint8_t* end_ = nullptr;
  size_t bytes_allocated_ = 0;
  size_t bytes_reserved_ = 0;
};

}  // namespace hwstar::mem

#endif  // HWSTAR_MEM_ARENA_H_
