#include "hwstar/mem/memory_pool.h"

#include "hwstar/mem/aligned.h"

namespace hwstar::mem {

Result<void*> MemoryPool::Allocate(size_t bytes) {
  int64_t prev = in_use_.fetch_add(static_cast<int64_t>(bytes),
                                   std::memory_order_relaxed);
  int64_t now = prev + static_cast<int64_t>(bytes);
  if (limit_bytes_ != 0 && now > static_cast<int64_t>(limit_bytes_)) {
    in_use_.fetch_sub(static_cast<int64_t>(bytes), std::memory_order_relaxed);
    return Status::ResourceExhausted("memory pool limit exceeded");
  }
  void* p = AlignedAlloc(bytes);
  if (p == nullptr) {
    in_use_.fetch_sub(static_cast<int64_t>(bytes), std::memory_order_relaxed);
    return Status::ResourceExhausted("allocation failed");
  }
  // Update the peak (racy max loop).
  int64_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
  return p;
}

void MemoryPool::Free(void* ptr, size_t bytes) {
  if (ptr == nullptr) return;
  AlignedFree(ptr);
  in_use_.fetch_sub(static_cast<int64_t>(bytes), std::memory_order_relaxed);
}

MemoryPool* MemoryPool::Default() {
  static MemoryPool* pool = new MemoryPool();
  return pool;
}

}  // namespace hwstar::mem
