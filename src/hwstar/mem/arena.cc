#include "hwstar/mem/arena.h"

#include "hwstar/common/bits.h"
#include "hwstar/common/macros.h"

namespace hwstar::mem {

Arena::Arena(size_t block_bytes) : block_bytes_(block_bytes) {
  HWSTAR_CHECK(block_bytes_ >= 4096);
}

void Arena::AddBlock(size_t min_bytes) {
  size_t size = min_bytes > block_bytes_ ? min_bytes : block_bytes_;
  AlignedBuffer buf = MakeAlignedBuffer(size);
  HWSTAR_CHECK(buf != nullptr);
  cur_ = buf.get();
  end_ = cur_ + size;
  bytes_reserved_ += size;
  blocks_.push_back(Block{std::move(buf), size});
}

void* Arena::Allocate(size_t bytes, size_t alignment) {
  HWSTAR_CHECK(bits::IsPowerOfTwo(alignment));
  uintptr_t p = reinterpret_cast<uintptr_t>(cur_);
  uintptr_t aligned = bits::AlignUp(p, alignment);
  size_t needed = (aligned - p) + bytes;
  if (cur_ == nullptr || static_cast<size_t>(end_ - cur_) < needed) {
    AddBlock(bytes + alignment);
    p = reinterpret_cast<uintptr_t>(cur_);
    aligned = bits::AlignUp(p, alignment);
    needed = (aligned - p) + bytes;
  }
  cur_ += needed;
  bytes_allocated_ += bytes;
  return reinterpret_cast<void*>(aligned);
}

void Arena::Reset() {
  if (blocks_.empty()) return;
  blocks_.resize(1);
  cur_ = blocks_[0].buf.get();
  end_ = cur_ + blocks_[0].size;
  bytes_allocated_ = 0;
  bytes_reserved_ = blocks_[0].size;
}

}  // namespace hwstar::mem
