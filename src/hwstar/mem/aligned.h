#ifndef HWSTAR_MEM_ALIGNED_H_
#define HWSTAR_MEM_ALIGNED_H_

#include <cstddef>
#include <cstdint>
#include <memory>

namespace hwstar::mem {

/// Cache line size assumed throughout the library; matches the modeled
/// machines and every x86 part since 2006.
inline constexpr size_t kCacheLineBytes = 64;

/// Allocates `bytes` with the given alignment (power of two, >=
/// sizeof(void*)). Returns nullptr on failure. Free with AlignedFree.
void* AlignedAlloc(size_t bytes, size_t alignment = kCacheLineBytes);

/// Frees memory obtained from AlignedAlloc.
void AlignedFree(void* ptr);

/// Deleter for std::unique_ptr over AlignedAlloc memory.
struct AlignedDeleter {
  void operator()(void* p) const { AlignedFree(p); }
};

/// Owning pointer to cache-line-aligned raw memory.
using AlignedBuffer = std::unique_ptr<uint8_t[], AlignedDeleter>;

/// Allocates an owning, cache-line-aligned buffer of `bytes` bytes.
AlignedBuffer MakeAlignedBuffer(size_t bytes,
                                size_t alignment = kCacheLineBytes);

}  // namespace hwstar::mem

#endif  // HWSTAR_MEM_ALIGNED_H_
