#ifndef HWSTAR_WORKLOAD_DISTRIBUTIONS_H_
#define HWSTAR_WORKLOAD_DISTRIBUTIONS_H_

#include <cstdint>
#include <vector>

#include "hwstar/common/random.h"
#include "hwstar/ops/relation.h"

namespace hwstar::workload {

/// Zipf-distributed integer generator over [0, n). Uses the Gray/Jim
/// rejection-inversion-free approximation: draws are computed from the
/// harmonic CDF constants, so setup is O(1) and each draw is O(1). theta=0
/// degenerates to uniform; theta around 1 is the classic heavy skew used
/// in the join literature.
class ZipfGenerator {
 public:
  /// `n`: domain size; `theta` in [0, 1): skew (larger = more skewed).
  ZipfGenerator(uint64_t n, double theta, uint64_t seed = 42);

  /// Next Zipf-distributed value in [0, n); rank 0 is the most frequent.
  uint64_t Next();

  uint64_t domain() const { return n_; }
  double theta() const { return theta_; }

 private:
  double zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  Xoshiro256 rng_;
};

/// Uniform random keys in [0, domain).
std::vector<uint64_t> UniformKeys(uint64_t count, uint64_t domain,
                                  uint64_t seed = 42);

/// Zipf keys in [0, domain) with skew theta.
std::vector<uint64_t> ZipfKeys(uint64_t count, uint64_t domain, double theta,
                               uint64_t seed = 42);

/// The dense primary-key column 0..count-1 in random order (the standard
/// join-benchmark build side: every key occurs exactly once).
std::vector<uint64_t> ShuffledDenseKeys(uint64_t count, uint64_t seed = 42);

/// Build-side relation: shuffled dense keys 0..count-1, payload = row id.
ops::Relation MakeBuildRelation(uint64_t count, uint64_t seed = 42);

/// Probe-side relation with keys drawn from [0, domain) uniformly
/// (theta == 0) or Zipf-skewed; payload = row id. With domain == build
/// count, every probe matches exactly one build tuple in expectation.
ops::Relation MakeProbeRelation(uint64_t count, uint64_t domain, double theta,
                                uint64_t seed = 43);

/// Zipf keys whose hot set drifts: every `drift_period` draws the rank->
/// key mapping rotates by `domain/8`, so yesterday's hot records go cold.
/// The workload that separates adaptive from one-shot hot/cold
/// classification.
std::vector<uint64_t> DriftingZipfKeys(uint64_t count, uint64_t domain,
                                       double theta, uint64_t drift_period,
                                       uint64_t seed = 42);

/// A value array where `selectivity` of the entries fall inside
/// [0, threshold) -- used by the selection benches to dial selectivity
/// exactly.
std::vector<int64_t> MakeSelectionInput(uint64_t count, double selectivity,
                                        int64_t threshold, int64_t max_value,
                                        uint64_t seed = 44);

}  // namespace hwstar::workload

#endif  // HWSTAR_WORKLOAD_DISTRIBUTIONS_H_
