#include "hwstar/workload/ycsb_like.h"

#include "hwstar/common/macros.h"

namespace hwstar::workload {

YcsbStream::YcsbStream(const YcsbConfig& config)
    : config_(config),
      rng_(config.seed),
      zipf_(config.record_count,
            config.zipf_theta < 0.0 ? 0.0 : config.zipf_theta,
            config.seed + 1),
      uniform_(config.zipf_theta <= 0.0) {
  HWSTAR_CHECK(config.record_count > 0);
  HWSTAR_CHECK(config.read_fraction >= 0.0 && config.read_fraction <= 1.0);
}

size_t YcsbStream::NextChunk(YcsbRequest* out, size_t max_ops) {
  size_t produced = 0;
  while (produced < max_ops && emitted_ < config_.operation_count) {
    YcsbRequest& req = out[produced++];
    req.op = rng_.NextDouble() < config_.read_fraction ? YcsbOp::kRead
                                                       : YcsbOp::kUpdate;
    req.key =
        uniform_ ? rng_.NextBounded(config_.record_count) : zipf_.Next();
    ++emitted_;
  }
  return produced;
}

std::vector<YcsbRequest> MakeYcsbWorkload(const YcsbConfig& config) {
  std::vector<YcsbRequest> ops(config.operation_count);
  YcsbStream stream(config);
  const size_t n = stream.NextChunk(ops.data(), ops.size());
  ops.resize(n);
  return ops;
}

}  // namespace hwstar::workload
