#include "hwstar/workload/ycsb_like.h"

#include "hwstar/common/macros.h"
#include "hwstar/common/random.h"
#include "hwstar/workload/distributions.h"

namespace hwstar::workload {

std::vector<YcsbRequest> MakeYcsbWorkload(const YcsbConfig& config) {
  HWSTAR_CHECK(config.record_count > 0);
  HWSTAR_CHECK(config.read_fraction >= 0.0 && config.read_fraction <= 1.0);
  std::vector<YcsbRequest> ops;
  ops.reserve(config.operation_count);
  Xoshiro256 rng(config.seed);
  ZipfGenerator zipf(config.record_count,
                     config.zipf_theta < 0.0 ? 0.0 : config.zipf_theta,
                     config.seed + 1);
  const bool uniform = config.zipf_theta <= 0.0;
  for (uint64_t i = 0; i < config.operation_count; ++i) {
    YcsbRequest req;
    req.op = rng.NextDouble() < config.read_fraction ? YcsbOp::kRead
                                                     : YcsbOp::kUpdate;
    req.key = uniform ? rng.NextBounded(config.record_count) : zipf.Next();
    ops.push_back(req);
  }
  return ops;
}

}  // namespace hwstar::workload
