#ifndef HWSTAR_WORKLOAD_YCSB_LIKE_H_
#define HWSTAR_WORKLOAD_YCSB_LIKE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hwstar/common/random.h"
#include "hwstar/workload/distributions.h"

namespace hwstar::workload {

/// YCSB-shaped key-value operation stream: a read/update mix over a keyed
/// record space with Zipf access skew. Drives the index (B+-tree) and
/// interference experiments with OLTP-like point accesses -- the access
/// pattern on the opposite end of the spectrum from analytic scans.
enum class YcsbOp : uint8_t { kRead = 0, kUpdate = 1 };

struct YcsbRequest {
  YcsbOp op;
  uint64_t key;
};

struct YcsbConfig {
  uint64_t record_count = 1 << 20;
  uint64_t operation_count = 1 << 20;
  double read_fraction = 0.95;  ///< workload B default
  double zipf_theta = 0.6;      ///< 0 = uniform
  uint64_t seed = 99;
};

/// Chunked, seed-reproducible pull over the YCSB operation stream: the
/// generator's state advances one operation at a time, so the sequence a
/// consumer sees is a pure function of the config — independent of how
/// the pulls are chunked. stream::Source adapters pull micro-batches from
/// this; MakeYcsbWorkload below is one full-stream pull.
class YcsbStream {
 public:
  explicit YcsbStream(const YcsbConfig& config);

  /// Fills out[0..max_ops) with the next operations; returns how many
  /// were produced (< max_ops only at end of stream, 0 once
  /// operation_count requests have been emitted).
  size_t NextChunk(YcsbRequest* out, size_t max_ops);

  /// Operations emitted so far.
  uint64_t emitted() const { return emitted_; }

  const YcsbConfig& config() const { return config_; }

 private:
  YcsbConfig config_;
  Xoshiro256 rng_;
  ZipfGenerator zipf_;
  bool uniform_;
  uint64_t emitted_ = 0;
};

/// Generates the whole operation stream at once (a single-chunk pull of
/// YcsbStream; benches that want the materialized vector keep using this).
std::vector<YcsbRequest> MakeYcsbWorkload(const YcsbConfig& config);

}  // namespace hwstar::workload

#endif  // HWSTAR_WORKLOAD_YCSB_LIKE_H_
