#ifndef HWSTAR_WORKLOAD_YCSB_LIKE_H_
#define HWSTAR_WORKLOAD_YCSB_LIKE_H_

#include <cstdint>
#include <vector>

namespace hwstar::workload {

/// YCSB-shaped key-value operation stream: a read/update mix over a keyed
/// record space with Zipf access skew. Drives the index (B+-tree) and
/// interference experiments with OLTP-like point accesses -- the access
/// pattern on the opposite end of the spectrum from analytic scans.
enum class YcsbOp : uint8_t { kRead = 0, kUpdate = 1 };

struct YcsbRequest {
  YcsbOp op;
  uint64_t key;
};

struct YcsbConfig {
  uint64_t record_count = 1 << 20;
  uint64_t operation_count = 1 << 20;
  double read_fraction = 0.95;  ///< workload B default
  double zipf_theta = 0.6;      ///< 0 = uniform
  uint64_t seed = 99;
};

/// Generates the operation stream.
std::vector<YcsbRequest> MakeYcsbWorkload(const YcsbConfig& config);

}  // namespace hwstar::workload

#endif  // HWSTAR_WORKLOAD_YCSB_LIKE_H_
