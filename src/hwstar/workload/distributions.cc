#include "hwstar/workload/distributions.h"

#include <cmath>

#include "hwstar/common/macros.h"

namespace hwstar::workload {

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  HWSTAR_CHECK(n > 0);
  HWSTAR_CHECK(theta >= 0.0 && theta < 1.0);
  alpha_ = 1.0 / (1.0 - theta_);
  zetan_ = zeta(n_, theta_);
  const double zeta2 = zeta(2, theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
}

double ZipfGenerator::zeta(uint64_t n, double theta) {
  // Direct summation; O(n) once per construction. For the large domains
  // used in benches, sample the tail: sum exactly up to 10^6 and
  // extrapolate with the integral approximation.
  const uint64_t kExact = 1000000;
  double sum = 0.0;
  const uint64_t limit = n < kExact ? n : kExact;
  for (uint64_t i = 1; i <= limit; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  if (n > kExact) {
    // integral of x^-theta from kExact to n
    const double a = static_cast<double>(kExact);
    const double b = static_cast<double>(n);
    sum += (std::pow(b, 1.0 - theta) - std::pow(a, 1.0 - theta)) /
           (1.0 - theta);
  }
  return sum;
}

uint64_t ZipfGenerator::Next() {
  const double u = rng_.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const double v =
      static_cast<double>(n_) *
      std::pow(eta_ * u - eta_ + 1.0, alpha_);
  uint64_t rank = static_cast<uint64_t>(v);
  return rank >= n_ ? n_ - 1 : rank;
}

std::vector<uint64_t> UniformKeys(uint64_t count, uint64_t domain,
                                  uint64_t seed) {
  HWSTAR_CHECK(domain > 0);
  Xoshiro256 rng(seed);
  std::vector<uint64_t> keys(count);
  for (auto& k : keys) k = rng.NextBounded(domain);
  return keys;
}

std::vector<uint64_t> ZipfKeys(uint64_t count, uint64_t domain, double theta,
                               uint64_t seed) {
  if (theta <= 0.0) return UniformKeys(count, domain, seed);
  ZipfGenerator gen(domain, theta, seed);
  std::vector<uint64_t> keys(count);
  for (auto& k : keys) k = gen.Next();
  return keys;
}

std::vector<uint64_t> ShuffledDenseKeys(uint64_t count, uint64_t seed) {
  std::vector<uint64_t> keys(count);
  for (uint64_t i = 0; i < count; ++i) keys[i] = i;
  Xoshiro256 rng(seed);
  // Fisher-Yates.
  for (uint64_t i = count; i > 1; --i) {
    const uint64_t j = rng.NextBounded(i);
    std::swap(keys[i - 1], keys[j]);
  }
  return keys;
}

ops::Relation MakeBuildRelation(uint64_t count, uint64_t seed) {
  ops::Relation rel;
  rel.keys = ShuffledDenseKeys(count, seed);
  rel.payloads.resize(count);
  for (uint64_t i = 0; i < count; ++i) rel.payloads[i] = i;
  return rel;
}

ops::Relation MakeProbeRelation(uint64_t count, uint64_t domain, double theta,
                                uint64_t seed) {
  ops::Relation rel;
  rel.keys = ZipfKeys(count, domain, theta, seed);
  rel.payloads.resize(count);
  for (uint64_t i = 0; i < count; ++i) rel.payloads[i] = i;
  return rel;
}

std::vector<uint64_t> DriftingZipfKeys(uint64_t count, uint64_t domain,
                                       double theta, uint64_t drift_period,
                                       uint64_t seed) {
  HWSTAR_CHECK(domain > 0 && drift_period > 0);
  ZipfGenerator gen(domain, theta <= 0.0 ? 1e-9 : theta, seed);
  std::vector<uint64_t> keys(count);
  const uint64_t shift = domain / 8 == 0 ? 1 : domain / 8;
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t phase = i / drift_period;
    keys[i] = (gen.Next() + phase * shift) % domain;
  }
  return keys;
}

std::vector<int64_t> MakeSelectionInput(uint64_t count, double selectivity,
                                        int64_t threshold, int64_t max_value,
                                        uint64_t seed) {
  HWSTAR_CHECK(selectivity >= 0.0 && selectivity <= 1.0);
  HWSTAR_CHECK(threshold > 0 && threshold < max_value);
  Xoshiro256 rng(seed);
  std::vector<int64_t> values(count);
  for (auto& v : values) {
    if (rng.NextDouble() < selectivity) {
      v = static_cast<int64_t>(rng.NextBounded(static_cast<uint64_t>(threshold)));
    } else {
      v = threshold + static_cast<int64_t>(rng.NextBounded(
                          static_cast<uint64_t>(max_value - threshold)));
    }
  }
  return values;
}

}  // namespace hwstar::workload
