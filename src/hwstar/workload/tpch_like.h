#ifndef HWSTAR_WORKLOAD_TPCH_LIKE_H_
#define HWSTAR_WORKLOAD_TPCH_LIKE_H_

#include <cstdint>
#include <memory>

#include "hwstar/storage/table.h"

namespace hwstar::workload {

/// A TPC-H-shaped data generator (lineitem/orders subset). Monetary values
/// are fixed-point cents (int64); dates are days since epoch (int64);
/// flags are small int64 domains -- matching the engine's int64 value
/// domain. Shapes and domains follow the TPC-H spec closely enough that
/// the standard selectivities hold (e.g., the Q6 predicate selects ~2% per
/// year of date range at the spec discount/quantity bounds).
struct TpchConfig {
  /// Scale factor; SF 1 would be 6M lineitem rows. Benches use fractions.
  double scale_factor = 0.1;
  uint64_t seed = 7;
};

/// lineitem columns (all int64):
///   0 l_orderkey, 1 l_partkey, 2 l_quantity (1..50),
///   3 l_extendedprice (cents), 4 l_discount (percent 0..10),
///   5 l_tax (percent 0..8), 6 l_shipdate (days since 1992-01-01, 0..2555),
///   7 l_returnflag (0..2)
std::unique_ptr<storage::Table> MakeLineitem(const TpchConfig& config);

/// orders columns (all int64):
///   0 o_orderkey, 1 o_custkey, 2 o_totalprice (cents),
///   3 o_orderdate (days), 4 o_orderpriority (0..4)
std::unique_ptr<storage::Table> MakeOrders(const TpchConfig& config);

/// Row count of lineitem at the given scale.
uint64_t LineitemRows(const TpchConfig& config);
/// Row count of orders at the given scale.
uint64_t OrdersRows(const TpchConfig& config);

}  // namespace hwstar::workload

#endif  // HWSTAR_WORKLOAD_TPCH_LIKE_H_
