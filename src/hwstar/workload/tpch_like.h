#ifndef HWSTAR_WORKLOAD_TPCH_LIKE_H_
#define HWSTAR_WORKLOAD_TPCH_LIKE_H_

#include <cstdint>
#include <memory>

#include "hwstar/common/random.h"
#include "hwstar/storage/table.h"

namespace hwstar::workload {

/// A TPC-H-shaped data generator (lineitem/orders subset). Monetary values
/// are fixed-point cents (int64); dates are days since epoch (int64);
/// flags are small int64 domains -- matching the engine's int64 value
/// domain. Shapes and domains follow the TPC-H spec closely enough that
/// the standard selectivities hold (e.g., the Q6 predicate selects ~2% per
/// year of date range at the spec discount/quantity bounds).
struct TpchConfig {
  /// Scale factor; SF 1 would be 6M lineitem rows. Benches use fractions.
  double scale_factor = 0.1;
  uint64_t seed = 7;
};

/// One generated lineitem row, column order matching MakeLineitem.
struct LineitemRow {
  int64_t orderkey;
  int64_t partkey;
  int64_t quantity;       ///< 1..50
  int64_t extendedprice;  ///< cents
  int64_t discount;       ///< percent 0..10
  int64_t tax;            ///< percent 0..8
  int64_t shipdate;       ///< days since 1992-01-01, 0..2555
  int64_t returnflag;     ///< 0..2
};

/// Chunked, seed-reproducible pull over the lineitem generator: rows are
/// produced one at a time from sequential RNG state, so the row sequence
/// is a pure function of the config regardless of chunking. This is what
/// stream::Source adapters pull micro-batches from; MakeLineitem below is
/// one full-table pull into a Table (bit-identical to the rows this
/// stream yields).
class LineitemStream {
 public:
  explicit LineitemStream(const TpchConfig& config);

  /// Fills out[0..max_rows) with the next rows; returns how many were
  /// produced (0 once LineitemRows(config) rows have been emitted).
  size_t NextChunk(LineitemRow* out, size_t max_rows);

  /// Rows emitted so far.
  uint64_t emitted() const { return emitted_; }
  /// Rows the stream will emit in total.
  uint64_t total_rows() const { return total_rows_; }

 private:
  Xoshiro256 rng_;
  uint64_t total_rows_;
  uint64_t orders_;
  uint64_t emitted_ = 0;
};

/// lineitem columns (all int64):
///   0 l_orderkey, 1 l_partkey, 2 l_quantity (1..50),
///   3 l_extendedprice (cents), 4 l_discount (percent 0..10),
///   5 l_tax (percent 0..8), 6 l_shipdate (days since 1992-01-01, 0..2555),
///   7 l_returnflag (0..2)
std::unique_ptr<storage::Table> MakeLineitem(const TpchConfig& config);

/// orders columns (all int64):
///   0 o_orderkey, 1 o_custkey, 2 o_totalprice (cents),
///   3 o_orderdate (days), 4 o_orderpriority (0..4)
std::unique_ptr<storage::Table> MakeOrders(const TpchConfig& config);

/// Row count of lineitem at the given scale.
uint64_t LineitemRows(const TpchConfig& config);
/// Row count of orders at the given scale.
uint64_t OrdersRows(const TpchConfig& config);

}  // namespace hwstar::workload

#endif  // HWSTAR_WORKLOAD_TPCH_LIKE_H_
