#include "hwstar/workload/tpch_like.h"

#include <iterator>

#include "hwstar/common/macros.h"
#include "hwstar/common/random.h"

namespace hwstar::workload {

using storage::Field;
using storage::Schema;
using storage::Table;
using storage::TypeId;

uint64_t LineitemRows(const TpchConfig& config) {
  return static_cast<uint64_t>(6000000.0 * config.scale_factor);
}

uint64_t OrdersRows(const TpchConfig& config) {
  return static_cast<uint64_t>(1500000.0 * config.scale_factor);
}

LineitemStream::LineitemStream(const TpchConfig& config)
    : rng_(config.seed),
      total_rows_(LineitemRows(config)),
      orders_(OrdersRows(config)) {}

size_t LineitemStream::NextChunk(LineitemRow* out, size_t max_rows) {
  size_t produced = 0;
  while (produced < max_rows && emitted_ < total_rows_) {
    LineitemRow& row = out[produced++];
    // ~4 lineitems per order on average; keep orderkeys clustered the way
    // dbgen does (sequential with gaps).
    row.orderkey =
        static_cast<int64_t>(rng_.NextBounded(orders_ == 0 ? 1 : orders_)) + 1;
    row.partkey = static_cast<int64_t>(rng_.NextBounded(200000)) + 1;
    row.quantity = static_cast<int64_t>(rng_.NextBounded(50)) + 1;
    // extendedprice ~ quantity * part price (90000..200000 cents).
    const int64_t unit_price =
        90000 + static_cast<int64_t>(rng_.NextBounded(110001));
    row.extendedprice = row.quantity * unit_price;
    row.discount = static_cast<int64_t>(rng_.NextBounded(11));
    row.tax = static_cast<int64_t>(rng_.NextBounded(9));
    row.shipdate = static_cast<int64_t>(rng_.NextBounded(2556));
    row.returnflag = static_cast<int64_t>(rng_.NextBounded(3));
    ++emitted_;
  }
  return produced;
}

std::unique_ptr<Table> MakeLineitem(const TpchConfig& config) {
  Schema schema({
      {"l_orderkey", TypeId::kInt64},
      {"l_partkey", TypeId::kInt64},
      {"l_quantity", TypeId::kInt64},
      {"l_extendedprice", TypeId::kInt64},
      {"l_discount", TypeId::kInt64},
      {"l_tax", TypeId::kInt64},
      {"l_shipdate", TypeId::kInt64},
      {"l_returnflag", TypeId::kInt64},
  });
  auto table = std::make_unique<Table>(schema);
  const uint64_t rows = LineitemRows(config);
  for (size_t c = 0; c < schema.num_fields(); ++c) {
    table->column(c).Reserve(rows);
  }
  LineitemStream stream(config);
  LineitemRow chunk[4096];
  size_t n;
  while ((n = stream.NextChunk(chunk, std::size(chunk))) > 0) {
    for (size_t i = 0; i < n; ++i) {
      const LineitemRow& row = chunk[i];
      table->column(0).AppendInt64(row.orderkey);
      table->column(1).AppendInt64(row.partkey);
      table->column(2).AppendInt64(row.quantity);
      table->column(3).AppendInt64(row.extendedprice);
      table->column(4).AppendInt64(row.discount);
      table->column(5).AppendInt64(row.tax);
      table->column(6).AppendInt64(row.shipdate);
      table->column(7).AppendInt64(row.returnflag);
    }
  }
  HWSTAR_CHECK(table->SetRowCount(rows).ok());
  return table;
}

std::unique_ptr<Table> MakeOrders(const TpchConfig& config) {
  Schema schema({
      {"o_orderkey", TypeId::kInt64},
      {"o_custkey", TypeId::kInt64},
      {"o_totalprice", TypeId::kInt64},
      {"o_orderdate", TypeId::kInt64},
      {"o_orderpriority", TypeId::kInt64},
  });
  auto table = std::make_unique<Table>(schema);
  const uint64_t rows = OrdersRows(config);
  Xoshiro256 rng(config.seed + 1);
  for (size_t c = 0; c < schema.num_fields(); ++c) {
    table->column(c).Reserve(rows);
  }
  for (uint64_t i = 0; i < rows; ++i) {
    table->column(0).AppendInt64(static_cast<int64_t>(i) + 1);
    table->column(1).AppendInt64(
        static_cast<int64_t>(rng.NextBounded(150000)) + 1);
    table->column(2).AppendInt64(
        100000 + static_cast<int64_t>(rng.NextBounded(50000000)));
    table->column(3).AppendInt64(static_cast<int64_t>(rng.NextBounded(2556)));
    table->column(4).AppendInt64(static_cast<int64_t>(rng.NextBounded(5)));
  }
  HWSTAR_CHECK(table->SetRowCount(rows).ok());
  return table;
}

}  // namespace hwstar::workload
