#include "hwstar/workload/tpcc_like.h"

#include "hwstar/common/macros.h"

namespace hwstar::workload {

namespace {

constexpr uint32_t kWarehouseShift = 52;
constexpr uint32_t kTableShift = 48;
constexpr uint32_t kDistrictShift = 40;
constexpr uint64_t kIdMask = (uint64_t{1} << kDistrictShift) - 1;

uint64_t PackKey(TpccTable table, uint32_t w, uint32_t d, uint64_t id) {
  return (static_cast<uint64_t>(w) << kWarehouseShift) |
         (static_cast<uint64_t>(table) << kTableShift) |
         (static_cast<uint64_t>(d) << kDistrictShift) | (id & kIdMask);
}

constexpr uint64_t kInitialBalance = 1000;

}  // namespace

uint64_t TpccWarehouseKey(uint32_t w) {
  return PackKey(TpccTable::kWarehouse, w, 0, 0);
}

uint64_t TpccDistrictKey(uint32_t w, uint32_t d) {
  return PackKey(TpccTable::kDistrict, w, d, 0);
}

uint64_t TpccCustomerKey(uint32_t w, uint32_t d, uint64_t c) {
  return PackKey(TpccTable::kCustomer, w, d, c);
}

uint64_t TpccOrderKey(uint32_t w, uint32_t d, uint64_t o) {
  return PackKey(TpccTable::kOrder, w, d, o);
}

uint64_t TpccOrderLineKey(uint32_t w, uint32_t d, uint64_t o,
                          uint32_t line) {
  return PackKey(TpccTable::kOrderLine, w, d, (o << 8) | line);
}

std::vector<std::pair<uint64_t, uint64_t>> MakeTpccLoad(
    const TpccConfig& config) {
  std::vector<std::pair<uint64_t, uint64_t>> rows;
  rows.reserve(config.warehouses *
               (1 + config.districts_per_warehouse *
                        (1 + config.customers_per_district)));
  for (uint32_t w = 0; w < config.warehouses; ++w) {
    rows.emplace_back(TpccWarehouseKey(w), kInitialBalance);
    for (uint32_t d = 0; d < config.districts_per_warehouse; ++d) {
      rows.emplace_back(TpccDistrictKey(w, d), kInitialBalance);
      for (uint64_t c = 0; c < config.customers_per_district; ++c) {
        rows.emplace_back(TpccCustomerKey(w, d, c), kInitialBalance);
      }
    }
  }
  return rows;
}

TpccStream::TpccStream(const TpccConfig& config)
    : config_(config),
      rng_(config.seed + config.actor),
      warehouse_zipf_(config.warehouses,
                      config.zipf_theta < 0.0 ? 0.0 : config.zipf_theta,
                      config.seed + config.actor + 1),
      customer_zipf_(config.customers_per_district,
                     config.zipf_theta < 0.0 ? 0.0 : config.zipf_theta,
                     config.seed + config.actor + 2),
      uniform_(config.zipf_theta <= 0.0),
      districts_(static_cast<size_t>(config.warehouses) *
                 config.districts_per_warehouse) {
  HWSTAR_CHECK(config.warehouses >= 1 && config.warehouses <= (1u << 12));
  HWSTAR_CHECK(config.districts_per_warehouse >= 1 &&
               config.districts_per_warehouse <= 256);
  HWSTAR_CHECK(config.customers_per_district >= 1);
  HWSTAR_CHECK(config.lines_per_order >= 1 && config.lines_per_order <= 255);
  HWSTAR_CHECK(config.actors >= 1 && config.actor < config.actors);
  HWSTAR_CHECK(config.new_order_fraction >= 0.0 &&
               config.payment_fraction >= 0.0 &&
               config.new_order_fraction + config.payment_fraction <= 1.0);
}

TpccTxn TpccStream::MakeNewOrder(uint32_t w, uint32_t d) {
  DistrictState& ds = district(w, d);
  const uint64_t c = uniform_
                         ? rng_.NextBounded(config_.customers_per_district)
                         : customer_zipf_.Next();
  // Stride the order sequence by actor so concurrent streams driving one
  // store never insert the same order key.
  const uint64_t o = ds.next_order++ * config_.actors + config_.actor;

  TpccTxn txn;
  txn.kind = TpccTxnKind::kNewOrder;
  txn.ops.reserve(3 + 1 + config_.lines_per_order);
  txn.ops.push_back({TpccOpKind::kGet, TpccWarehouseKey(w)});     // tax
  txn.ops.push_back({TpccOpKind::kGet, TpccDistrictKey(w, d)});   // tax
  txn.ops.push_back({TpccOpKind::kGet, TpccCustomerKey(w, d, c)});
  txn.ops.push_back({TpccOpKind::kPut, TpccOrderKey(w, d, o), c});
  for (uint32_t line = 0; line < config_.lines_per_order; ++line) {
    const uint64_t amount = 1 + rng_.NextBounded(10'000);
    txn.ops.push_back(
        {TpccOpKind::kPut, TpccOrderLineKey(w, d, o, line), amount});
  }

  ds.pending.emplace_back(o, c);
  if (ds.pending.size() > config_.max_pending_per_district) {
    ds.pending.pop_front();  // forgotten, never delivered
  }
  return txn;
}

TpccTxn TpccStream::MakePayment(uint32_t w, uint32_t d) {
  const uint64_t c = uniform_
                         ? rng_.NextBounded(config_.customers_per_district)
                         : customer_zipf_.Next();
  const uint64_t amount = 1 + rng_.NextBounded(5'000);

  TpccTxn txn;
  txn.kind = TpccTxnKind::kPayment;
  // Three read-modify-writes; the warehouse and district YTD keys are the
  // workload's contention points under skew.
  txn.ops.push_back({TpccOpKind::kAdd, TpccWarehouseKey(w), amount});
  txn.ops.push_back({TpccOpKind::kAdd, TpccDistrictKey(w, d), amount});
  txn.ops.push_back({TpccOpKind::kAdd, TpccCustomerKey(w, d, c), amount});
  return txn;
}

TpccTxn TpccStream::Next() {
  ++emitted_;
  const uint32_t w = static_cast<uint32_t>(
      uniform_ ? rng_.NextBounded(config_.warehouses)
               : warehouse_zipf_.Next());
  const uint32_t d = static_cast<uint32_t>(
      rng_.NextBounded(config_.districts_per_warehouse));
  const double roll = rng_.NextDouble();

  if (roll < config_.new_order_fraction) return MakeNewOrder(w, d);
  if (roll < config_.new_order_fraction + config_.payment_fraction ||
      district(w, d).pending.empty()) {
    return MakePayment(w, d);
  }

  DistrictState& ds = district(w, d);
  const auto [o, c] = ds.pending.front();
  ds.pending.pop_front();

  TpccTxn txn;
  txn.kind = TpccTxnKind::kDelivery;
  txn.ops.reserve(2 + config_.lines_per_order + 1);
  txn.ops.push_back({TpccOpKind::kGet, TpccOrderKey(w, d, o)});
  txn.ops.push_back({TpccOpKind::kDelete, TpccOrderKey(w, d, o)});
  for (uint32_t line = 0; line < config_.lines_per_order; ++line) {
    txn.ops.push_back(
        {TpccOpKind::kDelete, TpccOrderLineKey(w, d, o, line)});
  }
  const uint64_t amount = 1 + rng_.NextBounded(5'000);
  txn.ops.push_back({TpccOpKind::kAdd, TpccCustomerKey(w, d, c), amount});
  return txn;
}

void TpccStream::RequeueDelivery(const TpccTxn& txn) {
  if (txn.kind != TpccTxnKind::kDelivery) return;
  // First op reads the order key; last op credits the customer key.
  const uint64_t order_key = txn.ops.front().key;
  const uint64_t customer_key = txn.ops.back().key;
  const uint32_t w = static_cast<uint32_t>(order_key >> kWarehouseShift);
  const uint32_t d =
      static_cast<uint32_t>((order_key >> kDistrictShift) & 0xff);
  const uint64_t o = order_key & kIdMask;
  const uint64_t c = customer_key & kIdMask;
  // Front, not back: keep delivery oldest-first.
  district(w, d).pending.emplace_front(o, c);
}

}  // namespace hwstar::workload
