#ifndef HWSTAR_WORKLOAD_TPCC_LIKE_H_
#define HWSTAR_WORKLOAD_TPCC_LIKE_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "hwstar/common/random.h"
#include "hwstar/workload/distributions.h"

namespace hwstar::workload {

/// TPC-C-shaped multi-key transaction stream over the u64 keyspace: a
/// warehouse/district/customer/order schema packed into 64-bit keys, and a
/// new-order / payment / delivery mix with configurable warehouse skew.
/// This is the write-heavy, contention-shaped counterpart to the YCSB
/// stream: every transaction touches a handful of keys across tables (and
/// therefore across kv shards and WAL shards), which is exactly what the
/// txn commit protocol has to get right.
///
/// Key layout (64 bits, warehouse in the top bits so range sharding by
/// high bits partitions by warehouse, the canonical TPC-C split):
///
///   [warehouse:12][table:4][district:8][id:40]
///
/// For order lines the 40-bit id subdivides as [order:32][line:8].
enum class TpccTable : uint8_t {
  kWarehouse = 0,  ///< id = 0; value = warehouse YTD balance
  kDistrict = 1,   ///< id = 0; value = district YTD balance
  kCustomer = 2,   ///< id = customer; value = customer balance
  kOrder = 3,      ///< id = order; value = ordering customer id
  kOrderLine = 4,  ///< id = order<<8 | line; value = item amount
};

uint64_t TpccWarehouseKey(uint32_t w);
uint64_t TpccDistrictKey(uint32_t w, uint32_t d);
uint64_t TpccCustomerKey(uint32_t w, uint32_t d, uint64_t c);
uint64_t TpccOrderKey(uint32_t w, uint32_t d, uint64_t o);
uint64_t TpccOrderLineKey(uint32_t w, uint32_t d, uint64_t o, uint32_t line);

/// Mirrors svc::TxnOp::Kind so the workload layer stays independent of the
/// service layer; drivers translate one-to-one when building svc requests.
enum class TpccOpKind : uint8_t {
  kGet = 0,
  kPut = 1,
  kAdd = 2,  ///< read-modify-write: value += operand, reports old value
  kDelete = 3,
};

struct TpccOp {
  TpccOpKind kind;
  uint64_t key;
  uint64_t value = 0;  ///< put value / add operand
};

enum class TpccTxnKind : uint8_t {
  kNewOrder = 0,  ///< insert order + lines, bump district order count
  kPayment = 1,   ///< credit customer, warehouse and district YTD
  kDelivery = 2,  ///< pop oldest undelivered order, delete it, pay customer
};

struct TpccTxn {
  TpccTxnKind kind;
  std::vector<TpccOp> ops;
};

struct TpccConfig {
  uint32_t warehouses = 4;
  uint32_t districts_per_warehouse = 8;
  uint64_t customers_per_district = 1024;
  /// Transaction mix; delivery gets the remainder. The classic mix is
  /// roughly 45/43/4 with stock-level and order-status making up the
  /// rest; we fold those read-only shares into payment.
  double new_order_fraction = 0.45;
  double payment_fraction = 0.43;
  /// Zipf skew across warehouses AND across customers within a district
  /// (0 = uniform). Raising this concentrates payment RMWs on a few
  /// warehouse/district YTD keys — the abort-rate dial.
  double zipf_theta = 0.2;
  /// Order lines per new-order (1..15 in the spec; fixed here so the
  /// write-set size is a config knob, not noise).
  uint32_t lines_per_order = 5;
  /// Undelivered orders remembered per district; the oldest is forgotten
  /// (never delivered) beyond this, bounding generator memory.
  size_t max_pending_per_district = 1 << 14;
  /// This stream's slot in a gang of concurrent generators: order ids are
  /// strided (o = n * actors + actor) so streams driving one store never
  /// collide on order keys. Per-actor seeds derive from seed + actor.
  uint32_t actor = 0;
  uint32_t actors = 1;
  uint64_t seed = 7;
};

/// Initial database population: warehouse/district/customer rows with
/// starting balances (orders start empty; delivery warms up as new-orders
/// commit). Load these through plain puts before starting the mix.
std::vector<std::pair<uint64_t, uint64_t>> MakeTpccLoad(
    const TpccConfig& config);

/// Pull-based transaction generator. Stateful: tracks per-district
/// next-order-id counters and pending (undelivered) order queues on the
/// client side, so delivery transactions delete orders that really exist.
/// Deterministic for a given config. Not thread-safe — give each driver
/// thread its own stream with a distinct `actor`.
class TpccStream {
 public:
  explicit TpccStream(const TpccConfig& config);

  /// Produces the next transaction. A delivery drawn while no order is
  /// pending in the chosen district degrades to a payment (reported in
  /// stats as payment), so every emitted txn is executable.
  TpccTxn Next();

  /// Call after a delivery txn COMMITS; re-queues nothing. Call after it
  /// ABORTS to put the popped order back so a later delivery retries it.
  void RequeueDelivery(const TpccTxn& txn);

  uint64_t emitted() const { return emitted_; }
  const TpccConfig& config() const { return config_; }

 private:
  struct DistrictState {
    uint64_t next_order = 0;  ///< pre-stride order sequence number
    std::deque<std::pair<uint64_t, uint64_t>> pending;  ///< (order, customer)
  };

  DistrictState& district(uint32_t w, uint32_t d) {
    return districts_[static_cast<size_t>(w) *
                          config_.districts_per_warehouse +
                      d];
  }

  TpccTxn MakeNewOrder(uint32_t w, uint32_t d);
  TpccTxn MakePayment(uint32_t w, uint32_t d);

  TpccConfig config_;
  Xoshiro256 rng_;
  ZipfGenerator warehouse_zipf_;
  ZipfGenerator customer_zipf_;
  bool uniform_;
  std::vector<DistrictState> districts_;
  uint64_t emitted_ = 0;
};

}  // namespace hwstar::workload

#endif  // HWSTAR_WORKLOAD_TPCC_LIKE_H_
