#ifndef HWSTAR_TXN_TRANSACTION_H_
#define HWSTAR_TXN_TRANSACTION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "hwstar/common/status.h"
#include "hwstar/dur/durable_kv_store.h"
#include "hwstar/sync/optlock.h"

namespace hwstar::txn {

/// Tuning for a TxnManager.
struct TxnOptions {
  /// Validation-lock stripes (power of two). Each key hashes to one
  /// OptLock; coarser striping only raises false conflicts (aborts),
  /// never misses a real one.
  uint32_t lock_stripes = 1u << 16;
  /// Optimistic-read attempts per Get before the transaction dooms
  /// itself rather than spin on a hot stripe.
  uint32_t get_retry_limit = 64;
  /// TryWriteLock attempts per stripe at commit before aborting; bounded
  /// so a committer convoying on a durability wait aborts its rivals
  /// instead of stalling them.
  uint32_t lock_spin_limit = 128;
};

/// Why transactions aborted (and how many committed) — the abort-rate
/// numerator bench_e21_tpcc reports.
struct TxnStats {
  uint64_t begun = 0;
  uint64_t committed = 0;
  uint64_t aborted_lock = 0;        ///< could not lock a write-set stripe
  uint64_t aborted_validation = 0;  ///< a read-set version moved
  uint64_t aborted_doomed = 0;      ///< inconsistent read seen before commit

  uint64_t aborted() const {
    return aborted_lock + aborted_validation + aborted_doomed;
  }
};

class Transaction;

/// STO/Silo-style optimistic concurrency control over a DurableKvStore.
///
/// Writes between transactions are mediated by a striped table of
/// OptLocks (sync/optlock.h): a transactional read records the stripe
/// version observed around a latch-free KvStore::Get; Commit() locks the
/// write-set's stripes in ascending stripe order (canonical, so two
/// committers can't deadlock), validates every recorded read version,
/// installs the write-set through DurableKvStore::CommitTxn (atomic WAL
/// framing — recovery replays whole transactions or nothing), bumps the
/// stripe versions, and releases. Stripe locks are held until the commit
/// record is durable: a reader that observes a committed value can only
/// commit after the writer it depends on is on disk, so durability is
/// never acknowledged out of dependency order across log shards.
///
/// Isolation contract: serializable AMONG transactions. Plain
/// DurableKvStore::Put/Delete bypass the stripe table — mixing them with
/// concurrent transactions on the same keys forfeits isolation (but never
/// crash atomicity or durability, which the WAL framing alone provides).
class TxnManager {
 public:
  explicit TxnManager(dur::DurableKvStore* db, TxnOptions options = {});

  TxnManager(const TxnManager&) = delete;
  TxnManager& operator=(const TxnManager&) = delete;

  /// Starts a transaction. The Transaction must not outlive the manager.
  Transaction Begin();

  /// Snapshot of commit/abort counters (racy reads, exact under quiesce).
  TxnStats stats() const;

  uint32_t StripeOf(uint64_t key) const;

  dur::DurableKvStore* db() { return db_; }
  const TxnOptions& options() const { return options_; }

 private:
  friend class Transaction;

  dur::DurableKvStore* db_;
  const TxnOptions options_;
  const uint32_t stripe_mask_;
  std::unique_ptr<sync::OptLock[]> stripes_;

  std::atomic<uint64_t> begun_{0};
  std::atomic<uint64_t> committed_{0};
  std::atomic<uint64_t> aborted_lock_{0};
  std::atomic<uint64_t> aborted_validation_{0};
  std::atomic<uint64_t> aborted_doomed_{0};
};

/// One optimistic transaction: reads validate against stripe versions,
/// writes buffer privately until Commit. Single-threaded use; cheap to
/// create per operation. After Commit or Abort returns, the object is
/// finished — Reset() rearms it for reuse (the retry loop every caller
/// of optimistic transactions needs anyway).
class Transaction {
 public:
  Transaction(Transaction&&) = default;
  Transaction& operator=(Transaction&&) = default;
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  /// Transactional read. Sees this transaction's own buffered writes
  /// first; otherwise performs an optimistic latch-free read validated
  /// against the key's stripe version. Returns kAborted when the
  /// transaction is doomed (an earlier read of the same stripe saw a
  /// different version — the snapshot is already inconsistent) — the
  /// caller should Abort and retry from scratch.
  Status Get(uint64_t key, uint64_t* value, bool* found);

  /// Buffers an upsert (applied only if Commit succeeds).
  void Put(uint64_t key, uint64_t value);

  /// Buffers a delete.
  void Delete(uint64_t key);

  /// Validates and installs. OK = committed and durable. kAborted = a
  /// conflict was detected and NOTHING was installed; retry is always
  /// safe. Other codes = I/O trouble from the WAL layer.
  /// `wal_wait_nanos`, when non-null, receives the group-commit wait.
  Status Commit(uint64_t* wal_wait_nanos = nullptr);

  /// Drops all buffered state without installing anything.
  void Abort();

  /// Rearms a finished transaction for reuse.
  void Reset();

  bool doomed() const { return doomed_; }
  size_t read_set_size() const { return read_set_.size(); }
  size_t write_set_size() const { return write_set_.size(); }

 private:
  friend class TxnManager;

  explicit Transaction(TxnManager* mgr) : mgr_(mgr) {}

  struct BufferedWrite {
    uint64_t value = 0;
    bool is_delete = false;
  };

  TxnManager* mgr_;
  bool doomed_ = false;
  bool finished_ = false;
  /// stripe index -> version observed by the first read through it.
  std::unordered_map<uint32_t, uint64_t> read_set_;
  /// key -> last buffered write (ordered: CommitTxn wants sorted keys).
  std::map<uint64_t, BufferedWrite> write_set_;
};

}  // namespace hwstar::txn

#endif  // HWSTAR_TXN_TRANSACTION_H_
