#include "hwstar/txn/transaction.h"

#include <algorithm>
#include <thread>

#include "hwstar/common/hash.h"
#include "hwstar/common/macros.h"

namespace hwstar::txn {

TxnManager::TxnManager(dur::DurableKvStore* db, TxnOptions options)
    : db_(db),
      options_(options),
      stripe_mask_(options.lock_stripes - 1),
      stripes_(new sync::OptLock[options.lock_stripes]) {
  HWSTAR_CHECK(options.lock_stripes >= 1 &&
               (options.lock_stripes & (options.lock_stripes - 1)) == 0);
}

Transaction TxnManager::Begin() {
  begun_.fetch_add(1, std::memory_order_relaxed);
  return Transaction(this);
}

uint32_t TxnManager::StripeOf(uint64_t key) const {
  // Mix64 decorrelates the range-sharded key space from the stripe table:
  // without it, TPC-C's hot district keys would all share low-entropy
  // high bits and collide into a handful of stripes.
  return static_cast<uint32_t>(Mix64(key)) & stripe_mask_;
}

TxnStats TxnManager::stats() const {
  TxnStats s;
  s.begun = begun_.load(std::memory_order_relaxed);
  s.committed = committed_.load(std::memory_order_relaxed);
  s.aborted_lock = aborted_lock_.load(std::memory_order_relaxed);
  s.aborted_validation = aborted_validation_.load(std::memory_order_relaxed);
  s.aborted_doomed = aborted_doomed_.load(std::memory_order_relaxed);
  return s;
}

Status Transaction::Get(uint64_t key, uint64_t* value, bool* found) {
  *found = false;
  if (doomed_) return Status::Aborted("transaction doomed");

  // Read-your-writes: buffered state wins over the store.
  auto wit = write_set_.find(key);
  if (wit != write_set_.end()) {
    if (!wit->second.is_delete) {
      *value = wit->second.value;
      *found = true;
    }
    return Status::OK();
  }

  const uint32_t stripe = mgr_->StripeOf(key);
  sync::OptLock& lock = mgr_->stripes_[stripe];
  for (uint32_t attempt = 0; attempt < mgr_->options_.get_retry_limit;
       ++attempt) {
    // A held stripe usually means a committer is inside its durability
    // wait (microseconds, not nanoseconds) — yield instead of burning the
    // retry budget in a tight loop.
    if (attempt >= 4) std::this_thread::yield();
    bool need_restart = false;
    const uint64_t version = lock.ReadLockOrRestart(&need_restart);
    if (need_restart) continue;  // a committer holds the stripe; re-sample
    auto got = mgr_->db_->kv()->Get(key);
    lock.CheckOrRestart(version, &need_restart);
    if (need_restart) continue;  // a commit interleaved; value may be torn

    // The read is consistent at `version`. A second read through the same
    // stripe must see the SAME version, or the two reads straddle a
    // commit and no serial order can explain them — doom now rather than
    // let Commit install results computed from an inconsistent snapshot.
    auto [rit, inserted] = read_set_.try_emplace(stripe, version);
    if (!inserted && rit->second != version) {
      doomed_ = true;
      return Status::Aborted("inconsistent re-read of stripe");
    }
    if (got.ok()) {
      *value = got.value();
      *found = true;
    } else if (got.status().code() != StatusCode::kNotFound) {
      return got.status();
    }
    return Status::OK();
  }
  doomed_ = true;
  return Status::Aborted("stripe too contended to read");
}

void Transaction::Put(uint64_t key, uint64_t value) {
  write_set_[key] = BufferedWrite{value, false};
}

void Transaction::Delete(uint64_t key) {
  write_set_[key] = BufferedWrite{0, true};
}

Status Transaction::Commit(uint64_t* wal_wait_nanos) {
  if (wal_wait_nanos != nullptr) *wal_wait_nanos = 0;
  HWSTAR_CHECK(!finished_);
  finished_ = true;

  if (doomed_) {
    mgr_->aborted_doomed_.fetch_add(1, std::memory_order_relaxed);
    return Status::Aborted("transaction doomed before commit");
  }

  // Read-only fast path: no locks, no WAL — just prove every stripe read
  // through is still at its recorded version, i.e. the reads form a
  // consistent snapshot that is still current.
  if (write_set_.empty()) {
    for (const auto& [stripe, version] : read_set_) {
      if (mgr_->stripes_[stripe].Version() != version) {
        mgr_->aborted_validation_.fetch_add(1, std::memory_order_relaxed);
        return Status::Aborted("read-set validation failed");
      }
    }
    mgr_->committed_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }

  // Phase 1: lock write-set stripes in ascending stripe order — the
  // canonical order makes lock-order cycles (deadlock) impossible between
  // committers. TryWriteLock is bounded: a stripe held across a rival's
  // durability wait is grounds to abort, not to convoy behind it.
  std::vector<uint32_t> lock_order;
  lock_order.reserve(write_set_.size());
  for (const auto& [key, op] : write_set_) {
    lock_order.push_back(mgr_->StripeOf(key));
  }
  std::sort(lock_order.begin(), lock_order.end());
  lock_order.erase(std::unique(lock_order.begin(), lock_order.end()),
                   lock_order.end());

  size_t acquired = 0;
  for (; acquired < lock_order.size(); ++acquired) {
    sync::OptLock& lock = mgr_->stripes_[lock_order[acquired]];
    bool locked = false;
    for (uint32_t spin = 0; spin < mgr_->options_.lock_spin_limit; ++spin) {
      if (lock.TryWriteLock()) {
        locked = true;
        break;
      }
      if (spin >= 4) std::this_thread::yield();
    }
    if (!locked) break;
  }
  if (acquired < lock_order.size()) {
    for (size_t i = 0; i < acquired; ++i) {
      mgr_->stripes_[lock_order[i]].WriteUnlockAborted();
    }
    mgr_->aborted_lock_.fetch_add(1, std::memory_order_relaxed);
    return Status::Aborted("write-set stripe lock timed out");
  }

  // Phase 2: validate the read set. A stripe we hold ourselves reads as
  // recorded + kLockedBit (our own lock acquisition); any other
  // difference means a rival committed in between and our reads are
  // stale.
  for (const auto& [stripe, version] : read_set_) {
    const uint64_t current = mgr_->stripes_[stripe].Version();
    const bool self_locked = std::binary_search(
        lock_order.begin(), lock_order.end(), stripe);
    const uint64_t expected =
        self_locked ? version + sync::OptLock::kLockedBit : version;
    if (current != expected) {
      for (uint32_t s : lock_order) {
        mgr_->stripes_[s].WriteUnlockAborted();
      }
      mgr_->aborted_validation_.fetch_add(1, std::memory_order_relaxed);
      return Status::Aborted("read-set validation failed");
    }
  }

  // Phase 3: install. Memory effects become visible here (under our
  // stripe locks), and the WAL framing makes the write-set atomic across
  // crash recovery.
  std::vector<dur::WriteOp> ops;
  ops.reserve(write_set_.size());
  for (const auto& [key, op] : write_set_) {
    ops.push_back(dur::WriteOp{key, op.value, op.is_delete});
  }
  const uint64_t tid = mgr_->db_->AllocateTxnId();
  const Status st =
      mgr_->db_->CommitTxn(tid, ops.data(), ops.size(), wal_wait_nanos);

  // Phase 4: bump-and-release AFTER the commit record is durable. Holding
  // the stripes through the durability wait means no rival can read our
  // values and reach its own durable commit before ours is on disk — the
  // cross-shard commit-dependency anomaly a per-shard WAL would otherwise
  // allow.
  for (uint32_t s : lock_order) {
    mgr_->stripes_[s].WriteUnlock();
  }
  if (!st.ok()) return st;  // WAL poisoned; effects applied, ack withheld
  mgr_->committed_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void Transaction::Abort() {
  finished_ = true;
  read_set_.clear();
  write_set_.clear();
}

void Transaction::Reset() {
  mgr_->begun_.fetch_add(1, std::memory_order_relaxed);
  doomed_ = false;
  finished_ = false;
  read_set_.clear();
  write_set_.clear();
}

}  // namespace hwstar::txn
