#ifndef HWSTAR_KV_TIERED_STORE_H_
#define HWSTAR_KV_TIERED_STORE_H_

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "hwstar/kv/kv_store.h"
#include "hwstar/ops/hot_cold.h"
#include "hwstar/sim/flash_model.h"

namespace hwstar::kv {

/// Residency policy of the memory tier.
enum class TierPolicy : uint8_t {
  kLru = 0,            ///< classic inline LRU (the oblivious baseline)
  kExpSmoothing = 1,   ///< offline exponential-smoothing classification
};

/// Tiering statistics.
struct TierStats {
  uint64_t accesses = 0;
  uint64_t memory_hits = 0;
  uint64_t flash_reads = 0;
  uint64_t flash_writes = 0;
  double total_latency_us = 0;

  double hit_rate() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(memory_hits) /
                               static_cast<double>(accesses);
  }
  double avg_latency_us() const {
    return accesses == 0 ? 0.0 : total_latency_us / static_cast<double>(accesses);
  }
};

/// A two-tier (DRAM + simulated flash) record store: data lives in the
/// in-memory KvStore; *placement* is simulated. Under kLru, residency
/// follows an inline LRU of `memory_capacity` records. Under
/// kExpSmoothing, accesses are logged (sampled) and Reclassify() installs
/// the estimator's top-K as the resident set -- the Levandoski et al.
/// design from the keynote's proceedings. Every access is charged DRAM or
/// flash latency through the FlashModel, so hit-rate differences become
/// latency and endurance differences.
class TieredKvStore {
 public:
  struct Options {
    uint64_t memory_capacity = 1 << 16;  ///< records resident in DRAM
    TierPolicy policy = TierPolicy::kLru;
    double es_alpha = 0.05;
    uint32_t es_sample_permille = 100;   ///< 10% access-log sampling
    KvOptions kv;
    sim::FlashModel::Params flash;
  };

  /// Builds the store with default options.
  TieredKvStore();
  explicit TieredKvStore(const Options& options);

  /// Loads a record (bulk load: no latency charged, placed cold).
  void Load(uint64_t key, uint64_t value);

  /// Reads `key` at logical time `now`; charges DRAM or flash latency.
  /// Returns NotFound for absent keys (still charged a flash read: the
  /// index says cold, the read must check).
  Result<uint64_t> Read(uint64_t key, uint64_t now);

  /// Writes `key` at logical time `now`; cold writes hit flash.
  void Write(uint64_t key, uint64_t value, uint64_t now);

  /// For kExpSmoothing: recomputes the resident set as the estimator's
  /// top-memory_capacity keys. No-op under kLru.
  void Reclassify(uint64_t now);

  /// Clears access/latency statistics (residency state is kept), so a
  /// steady-state window can be measured after warmup.
  void ResetStats();

  const TierStats& stats() const { return stats_; }
  const sim::FlashModel& flash() const { return flash_; }
  uint64_t resident_records() const;
  const Options& options() const { return options_; }

 private:
  bool IsResident(uint64_t key) const;
  /// Records the access with the policy machinery and returns whether the
  /// access was served from memory.
  bool TouchResidency(uint64_t key, uint64_t now);

  Options options_;
  KvStore data_;
  sim::FlashModel flash_;
  TierStats stats_;
  // kLru state.
  std::unique_ptr<ops::LruTracker> lru_;
  // kExpSmoothing state.
  std::unique_ptr<ops::ExponentialSmoothingEstimator> estimator_;
  std::unordered_set<uint64_t> resident_;
};

}  // namespace hwstar::kv

#endif  // HWSTAR_KV_TIERED_STORE_H_
