#include "hwstar/kv/tiered_store.h"

namespace hwstar::kv {

TieredKvStore::TieredKvStore() : TieredKvStore(Options{}) {}

TieredKvStore::TieredKvStore(const Options& options)
    : options_(options), data_(options.kv), flash_(options.flash) {
  if (options_.policy == TierPolicy::kLru) {
    lru_ = std::make_unique<ops::LruTracker>(options_.memory_capacity);
  } else {
    estimator_ = std::make_unique<ops::ExponentialSmoothingEstimator>(
        options_.es_alpha, options_.es_sample_permille);
  }
}

void TieredKvStore::Load(uint64_t key, uint64_t value) {
  data_.Put(key, value);
}

bool TieredKvStore::IsResident(uint64_t key) const {
  return resident_.count(key) != 0;
}

bool TieredKvStore::TouchResidency(uint64_t key, uint64_t now) {
  if (options_.policy == TierPolicy::kLru) {
    // Inline LRU: residency updates on every access.
    return lru_->Access(key);
  }
  estimator_->Record(key, now);
  return IsResident(key);
}

Result<uint64_t> TieredKvStore::Read(uint64_t key, uint64_t now) {
  ++stats_.accesses;
  const bool in_memory = TouchResidency(key, now);
  if (in_memory) {
    ++stats_.memory_hits;
    stats_.total_latency_us += flash_.DramAccess();
  } else {
    ++stats_.flash_reads;
    stats_.total_latency_us += flash_.Read();
  }
  return data_.Get(key);
}

void TieredKvStore::Write(uint64_t key, uint64_t value, uint64_t now) {
  ++stats_.accesses;
  const bool in_memory = TouchResidency(key, now);
  if (in_memory) {
    ++stats_.memory_hits;
    stats_.total_latency_us += flash_.DramAccess();
  } else {
    ++stats_.flash_writes;
    stats_.total_latency_us += flash_.Write();
  }
  data_.Put(key, value);
}

void TieredKvStore::Reclassify(uint64_t now) {
  if (options_.policy != TierPolicy::kExpSmoothing) return;
  auto hot = estimator_->TopK(options_.memory_capacity, now);
  resident_.clear();
  resident_.insert(hot.begin(), hot.end());
}

void TieredKvStore::ResetStats() {
  stats_ = TierStats{};
  flash_.ResetStats();
}

uint64_t TieredKvStore::resident_records() const {
  if (options_.policy == TierPolicy::kLru) {
    // LruTracker caps its own size at memory_capacity.
    return options_.memory_capacity;
  }
  return resident_.size();
}

}  // namespace hwstar::kv
