#include "hwstar/kv/kv_store.h"

#include "hwstar/common/bits.h"
#include "hwstar/common/macros.h"

namespace hwstar::kv {

KvStore::KvStore(KvOptions options) : options_(options) {
  HWSTAR_CHECK(bits::IsPowerOfTwo(options_.shards));
  const uint32_t shard_bits = bits::Log2Floor(options_.shards);
  shard_shift_ = 64 - shard_bits;
  shards_.reserve(options_.shards);
  for (uint32_t s = 0; s < options_.shards; ++s) {
    auto shard = std::make_unique<Shard>();
    if (options_.index == IndexKind::kBTree) {
      shard->btree = std::make_unique<ops::BPlusTree>(options_.btree_fanout);
    }
    shards_.push_back(std::move(shard));
  }
}

void KvStore::Put(uint64_t key, uint64_t value) {
  Shard& shard = *shards_[ShardOf(key)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  ++shard.stats.puts;
  if (options_.index == IndexKind::kArt) {
    shard.art.Insert(key, value);
  } else {
    shard.btree->Insert(key, value);
  }
}

Result<uint64_t> KvStore::Get(uint64_t key) {
  Shard& shard = *shards_[ShardOf(key)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  ++shard.stats.gets;
  uint64_t value = 0;
  const bool found = options_.index == IndexKind::kArt
                         ? shard.art.Find(key, &value)
                         : shard.btree->Find(key, &value);
  if (!found) return Status::NotFound("key not found");
  ++shard.stats.hits;
  return value;
}

uint64_t KvStore::RangeScan(uint64_t lo, uint64_t hi,
                            std::vector<uint64_t>* out) {
  if (lo > hi) return 0;
  uint64_t count = 0;
  // Shards partition the key space by range in ascending order, so
  // visiting them in index order yields globally sorted results.
  const uint32_t first = ShardOf(lo);
  const uint32_t last = ShardOf(hi);
  for (uint32_t s = first; s <= last; ++s) {
    Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> lock(shard.mutex);
    ++shard.stats.scans;
    if (options_.index == IndexKind::kArt) {
      count += shard.art.RangeScan(lo, hi, out);
    } else {
      count += shard.btree->RangeScan(lo, hi, out);
    }
  }
  return count;
}

uint64_t KvStore::size() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += options_.index == IndexKind::kArt ? shard->art.size()
                                               : shard->btree->size();
  }
  return total;
}

KvStats KvStore::stats() const {
  KvStats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total.gets += shard->stats.gets;
    total.puts += shard->stats.puts;
    total.hits += shard->stats.hits;
    total.scans += shard->stats.scans;
  }
  return total;
}

}  // namespace hwstar::kv
