#include "hwstar/kv/kv_store.h"

#include "hwstar/common/bits.h"
#include "hwstar/common/macros.h"
#include "hwstar/sync/epoch.h"

namespace hwstar::kv {

namespace {
constexpr auto kRelaxed = std::memory_order_relaxed;
}  // namespace

KvStore::ShardStats::Lane& KvStore::ShardStats::MyLane() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t lane = next.fetch_add(1, kRelaxed) % kLanes;
  return lanes[lane];
}

KvStore::KvStore(KvOptions options) : options_(options) {
  HWSTAR_CHECK(bits::IsPowerOfTwo(options_.shards));
  const uint32_t shard_bits = bits::Log2Floor(options_.shards);
  shard_shift_ = 64 - shard_bits;
  shards_.reserve(options_.shards);
  for (uint32_t s = 0; s < options_.shards; ++s) {
    auto shard = std::make_unique<Shard>();
    if (options_.index == IndexKind::kBTree) {
      shard->btree = std::make_unique<ops::BPlusTree>(options_.btree_fanout);
    } else if (options_.latch_free_reads) {
      // ART's Erase and node growth free memory; latch-free readers need
      // those frees deferred past their pins. The B+-tree never frees
      // nodes, so it needs no epoch domain.
      shard->art.SetEpochManager(&sync::EpochManager::Global());
    }
    shards_.push_back(std::move(shard));
  }
}

void KvStore::Put(uint64_t key, uint64_t value) {
  Shard& shard = *shards_[ShardOf(key)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.stats.MyLane().puts.fetch_add(1, kRelaxed);
  if (options_.index == IndexKind::kArt) {
    shard.art.Insert(key, value);
  } else {
    shard.btree->Insert(key, value);
  }
}

bool KvStore::Delete(uint64_t key) {
  Shard& shard = *shards_[ShardOf(key)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const bool erased = options_.index == IndexKind::kArt
                          ? shard.art.Erase(key)
                          : shard.btree->Erase(key);
  if (erased) shard.stats.MyLane().deletes.fetch_add(1, kRelaxed);
  return erased;
}

Result<uint64_t> KvStore::Get(uint64_t key) {
  Shard& shard = *shards_[ShardOf(key)];
  ShardStats::Lane& lane = shard.stats.MyLane();
  lane.gets.fetch_add(1, kRelaxed);
  uint64_t value = 0;
  bool found = false;
  if (options_.latch_free_reads) {
    // Latch-free point read: optimistic descent, no shared cache line is
    // written (the stat lanes above are striped). ART descents pin an
    // epoch so a racing Erase cannot free a node out from under them;
    // the B+-tree never frees nodes, so its descent needs no pin.
    if (options_.index == IndexKind::kArt) {
      sync::EpochManager::Guard guard;
      found = shard.art.Find(key, &value);
    } else {
      found = shard.btree->Find(key, &value);
    }
  } else {
    std::lock_guard<std::mutex> lock(shard.mutex);
    found = options_.index == IndexKind::kArt ? shard.art.Find(key, &value)
                                              : shard.btree->Find(key, &value);
  }
  if (!found) return Status::NotFound("key not found");
  lane.hits.fetch_add(1, kRelaxed);
  return value;
}

void KvStore::MultiGet(const uint64_t* keys, size_t count, uint64_t* values,
                       bool* found) {
  size_t i = 0;
  while (i < count) {
    // One ShardOf per key: the run head's shard id is computed once and
    // the extension loop classifies each subsequent key exactly once.
    const uint32_t s = ShardOf(keys[i]);
    size_t end = i + 1;
    while (end < count && ShardOf(keys[end]) == s) ++end;
    const size_t run = end - i;

    // Serve the whole same-shard run through the index's batched probe
    // kernel so the run's index descents overlap their cache misses (see
    // ops/probe_kernels.h) -- latch-free by default, under one latch
    // acquisition (never one per key) otherwise.
    Shard& shard = *shards_[s];
    bool* run_found = found == nullptr ? nullptr : found + i;
    // 0 forwards to the calibrated tune::ProbeGroupSize knob inside the
    // kernel; a nonzero KvOptions::probe_group pins this store's width.
    const uint32_t group = options_.probe_group;
    size_t hits = 0;
    if (options_.latch_free_reads) {
      if (options_.index == IndexKind::kArt) {
        sync::EpochManager::Guard guard;
        hits = shard.art.FindBatch(keys + i, run, values + i, run_found, group);
      } else {
        hits =
            shard.btree->FindBatch(keys + i, run, values + i, run_found, group);
      }
    } else {
      std::lock_guard<std::mutex> lock(shard.mutex);
      hits = options_.index == IndexKind::kArt
                 ? shard.art.FindBatch(keys + i, run, values + i, run_found,
                                       group)
                 : shard.btree->FindBatch(keys + i, run, values + i, run_found,
                                          group);
    }
    ShardStats::Lane& lane = shard.stats.MyLane();
    lane.gets.fetch_add(run, kRelaxed);
    lane.hits.fetch_add(hits, kRelaxed);
    i = end;
  }
}

uint64_t KvStore::RangeScan(uint64_t lo, uint64_t hi,
                            std::vector<uint64_t>* out) {
  return RangeScanLimit(lo, hi, /*limit=*/0, out);
}

uint64_t KvStore::RangeScanLimit(uint64_t lo, uint64_t hi, uint64_t limit,
                                 std::vector<uint64_t>* out) {
  if (lo > hi) return 0;
  const size_t base = out->size();
  uint64_t count = 0;
  // Shards partition the key space by range in ascending order, so
  // visiting them in index order yields globally sorted results.
  const uint32_t first = ShardOf(lo);
  const uint32_t last = ShardOf(hi);
  for (uint32_t s = first; s <= last; ++s) {
    Shard& shard = *shards_[s];
    shard.stats.MyLane().scans.fetch_add(1, kRelaxed);
    if (options_.index == IndexKind::kBTree && options_.latch_free_reads) {
      // The B-link tree's optimistic scan validates per leaf and never
      // frees nodes, so it needs neither the latch nor an epoch guard --
      // the scan no longer blocks the shard's writer (nor vice versa).
      count += shard.btree->RangeScanOptimistic(lo, hi, out);
    } else {
      // ART range scans require writer exclusion (Erase frees nodes and
      // the scan walks them unversioned), so they stay latched even in
      // latch-free-reads mode.
      std::lock_guard<std::mutex> lock(shard.mutex);
      if (options_.index == IndexKind::kArt) {
        count += shard.art.RangeScan(lo, hi, out);
      } else {
        count += shard.btree->RangeScan(lo, hi, out);
      }
    }
    if (limit != 0 && count >= limit) break;
  }
  if (limit != 0 && count > limit) {
    out->resize(base + limit);
    count = limit;
  }
  return count;
}

uint64_t KvStore::RangeScanEntries(
    uint64_t lo, uint64_t hi,
    std::vector<std::pair<uint64_t, uint64_t>>* out) {
  if (lo > hi) return 0;
  uint64_t count = 0;
  const uint32_t first = ShardOf(lo);
  const uint32_t last = ShardOf(hi);
  for (uint32_t s = first; s <= last; ++s) {
    Shard& shard = *shards_[s];
    shard.stats.MyLane().scans.fetch_add(1, kRelaxed);
    if (options_.index == IndexKind::kBTree && options_.latch_free_reads) {
      count += shard.btree->RangeScanEntriesOptimistic(lo, hi, out);
    } else {
      std::lock_guard<std::mutex> lock(shard.mutex);
      if (options_.index == IndexKind::kArt) {
        count += shard.art.RangeScanEntries(lo, hi, out);
      } else {
        count += shard.btree->RangeScanEntries(lo, hi, out);
      }
    }
  }
  return count;
}

uint64_t KvStore::size() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += options_.index == IndexKind::kArt ? shard->art.size()
                                               : shard->btree->size();
  }
  return total;
}

KvStats KvStore::stats() const {
  // Lock-free: counters are relaxed atomics, so a snapshot can be taken
  // while writers hold shard latches and latch-free readers stream past
  // them (the concurrency the svc layer's metrics poller exercises
  // continuously).
  KvStats total;
  for (const auto& shard : shards_) {
    for (const ShardStats::Lane& lane : shard->stats.lanes) {
      total.gets += lane.gets.load(kRelaxed);
      total.puts += lane.puts.load(kRelaxed);
      total.hits += lane.hits.load(kRelaxed);
      total.scans += lane.scans.load(kRelaxed);
      total.deletes += lane.deletes.load(kRelaxed);
    }
  }
  return total;
}

}  // namespace hwstar::kv
