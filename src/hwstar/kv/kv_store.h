#ifndef HWSTAR_KV_KV_STORE_H_
#define HWSTAR_KV_KV_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "hwstar/common/status.h"
#include "hwstar/ops/art.h"
#include "hwstar/ops/btree.h"

namespace hwstar::kv {

/// Index structure backing a KvStore.
enum class IndexKind : uint8_t {
  kArt = 0,    ///< adaptive radix tree (hardware-conscious default)
  kBTree = 1,  ///< cache-conscious B+-tree
};

/// Options for KvStore.
struct KvOptions {
  IndexKind index = IndexKind::kArt;
  /// Number of key-range shards (power of two). Each shard has its own
  /// index and latch, so disjoint-key operations scale with cores; range
  /// sharding (by high key bits) keeps scans order-preserving.
  uint32_t shards = 1;
  uint32_t btree_fanout = 32;
  /// When true (the default), point reads (Get/MultiGet) never take the
  /// shard latch: they run the index's optimistic read path -- a
  /// version-validated OLC descent, epoch-pinned for ART (whose Erase
  /// frees nodes). For kBTree, range scans go latch-free too (per-leaf
  /// version-validated copy); ART scans stay latched because its scan
  /// walks nodes unversioned. Writers still serialize on the latch.
  /// False restores fully latched reads (the pre-sync behavior; E20
  /// benchmarks the two against each other).
  bool latch_free_reads = true;
  /// Group width for the batched probe kernels MultiGet runs. 0 (the
  /// default) reads the calibrated tune::ProbeGroupSize knob per batch —
  /// a Calibrator install reaches running stores; nonzero pins this
  /// store's width (e.g. a store whose footprint the operator knows).
  uint32_t probe_group = 0;
};

/// Operation counters (a point-in-time snapshot; see KvStore::stats()).
struct KvStats {
  uint64_t gets = 0;
  uint64_t puts = 0;
  uint64_t hits = 0;  ///< gets that found the key
  uint64_t scans = 0;
  uint64_t deletes = 0;  ///< Delete calls that found (and removed) the key
};

/// An embedded, ordered key-value store over the library's main-memory
/// indexes: the OLTP substrate of the paper's world. The design choices
/// on display are exactly the hardware-conscious ones the keynote
/// demands: the index is a cache-efficient structure (ART or wide
/// B+-tree, never a binary tree), writes scale by range sharding (one
/// latch + one index per key range), and point reads are latch-free by
/// default -- optimistic lock coupling plus epoch-based reclamation
/// (hwstar/sync), so readers scale past the point where latched reads
/// plateau on the shard latches' cache lines. Thread-safe.
class KvStore {
 public:
  explicit KvStore(KvOptions options = KvOptions());

  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  /// Inserts or overwrites.
  void Put(uint64_t key, uint64_t value);

  /// Removes the key; returns whether it existed. The WAL replays this as
  /// a tombstone, so both index kinds support true erase (not
  /// sentinel-value overwrites, which would poison range scans).
  bool Delete(uint64_t key);

  /// Point read; NotFound when absent. With latch_free_reads (default)
  /// this never touches the shard latch: the descent is optimistic and
  /// restarts on writer interference, and stat counters are bumped on
  /// lane-striped relaxed atomics.
  Result<uint64_t> Get(uint64_t key);

  /// Batched point reads: fills values[i] (the value, or 0 on a miss)
  /// and found[i] for each keys[i]. `found` may be null when the caller
  /// only wants values -- the per-key hit flags are then skipped
  /// entirely (misses are still distinguishable only if 0 is not a
  /// stored value). Contiguous runs of same-shard keys are served
  /// through the index's batched probe kernel (ART/B+-tree FindBatch),
  /// which keeps a group of index descents' cache misses in flight
  /// instead of paying them one key at a time. With latch_free_reads
  /// (default) a run never takes the shard latch -- the batch kernel's
  /// whole-group optimistic descent restarts on writer interference;
  /// otherwise the run takes the latch once (not once per key). Callers
  /// that group keys by shard (the svc batcher sorts its get-batches
  /// exactly this way) amortize index-root and miss-latency costs across
  /// the whole batch.
  void MultiGet(const uint64_t* keys, size_t count, uint64_t* values,
                bool* found);

  /// Appends values for keys in [lo, hi] in ascending key order; returns
  /// the count. Spans shards (they partition the key space by range).
  ///
  /// Mixed-mode contract (all RangeScan* variants): a scan racing
  /// concurrent writers is NOT a point-in-time cut. Each shard's portion
  /// is internally consistent -- per shard under the latch, or per LEAF
  /// for the kBTree latch-free path -- but writes that land behind the
  /// scan cursor are missed and writes ahead of it are seen. What IS
  /// guaranteed: every key present for the scan's whole duration appears
  /// exactly once, keys absent throughout never appear, output stays in
  /// ascending key order, and (kBTree + latch_free_reads) the scan
  /// neither blocks nor is blocked by the shard's writer. Callers that
  /// need a stronger cut must quiesce writers themselves (the
  /// checkpointer's fuzzy scan + WAL replay idempotence is the worked
  /// example).
  uint64_t RangeScan(uint64_t lo, uint64_t hi, std::vector<uint64_t>* out);

  /// RangeScan bounded to at most `limit` result rows (0 = unlimited).
  /// Early-exits at shard granularity; the truncation keeps the smallest
  /// keys (scan order), so a clamped scan is a prefix of the full scan.
  uint64_t RangeScanLimit(uint64_t lo, uint64_t hi, uint64_t limit,
                          std::vector<uint64_t>* out);

  /// Appends (key, value) pairs for keys in [lo, hi] in ascending key
  /// order; returns the count. This is the checkpointer's fuzzy-snapshot
  /// primitive: subject to the mixed-mode contract above — the scan is
  /// not a point-in-time cut; concurrent writers may or may not appear,
  /// which WAL replay idempotence absorbs.
  uint64_t RangeScanEntries(uint64_t lo, uint64_t hi,
                            std::vector<std::pair<uint64_t, uint64_t>>* out);

  uint64_t size() const;
  KvStats stats() const;
  const KvOptions& options() const { return options_; }

 private:
  /// Per-shard, lane-striped counters: bumped without the shard latch by
  /// latch-free readers and latched writers alike. Threads hash to
  /// cache-line-padded lanes, so concurrent Gets against one hot shard
  /// do not all fetch_add the same cache line (which would serialize the
  /// very readers the latch-free path unshackles). stats() sums every
  /// lane with relaxed loads -- the readers want monotonic counters, not
  /// a consistent cut.
  struct ShardStats {
    static constexpr uint32_t kLanes = 8;
    struct alignas(64) Lane {
      std::atomic<uint64_t> gets{0};
      std::atomic<uint64_t> puts{0};
      std::atomic<uint64_t> hits{0};
      std::atomic<uint64_t> scans{0};
      std::atomic<uint64_t> deletes{0};
    };
    Lane lanes[kLanes];
    /// The calling thread's lane (assigned round-robin on first use).
    Lane& MyLane();
  };

  struct Shard {
    std::mutex mutex;
    ops::AdaptiveRadixTree art;
    std::unique_ptr<ops::BPlusTree> btree;
    ShardStats stats;
  };

  uint32_t ShardOf(uint64_t key) const {
    return shard_shift_ >= 64 ? 0 : static_cast<uint32_t>(key >> shard_shift_);
  }

  KvOptions options_;
  uint32_t shard_shift_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace hwstar::kv

#endif  // HWSTAR_KV_KV_STORE_H_
