#include "hwstar/stream/source.h"

#include <utility>

namespace hwstar::stream {

namespace {
/// Event time of record `index`: start + index*step, displaced backward
/// by a bounded jitter (clamped so time never precedes `start`).
uint64_t SynthesizeTs(const EventTimeOptions& time, uint64_t index,
                      Xoshiro256& jitter) {
  const uint64_t ideal = time.start + index * time.step;
  if (time.max_disorder == 0) return ideal;
  const uint64_t back = jitter.NextBounded(time.max_disorder + 1);
  return ideal - time.start < back ? time.start : ideal - back;
}
}  // namespace

YcsbSource::YcsbSource(const workload::YcsbConfig& config,
                       const EventTimeOptions& time)
    : stream_(config), time_(time), jitter_(time.seed) {}

bool YcsbSource::NextBatch(uint64_t max_rows, StreamBatch* out) {
  chunk_.resize(max_rows);
  const size_t n = stream_.NextChunk(chunk_.data(), max_rows);
  if (n == 0) return false;
  out->Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t ts = SynthesizeTs(time_, index_++, jitter_);
    out->Append(chunk_[i].key,
                static_cast<int64_t>(chunk_[i].key & 0x3ff), ts);
  }
  return true;
}

LineitemSource::LineitemSource(const workload::TpchConfig& config,
                               LineitemKey key_column,
                               const EventTimeOptions& time)
    : stream_(config), key_column_(key_column), time_(time),
      jitter_(time.seed) {}

bool LineitemSource::NextBatch(uint64_t max_rows, StreamBatch* out) {
  chunk_.resize(max_rows);
  const size_t n = stream_.NextChunk(chunk_.data(), max_rows);
  if (n == 0) return false;
  out->Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const workload::LineitemRow& row = chunk_[i];
    const uint64_t key = static_cast<uint64_t>(
        key_column_ == LineitemKey::kOrderKey ? row.orderkey : row.partkey);
    const uint64_t ts = SynthesizeTs(time_, index_++, jitter_);
    out->Append(key, row.extendedprice, ts);
  }
  return true;
}

VectorSource::VectorSource(std::vector<StreamBatch> batches)
    : batches_(std::move(batches)) {}

bool VectorSource::NextBatch(uint64_t max_rows, StreamBatch* out) {
  (void)max_rows;
  if (next_ >= batches_.size()) return false;
  *out = batches_[next_++];
  return true;
}

}  // namespace hwstar::stream
