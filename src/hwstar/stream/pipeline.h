#ifndef HWSTAR_STREAM_PIPELINE_H_
#define HWSTAR_STREAM_PIPELINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "hwstar/exec/executor.h"
#include "hwstar/mem/aligned.h"
#include "hwstar/obs/histogram.h"
#include "hwstar/obs/metric.h"
#include "hwstar/obs/registry.h"
#include "hwstar/stream/operator.h"
#include "hwstar/stream/source.h"
#include "hwstar/stream/stream_batch.h"
#include "hwstar/stream/window.h"

namespace hwstar::stream {

/// What the pump does when a partition's queue is full — the streaming
/// face of the svc step-down overload shape: bound the in-flight work,
/// then degrade deliberately instead of collapsing.
enum class BackpressurePolicy : uint8_t {
  /// Block the pump until the partition drains (lossless; source-paced
  /// pipelines and the bit-identity tests).
  kBlock = 0,
  /// Shed the *oldest* queued batch (its windows are the ones the
  /// watermark will close first, so freshest-data-wins) and count it in
  /// the shed counter. Open-loop ingest keeps running at degraded
  /// completeness instead of stalling the source.
  kDropOldest = 1,
};

/// Receives pipeline output. Called concurrently from different Executor
/// workers (one partition at a time per partition, but partitions in
/// parallel), so implementations synchronize their own state.
class Sink {
 public:
  virtual ~Sink() = default;

  /// Transformed rows reaching the end of a pipeline that has no window
  /// stage.
  virtual void OnBatch(uint32_t partition, const StreamBatch& batch) {
    (void)partition;
    (void)batch;
  }

  /// Aggregates of windows the watermark just closed, in ascending
  /// (window_start, key) order per call.
  virtual void OnWindows(uint32_t partition,
                         const std::vector<WindowResult>& results) {
    (void)partition;
    (void)results;
  }
};

struct PipelineOptions {
  /// Key-hash partitions (0 = executor worker count). Each partition's
  /// state is single-writer; more partitions = more parallelism and
  /// smaller per-partition state.
  uint32_t partitions = 0;
  /// Rows pulled from the source per micro-batch. 0 = the
  /// tune::StreamBatchRows knob, re-read every pump round so online
  /// re-tuning reaches a running pipeline; nonzero pins the size.
  uint32_t batch_rows = 0;
  /// Max queued micro-batches per partition
  /// (0 = hw::DefaultStreamMaxInflight()).
  uint32_t max_inflight = 0;
  /// Watermark lateness bound in event-time units
  /// (kUseDefault = hw::DefaultStreamLatenessBound()).
  static constexpr uint64_t kUseDefault = ~uint64_t{0};
  uint64_t lateness_bound = kUseDefault;
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  /// Emit a flush watermark when the source ends, closing every open
  /// window (finite streams; switch off to leave tails open).
  bool flush_on_end = true;
  /// Metric name prefix: metrics register as "stream.<name>.*".
  std::string name = "pipeline";
};

/// A continuous query: source -> transforms -> (window aggregation ->)
/// sink, executed batch-at-a-time as morsel-like tasks on the shared
/// work-stealing Executor — no threads of its own.
///
/// Execution model: Run() pumps micro-batches from the source on the
/// calling thread, stamps each with a bounded-out-of-orderness watermark,
/// splits it by key hash into per-partition sub-batches, and enqueues
/// them on per-partition bounded FIFO queues. Each partition drains on
/// the Executor (one task at a time per partition, submitted with that
/// partition's preferred worker, so state stays cache- and NUMA-local),
/// applying the transform chain and the window stage in arrival order.
/// Sub-batch FIFO per partition is what makes the single source-side
/// watermark sound for every partition.
///
/// Backpressure: the queue bound is the in-flight budget; kBlock paces
/// the pump, kDropOldest sheds with a counter (see BackpressurePolicy).
///
/// Stop() (any thread) halts pumping and discards still-queued work;
/// Run() returns after in-flight tasks finish. Obs metrics (batches,
/// records, late drops, sheds, windows, emission latency) register into
/// any Registry via RegisterMetrics.
class Pipeline {
 public:
  ~Pipeline();

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// Pumps the source to exhaustion (or Stop()), then waits until every
  /// accepted sub-batch has been processed. Call at most once.
  void Run();

  /// Requests an early halt; safe from any thread, returns without
  /// waiting (Run() does the waiting). Queued-but-unprocessed sub-batches
  /// are discarded, in-flight ones finish.
  void Stop();

  /// Registers this pipeline's metrics (borrowed) as
  /// "stream.<name>.batches|records|late_dropped|batches_shed|
  /// windows_emitted|emit_latency_ns".
  void RegisterMetrics(obs::Registry* registry) const;

  uint64_t batches_processed() const { return batches_.value(); }
  uint64_t records_processed() const { return records_.value(); }
  uint64_t late_dropped() const { return late_dropped_.value(); }
  uint64_t batches_shed() const { return batches_shed_.value(); }
  uint64_t windows_emitted() const { return windows_emitted_.value(); }
  const obs::Histogram& emit_latency_histogram() const {
    return emit_latency_ns_;
  }

  uint32_t partitions() const {
    return static_cast<uint32_t>(parts_.size());
  }
  const std::string& name() const { return name_; }

 private:
  friend class PipelineBuilder;
  Pipeline() = default;

  /// One partition's bounded FIFO plus its is-a-drain-task-scheduled
  /// flag; padded so neighboring partitions' locks and queue heads never
  /// share a line.
  struct alignas(mem::kCacheLineBytes) Partition {
    std::mutex mutex;
    std::condition_variable space_cv;  ///< pump blocks here (kBlock)
    std::deque<StreamBatch> queue;
    bool scheduled = false;
    /// Watermark last enqueued, so watermark-only (empty) sub-batches are
    /// sent exactly when a partition would otherwise miss an advance.
    uint64_t last_watermark = 0;
  };

  void Dispatch(StreamBatch&& batch);
  void Enqueue(uint32_t p, StreamBatch&& sub);
  void SubmitDrain(uint32_t p);
  void DrainPartition(uint32_t p);
  void ProcessSubBatch(uint32_t p, StreamBatch&& sub);
  void FinishOne();
  void WaitDrained();

  exec::Executor* executor_ = nullptr;
  Source* source_ = nullptr;
  std::vector<Transform*> transforms_;
  WindowAggregator* window_agg_ = nullptr;
  Sink* sink_ = nullptr;

  std::string name_;
  /// 0 = defaulted: Run() re-reads tune::StreamBatchRows each pump round
  /// (the online Controller's actuator); nonzero = frozen by options.
  uint32_t batch_rows_ = 0;
  uint32_t max_inflight_ = 0;
  uint64_t lateness_bound_ = 0;
  BackpressurePolicy backpressure_ = BackpressurePolicy::kBlock;
  bool flush_on_end_ = true;

  std::vector<std::unique_ptr<Partition>> parts_;
  /// Per-partition pump-side scratch for splitting a batch by key hash.
  std::vector<StreamBatch> split_scratch_;
  /// Per-partition scratch for window emission (single-writer).
  std::vector<std::vector<WindowResult>> window_scratch_;

  std::atomic<bool> stopped_{false};
  /// Accepted sub-batches not yet processed or shed; the drain barrier.
  std::atomic<uint64_t> outstanding_{0};
  /// Drain tasks submitted and not yet returned; Run() and the
  /// destructor wait for both counts to reach zero before the pipeline's
  /// memory may go away.
  std::atomic<uint64_t> active_tasks_{0};
  std::mutex done_mutex_;
  std::condition_variable done_cv_;
  bool ran_ = false;

  obs::Counter batches_;          ///< sub-batches through the operators
  obs::Counter records_;          ///< rows into the terminal stage
  obs::Counter late_dropped_;     ///< records behind the watermark
  obs::Counter batches_shed_;     ///< sub-batches dropped under pressure
  obs::Counter windows_emitted_;  ///< (window, key) results emitted
  obs::Histogram emit_latency_ns_;  ///< ingest -> window emission
};

/// Wires source -> transforms -> (window aggregation ->) sink into a
/// Pipeline and binds every stage to the partition count. The builder
/// borrows all stage objects; they must outlive the pipeline.
class PipelineBuilder {
 public:
  explicit PipelineBuilder(exec::Executor* executor);

  PipelineBuilder& From(Source* source);
  /// Appends a transform stage (order of calls = order in the chain).
  PipelineBuilder& Via(Transform* transform);
  /// Sets the terminal window-aggregation stage.
  PipelineBuilder& Aggregate(WindowAggregator* aggregator);
  PipelineBuilder& To(Sink* sink);
  PipelineBuilder& With(const PipelineOptions& options);

  /// Resolves 0/default option fields against the hw knobs, binds every
  /// stage's per-partition state, and returns the runnable pipeline.
  std::unique_ptr<Pipeline> Build();

 private:
  exec::Executor* executor_;
  Source* source_ = nullptr;
  std::vector<Transform*> transforms_;
  WindowAggregator* window_agg_ = nullptr;
  Sink* sink_ = nullptr;
  PipelineOptions options_;
};

}  // namespace hwstar::stream

#endif  // HWSTAR_STREAM_PIPELINE_H_
