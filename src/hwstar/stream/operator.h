#ifndef HWSTAR_STREAM_OPERATOR_H_
#define HWSTAR_STREAM_OPERATOR_H_

#include <cstdint>

#include "hwstar/stream/stream_batch.h"

namespace hwstar::stream {

/// A push-based, batch-at-a-time operator stage: rewrites one micro-batch
/// in place (filter, project, enrich via join). State, if any, is
/// partitioned: Apply(p, ...) is only ever called for one partition at a
/// time, in pipeline order for that partition, but different partitions
/// run concurrently on different Executor workers — so per-partition
/// state needs no locks, and implementations pad it to cache lines to
/// keep neighboring partitions off each other's coherence traffic.
class Transform {
 public:
  virtual ~Transform() = default;

  /// Sizes per-partition state; called once by Pipeline::Build before any
  /// Apply.
  virtual void Bind(uint32_t partitions) { (void)partitions; }

  /// Rewrites `batch` for partition `partition`. The batch's watermark
  /// and ingest stamp must be preserved (StreamBatch::AdoptRows does).
  virtual void Apply(uint32_t partition, StreamBatch* batch) = 0;
};

}  // namespace hwstar::stream

#endif  // HWSTAR_STREAM_OPERATOR_H_
