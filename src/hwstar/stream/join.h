#ifndef HWSTAR_STREAM_JOIN_H_
#define HWSTAR_STREAM_JOIN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "hwstar/mem/aligned.h"
#include "hwstar/ops/bloom_filter.h"
#include "hwstar/ops/hash_table.h"
#include "hwstar/stream/operator.h"

namespace hwstar::stream {

/// How a join match combines the stream value with the build payload into
/// the output row's value.
enum class JoinCombine : uint8_t {
  kBuildValue = 0,  ///< output value = build payload (pure enrichment)
  kSum = 1,         ///< output value = stream value + build payload
  kProduct = 2,     ///< output value = stream value * build payload
};

/// A streaming hash join against a static build side (stream-table /
/// enrichment join): the build relation is hashed once at construction,
/// and every stream micro-batch probes it, emitting one output row per
/// match (inner join; duplicate build keys produce duplicate outputs).
///
/// The probe side is where streams spend their cycles, so it runs through
/// the ops batched probe kernels: `LinearProbeTable::ProbeBatch` (group
/// prefetching) keeps up to G independent probe misses in flight per
/// batch, carrying the E18 memory-level-parallelism win into continuous
/// queries. An optional blocked-Bloom prefilter (`MayContainBatch` +
/// survivor compaction, the join_nop discipline) pays when most stream
/// keys miss the build side. Both kernels preserve scalar probe order, so
/// output rows appear in input-row order — what the bit-identity test
/// relies on.
/// Construction knobs for StreamTableJoin.
struct StreamJoinOptions {
    JoinCombine combine = JoinCombine::kBuildValue;
    /// Probe through the batched kernels (false = scalar Probe loop; the
    /// bench baseline showing what batching buys).
    bool use_batched_kernels = true;
    /// Prefilter probes through a blocked Bloom filter over the build
    /// keys; worth it when the stream mostly misses the build side.
    bool bloom_prefilter = false;
    /// Batched-kernel group size (0 = hw::DefaultProbeGroupSize).
    uint32_t probe_group_size = 0;
    /// Build-table load factor (LinearProbeTable).
    double load_factor = 0.5;
};

class StreamTableJoin : public Transform {
 public:
  /// Hashes `n` build (key, payload) pairs. Keys may repeat.
  StreamTableJoin(const uint64_t* build_keys, const int64_t* build_payloads,
                  size_t n, const StreamJoinOptions& options = {});

  void Bind(uint32_t partitions) override;
  void Apply(uint32_t partition, StreamBatch* batch) override;

  uint64_t build_rows() const { return table_.size(); }
  /// Build-side footprint — the residency knob of the E19 join bench.
  uint64_t MemoryBytes() const {
    return table_.MemoryBytes() + (bloom_ ? bloom_->MemoryBytes() : 0);
  }

 private:
  int64_t Combine(int64_t stream_value, int64_t payload) const;

  /// Per-partition probe scratch (the output batch under construction),
  /// cache-line aligned: two partitions' scratch must not share a line
  /// (both rewritten per batch). Bloom chunk buffers live on the stack in
  /// Apply, the join_nop discipline.
  struct alignas(mem::kCacheLineBytes) Scratch {
    StreamBatch out;
  };

  StreamJoinOptions options_;
  ops::LinearProbeTable table_;
  std::unique_ptr<ops::BlockedBloomFilter> bloom_;
  std::vector<Scratch> scratch_;
};

}  // namespace hwstar::stream

#endif  // HWSTAR_STREAM_JOIN_H_
