#ifndef HWSTAR_STREAM_SOURCE_H_
#define HWSTAR_STREAM_SOURCE_H_

#include <cstdint>
#include <vector>

#include "hwstar/common/random.h"
#include "hwstar/stream/stream_batch.h"
#include "hwstar/workload/tpch_like.h"
#include "hwstar/workload/ycsb_like.h"

namespace hwstar::stream {

/// Where micro-batches come from. Pulled by the pipeline's pump thread
/// only, so implementations need no internal synchronization.
class Source {
 public:
  virtual ~Source() = default;

  /// Appends up to `max_rows` rows to `*out` (passed in cleared); returns
  /// false when the stream has ended and no rows were appended. The
  /// pipeline stamps watermark and ingest time; sources only fill rows.
  virtual bool NextBatch(uint64_t max_rows, StreamBatch* out) = 0;
};

/// Synthesized event time for generator-backed sources: record i carries
/// ts = start + i*step - jitter, jitter uniform in [0, max_disorder]
/// (clamped at `start`). Arrival order therefore deviates from event
/// order by at most max_disorder — pair it with a pipeline lateness bound
/// >= max_disorder and nothing is late; shrink the bound below it and
/// late drops become measurable. Deterministic per seed.
struct EventTimeOptions {
  uint64_t start = 0;
  uint64_t step = 1;
  uint64_t max_disorder = 0;
  uint64_t seed = 1234;
};

/// Streams the YCSB-shaped operation mix as (key, value, ts) records via
/// the chunked-pull workload::YcsbStream — nothing is materialized up
/// front. value is a deterministic payload derived from the key
/// (key & 0x3ff), so aggregates are reproducible.
class YcsbSource : public Source {
 public:
  explicit YcsbSource(const workload::YcsbConfig& config,
                      const EventTimeOptions& time = {});

  bool NextBatch(uint64_t max_rows, StreamBatch* out) override;

 private:
  workload::YcsbStream stream_;
  EventTimeOptions time_;
  Xoshiro256 jitter_;
  uint64_t index_ = 0;
  std::vector<workload::YcsbRequest> chunk_;
};

/// Which lineitem column keys a LineitemSource record (the join key
/// against a build side).
enum class LineitemKey : uint8_t { kOrderKey = 0, kPartKey = 1 };

/// Streams the TPC-H-shaped lineitem generator as (key, extendedprice,
/// ts) records via the chunked-pull workload::LineitemStream. Event time
/// is synthesized (arrival-ordered with bounded disorder) rather than
/// taken from l_shipdate, whose random order would put nearly every
/// record beyond any useful lateness bound.
class LineitemSource : public Source {
 public:
  LineitemSource(const workload::TpchConfig& config, LineitemKey key_column,
                 const EventTimeOptions& time = {});

  bool NextBatch(uint64_t max_rows, StreamBatch* out) override;

 private:
  workload::LineitemStream stream_;
  LineitemKey key_column_;
  EventTimeOptions time_;
  Xoshiro256 jitter_;
  uint64_t index_ = 0;
  std::vector<workload::LineitemRow> chunk_;
};

/// Replays pre-built batches verbatim, ignoring `max_rows` — the test
/// source for hand-constructed timestamp patterns (exact late records,
/// watermark stalls, empty batches).
class VectorSource : public Source {
 public:
  explicit VectorSource(std::vector<StreamBatch> batches);

  bool NextBatch(uint64_t max_rows, StreamBatch* out) override;

 private:
  std::vector<StreamBatch> batches_;
  size_t next_ = 0;
};

}  // namespace hwstar::stream

#endif  // HWSTAR_STREAM_SOURCE_H_
