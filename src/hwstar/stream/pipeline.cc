#include "hwstar/stream/pipeline.h"

#include <chrono>
#include <utility>

#include "hwstar/common/hash.h"
#include "hwstar/common/macros.h"
#include "hwstar/hw/machine_model.h"
#include "hwstar/stream/watermark.h"

namespace hwstar::stream {

namespace {
uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

Pipeline::~Pipeline() {
  Stop();
  // Run() normally does this wait; repeating it here covers a pipeline
  // destroyed while another thread's Run() is past its own wait, and a
  // pipeline never run (both counters already zero).
  WaitDrained();
}

void Pipeline::Stop() {
  stopped_.store(true, std::memory_order_release);
  for (auto& part : parts_) {
    // Taking the lock orders the notify after any in-progress wait
    // registration, so a pump blocked on space_cv re-checks stopped_.
    std::lock_guard<std::mutex> lk(part->mutex);
    part->space_cv.notify_all();
  }
}

void Pipeline::Run() {
  HWSTAR_CHECK(!ran_);
  ran_ = true;
  WatermarkTracker tracker(lateness_bound_);
  StreamBatch batch;
  while (!stopped_.load(std::memory_order_acquire)) {
    batch.Clear();
    batch.watermark = 0;
    // A pipeline built with the default batch size re-reads the
    // tune::StreamBatchRows knob every pump round, so a Calibrator
    // install or a Controller nudge changes the micro-batch size of a
    // *running* pipeline: this is the knob the online feedback loop
    // actuates when emission p99 drifts from its target.
    const uint32_t rows =
        batch_rows_ != 0 ? batch_rows_ : hw::DefaultStreamBatchRows();
    if (!source_->NextBatch(rows, &batch)) break;
    for (const uint64_t ts : batch.event_ts) tracker.Observe(ts);
    batch.watermark = tracker.watermark();
    batch.ingest_ns = NowNanos();
    Dispatch(std::move(batch));
  }
  if (!stopped_.load(std::memory_order_acquire) && flush_on_end_) {
    StreamBatch flush;
    flush.watermark = StreamBatch::kFlushWatermark;
    flush.ingest_ns = NowNanos();
    Dispatch(std::move(flush));
  }
  WaitDrained();
}

void Pipeline::Dispatch(StreamBatch&& batch) {
  const uint32_t num_parts = static_cast<uint32_t>(parts_.size());
  if (num_parts == 1) {
    Enqueue(0, std::move(batch));
    return;
  }
  for (auto& sub : split_scratch_) sub.Clear();
  const size_t n = batch.size();
  for (size_t i = 0; i < n; ++i) {
    // Mix64 so partition choice is independent of any key structure (and
    // of LinearProbeTable's slot placement, which uses the high bits).
    const uint32_t p =
        static_cast<uint32_t>(Mix64(batch.keys[i]) % num_parts);
    split_scratch_[p].Append(batch.keys[i], batch.values[i],
                             batch.event_ts[i]);
  }
  for (uint32_t p = 0; p < num_parts; ++p) {
    StreamBatch& sub = split_scratch_[p];
    // Empty sub-batches still carry a watermark advance: a partition
    // that stops receiving rows must still close its open windows.
    if (sub.empty() && batch.watermark <= parts_[p]->last_watermark) {
      continue;
    }
    sub.watermark = batch.watermark;
    sub.ingest_ns = batch.ingest_ns;
    Enqueue(p, std::move(sub));
    split_scratch_[p] = StreamBatch();
  }
}

void Pipeline::Enqueue(uint32_t p, StreamBatch&& sub) {
  Partition& part = *parts_[p];
  bool need_submit = false;
  {
    std::unique_lock<std::mutex> lk(part.mutex);
    if (backpressure_ == BackpressurePolicy::kBlock) {
      part.space_cv.wait(lk, [&] {
        return stopped_.load(std::memory_order_acquire) ||
               part.queue.size() < max_inflight_;
      });
      if (stopped_.load(std::memory_order_acquire)) return;
    } else if (part.queue.size() >= max_inflight_) {
      // Shed the oldest queued sub-batch: its windows close first, so
      // under pressure the pipeline keeps the freshest data.
      part.queue.pop_front();
      batches_shed_.Inc();
      FinishOne();
    }
    // Count before publishing: once the sub-batch is visible in the
    // queue a racing drain may process and FinishOne it immediately.
    outstanding_.fetch_add(1, std::memory_order_relaxed);
    if (sub.watermark > part.last_watermark) {
      part.last_watermark = sub.watermark;
    }
    part.queue.push_back(std::move(sub));
    need_submit = !part.scheduled;
    part.scheduled = true;
  }
  if (need_submit) SubmitDrain(p);
}

void Pipeline::SubmitDrain(uint32_t p) {
  active_tasks_.fetch_add(1, std::memory_order_relaxed);
  const int preferred =
      executor_->num_threads() == 0
          ? -1
          : static_cast<int>(p % executor_->num_threads());
  const bool accepted = executor_->Submit(
      [this, p](uint32_t /*worker*/) { DrainPartition(p); }, preferred);
  if (!accepted) {
    // Executor is shutting down; drain inline on the pump thread so no
    // accepted sub-batch is stranded.
    DrainPartition(p);
  }
}

void Pipeline::DrainPartition(uint32_t p) {
  Partition& part = *parts_[p];
  for (;;) {
    StreamBatch sub;
    {
      std::lock_guard<std::mutex> lk(part.mutex);
      if (part.queue.empty()) {
        part.scheduled = false;
        break;
      }
      sub = std::move(part.queue.front());
      part.queue.pop_front();
    }
    part.space_cv.notify_one();
    if (!stopped_.load(std::memory_order_acquire)) {
      ProcessSubBatch(p, std::move(sub));
    }
    FinishOne();
  }
  // Last action touching the pipeline: after this decrement hits zero
  // (with outstanding_ also zero) the pipeline may be destroyed.
  if (active_tasks_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lk(done_mutex_);
    done_cv_.notify_all();
  }
}

void Pipeline::ProcessSubBatch(uint32_t p, StreamBatch&& sub) {
  for (Transform* t : transforms_) t->Apply(p, &sub);
  if (window_agg_ != nullptr) {
    std::vector<WindowResult>& results = window_scratch_[p];
    results.clear();
    uint64_t late = 0;
    window_agg_->OnBatch(p, sub, &results, &late);
    if (late > 0) late_dropped_.Add(late);
    if (!results.empty()) {
      windows_emitted_.Add(results.size());
      // Emission latency: from ingest of the sub-batch whose watermark
      // closed the windows to the emission happening now. One sample per
      // emission event.
      emit_latency_ns_.Record(NowNanos() - sub.ingest_ns);
      if (sink_ != nullptr) sink_->OnWindows(p, results);
    }
  } else if (sink_ != nullptr && !sub.empty()) {
    sink_->OnBatch(p, sub);
  }
  batches_.Inc();
  records_.Add(sub.size());
}

void Pipeline::FinishOne() {
  if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lk(done_mutex_);
    done_cv_.notify_all();
  }
}

void Pipeline::WaitDrained() {
  std::unique_lock<std::mutex> lk(done_mutex_);
  done_cv_.wait(lk, [&] {
    return outstanding_.load(std::memory_order_acquire) == 0 &&
           active_tasks_.load(std::memory_order_acquire) == 0;
  });
}

void Pipeline::RegisterMetrics(obs::Registry* registry) const {
  const std::string prefix = "stream." + name_ + ".";
  registry->RegisterCounter(prefix + "batches", &batches_);
  registry->RegisterCounter(prefix + "records", &records_);
  registry->RegisterCounter(prefix + "late_dropped", &late_dropped_);
  registry->RegisterCounter(prefix + "batches_shed", &batches_shed_);
  registry->RegisterCounter(prefix + "windows_emitted", &windows_emitted_);
  registry->RegisterHistogram(prefix + "emit_latency_ns", &emit_latency_ns_);
}

PipelineBuilder::PipelineBuilder(exec::Executor* executor)
    : executor_(executor) {
  HWSTAR_CHECK(executor != nullptr);
}

PipelineBuilder& PipelineBuilder::From(Source* source) {
  source_ = source;
  return *this;
}

PipelineBuilder& PipelineBuilder::Via(Transform* transform) {
  HWSTAR_CHECK(transform != nullptr);
  transforms_.push_back(transform);
  return *this;
}

PipelineBuilder& PipelineBuilder::Aggregate(WindowAggregator* aggregator) {
  window_agg_ = aggregator;
  return *this;
}

PipelineBuilder& PipelineBuilder::To(Sink* sink) {
  sink_ = sink;
  return *this;
}

PipelineBuilder& PipelineBuilder::With(const PipelineOptions& options) {
  options_ = options;
  return *this;
}

std::unique_ptr<Pipeline> PipelineBuilder::Build() {
  HWSTAR_CHECK(source_ != nullptr);
  auto pipeline = std::unique_ptr<Pipeline>(new Pipeline());
  pipeline->executor_ = executor_;
  pipeline->source_ = source_;
  pipeline->transforms_ = transforms_;
  pipeline->window_agg_ = window_agg_;
  pipeline->sink_ = sink_;
  pipeline->name_ = options_.name;

  uint32_t partitions = options_.partitions;
  if (partitions == 0) partitions = executor_->num_threads();
  if (partitions == 0) partitions = 1;
  // batch_rows stays 0 when defaulted: Run() resolves it against the
  // tune::StreamBatchRows knob per pump round (live re-tuning); the
  // other options freeze at build time (queue bounds and watermark
  // semantics must not move under a running pipeline).
  pipeline->batch_rows_ = options_.batch_rows;
  pipeline->max_inflight_ = options_.max_inflight != 0
                                ? options_.max_inflight
                                : hw::DefaultStreamMaxInflight();
  pipeline->lateness_bound_ =
      options_.lateness_bound != PipelineOptions::kUseDefault
          ? options_.lateness_bound
          : hw::DefaultStreamLatenessBound();
  pipeline->backpressure_ = options_.backpressure;
  pipeline->flush_on_end_ = options_.flush_on_end;

  pipeline->parts_.reserve(partitions);
  for (uint32_t p = 0; p < partitions; ++p) {
    pipeline->parts_.push_back(std::make_unique<Pipeline::Partition>());
  }
  pipeline->split_scratch_ = std::vector<StreamBatch>(partitions);
  pipeline->window_scratch_ =
      std::vector<std::vector<WindowResult>>(partitions);

  for (Transform* t : pipeline->transforms_) t->Bind(partitions);
  if (pipeline->window_agg_ != nullptr) pipeline->window_agg_->Bind(partitions);
  return pipeline;
}

}  // namespace hwstar::stream
