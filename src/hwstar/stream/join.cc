#include "hwstar/stream/join.h"

#include "hwstar/common/macros.h"

namespace hwstar::stream {

namespace {
/// Rows bloom-filtered and compacted per step; bounds the stack buffers.
constexpr size_t kProbeChunk = 1024;
}  // namespace

StreamTableJoin::StreamTableJoin(const uint64_t* build_keys,
                                 const int64_t* build_payloads, size_t n,
                                 const StreamJoinOptions& options)
    : options_(options), table_(n == 0 ? 1 : n, options.load_factor) {
  for (size_t i = 0; i < n; ++i) {
    table_.Insert(build_keys[i], static_cast<uint64_t>(build_payloads[i]));
  }
  if (options.bloom_prefilter) {
    bloom_ = std::make_unique<ops::BlockedBloomFilter>(n == 0 ? 1 : n);
    for (size_t i = 0; i < n; ++i) bloom_->Add(build_keys[i]);
  }
}

void StreamTableJoin::Bind(uint32_t partitions) {
  HWSTAR_CHECK(partitions > 0);
  scratch_ = std::vector<Scratch>(partitions);
}

int64_t StreamTableJoin::Combine(int64_t stream_value, int64_t payload) const {
  switch (options_.combine) {
    case JoinCombine::kBuildValue:
      return payload;
    case JoinCombine::kSum:
      return stream_value + payload;
    case JoinCombine::kProduct:
      return stream_value * payload;
  }
  return payload;
}

void StreamTableJoin::Apply(uint32_t partition, StreamBatch* batch) {
  HWSTAR_CHECK(partition < scratch_.size());
  const StreamBatch& in = *batch;
  StreamBatch& out = scratch_[partition].out;
  out.Clear();
  out.Reserve(in.size());

  const size_t n = in.size();
  const uint64_t* keys = in.keys.data();
  auto emit = [&](size_t row, uint64_t payload) {
    out.Append(in.keys[row], Combine(in.values[row],
                                     static_cast<int64_t>(payload)),
               in.event_ts[row]);
  };

  if (!options_.use_batched_kernels) {
    // Scalar baseline: one dependent-miss chain at a time.
    for (size_t i = 0; i < n; ++i) {
      table_.Probe(keys[i], [&](uint64_t payload) { emit(i, payload); });
    }
  } else if (bloom_ != nullptr) {
    // Bloom-prefilter a chunk at a time, compact the survivors (keeping
    // their original row ids), then batch-probe them — join_nop's probe
    // discipline applied to a stream batch.
    bool may[kProbeChunk];
    uint64_t pass_keys[kProbeChunk];
    size_t pass_rows[kProbeChunk];
    for (size_t base = 0; base < n; base += kProbeChunk) {
      const size_t m = n - base < kProbeChunk ? n - base : kProbeChunk;
      bloom_->MayContainBatch(keys + base, m, may, options_.probe_group_size);
      size_t live = 0;
      for (size_t j = 0; j < m; ++j) {
        if (!may[j]) continue;
        pass_keys[live] = keys[base + j];
        pass_rows[live] = base + j;
        ++live;
      }
      if (live == 0) continue;
      table_.ProbeBatch(
          pass_keys, live,
          [&](size_t j, uint64_t payload) { emit(pass_rows[j], payload); },
          options_.probe_group_size);
    }
  } else {
    table_.ProbeBatch(
        keys, n, [&](size_t i, uint64_t payload) { emit(i, payload); },
        options_.probe_group_size);
  }

  batch->AdoptRows(&out);
}

}  // namespace hwstar::stream
