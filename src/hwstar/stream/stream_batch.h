#ifndef HWSTAR_STREAM_STREAM_BATCH_H_
#define HWSTAR_STREAM_STREAM_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace hwstar::stream {

/// A columnar micro-batch: the unit of streaming work. Three parallel
/// arrays (key, value, event timestamp) instead of a row struct, for the
/// same reason the batch engine is columnar — the join operator hands
/// `keys` straight to the ops batched probe kernels, and the window
/// operator scans `event_ts` as a dense array. Batches are value types
/// that move through the pipeline; operators rewrite them in place or
/// swap in a scratch batch.
struct StreamBatch {
  std::vector<uint64_t> keys;
  std::vector<int64_t> values;
  std::vector<uint64_t> event_ts;

  /// Watermark in effect *after* this batch: the pipeline promises that
  /// no later batch carries a record with event_ts < watermark (records
  /// that break the promise are late and get dropped). 0 = no watermark
  /// yet; kFlushWatermark closes every open window.
  uint64_t watermark = 0;

  /// Steady-clock nanoseconds at pipeline ingest (set by the pump); the
  /// epoch for the emission-latency histogram.
  uint64_t ingest_ns = 0;

  static constexpr uint64_t kFlushWatermark = ~uint64_t{0};

  size_t size() const { return keys.size(); }
  bool empty() const { return keys.empty(); }

  void Clear() {
    keys.clear();
    values.clear();
    event_ts.clear();
  }

  void Reserve(size_t n) {
    keys.reserve(n);
    values.reserve(n);
    event_ts.reserve(n);
  }

  void Append(uint64_t key, int64_t value, uint64_t ts) {
    keys.push_back(key);
    values.push_back(value);
    event_ts.push_back(ts);
  }

  /// Swaps row storage with `other`, keeping this batch's watermark and
  /// ingest stamp (the operator-scratch idiom: transform into a scratch
  /// batch, then adopt its rows).
  void AdoptRows(StreamBatch* other) {
    keys.swap(other->keys);
    values.swap(other->values);
    event_ts.swap(other->event_ts);
  }
};

}  // namespace hwstar::stream

#endif  // HWSTAR_STREAM_STREAM_BATCH_H_
