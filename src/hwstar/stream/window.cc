#include "hwstar/stream/window.h"

#include <algorithm>

#include "hwstar/common/macros.h"

namespace hwstar::stream {

WindowAggregator::WindowAggregator(WindowSpec spec) : spec_(spec) {
  HWSTAR_CHECK(spec.size > 0);
  HWSTAR_CHECK(spec.effective_slide() > 0);
  HWSTAR_CHECK(spec.effective_slide() <= spec.size);
}

void WindowAggregator::Bind(uint32_t partitions) {
  HWSTAR_CHECK(partitions > 0);
  states_ = std::vector<PartitionState>(partitions);
}

size_t WindowAggregator::OpenWindows(uint32_t partition) const {
  return states_[partition].windows.size();
}

void WindowAggregator::OnBatch(uint32_t partition, const StreamBatch& batch,
                               std::vector<WindowResult>* out,
                               uint64_t* late_dropped) {
  HWSTAR_CHECK(partition < states_.size());
  PartitionState& st = states_[partition];
  const uint64_t slide = spec_.effective_slide();

  uint64_t late = 0;
  const size_t n = batch.size();
  for (size_t i = 0; i < n; ++i) {
    const uint64_t ts = batch.event_ts[i];
    // Late = behind the watermark established by *earlier* batches; the
    // watermark this batch carries only takes effect below.
    if (st.watermark > 0 && ts < st.watermark) {
      ++late;
      continue;
    }
    for (uint64_t start = spec_.FirstStart(ts); start <= ts; start += slide) {
      Partial& partial = st.windows[start][batch.keys[i]];
      partial.sum += batch.values[i];
      partial.count += 1;
    }
  }
  if (late_dropped != nullptr) *late_dropped = late;

  if (batch.watermark > st.watermark) st.watermark = batch.watermark;

  // Emit every window the watermark closed, ascending by start; keys are
  // sorted so emission order is deterministic (the bit-identity tests
  // compare against an offline computation directly).
  const bool flush = st.watermark == StreamBatch::kFlushWatermark;
  std::vector<std::pair<uint64_t, Partial>> sorted;
  while (!st.windows.empty()) {
    const auto it = st.windows.begin();
    const uint64_t end = it->first + spec_.size;
    if (!flush && (st.watermark == 0 || end > st.watermark)) break;
    sorted.assign(it->second.begin(), it->second.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [key, partial] : sorted) {
      out->push_back({it->first, end, key, partial.sum, partial.count});
    }
    st.windows.erase(it);
  }
}

}  // namespace hwstar::stream
