#ifndef HWSTAR_STREAM_WINDOW_H_
#define HWSTAR_STREAM_WINDOW_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "hwstar/mem/aligned.h"
#include "hwstar/stream/stream_batch.h"

namespace hwstar::stream {

/// An event-time window shape: tumbling when slide == size (or 0), sliding
/// when slide < size. Window instances start at multiples of the slide and
/// span [start, start + size).
struct WindowSpec {
  uint64_t size = 0;
  uint64_t slide = 0;  ///< 0 = tumbling (slide == size)

  static WindowSpec Tumbling(uint64_t size) { return {size, size}; }
  static WindowSpec Sliding(uint64_t size, uint64_t slide) {
    return {size, slide};
  }

  uint64_t effective_slide() const { return slide == 0 ? size : slide; }
  bool tumbling() const { return effective_slide() == size; }

  /// The lowest window start covering `ts`; iterate starts upward by
  /// effective_slide() while start <= ts to visit every covering window.
  uint64_t FirstStart(uint64_t ts) const {
    if (ts < size) return 0;
    const uint64_t s = effective_slide();
    return ((ts - size) / s + 1) * s;
  }
};

/// One closed window's aggregate for one key.
struct WindowResult {
  uint64_t window_start = 0;
  uint64_t window_end = 0;  ///< exclusive: window_start + size
  uint64_t key = 0;
  int64_t sum = 0;
  uint64_t count = 0;

  bool operator==(const WindowResult&) const = default;
};

/// Windowed sum/count aggregation over partitioned per-worker state, with
/// watermark-driven emission. Each pipeline partition owns a disjoint key
/// range (the pipeline partitions by key hash), so a (window, key) pair
/// lives in exactly one partition's state and closing a window never
/// merges across cores — the state-sharding design of the
/// hardware-conscious streaming literature, here also the reason the
/// per-partition state needs no lock. Partition states are cache-line
/// aligned so two workers updating neighboring partitions don't share a
/// line.
///
/// Semantics:
///  - A record is late iff its event time is below the partition's
///    current watermark (the watermark of the previously processed batch;
///    records never compete with the watermark their own batch advances).
///    Late records are counted and dropped.
///  - After a batch's records are folded in, the batch watermark closes
///    every window whose end <= watermark: its per-key aggregates are
///    appended to `out` in ascending (window_start, key) order and the
///    window's state is freed. Windows that saw no records emit nothing —
///    there is no zero-filled emission.
///  - StreamBatch::kFlushWatermark closes all remaining windows (end of a
///    finite stream).
class WindowAggregator {
 public:
  explicit WindowAggregator(WindowSpec spec);

  /// Sizes per-partition state; called by Pipeline::Build.
  void Bind(uint32_t partitions);

  /// Folds one partition sub-batch into the window state, then emits the
  /// windows its watermark closed. `out` is appended to; `late_dropped`
  /// (optional) receives the number of dropped late records.
  void OnBatch(uint32_t partition, const StreamBatch& batch,
               std::vector<WindowResult>* out, uint64_t* late_dropped);

  /// Open (not yet closed) windows in one partition's state.
  size_t OpenWindows(uint32_t partition) const;

  const WindowSpec& spec() const { return spec_; }

 private:
  struct Partial {
    int64_t sum = 0;
    uint64_t count = 0;
  };
  /// Keyed partials per open window, ordered by window start so emission
  /// walks closed windows off the front. Cache-line aligned: partition
  /// states are read-write hot from different workers.
  struct alignas(mem::kCacheLineBytes) PartitionState {
    std::map<uint64_t, std::unordered_map<uint64_t, Partial>> windows;
    uint64_t watermark = 0;
  };

  WindowSpec spec_;
  std::vector<PartitionState> states_;
};

}  // namespace hwstar::stream

#endif  // HWSTAR_STREAM_WINDOW_H_
