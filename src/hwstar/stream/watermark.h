#ifndef HWSTAR_STREAM_WATERMARK_H_
#define HWSTAR_STREAM_WATERMARK_H_

#include <cstdint>

namespace hwstar::stream {

/// Bounded-out-of-orderness watermark generation (the standard heuristic
/// watermark): after seeing a record with event time t, promise that no
/// record older than t - lateness_bound is still in flight. The pump runs
/// one tracker over the whole source stream, so a single watermark is
/// valid for every key partition (each partition sees its sub-batches in
/// pump order).
///
/// The watermark is monotone by construction (max over a growing set),
/// and 0 until the first record clears the bound — "no promise yet", so
/// nothing can be late before then.
class WatermarkTracker {
 public:
  explicit WatermarkTracker(uint64_t lateness_bound)
      : lateness_bound_(lateness_bound) {}

  /// Folds one record's event time into the max.
  void Observe(uint64_t event_ts) {
    if (event_ts > max_event_ts_) max_event_ts_ = event_ts;
  }

  /// Current watermark: max observed event time minus the lateness
  /// bound, saturating at 0 (no watermark).
  uint64_t watermark() const {
    return max_event_ts_ > lateness_bound_ ? max_event_ts_ - lateness_bound_
                                           : 0;
  }

  uint64_t max_event_ts() const { return max_event_ts_; }
  uint64_t lateness_bound() const { return lateness_bound_; }

 private:
  uint64_t lateness_bound_;
  uint64_t max_event_ts_ = 0;
};

}  // namespace hwstar::stream

#endif  // HWSTAR_STREAM_WATERMARK_H_
