#include "hwstar/exec/task_scheduler.h"

namespace hwstar::exec {

TaskScheduler::TaskScheduler(uint32_t num_threads) {
  if (num_threads == 0) {
    unsigned hc = std::thread::hardware_concurrency();
    num_threads = hc == 0 ? 1 : hc;
  }
  workers_.reserve(num_threads);
  for (uint32_t i = 0; i < num_threads; ++i) {
    workers_.push_back(std::make_unique<WorkerState>());
  }
  threads_.reserve(num_threads);
  for (uint32_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

TaskScheduler::~TaskScheduler() {
  shutdown_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(idle_mutex_);
    work_cv_.notify_all();
  }
  for (auto& t : threads_) t.join();
}

void TaskScheduler::Submit(Task task, int preferred_worker) {
  uint32_t target;
  if (preferred_worker >= 0 &&
      static_cast<uint32_t>(preferred_worker) < workers_.size()) {
    target = static_cast<uint32_t>(preferred_worker);
  } else {
    target = rr_.fetch_add(1, std::memory_order_relaxed) %
             static_cast<uint32_t>(workers_.size());
  }
  queue_depth_gauge_.Set(static_cast<int64_t>(
      pending_.fetch_add(1, std::memory_order_acq_rel) + 1));
  {
    std::lock_guard<std::mutex> lock(workers_[target]->mutex);
    workers_[target]->deque.push_back(std::move(task));
  }
  {
    std::lock_guard<std::mutex> lock(idle_mutex_);
    work_cv_.notify_all();
  }
}

bool TaskScheduler::TryRunOne(uint32_t id) {
  WorkerState& self = *workers_[id];
  Task task;
  // Local pop from the back (most recently pushed: cache-warm).
  {
    std::lock_guard<std::mutex> lock(self.mutex);
    if (!self.deque.empty()) {
      task = std::move(self.deque.back());
      self.deque.pop_back();
      self.local_pops.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (!task) {
    // Steal from the front of another worker's deque.
    const uint32_t n = static_cast<uint32_t>(workers_.size());
    for (uint32_t k = 1; k < n && !task; ++k) {
      uint32_t victim = (id + k) % n;
      std::lock_guard<std::mutex> lock(workers_[victim]->mutex);
      if (!workers_[victim]->deque.empty()) {
        task = std::move(workers_[victim]->deque.front());
        workers_[victim]->deque.pop_front();
        self.steals.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (!task) {
      self.failed_steals.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }
  task(id);
  tasks_run_.Inc();
  const uint64_t before = pending_.fetch_sub(1, std::memory_order_acq_rel);
  queue_depth_gauge_.Set(static_cast<int64_t>(before - 1));
  if (before == 1) {
    std::lock_guard<std::mutex> lock(idle_mutex_);
    idle_cv_.notify_all();
  }
  return true;
}

void TaskScheduler::WorkerLoop(uint32_t id) {
  while (!shutdown_.load(std::memory_order_acquire)) {
    if (!TryRunOne(id)) {
      std::unique_lock<std::mutex> lock(idle_mutex_);
      work_cv_.wait_for(lock, std::chrono::milliseconds(1), [this] {
        return shutdown_.load(std::memory_order_acquire) ||
               pending_.load(std::memory_order_acquire) > 0;
      });
    }
  }
}

void TaskScheduler::WaitAll() {
  std::unique_lock<std::mutex> lock(idle_mutex_);
  idle_cv_.wait(lock, [this] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

SchedulerStats TaskScheduler::stats() const {
  SchedulerStats total;
  for (const auto& w : workers_) {
    total.local_pops += w->local_pops.load(std::memory_order_relaxed);
    total.steals += w->steals.load(std::memory_order_relaxed);
    total.failed_steals += w->failed_steals.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace hwstar::exec
