#include "hwstar/exec/affinity.h"

#if defined(__linux__)
#include <sched.h>
#endif

#include <thread>

namespace hwstar::exec {

Status PinCurrentThreadToCore(uint32_t core) {
#if defined(__linux__)
  unsigned hc = std::thread::hardware_concurrency();
  if (hc != 0 && core >= hc) {
    return Status::InvalidArgument("core id out of range");
  }
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(core, &set);
  if (sched_setaffinity(0, sizeof(set), &set) != 0) {
    return Status::Internal("sched_setaffinity failed");
  }
  return Status::OK();
#else
  (void)core;
  return Status::Unimplemented("thread pinning unsupported on this platform");
#endif
}

int CurrentCore() {
#if defined(__linux__)
  return sched_getcpu();
#else
  return -1;
#endif
}

}  // namespace hwstar::exec
