#ifndef HWSTAR_EXEC_EXECUTOR_H_
#define HWSTAR_EXEC_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "hwstar/mem/aligned.h"
#include "hwstar/obs/metric.h"

namespace hwstar::exec {

/// Where the executor's workers found their tasks. `local_pops + steals`
/// equals the number of tasks run; a nonzero steal count under a skewed
/// submission pattern is the load-balancing working.
struct ExecutorStats {
  uint64_t local_pops = 0;     ///< popped from the worker's own deque
  uint64_t steals = 0;         ///< taken from another worker's deque
  uint64_t failed_steals = 0;  ///< full victim scans that found nothing
};

/// Construction knobs for Executor.
struct ExecutorOptions {
  /// Worker count (0 = hardware concurrency).
  uint32_t num_threads = 0;
  /// Pin worker i to logical core (i % cores) as discovered from
  /// hw::Topology. Pinned workers keep their caches warm and give NUMA
  /// first-touch a stable meaning; best-effort (a failed pin is logged
  /// and the worker runs unpinned).
  bool pin_threads = false;
};

/// The one scheduler for all parallel work in hwstar.
///
/// Each worker owns a deque: it pushes and pops at the back (LIFO,
/// cache-warm) and steals from the *front* of a victim's deque (FIFO --
/// the coldest work, and the end the owner is not touching) when its own
/// is empty. This is the scheduling structure of morsel-driven query
/// parallelism (Leis et al.): locality by default, load balance under
/// skew, no global queue lock serializing dispatch.
///
/// On top of the stealing core the Executor carries the production
/// semantics the serving layer depends on: `Submit` fails cleanly once
/// shutdown has begun, `TrySubmit` is the bounded enqueue that svc
/// admission backpressure rests on, `Shutdown` drains accepted tasks
/// before joining, `WaitIdle` blocks until every accepted task has
/// finished, and obs counters/gauges (tasks run, queue depth, local
/// pops, steals) expose the scheduler to registries.
class Executor {
 public:
  using Task = std::function<void(uint32_t worker_id)>;

  /// Spawns `num_threads` workers (0 means hardware concurrency).
  explicit Executor(uint32_t num_threads = 0);
  explicit Executor(const ExecutorOptions& options);

  /// Calls Shutdown().
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Enqueues a task on `preferred_worker`'s deque (round-robin when
  /// negative or out of range); returns immediately. May be called from
  /// any thread, including from inside tasks. Returns false (dropping
  /// the task, with a logged warning) once shutdown has begun, so
  /// callers racing teardown fail cleanly instead of stranding work.
  bool Submit(Task task, int preferred_worker = -1);

  /// Bounded enqueue: fails without blocking when shutdown has begun or
  /// the executor already holds `max_queue_depth` unclaimed tasks
  /// (0 = unbounded). The primitive the svc admission layer builds its
  /// backpressure on.
  bool TrySubmit(Task task, size_t max_queue_depth = 0,
                 int preferred_worker = -1);

  /// Stops accepting new tasks, drains already-accepted ones, and joins
  /// the workers. Idempotent and safe to race with submitters; the
  /// destructor calls it.
  void Shutdown();

  /// Blocks until every accepted task has completed (queues empty and
  /// all workers idle).
  void WaitIdle();

  /// Tasks accepted but not yet claimed by a worker.
  size_t queue_depth() const {
    return QueuedOf(state_.load(std::memory_order_relaxed));
  }

  /// Tasks workers have finished running.
  uint64_t tasks_run() const { return tasks_run_.value(); }

  /// Where tasks were found, aggregated across workers.
  ExecutorStats stats() const;

  uint32_t num_threads() const {
    return static_cast<uint32_t>(threads_.size());
  }

  /// The obs views of the scheduler's counters, for registry
  /// registration.
  const obs::Counter& tasks_run_counter() const { return tasks_run_; }
  const obs::Counter& local_pops_counter() const { return local_pops_; }
  const obs::Counter& steals_counter() const { return steals_; }
  const obs::Gauge& queue_depth_gauge() const { return queue_depth_gauge_; }

 private:
  /// One worker's deque, padded so two workers' locks and queue heads
  /// never share a cache line.
  struct alignas(mem::kCacheLineBytes) WorkerState {
    std::mutex mutex;
    std::deque<Task> deque;
  };

  bool SubmitInternal(Task task, size_t max_queue_depth,
                      int preferred_worker, bool warn_on_shutdown);
  void WorkerLoop(uint32_t id);
  bool TryRunOne(uint32_t id);

  std::vector<std::unique_ptr<WorkerState>> workers_;
  std::vector<std::thread> threads_;

  // The whole lifecycle lives in one word: bits 0-31 count tasks accepted
  // but not yet claimed (drives TrySubmit's bound, the workers' sleep
  // predicate and the shutdown drain check), bits 32-62 tasks accepted
  // but not yet finished (drives WaitIdle), bit 63 is the shutdown flag.
  // Packing buys two things. Every submit, batch claim and batch finish
  // is a single shared RMW -- at fine task granularity the dispatch path
  // is the product, so each saved atomic shows up in E17. And because
  // acceptance and queued++ are the *same* RMW on the same word as the
  // shutdown bit, the drain proof is a one-liner: an accepted task holds
  // queued > 0 from its acceptance until a worker claims it, so a worker
  // that reads (shutdown && queued == 0) in one load has proof the
  // deques it is about to abandon are empty (see WorkerLoop in the .cc).
  static constexpr uint64_t kOneQueued = 1;
  static constexpr uint64_t kOnePending = uint64_t{1} << 32;
  static constexpr uint64_t kShutdownBit = uint64_t{1} << 63;
  static constexpr uint64_t QueuedOf(uint64_t state) {
    return state & 0xffffffffu;
  }
  static constexpr uint64_t PendingOf(uint64_t state) {
    return (state >> 32) & 0x7fffffffu;
  }

  std::atomic<uint64_t> state_{0};  ///< packed queued/pending/shutdown
  // Registration counts for the two condition variables. Sleepers and
  // idle waiters register under wake_mutex_ *before* evaluating their
  // predicate, so the fast paths (Submit, task completion) can skip the
  // wake mutex entirely whenever these read zero -- the common case when
  // the executor is busy.
  std::atomic<uint32_t> sleepers_{0};      ///< workers parked on work_cv_
  std::atomic<uint32_t> idle_waiters_{0};  ///< threads parked in WaitIdle

  std::mutex wake_mutex_;            ///< guards both cv wait predicates
  std::condition_variable work_cv_;  ///< workers sleep here when empty
  std::condition_variable idle_cv_;  ///< WaitIdle sleeps here
  std::mutex join_mutex_;            ///< serializes concurrent Shutdowns

  obs::Counter tasks_run_;
  obs::Counter local_pops_;
  obs::Counter steals_;
  obs::Counter failed_steals_;
  obs::Gauge queue_depth_gauge_;  ///< mirrors queued_, lock-free read
};

}  // namespace hwstar::exec

#endif  // HWSTAR_EXEC_EXECUTOR_H_
