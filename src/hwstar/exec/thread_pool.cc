#include "hwstar/exec/thread_pool.h"

#include "hwstar/common/logging.h"

namespace hwstar::exec {

ThreadPool::ThreadPool(uint32_t num_threads) {
  if (num_threads == 0) {
    unsigned hc = std::thread::hardware_concurrency();
    num_threads = hc == 0 ? 1 : hc;
  }
  threads_.reserve(num_threads);
  for (uint32_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  cv_task_.notify_all();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

bool ThreadPool::Submit(Task task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) {
      HWSTAR_LOG(Warning) << "ThreadPool::Submit after shutdown; task dropped";
      return false;
    }
    queue_.push_back(std::move(task));
    queue_depth_gauge_.Set(static_cast<int64_t>(queue_.size()));
  }
  cv_task_.notify_one();
  return true;
}

bool ThreadPool::TrySubmit(Task task, size_t max_queue_depth) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) return false;
    if (max_queue_depth != 0 && queue_.size() >= max_queue_depth) return false;
    queue_.push_back(std::move(task));
    queue_depth_gauge_.Set(static_cast<int64_t>(queue_.size()));
  }
  cv_task_.notify_one();
  return true;
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void ThreadPool::WorkerLoop(uint32_t id) {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_task_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_gauge_.Set(static_cast<int64_t>(queue_.size()));
      ++active_;
    }
    task(id);
    tasks_run_.Inc();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace hwstar::exec
