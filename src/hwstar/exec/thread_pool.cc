#include "hwstar/exec/thread_pool.h"

namespace hwstar::exec {

ThreadPool::ThreadPool(uint32_t num_threads) {
  if (num_threads == 0) {
    unsigned hc = std::thread::hardware_concurrency();
    num_threads = hc == 0 ? 1 : hc;
  }
  threads_.reserve(num_threads);
  for (uint32_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_task_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(Task task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop(uint32_t id) {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_task_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task(id);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace hwstar::exec
