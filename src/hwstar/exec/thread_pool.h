#ifndef HWSTAR_EXEC_THREAD_POOL_H_
#define HWSTAR_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "hwstar/obs/metric.h"

namespace hwstar::exec {

/// A fixed-size worker pool with a shared FIFO queue. Tasks receive the
/// id of the worker that runs them, which operators use to index
/// per-worker state without sharing (the basic multicore discipline the
/// paper says data processing must adopt).
class ThreadPool {
 public:
  using Task = std::function<void(uint32_t worker_id)>;

  /// Spawns `num_threads` workers (0 means hardware concurrency).
  explicit ThreadPool(uint32_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; returns immediately. Returns false (dropping the
  /// task, with a logged warning) once shutdown has begun, so callers
  /// racing teardown fail cleanly instead of touching a dying queue.
  bool Submit(Task task);

  /// Bounded enqueue: fails without blocking when shutdown has begun or
  /// the queue already holds `max_queue_depth` tasks (0 = unbounded).
  /// The primitive the svc admission layer builds its backpressure on.
  bool TrySubmit(Task task, size_t max_queue_depth = 0);

  /// Stops accepting new tasks, drains already-queued ones, and joins the
  /// workers. Idempotent; the destructor calls it.
  void Shutdown();

  /// Blocks until the queue is empty and all workers are idle.
  void WaitIdle();

  /// Tasks queued but not yet claimed by a worker.
  size_t queue_depth() const;

  /// Tasks a worker has finished running.
  uint64_t tasks_run() const { return tasks_run_.value(); }

  /// The obs views of the counters above, for registry registration.
  const obs::Counter& tasks_run_counter() const { return tasks_run_; }
  const obs::Gauge& queue_depth_gauge() const { return queue_depth_gauge_; }

  uint32_t num_threads() const { return static_cast<uint32_t>(threads_.size()); }

 private:
  void WorkerLoop(uint32_t id);

  std::vector<std::thread> threads_;
  std::deque<Task> queue_;
  mutable std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  uint32_t active_ = 0;
  bool shutdown_ = false;
  obs::Counter tasks_run_;
  obs::Gauge queue_depth_gauge_;  ///< mirrors queue_.size(), lock-free read
};

}  // namespace hwstar::exec

#endif  // HWSTAR_EXEC_THREAD_POOL_H_
