#ifndef HWSTAR_EXEC_MORSEL_H_
#define HWSTAR_EXEC_MORSEL_H_

#include <atomic>
#include <cstdint>
#include <functional>

#include "hwstar/exec/executor.h"

namespace hwstar::exec {

/// Spec default for rows per morsel, shared by every morsel-driven entry
/// point (MorselDispenser, engine::ExecuteParallel, ops::ParallelSum).
/// Chosen as the largest power of two under the ~100K tuples Leis et al.
/// recommend: at 2^16 rows a morsel of 8-byte values is 512 KiB, so the
/// dispenser's shared fetch_add and the per-morsel dispatch amortize to
/// well under 0.1% of the morsel's work, while a 16M-row input still
/// splits into 256 morsels -- plenty of elasticity for rebalancing under
/// skew or interference. The *live* default is the tune::MorselRows knob
/// (DefaultMorselRows below); this constant is its spec default.
inline constexpr uint64_t kDefaultMorselRows = uint64_t{1} << 16;

/// The process-wide rows-per-morsel default: the tune::MorselRows knob,
/// published by hw::MachineModel::ApplyAll and nudgeable at runtime.
/// Callers that pass morsel_size = 0 to MorselDispenser /
/// ParallelForMorsels get this value, read at dispenser construction.
uint64_t DefaultMorselRows();

/// A half-open range of row indices handed to one worker at a time.
struct Morsel {
  uint64_t begin = 0;
  uint64_t end = 0;
  uint64_t size() const { return end - begin; }
};

/// Atomic-counter morsel dispenser over [0, total): workers grab the next
/// `morsel_size` rows until the input is exhausted. Dynamic scheduling at
/// morsel granularity absorbs both data skew and interference from
/// co-running work -- the elasticity argument of morsel-driven parallelism.
class MorselDispenser {
 public:
  /// morsel_size 0 reads the tune::MorselRows knob (DefaultMorselRows).
  MorselDispenser(uint64_t total, uint64_t morsel_size = 0)
      : total_(total),
        morsel_size_(morsel_size == 0 ? DefaultMorselRows() : morsel_size) {}

  /// Grabs the next morsel; returns false when the input is exhausted.
  bool Next(Morsel* out) {
    // Relaxed-load fast path: once the input is exhausted, idle workers
    // polling Next would otherwise keep fetch_add-ing and bounce the
    // counter's cache line between cores for no work. A plain load keeps
    // the line shared. (The RMW below still decides ownership; two
    // workers passing the check race to it safely.)
    if (next_.load(std::memory_order_relaxed) >= total_) return false;
    uint64_t begin = next_.fetch_add(morsel_size_, std::memory_order_relaxed);
    if (begin >= total_) return false;
    out->begin = begin;
    uint64_t end = begin + morsel_size_;
    out->end = end > total_ ? total_ : end;
    return true;
  }

  uint64_t total() const { return total_; }
  uint64_t morsel_size() const { return morsel_size_; }

 private:
  uint64_t total_;
  uint64_t morsel_size_;
  std::atomic<uint64_t> next_{0};
};

/// Runs `body(worker_id, morsel)` over [0, total) on the executor,
/// morsel-driven; blocks until done. One task is submitted per worker;
/// each loops on the shared dispenser.
void ParallelForMorsels(Executor* executor, uint64_t total,
                        uint64_t morsel_size,
                        const std::function<void(uint32_t, Morsel)>& body);

/// Static range split: divides [0, total) into exactly num_threads
/// contiguous chunks (the hardware-oblivious baseline scheduling; suffers
/// under skew and interference).
void ParallelForStatic(Executor* executor, uint64_t total,
                       const std::function<void(uint32_t, Morsel)>& body);

}  // namespace hwstar::exec

#endif  // HWSTAR_EXEC_MORSEL_H_
