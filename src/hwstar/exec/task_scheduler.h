#ifndef HWSTAR_EXEC_TASK_SCHEDULER_H_
#define HWSTAR_EXEC_TASK_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "hwstar/obs/metric.h"

namespace hwstar::exec {

/// Scheduler statistics: how often work was run locally vs. stolen.
struct SchedulerStats {
  uint64_t local_pops = 0;
  uint64_t steals = 0;
  uint64_t failed_steals = 0;
};

/// A work-stealing task scheduler: each worker owns a deque, pushes and
/// pops at its own end (LIFO, cache-warm), and steals from victims' fronts
/// (FIFO, coldest work) when empty. This is the scheduling structure behind
/// morsel-driven query parallelism: locality by default, load balance under
/// skew.
class TaskScheduler {
 public:
  using Task = std::function<void(uint32_t worker_id)>;

  explicit TaskScheduler(uint32_t num_threads = 0);
  ~TaskScheduler();

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  /// Enqueues a task on the queue of `preferred_worker` (round-robin when
  /// negative). May be called from any thread, including from inside tasks.
  void Submit(Task task, int preferred_worker = -1);

  /// Blocks until every submitted task has completed.
  void WaitAll();

  uint32_t num_threads() const { return static_cast<uint32_t>(threads_.size()); }

  /// Aggregated across workers.
  SchedulerStats stats() const;

  /// Tasks submitted but not yet completed (queued + running).
  uint64_t queue_depth() const {
    return pending_.load(std::memory_order_relaxed);
  }

  /// Tasks workers have finished running (local pops + steals).
  uint64_t tasks_run() const { return tasks_run_.value(); }

  /// The obs views of the counters above, for registry registration.
  const obs::Counter& tasks_run_counter() const { return tasks_run_; }
  const obs::Gauge& queue_depth_gauge() const { return queue_depth_gauge_; }

 private:
  struct WorkerState {
    std::deque<Task> deque;
    std::mutex mutex;
    // Relaxed atomics: stats() may run concurrently with workers.
    std::atomic<uint64_t> local_pops{0};
    std::atomic<uint64_t> steals{0};
    std::atomic<uint64_t> failed_steals{0};
  };

  void WorkerLoop(uint32_t id);
  bool TryRunOne(uint32_t id);

  std::vector<std::unique_ptr<WorkerState>> workers_;
  std::vector<std::thread> threads_;
  std::atomic<uint64_t> pending_{0};
  std::atomic<uint32_t> rr_{0};
  std::atomic<bool> shutdown_{false};
  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
  std::condition_variable work_cv_;
  obs::Counter tasks_run_;
  obs::Gauge queue_depth_gauge_;  ///< mirrors pending_, for registries
};

}  // namespace hwstar::exec

#endif  // HWSTAR_EXEC_TASK_SCHEDULER_H_
