#ifndef HWSTAR_EXEC_AFFINITY_H_
#define HWSTAR_EXEC_AFFINITY_H_

#include <cstdint>

#include "hwstar/common/status.h"

namespace hwstar::exec {

/// Pins the calling thread to the given logical CPU. Returns
/// Unimplemented on platforms without sched_setaffinity and
/// InvalidArgument when the CPU id is out of range.
Status PinCurrentThreadToCore(uint32_t core);

/// Returns the CPU the calling thread last ran on, or -1 when unknown.
int CurrentCore();

}  // namespace hwstar::exec

#endif  // HWSTAR_EXEC_AFFINITY_H_
