#include "hwstar/exec/morsel.h"

#include "hwstar/tune/tunable.h"

namespace hwstar::exec {

uint64_t DefaultMorselRows() { return tune::MorselRows().Get(); }

void ParallelForMorsels(Executor* executor, uint64_t total,
                        uint64_t morsel_size,
                        const std::function<void(uint32_t, Morsel)>& body) {
  MorselDispenser dispenser(total, morsel_size);
  const uint32_t n = executor->num_threads();
  for (uint32_t t = 0; t < n; ++t) {
    executor->Submit(
        [&dispenser, &body](uint32_t worker_id) {
          Morsel m;
          while (dispenser.Next(&m)) body(worker_id, m);
        },
        /*preferred_worker=*/static_cast<int>(t));
  }
  executor->WaitIdle();
}

void ParallelForStatic(Executor* executor, uint64_t total,
                       const std::function<void(uint32_t, Morsel)>& body) {
  const uint32_t n = executor->num_threads();
  const uint64_t chunk = (total + n - 1) / n;
  for (uint32_t t = 0; t < n; ++t) {
    uint64_t begin = static_cast<uint64_t>(t) * chunk;
    if (begin >= total) break;
    uint64_t end = begin + chunk > total ? total : begin + chunk;
    executor->Submit(
        [&body, begin, end](uint32_t worker_id) {
          body(worker_id, Morsel{begin, end});
        },
        /*preferred_worker=*/static_cast<int>(t));
  }
  executor->WaitIdle();
}

}  // namespace hwstar::exec
