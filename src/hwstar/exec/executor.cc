#include "hwstar/exec/executor.h"

#include <algorithm>

#include "hwstar/common/logging.h"
#include "hwstar/exec/affinity.h"
#include "hwstar/hw/topology.h"

namespace hwstar::exec {

// Shutdown/submit drain
// ---------------------
// Submit and Shutdown never share a lock; "no accepted task is stranded"
// falls out of state_'s packing (see the header). Acceptance *is* the
// queued++ -- one RMW on the same word that carries the shutdown bit --
// so there is no window where a task has been accepted but is invisible
// to the drain check:
//
//   Submit:   state_ += queued+pending (observes the shutdown bit in the
//             returned value; rolls back and fails if it was set)
//   Shutdown: state_ |= shutdown bit, wake workers, join
//   Worker:   exit only on a single load showing shutdown AND queued == 0
//
// queued is incremented at acceptance and decremented only after a
// worker claims the task from a deque, so queued > 0 covers the entire
// accepted-but-not-yet-pushed window; a worker that reads queued == 0
// with the shutdown bit set has proof the deques are empty, and any
// still-running tasks were claimed by workers that will re-check before
// exiting.

Executor::Executor(uint32_t num_threads)
    : Executor(ExecutorOptions{.num_threads = num_threads}) {}

Executor::Executor(const ExecutorOptions& options) {
  uint32_t num_threads = options.num_threads;
  if (num_threads == 0) {
    unsigned hc = std::thread::hardware_concurrency();
    num_threads = hc == 0 ? 1 : hc;
  }
  uint32_t num_cores = 0;
  if (options.pin_threads) {
    num_cores = hw::DiscoverTopology().logical_cores;
    if (num_cores == 0) num_cores = 1;
  }
  workers_.reserve(num_threads);
  for (uint32_t i = 0; i < num_threads; ++i) {
    workers_.push_back(std::make_unique<WorkerState>());
  }
  threads_.reserve(num_threads);
  for (uint32_t i = 0; i < num_threads; ++i) {
    const int pin_core =
        options.pin_threads ? static_cast<int>(i % num_cores) : -1;
    threads_.emplace_back([this, i, pin_core] {
      if (pin_core >= 0) {
        Status s = PinCurrentThreadToCore(static_cast<uint32_t>(pin_core));
        if (!s.ok()) {
          HWSTAR_LOG(Warning) << "Executor worker " << i << " pin to core "
                              << pin_core << " failed: " << s.ToString();
        }
      }
      WorkerLoop(i);
    });
  }
}

Executor::~Executor() { Shutdown(); }

void Executor::Shutdown() {
  std::lock_guard<std::mutex> join_lock(join_mutex_);
  state_.fetch_or(kShutdownBit);
  { std::lock_guard<std::mutex> lock(wake_mutex_); }
  work_cv_.notify_all();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

bool Executor::Submit(Task task, int preferred_worker) {
  return SubmitInternal(std::move(task), /*max_queue_depth=*/0,
                        preferred_worker, /*warn_on_shutdown=*/true);
}

bool Executor::TrySubmit(Task task, size_t max_queue_depth,
                         int preferred_worker) {
  return SubmitInternal(std::move(task), max_queue_depth, preferred_worker,
                        /*warn_on_shutdown=*/false);
}

bool Executor::SubmitInternal(Task task, size_t max_queue_depth,
                              int preferred_worker, bool warn_on_shutdown) {
  uint64_t prev_queued;
  if (max_queue_depth != 0) {
    // CAS loop so the bound is exact under concurrent TrySubmits (a
    // blind fetch_add could transiently overshoot and fail a sibling);
    // shutdown and over-bound fail without ever modifying state_.
    uint64_t cur = state_.load();
    do {
      if ((cur & kShutdownBit) != 0 || QueuedOf(cur) >= max_queue_depth) {
        return false;
      }
    } while (!state_.compare_exchange_weak(cur, cur + kOneQueued +
                                                    kOnePending));
    queue_depth_gauge_.Set(static_cast<int64_t>(QueuedOf(cur)) + 1);
    prev_queued = QueuedOf(cur);
  } else {
    const uint64_t prev = state_.fetch_add(kOneQueued + kOnePending);
    if ((prev & kShutdownBit) != 0) {
      // Lost the race with Shutdown: undo the acceptance. The phantom
      // counts only ever delay a drain or WaitIdle, never unblock one
      // early, except at the pending 1 -> 0 edge -- which this rollback
      // may be the one to cross, so it runs the same idle wake as task
      // completion.
      const uint64_t before = state_.fetch_sub(kOneQueued + kOnePending);
      if (PendingOf(before) == 1 && idle_waiters_.load() != 0) {
        { std::lock_guard<std::mutex> lock(wake_mutex_); }
        idle_cv_.notify_all();
      }
      if (warn_on_shutdown) {
        HWSTAR_LOG(Warning)
            << "Executor::Submit after shutdown; task dropped";
      }
      return false;
    }
    queue_depth_gauge_.Set(static_cast<int64_t>(QueuedOf(prev)) + 1);
    prev_queued = QueuedOf(prev);
  }

  uint32_t target;
  if (preferred_worker >= 0 &&
      static_cast<uint32_t>(preferred_worker) < workers_.size()) {
    target = static_cast<uint32_t>(preferred_worker);
  } else {
    // Per-thread cursor: round-robin distribution without a shared RMW
    // on every submit. Seeded from the thread id so distinct submitters
    // start at different workers.
    static thread_local uint32_t rr_cursor = static_cast<uint32_t>(
        std::hash<std::thread::id>{}(std::this_thread::get_id()));
    target = rr_cursor++ % static_cast<uint32_t>(workers_.size());
  }
  {
    std::lock_guard<std::mutex> lock(workers_[target]->mutex);
    workers_[target]->deque.push_back(std::move(task));
  }
  // Edge-triggered wake: only the submit that turned the queue nonempty
  // notifies, and only when a worker is (or is about to be) asleep.
  // Liveness: a worker registers in sleepers_ under wake_mutex_ *before*
  // it evaluates the wait predicate, so in the seq_cst total order either
  // our queued++ is visible to its predicate (it will not sleep) or its
  // sleepers_++ is visible here (we will wake it); a non-edge submit saw
  // an unclaimed task already in the counter, which guarantees some
  // worker is awake or being woken, and awake workers propagate wakes to
  // siblings while surplus remains (see TryRunOne). The empty critical
  // section closes the registered-but-not-yet-waiting window. In the
  // steady busy state Submit touches no wake state at all.
  if (prev_queued == 0 && sleepers_.load() != 0) {
    { std::lock_guard<std::mutex> lock(wake_mutex_); }
    work_cv_.notify_one();
  }
  return true;
}

bool Executor::TryRunOne(uint32_t id) {
  // Up to kLocalBatch tasks are claimed from the worker's own deque under
  // one lock acquisition, and the bookkeeping atomics (state_, counters)
  // are amortized across the batch -- at fine task granularity the
  // per-task scheduler cost is what separates this design from a central
  // queue. Steals take half the victim's deque (capped at kLocalBatch)
  // from the front: the coldest work, enough to halve the imbalance in
  // one trip, and the rest stays behind for other thieves. At most
  // kLocalBatch claimed-but-unrun tasks per worker are invisible to
  // thieves at any moment.
  constexpr size_t kLocalBatch = 8;
  WorkerState& self = *workers_[id];
  Task tasks[kLocalBatch];
  size_t count = 0;
  bool stolen = false;
  // Local pop from the back (most recently pushed: cache-warm).
  {
    std::lock_guard<std::mutex> lock(self.mutex);
    while (count < kLocalBatch && !self.deque.empty()) {
      tasks[count++] = std::move(self.deque.back());
      self.deque.pop_back();
    }
  }
  if (count == 0) {
    const uint32_t n = static_cast<uint32_t>(workers_.size());
    for (uint32_t k = 1; k < n && count == 0; ++k) {
      const uint32_t victim = (id + k) % n;
      std::lock_guard<std::mutex> lock(workers_[victim]->mutex);
      std::deque<Task>& dq = workers_[victim]->deque;
      const size_t take = std::min((dq.size() + 1) / 2, kLocalBatch);
      for (size_t i = 0; i < take; ++i) {
        tasks[count++] = std::move(dq.front());
        dq.pop_front();
      }
      stolen = take != 0;
    }
    if (count == 0) {
      failed_steals_.Inc();
      return false;
    }
  }
  {
    const uint64_t prev = state_.fetch_sub(count * kOneQueued);
    queue_depth_gauge_.Set(static_cast<int64_t>(QueuedOf(prev) - count));
    // Wake propagation: submits past the empty->nonempty edge do not
    // notify, so a worker that claims a batch and sees surplus left
    // behind recruits one more sleeper. Each recruit repeats the check,
    // fanning out until the backlog or the sleepers run out.
    if (QueuedOf(prev) - count > 0 && sleepers_.load() != 0) {
      { std::lock_guard<std::mutex> lock(wake_mutex_); }
      work_cv_.notify_one();
    }
  }
  if (stolen) {
    steals_.Add(count);
  } else {
    local_pops_.Add(count);
  }

  for (size_t i = 0; i < count; ++i) tasks[i](id);
  tasks_run_.Add(count);
  // The pending half drops only after the whole batch ran, so WaitIdle
  // can return late by a batch but never early.
  const uint64_t prev = state_.fetch_sub(count * kOnePending);
  if (PendingOf(prev) == count && idle_waiters_.load() != 0) {
    // Last task out wakes WaitIdle (same registration protocol as the
    // submit/sleep pair: waiters appear in idle_waiters_ before they
    // read pending_, so this check and their predicate cannot both miss).
    { std::lock_guard<std::mutex> lock(wake_mutex_); }
    idle_cv_.notify_all();
  }
  return true;
}

void Executor::WorkerLoop(uint32_t id) {
  for (;;) {
    if (TryRunOne(id)) continue;
    const uint64_t s = state_.load();
    if ((s & kShutdownBit) != 0) {
      // Drain: shutdown flag and queued count arrive in one load, so
      // queued == 0 here proves no accepted task is still unclaimed
      // (see the drain comment at the top).
      if (QueuedOf(s) == 0) return;
      std::this_thread::yield();
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    sleepers_.fetch_add(1);
    work_cv_.wait(lock, [this] {
      const uint64_t cur = state_.load(std::memory_order_relaxed);
      return (cur & kShutdownBit) != 0 || QueuedOf(cur) > 0;
    });
    sleepers_.fetch_sub(1);
  }
}

void Executor::WaitIdle() {
  std::unique_lock<std::mutex> lock(wake_mutex_);
  idle_waiters_.fetch_add(1);
  idle_cv_.wait(lock, [this] { return PendingOf(state_.load()) == 0; });
  idle_waiters_.fetch_sub(1);
}

ExecutorStats Executor::stats() const {
  ExecutorStats s;
  s.local_pops = local_pops_.value();
  s.steals = steals_.value();
  s.failed_steals = failed_steals_.value();
  return s;
}

}  // namespace hwstar::exec
