#include "hwstar/obs/metric.h"

#include <bit>
#include <thread>

namespace hwstar::obs {

Counter::Counter(uint32_t shards) {
  if (shards == 0) {
    const unsigned hc = std::thread::hardware_concurrency();
    shards = hc == 0 ? 1 : (hc > 16 ? 16 : static_cast<uint32_t>(hc));
  }
  if (shards > 1) {
    shards = uint32_t{1} << (32 - std::countl_zero(shards - 1));
  }
  shard_mask_ = shards - 1;
  shards_ = std::make_unique<Shard[]>(shards);
}

}  // namespace hwstar::obs
