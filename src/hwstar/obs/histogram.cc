#include "hwstar/obs/histogram.h"

#include <bit>
#include <cmath>
#include <thread>

#include "hwstar/common/macros.h"

namespace hwstar::obs {

namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

uint32_t NextPow2(uint32_t v) {
  if (v <= 1) return 1;
  return uint32_t{1} << (32 - std::countl_zero(v - 1));
}

}  // namespace

uint32_t ThreadShardIndex() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t index = next.fetch_add(1, kRelaxed);
  return index;
}

size_t NearestRankIndex(double q, size_t n) {
  HWSTAR_CHECK(n > 0);
  if (q <= 0.0) return 0;
  const double rank = std::ceil(q * static_cast<double>(n));
  if (rank >= static_cast<double>(n)) return n - 1;
  return static_cast<size_t>(rank) - 1;
}

uint32_t BucketLayout::BucketIndex(uint64_t value) const {
  const uint32_t sub_buckets = uint32_t{1} << sub_bucket_bits;
  if (value < sub_buckets) return static_cast<uint32_t>(value);
  const uint64_t clamp = (uint64_t{1} << max_value_bits) - 1;
  if (value > clamp) value = clamp;
  const uint32_t exp = 63 - static_cast<uint32_t>(std::countl_zero(value));
  const uint32_t sub = static_cast<uint32_t>(value >> (exp - sub_bucket_bits)) &
                       (sub_buckets - 1);
  return ((exp - sub_bucket_bits + 1) << sub_bucket_bits) + sub;
}

uint64_t BucketLayout::BucketLowerBound(uint32_t index) const {
  const uint32_t sub_buckets = uint32_t{1} << sub_bucket_bits;
  if (index < sub_buckets) return index;
  const uint32_t group = index >> sub_bucket_bits;
  const uint32_t sub = index & (sub_buckets - 1);
  const uint32_t exp = group + sub_bucket_bits - 1;
  const uint64_t width = uint64_t{1} << (exp - sub_bucket_bits);
  return (uint64_t{1} << exp) + sub * width;
}

uint64_t BucketLayout::BucketWidth(uint32_t index) const {
  const uint32_t sub_buckets = uint32_t{1} << sub_bucket_bits;
  if (index < sub_buckets) return 1;
  const uint32_t exp = (index >> sub_bucket_bits) + sub_bucket_bits - 1;
  return uint64_t{1} << (exp - sub_bucket_bits);
}

uint64_t BucketLayout::BucketValue(uint32_t index) const {
  const uint64_t width = BucketWidth(index);
  return BucketLowerBound(index) + (width - 1) / 2;
}

HistogramSnapshot::HistogramSnapshot(BucketLayout layout,
                                     std::vector<uint64_t> buckets,
                                     uint64_t sum, uint64_t max)
    : layout_(layout), buckets_(std::move(buckets)), sum_(sum), max_(max) {
  HWSTAR_CHECK(buckets_.size() == layout_.num_buckets());
  for (uint64_t c : buckets_) count_ += c;
}

uint64_t HistogramSnapshot::Quantile(double q) const {
  if (count_ == 0) return 0;
  const size_t rank = NearestRankIndex(q, count_);
  uint64_t cumulative = 0;
  for (uint32_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (cumulative > rank) {
      // The exact maximum is tracked; never report a midpoint above it
      // (matters for the top bucket and for q = 1.0).
      const uint64_t v = layout_.BucketValue(i);
      return v > max_ ? max_ : v;
    }
  }
  return max_;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (other.count_ == 0) return;
  if (buckets_.empty()) {
    *this = other;
    return;
  }
  HWSTAR_CHECK(layout_ == other.layout_);
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.max_ > max_) max_ = other.max_;
}

Histogram::Histogram(HistogramOptions options) : options_(options) {
  HWSTAR_CHECK(options_.layout.sub_bucket_bits >= 1 &&
               options_.layout.sub_bucket_bits < 16);
  HWSTAR_CHECK(options_.layout.max_value_bits > options_.layout.sub_bucket_bits &&
               options_.layout.max_value_bits <= 63);
  uint32_t shards = options_.shards;
  if (shards == 0) {
    const unsigned hc = std::thread::hardware_concurrency();
    shards = hc == 0 ? 1 : (hc > 16 ? 16 : static_cast<uint32_t>(hc));
  }
  shards = NextPow2(shards);
  shard_mask_ = shards - 1;
  shards_ = std::make_unique<Shard[]>(shards);
}

Histogram::~Histogram() {
  for (uint32_t s = 0; s <= shard_mask_; ++s) {
    delete[] shards_[s].buckets.load(std::memory_order_acquire);
  }
}

std::atomic<uint64_t>* Histogram::TouchShard(Shard* shard) {
  const uint32_t n = options_.layout.num_buckets();
  // Value-initialized: every counter starts at 0. Publication is
  // release/acquire on the pointer, so racing recorders either install
  // theirs or adopt the winner's fully-zeroed array.
  auto* fresh = new std::atomic<uint64_t>[n]();
  std::atomic<uint64_t>* expected = nullptr;
  if (shard->buckets.compare_exchange_strong(expected, fresh,
                                             std::memory_order_release,
                                             std::memory_order_acquire)) {
    return fresh;
  }
  delete[] fresh;
  return expected;
}

void Histogram::Record(uint64_t value) {
  Shard& shard = shards_[ThreadShardIndex() & shard_mask_];
  std::atomic<uint64_t>* buckets =
      shard.buckets.load(std::memory_order_acquire);
  if (HWSTAR_UNLIKELY(buckets == nullptr)) buckets = TouchShard(&shard);
  buckets[options_.layout.BucketIndex(value)].fetch_add(1, kRelaxed);
  shard.count.fetch_add(1, kRelaxed);
  shard.sum.fetch_add(value, kRelaxed);
  uint64_t seen = shard.max.load(kRelaxed);
  while (value > seen &&
         !shard.max.compare_exchange_weak(seen, value, kRelaxed, kRelaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  const uint32_t n = options_.layout.num_buckets();
  std::vector<uint64_t> merged(n, 0);
  uint64_t sum = 0;
  uint64_t max = 0;
  for (uint32_t s = 0; s <= shard_mask_; ++s) {
    const Shard& shard = shards_[s];
    const std::atomic<uint64_t>* buckets =
        shard.buckets.load(std::memory_order_acquire);
    if (buckets == nullptr) continue;
    for (uint32_t i = 0; i < n; ++i) merged[i] += buckets[i].load(kRelaxed);
    sum += shard.sum.load(kRelaxed);
    const uint64_t m = shard.max.load(kRelaxed);
    if (m > max) max = m;
  }
  return HistogramSnapshot(options_.layout, std::move(merged), sum, max);
}

uint64_t Histogram::count() const {
  uint64_t total = 0;
  for (uint32_t s = 0; s <= shard_mask_; ++s) {
    total += shards_[s].count.load(kRelaxed);
  }
  return total;
}

size_t Histogram::allocated_bytes() const {
  size_t bytes = (shard_mask_ + 1) * sizeof(Shard);
  for (uint32_t s = 0; s <= shard_mask_; ++s) {
    if (shards_[s].buckets.load(std::memory_order_acquire) != nullptr) {
      bytes += options_.layout.num_buckets() * sizeof(std::atomic<uint64_t>);
    }
  }
  return bytes;
}

}  // namespace hwstar::obs
