#include "hwstar/obs/registry.h"

#include <cstdio>

#include "hwstar/common/macros.h"

namespace hwstar::obs {

Registry::Entry* Registry::Lookup(const std::string& name, Kind kind) {
  auto it = entries_.find(name);
  if (it == entries_.end()) return nullptr;
  HWSTAR_CHECK(it->second.kind == kind);  // one name, one kind
  return &it->second;
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* e = Lookup(name, Kind::kCounter)) {
    HWSTAR_CHECK(e->owned != nullptr);  // can't hand out a borrowed metric
    return const_cast<Counter*>(e->counter);
  }
  auto owned = std::make_shared<Counter>();
  Counter* raw = owned.get();
  entries_[name] = Entry{Kind::kCounter, raw, nullptr, nullptr,
                         std::move(owned)};
  return raw;
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* e = Lookup(name, Kind::kGauge)) {
    HWSTAR_CHECK(e->owned != nullptr);
    return const_cast<Gauge*>(e->gauge);
  }
  auto owned = std::make_shared<Gauge>();
  Gauge* raw = owned.get();
  entries_[name] = Entry{Kind::kGauge, nullptr, raw, nullptr,
                         std::move(owned)};
  return raw;
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  HistogramOptions options) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* e = Lookup(name, Kind::kHistogram)) {
    HWSTAR_CHECK(e->owned != nullptr);
    return const_cast<Histogram*>(e->histogram);
  }
  auto owned = std::make_shared<Histogram>(options);
  Histogram* raw = owned.get();
  entries_[name] = Entry{Kind::kHistogram, nullptr, nullptr, raw,
                         std::move(owned)};
  return raw;
}

void Registry::RegisterCounter(const std::string& name,
                               const Counter* counter) {
  std::lock_guard<std::mutex> lock(mutex_);
  HWSTAR_CHECK(entries_.find(name) == entries_.end());
  entries_[name] = Entry{Kind::kCounter, counter, nullptr, nullptr, nullptr};
}

void Registry::RegisterGauge(const std::string& name, const Gauge* gauge) {
  std::lock_guard<std::mutex> lock(mutex_);
  HWSTAR_CHECK(entries_.find(name) == entries_.end());
  entries_[name] = Entry{Kind::kGauge, nullptr, gauge, nullptr, nullptr};
}

void Registry::RegisterHistogram(const std::string& name,
                                 const Histogram* histogram) {
  std::lock_guard<std::mutex> lock(mutex_);
  HWSTAR_CHECK(entries_.find(name) == entries_.end());
  entries_[name] =
      Entry{Kind::kHistogram, nullptr, nullptr, histogram, nullptr};
}

std::string Registry::DumpText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  char buf[256];
  for (const auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        std::snprintf(buf, sizeof(buf), "counter %s %llu\n", name.c_str(),
                      static_cast<unsigned long long>(entry.counter->value()));
        break;
      case Kind::kGauge:
        std::snprintf(buf, sizeof(buf), "gauge %s %lld\n", name.c_str(),
                      static_cast<long long>(entry.gauge->value()));
        break;
      case Kind::kHistogram: {
        const HistogramSnapshot snap = entry.histogram->Snapshot();
        std::snprintf(
            buf, sizeof(buf),
            "histogram %s count=%llu p50=%llu p90=%llu p99=%llu max=%llu "
            "mean=%.1f\n",
            name.c_str(), static_cast<unsigned long long>(snap.count()),
            static_cast<unsigned long long>(snap.Quantile(0.50)),
            static_cast<unsigned long long>(snap.Quantile(0.90)),
            static_cast<unsigned long long>(snap.Quantile(0.99)),
            static_cast<unsigned long long>(snap.max()), snap.mean());
        break;
      }
    }
    out += buf;
  }
  return out;
}

size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace hwstar::obs
