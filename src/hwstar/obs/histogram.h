#ifndef HWSTAR_OBS_HISTOGRAM_H_
#define HWSTAR_OBS_HISTOGRAM_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "hwstar/mem/aligned.h"

namespace hwstar::obs {

/// Stable per-thread index used to pick a shard in sharded metrics.
/// Assigned densely in first-call order, so the first K threads of a
/// process land on K distinct shards (modulo the shard mask).
uint32_t ThreadShardIndex();

/// The pinned nearest-rank quantile definition used across the library:
/// the 0-based index of the q-quantile of n ordered samples is
/// ceil(q*n) - 1 (clamped to [0, n-1]). For n = 100, q = 0.99 this is
/// index 98 — the 99th smallest sample, not the max.
size_t NearestRankIndex(double q, size_t n);

/// Geometry of a log-linear (HDR-style) bucket scheme: values below
/// 2^sub_bucket_bits get exact unit-width buckets; above that, each
/// octave [2^e, 2^(e+1)) is split into 2^sub_bucket_bits equal-width
/// sub-buckets, so bucket width / value <= 2^-sub_bucket_bits everywhere.
/// Values at or above 2^max_value_bits clamp into the top bucket.
struct BucketLayout {
  uint32_t sub_bucket_bits = 6;   ///< 64 sub-buckets/octave -> <=1.6% width
  uint32_t max_value_bits = 42;   ///< ~4.4e12; ~73 minutes in nanoseconds

  uint32_t num_buckets() const {
    return (max_value_bits - sub_bucket_bits + 1) << sub_bucket_bits;
  }
  uint32_t BucketIndex(uint64_t value) const;
  /// Inclusive lower bound of bucket `index`.
  uint64_t BucketLowerBound(uint32_t index) const;
  uint64_t BucketWidth(uint32_t index) const;
  /// The value reported for samples in bucket `index`: the bucket
  /// midpoint, so the reporting error is at most half the bucket width
  /// (<= 2^-(sub_bucket_bits+1) relative, ~0.8% at the default).
  uint64_t BucketValue(uint32_t index) const;

  bool operator==(const BucketLayout& o) const {
    return sub_bucket_bits == o.sub_bucket_bits &&
           max_value_bits == o.max_value_bits;
  }
};

struct HistogramOptions {
  BucketLayout layout;
  /// Recording shards; rounded up to a power of two. 0 = auto (enough
  /// for the machine's hardware threads, capped at 16).
  uint32_t shards = 0;
};

/// A mergeable point-in-time view of a Histogram: the merged bucket
/// counts plus exact sum and max. Quantiles use the pinned nearest-rank
/// definition resolved to the bucket midpoint, so they are within the
/// layout's bucket error bound of the exact nearest-rank value.
class HistogramSnapshot {
 public:
  HistogramSnapshot() = default;
  HistogramSnapshot(BucketLayout layout, std::vector<uint64_t> buckets,
                    uint64_t sum, uint64_t max);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0
               ? 0.0
               : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  /// Nearest-rank quantile (see NearestRankIndex), resolved to the bucket
  /// midpoint. Returns 0 when empty.
  uint64_t Quantile(double q) const;

  /// Adds `other`'s counts into this snapshot (layouts must match; merging
  /// into a default-constructed snapshot adopts the other's layout).
  void Merge(const HistogramSnapshot& other);

  const BucketLayout& layout() const { return layout_; }

 private:
  BucketLayout layout_;
  std::vector<uint64_t> buckets_;  ///< empty when count_ == 0
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
};

/// A bounded, lock-free latency/size histogram. Memory is fixed by the
/// bucket layout and shard count — independent of how many samples are
/// recorded — and Record is a handful of relaxed atomic bumps on a
/// per-thread shard: no mutex, no allocation after a shard's first
/// touch, no false sharing (shard headers are cache-line padded and each
/// shard's bucket array is a separate cache-line-aligned allocation).
///
/// Snapshot() merges the shards off the hot path into a HistogramSnapshot;
/// concurrent Record calls may or may not be included (each sample is
/// recorded exactly once, so quiesced totals are exact). Thread-safe.
class Histogram {
 public:
  explicit Histogram(HistogramOptions options = {});
  ~Histogram();

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t value);

  HistogramSnapshot Snapshot() const;

  /// Total samples recorded (sum over shards; exact once quiesced).
  uint64_t count() const;

  /// Bytes currently allocated for counters (headers + the bucket arrays
  /// of shards that have been touched). Grows only when a new shard sees
  /// its first sample — never with the sample count.
  size_t allocated_bytes() const;

  const BucketLayout& layout() const { return options_.layout; }
  uint32_t shards() const { return shard_mask_ + 1; }

 private:
  struct alignas(mem::kCacheLineBytes) Shard {
    /// Lazily allocated [num_buckets] counter array (acquire/release so
    /// a reader who sees the pointer sees zeroed counters).
    std::atomic<std::atomic<uint64_t>*> buckets{nullptr};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> max{0};
  };

  std::atomic<uint64_t>* TouchShard(Shard* shard);

  HistogramOptions options_;
  uint32_t shard_mask_;
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace hwstar::obs

#endif  // HWSTAR_OBS_HISTOGRAM_H_
