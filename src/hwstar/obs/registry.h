#ifndef HWSTAR_OBS_REGISTRY_H_
#define HWSTAR_OBS_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "hwstar/obs/histogram.h"
#include "hwstar/obs/metric.h"

namespace hwstar::obs {

/// A named catalogue of counters, gauges and histograms with a plain-text
/// exposition (DumpText). Two usage modes:
///
///  - Owning: GetCounter/GetGauge/GetHistogram create-or-return a metric
///    the registry owns; pointers stay valid for the registry's lifetime.
///  - Borrowed: Register* attaches a metric some component already owns
///    (a thread pool's task counter, a recorder's histograms) so it shows
///    up in DumpText without copying values around. The component must
///    outlive the registry's use of it.
///
/// Registration and dumping take a mutex; they are off the hot path — the
/// metrics themselves stay lock-free. Re-registering a name with a
/// different kind is a programmer error (checked).
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name,
                          HistogramOptions options = {});

  void RegisterCounter(const std::string& name, const Counter* counter);
  void RegisterGauge(const std::string& name, const Gauge* gauge);
  void RegisterHistogram(const std::string& name, const Histogram* histogram);

  /// One line per metric, sorted by name:
  ///   counter <name> <value>
  ///   gauge <name> <value>
  ///   histogram <name> count=N p50=... p90=... p99=... max=... mean=...
  std::string DumpText() const;

  size_t size() const;

 private:
  enum class Kind : uint8_t { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* histogram = nullptr;
    std::shared_ptr<void> owned;  ///< null for borrowed registrations
  };

  Entry* Lookup(const std::string& name, Kind kind);

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
};

}  // namespace hwstar::obs

#endif  // HWSTAR_OBS_REGISTRY_H_
