#ifndef HWSTAR_OBS_METRIC_H_
#define HWSTAR_OBS_METRIC_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "hwstar/mem/aligned.h"
#include "hwstar/obs/histogram.h"

namespace hwstar::obs {

/// A monotonic counter sharded across cache-line-padded slots, so hot
/// concurrent increments don't ping-pong one line between cores (the
/// per-thread split counter of McKenney's counting chapter). Add is a
/// single relaxed fetch_add on the caller's shard; value() sums shards
/// and is exact once writers quiesce. Thread-safe.
class Counter {
 public:
  /// `shards` is rounded up to a power of two; 0 = auto (enough for the
  /// machine's hardware threads, capped at 16).
  explicit Counter(uint32_t shards = 0);

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t delta) {
    shards_[ThreadShardIndex() & shard_mask_].v.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void Inc() { Add(1); }

  uint64_t value() const {
    uint64_t total = 0;
    for (uint32_t s = 0; s <= shard_mask_; ++s) {
      total += shards_[s].v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(mem::kCacheLineBytes) Shard {
    std::atomic<uint64_t> v{0};
  };
  uint32_t shard_mask_;
  std::unique_ptr<Shard[]> shards_;
};

/// A last-writer-wins instantaneous value (queue depth, in-flight count).
/// Single atomic: gauges are written at state transitions, not per-sample,
/// so sharding would only blur the point-in-time reading. Thread-safe.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

}  // namespace hwstar::obs

#endif  // HWSTAR_OBS_METRIC_H_
