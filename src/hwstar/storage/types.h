#ifndef HWSTAR_STORAGE_TYPES_H_
#define HWSTAR_STORAGE_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "hwstar/common/status.h"

namespace hwstar::storage {

/// Value types supported by the storage layer.
enum class TypeId : uint8_t {
  kInt32 = 0,
  kInt64 = 1,
  kFloat64 = 2,
  kString = 3,  ///< variable length; only columnar layouts support it
};

/// Byte width of a fixed-width type; 0 for variable-length types.
uint32_t TypeWidth(TypeId type);

/// True for types with a compile-time-known width.
inline bool IsFixedWidth(TypeId type) { return type != TypeId::kString; }

/// Stable lower-case type name.
const char* TypeName(TypeId type);

/// One column of a schema.
struct Field {
  std::string name;
  TypeId type = TypeId::kInt64;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type;
  }
};

/// An ordered list of named, typed columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the field with the given name, or -1.
  int FieldIndex(const std::string& name) const;

  /// Sum of fixed widths; errors if any field is variable-length.
  Result<uint32_t> FixedRowWidth() const;

  /// Byte offset of field i in a packed fixed-width row (no padding);
  /// errors if any preceding field is variable-length.
  Result<uint32_t> FixedOffset(size_t i) const;

  /// "name:type, ..." rendering.
  std::string ToString() const;

  bool operator==(const Schema& other) const {
    return fields_ == other.fields_;
  }

 private:
  std::vector<Field> fields_;
};

}  // namespace hwstar::storage

#endif  // HWSTAR_STORAGE_TYPES_H_
