#ifndef HWSTAR_STORAGE_COLUMN_H_
#define HWSTAR_STORAGE_COLUMN_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "hwstar/common/macros.h"
#include "hwstar/common/status.h"
#include "hwstar/storage/types.h"

namespace hwstar::storage {

/// A type-erased, append-only column. Fixed-width types live in one
/// contiguous, cache-friendly buffer (the property every columnar argument
/// in the paper rests on); strings are dictionary-encoded on ingest
/// (codes + distinct values), so scans over string columns also run over a
/// dense int32 array.
class Column {
 public:
  explicit Column(TypeId type);

  TypeId type() const { return type_; }
  uint64_t size() const { return size_; }

  /// Appends one value; the overload must match the column type
  /// (checked with HWSTAR_CHECK, as a type confusion is a programmer
  /// error).
  void AppendInt32(int32_t v);
  void AppendInt64(int64_t v);
  void AppendFloat64(double v);
  void AppendString(const std::string& v);

  /// Reserves space for n values.
  void Reserve(uint64_t n);

  /// Typed reads (bounds-unchecked fast path; DCHECKed).
  int32_t GetInt32(uint64_t row) const {
    HWSTAR_DCHECK(type_ == TypeId::kInt32 && row < size_);
    return i32_[row];
  }
  int64_t GetInt64(uint64_t row) const {
    HWSTAR_DCHECK(type_ == TypeId::kInt64 && row < size_);
    return i64_[row];
  }
  double GetFloat64(uint64_t row) const {
    HWSTAR_DCHECK(type_ == TypeId::kFloat64 && row < size_);
    return f64_[row];
  }
  const std::string& GetString(uint64_t row) const {
    HWSTAR_DCHECK(type_ == TypeId::kString && row < size_);
    return dict_values_[static_cast<size_t>(codes_[row])];
  }
  /// Dictionary code of a string row.
  int32_t GetStringCode(uint64_t row) const {
    HWSTAR_DCHECK(type_ == TypeId::kString && row < size_);
    return codes_[row];
  }

  /// Dense typed views (valid only for the matching type).
  std::span<const int32_t> Int32Span() const { return i32_; }
  std::span<const int64_t> Int64Span() const { return i64_; }
  std::span<const double> Float64Span() const { return f64_; }
  std::span<const int32_t> StringCodeSpan() const { return codes_; }
  const std::vector<std::string>& dictionary() const { return dict_values_; }

  /// Mutable raw data pointer for fixed-width columns (used by bulk
  /// loaders); nullptr for strings.
  void* MutableData();
  const void* Data() const;

  /// Bytes of the dense value buffer (excluding the string dictionary).
  uint64_t DataBytes() const;

 private:
  TypeId type_;
  uint64_t size_ = 0;
  std::vector<int32_t> i32_;
  std::vector<int64_t> i64_;
  std::vector<double> f64_;
  std::vector<int32_t> codes_;               // string rows -> dict index
  std::vector<std::string> dict_values_;     // distinct strings
  // Insert-ordered dictionary lookup; linear probe map from hash -> index.
  std::vector<std::pair<uint64_t, int32_t>> dict_index_;
  int32_t DictLookupOrInsert(const std::string& v);
};

}  // namespace hwstar::storage

#endif  // HWSTAR_STORAGE_COLUMN_H_
