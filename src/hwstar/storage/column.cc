#include "hwstar/storage/column.h"

#include "hwstar/common/hash.h"

namespace hwstar::storage {

Column::Column(TypeId type) : type_(type) {}

void Column::Reserve(uint64_t n) {
  switch (type_) {
    case TypeId::kInt32:
      i32_.reserve(n);
      break;
    case TypeId::kInt64:
      i64_.reserve(n);
      break;
    case TypeId::kFloat64:
      f64_.reserve(n);
      break;
    case TypeId::kString:
      codes_.reserve(n);
      break;
  }
}

void Column::AppendInt32(int32_t v) {
  HWSTAR_CHECK(type_ == TypeId::kInt32);
  i32_.push_back(v);
  ++size_;
}

void Column::AppendInt64(int64_t v) {
  HWSTAR_CHECK(type_ == TypeId::kInt64);
  i64_.push_back(v);
  ++size_;
}

void Column::AppendFloat64(double v) {
  HWSTAR_CHECK(type_ == TypeId::kFloat64);
  f64_.push_back(v);
  ++size_;
}

int32_t Column::DictLookupOrInsert(const std::string& v) {
  const uint64_t h = HashString(v);
  for (const auto& [hash, idx] : dict_index_) {
    if (hash == h && dict_values_[static_cast<size_t>(idx)] == v) return idx;
  }
  int32_t idx = static_cast<int32_t>(dict_values_.size());
  dict_values_.push_back(v);
  dict_index_.emplace_back(h, idx);
  return idx;
}

void Column::AppendString(const std::string& v) {
  HWSTAR_CHECK(type_ == TypeId::kString);
  codes_.push_back(DictLookupOrInsert(v));
  ++size_;
}

void* Column::MutableData() {
  switch (type_) {
    case TypeId::kInt32:
      return i32_.data();
    case TypeId::kInt64:
      return i64_.data();
    case TypeId::kFloat64:
      return f64_.data();
    case TypeId::kString:
      return nullptr;
  }
  return nullptr;
}

const void* Column::Data() const {
  return const_cast<Column*>(this)->MutableData();
}

uint64_t Column::DataBytes() const {
  switch (type_) {
    case TypeId::kInt32:
      return i32_.size() * sizeof(int32_t);
    case TypeId::kInt64:
      return i64_.size() * sizeof(int64_t);
    case TypeId::kFloat64:
      return f64_.size() * sizeof(double);
    case TypeId::kString:
      return codes_.size() * sizeof(int32_t);
  }
  return 0;
}

}  // namespace hwstar::storage
