#include "hwstar/storage/column_store.h"

namespace hwstar::storage {

Result<ColumnStore> ColumnStore::FromTable(const Table& table) {
  ColumnStore store(table.schema());
  const Schema& schema = table.schema();
  const uint64_t rows = table.num_rows();
  store.int_cols_.resize(schema.num_fields());
  store.float_cols_.resize(schema.num_fields());
  for (size_t f = 0; f < schema.num_fields(); ++f) {
    const Column& col = table.column(f);
    switch (schema.field(f).type) {
      case TypeId::kInt32: {
        auto& out = store.int_cols_[f];
        out.resize(rows);
        auto in = col.Int32Span();
        for (uint64_t r = 0; r < rows; ++r) out[r] = in[r];
        break;
      }
      case TypeId::kInt64: {
        auto& out = store.int_cols_[f];
        auto in = col.Int64Span();
        out.assign(in.begin(), in.end());
        break;
      }
      case TypeId::kFloat64: {
        auto& out = store.float_cols_[f];
        auto in = col.Float64Span();
        out.assign(in.begin(), in.end());
        break;
      }
      case TypeId::kString: {
        auto& out = store.int_cols_[f];
        out.resize(rows);
        auto in = col.StringCodeSpan();
        for (uint64_t r = 0; r < rows; ++r) out[r] = in[r];
        break;
      }
    }
  }
  store.num_rows_ = rows;
  return store;
}

uint64_t ColumnStore::DataBytes() const {
  uint64_t total = 0;
  for (const auto& c : int_cols_) total += c.size() * sizeof(int64_t);
  for (const auto& c : float_cols_) total += c.size() * sizeof(double);
  return total;
}

}  // namespace hwstar::storage
