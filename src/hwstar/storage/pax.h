#ifndef HWSTAR_STORAGE_PAX_H_
#define HWSTAR_STORAGE_PAX_H_

#include <cstdint>
#include <vector>

#include "hwstar/common/status.h"
#include "hwstar/storage/table.h"

namespace hwstar::storage {

/// PAX (Partition Attributes Across) layout: rows are grouped into fixed
/// capacity pages; *within* a page each attribute occupies its own
/// minipage. Inter-page access behaves like a row store (one page holds
/// whole rows), intra-page access behaves like a column store (a scan of
/// one attribute touches contiguous bytes). The hybrid point in experiment
/// E3's layout spectrum.
class PaxStore {
 public:
  /// Builds the store from a fixed-width table. `rows_per_page` defaults
  /// to the count that fits a 64KB page for the given schema.
  static Result<PaxStore> FromTable(const Table& table,
                                    uint32_t rows_per_page = 0);

  const Schema& schema() const { return schema_; }
  uint64_t num_rows() const { return num_rows_; }
  uint32_t rows_per_page() const { return rows_per_page_; }
  uint64_t num_pages() const { return pages_.size(); }

  /// Reads field `f` of global row `r` (widened).
  int64_t GetInt(uint64_t r, size_t f) const;
  double GetFloat(uint64_t r, size_t f) const;

  /// Pointer to the minipage of field `f` in page `p` (values are widened
  /// to 8 bytes, so the minipage is an int64_t/double array of up to
  /// rows_per_page entries).
  const int64_t* IntMinipage(uint64_t p, size_t f) const;
  const double* FloatMinipage(uint64_t p, size_t f) const;

  /// Mutable raw minipage access (loaders / fault-injection tests).
  /// Invalidates the page's sealed checksum until SealChecksums().
  uint64_t* MutableMinipage(uint64_t p, size_t f);

  /// Rows resident in page p (== rows_per_page except the last page).
  uint32_t RowsInPage(uint64_t p) const;

  /// CRC32 of page p's contents. Sealing checksums at load time lets
  /// scans detect silent corruption -- cheap insurance once pages live on
  /// commodity DRAM/flash, per the paper's reliability-at-scale point.
  uint32_t PageChecksum(uint64_t p) const;

  /// Seals checksums for all pages (called by FromTable; call again after
  /// any direct mutation).
  void SealChecksums();

  /// Verifies every page against its sealed checksum; IoError names the
  /// first corrupted page.
  Status VerifyChecksums() const;

  uint64_t DataBytes() const;

 private:
  PaxStore(Schema schema, uint32_t rows_per_page)
      : schema_(std::move(schema)), rows_per_page_(rows_per_page) {}

  Schema schema_;
  uint32_t rows_per_page_;
  uint64_t num_rows_ = 0;
  // One buffer per page: minipages concatenated field by field, each of
  // rows_per_page_ 8-byte slots.
  std::vector<std::vector<uint64_t>> pages_;
  std::vector<uint32_t> checksums_;
};

}  // namespace hwstar::storage

#endif  // HWSTAR_STORAGE_PAX_H_
