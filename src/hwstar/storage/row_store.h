#ifndef HWSTAR_STORAGE_ROW_STORE_H_
#define HWSTAR_STORAGE_ROW_STORE_H_

#include <cstdint>
#include <vector>

#include "hwstar/common/status.h"
#include "hwstar/storage/table.h"
#include "hwstar/storage/types.h"

namespace hwstar::storage {

/// N-ary storage model (NSM): fixed-width tuples packed contiguously. The
/// layout OLTP engines favour -- touching one row touches one cache line
/// region -- and the layout that wastes bandwidth for analytical scans,
/// which is the row-vs-column trade-off experiment E3 measures.
class RowStore {
 public:
  /// Builds an empty store; the schema must be all fixed-width.
  static Result<RowStore> Create(const Schema& schema);

  /// Materializes a Table into row format (schema must be fixed-width).
  static Result<RowStore> FromTable(const Table& table);

  const Schema& schema() const { return schema_; }
  uint64_t num_rows() const { return num_rows_; }
  uint32_t row_width() const { return row_width_; }

  /// Raw base pointer of the packed rows.
  const uint8_t* data() const { return data_.data(); }
  uint8_t* mutable_data() { return data_.data(); }

  /// Pointer to row `r`.
  const uint8_t* RowPtr(uint64_t r) const {
    return data_.data() + r * row_width_;
  }

  /// Reads field `f` of row `r` as the widened int64/double value.
  int64_t GetInt(uint64_t r, size_t f) const;
  double GetFloat(uint64_t r, size_t f) const;

  /// Appends one row given widened values (ints for integer fields,
  /// doubles for float fields, matched by position).
  void AppendRow(const std::vector<int64_t>& ints,
                 const std::vector<double>& floats);

  /// Field byte offsets within a row.
  const std::vector<uint32_t>& offsets() const { return offsets_; }

  uint64_t DataBytes() const { return data_.size(); }

 private:
  RowStore(Schema schema, uint32_t row_width, std::vector<uint32_t> offsets)
      : schema_(std::move(schema)),
        row_width_(row_width),
        offsets_(std::move(offsets)) {}

  Schema schema_;
  uint32_t row_width_;
  std::vector<uint32_t> offsets_;
  std::vector<uint8_t> data_;
  uint64_t num_rows_ = 0;
};

}  // namespace hwstar::storage

#endif  // HWSTAR_STORAGE_ROW_STORE_H_
