#ifndef HWSTAR_STORAGE_COMPRESSION_H_
#define HWSTAR_STORAGE_COMPRESSION_H_

#include <cstdint>
#include <vector>

#include "hwstar/common/status.h"

namespace hwstar::storage {

/// Lightweight columnar compression schemes. The point of these encodings
/// in a main-memory engine is not disk savings but *memory bandwidth*: a
/// scan over bit-packed or RLE data moves fewer bytes per tuple, and since
/// analytical scans are bandwidth-bound (the paper's "memory wall"), fewer
/// bytes is directly more tuples per second. Each scheme provides
/// encode/decode plus an encoded-size accessor so benches can report the
/// bytes-moved reduction.

/// Dictionary coding: values -> dense int32 codes + sorted-by-first-seen
/// dictionary.
struct DictEncoded {
  std::vector<int64_t> dictionary;  ///< code -> value
  std::vector<int32_t> codes;       ///< one per input value
  uint64_t EncodedBytes() const {
    return dictionary.size() * sizeof(int64_t) +
           codes.size() * sizeof(int32_t);
  }
};

/// Encodes `values` with a dictionary; code assignment is first-seen order.
DictEncoded DictEncode(const std::vector<int64_t>& values);
/// Inverse of DictEncode.
std::vector<int64_t> DictDecode(const DictEncoded& enc);

/// Run-length coding: (value, run length) pairs.
struct RleEncoded {
  std::vector<int64_t> values;
  std::vector<uint32_t> lengths;
  uint64_t EncodedBytes() const {
    return values.size() * sizeof(int64_t) +
           lengths.size() * sizeof(uint32_t);
  }
};

/// Encodes `values` as maximal runs.
RleEncoded RleEncode(const std::vector<int64_t>& values);
/// Inverse of RleEncode.
std::vector<int64_t> RleDecode(const RleEncoded& enc);

/// Bit-packing of non-negative values into the minimal uniform bit width.
struct BitPacked {
  uint32_t bit_width = 0;
  uint64_t count = 0;
  std::vector<uint64_t> words;
  uint64_t EncodedBytes() const { return words.size() * sizeof(uint64_t); }
};

/// Packs values (all must be >= 0) at the minimal width that fits the
/// maximum; width 0 (all zeros) stores no words.
Result<BitPacked> BitPack(const std::vector<int64_t>& values);
/// Inverse of BitPack.
std::vector<int64_t> BitUnpack(const BitPacked& enc);

/// Random access into a packed vector without full decode.
int64_t BitPackedGet(const BitPacked& enc, uint64_t index);

/// Delta coding: first value + successive differences (frame of reference
/// for sorted data; combine with BitPack for the classic sorted-key
/// compression).
struct DeltaEncoded {
  int64_t first = 0;
  std::vector<int64_t> deltas;  ///< size = n-1 (empty for n<=1)
  uint64_t count = 0;
};

/// Encodes successive differences.
DeltaEncoded DeltaEncode(const std::vector<int64_t>& values);
/// Inverse of DeltaEncode.
std::vector<int64_t> DeltaDecode(const DeltaEncoded& enc);

/// Sums all values directly on RLE-encoded data (value * run_length),
/// demonstrating operating on compressed data without decoding.
int64_t RleSum(const RleEncoded& enc);

}  // namespace hwstar::storage

#endif  // HWSTAR_STORAGE_COMPRESSION_H_
