#include "hwstar/storage/pax.h"

#include <cstring>

#include "hwstar/common/hash.h"
#include "hwstar/common/macros.h"

namespace hwstar::storage {

Result<PaxStore> PaxStore::FromTable(const Table& table,
                                     uint32_t rows_per_page) {
  const Schema& schema = table.schema();
  auto width = schema.FixedRowWidth();
  if (!width.ok()) return width.status();
  if (rows_per_page == 0) {
    // Widened rows (8 bytes per field) into a 64KB page.
    uint64_t widened = schema.num_fields() * 8;
    rows_per_page = static_cast<uint32_t>((64 * 1024) / (widened == 0 ? 8 : widened));
    if (rows_per_page == 0) rows_per_page = 1;
  }
  PaxStore store(schema, rows_per_page);
  const uint64_t rows = table.num_rows();
  const size_t nf = schema.num_fields();
  const uint64_t npages = (rows + rows_per_page - 1) / rows_per_page;
  store.pages_.resize(npages);
  for (uint64_t p = 0; p < npages; ++p) {
    store.pages_[p].assign(static_cast<size_t>(rows_per_page) * nf, 0);
    const uint64_t base = p * rows_per_page;
    const uint32_t in_page = static_cast<uint32_t>(
        (base + rows_per_page <= rows) ? rows_per_page : rows - base);
    for (size_t f = 0; f < nf; ++f) {
      uint64_t* mini = store.pages_[p].data() + f * rows_per_page;
      const Column& col = table.column(f);
      for (uint32_t i = 0; i < in_page; ++i) {
        const uint64_t r = base + i;
        switch (schema.field(f).type) {
          case TypeId::kInt32:
            mini[i] = static_cast<uint64_t>(
                static_cast<int64_t>(col.GetInt32(r)));
            break;
          case TypeId::kInt64:
            mini[i] = static_cast<uint64_t>(col.GetInt64(r));
            break;
          case TypeId::kFloat64: {
            double v = col.GetFloat64(r);
            uint64_t bits;
            std::memcpy(&bits, &v, sizeof(bits));
            mini[i] = bits;
            break;
          }
          case TypeId::kString:
            return Status::InvalidArgument("PaxStore cannot hold strings");
        }
      }
    }
  }
  store.num_rows_ = rows;
  store.SealChecksums();
  return store;
}

uint32_t PaxStore::RowsInPage(uint64_t p) const {
  const uint64_t base = p * rows_per_page_;
  HWSTAR_DCHECK(base < num_rows_ || (num_rows_ == 0 && p == 0));
  return static_cast<uint32_t>((base + rows_per_page_ <= num_rows_)
                                   ? rows_per_page_
                                   : num_rows_ - base);
}

const int64_t* PaxStore::IntMinipage(uint64_t p, size_t f) const {
  return reinterpret_cast<const int64_t*>(pages_[p].data() +
                                          f * rows_per_page_);
}

const double* PaxStore::FloatMinipage(uint64_t p, size_t f) const {
  return reinterpret_cast<const double*>(pages_[p].data() +
                                         f * rows_per_page_);
}

int64_t PaxStore::GetInt(uint64_t r, size_t f) const {
  HWSTAR_DCHECK(r < num_rows_);
  return IntMinipage(r / rows_per_page_, f)[r % rows_per_page_];
}

double PaxStore::GetFloat(uint64_t r, size_t f) const {
  HWSTAR_DCHECK(r < num_rows_);
  return FloatMinipage(r / rows_per_page_, f)[r % rows_per_page_];
}

uint64_t* PaxStore::MutableMinipage(uint64_t p, size_t f) {
  return pages_[p].data() + f * rows_per_page_;
}

uint32_t PaxStore::PageChecksum(uint64_t p) const {
  return Crc32(pages_[p].data(), pages_[p].size() * sizeof(uint64_t));
}

void PaxStore::SealChecksums() {
  checksums_.resize(pages_.size());
  for (uint64_t p = 0; p < pages_.size(); ++p) {
    checksums_[p] = PageChecksum(p);
  }
}

Status PaxStore::VerifyChecksums() const {
  if (checksums_.size() != pages_.size()) {
    return Status::FailedPrecondition("checksums not sealed");
  }
  for (uint64_t p = 0; p < pages_.size(); ++p) {
    if (PageChecksum(p) != checksums_[p]) {
      return Status::IoError("checksum mismatch on page " + std::to_string(p));
    }
  }
  return Status::OK();
}

uint64_t PaxStore::DataBytes() const {
  uint64_t total = 0;
  for (const auto& p : pages_) total += p.size() * sizeof(uint64_t);
  return total;
}

}  // namespace hwstar::storage
