#include "hwstar/storage/compression.h"

#include <unordered_map>

#include "hwstar/common/bits.h"
#include "hwstar/common/macros.h"

namespace hwstar::storage {

DictEncoded DictEncode(const std::vector<int64_t>& values) {
  DictEncoded out;
  out.codes.reserve(values.size());
  std::unordered_map<int64_t, int32_t> index;
  index.reserve(values.size() / 4 + 8);
  for (int64_t v : values) {
    auto [it, inserted] =
        index.emplace(v, static_cast<int32_t>(out.dictionary.size()));
    if (inserted) out.dictionary.push_back(v);
    out.codes.push_back(it->second);
  }
  return out;
}

std::vector<int64_t> DictDecode(const DictEncoded& enc) {
  std::vector<int64_t> out;
  out.reserve(enc.codes.size());
  for (int32_t c : enc.codes) {
    out.push_back(enc.dictionary[static_cast<size_t>(c)]);
  }
  return out;
}

RleEncoded RleEncode(const std::vector<int64_t>& values) {
  RleEncoded out;
  size_t i = 0;
  while (i < values.size()) {
    int64_t v = values[i];
    uint32_t len = 1;
    while (i + len < values.size() && values[i + len] == v &&
           len < UINT32_MAX) {
      ++len;
    }
    out.values.push_back(v);
    out.lengths.push_back(len);
    i += len;
  }
  return out;
}

std::vector<int64_t> RleDecode(const RleEncoded& enc) {
  std::vector<int64_t> out;
  uint64_t total = 0;
  for (uint32_t l : enc.lengths) total += l;
  out.reserve(total);
  for (size_t i = 0; i < enc.values.size(); ++i) {
    out.insert(out.end(), enc.lengths[i], enc.values[i]);
  }
  return out;
}

Result<BitPacked> BitPack(const std::vector<int64_t>& values) {
  BitPacked out;
  out.count = values.size();
  uint64_t max_v = 0;
  for (int64_t v : values) {
    if (v < 0) return Status::InvalidArgument("BitPack requires values >= 0");
    if (static_cast<uint64_t>(v) > max_v) max_v = static_cast<uint64_t>(v);
  }
  out.bit_width = max_v == 0 ? 0 : bits::Log2Floor(max_v) + 1;
  if (out.bit_width == 0) return out;
  const uint64_t total_bits = out.count * out.bit_width;
  out.words.assign((total_bits + 63) / 64, 0);
  uint64_t bitpos = 0;
  for (int64_t v : values) {
    const uint64_t uv = static_cast<uint64_t>(v);
    const uint64_t word = bitpos / 64;
    const uint32_t off = static_cast<uint32_t>(bitpos % 64);
    out.words[word] |= uv << off;
    if (off + out.bit_width > 64) {
      out.words[word + 1] |= uv >> (64 - off);
    }
    bitpos += out.bit_width;
  }
  return out;
}

int64_t BitPackedGet(const BitPacked& enc, uint64_t index) {
  HWSTAR_DCHECK(index < enc.count);
  if (enc.bit_width == 0) return 0;
  const uint64_t bitpos = index * enc.bit_width;
  const uint64_t word = bitpos / 64;
  const uint32_t off = static_cast<uint32_t>(bitpos % 64);
  uint64_t v = enc.words[word] >> off;
  if (off + enc.bit_width > 64) {
    v |= enc.words[word + 1] << (64 - off);
  }
  const uint64_t mask = enc.bit_width >= 64
                            ? ~uint64_t{0}
                            : (uint64_t{1} << enc.bit_width) - 1;
  return static_cast<int64_t>(v & mask);
}

std::vector<int64_t> BitUnpack(const BitPacked& enc) {
  std::vector<int64_t> out(enc.count, 0);
  if (enc.bit_width == 0) return out;
  for (uint64_t i = 0; i < enc.count; ++i) out[i] = BitPackedGet(enc, i);
  return out;
}

DeltaEncoded DeltaEncode(const std::vector<int64_t>& values) {
  DeltaEncoded out;
  out.count = values.size();
  if (values.empty()) return out;
  out.first = values[0];
  out.deltas.reserve(values.size() - 1);
  for (size_t i = 1; i < values.size(); ++i) {
    out.deltas.push_back(values[i] - values[i - 1]);
  }
  return out;
}

std::vector<int64_t> DeltaDecode(const DeltaEncoded& enc) {
  std::vector<int64_t> out;
  if (enc.count == 0) return out;
  out.reserve(enc.count);
  out.push_back(enc.first);
  int64_t cur = enc.first;
  for (int64_t d : enc.deltas) {
    cur += d;
    out.push_back(cur);
  }
  return out;
}

int64_t RleSum(const RleEncoded& enc) {
  int64_t sum = 0;
  for (size_t i = 0; i < enc.values.size(); ++i) {
    sum += enc.values[i] * static_cast<int64_t>(enc.lengths[i]);
  }
  return sum;
}

}  // namespace hwstar::storage
