#include "hwstar/storage/row_store.h"

#include <cstring>

#include "hwstar/common/macros.h"

namespace hwstar::storage {

Result<RowStore> RowStore::Create(const Schema& schema) {
  auto width = schema.FixedRowWidth();
  if (!width.ok()) return width.status();
  std::vector<uint32_t> offsets(schema.num_fields());
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    auto off = schema.FixedOffset(i);
    if (!off.ok()) return off.status();
    offsets[i] = off.value();
  }
  return RowStore(schema, width.value(), std::move(offsets));
}

Result<RowStore> RowStore::FromTable(const Table& table) {
  auto rs = Create(table.schema());
  if (!rs.ok()) return rs.status();
  RowStore store = std::move(rs).value();
  const Schema& schema = table.schema();
  store.data_.resize(table.num_rows() * store.row_width_);
  for (uint64_t r = 0; r < table.num_rows(); ++r) {
    uint8_t* row = store.data_.data() + r * store.row_width_;
    for (size_t f = 0; f < schema.num_fields(); ++f) {
      const Column& col = table.column(f);
      uint8_t* dst = row + store.offsets_[f];
      switch (schema.field(f).type) {
        case TypeId::kInt32: {
          int32_t v = col.GetInt32(r);
          std::memcpy(dst, &v, sizeof(v));
          break;
        }
        case TypeId::kInt64: {
          int64_t v = col.GetInt64(r);
          std::memcpy(dst, &v, sizeof(v));
          break;
        }
        case TypeId::kFloat64: {
          double v = col.GetFloat64(r);
          std::memcpy(dst, &v, sizeof(v));
          break;
        }
        case TypeId::kString:
          return Status::InvalidArgument("RowStore cannot hold strings");
      }
    }
  }
  store.num_rows_ = table.num_rows();
  return store;
}

int64_t RowStore::GetInt(uint64_t r, size_t f) const {
  HWSTAR_DCHECK(r < num_rows_ && f < schema_.num_fields());
  const uint8_t* p = RowPtr(r) + offsets_[f];
  switch (schema_.field(f).type) {
    case TypeId::kInt32: {
      int32_t v;
      std::memcpy(&v, p, sizeof(v));
      return v;
    }
    case TypeId::kInt64: {
      int64_t v;
      std::memcpy(&v, p, sizeof(v));
      return v;
    }
    default:
      HWSTAR_CHECK(false);
  }
  return 0;
}

double RowStore::GetFloat(uint64_t r, size_t f) const {
  HWSTAR_DCHECK(r < num_rows_ && f < schema_.num_fields());
  HWSTAR_DCHECK(schema_.field(f).type == TypeId::kFloat64);
  const uint8_t* p = RowPtr(r) + offsets_[f];
  double v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void RowStore::AppendRow(const std::vector<int64_t>& ints,
                         const std::vector<double>& floats) {
  size_t int_i = 0, float_i = 0;
  size_t base = data_.size();
  data_.resize(base + row_width_);
  uint8_t* row = data_.data() + base;
  for (size_t f = 0; f < schema_.num_fields(); ++f) {
    uint8_t* dst = row + offsets_[f];
    switch (schema_.field(f).type) {
      case TypeId::kInt32: {
        int32_t v = static_cast<int32_t>(ints[int_i++]);
        std::memcpy(dst, &v, sizeof(v));
        break;
      }
      case TypeId::kInt64: {
        int64_t v = ints[int_i++];
        std::memcpy(dst, &v, sizeof(v));
        break;
      }
      case TypeId::kFloat64: {
        double v = floats[float_i++];
        std::memcpy(dst, &v, sizeof(v));
        break;
      }
      case TypeId::kString:
        HWSTAR_CHECK(false);
    }
  }
  ++num_rows_;
}

}  // namespace hwstar::storage
