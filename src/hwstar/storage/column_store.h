#ifndef HWSTAR_STORAGE_COLUMN_STORE_H_
#define HWSTAR_STORAGE_COLUMN_STORE_H_

#include <cstdint>
#include <vector>

#include "hwstar/common/status.h"
#include "hwstar/storage/table.h"

namespace hwstar::storage {

/// Decomposed storage model (DSM): each column as one dense, independently
/// scannable array. Built from a fixed-width Table; every value is widened
/// to 8 bytes so scan kernels are monomorphic (int64 or double views).
/// Trading a little space for simple, vectorizable kernels is the
/// hardware-conscious choice for analytics.
class ColumnStore {
 public:
  /// Materializes the table column-wise. Strings are stored as their
  /// dictionary codes (widened to int64).
  static Result<ColumnStore> FromTable(const Table& table);

  const Schema& schema() const { return schema_; }
  uint64_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return int_cols_.size(); }

  /// Integer view of column f (valid for int32/int64/string-code columns).
  const std::vector<int64_t>& IntColumn(size_t f) const {
    return int_cols_[f];
  }
  /// Float view of column f (valid for float64 columns).
  const std::vector<double>& FloatColumn(size_t f) const {
    return float_cols_[f];
  }
  /// True when column f is served by the float view.
  bool IsFloat(size_t f) const {
    return schema_.field(f).type == TypeId::kFloat64;
  }

  uint64_t DataBytes() const;

 private:
  explicit ColumnStore(Schema schema) : schema_(std::move(schema)) {}

  Schema schema_;
  uint64_t num_rows_ = 0;
  // Parallel vectors: exactly one of int_cols_[f]/float_cols_[f] is
  // populated per field.
  std::vector<std::vector<int64_t>> int_cols_;
  std::vector<std::vector<double>> float_cols_;
};

}  // namespace hwstar::storage

#endif  // HWSTAR_STORAGE_COLUMN_STORE_H_
