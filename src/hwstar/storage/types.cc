#include "hwstar/storage/types.h"

#include <sstream>

namespace hwstar::storage {

uint32_t TypeWidth(TypeId type) {
  switch (type) {
    case TypeId::kInt32:
      return 4;
    case TypeId::kInt64:
      return 8;
    case TypeId::kFloat64:
      return 8;
    case TypeId::kString:
      return 0;
  }
  return 0;
}

const char* TypeName(TypeId type) {
  switch (type) {
    case TypeId::kInt32:
      return "int32";
    case TypeId::kInt64:
      return "int64";
    case TypeId::kFloat64:
      return "float64";
    case TypeId::kString:
      return "string";
  }
  return "?";
}

int Schema::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Result<uint32_t> Schema::FixedRowWidth() const {
  uint32_t width = 0;
  for (const auto& f : fields_) {
    if (!IsFixedWidth(f.type)) {
      return Status::InvalidArgument("schema has variable-length field: " +
                                     f.name);
    }
    width += TypeWidth(f.type);
  }
  return width;
}

Result<uint32_t> Schema::FixedOffset(size_t i) const {
  if (i >= fields_.size()) {
    return Status::OutOfRange("field index out of range");
  }
  uint32_t off = 0;
  for (size_t k = 0; k < i; ++k) {
    if (!IsFixedWidth(fields_[k].type)) {
      return Status::InvalidArgument("schema has variable-length field: " +
                                     fields_[k].name);
    }
    off += TypeWidth(fields_[k].type);
  }
  return off;
}

std::string Schema::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) os << ", ";
    os << fields_[i].name << ":" << TypeName(fields_[i].type);
  }
  return os.str();
}

}  // namespace hwstar::storage
