#include "hwstar/storage/table.h"

namespace hwstar::storage {

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_fields());
  for (const auto& f : schema_.fields()) {
    columns_.push_back(std::make_unique<Column>(f.type));
  }
}

const Column* Table::ColumnByName(const std::string& name) const {
  int idx = schema_.FieldIndex(name);
  return idx < 0 ? nullptr : columns_[static_cast<size_t>(idx)].get();
}

Status Table::FinishRow() {
  uint64_t expected = num_rows_ + 1;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i]->size() != expected) {
      return Status::FailedPrecondition(
          "column " + schema_.field(i).name + " has " +
          std::to_string(columns_[i]->size()) + " values, expected " +
          std::to_string(expected));
    }
  }
  num_rows_ = expected;
  return Status::OK();
}

Status Table::SetRowCount(uint64_t rows) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i]->size() != rows) {
      return Status::FailedPrecondition(
          "column " + schema_.field(i).name + " has " +
          std::to_string(columns_[i]->size()) + " values, expected " +
          std::to_string(rows));
    }
  }
  num_rows_ = rows;
  return Status::OK();
}

uint64_t Table::DataBytes() const {
  uint64_t total = 0;
  for (const auto& c : columns_) total += c->DataBytes();
  return total;
}

}  // namespace hwstar::storage
