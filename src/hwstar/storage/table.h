#ifndef HWSTAR_STORAGE_TABLE_H_
#define HWSTAR_STORAGE_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hwstar/common/status.h"
#include "hwstar/storage/column.h"
#include "hwstar/storage/types.h"

namespace hwstar::storage {

/// A schema plus one Column per field, all of equal length. Table is the
/// library's logical relation; physical layouts (RowStore, ColumnStore,
/// PaxStore) are built from it.
class Table {
 public:
  explicit Table(Schema schema);

  const Schema& schema() const { return schema_; }
  uint64_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  Column& column(size_t i) { return *columns_[i]; }
  const Column& column(size_t i) const { return *columns_[i]; }

  /// Column by name; nullptr when absent.
  const Column* ColumnByName(const std::string& name) const;

  /// Marks a row complete. Call after appending one value to every column;
  /// verifies all columns have equal length.
  Status FinishRow();

  /// Bulk-sets the row count after direct column loading; verifies
  /// consistency.
  Status SetRowCount(uint64_t rows);

  /// Total bytes of dense column data.
  uint64_t DataBytes() const;

 private:
  Schema schema_;
  std::vector<std::unique_ptr<Column>> columns_;
  uint64_t num_rows_ = 0;
};

}  // namespace hwstar::storage

#endif  // HWSTAR_STORAGE_TABLE_H_
