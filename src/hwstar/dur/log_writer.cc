#include "hwstar/dur/log_writer.h"

#include <chrono>
#include <cstdio>
#include <cstring>

#include "hwstar/common/macros.h"

namespace hwstar::dur {

namespace {

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

constexpr auto kRelaxed = std::memory_order_relaxed;

}  // namespace

std::string LogWriter::SegmentName(const std::string& prefix, uint32_t index) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "-%06u.wal", index);
  return prefix + buf;
}

bool LogWriter::ParseSegmentIndex(const std::string& path, uint32_t* index) {
  // ...<prefix>-NNNNNN.wal
  constexpr size_t kSuffix = 4;   // ".wal"
  constexpr size_t kDigits = 6;
  if (path.size() < kSuffix + kDigits + 1) return false;
  if (path.compare(path.size() - kSuffix, kSuffix, ".wal") != 0) return false;
  const size_t digits_at = path.size() - kSuffix - kDigits;
  if (path[digits_at - 1] != '-') return false;
  uint32_t v = 0;
  for (size_t i = 0; i < kDigits; ++i) {
    const char c = path[digits_at + i];
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint32_t>(c - '0');
  }
  *index = v;
  return true;
}

Result<std::unique_ptr<LogWriter>> LogWriter::Open(FileBackend* backend,
                                                   std::string prefix,
                                                   LogWriterOptions options,
                                                   uint64_t next_lsn,
                                                   uint32_t next_segment) {
  HWSTAR_CHECK(options.buffer_bytes >= 4096);
  auto file = backend->OpenForAppend(SegmentName(prefix, next_segment));
  if (!file.ok()) return file.status();
  return std::unique_ptr<LogWriter>(
      new LogWriter(backend, std::move(prefix), options,
                    next_lsn == 0 ? 1 : next_lsn, next_segment,
                    std::move(file.value())));
}

LogWriter::LogWriter(FileBackend* backend, std::string prefix,
                     LogWriterOptions options, uint64_t next_lsn,
                     uint32_t next_segment,
                     std::unique_ptr<WritableFile> segment)
    : backend_(backend),
      prefix_(std::move(prefix)),
      options_(options),
      segment_(std::move(segment)),
      segment_index_(next_segment),
      next_lsn_(next_lsn),
      durable_lsn_(next_lsn - 1) {
  // 4 KiB alignment: the staging buffers are the write-path source and
  // should respect device block granularity.
  active_.data = mem::MakeAlignedBuffer(options_.buffer_bytes, 4096);
  syncing_.data = mem::MakeAlignedBuffer(options_.buffer_bytes, 4096);
  HWSTAR_CHECK(active_.data != nullptr && syncing_.data != nullptr);
  if (options_.group_commit) {
    syncer_ = std::thread([this] { SyncerLoop(); });
  }
}

LogWriter::~LogWriter() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  if (syncer_.joinable()) syncer_.join();
  if (segment_ != nullptr) (void)segment_->Close();
}

Result<uint64_t> LogWriter::Append(WalRecord record) {
  thread_local std::string scratch;
  scratch.clear();

  std::unique_lock<std::mutex> lock(mutex_);
  if (!poisoned_.ok()) return poisoned_;

  const uint64_t lsn = next_lsn_.fetch_add(1, kRelaxed);
  record.lsn = lsn;
  EncodeWalRecord(record, &scratch);
  HWSTAR_CHECK(scratch.size() <= options_.buffer_bytes);

  if (!options_.group_commit) {
    // Per-op commit: this thread does its own write+sync, serialized by
    // mutex_ — the baseline that pays the device's fixed cost per record.
    const uint64_t io_start = NowNanos();
    Status st = segment_->Append(scratch.data(), scratch.size());
    if (st.ok()) st = segment_->Sync(options_.sync);
    sync_batch_hist_.Record(1);
    sync_latency_hist_.Record(NowNanos() - io_start);
    stat_records_.fetch_add(1, kRelaxed);
    stat_bytes_.fetch_add(scratch.size(), kRelaxed);
    stat_groups_.fetch_add(1, kRelaxed);
    if (!st.ok()) {
      poisoned_ = st;
      return st;
    }
    durable_lsn_.store(lsn);
    return lsn;
  }

  // Group commit: stage and hand off to the syncer. Block only when both
  // buffers are full — the device is saturated and backpressure is the
  // only honest answer.
  space_cv_.wait(lock, [&] {
    return !poisoned_.ok() ||
           active_.used + scratch.size() <= options_.buffer_bytes;
  });
  if (!poisoned_.ok()) return poisoned_;

  if (active_.used == 0) first_pending_nanos_ = NowNanos();
  std::memcpy(active_.data.get() + active_.used, scratch.data(),
              scratch.size());
  active_.used += scratch.size();
  active_.last_lsn = lsn;
  ++active_.records;
  stat_records_.fetch_add(1, kRelaxed);
  lock.unlock();
  work_cv_.notify_one();
  return lsn;
}

Status LogWriter::WaitDurable(uint64_t lsn) {
  if (durable_lsn_.load() >= lsn) return Status::OK();
  std::unique_lock<std::mutex> lock(mutex_);
  durable_cv_.wait(lock, [&] {
    return !poisoned_.ok() || durable_lsn_.load() >= lsn;
  });
  if (durable_lsn_.load() >= lsn) return Status::OK();
  return poisoned_;
}

Result<uint64_t> LogWriter::AppendDurable(WalRecord record) {
  auto lsn = Append(record);
  if (!lsn.ok()) return lsn;
  HWSTAR_RETURN_IF_ERROR(WaitDurable(lsn.value()));
  return lsn;
}

Status LogWriter::FlushBuffer(Buffer* buf) {
  const uint64_t io_start = NowNanos();
  Status st = segment_->Append(buf->data.get(), buf->used);
  if (st.ok()) st = segment_->Sync(options_.sync);
  sync_batch_hist_.Record(buf->records);
  sync_latency_hist_.Record(NowNanos() - io_start);
  stat_bytes_.fetch_add(buf->used, kRelaxed);
  stat_groups_.fetch_add(1, kRelaxed);
  return st;
}

void LogWriter::SyncerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [&] {
      return stop_ || (!rotate_pending_ && active_.used > 0);
    });
    if (active_.used == 0) break;  // stop_ and drained
    if (!poisoned_.ok()) break;

    // Linger for batch-mates: an fsync covering 50 records costs the same
    // as one covering 1, so waiting a bounded moment multiplies commit
    // throughput at the device's latency floor.
    if (!stop_ && options_.fsync_interval_us > 0 &&
        (options_.fsync_every_n == 0 ||
         active_.records < options_.fsync_every_n)) {
      const uint64_t deadline_nanos =
          first_pending_nanos_ + options_.fsync_interval_us * 1000;
      work_cv_.wait_for(
          lock,
          std::chrono::nanoseconds(
              deadline_nanos > NowNanos() ? deadline_nanos - NowNanos() : 0),
          [&] {
            return stop_ || !poisoned_.ok() ||
                   (options_.fsync_every_n != 0 &&
                    active_.records >= options_.fsync_every_n) ||
                   active_.used * 2 >= options_.buffer_bytes;
          });
      if (!poisoned_.ok()) break;
      // The linger released the lock, so a Rotate() may have sealed and
      // flushed active_ itself in the meantime — re-check before
      // swapping (swapping an empty buffer would regress durable_lsn_).
      if (rotate_pending_ || active_.used == 0) continue;
    }

    std::swap(active_, syncing_);
    first_pending_nanos_ = 0;
    const uint64_t target = syncing_.last_lsn;
    io_in_progress_ = true;
    lock.unlock();

    const Status st = FlushBuffer(&syncing_);

    lock.lock();
    io_in_progress_ = false;
    syncing_.used = 0;
    syncing_.records = 0;
    if (!st.ok()) {
      poisoned_ = st;
      durable_cv_.notify_all();
      space_cv_.notify_all();
      break;
    }
    durable_lsn_.store(target);
    durable_cv_.notify_all();
    space_cv_.notify_all();
  }
  // Poisoned or stopping: release anyone still blocked.
  durable_cv_.notify_all();
  space_cv_.notify_all();
}

Status LogWriter::Rotate() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (!poisoned_.ok()) return poisoned_;
  if (options_.group_commit) {
    // Seal at a captured cut rather than waiting for quiescence: under
    // sustained append load active_ may never drain, so waiting for
    // `used == 0` has no forward-progress guarantee. Instead hold off
    // new syncer flushes (rotate_pending_), wait out the at-most-one
    // in-flight flush, then flush whatever is staged right here.
    // Appends arriving after the cut land in the next segment.
    rotate_pending_ = true;
    durable_cv_.wait(lock,
                     [&] { return !poisoned_.ok() || !io_in_progress_; });
    if (!poisoned_.ok()) {
      rotate_pending_ = false;
      work_cv_.notify_all();
      return poisoned_;
    }
    if (active_.used > 0) {
      std::swap(active_, syncing_);
      const uint64_t target = syncing_.last_lsn;
      first_pending_nanos_ = 0;
      // I/O under mutex_ keeps the syncer and appenders off segment_
      // for the duration; rotation is rare (checkpoints), so stalling
      // the staging path briefly is the honest trade.
      const Status flush = FlushBuffer(&syncing_);
      syncing_.used = 0;
      syncing_.records = 0;
      if (!flush.ok()) {
        poisoned_ = flush;
        rotate_pending_ = false;
        durable_cv_.notify_all();
        space_cv_.notify_all();
        work_cv_.notify_all();
        return flush;
      }
      durable_lsn_.store(target);
      durable_cv_.notify_all();
      space_cv_.notify_all();
    }
  }
  const uint64_t sealed_last = next_lsn_.load(kRelaxed) - 1;
  Status st = segment_->Close();
  if (!st.ok()) {
    poisoned_ = st;
    rotate_pending_ = false;
    work_cv_.notify_all();
    return st;
  }
  sealed_.emplace_back(segment_index_, sealed_last);
  ++segment_index_;
  auto file = backend_->OpenForAppend(SegmentName(prefix_, segment_index_));
  if (!file.ok()) {
    poisoned_ = file.status();
    rotate_pending_ = false;
    work_cv_.notify_all();
    return poisoned_;
  }
  segment_ = std::move(file.value());
  stat_rotations_.fetch_add(1, kRelaxed);
  rotate_pending_ = false;
  lock.unlock();
  work_cv_.notify_all();
  return Status::OK();
}

Status LogWriter::TruncateThrough(uint64_t lsn) {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!sealed_.empty() && sealed_.front().second <= lsn) {
    const uint32_t index = sealed_.front().first;
    HWSTAR_RETURN_IF_ERROR(backend_->Remove(SegmentName(prefix_, index)));
    sealed_.erase(sealed_.begin());
    stat_truncated_.fetch_add(1, kRelaxed);
  }
  return Status::OK();
}

LogWriterStats LogWriter::stats() const {
  LogWriterStats s;
  s.records = stat_records_.load(kRelaxed);
  s.bytes = stat_bytes_.load(kRelaxed);
  s.groups = stat_groups_.load(kRelaxed);
  s.rotations = stat_rotations_.load(kRelaxed);
  s.truncated_segments = stat_truncated_.load(kRelaxed);
  return s;
}

}  // namespace hwstar::dur
