#ifndef HWSTAR_DUR_FAULT_INJECTION_H_
#define HWSTAR_DUR_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "hwstar/common/random.h"
#include "hwstar/dur/file_backend.h"

namespace hwstar::dur {

/// What the fault injector does to the write that trips the trigger.
enum class FaultMode : uint8_t {
  kDropWrite = 0,  ///< the triggering append vanishes entirely
  kTornWrite = 1,  ///< a random prefix of the triggering append lands
  kBitFlip = 2,    ///< the append lands, then one of its bits flips
};

/// When and how to fail. `fail_after_writes` counts mutating operations
/// (appends, syncs, renames, removes) across the whole backend; the
/// operation that reaches the count gets `mode` applied, and everything
/// after it fails with kIoError — the process has "crashed" as far as the
/// durability layer can tell.
struct FaultPlan {
  uint64_t fail_after_writes = ~uint64_t{0};
  FaultMode mode = FaultMode::kTornWrite;
  uint64_t seed = 1;
};

/// A FileBackend that injects a crash: it proxies an owned
/// InMemoryFileBackend until the plan's trigger point, mangles the
/// triggering write per FaultMode, then fails every subsequent mutating
/// operation with kIoError. This is the storage side of the crash-recovery
/// property tests: after the "crash", the test calls
/// disk()->SimulateCrash() to drop unsynced bytes, then runs Recover()
/// against disk() directly and checks prefix consistency.
///
/// Reads (ReadFile / Exists / List) keep working after the trigger so the
/// test can inspect the surviving state; the durability code under test
/// never reads on its write paths.
class FaultyFileBackend : public FileBackend {
 public:
  explicit FaultyFileBackend(FaultPlan plan)
      : plan_(plan), rng_(plan.seed), inner_(new InMemoryFileBackend()) {}

  /// The surviving filesystem state (for SimulateCrash + recovery).
  InMemoryFileBackend* disk() { return inner_.get(); }

  /// True once the trigger has fired.
  bool crashed() const { return writes_.load() > plan_.fail_after_writes; }

  Result<std::unique_ptr<WritableFile>> OpenForAppend(
      const std::string& path) override {
    auto inner_file = inner_->OpenForAppend(path);
    if (!inner_file.ok()) return inner_file.status();
    return std::unique_ptr<WritableFile>(
        new FaultyWritableFile(this, std::move(inner_file.value())));
  }

  Result<std::string> ReadFile(const std::string& path) override {
    return inner_->ReadFile(path);
  }

  Status Rename(const std::string& from, const std::string& to) override {
    const Fate fate = NextWriteFate();
    if (fate != Fate::kPass) return Crashed();  // a dropped rename vanishes
    return inner_->Rename(from, to);
  }

  Status Remove(const std::string& path) override {
    const Fate fate = NextWriteFate();
    if (fate != Fate::kPass) return Crashed();
    return inner_->Remove(path);
  }

  bool Exists(const std::string& path) override {
    return inner_->Exists(path);
  }

  Result<std::vector<std::string>> List(const std::string& prefix) override {
    return inner_->List(prefix);
  }

 private:
  enum class Fate : uint8_t { kPass, kTrigger, kDead };

  /// Counts one mutating op and classifies it against the plan.
  Fate NextWriteFate() {
    const uint64_t n = writes_.fetch_add(1) + 1;
    if (n < plan_.fail_after_writes) return Fate::kPass;
    if (n == plan_.fail_after_writes) return Fate::kTrigger;
    return Fate::kDead;
  }

  static Status Crashed() {
    return Status::IoError("injected fault: backend crashed");
  }

  class FaultyWritableFile : public WritableFile {
   public:
    FaultyWritableFile(FaultyFileBackend* backend,
                       std::unique_ptr<WritableFile> inner)
        : backend_(backend), inner_(std::move(inner)) {}

    Status Append(const void* data, size_t len) override {
      switch (backend_->NextWriteFate()) {
        case Fate::kPass:
          return inner_->Append(data, len);
        case Fate::kTrigger: {
          // Apply the planned mangling to this append, then report the
          // crash (the caller must treat the write as failed — whether
          // any bytes landed is exactly what recovery must tolerate).
          std::lock_guard<std::mutex> lock(backend_->rng_mutex_);
          Xoshiro256& rng = backend_->rng_;
          switch (backend_->plan_.mode) {
            case FaultMode::kDropWrite:
              break;
            case FaultMode::kTornWrite: {
              const size_t keep = static_cast<size_t>(rng.NextBounded(len));
              if (keep > 0) (void)inner_->Append(data, keep);
              break;
            }
            case FaultMode::kBitFlip: {
              std::string copy(static_cast<const char*>(data), len);
              const size_t pos = static_cast<size_t>(rng.NextBounded(len));
              copy[pos] = static_cast<char>(
                  copy[pos] ^ (1u << rng.NextBounded(8)));
              (void)inner_->Append(copy.data(), copy.size());
              break;
            }
          }
          return Crashed();
        }
        case Fate::kDead:
          return Crashed();
      }
      return Crashed();
    }

    Status Sync(SyncMode mode) override {
      if (mode == SyncMode::kNone) return Status::OK();
      if (backend_->NextWriteFate() != Fate::kPass) return Crashed();
      return inner_->Sync(mode);
    }

    Status Close() override { return inner_->Close(); }
    uint64_t size() const override { return inner_->size(); }

   private:
    FaultyFileBackend* backend_;
    std::unique_ptr<WritableFile> inner_;
  };

  FaultPlan plan_;
  std::mutex rng_mutex_;
  Xoshiro256 rng_;
  std::atomic<uint64_t> writes_{0};
  std::unique_ptr<InMemoryFileBackend> inner_;
};

}  // namespace hwstar::dur

#endif  // HWSTAR_DUR_FAULT_INJECTION_H_
