#include "hwstar/dur/wal_format.h"

#include <cstring>

#include "hwstar/common/hash.h"

namespace hwstar::dur {

namespace {

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace

void EncodeWalRecord(const WalRecord& record, std::string* out) {
  std::string payload;
  payload.reserve(33);
  PutU64(&payload, record.lsn);
  payload.push_back(static_cast<char>(record.type));
  switch (record.type) {
    case WalRecordType::kPut:
      PutU64(&payload, record.key);
      PutU64(&payload, record.value);
      break;
    case WalRecordType::kDelete:
      PutU64(&payload, record.key);
      break;
    case WalRecordType::kTxnBegin:
    case WalRecordType::kTxnCommit:
      PutU64(&payload, record.txn);
      PutU64(&payload, record.value);
      break;
    case WalRecordType::kTxnPut:
      PutU64(&payload, record.txn);
      PutU64(&payload, record.key);
      PutU64(&payload, record.value);
      break;
    case WalRecordType::kTxnDelete:
      PutU64(&payload, record.txn);
      PutU64(&payload, record.key);
      break;
  }

  std::string lenbuf;
  PutU32(&lenbuf, static_cast<uint32_t>(payload.size()));
  uint32_t crc = Crc32(lenbuf.data(), lenbuf.size());
  crc = Crc32(payload.data(), payload.size(), crc);

  PutU32(out, crc);
  out->append(lenbuf);
  out->append(payload);
}

WalDecodeResult DecodeWalBuffer(const void* data, size_t len) {
  WalDecodeResult result;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  size_t off = 0;
  while (off + kWalFrameHeaderBytes <= len) {
    const uint32_t crc = GetU32(p + off);
    const uint32_t payload_len = GetU32(p + off + 4);
    if (payload_len < 17 || payload_len > kWalMaxPayloadBytes ||
        off + kWalFrameHeaderBytes + payload_len > len) {
      result.clean = false;
      break;
    }
    const uint8_t* payload = p + off + kWalFrameHeaderBytes;
    uint32_t actual = Crc32(p + off + 4, 4);
    actual = Crc32(payload, payload_len, actual);
    if (actual != crc) {
      result.clean = false;
      break;
    }
    WalRecord record;
    record.lsn = GetU64(payload);
    const uint8_t type = payload[8];
    if (type == static_cast<uint8_t>(WalRecordType::kPut) &&
        payload_len == 25) {
      record.type = WalRecordType::kPut;
      record.key = GetU64(payload + 9);
      record.value = GetU64(payload + 17);
    } else if (type == static_cast<uint8_t>(WalRecordType::kDelete) &&
               payload_len == 17) {
      record.type = WalRecordType::kDelete;
      record.key = GetU64(payload + 9);
    } else if ((type == static_cast<uint8_t>(WalRecordType::kTxnBegin) ||
                type == static_cast<uint8_t>(WalRecordType::kTxnCommit)) &&
               payload_len == 25) {
      record.type = static_cast<WalRecordType>(type);
      record.txn = GetU64(payload + 9);
      record.value = GetU64(payload + 17);
    } else if (type == static_cast<uint8_t>(WalRecordType::kTxnPut) &&
               payload_len == 33) {
      record.type = WalRecordType::kTxnPut;
      record.txn = GetU64(payload + 9);
      record.key = GetU64(payload + 17);
      record.value = GetU64(payload + 25);
    } else if (type == static_cast<uint8_t>(WalRecordType::kTxnDelete) &&
               payload_len == 25) {
      record.type = WalRecordType::kTxnDelete;
      record.txn = GetU64(payload + 9);
      record.key = GetU64(payload + 17);
    } else {
      result.clean = false;  // unknown type or wrong size for type
      break;
    }
    result.records.push_back(record);
    off += kWalFrameHeaderBytes + payload_len;
    result.valid_bytes = off;
  }
  if (off != len && result.clean && off + kWalFrameHeaderBytes > len &&
      off < len) {
    // Trailing partial header: a torn append, not a clean boundary.
    result.clean = false;
  }
  return result;
}

}  // namespace hwstar::dur
