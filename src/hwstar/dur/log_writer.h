#ifndef HWSTAR_DUR_LOG_WRITER_H_
#define HWSTAR_DUR_LOG_WRITER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "hwstar/common/status.h"
#include "hwstar/dur/file_backend.h"
#include "hwstar/dur/wal_format.h"
#include "hwstar/mem/aligned.h"
#include "hwstar/obs/histogram.h"

namespace hwstar::dur {

/// Tuning for one log. The group-commit knobs are the hardware knobs: an
/// fsync costs the same whether it covers 1 record or 500, so the syncer
/// lingers up to `fsync_interval_us` (or until `fsync_every_n` records
/// are pending) to amortize that fixed device cost across every writer
/// currently blocked on a commit.
struct LogWriterOptions {
  SyncMode sync = SyncMode::kFdatasync;
  /// Group commit on: writers enqueue and block while one syncer thread
  /// coalesces pending records into a single write+sync. Off: every
  /// commit performs its own write+sync under a lock — the per-op
  /// baseline bench_e15 measures the group-commit win against.
  bool group_commit = true;
  /// Sync as soon as this many records are pending (0 = sync whatever has
  /// accumulated whenever the syncer is free).
  uint32_t fsync_every_n = 0;
  /// Max time the syncer lingers waiting for batch-mates once at least
  /// one record is pending.
  uint64_t fsync_interval_us = 100;
  /// Staging buffer capacity; 4 KiB-aligned via mem/aligned so the
  /// write-path source buffer respects device block granularity. Two of
  /// these exist (active / syncing) so staging continues during a sync.
  size_t buffer_bytes = 64 * 1024;
};

/// Monotonic counters describing the log's I/O behaviour. `groups` counts
/// write+sync rounds; records / groups is the achieved commit batch size
/// — the number the group-commit knee is made of.
struct LogWriterStats {
  uint64_t records = 0;
  uint64_t bytes = 0;
  uint64_t groups = 0;
  uint64_t rotations = 0;
  uint64_t truncated_segments = 0;

  double mean_group() const {
    return groups == 0
               ? 0.0
               : static_cast<double>(records) / static_cast<double>(groups);
  }
};

/// A per-shard append-only write-ahead log with group commit.
///
/// Concurrent writers call Append (cheap: assign a dense LSN and memcpy
/// the framed record into the active staging buffer) and then
/// WaitDurable(lsn), blocking on the commit sequence number. A single
/// syncer thread swaps the staging buffers and turns every pending record
/// into ONE backend write + sync — the McKenney move of amortizing the
/// expensive serialization point (the sync) rather than the cheap one
/// (the buffer append).
///
/// The log is a sequence of segment files `<prefix>-<nnnnnn>.wal`;
/// Rotate() seals the current segment (checkpointing rotates so
/// TruncateThrough can later delete sealed segments wholesale, the unit
/// of truncation a device actually likes).
///
/// I/O failures never abort: the first failed write/sync poisons the log,
/// WaitDurable and subsequent Appends return that kIoError, and the owner
/// decides what dies.
class LogWriter {
 public:
  /// Opens segment `next_segment` for appending; LSNs continue at
  /// `next_lsn` (both come from recovery; a fresh log passes 1 and 0).
  static Result<std::unique_ptr<LogWriter>> Open(FileBackend* backend,
                                                 std::string prefix,
                                                 LogWriterOptions options,
                                                 uint64_t next_lsn,
                                                 uint32_t next_segment);

  /// Flushes pending records (best effort) and stops the syncer.
  ~LogWriter();

  LogWriter(const LogWriter&) = delete;
  LogWriter& operator=(const LogWriter&) = delete;

  /// Stages the record (the writer fills in the LSN) and returns the
  /// assigned LSN. Blocks only when both staging buffers are full (the
  /// device is the bottleneck — backpressure, not unbounded memory).
  Result<uint64_t> Append(WalRecord record);

  /// Blocks until everything up to `lsn` is durable at the configured
  /// sync level, or the log is poisoned (returns the poisoning error).
  Status WaitDurable(uint64_t lsn);

  /// Append + WaitDurable.
  Result<uint64_t> AppendDurable(WalRecord record);

  /// Seals the current segment (flushing pending records) and starts the
  /// next one.
  Status Rotate();

  /// Deletes sealed segments whose last LSN is <= `lsn`. The active
  /// segment is never deleted.
  Status TruncateThrough(uint64_t lsn);

  /// Last assigned LSN (0 before the first append).
  uint64_t last_lsn() const { return next_lsn_.load() - 1; }

  /// Highest LSN known durable at the configured sync level.
  uint64_t durable_lsn() const { return durable_lsn_.load(); }

  const std::string& prefix() const { return prefix_; }
  const LogWriterOptions& options() const { return options_; }
  LogWriterStats stats() const;

  /// Distribution of records per write+sync round — the group-commit
  /// batch sizes behind LogWriterStats::mean_group().
  obs::HistogramSnapshot sync_batch_snapshot() const {
    return sync_batch_hist_.Snapshot();
  }
  /// Distribution of write+sync wall time per round, nanoseconds.
  obs::HistogramSnapshot sync_latency_snapshot() const {
    return sync_latency_hist_.Snapshot();
  }
  /// The underlying histograms, for registry registration.
  const obs::Histogram& sync_batch_histogram() const {
    return sync_batch_hist_;
  }
  const obs::Histogram& sync_latency_histogram() const {
    return sync_latency_hist_;
  }

  /// `<prefix>-<nnnnnn>.wal`, recovery parses the index back out.
  static std::string SegmentName(const std::string& prefix, uint32_t index);
  /// Parses the segment index from a SegmentName path; false if malformed.
  static bool ParseSegmentIndex(const std::string& path, uint32_t* index);

 private:
  LogWriter(FileBackend* backend, std::string prefix, LogWriterOptions options,
            uint64_t next_lsn, uint32_t next_segment,
            std::unique_ptr<WritableFile> segment);

  struct Buffer {
    mem::AlignedBuffer data;
    size_t used = 0;
    uint64_t last_lsn = 0;  ///< highest LSN staged in this buffer
    uint32_t records = 0;
  };

  void SyncerLoop();
  /// Writes + syncs `buf` to the current segment; called outside mutex_
  /// by whichever thread owns the I/O turn.
  Status FlushBuffer(Buffer* buf);

  FileBackend* backend_;
  const std::string prefix_;
  const LogWriterOptions options_;

  std::mutex mutex_;                  ///< guards staging state
  std::condition_variable space_cv_;  ///< staging room freed
  std::condition_variable work_cv_;   ///< records pending / shutdown
  std::condition_variable durable_cv_;
  Buffer active_;
  Buffer syncing_;
  uint64_t first_pending_nanos_ = 0;  ///< when active_ went 0 -> nonzero
  bool io_in_progress_ = false;
  /// Rotate() is sealing: the syncer must not start a new flush, so the
  /// rotation needs only wait out the (single) in-flight one — forward
  /// progress even under sustained append load.
  bool rotate_pending_ = false;
  bool stop_ = false;
  Status poisoned_;  ///< first I/O error; OK while healthy

  std::unique_ptr<WritableFile> segment_;
  uint32_t segment_index_;
  /// Sealed segments: (index, last lsn they contain), oldest first.
  std::vector<std::pair<uint32_t, uint64_t>> sealed_;

  std::atomic<uint64_t> next_lsn_;
  std::atomic<uint64_t> durable_lsn_;

  // Stats (relaxed; read by stats()).
  obs::Histogram sync_batch_hist_;    ///< records per flush group
  obs::Histogram sync_latency_hist_;  ///< nanos per write+sync round
  std::atomic<uint64_t> stat_records_{0};
  std::atomic<uint64_t> stat_bytes_{0};
  std::atomic<uint64_t> stat_groups_{0};
  std::atomic<uint64_t> stat_rotations_{0};
  std::atomic<uint64_t> stat_truncated_{0};

  std::thread syncer_;  ///< last member: started after everything else
};

}  // namespace hwstar::dur

#endif  // HWSTAR_DUR_LOG_WRITER_H_
