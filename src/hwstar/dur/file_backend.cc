#include "hwstar/dur/file_backend.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include "hwstar/common/random.h"

namespace hwstar::dur {

const char* SyncModeName(SyncMode mode) {
  switch (mode) {
    case SyncMode::kNone:
      return "none";
    case SyncMode::kFdatasync:
      return "fdatasync";
    case SyncMode::kFsync:
      return "fsync";
  }
  return "unknown";
}

namespace {

Status ErrnoStatus(const char* op, const std::string& path) {
  return Status::IoError(std::string(op) + " failed for '" + path +
                         "': " + std::strerror(errno));
}

/// fsyncs the directory containing `path_in_dir`. Creating, renaming, or
/// unlinking a file only mutates the directory entry in memory; until the
/// directory itself is synced, a crash can lose or reorder those entries
/// even though the file *contents* were fdatasync'd — the standard WAL
/// discipline (LevelDB/RocksDB/SQLite all do this).
Status SyncDir(const std::string& path_in_dir) {
  namespace fs = std::filesystem;
  const fs::path p(path_in_dir);
  const std::string dir =
      p.has_parent_path() ? p.parent_path().string() : std::string(".");
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return ErrnoStatus("open(dir)", dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return ErrnoStatus("fsync(dir)", dir);
  return Status::OK();
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path, uint64_t size)
      : fd_(fd), path_(std::move(path)), size_(size) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(const void* data, size_t len) override {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    size_t remaining = len;
    while (remaining > 0) {
      const ssize_t n = ::write(fd_, p, remaining);
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("write", path_);
      }
      p += n;
      remaining -= static_cast<size_t>(n);
    }
    size_ += len;
    return Status::OK();
  }

  Status Sync(SyncMode mode) override {
    switch (mode) {
      case SyncMode::kNone:
        return Status::OK();
      case SyncMode::kFdatasync:
        if (::fdatasync(fd_) != 0) return ErrnoStatus("fdatasync", path_);
        return Status::OK();
      case SyncMode::kFsync:
        if (::fsync(fd_) != 0) return ErrnoStatus("fsync", path_);
        return Status::OK();
    }
    return Status::Internal("bad sync mode");
  }

  Status Close() override {
    if (fd_ >= 0 && ::close(fd_) != 0) {
      fd_ = -1;
      return ErrnoStatus("close", path_);
    }
    fd_ = -1;
    return Status::OK();
  }

  uint64_t size() const override { return size_; }

 private:
  int fd_;
  std::string path_;
  uint64_t size_;
};

}  // namespace

Result<std::unique_ptr<WritableFile>> PosixFileBackend::OpenForAppend(
    const std::string& path) {
  const bool existed = ::access(path.c_str(), F_OK) == 0;
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return ErrnoStatus("open", path);
  const off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return ErrnoStatus("lseek", path);
  }
  if (!existed) {
    // A new segment's directory entry must be durable before any record
    // in it can be acked, or the whole file vanishes on crash.
    const Status st = SyncDir(path);
    if (!st.ok()) {
      ::close(fd);
      return st;
    }
  }
  return std::unique_ptr<WritableFile>(
      new PosixWritableFile(fd, path, static_cast<uint64_t>(size)));
}

Result<std::string> PosixFileBackend::ReadFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return ErrnoStatus("open", path);
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return ErrnoStatus("read", path);
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

Status PosixFileBackend::Rename(const std::string& from,
                                const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return ErrnoStatus("rename", from);
  }
  // The checkpoint-install rename is only atomic-on-crash once the
  // directory is synced; otherwise old segments could be durably gone
  // while the new checkpoint's entry is not.
  return SyncDir(to);
}

Status PosixFileBackend::Remove(const std::string& path) {
  if (::unlink(path.c_str()) != 0) {
    if (errno == ENOENT) return Status::OK();
    return ErrnoStatus("unlink", path);
  }
  return SyncDir(path);
}

bool PosixFileBackend::Exists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

Result<std::vector<std::string>> PosixFileBackend::List(
    const std::string& prefix) {
  namespace fs = std::filesystem;
  const fs::path p(prefix);
  const fs::path dir = p.has_parent_path() ? p.parent_path() : fs::path(".");
  const std::string name_prefix = p.filename().string();
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(name_prefix, 0) == 0) {
      out.push_back((dir / name).string());
    }
  }
  // A missing directory is the legitimate fresh-start case; any other
  // error (permissions, I/O) must not masquerade as an empty store —
  // Recover() would silently treat it as "no WAL".
  if (ec && ec != std::errc::no_such_file_or_directory) {
    return Status::IoError("directory iteration failed for '" + dir.string() +
                           "': " + ec.message());
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Handle into InMemoryFileBackend; re-resolves the path per operation so
/// renames/removals by other actors behave like POSIX (the open handle
/// keeps writing into a fresh file if the name was recycled — close
/// enough for the WAL's single-writer-per-file discipline).
class InMemoryWritableFile : public WritableFile {
 public:
  InMemoryWritableFile(InMemoryFileBackend* backend, std::string path)
      : backend_(backend), path_(std::move(path)) {}

  Status Append(const void* data, size_t len) override {
    std::lock_guard<std::mutex> lock(backend_->mutex_);
    auto& file = backend_->files_[path_];
    file.data.append(static_cast<const char*>(data), len);
    return Status::OK();
  }

  Status Sync(SyncMode mode) override {
    if (mode == SyncMode::kNone) return Status::OK();
    std::lock_guard<std::mutex> lock(backend_->mutex_);
    auto& file = backend_->files_[path_];
    file.durable_size = file.data.size();
    return Status::OK();
  }

  Status Close() override { return Status::OK(); }

  uint64_t size() const override {
    std::lock_guard<std::mutex> lock(backend_->mutex_);
    auto it = backend_->files_.find(path_);
    return it == backend_->files_.end() ? 0 : it->second.data.size();
  }

 private:
  InMemoryFileBackend* backend_;
  std::string path_;
};

Result<std::unique_ptr<WritableFile>> InMemoryFileBackend::OpenForAppend(
    const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    files_[path];  // create if absent
  }
  return std::unique_ptr<WritableFile>(new InMemoryWritableFile(this, path));
}

Result<std::string> InMemoryFileBackend::ReadFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  return it->second.data;
}

Status InMemoryFileBackend::Rename(const std::string& from,
                                   const std::string& to) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(from);
  if (it == files_.end()) return Status::IoError("rename: no such file: " + from);
  // Rename is modeled as immediately durable (a journaling filesystem's
  // rename is atomic; crash-ordering of the rename itself is not part of
  // what these tests probe).
  FileState moved = std::move(it->second);
  moved.durable_size = moved.data.size();
  files_.erase(it);
  files_[to] = std::move(moved);
  return Status::OK();
}

Status InMemoryFileBackend::Remove(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  files_.erase(path);
  return Status::OK();
}

bool InMemoryFileBackend::Exists(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  return files_.count(path) != 0;
}

Result<std::vector<std::string>> InMemoryFileBackend::List(
    const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  for (const auto& [path, file] : files_) {
    if (path.rfind(prefix, 0) == 0) out.push_back(path);
  }
  return out;  // map iteration is already sorted
}

void InMemoryFileBackend::SimulateCrash(uint64_t seed, bool flip_bit) {
  std::lock_guard<std::mutex> lock(mutex_);
  Xoshiro256 rng(seed);
  std::string* flip_candidate = nullptr;
  uint64_t flip_lo = 0;
  for (auto& [path, file] : files_) {
    if (file.data.size() <= file.durable_size) continue;
    const uint64_t unsynced = file.data.size() - file.durable_size;
    const uint64_t keep = rng.NextBounded(unsynced + 1);
    file.data.resize(file.durable_size + keep);
    if (keep > 0) {
      flip_candidate = &file.data;
      flip_lo = file.durable_size;
    }
  }
  if (flip_bit && flip_candidate != nullptr) {
    const uint64_t span = flip_candidate->size() - flip_lo;
    const uint64_t pos = flip_lo + rng.NextBounded(span);
    (*flip_candidate)[pos] =
        static_cast<char>((*flip_candidate)[pos] ^ (1u << rng.NextBounded(8)));
  }
}

uint64_t InMemoryFileBackend::TotalBytes() {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t total = 0;
  for (const auto& [path, file] : files_) total += file.data.size();
  return total;
}

}  // namespace hwstar::dur
