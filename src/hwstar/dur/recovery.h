#ifndef HWSTAR_DUR_RECOVERY_H_
#define HWSTAR_DUR_RECOVERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "hwstar/common/status.h"
#include "hwstar/dur/file_backend.h"
#include "hwstar/kv/kv_store.h"

namespace hwstar::dur {

/// What recovery found and did; also carries the per-shard continuation
/// state (next LSN / next segment index) the reopened LogWriters need.
struct RecoveryInfo {
  bool checkpoint_loaded = false;
  uint64_t checkpoint_entries = 0;
  uint64_t records_applied = 0;
  uint64_t records_skipped = 0;  ///< lsn <= checkpoint mark (already applied)
  /// Shards whose replay stopped early at a torn or corrupt record — the
  /// expected signature of a crash mid-append; everything before the stop
  /// point is applied, everything after is discarded (prefix semantics).
  uint32_t torn_shards = 0;
  /// Transactions whose commit record AND full fragment set survived; all
  /// their effects were installed.
  uint64_t txns_applied = 0;
  /// Transactions seen in the log (fragments and/or commit) whose commit
  /// could not be proven complete; NONE of their effects were installed.
  uint64_t txns_dropped = 0;
  /// Intact fragments belonging to dropped transactions (they still count
  /// toward LSN density — only their effects are suppressed).
  uint64_t txn_fragments_dropped = 0;
  /// Largest transaction id seen anywhere in the usable log; the reopened
  /// store seeds its id allocator above this so ids never collide across
  /// restarts.
  uint64_t max_txn_id = 0;
  std::vector<uint64_t> next_lsn;      ///< per shard
  std::vector<uint32_t> next_segment;  ///< per shard

  uint64_t records_total() const { return records_applied + records_skipped; }
};

/// Rebuilds `store` from `<prefix>-ckpt` and the per-shard WAL segments
/// `<prefix>-wal<shard>-NNNNNN.wal`.
///
/// Per shard, segments replay in index order and records must arrive with
/// dense, ascending LSNs: records at or below the checkpoint mark are
/// skipped (their effects are in the snapshot), the first record above
/// the mark must be mark+1, and any gap, CRC failure, or torn frame stops
/// that shard's replay cleanly — applied state is always an exact prefix
/// of what was logged. A torn record at the tail of one segment does NOT
/// stop replay if the following segment resumes the dense sequence (that
/// is the normal shape after a previous crash+recovery: the reopened
/// writer reuses the lost LSNs in a fresh segment).
///
/// Transactional records replay with whole-txn-or-nothing semantics:
/// usable prefixes are first collected for ALL shards, then a
/// transaction's kTxnPut/kTxnDelete fragments are applied only if its
/// kTxnCommit record survived and the surviving fragment count matches
/// the total the commit promises. Fragments of unproven transactions are
/// suppressed (not applied) but still advance the dense LSN sequence, so
/// later committed work in the same shard is unaffected.
///
/// `store` must be empty. Fails with kIoError only on malformed
/// checkpoint state (corrupt installed checkpoint, or checkpoint shard
/// count mismatching `log_shards`); WAL damage is never an error — it is
/// the thing being recovered from.
Result<RecoveryInfo> Recover(FileBackend* backend, const std::string& prefix,
                             uint32_t log_shards, kv::KvStore* store);

/// `<prefix>-wal<shard>` — the segment-name prefix for one shard's log.
std::string ShardLogPrefix(const std::string& prefix, uint32_t shard);

}  // namespace hwstar::dur

#endif  // HWSTAR_DUR_RECOVERY_H_
