#include "hwstar/dur/checkpoint.h"

#include <cstring>

#include "hwstar/common/hash.h"

namespace hwstar::dur {

namespace {

constexpr uint64_t kCheckpointMagic = 0x68777374'61726b70ULL;  // "hwstarkp"
constexpr uint32_t kCheckpointVersion = 1;

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace

std::string CheckpointPath(const std::string& prefix) {
  return prefix + "-ckpt";
}

Status WriteCheckpoint(FileBackend* backend, const std::string& prefix,
                       const CheckpointData& data) {
  std::string body;
  body.reserve(32 + data.marks.size() * 8 + data.entries.size() * 16);
  PutU64(&body, kCheckpointMagic);
  PutU32(&body, kCheckpointVersion);
  PutU32(&body, static_cast<uint32_t>(data.marks.size()));
  for (uint64_t mark : data.marks) PutU64(&body, mark);
  PutU64(&body, data.entries.size());
  for (const auto& [key, value] : data.entries) {
    PutU64(&body, key);
    PutU64(&body, value);
  }
  PutU32(&body, Crc32(body.data(), body.size()));

  const std::string tmp = CheckpointPath(prefix) + ".tmp";
  // Remove a stale tmp from an earlier crashed attempt so the append
  // starts clean.
  HWSTAR_RETURN_IF_ERROR(backend->Remove(tmp));
  auto file = backend->OpenForAppend(tmp);
  if (!file.ok()) return file.status();
  HWSTAR_RETURN_IF_ERROR(file.value()->Append(body.data(), body.size()));
  // Always a full fsync: a checkpoint whose metadata is not durable is
  // not installed, whatever the WAL's cheaper sync level is.
  HWSTAR_RETURN_IF_ERROR(file.value()->Sync(SyncMode::kFsync));
  HWSTAR_RETURN_IF_ERROR(file.value()->Close());
  return backend->Rename(tmp, CheckpointPath(prefix));
}

Result<CheckpointData> ReadCheckpoint(FileBackend* backend,
                                      const std::string& prefix) {
  auto raw = backend->ReadFile(CheckpointPath(prefix));
  if (!raw.ok()) return raw.status();
  const std::string& body = raw.value();
  auto corrupt = [](const char* what) {
    return Status::IoError(std::string("corrupt checkpoint: ") + what);
  };
  if (body.size() < 8 + 4 + 4 + 8 + 4) return corrupt("too small");
  const uint8_t* p = reinterpret_cast<const uint8_t*>(body.data());
  const uint32_t stored_crc = GetU32(p + body.size() - 4);
  if (Crc32(body.data(), body.size() - 4) != stored_crc) {
    return corrupt("crc mismatch");
  }
  if (GetU64(p) != kCheckpointMagic) return corrupt("bad magic");
  if (GetU32(p + 8) != kCheckpointVersion) return corrupt("bad version");
  const uint32_t num_marks = GetU32(p + 12);
  size_t off = 16;
  if (body.size() < off + num_marks * 8ull + 8 + 4) return corrupt("truncated");
  CheckpointData data;
  data.marks.reserve(num_marks);
  for (uint32_t i = 0; i < num_marks; ++i, off += 8) {
    data.marks.push_back(GetU64(p + off));
  }
  const uint64_t count = GetU64(p + off);
  off += 8;
  if (body.size() != off + count * 16 + 4) return corrupt("bad entry count");
  data.entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i, off += 16) {
    data.entries.emplace_back(GetU64(p + off), GetU64(p + off + 8));
  }
  return data;
}

}  // namespace hwstar::dur
