#ifndef HWSTAR_DUR_WAL_FORMAT_H_
#define HWSTAR_DUR_WAL_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hwstar::dur {

/// Logical operations the WAL records. Deletes are first-class (tombstone
/// replay), not value sentinels.
enum class WalRecordType : uint8_t {
  kPut = 1,
  kDelete = 2,
};

/// One logical WAL record. `lsn` is per-log (per shard) and dense: the
/// writer assigns 1, 2, 3, ... with no gaps, which is what lets recovery
/// distinguish "clean end of log" from "hole left by a lost write".
struct WalRecord {
  WalRecordType type = WalRecordType::kPut;
  uint64_t lsn = 0;
  uint64_t key = 0;
  uint64_t value = 0;  ///< unused for kDelete

  bool operator==(const WalRecord& other) const {
    return type == other.type && lsn == other.lsn && key == other.key &&
           (type == WalRecordType::kDelete || value == other.value);
  }
};

/// On-disk framing (little-endian, the only byte order the library's
/// targets use):
///
///   [u32 crc][u32 payload_len][payload...]
///   payload = [u64 lsn][u8 type][u64 key]([u64 value] for kPut)
///
/// `crc` is CRC32 over payload_len and the payload, so a torn header, a
/// torn payload, and a bit flip are all caught by the same check. Framing
/// is per record: the tail of a crashed log is detected record-by-record
/// and replay stops cleanly at the last intact one.
inline constexpr size_t kWalFrameHeaderBytes = 8;
inline constexpr size_t kWalMaxPayloadBytes = 64;

/// Appends the framed record to `out`.
void EncodeWalRecord(const WalRecord& record, std::string* out);

/// Result of scanning one log buffer.
struct WalDecodeResult {
  std::vector<WalRecord> records;  ///< intact prefix, in append order
  size_t valid_bytes = 0;          ///< bytes consumed by intact records
  /// True when the buffer ended exactly at a record boundary; false when
  /// a torn/corrupt frame stopped the scan early (the normal signature of
  /// a crash mid-append).
  bool clean = true;
};

/// Decodes records from the front of `data`, stopping at the first frame
/// whose length is implausible or whose CRC fails.
WalDecodeResult DecodeWalBuffer(const void* data, size_t len);

}  // namespace hwstar::dur

#endif  // HWSTAR_DUR_WAL_FORMAT_H_
