#ifndef HWSTAR_DUR_WAL_FORMAT_H_
#define HWSTAR_DUR_WAL_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hwstar::dur {

/// Logical operations the WAL records. Deletes are first-class (tombstone
/// replay), not value sentinels.
///
/// The kTxn* types frame multi-key optimistic transactions (hwstar::txn):
/// a transaction's write-set is staged as kTxnPut/kTxnDelete fragments —
/// each in its key's home log shard, each carrying the transaction id —
/// bracketed per shard by a kTxnBegin, and sealed by ONE kTxnCommit in
/// the lowest participating shard naming the total fragment count.
/// Recovery applies a transaction's fragments only when the commit record
/// is present AND every fragment it promises decoded intact — whole
/// transactions or nothing, even when the write-set spans log shards.
enum class WalRecordType : uint8_t {
  kPut = 1,
  kDelete = 2,
  kTxnBegin = 3,   ///< txn = id, value = fragment count in this shard
  kTxnPut = 4,     ///< txn = id; key/value as kPut
  kTxnDelete = 5,  ///< txn = id; key as kDelete
  kTxnCommit = 6,  ///< txn = id, value = total fragments across shards
};

/// True for the fragment types staged inside a transaction's write-set.
inline constexpr bool IsTxnFragment(WalRecordType t) {
  return t == WalRecordType::kTxnPut || t == WalRecordType::kTxnDelete;
}

/// One logical WAL record. `lsn` is per-log (per shard) and dense: the
/// writer assigns 1, 2, 3, ... with no gaps, which is what lets recovery
/// distinguish "clean end of log" from "hole left by a lost write".
struct WalRecord {
  WalRecordType type = WalRecordType::kPut;
  uint64_t lsn = 0;
  uint64_t txn = 0;    ///< transaction id; 0 for the non-txn types
  uint64_t key = 0;    ///< unused for kTxnBegin/kTxnCommit
  uint64_t value = 0;  ///< unused for kDelete/kTxnDelete; count for begin/commit

  bool HasValue() const {
    return type != WalRecordType::kDelete && type != WalRecordType::kTxnDelete;
  }

  bool operator==(const WalRecord& other) const {
    return type == other.type && lsn == other.lsn && txn == other.txn &&
           key == other.key && (!HasValue() || value == other.value);
  }
};

/// On-disk framing (little-endian, the only byte order the library's
/// targets use):
///
///   [u32 crc][u32 payload_len][payload...]
///   payload = [u64 lsn][u8 type] then, by type:
///     kPut                  [u64 key][u64 value]        (25 B payload)
///     kDelete               [u64 key]                   (17 B)
///     kTxnBegin/kTxnCommit  [u64 txn][u64 count]        (25 B)
///     kTxnPut               [u64 txn][u64 key][u64 val] (33 B)
///     kTxnDelete            [u64 txn][u64 key]          (25 B)
///
/// `crc` is CRC32 over payload_len and the payload, so a torn header, a
/// torn payload, and a bit flip are all caught by the same check. Framing
/// is per record: the tail of a crashed log is detected record-by-record
/// and replay stops cleanly at the last intact one.
inline constexpr size_t kWalFrameHeaderBytes = 8;
inline constexpr size_t kWalMaxPayloadBytes = 64;

/// Appends the framed record to `out`.
void EncodeWalRecord(const WalRecord& record, std::string* out);

/// Result of scanning one log buffer.
struct WalDecodeResult {
  std::vector<WalRecord> records;  ///< intact prefix, in append order
  size_t valid_bytes = 0;          ///< bytes consumed by intact records
  /// True when the buffer ended exactly at a record boundary; false when
  /// a torn/corrupt frame stopped the scan early (the normal signature of
  /// a crash mid-append).
  bool clean = true;
};

/// Decodes records from the front of `data`, stopping at the first frame
/// whose length is implausible or whose CRC fails.
WalDecodeResult DecodeWalBuffer(const void* data, size_t len);

}  // namespace hwstar::dur

#endif  // HWSTAR_DUR_WAL_FORMAT_H_
