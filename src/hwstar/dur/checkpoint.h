#ifndef HWSTAR_DUR_CHECKPOINT_H_
#define HWSTAR_DUR_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "hwstar/common/status.h"
#include "hwstar/dur/file_backend.h"

namespace hwstar::dur {

/// A materialized checkpoint: the store's (key, value) pairs plus, per
/// log shard, the replay mark — the highest LSN whose effects are
/// guaranteed captured by the snapshot. Recovery loads the entries and
/// replays only records with lsn > marks[shard]; records at or below the
/// mark were definitely applied before the snapshot was cut (the
/// DurableKvStore takes each shard's mark under the same mutex that makes
/// append+apply atomic). Records above the mark may or may not already be
/// in the snapshot — the scan is fuzzy — which is safe because put/delete
/// replay is idempotent and per-key ordered.
struct CheckpointData {
  std::vector<uint64_t> marks;  ///< per log shard
  std::vector<std::pair<uint64_t, uint64_t>> entries;
};

/// `<prefix>-ckpt` — the installed checkpoint file.
std::string CheckpointPath(const std::string& prefix);

/// Serializes and installs the checkpoint crash-atomically: the payload
/// (magic, marks, entries, trailing CRC32) is written and synced to
/// `<prefix>-ckpt.tmp`, then renamed over `<prefix>-ckpt`. A crash at any
/// point leaves either the old checkpoint or the new one, never a torn
/// mix — the rename is the commit point.
Status WriteCheckpoint(FileBackend* backend, const std::string& prefix,
                       const CheckpointData& data);

/// Loads and validates the installed checkpoint. NotFound when none was
/// ever installed (fresh store); kIoError when the file exists but fails
/// validation (corrupt storage — the caller decides whether to refuse or
/// start empty).
Result<CheckpointData> ReadCheckpoint(FileBackend* backend,
                                      const std::string& prefix);

}  // namespace hwstar::dur

#endif  // HWSTAR_DUR_CHECKPOINT_H_
