#ifndef HWSTAR_DUR_DURABLE_KV_STORE_H_
#define HWSTAR_DUR_DURABLE_KV_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "hwstar/common/status.h"
#include "hwstar/dur/file_backend.h"
#include "hwstar/dur/log_writer.h"
#include "hwstar/dur/recovery.h"
#include "hwstar/kv/kv_store.h"

namespace hwstar::dur {

/// Tuning for a DurableKvStore.
struct DurableKvOptions {
  kv::KvOptions kv;
  /// WAL shards (power of two), range-mapped by high key bits like the
  /// kv shards so key-sorted batches touch contiguous logs. Each shard
  /// has its own LogWriter (own syncer, own segment files), so the sync
  /// serialization point scales with devices, not with one global log.
  uint32_t log_shards = 1;
  LogWriterOptions log;
};

/// One buffered mutation: an upsert (`is_delete=false`) or a tombstone.
/// The unit MutateBatch and CommitTxn consume.
struct WriteOp {
  uint64_t key = 0;
  uint64_t value = 0;  ///< ignored for deletes
  bool is_delete = false;
};

/// KvStore + write-ahead durability.
///
/// Mutations follow WAL-before-apply: under the log shard's apply mutex
/// the record is staged in the WAL (assigning its LSN) and applied to the
/// in-memory store, making {append, apply} atomic — which is what lets a
/// fuzzy checkpoint take `mark = last_lsn` under that same mutex and know
/// every op at or below the mark is in the scanned state. The caller then
/// waits for durability OUTSIDE the mutex, so writers stage while the
/// syncer lingers: that overlap is the group-commit win.
///
/// Readers go straight to `kv()`; they may observe acked-but-not-yet-
/// durable writes (speculative visibility — a crash can roll those back,
/// but never a write whose Put/Delete already returned OK at a real sync
/// level).
///
/// I/O errors poison the affected log (kIoError propagates out of every
/// later mutation); nothing aborts the process.
class DurableKvStore {
 public:
  /// Recovers from `<prefix>-ckpt` + `<prefix>-wal<shard>-*.wal` (fresh
  /// directory = fresh empty store) and opens the logs for appending.
  /// `recovery_out`, when non-null, receives what recovery found.
  static Result<std::unique_ptr<DurableKvStore>> Open(
      FileBackend* backend, std::string prefix, DurableKvOptions options,
      RecoveryInfo* recovery_out = nullptr);

  DurableKvStore(const DurableKvStore&) = delete;
  DurableKvStore& operator=(const DurableKvStore&) = delete;

  /// Durable upsert. Returns once the record is durable at the configured
  /// sync level. `wal_wait_nanos` (optional) receives the time this call
  /// spent blocked on the commit — the group-commit latency the svc
  /// metrics report as the wal phase.
  Status Put(uint64_t key, uint64_t value, uint64_t* wal_wait_nanos = nullptr);

  /// Durable erase (logged as a tombstone whether or not the key exists —
  /// existence is only known under the latch, and replaying a no-op
  /// delete is harmless). `erased` (optional) reports whether the key was
  /// present.
  Status Delete(uint64_t key, bool* erased = nullptr,
                uint64_t* wal_wait_nanos = nullptr);

  /// Durable multi-put: stages and applies every record, then waits for
  /// all of them at once — one wait per touched log shard regardless of
  /// batch size. This is the path the svc batcher drives.
  Status PutBatch(const uint64_t* keys, const uint64_t* values, size_t count,
                  uint64_t* wal_wait_nanos = nullptr);

  /// Durable mixed put/delete batch, same group-commit shape as PutBatch.
  /// Ops on an equal key must be adjacent and in intended order (the svc
  /// batcher's never-split rule guarantees this); ops apply in array
  /// order, so a put followed by a delete of the same key ends deleted.
  /// `erased`, when non-null, is a count-sized array receiving each
  /// delete op's "key was present" flag (put slots are set to false), so
  /// a batched delete answers exactly like a singleton Delete.
  Status MutateBatch(const WriteOp* ops, size_t count,
                     uint64_t* wal_wait_nanos = nullptr,
                     bool* erased = nullptr);

  /// Installs a validated transaction's write-set atomically with respect
  /// to crash recovery. `ops` must be sorted by key with no duplicates
  /// (hwstar::txn's write-set is a map, so this is free). Per touched log
  /// shard the fragments are staged as kTxnBegin + kTxnPut/kTxnDelete
  /// records and applied to memory; a single kTxnCommit naming the total
  /// fragment count then lands in the lowest touched shard. Recovery
  /// installs either the whole write-set or none of it.
  ///
  /// This is a LOW-LEVEL install: it does no validation and takes no
  /// stripe locks — TxnManager calls it while holding the write-set's
  /// stripe locks, which is what makes the memory install atomic with
  /// respect to concurrent transactions. `tid` must come from
  /// AllocateTxnId() (unique across restarts).
  Status CommitTxn(uint64_t tid, const WriteOp* ops, size_t count,
                   uint64_t* wal_wait_nanos = nullptr);

  /// Hands out transaction ids: dense, unique, and — because Open seeds
  /// the counter above every id recovery saw — never reused across
  /// restarts (a reused id could alias a dead transaction's surviving
  /// fragments into a live one's completeness count).
  uint64_t AllocateTxnId() {
    return next_txn_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Fuzzy checkpoint + log truncation: per shard takes `mark = last LSN`
  /// under the apply mutex, scans the live store (fuzzy — concurrent
  /// writers may or may not appear; replay idempotence absorbs them),
  /// installs the snapshot crash-atomically, then rotates each log and
  /// deletes sealed segments fully covered by the mark.
  Status Checkpoint();

  /// The in-memory store — the read path (Get / MultiGet / RangeScan).
  kv::KvStore* kv() { return &store_; }

  uint32_t log_shards() const { return static_cast<uint32_t>(logs_.size()); }
  LogWriter* log(uint32_t shard) { return logs_[shard]->writer.get(); }

  /// Sum of every log shard's counters.
  LogWriterStats log_stats() const;

  const std::string& prefix() const { return prefix_; }

 private:
  struct LogShard {
    /// Makes {WAL append, memory apply} atomic; the durability wait
    /// happens outside it.
    std::mutex apply_mutex;
    std::unique_ptr<LogWriter> writer;
  };

  DurableKvStore(FileBackend* backend, std::string prefix,
                 DurableKvOptions options);

  uint32_t LogShardOf(uint64_t key) const {
    return log_shift_ >= 64 ? 0 : static_cast<uint32_t>(key >> log_shift_);
  }

  FileBackend* backend_;
  const std::string prefix_;
  const DurableKvOptions options_;
  uint32_t log_shift_;
  kv::KvStore store_;
  std::vector<std::unique_ptr<LogShard>> logs_;
  /// Serializes checkpoints against each other (mutations keep flowing).
  std::mutex checkpoint_mutex_;
  /// Commit/checkpoint interlock. CommitTxn holds it SHARED across its
  /// whole staging sequence (every fragment plus the commit record);
  /// Checkpoint holds it EXCLUSIVE across mark-taking and the fuzzy scan.
  /// That gives two guarantees no per-shard mutex can: (1) a transaction
  /// lands entirely at-or-below all checkpoint marks or entirely above
  /// them — never split by truncation; (2) the snapshot never captures a
  /// write-set whose commit record hasn't been appended yet, so a crash
  /// can't smuggle uncommitted effects into durable state via the
  /// checkpoint. Plain Put/Delete never take it (single records need
  /// neither guarantee).
  std::shared_mutex txn_gate_;
  std::atomic<uint64_t> next_txn_id_{1};
};

}  // namespace hwstar::dur

#endif  // HWSTAR_DUR_DURABLE_KV_STORE_H_
