#ifndef HWSTAR_DUR_FILE_BACKEND_H_
#define HWSTAR_DUR_FILE_BACKEND_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "hwstar/common/status.h"

namespace hwstar::dur {

/// How hard a commit pushes bytes toward the storage device. The three
/// levels are exactly the hardware trade the keynote prices: kNone trusts
/// the OS page cache (fast, volatile), kFdatasync forces data to the
/// device but may skip metadata, kFsync forces both. bench_e15 measures
/// the cost of each level against the device.
enum class SyncMode : uint8_t {
  kNone = 0,
  kFdatasync = 1,
  kFsync = 2,
};

const char* SyncModeName(SyncMode mode);

/// An append-only file handle. Implementations are not thread-safe; the
/// owner (LogWriter's syncer, the checkpointer) serializes access.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends `len` bytes; on failure the file's durable state is unknown.
  virtual Status Append(const void* data, size_t len) = 0;

  /// Pushes appended bytes to stable storage per `mode` (kNone: no-op).
  virtual Status Sync(SyncMode mode) = 0;

  virtual Status Close() = 0;

  /// Bytes appended so far through this handle plus pre-existing content.
  virtual uint64_t size() const = 0;
};

/// The durability layer's view of a filesystem. Pluggable so the same
/// WAL / checkpoint / recovery code runs against real files (production,
/// benchmarks), an in-memory filesystem with an explicit volatile/durable
/// boundary (fast tests), or the fault-injecting wrapper
/// (crash-recovery property tests). All paths are backend-relative
/// strings; implementations must be thread-safe at this level (distinct
/// WritableFiles may be driven from distinct threads).
class FileBackend {
 public:
  virtual ~FileBackend() = default;

  /// Opens (creating if absent) `path` for appending.
  virtual Result<std::unique_ptr<WritableFile>> OpenForAppend(
      const std::string& path) = 0;

  /// Reads the whole file; NotFound when absent.
  virtual Result<std::string> ReadFile(const std::string& path) = 0;

  /// Atomically replaces `to` with `from` (the checkpoint install step).
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  /// Removes the file; OK even when absent (idempotent truncation).
  virtual Status Remove(const std::string& path) = 0;

  virtual bool Exists(const std::string& path) = 0;

  /// Paths of all files whose name starts with `prefix`, sorted.
  virtual Result<std::vector<std::string>> List(const std::string& prefix) = 0;
};

/// Real files through POSIX fds: open(O_APPEND) / write / fdatasync /
/// fsync / rename / unlink. Paths are used verbatim, so callers pass a
/// directory prefix they own (benchmarks use a temp dir).
class PosixFileBackend : public FileBackend {
 public:
  Result<std::unique_ptr<WritableFile>> OpenForAppend(
      const std::string& path) override;
  Result<std::string> ReadFile(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
  bool Exists(const std::string& path) override;
  Result<std::vector<std::string>> List(const std::string& prefix) override;
};

/// An in-memory filesystem that models the volatile/durable boundary real
/// disks have: every file tracks how much of its content has been synced
/// (`durable_size`). SimulateCrash() throws away a random amount of the
/// unsynced suffix of every file — exactly what power loss does to a page
/// cache — which is what makes the crash-recovery property tests honest:
/// data the WAL acked at kFdatasync/kFsync must survive, unsynced data
/// may not.
class InMemoryFileBackend : public FileBackend {
 public:
  Result<std::unique_ptr<WritableFile>> OpenForAppend(
      const std::string& path) override;
  Result<std::string> ReadFile(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
  bool Exists(const std::string& path) override;
  Result<std::vector<std::string>> List(const std::string& prefix) override;

  /// Truncates every file to durable_size plus a random prefix of its
  /// unsynced suffix (seeded; deterministic per seed). When `flip_bit` is
  /// true, additionally flips one random bit inside some surviving
  /// unsynced region — modeling a torn sector — so recovery's CRC path is
  /// exercised, not just its length checks.
  void SimulateCrash(uint64_t seed, bool flip_bit);

  /// Total bytes across all files (diagnostics / truncation tests).
  uint64_t TotalBytes();

 private:
  friend class InMemoryWritableFile;

  struct FileState {
    std::string data;
    uint64_t durable_size = 0;  ///< prefix guaranteed to survive a crash
  };

  std::mutex mutex_;
  std::map<std::string, FileState> files_;
};

}  // namespace hwstar::dur

#endif  // HWSTAR_DUR_FILE_BACKEND_H_
