#include "hwstar/dur/durable_kv_store.h"

#include <bit>
#include <chrono>
#include <limits>
#include <utility>

#include "hwstar/common/macros.h"
#include "hwstar/dur/checkpoint.h"
#include "hwstar/dur/wal_format.h"

namespace hwstar::dur {

namespace {

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

DurableKvStore::DurableKvStore(FileBackend* backend, std::string prefix,
                               DurableKvOptions options)
    : backend_(backend),
      prefix_(std::move(prefix)),
      options_(options),
      log_shift_(options.log_shards == 1
                     ? 64
                     : 64 - static_cast<uint32_t>(
                                std::countr_zero(options.log_shards))),
      store_(options.kv) {}

Result<std::unique_ptr<DurableKvStore>> DurableKvStore::Open(
    FileBackend* backend, std::string prefix, DurableKvOptions options,
    RecoveryInfo* recovery_out) {
  HWSTAR_CHECK(options.log_shards >= 1 &&
               (options.log_shards & (options.log_shards - 1)) == 0);
  std::unique_ptr<DurableKvStore> db(
      new DurableKvStore(backend, std::move(prefix), options));
  auto recovered = Recover(backend, db->prefix_, options.log_shards,
                           &db->store_);
  if (!recovered.ok()) return recovered.status();
  for (uint32_t shard = 0; shard < options.log_shards; ++shard) {
    auto writer = LogWriter::Open(backend,
                                  ShardLogPrefix(db->prefix_, shard),
                                  options.log,
                                  recovered.value().next_lsn[shard],
                                  recovered.value().next_segment[shard]);
    if (!writer.ok()) return writer.status();
    auto log_shard = std::make_unique<LogShard>();
    log_shard->writer = std::move(writer.value());
    db->logs_.push_back(std::move(log_shard));
  }
  db->next_txn_id_.store(recovered.value().max_txn_id + 1,
                         std::memory_order_relaxed);
  if (recovery_out != nullptr) *recovery_out = std::move(recovered.value());
  return db;
}

Status DurableKvStore::Put(uint64_t key, uint64_t value,
                           uint64_t* wal_wait_nanos) {
  LogShard& ls = *logs_[LogShardOf(key)];
  uint64_t lsn = 0;
  {
    std::lock_guard<std::mutex> lock(ls.apply_mutex);
    WalRecord record;
    record.type = WalRecordType::kPut;
    record.key = key;
    record.value = value;
    auto appended = ls.writer->Append(record);
    if (!appended.ok()) return appended.status();
    lsn = appended.value();
    store_.Put(key, value);
  }
  const uint64_t start = NowNanos();
  const Status st = ls.writer->WaitDurable(lsn);
  if (wal_wait_nanos != nullptr) *wal_wait_nanos = NowNanos() - start;
  return st;
}

Status DurableKvStore::Delete(uint64_t key, bool* erased,
                              uint64_t* wal_wait_nanos) {
  LogShard& ls = *logs_[LogShardOf(key)];
  uint64_t lsn = 0;
  {
    std::lock_guard<std::mutex> lock(ls.apply_mutex);
    WalRecord record;
    record.type = WalRecordType::kDelete;
    record.key = key;
    auto appended = ls.writer->Append(record);
    if (!appended.ok()) return appended.status();
    lsn = appended.value();
    const bool was_present = store_.Delete(key);
    if (erased != nullptr) *erased = was_present;
  }
  const uint64_t start = NowNanos();
  const Status st = ls.writer->WaitDurable(lsn);
  if (wal_wait_nanos != nullptr) *wal_wait_nanos = NowNanos() - start;
  return st;
}

Status DurableKvStore::PutBatch(const uint64_t* keys, const uint64_t* values,
                                size_t count, uint64_t* wal_wait_nanos) {
  std::vector<WriteOp> ops(count);
  for (size_t i = 0; i < count; ++i) {
    ops[i].key = keys[i];
    ops[i].value = values[i];
  }
  return MutateBatch(ops.data(), count, wal_wait_nanos);
}

Status DurableKvStore::MutateBatch(const WriteOp* ops, size_t count,
                                   uint64_t* wal_wait_nanos, bool* erased) {
  if (wal_wait_nanos != nullptr) *wal_wait_nanos = 0;
  if (count == 0) return Status::OK();

  // Highest LSN staged per log shard this batch; 0 = untouched.
  std::vector<uint64_t> pending(logs_.size(), 0);

  // Stage+apply by contiguous same-shard run. The svc batcher sorts its
  // write batches by key, so for sorted input each log shard's mutex is
  // taken once per batch, not once per record.
  size_t i = 0;
  while (i < count) {
    const uint32_t shard = LogShardOf(ops[i].key);
    size_t j = i;
    while (j < count && LogShardOf(ops[j].key) == shard) ++j;
    LogShard& ls = *logs_[shard];
    std::lock_guard<std::mutex> lock(ls.apply_mutex);
    for (size_t k = i; k < j; ++k) {
      WalRecord record;
      record.type =
          ops[k].is_delete ? WalRecordType::kDelete : WalRecordType::kPut;
      record.key = ops[k].key;
      record.value = ops[k].value;
      auto appended = ls.writer->Append(record);
      if (!appended.ok()) return appended.status();
      pending[shard] = appended.value();
      bool was_present = false;
      if (ops[k].is_delete) {
        was_present = store_.Delete(ops[k].key);
      } else {
        store_.Put(ops[k].key, ops[k].value);
      }
      if (erased != nullptr) erased[k] = ops[k].is_delete && was_present;
    }
    i = j;
  }

  // One commit wait per touched shard, whatever the batch size — every
  // record staged above rides the same sync.
  const uint64_t start = NowNanos();
  Status result = Status::OK();
  for (size_t shard = 0; shard < logs_.size(); ++shard) {
    if (pending[shard] == 0) continue;
    const Status st = logs_[shard]->writer->WaitDurable(pending[shard]);
    if (!st.ok() && result.ok()) result = st;
  }
  if (wal_wait_nanos != nullptr) *wal_wait_nanos = NowNanos() - start;
  return result;
}

Status DurableKvStore::CommitTxn(uint64_t tid, const WriteOp* ops,
                                 size_t count, uint64_t* wal_wait_nanos) {
  if (wal_wait_nanos != nullptr) *wal_wait_nanos = 0;
  if (count == 0) return Status::OK();

  std::vector<uint64_t> pending(logs_.size(), 0);
  uint32_t lowest_shard = LogShardOf(ops[0].key);  // ops are key-sorted

  {
    // Shared gate held across ALL staging including the commit record —
    // see txn_gate_ in the header for the two invariants this buys
    // against a concurrent checkpoint.
    std::shared_lock<std::shared_mutex> gate(txn_gate_);

    size_t i = 0;
    while (i < count) {
      const uint32_t shard = LogShardOf(ops[i].key);
      size_t j = i;
      while (j < count && LogShardOf(ops[j].key) == shard) ++j;
      LogShard& ls = *logs_[shard];
      std::lock_guard<std::mutex> lock(ls.apply_mutex);
      WalRecord begin;
      begin.type = WalRecordType::kTxnBegin;
      begin.txn = tid;
      begin.value = j - i;  // fragments in this shard (diagnostics)
      auto appended = ls.writer->Append(begin);
      if (!appended.ok()) return appended.status();
      for (size_t k = i; k < j; ++k) {
        WalRecord frag;
        frag.type = ops[k].is_delete ? WalRecordType::kTxnDelete
                                     : WalRecordType::kTxnPut;
        frag.txn = tid;
        frag.key = ops[k].key;
        frag.value = ops[k].value;
        appended = ls.writer->Append(frag);
        if (!appended.ok()) return appended.status();
        // Speculative visibility, same as Put: the memory install happens
        // now (the caller's stripe locks make it atomic for readers); a
        // crash before the commit record is durable rolls it back.
        if (ops[k].is_delete) {
          store_.Delete(ops[k].key);
        } else {
          store_.Put(ops[k].key, ops[k].value);
        }
        pending[shard] = appended.value();
      }
      i = j;
    }

    // The commit point: one record, in one shard, naming the total
    // fragment count. Recovery treats the transaction as committed only
    // when this record survives and every promised fragment decoded.
    LogShard& cs = *logs_[lowest_shard];
    std::lock_guard<std::mutex> lock(cs.apply_mutex);
    WalRecord commit;
    commit.type = WalRecordType::kTxnCommit;
    commit.txn = tid;
    commit.value = count;
    auto appended = cs.writer->Append(commit);
    if (!appended.ok()) return appended.status();
    pending[lowest_shard] = appended.value();
  }

  // Group-commit wait outside the gate, one per touched shard. Durability
  // of the commit record is what makes the transaction durable; fragments
  // in other shards are waited too so the ack implies the whole write-set
  // is replayable, not just provably-aborted.
  const uint64_t start = NowNanos();
  Status result = Status::OK();
  for (size_t shard = 0; shard < logs_.size(); ++shard) {
    if (pending[shard] == 0) continue;
    const Status st = logs_[shard]->writer->WaitDurable(pending[shard]);
    if (!st.ok() && result.ok()) result = st;
  }
  if (wal_wait_nanos != nullptr) *wal_wait_nanos = NowNanos() - start;
  return result;
}

Status DurableKvStore::Checkpoint() {
  std::lock_guard<std::mutex> ckpt_lock(checkpoint_mutex_);

  CheckpointData data;
  data.marks.resize(logs_.size());
  {
    // Exclusive txn gate across marks AND the scan: no transaction can be
    // mid-commit while either happens, so (1) every transaction is wholly
    // below all marks (its effects are in the scan, its records get
    // truncated) or wholly above (its records survive for recovery to
    // judge), and (2) the scan never captures a write-set whose commit
    // record hasn't been appended. Plain writers keep flowing — the scan
    // stays fuzzy for them, which replay idempotence absorbs.
    std::unique_lock<std::shared_mutex> gate(txn_gate_);
    for (size_t shard = 0; shard < logs_.size(); ++shard) {
      // Under the apply mutex, every op with lsn <= last_lsn has finished
      // its memory apply — the scan below cannot miss it.
      std::lock_guard<std::mutex> lock(logs_[shard]->apply_mutex);
      data.marks[shard] = logs_[shard]->writer->last_lsn();
    }

    store_.RangeScanEntries(0, std::numeric_limits<uint64_t>::max(),
                            &data.entries);
  }

  // The scan is fuzzy: it may contain effects of ops ABOVE the mark that
  // were applied concurrently. Those ops must be in the durable log
  // before the snapshot is installed, otherwise a crash could recover a
  // state containing an op the log never acked (not a prefix). Everything
  // the scan could have seen has lsn <= the shard's last_lsn right now.
  for (size_t shard = 0; shard < logs_.size(); ++shard) {
    LogWriter* writer = logs_[shard]->writer.get();
    HWSTAR_RETURN_IF_ERROR(writer->WaitDurable(writer->last_lsn()));
  }

  HWSTAR_RETURN_IF_ERROR(WriteCheckpoint(backend_, prefix_, data));

  for (size_t shard = 0; shard < logs_.size(); ++shard) {
    HWSTAR_RETURN_IF_ERROR(logs_[shard]->writer->Rotate());
    HWSTAR_RETURN_IF_ERROR(
        logs_[shard]->writer->TruncateThrough(data.marks[shard]));
  }
  return Status::OK();
}

LogWriterStats DurableKvStore::log_stats() const {
  LogWriterStats total;
  for (const auto& shard : logs_) {
    const LogWriterStats s = shard->writer->stats();
    total.records += s.records;
    total.bytes += s.bytes;
    total.groups += s.groups;
    total.rotations += s.rotations;
    total.truncated_segments += s.truncated_segments;
  }
  return total;
}

}  // namespace hwstar::dur
