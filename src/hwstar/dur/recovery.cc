#include "hwstar/dur/recovery.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "hwstar/dur/checkpoint.h"
#include "hwstar/dur/log_writer.h"
#include "hwstar/dur/wal_format.h"

namespace hwstar::dur {

std::string ShardLogPrefix(const std::string& prefix, uint32_t shard) {
  return prefix + "-wal" + std::to_string(shard);
}

namespace {

/// One shard's collection pass. `next_apply` starts at mark+1; every
/// decoded record below it is a skip, the record equal to it is collected,
/// and any gap (or a record that fails to decode with more segments
/// claiming later data) ends the shard's usable log. Collection is
/// separate from application because transactional records cannot be
/// judged shard-locally: a fragment in this shard is applied only if its
/// commit record — possibly in another shard — survived, so every shard's
/// usable prefix must be in hand before any effect is installed.
Status CollectShard(FileBackend* backend, const std::string& shard_prefix,
                    uint64_t mark, RecoveryInfo* info,
                    std::vector<WalRecord>* usable, uint64_t* next_apply,
                    uint32_t* next_segment) {
  auto listed = backend->List(shard_prefix);
  if (!listed.ok()) return listed.status();

  // (segment index, path), replayed in index order. The exact-size check
  // keeps shard 1's listing from swallowing shard 11's segments — List()
  // matches by name prefix only.
  std::vector<std::pair<uint32_t, std::string>> segments;
  const size_t expect_size = shard_prefix.size() + 11;  // "-NNNNNN.wal"
  for (const std::string& path : listed.value()) {
    uint32_t index = 0;
    if (path.size() == expect_size && LogWriter::ParseSegmentIndex(path, &index)) {
      segments.emplace_back(index, path);
    }
  }
  std::sort(segments.begin(), segments.end());

  *next_apply = mark + 1;
  *next_segment = 0;
  for (const auto& [index, path] : segments) {
    *next_segment = index + 1;
    auto raw = backend->ReadFile(path);
    if (!raw.ok()) return raw.status();
    const WalDecodeResult decoded =
        DecodeWalBuffer(raw.value().data(), raw.value().size());
    if (!decoded.clean) ++info->torn_shards;
    for (const WalRecord& record : decoded.records) {
      if (record.lsn < *next_apply) {
        ++info->records_skipped;
        continue;
      }
      if (record.lsn != *next_apply) {
        // A gap means the dense sequence broke — records within one
        // segment are LSN-ordered, so nothing further in THIS segment is
        // usable. Later segments are still scanned (not skipped): a prior
        // recovery that stopped at this same gap re-issued the lost LSNs
        // in a fresh higher-index segment, which resumes exactly at
        // next_apply — the same resumption rule used after torn tails.
        // Stale same-timeline segments past the gap only hold larger
        // LSNs, so this check rejects them record-by-record.
        break;
      }
      usable->push_back(record);
      ++(*next_apply);
    }
    // A torn tail inside this segment does not end replay either: the
    // next segment may resume the dense sequence (a prior crash+recovery
    // reuses the lost LSNs in a fresh segment). If it does not, the
    // density check above rejects its records.
  }
  return Status::OK();
}

}  // namespace

Result<RecoveryInfo> Recover(FileBackend* backend, const std::string& prefix,
                             uint32_t log_shards, kv::KvStore* store) {
  RecoveryInfo info;
  info.next_lsn.assign(log_shards, 1);
  info.next_segment.assign(log_shards, 0);

  std::vector<uint64_t> marks(log_shards, 0);
  auto ckpt = ReadCheckpoint(backend, prefix);
  if (ckpt.ok()) {
    if (ckpt.value().marks.size() != log_shards) {
      return Status::IoError("checkpoint shard count mismatch");
    }
    marks = ckpt.value().marks;
    info.checkpoint_loaded = true;
    info.checkpoint_entries = ckpt.value().entries.size();
    for (const auto& [key, value] : ckpt.value().entries) {
      store->Put(key, value);
    }
  } else if (ckpt.status().code() != StatusCode::kNotFound) {
    return ckpt.status();
  }

  // Pass 1: collect every shard's usable record prefix. Uncommitted
  // transaction fragments stay IN the prefix — they consumed LSNs like any
  // other append, so dropping them from the sequence would break the
  // density check for the committed records logged after them.
  std::vector<std::vector<WalRecord>> usable(log_shards);
  for (uint32_t shard = 0; shard < log_shards; ++shard) {
    uint64_t next_apply = 0;
    uint32_t next_segment = 0;
    HWSTAR_RETURN_IF_ERROR(CollectShard(backend,
                                        ShardLogPrefix(prefix, shard),
                                        marks[shard], &info, &usable[shard],
                                        &next_apply, &next_segment));
    info.next_lsn[shard] = next_apply;
    info.next_segment[shard] = next_segment;
  }

  // Pass 2a: decide transaction fates globally. A transaction's effects
  // are installed only when its commit record survived AND every fragment
  // the commit promises decoded intact across all shards — a crash that
  // tore off any fragment (or the commit itself) drops the whole
  // write-set, never a piece of it.
  std::unordered_map<uint64_t, uint64_t> commit_total;  // tid -> promised
  std::unordered_map<uint64_t, uint64_t> frag_count;    // tid -> surviving
  for (const auto& shard_records : usable) {
    for (const WalRecord& record : shard_records) {
      if (record.txn > info.max_txn_id) info.max_txn_id = record.txn;
      if (record.type == WalRecordType::kTxnCommit) {
        commit_total[record.txn] = record.value;
      } else if (IsTxnFragment(record.type)) {
        ++frag_count[record.txn];
      }
    }
  }
  auto txn_committed = [&](uint64_t tid) {
    auto it = commit_total.find(tid);
    return it != commit_total.end() && frag_count[tid] == it->second;
  };

  // Pass 2b: apply. Plain records always apply; fragments apply only for
  // committed transactions; framing records are no-ops. Per-shard LSN
  // order is preserved, so a committed transaction's effect on a key and a
  // later plain overwrite of the same key land in log order.
  for (const auto& shard_records : usable) {
    for (const WalRecord& record : shard_records) {
      switch (record.type) {
        case WalRecordType::kPut:
          store->Put(record.key, record.value);
          ++info.records_applied;
          break;
        case WalRecordType::kDelete:
          store->Delete(record.key);
          ++info.records_applied;
          break;
        case WalRecordType::kTxnPut:
          if (txn_committed(record.txn)) {
            store->Put(record.key, record.value);
            ++info.records_applied;
          } else {
            ++info.txn_fragments_dropped;
          }
          break;
        case WalRecordType::kTxnDelete:
          if (txn_committed(record.txn)) {
            store->Delete(record.key);
            ++info.records_applied;
          } else {
            ++info.txn_fragments_dropped;
          }
          break;
        case WalRecordType::kTxnBegin:
        case WalRecordType::kTxnCommit:
          break;
      }
    }
  }
  for (const auto& [tid, total] : commit_total) {
    if (frag_count[tid] == total) {
      ++info.txns_applied;
    } else {
      ++info.txns_dropped;
    }
  }
  for (const auto& [tid, count] : frag_count) {
    if (commit_total.find(tid) == commit_total.end()) ++info.txns_dropped;
  }
  return info;
}

}  // namespace hwstar::dur
