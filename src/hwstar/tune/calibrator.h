#ifndef HWSTAR_TUNE_CALIBRATOR_H_
#define HWSTAR_TUNE_CALIBRATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "hwstar/hw/machine_model.h"

namespace hwstar::tune {

/// Options for one calibration pass. The defaults finish in well under a
/// second on a laptop core and are safe on a 1-CPU CI runner; benches that
/// want tighter confidence raise keys/repetitions.
struct CalibratorOptions {
  /// Machine whose cache hierarchy chooses the trial footprints (and
  /// whose ApplyAll values seed the sweep bounds). Default: the
  /// discovered host.
  hw::MachineModel model;
  /// Explicit trial footprints in bytes (table MemoryBytes targets).
  /// Empty = derive from model.caches: half of each level (resident
  /// there) plus 4x the last level (DRAM-resident).
  std::vector<uint64_t> footprints;
  /// Largest table the calibrator may allocate. Footprints above this are
  /// dropped (keeps CI and small hosts out of swap).
  uint64_t max_table_bytes = uint64_t{1} << 26;  // 64MB
  /// Floor on probe keys per timed trial. The effective count is raised
  /// to cover the trial table's build set (capped at 1M keys) so big-
  /// footprint trials don't measure a cache-warm sample of the table.
  uint32_t keys_per_trial = 1u << 14;
  /// Zipf skew of the trial probe stream over the build keys (0 =
  /// uniform, in [0, 1)). Calibration is workload-conditioning, not just
  /// machine-conditioning: under heavy skew the hot chains sit in cache
  /// whatever the table's footprint, which moves the scalar<->AMAC
  /// crossover — a caller that knows its skew should calibrate with it.
  double probe_theta = 0.0;
  /// Timed repetitions per configuration; the minimum is kept (standard
  /// microbenchmark practice: the min is the least-perturbed run).
  uint32_t repetitions = 3;
  /// Install the winners into the tune registry when done. Off = measure
  /// only (the dry-run/reporting mode).
  bool install = true;

  CalibratorOptions();
};

/// One (footprint, structure-class) measurement.
struct CalibrationTrial {
  uint64_t footprint_bytes = 0;
  /// GP class (LinearProbeTable): ns/key for the scalar loop and for each
  /// swept group width, parallel to `group_widths`.
  double gp_scalar_ns = 0.0;
  std::vector<uint32_t> group_widths;
  std::vector<double> gp_ns;
  uint32_t gp_winner = 0;  ///< 0 = scalar won
  /// AMAC class (ChainedTable): ns/key scalar vs. the best ring width.
  double amac_scalar_ns = 0.0;
  std::vector<double> amac_ns;  ///< parallel to group_widths
  uint32_t amac_winner = 0;     ///< 0 = scalar won
};

/// What a pass measured and (optionally) installed.
struct CalibrationResult {
  /// Winners. group width / ring width are the widths that won at the
  /// largest (memory-resident) footprint — the regime where miss overlap
  /// is the whole game; amac_min_table_bytes is the smallest trial
  /// footprint where the AMAC ring beat the scalar walk by the hysteresis
  /// margin (tables below it keep the scalar walk).
  uint32_t probe_group_size = 0;
  uint32_t amac_ring_width = 0;
  uint64_t amac_min_table_bytes = 0;
  /// SIMD class: the backend (0 = scalar, 1 = SSE4.2, 2 = AVX2) that won
  /// the cache-resident trials, measured per structure class --
  /// `simd_scan_ns` is ns/value for the selection-scan kernel and
  /// `simd_probe_ns` ns/key for the linear-probe FindBatch, both parallel
  /// to `simd_backends` (scalar first, up to simd::BestSupported()). A
  /// vector backend must beat scalar by the hysteresis margin on the
  /// combined time to win; the winner installs into tune::SimdBackend
  /// through its clamp.
  std::vector<uint32_t> simd_backends;
  std::vector<double> simd_scan_ns;
  std::vector<double> simd_probe_ns;
  uint32_t simd_backend = 0;
  bool installed = false;
  std::vector<CalibrationTrial> trials;
  /// Multi-line human-readable table of the trials + winners.
  std::string ToString() const;
};

/// Micro-benchmarks the batched probe kernels on *this* machine and
/// installs the winners into the tune registry: the offline half of the
/// self-tuning loop (the online half is tune::Controller). The paper's
/// argument is that hand-tuned constants die with the hardware generation
/// they were tuned on; the Calibrator re-derives them at deployment time
/// by measuring, per structure class:
///
///  - GP group width (tune::ProbeGroupSize): LinearProbeTable::FindBatch
///    swept over the compiled widths {4, 8, 16, 32} across table
///    footprints sitting in L1, L2, LLC and DRAM.
///  - AMAC ring width (tune::AmacRingWidth): ChainedTable::FindBatch,
///    same sweep.
///  - The scalar<->AMAC crossover (tune::AmacMinTableBytes): the smallest
///    footprint where the ring beats the scalar walk by >= 5% — below it
///    chains hit in cache and the ring's state shuffle is pure overhead.
///  - The SIMD backend (tune::SimdBackend): scalar vs every vector
///    backend the host cpuid reports, on cache-resident selection-scan
///    and linear-probe trials (the regime where the ISA, not DRAM, is
///    the limiter); a vector backend must beat scalar by the same margin.
///
/// RunOnce() is synchronous, allocation-heavy but bounded
/// (max_table_bytes), and terminates unconditionally: every sweep is over
/// fixed finite sets. Installs go through each tunable's central clamp, so
/// a calibration can never publish an out-of-bounds value. Thread-safe in
/// the trivial sense (no shared mutable state beyond the registry's
/// relaxed stores), though running two calibrators concurrently just
/// wastes cycles.
class Calibrator {
 public:
  explicit Calibrator(CalibratorOptions options = CalibratorOptions());

  /// One full measure-and-install pass; returns what it found.
  CalibrationResult RunOnce();

  const CalibratorOptions& options() const { return options_; }

 private:
  CalibratorOptions options_;
};

}  // namespace hwstar::tune

#endif  // HWSTAR_TUNE_CALIBRATOR_H_
