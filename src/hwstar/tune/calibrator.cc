#include "hwstar/tune/calibrator.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <memory>
#include <utility>

#include "hwstar/common/timer.h"
#include "hwstar/hw/topology.h"
#include "hwstar/ops/hash_table.h"
#include "hwstar/simd/backend.h"
#include "hwstar/simd/kernels.h"
#include "hwstar/tune/tunable.h"
#include "hwstar/workload/distributions.h"

namespace hwstar::tune {

namespace {

/// The compiled kernel widths (what WithProbeGroup can dispatch to).
constexpr uint32_t kWidths[] = {4, 8, 16, 32};

/// Hysteresis: the ring must beat the scalar walk by this factor at a
/// footprint before the crossover moves below it. Guards against noise
/// flapping the gate around break-even.
constexpr double kCrossoverMargin = 1.05;

/// Deterministic 64-bit LCG (Knuth MMIX constants) for key shuffling.
/// The calibrator must be reproducible run to run on the same machine.
class Lcg {
 public:
  explicit Lcg(uint64_t seed) : state_(seed) {}
  uint64_t Next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return state_;
  }

 private:
  uint64_t state_;
};

/// Distinct, well-spread keys (never LinearProbeTable::kEmpty).
uint64_t TrialKey(uint64_t i) { return i * 0x9E3779B97F4A7C15ULL + 1; }

/// Probe keys: hits drawn from the build set in shuffled order (so the
/// probe stream has no spatial correlation with insertion order), Zipf-
/// skewed over build ranks when theta > 0.
std::vector<uint64_t> MakeProbeKeys(uint64_t build_n, uint32_t count,
                                    double theta, uint64_t seed) {
  std::vector<uint64_t> keys(count);
  if (theta > 0.0) {
    workload::ZipfGenerator zipf(build_n, theta, seed);
    for (uint32_t i = 0; i < count; ++i) keys[i] = TrialKey(zipf.Next());
    return keys;
  }
  Lcg rng(seed);
  for (uint32_t i = 0; i < count; ++i) {
    keys[i] = TrialKey(rng.Next() % build_n);
  }
  return keys;
}

/// Best-of-repetitions ns/key for one probe configuration. The checksum
/// accumulation keeps the optimizer from deleting the work.
template <typename Fn>
double TimeNsPerKey(uint32_t repetitions, uint32_t keys, Fn&& run) {
  uint64_t best = ~uint64_t{0};
  for (uint32_t r = 0; r < repetitions; ++r) {
    WallTimer timer;
    run();
    best = std::min(best, timer.ElapsedNanos());
  }
  return static_cast<double>(best) / static_cast<double>(keys);
}

}  // namespace

CalibratorOptions::CalibratorOptions()
    : model(hw::MachineModel::FromHost(hw::DiscoverTopology())) {}

std::string CalibrationResult::ToString() const {
  std::string out;
  char line[256];
  for (const CalibrationTrial& t : trials) {
    std::snprintf(line, sizeof(line), "calib footprint=%lluB gp[scalar=%.1f",
                  static_cast<unsigned long long>(t.footprint_bytes),
                  t.gp_scalar_ns);
    out += line;
    for (size_t i = 0; i < t.group_widths.size(); ++i) {
      std::snprintf(line, sizeof(line), " G%u=%.1f", t.group_widths[i],
                    t.gp_ns[i]);
      out += line;
    }
    std::snprintf(line, sizeof(line), " win=%u] amac[scalar=%.1f",
                  t.gp_winner, t.amac_scalar_ns);
    out += line;
    for (size_t i = 0; i < t.group_widths.size(); ++i) {
      std::snprintf(line, sizeof(line), " K%u=%.1f", t.group_widths[i],
                    t.amac_ns[i]);
      out += line;
    }
    std::snprintf(line, sizeof(line), " win=%u] ns/key\n", t.amac_winner);
    out += line;
  }
  if (!simd_backends.empty()) {
    out += "calib simd";
    for (size_t i = 0; i < simd_backends.size(); ++i) {
      std::snprintf(
          line, sizeof(line), " %s[scan=%.2f probe=%.1f]",
          simd::BackendName(static_cast<simd::Backend>(simd_backends[i])),
          simd_scan_ns[i], simd_probe_ns[i]);
      out += line;
    }
    std::snprintf(line, sizeof(line), " win=%u ns\n", simd_backend);
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "calib winners: probe.group_size=%u probe.amac_ring=%u "
                "probe.amac_min_table_bytes=%llu simd.backend=%u "
                "installed=%d\n",
                probe_group_size, amac_ring_width,
                static_cast<unsigned long long>(amac_min_table_bytes),
                simd_backend, installed ? 1 : 0);
  out += line;
  return out;
}

Calibrator::Calibrator(CalibratorOptions options)
    : options_(std::move(options)) {}

CalibrationResult Calibrator::RunOnce() {
  CalibrationResult result;

  // Trial footprints: half of each modeled cache level (comfortably
  // resident there) plus 4x the last level (decisively out of cache).
  std::vector<uint64_t> footprints = options_.footprints;
  if (footprints.empty()) {
    for (const hw::CacheLevelSpec& level : options_.model.caches) {
      footprints.push_back(level.size_bytes / 2);
    }
    if (!options_.model.caches.empty()) {
      footprints.push_back(options_.model.caches.back().size_bytes * 4);
    }
  }
  if (footprints.empty()) footprints.push_back(uint64_t{1} << 20);
  std::sort(footprints.begin(), footprints.end());
  footprints.erase(std::unique(footprints.begin(), footprints.end()),
                   footprints.end());
  while (!footprints.empty() && footprints.back() > options_.max_table_bytes) {
    footprints.pop_back();
  }
  if (footprints.empty()) footprints.push_back(options_.max_table_bytes);

  const uint32_t reps = std::max(options_.repetitions, 1u);

  for (const uint64_t footprint : footprints) {
    CalibrationTrial trial;
    trial.footprint_bytes = footprint;

    // The probe stream must cover the build set (capped): probing a
    // small fixed sample of a big table leaves the sampled keys
    // cache-resident across repetitions, and the trial measures a warm
    // workload at what is nominally a DRAM footprint.
    const uint64_t trial_build_n = std::max<uint64_t>(footprint / 32, 64);
    const uint32_t probe_count = static_cast<uint32_t>(
        std::max<uint64_t>(std::max(options_.keys_per_trial, 1u),
                           std::min<uint64_t>(trial_build_n, 1u << 20)));

    // --- GP class: LinearProbeTable (flat array, independent misses) ---
    // MemoryBytes = capacity * 16 and capacity = 2 * expected at the 0.5
    // default load factor, so expected = footprint / 32 hits the target.
    {
      const uint64_t build_n = trial_build_n;
      ops::LinearProbeTable table(build_n);
      for (uint64_t i = 0; i < build_n; ++i) {
        table.Insert(TrialKey(i), i);
      }
      const std::vector<uint64_t> probes = MakeProbeKeys(
          build_n, probe_count, options_.probe_theta, /*seed=*/footprint + 1);
      std::vector<uint64_t> values(probe_count);
      volatile uint64_t sink = 0;

      trial.gp_scalar_ns = TimeNsPerKey(reps, probe_count, [&] {
        uint64_t hits = 0, v = 0;
        for (uint32_t i = 0; i < probe_count; ++i) {
          hits += table.Find(probes[i], &v);
        }
        sink = sink + hits;
      });
      double best_ns = trial.gp_scalar_ns;
      trial.gp_winner = 0;
      for (const uint32_t g : kWidths) {
        trial.group_widths.push_back(g);
        const double ns = TimeNsPerKey(reps, probe_count, [&] {
          sink = sink + table.FindBatch(probes.data(), probe_count,
                                        values.data(), nullptr, g);
        });
        trial.gp_ns.push_back(ns);
        if (ns < best_ns) {
          best_ns = ns;
          trial.gp_winner = g;
        }
      }
    }

    // --- AMAC class: ChainedTable (dependent chain misses) -------------
    // MemoryBytes = buckets * 8 + size * 24; with buckets == size that is
    // 32 bytes per key, so build_n = footprint / 32 again.
    {
      const uint64_t build_n = trial_build_n;
      ops::ChainedTable table(build_n);
      for (uint64_t i = 0; i < build_n; ++i) {
        table.Insert(TrialKey(i), i);
      }
      const std::vector<uint64_t> probes = MakeProbeKeys(
          build_n, probe_count, options_.probe_theta, /*seed=*/footprint + 2);
      std::vector<uint64_t> values(probe_count);
      volatile uint64_t sink = 0;

      trial.amac_scalar_ns = TimeNsPerKey(reps, probe_count, [&] {
        uint64_t hits = 0, v = 0;
        for (uint32_t i = 0; i < probe_count; ++i) {
          hits += table.Find(probes[i], &v);
        }
        sink = sink + hits;
      });
      double best_ns = trial.amac_scalar_ns;
      trial.amac_winner = 0;
      for (const uint32_t k : kWidths) {
        // Explicit nonzero width forces the ring past the footprint
        // gate: the trial measures the ring itself, the gate is what the
        // trial is *deriving*.
        const double ns = TimeNsPerKey(reps, probe_count, [&] {
          sink = sink + table.FindBatch(probes.data(), probe_count,
                                        values.data(), nullptr, k);
        });
        trial.amac_ns.push_back(ns);
        if (ns < best_ns) {
          best_ns = ns;
          trial.amac_winner = k;
        }
      }
    }

    result.trials.push_back(std::move(trial));
  }

  // --- SIMD class: scalar vs each vector backend the host supports ----
  // Cache-resident trials on purpose: out of cache every backend waits on
  // DRAM equally, so the scalar<->vector crossover only shows where the
  // data is close. Two structure classes -- the selection scan (pure
  // data-parallel compare) and the linear-probe FindBatch (batched
  // hashing + vector slot scan). The knob is forced around each timed
  // region; the winner installs through the tunable's clamp below, so a
  // measurement artifact can never publish an unsupported backend.
  {
    const uint32_t best_backend =
        static_cast<uint32_t>(simd::BestSupported());
    const uint64_t saved_backend = SimdBackend().Get();

    const uint32_t scan_n = 1u << 15;  // 256KB of int64: L2-resident
    std::vector<int64_t> scan_values(scan_n);
    Lcg scan_rng(0x51D);
    for (uint32_t i = 0; i < scan_n; ++i) {
      scan_values[i] = static_cast<int64_t>(scan_rng.Next() >> 1);
    }
    const int64_t scan_hi =
        std::numeric_limits<int64_t>::max() / 2;  // ~50% selectivity

    const uint64_t probe_build_n = uint64_t{1} << 13;  // 256KB table
    ops::LinearProbeTable probe_table(probe_build_n);
    for (uint64_t i = 0; i < probe_build_n; ++i) {
      probe_table.Insert(TrialKey(i), i);
    }
    const uint32_t simd_probe_count = std::max(options_.keys_per_trial, 1u);
    const std::vector<uint64_t> probes = MakeProbeKeys(
        probe_build_n, simd_probe_count, options_.probe_theta, /*seed=*/3);
    std::vector<uint64_t> values(simd_probe_count);
    volatile uint64_t sink = 0;

    double scalar_total = 0.0;
    double best_total = 0.0;
    for (uint32_t b = 0; b <= best_backend; ++b) {
      SimdBackend().Set(b);
      const double scan_ns = TimeNsPerKey(reps, scan_n, [&] {
        sink = sink + simd::CountInRange(simd::ActiveBackend(),
                                         scan_values.data(), scan_n, 0,
                                         scan_hi);
      });
      const double probe_ns = TimeNsPerKey(reps, simd_probe_count, [&] {
        sink = sink + probe_table.FindBatch(probes.data(), simd_probe_count,
                                            values.data(), nullptr);
      });
      result.simd_backends.push_back(b);
      result.simd_scan_ns.push_back(scan_ns);
      result.simd_probe_ns.push_back(probe_ns);
      const double total = scan_ns + probe_ns;
      if (b == 0) {
        scalar_total = total;
        best_total = total;
        result.simd_backend = 0;
      } else if (total * kCrossoverMargin <= scalar_total &&
                 total < best_total) {
        // A vector backend must beat scalar by the hysteresis margin on
        // the combined time; among those that do, fastest wins.
        best_total = total;
        result.simd_backend = b;
      }
    }
    SimdBackend().Set(saved_backend);
  }

  // Winners. Widths: whatever won the largest (most memory-resident)
  // footprint — miss overlap is the regime the knob exists for; a scalar
  // win there (possible on tiny max_table_bytes configs) keeps the
  // current knob value.
  const CalibrationTrial& deepest = result.trials.back();
  result.probe_group_size =
      deepest.gp_winner != 0
          ? deepest.gp_winner
          : static_cast<uint32_t>(ProbeGroupSize().Get());
  {
    uint32_t best_ring = deepest.amac_winner;
    if (best_ring == 0) {
      // Scalar won even out of cache: keep the ring knob as-is, the gate
      // below will park the crossover above every measured footprint.
      best_ring = static_cast<uint32_t>(AmacRingWidth().Get());
    }
    result.amac_ring_width = best_ring;
  }

  // Crossover: smallest footprint where the best ring beats the scalar
  // walk by the margin; every footprint below it keeps the scalar walk.
  // No such footprint = gate above the largest trial (clamped by spec).
  uint64_t crossover = deepest.footprint_bytes * 2;
  for (auto it = result.trials.rbegin(); it != result.trials.rend(); ++it) {
    const double best_amac =
        *std::min_element(it->amac_ns.begin(), it->amac_ns.end());
    if (best_amac * kCrossoverMargin <= it->amac_scalar_ns) {
      crossover = it->footprint_bytes;
    } else {
      break;  // first footprint (descending) where the ring stops paying
    }
  }
  result.amac_min_table_bytes = AmacMinTableBytes().Clamp(crossover);

  if (options_.install) {
    ProbeGroupSize().Set(result.probe_group_size);
    AmacRingWidth().Set(result.amac_ring_width);
    AmacMinTableBytes().Set(result.amac_min_table_bytes);
    SimdBackend().Set(result.simd_backend);
    result.installed = true;
    // Report the values as installed (post-clamp), not as measured.
    result.probe_group_size =
        static_cast<uint32_t>(ProbeGroupSize().Get());
    result.amac_ring_width = static_cast<uint32_t>(AmacRingWidth().Get());
    result.amac_min_table_bytes = AmacMinTableBytes().Get();
    result.simd_backend = static_cast<uint32_t>(SimdBackend().Get());
  }
  return result;
}

}  // namespace hwstar::tune
