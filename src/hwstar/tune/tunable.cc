#include "hwstar/tune/tunable.h"

#include <sstream>

#include "hwstar/common/macros.h"

namespace hwstar::tune {

namespace {

uint64_t RoundUpPow2(uint64_t v) {
  if (v <= 1) return 1;
  uint64_t p = 1;
  while (p < v && p < (uint64_t{1} << 63)) p <<= 1;
  return p;
}

}  // namespace

Tunable::Tunable(TunableSpec spec) : spec_(std::move(spec)), value_(0) {
  HWSTAR_CHECK(spec_.min <= spec_.max);
  HWSTAR_CHECK(!spec_.power_of_two ||
               (RoundUpPow2(spec_.min) == spec_.min &&
                RoundUpPow2(spec_.max) == spec_.max));
  // The default must be representable under the spec's own constraints.
  HWSTAR_CHECK(Clamp(spec_.default_value) == spec_.default_value);
  value_.store(spec_.default_value, std::memory_order_relaxed);
}

uint64_t Tunable::Clamp(uint64_t v) const {
  if (spec_.power_of_two) v = RoundUpPow2(v);
  if (v < spec_.min) v = spec_.min;
  if (v > spec_.max) v = spec_.max;
  return v;
}

uint64_t Tunable::Set(uint64_t v) {
  v = Clamp(v);
  value_.store(v, std::memory_order_relaxed);
  return v;
}

uint64_t Tunable::StepUp() {
  const uint64_t cur = Get();
  return Set(cur >= (uint64_t{1} << 63) ? spec_.max : cur * 2);
}

uint64_t Tunable::StepDown() { return Set(Get() / 2); }

Registry& Registry::Global() {
  // Leaked intentionally (see header): worker threads read knobs during
  // static destruction.
  static Registry* g = new Registry();
  return *g;
}

Tunable* Registry::Register(TunableSpec spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(spec.name);
  if (it != entries_.end()) {
    const TunableSpec& have = it->second->spec();
    HWSTAR_CHECK(have.default_value == spec.default_value &&
                 have.min == spec.min && have.max == spec.max &&
                 have.power_of_two == spec.power_of_two);
    return it->second.get();
  }
  const std::string name = spec.name;
  auto inserted =
      entries_.emplace(name, std::make_unique<Tunable>(std::move(spec)));
  return inserted.first->second.get();
}

Tunable* Registry::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second.get();
}

bool Registry::Set(const std::string& name, uint64_t value) {
  Tunable* t = Find(name);
  if (t == nullptr) return false;
  t->Set(value);
  return true;
}

void Registry::ResetAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, t] : entries_) t->Reset();
}

std::string Registry::DumpText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  for (const auto& [name, t] : entries_) {
    const TunableSpec& s = t->spec();
    os << "tunable " << name << " " << t->Get() << " default="
       << s.default_value << " min=" << s.min << " max=" << s.max << "\n";
  }
  return os.str();
}

std::vector<std::pair<std::string, uint64_t>> Registry::Values() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(entries_.size());
  for (const auto& [name, t] : entries_) out.emplace_back(name, t->Get());
  return out;
}

size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

// ---------------------------------------------------------------------------
// Core knobs. Each accessor registers on first use and caches the pointer;
// after that a call is a guard-variable check plus the relaxed load.

Tunable& ProbeGroupSize() {
  static Tunable* t = Registry::Global().Register(
      {"probe.group_size", 16, 4, 32, /*power_of_two=*/true,
       "GP group width for batched probe kernels (compiled widths 4..32)"});
  return *t;
}

Tunable& AmacRingWidth() {
  static Tunable* t = Registry::Global().Register(
      {"probe.amac_ring", 16, 4, 32, /*power_of_two=*/true,
       "AMAC in-flight probe state machines for chained-bucket walks"});
  return *t;
}

Tunable& AmacMinTableBytes() {
  static Tunable* t = Registry::Global().Register(
      {"probe.amac_min_table_bytes", 2u << 20, 64u << 10, 1u << 30,
       /*power_of_two=*/false,
       "table footprint below which AMAC degrades to the scalar walk"});
  return *t;
}

Tunable& StreamBatchRows() {
  static Tunable* t = Registry::Global().Register(
      {"stream.batch_rows", 4096, 64, 1u << 20, /*power_of_two=*/false,
       "rows per streaming micro-batch"});
  return *t;
}

Tunable& StreamMaxInflight() {
  static Tunable* t = Registry::Global().Register(
      {"stream.max_inflight", 8, 1, 4096, /*power_of_two=*/false,
       "max queued micro-batches per pipeline partition"});
  return *t;
}

Tunable& StreamLatenessBound() {
  static Tunable* t = Registry::Global().Register(
      {"stream.lateness_bound", 1024, 0, ~uint64_t{0},
       /*power_of_two=*/false,
       "watermark lateness bound in event-time units"});
  return *t;
}

Tunable& EpochAdvanceInterval() {
  static Tunable* t = Registry::Global().Register(
      {"epoch.advance_interval", 64, 1, 1u << 20, /*power_of_two=*/false,
       "retires between epoch-advance attempts"});
  return *t;
}

Tunable& EpochRetireBatch() {
  static Tunable* t = Registry::Global().Register(
      {"epoch.retire_batch", 128, 1, 1u << 20, /*power_of_two=*/false,
       "per-thread retire-list length that triggers a sweep"});
  return *t;
}

Tunable& MorselRows() {
  static Tunable* t = Registry::Global().Register(
      {"exec.morsel_rows", uint64_t{1} << 16, uint64_t{1} << 10,
       uint64_t{1} << 24, /*power_of_two=*/false,
       "rows per morsel for morsel-driven parallel loops"});
  return *t;
}

Tunable& SimdBackend() {
  static Tunable* t = Registry::Global().Register(
      {"simd.backend", 2, 0, 2, /*power_of_two=*/false,
       "data-parallel kernel backend: 0=scalar 1=sse4.2 2=avx2 "
       "(capped at host support when read)"});
  return *t;
}

namespace {
// Eagerly touch every core accessor at static-init time, so by-name
// lookups (ServiceOptions::tunables, ops tooling, dumps) see the full
// set in any process that links the registry — not just processes that
// happened to run a kernel first. The accessors' magic statics make this
// safe to race with early first-use from other initializers.
const bool g_core_knobs_registered = [] {
  ProbeGroupSize();
  AmacRingWidth();
  AmacMinTableBytes();
  StreamBatchRows();
  StreamMaxInflight();
  StreamLatenessBound();
  EpochAdvanceInterval();
  EpochRetireBatch();
  MorselRows();
  SimdBackend();
  return true;
}();
}  // namespace

}  // namespace hwstar::tune
