#ifndef HWSTAR_TUNE_TUNABLE_H_
#define HWSTAR_TUNE_TUNABLE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace hwstar::tune {

/// The self-tuning substrate's unit of configuration: one named, typed,
/// bounded hardware knob. The paper's thesis is that software must keep
/// tracking hardware it was never tuned for; a Tunable is the mechanism —
/// every knob that encodes a hardware assumption (probe group width, the
/// AMAC footprint gate, micro-batch rows, reclamation cadence, morsel
/// size) lives behind one of these instead of a one-off global, so it can
/// be published from a MachineModel, re-measured by the Calibrator,
/// nudged online by the Controller, and dumped next to metrics — all
/// through one surface.
///
/// Contract: values are *performance hints, never correctness inputs*.
/// Get() is a single relaxed atomic load (hot paths read knobs every
/// batch; the read must cost what the old raw global cost). Set() clamps
/// into [min, max] — and rounds up to a power of two when the spec
/// demands it — before a relaxed store, so no caller can publish an
/// out-of-range or structurally invalid value no matter how it reaches
/// the setter. Readers that race a Set see either the old or the new
/// value, both of which are in bounds; kernels stay bit-identical across
/// a flip because group width only changes miss overlap, not results.
struct TunableSpec {
  std::string name;           ///< dotted path, e.g. "probe.group_size"
  uint64_t default_value = 0;
  uint64_t min = 0;
  uint64_t max = ~uint64_t{0};
  /// Require a power of two (values round *up* to the next one, then
  /// clamp). For knobs that index compiled kernel widths or size masks.
  bool power_of_two = false;
  std::string help;           ///< one line for DumpText readers
};

class Tunable {
 public:
  explicit Tunable(TunableSpec spec);

  Tunable(const Tunable&) = delete;
  Tunable& operator=(const Tunable&) = delete;

  /// The current value; a relaxed load, safe and cheap on any hot path.
  uint64_t Get() const { return value_.load(std::memory_order_relaxed); }

  /// Installs Clamp(v) (relaxed store); returns what was installed.
  uint64_t Set(uint64_t v);

  /// What Set(v) would install: power-of-two rounding (up), then bounds.
  uint64_t Clamp(uint64_t v) const;

  /// Restores the spec default; returns it.
  uint64_t Reset() { return Set(spec_.default_value); }

  /// One bounded multiplicative step (the Controller's move): doubles /
  /// halves the current value, saturating at the spec bounds. Returns the
  /// installed value.
  uint64_t StepUp();
  uint64_t StepDown();

  const TunableSpec& spec() const { return spec_; }
  const std::string& name() const { return spec_.name; }

 private:
  const TunableSpec spec_;
  std::atomic<uint64_t> value_;
};

/// The process-wide catalogue of tunables. Components register their
/// knobs once (create-or-return by name, spec checked for agreement);
/// the Calibrator, the Controller, ops snapshots and config hooks all
/// address them by name through here. Registration, lookup-by-name and
/// dumping take a mutex — they are off the hot path; hot paths hold the
/// Tunable* (or use the inline accessors below) and pay only the relaxed
/// load.
class Registry {
 public:
  /// The process-wide registry. Never destroyed, like
  /// sync::EpochManager::Global(): knobs are read from worker threads
  /// that may outlive static destruction order.
  static Registry& Global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Create-or-return the tunable named spec.name. Re-registering with a
  /// different default/bounds/constraint is a programmer error (checked).
  /// The pointer stays valid for the registry's lifetime.
  Tunable* Register(TunableSpec spec);

  /// Lookup by name; null when unknown.
  Tunable* Find(const std::string& name) const;

  /// Sets a tunable by name (the config-hook path: svc options, ops
  /// tooling). Returns false when no such tunable exists; the value is
  /// clamped by the tunable's own spec as usual.
  bool Set(const std::string& name, uint64_t value);

  /// Restores every registered tunable to its spec default.
  void ResetAll();

  /// One line per tunable, sorted by name:
  ///   tunable <name> <value> default=<d> min=<m> max=<M>
  /// The format is deliberately scrape-shaped so it can ride along with
  /// obs::Registry::DumpText in ops snapshots and bench logs.
  std::string DumpText() const;

  /// (name, current value) for every registered tunable, sorted by name.
  std::vector<std::pair<std::string, uint64_t>> Values() const;

  size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Tunable>> entries_;
};

/// Core knobs, registered in Registry::Global() on first use. These are
/// the hardware-consciousness surface that used to be scattered across
/// `g_probe_group_size`-style globals in hw/machine_model.cc; each
/// accessor returns the same Tunable for the life of the process.
///
/// GP group width for the batched probe kernels (linear-probe /
/// concurrent hash tables, ART, B+-tree, Bloom filters): the number of
/// independent cache misses kept in flight. Power of two in [4, 32] —
/// the widths the kernels are compiled for.
Tunable& ProbeGroupSize();

/// AMAC ring width for chained-bucket walks (the variable-length-chain
/// discipline). Calibrated separately from the GP width because the ring
/// keeps state live across stages and saturates differently.
Tunable& AmacRingWidth();

/// Footprint (bytes) below which AMAC degrades to the scalar walk: a
/// cache-resident table's chain steps hit, and the ring's state shuffle
/// is pure overhead. Derived from the machine's cache specs by
/// MachineModel::FromHost and re-measured by the Calibrator.
Tunable& AmacMinTableBytes();

/// Rows per streaming micro-batch (dispatch amortization vs. emission
/// latency and cache footprint).
Tunable& StreamBatchRows();

/// Max queued micro-batches per pipeline partition (the backpressure
/// budget).
Tunable& StreamMaxInflight();

/// Watermark lateness bound in event-time units (0 = nothing may be
/// late).
Tunable& StreamLatenessBound();

/// Retires between epoch-advance attempts (sync::EpochManager cadence).
Tunable& EpochAdvanceInterval();

/// Per-thread retire-list length that triggers a sweep (bounds deferred
/// reclamation footprint).
Tunable& EpochRetireBatch();

/// Rows per morsel for morsel-driven parallel loops.
Tunable& MorselRows();

/// Requested simd::Backend for the data-parallel kernels (0 = scalar,
/// 1 = SSE4.2, 2 = AVX2). The default (2) means "the best the host has":
/// simd::ActiveBackend() takes the min of this knob and the cpuid-capped
/// simd::BestSupported(), so forcing a backend the host lacks degrades
/// gracefully instead of faulting. The Calibrator measures scalar-vs-SIMD
/// per structure class and installs the winner here, exactly like the
/// GP/AMAC width knobs.
Tunable& SimdBackend();

}  // namespace hwstar::tune

#endif  // HWSTAR_TUNE_TUNABLE_H_
