#ifndef HWSTAR_TUNE_CONTROLLER_H_
#define HWSTAR_TUNE_CONTROLLER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

#include "hwstar/exec/executor.h"

namespace hwstar::tune {

/// What the controller observed about a streaming pipeline since the
/// previous tick: the hwstar::obs signals it steers stream.batch_rows by.
struct StreamSignals {
  /// p99 of window-emission latency over the pipeline's life, in ns
  /// (obs::Histogram::Snapshot().Quantile(0.99)); 0 = no emissions yet.
  uint64_t emit_p99_ns = 0;
  /// Cumulative shed sub-batches (monotonic; the controller differences
  /// successive readings itself).
  uint64_t batches_shed = 0;
};

/// Epoch-reclamation pressure since the previous tick.
struct EpochSignals {
  /// Bytes sitting retired-but-unreclaimed (the deferred-memory bound).
  uint64_t retired_bytes = 0;
};

struct ControllerOptions {
  /// Pacing interval between ticks when running via Start().
  uint64_t interval_ms = 100;
  /// Emission-latency target: p99 above it steps stream.batch_rows down
  /// (smaller batches emit sooner), p99 under target/headroom_divisor
  /// steps it up (amortization is free when latency has slack).
  uint64_t emit_p99_target_ns = 50'000'000;  // 50ms
  /// See emit_p99_target_ns; 4 = step up only under a quarter of target.
  uint64_t headroom_divisor = 4;
  /// Retired-bytes budget: above it the epoch knobs step toward tighter
  /// reclamation (smaller retire batch, shorter advance interval); under
  /// a quarter of it they relax back toward their spec defaults.
  uint64_t epoch_bytes_budget = 64u << 20;  // 64MB
};

/// The online half of the self-tuning loop (the offline half is
/// tune::Calibrator): a feedback controller that watches hwstar::obs
/// signals and nudges runtime knobs in bounded multiplicative steps —
/// Tunable::StepUp/StepDown, which double/halve and saturate at the spec
/// bounds, so the controller can never walk a knob somewhere illegal and
/// a misbehaving signal costs at most a few halvings.
///
/// Signals come in as closures rather than borrowed pipeline/manager
/// pointers, so the controller layer depends only on exec/ and the knob
/// substrate; callers bind whatever they want watched:
///
///   tune::Controller ctl(&executor);
///   ctl.WatchStream([&] { return tune::StreamSignals{
///       pipeline->emit_latency_histogram().Snapshot().Quantile(0.99),
///       pipeline->batches_shed()}; });
///   ctl.WatchEpoch([&] { return tune::EpochSignals{
///       sync::EpochManager::Global().stats().retired_bytes}; });
///   ctl.Start();   // paced TickOnce on the shared Executor
///
/// Policy per tick (deliberately boring — bounded steps, hysteresis gaps
/// between the up and down thresholds, one move per signal per tick):
///   - sheds since last tick > 0        -> stream.batch_rows StepUp
///     (bigger batches = fewer enqueues against the same queue bound)
///   - else emit p99 > target           -> stream.batch_rows StepDown
///   - else emit p99 < target/headroom  -> stream.batch_rows StepUp
///   - retired bytes > budget           -> epoch.retire_batch StepDown,
///                                         epoch.advance_interval StepDown
///   - retired bytes < budget/4         -> one step back toward the spec
///                                         default (never past it)
///
/// TickOnce() is public and synchronous so tests and benches can drive
/// the loop deterministically without the pacer thread.
class Controller {
 public:
  /// `executor` runs the periodic ticks (null = tick on the pacer thread
  /// itself); borrowed, must outlive the controller.
  explicit Controller(exec::Executor* executor,
                      ControllerOptions options = ControllerOptions());
  ~Controller();

  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  /// Installs the stream-signal source (replaces any previous one).
  /// Not thread-safe against a running controller; bind before Start().
  void WatchStream(std::function<StreamSignals()> fn);
  /// Installs the epoch-signal source.
  void WatchEpoch(std::function<EpochSignals()> fn);

  /// Starts the pacer: every interval_ms it submits one TickOnce onto
  /// the executor (or runs it inline when executor is null / shutting
  /// down). Idempotent.
  void Start();
  /// Stops the pacer and waits for it; in-flight ticks finish. Idempotent.
  void Stop();

  /// One synchronous control step: read signals, apply the policy above.
  void TickOnce();

  uint64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }
  /// Knob moves made (a tick that changes nothing adjusts nothing).
  uint64_t adjustments() const {
    return adjustments_.load(std::memory_order_relaxed);
  }

  const ControllerOptions& options() const { return options_; }

 private:
  void PacerLoop();

  exec::Executor* executor_;
  ControllerOptions options_;

  std::function<StreamSignals()> stream_signals_;
  std::function<EpochSignals()> epoch_signals_;
  /// Previous tick's cumulative shed count (sheds are monotonic
  /// counters; the policy acts on the per-tick delta).
  uint64_t last_shed_ = 0;

  std::atomic<uint64_t> ticks_{0};
  std::atomic<uint64_t> adjustments_{0};

  /// Serializes tick bodies: a paced tick that overruns the interval may
  /// overlap the next one (and tests drive TickOnce directly).
  std::mutex tick_mutex_;

  std::mutex mutex_;  ///< pacer lifecycle: stop flag, cv, inflight count
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  bool started_ = false;
  uint64_t inflight_ = 0;  ///< executor-submitted ticks not yet finished
  std::thread pacer_;
};

}  // namespace hwstar::tune

#endif  // HWSTAR_TUNE_CONTROLLER_H_
