#include "hwstar/tune/controller.h"

#include <chrono>
#include <utility>

#include "hwstar/tune/tunable.h"

namespace hwstar::tune {

namespace {

/// One bounded multiplicative step of `t` toward `target` (never past
/// it); returns whether the value moved. The relax-back policy: knobs
/// pushed off their defaults by past pressure drift home one step per
/// tick once the pressure is gone, instead of snapping (which would
/// re-create the condition that pushed them in the first place).
bool StepToward(Tunable& t, uint64_t target) {
  const uint64_t cur = t.Get();
  if (cur == target) return false;
  if (cur < target) {
    const uint64_t next = t.StepUp();
    if (next > target) t.Set(target);
    return t.Get() != cur;
  }
  const uint64_t next = t.StepDown();
  if (next < target) t.Set(target);
  return t.Get() != cur;
}

}  // namespace

Controller::Controller(exec::Executor* executor, ControllerOptions options)
    : executor_(executor), options_(options) {}

Controller::~Controller() { Stop(); }

void Controller::WatchStream(std::function<StreamSignals()> fn) {
  stream_signals_ = std::move(fn);
}

void Controller::WatchEpoch(std::function<EpochSignals()> fn) {
  epoch_signals_ = std::move(fn);
}

void Controller::Start() {
  std::lock_guard<std::mutex> lk(mutex_);
  if (started_) return;
  started_ = true;
  stopping_ = false;
  pacer_ = std::thread([this] { PacerLoop(); });
}

void Controller::Stop() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    if (!started_) return;
    stopping_ = true;
    stop_cv_.notify_all();
  }
  pacer_.join();
  {
    // A tick submitted to the executor just before the stop may still be
    // running; it must not outlive this object.
    std::unique_lock<std::mutex> lk(mutex_);
    stop_cv_.wait(lk, [&] { return inflight_ == 0; });
    started_ = false;
  }
}

void Controller::PacerLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mutex_);
      stop_cv_.wait_for(lk, std::chrono::milliseconds(options_.interval_ms),
                        [&] { return stopping_; });
      if (stopping_) return;
      ++inflight_;
    }
    auto tick = [this](uint32_t /*worker*/) {
      TickOnce();
      std::lock_guard<std::mutex> lk(mutex_);
      --inflight_;
      stop_cv_.notify_all();
    };
    if (executor_ == nullptr || !executor_->Submit(tick)) {
      tick(0);
    }
  }
}

void Controller::TickOnce() {
  std::lock_guard<std::mutex> lk(tick_mutex_);
  ticks_.fetch_add(1, std::memory_order_relaxed);
  uint64_t moves = 0;

  if (stream_signals_) {
    const StreamSignals s = stream_signals_();
    const uint64_t shed_delta = s.batches_shed - last_shed_;
    last_shed_ = s.batches_shed;
    Tunable& rows = StreamBatchRows();
    const uint64_t before = rows.Get();
    if (shed_delta > 0) {
      // Backpressure is biting: fewer, bigger batches against the same
      // queue bound carry more rows per queue slot.
      rows.StepUp();
    } else if (s.emit_p99_ns > options_.emit_p99_target_ns) {
      rows.StepDown();
    } else if (s.emit_p99_ns > 0 &&
               s.emit_p99_ns * options_.headroom_divisor <
                   options_.emit_p99_target_ns) {
      rows.StepUp();
    }
    moves += rows.Get() != before;
  }

  if (epoch_signals_) {
    const EpochSignals e = epoch_signals_();
    Tunable& batch = EpochRetireBatch();
    Tunable& interval = EpochAdvanceInterval();
    if (e.retired_bytes > options_.epoch_bytes_budget) {
      // Over budget: sweep sooner and attempt advances more often.
      const uint64_t b = batch.Get(), i = interval.Get();
      batch.StepDown();
      interval.StepDown();
      moves += batch.Get() != b;
      moves += interval.Get() != i;
    } else if (e.retired_bytes < options_.epoch_bytes_budget / 4) {
      moves += StepToward(batch, batch.spec().default_value);
      moves += StepToward(interval, interval.spec().default_value);
    }
  }

  if (moves != 0) adjustments_.fetch_add(moves, std::memory_order_relaxed);
}

}  // namespace hwstar::tune
