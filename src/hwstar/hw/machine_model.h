#ifndef HWSTAR_HW_MACHINE_MODEL_H_
#define HWSTAR_HW_MACHINE_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "hwstar/hw/topology.h"

namespace hwstar::hw {

/// Parameters of one modeled cache level. Latencies are in (reference)
/// cycles and follow published numbers for 2013-era Intel server parts,
/// which is the hardware generation the paper discusses.
struct CacheLevelSpec {
  uint64_t size_bytes = 0;
  uint32_t line_bytes = 64;
  uint32_t associativity = 8;
  uint32_t hit_latency_cycles = 4;
  bool shared = false;
};

/// Parameters of the modeled TLB.
struct TlbSpec {
  uint32_t entries = 64;
  uint32_t page_bytes = 4096;
  uint32_t miss_penalty_cycles = 30;
};

/// Full description of a (real or hypothetical) machine. This is the single
/// configuration object consumed by the hwstar::sim hierarchy model, the
/// NUMA model and the energy model, so every experiment states its machine
/// explicitly.
struct MachineModel {
  std::string name;
  uint32_t cores = 8;
  std::vector<CacheLevelSpec> caches;
  TlbSpec tlb;
  uint32_t dram_latency_cycles = 200;
  /// NUMA: number of nodes and the multiplier applied to DRAM latency for
  /// remote-node accesses.
  uint32_t numa_nodes = 1;
  double numa_remote_multiplier = 1.0;
  /// Energy proxy, in picojoules per event (values follow the
  /// "energy-per-operation" literature: a DRAM access costs ~2 orders of
  /// magnitude more than a cache hit).
  double energy_pj_l1_hit = 10.0;
  double energy_pj_l2_hit = 30.0;
  double energy_pj_l3_hit = 100.0;
  double energy_pj_dram = 2000.0;
  double energy_pj_instruction = 1.0;
  /// Default group size for the batched probe kernels in hwstar::ops (the
  /// GP group width / AMAC ring width): the number of independent cache
  /// misses the kernels keep in flight. The useful range is bounded by the
  /// core's miss-handling resources (~10 line-fill buffers on 2013-era
  /// parts), which is why the default sits at 16 rather than scaling with
  /// table size. Call ApplyProbeDefaults() to make a model's value the
  /// process-wide default the kernels read when callers pass 0.
  uint32_t probe_group_size = 16;

  /// Streaming knobs consumed by hwstar::stream (defaults for callers
  /// that pass 0; see ApplyStreamDefaults()).
  ///
  /// Rows per micro-batch: the streaming unit of work, so it trades
  /// per-batch dispatch/partitioning overhead against emission latency
  /// and cache footprint. 4096 rows of (key, value, ts) is 96KB — it
  /// streams through L2 without evicting the window state that has to
  /// stay hot between batches.
  uint32_t stream_batch_rows = 4096;
  /// Bound on queued micro-batches per pipeline partition: the
  /// backpressure budget. Past it the pipeline blocks the pump or sheds
  /// oldest-first, depending on its policy — an unbounded queue is the
  /// streaming analogue of the admission-free svc baseline.
  uint32_t stream_max_inflight = 8;
  /// Watermark lateness bound in event-time units: how far records may
  /// arrive out of order before they are dropped as late. An ingestion
  /// property rather than a silicon one, but a default the whole process
  /// should agree on, so it lives on the same knob surface.
  uint64_t stream_lateness_bound = 1024;

  /// Reclamation knobs consumed by hwstar::sync (see ApplySyncDefaults()).
  ///
  /// Retires between epoch-advance attempts: the advance scan reads every
  /// registered thread's slot, so its cost grows with thread count and it
  /// must be amortized over many retires. Smaller = tighter memory bound,
  /// larger = fewer shared-line reads on the write path.
  uint32_t epoch_advance_interval = 64;
  /// Per-thread retire-list length that triggers a sweep. Bounds the
  /// reclamation backlog a single writer can accumulate; the worst-case
  /// deferred footprint is roughly threads x retire_batch x object size.
  uint32_t epoch_retire_batch = 128;

  /// A 2013-era two-socket server: 8 cores, 32KB/256KB/20MB caches, 2 NUMA
  /// nodes with 1.6x remote latency.
  static MachineModel Server2013();

  /// A single-socket desktop: 4 cores, 32KB/256KB/8MB, uniform memory.
  static MachineModel Desktop();

  /// A many-core part: 32 small cores, 32KB/512KB, no L3, higher DRAM
  /// latency -- the "sea of simple cores" direction the paper discusses.
  static MachineModel ManyCore();

  /// Builds a model from the discovered host topology, filling latencies
  /// with the Server2013 defaults.
  static MachineModel FromHost(const CpuTopology& topo);

  /// Publishes this model's tunables (currently probe_group_size) as the
  /// process-wide defaults consumed by the ops batched probe kernels.
  void ApplyProbeDefaults() const;

  /// Publishes this model's streaming tunables (stream_batch_rows,
  /// stream_max_inflight, stream_lateness_bound) as the process-wide
  /// defaults consumed by hwstar::stream when callers pass 0.
  void ApplyStreamDefaults() const;

  /// Publishes this model's reclamation tunables (epoch_advance_interval,
  /// epoch_retire_batch) as the process-wide defaults consumed by
  /// sync::EpochManager.
  void ApplySyncDefaults() const;

  /// One-line summary for reports.
  std::string ToString() const;
};

/// Process-wide default group size for the batched probe kernels; what the
/// kernels use when a caller passes group_size = 0. Starts at 16 (the
/// MachineModel default) and is runtime-tunable via
/// SetDefaultProbeGroupSize / MachineModel::ApplyProbeDefaults. Reads and
/// writes are relaxed atomics: the value is a performance hint, never a
/// correctness input.
uint32_t DefaultProbeGroupSize();

/// Sets the process-wide default, clamped to [1, 64]. Thread-safe.
void SetDefaultProbeGroupSize(uint32_t group_size);

/// Process-wide default rows per streaming micro-batch; what
/// stream::Pipeline uses when its options pass 0. Relaxed atomics, same
/// contract as DefaultProbeGroupSize: a tuning hint, never a correctness
/// input.
uint32_t DefaultStreamBatchRows();

/// Sets the process-wide micro-batch default, clamped to [64, 1<<20].
/// Thread-safe.
void SetDefaultStreamBatchRows(uint32_t rows);

/// Process-wide default bound on in-flight micro-batches per pipeline
/// partition.
uint32_t DefaultStreamMaxInflight();

/// Sets the in-flight default, clamped to [1, 4096]. Thread-safe.
void SetDefaultStreamMaxInflight(uint32_t batches);

/// Process-wide default watermark lateness bound (event-time units).
uint64_t DefaultStreamLatenessBound();

/// Sets the lateness default (any value, 0 = drop everything behind the
/// max timestamp seen). Thread-safe.
void SetDefaultStreamLatenessBound(uint64_t bound);

/// Process-wide retires-per-advance-attempt cadence for
/// sync::EpochManager. Relaxed atomics: a tuning hint read on the retire
/// path, never a correctness input (reclamation safety comes from the
/// epoch rule, not the cadence).
uint32_t DefaultEpochAdvanceInterval();

/// Sets the advance cadence, clamped to [1, 1<<20]. Thread-safe.
void SetDefaultEpochAdvanceInterval(uint32_t retires);

/// Process-wide per-thread retire-list sweep threshold for
/// sync::EpochManager.
uint32_t DefaultEpochRetireBatch();

/// Sets the sweep threshold, clamped to [1, 1<<20]. Thread-safe.
void SetDefaultEpochRetireBatch(uint32_t entries);

}  // namespace hwstar::hw

#endif  // HWSTAR_HW_MACHINE_MODEL_H_
