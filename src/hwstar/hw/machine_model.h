#ifndef HWSTAR_HW_MACHINE_MODEL_H_
#define HWSTAR_HW_MACHINE_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "hwstar/hw/topology.h"

namespace hwstar::hw {

/// Parameters of one modeled cache level. Latencies are in (reference)
/// cycles and follow published numbers for 2013-era Intel server parts,
/// which is the hardware generation the paper discusses.
struct CacheLevelSpec {
  uint64_t size_bytes = 0;
  uint32_t line_bytes = 64;
  uint32_t associativity = 8;
  uint32_t hit_latency_cycles = 4;
  bool shared = false;
};

/// Parameters of the modeled TLB.
struct TlbSpec {
  uint32_t entries = 64;
  uint32_t page_bytes = 4096;
  uint32_t miss_penalty_cycles = 30;
};

/// Full description of a (real or hypothetical) machine. This is the single
/// configuration object consumed by the hwstar::sim hierarchy model, the
/// NUMA model and the energy model, so every experiment states its machine
/// explicitly.
///
/// It is also the *publication source* for the runtime's hardware knobs:
/// the tunable fields below are a model's opinion of where each knob
/// should sit, and ApplyAll() installs them into the hwstar::tune
/// registry — the one named/bounded/relaxed-atomic substrate every kernel
/// reads its defaults from (and that the tune::Calibrator overwrites with
/// measured winners). A MachineModel is a starting point; the registry is
/// the live truth.
struct MachineModel {
  std::string name;
  uint32_t cores = 8;
  std::vector<CacheLevelSpec> caches;
  TlbSpec tlb;
  uint32_t dram_latency_cycles = 200;
  /// NUMA: number of nodes and the multiplier applied to DRAM latency for
  /// remote-node accesses.
  uint32_t numa_nodes = 1;
  double numa_remote_multiplier = 1.0;
  /// Energy proxy, in picojoules per event (values follow the
  /// "energy-per-operation" literature: a DRAM access costs ~2 orders of
  /// magnitude more than a cache hit).
  double energy_pj_l1_hit = 10.0;
  double energy_pj_l2_hit = 30.0;
  double energy_pj_l3_hit = 100.0;
  double energy_pj_dram = 2000.0;
  double energy_pj_instruction = 1.0;

  // --- Tunable fields (published into tune::Registry by ApplyAll) ------

  /// Default group size for the batched GP probe kernels in hwstar::ops:
  /// the number of independent cache misses kept in flight. The useful
  /// range is bounded by the core's miss-handling resources (~10
  /// line-fill buffers on 2013-era parts), which is why the default sits
  /// at 16 rather than scaling with table size.
  uint32_t probe_group_size = 16;
  /// AMAC ring width for chained-bucket walks (tune::AmacRingWidth),
  /// calibrated separately from the GP width.
  uint32_t amac_ring_width = 16;
  /// Table footprint below which the AMAC kernels degrade to the scalar
  /// walk (tune::AmacMinTableBytes): a cache-resident table's chain steps
  /// hit and the ring's state shuffle is pure overhead. FromHost() derives
  /// this from the discovered cache hierarchy (roughly the per-core share
  /// of the last-level cache); the hand-built models carry the 2MB the E18
  /// measurements were taken at.
  uint64_t amac_min_table_bytes = 2u << 20;

  /// Streaming knobs consumed by hwstar::stream.
  ///
  /// Rows per micro-batch: the streaming unit of work, so it trades
  /// per-batch dispatch/partitioning overhead against emission latency
  /// and cache footprint. 4096 rows of (key, value, ts) is 96KB — it
  /// streams through L2 without evicting the window state that has to
  /// stay hot between batches.
  uint32_t stream_batch_rows = 4096;
  /// Bound on queued micro-batches per pipeline partition: the
  /// backpressure budget. Past it the pipeline blocks the pump or sheds
  /// oldest-first, depending on its policy — an unbounded queue is the
  /// streaming analogue of the admission-free svc baseline.
  uint32_t stream_max_inflight = 8;
  /// Watermark lateness bound in event-time units: how far records may
  /// arrive out of order before they are dropped as late. An ingestion
  /// property rather than a silicon one, but a default the whole process
  /// should agree on, so it lives on the same knob surface.
  uint64_t stream_lateness_bound = 1024;

  /// Reclamation knobs consumed by hwstar::sync.
  ///
  /// Retires between epoch-advance attempts: the advance scan reads every
  /// registered thread's slot, so its cost grows with thread count and it
  /// must be amortized over many retires. Smaller = tighter memory bound,
  /// larger = fewer shared-line reads on the write path.
  uint32_t epoch_advance_interval = 64;
  /// Per-thread retire-list length that triggers a sweep. Bounds the
  /// reclamation backlog a single writer can accumulate; the worst-case
  /// deferred footprint is roughly threads x retire_batch x object size.
  uint32_t epoch_retire_batch = 128;

  /// Rows per morsel for morsel-driven parallel loops (tune::MorselRows).
  uint64_t morsel_rows = uint64_t{1} << 16;

  /// Requested simd::Backend for the data-parallel kernels
  /// (tune::SimdBackend): 0 = scalar, 1 = SSE4.2, 2 = AVX2. The hand-built
  /// models ask for the best (2) and let simd::ActiveBackend cap it at
  /// what the host cpuid actually reports; FromHost() records the detected
  /// answer so the knob dump names the ISA the machine really ran.
  uint32_t simd_backend = 2;

  /// A 2013-era two-socket server: 8 cores, 32KB/256KB/20MB caches, 2 NUMA
  /// nodes with 1.6x remote latency.
  static MachineModel Server2013();

  /// A single-socket desktop: 4 cores, 32KB/256KB/8MB, uniform memory.
  static MachineModel Desktop();

  /// A many-core part: 32 small cores, 32KB/512KB, no L3, higher DRAM
  /// latency -- the "sea of simple cores" direction the paper discusses.
  static MachineModel ManyCore();

  /// Builds a model from the discovered host topology, filling latencies
  /// with the Server2013 defaults. The AMAC footprint gate is derived
  /// from the detected cache sizes (per-core share of a shared LLC, or
  /// the last private level when there is no shared cache) instead of the
  /// hand-built models' constant.
  static MachineModel FromHost(const CpuTopology& topo);

  /// Publishes every tunable field above into the process-wide
  /// tune::Registry — the single publication path that replaced the old
  /// ApplyProbeDefaults / ApplyStreamDefaults / ApplySyncDefaults trio.
  /// Each value passes through its tunable's central clamp, so a model
  /// carrying an out-of-range value publishes the nearest legal one.
  void ApplyAll() const;

  /// One-line summary for reports.
  std::string ToString() const;
};

/// Process-wide default accessors, now thin wrappers over the hwstar::tune
/// registry (one relaxed atomic load / clamped relaxed store). They are
/// kept because consumers read knobs through them on hot paths and the
/// hw:: spelling documents *which* hardware assumption is being consulted;
/// the registry is the single backing store, so tune::Registry::Global()
/// .Set("probe.group_size", ...), a Calibrator install, and
/// SetDefaultProbeGroupSize() are all the same write with the same bounds.
///
/// All values are performance hints, never correctness inputs.

/// GP group width the batched probe kernels use when a caller passes 0.
/// Clamped to a power of two in [4, 32] (the compiled kernel widths).
uint32_t DefaultProbeGroupSize();
void SetDefaultProbeGroupSize(uint32_t group_size);

/// AMAC ring width for chained-bucket walks when a caller passes 0.
/// Clamped to a power of two in [4, 32].
uint32_t DefaultAmacRingWidth();
void SetDefaultAmacRingWidth(uint32_t ring_width);

/// Footprint gate below which AMAC kernels take the scalar walk.
/// Clamped to [64KB, 1GB].
uint64_t DefaultAmacMinTableBytes();
void SetDefaultAmacMinTableBytes(uint64_t bytes);

/// Rows per streaming micro-batch. Clamped to [64, 1<<20].
uint32_t DefaultStreamBatchRows();
void SetDefaultStreamBatchRows(uint32_t rows);

/// Bound on in-flight micro-batches per pipeline partition. Clamped to
/// [1, 4096].
uint32_t DefaultStreamMaxInflight();
void SetDefaultStreamMaxInflight(uint32_t batches);

/// Watermark lateness bound (event-time units; 0 = drop everything behind
/// the max timestamp seen).
uint64_t DefaultStreamLatenessBound();
void SetDefaultStreamLatenessBound(uint64_t bound);

/// Retires-per-advance-attempt cadence for sync::EpochManager. Clamped to
/// [1, 1<<20].
uint32_t DefaultEpochAdvanceInterval();
void SetDefaultEpochAdvanceInterval(uint32_t retires);

/// Per-thread retire-list sweep threshold for sync::EpochManager. Clamped
/// to [1, 1<<20].
uint32_t DefaultEpochRetireBatch();
void SetDefaultEpochRetireBatch(uint32_t entries);

/// Requested SIMD backend for the hwstar::simd kernels (0 = scalar,
/// 1 = SSE4.2, 2 = AVX2). Clamped to [0, 2]; additionally capped at the
/// host's cpuid support when read through simd::ActiveBackend().
uint32_t DefaultSimdBackend();
void SetDefaultSimdBackend(uint32_t backend);

}  // namespace hwstar::hw

#endif  // HWSTAR_HW_MACHINE_MODEL_H_
