#ifndef HWSTAR_HW_TOPOLOGY_H_
#define HWSTAR_HW_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <vector>

namespace hwstar::hw {

/// One level of the host cache hierarchy as discovered from the OS.
struct CacheLevelInfo {
  int level = 0;               ///< 1, 2, 3, ...
  std::string type;            ///< "Data", "Instruction", "Unified"
  uint64_t size_bytes = 0;     ///< total capacity
  uint32_t line_bytes = 64;    ///< cache-line size
  uint32_t associativity = 8;  ///< ways
  bool shared = false;         ///< shared across cores (heuristic: level >= 3)
};

/// Host CPU topology: logical core count and the data/unified cache levels
/// of core 0. All fields have safe fallbacks so the struct is usable on
/// hosts without sysfs (the values then describe a generic 2013-era server,
/// matching the paper's hardware generation).
struct CpuTopology {
  uint32_t logical_cores = 1;
  std::vector<CacheLevelInfo> caches;

  /// Returns the capacity of the given data/unified cache level, or 0 when
  /// that level is absent.
  uint64_t CacheSizeBytes(int level) const;

  /// Human-readable one-line-per-level summary.
  std::string ToString() const;
};

/// Discovers the host topology. Reads
/// /sys/devices/system/cpu/cpu0/cache/index*/ when available; otherwise
/// returns the generic fallback (32KB L1d / 256KB L2 / 8MB L3, 64B lines).
CpuTopology DiscoverTopology();

}  // namespace hwstar::hw

#endif  // HWSTAR_HW_TOPOLOGY_H_
