#ifndef HWSTAR_HW_TOPOLOGY_H_
#define HWSTAR_HW_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <vector>

namespace hwstar::hw {

/// One level of the host cache hierarchy as discovered from the OS.
struct CacheLevelInfo {
  int level = 0;               ///< 1, 2, 3, ...
  std::string type;            ///< "Data", "Instruction", "Unified"
  uint64_t size_bytes = 0;     ///< total capacity
  uint32_t line_bytes = 64;    ///< cache-line size
  uint32_t associativity = 8;  ///< ways
  bool shared = false;         ///< shared across cores (heuristic: level >= 3)
};

/// SIMD instruction-set extensions of the host CPU, as reported by cpuid.
/// These pick the hwstar::simd kernel backend (and FromHost's
/// simd_backend knob value); every bench and calibration log records them
/// so a number is never quoted without the ISA that produced it.
struct CpuIsaFeatures {
  bool sse42 = false;    ///< SSE4.2 (pcmpgtq, the 2-lane backend floor)
  bool avx2 = false;     ///< AVX2 (the 4-lane backend)
  bool avx512f = false;  ///< AVX-512 Foundation (detected + reported only;
                         ///< no compiled backend yet)

  /// Space-separated flag list, "none" when nothing is supported.
  std::string ToString() const;
};

/// Queries cpuid for the flags above. Always reports the hardware truth —
/// HWSTAR_DISABLE_SIMD gates which kernels are *compiled*, not what the
/// host *has* (simd::BestSupported applies that cap). Non-x86 builds
/// report all-false.
CpuIsaFeatures DetectIsaFeatures();

/// Host CPU topology: logical core count, ISA features, and the
/// data/unified cache levels of core 0. All fields have safe fallbacks so
/// the struct is usable on hosts without sysfs (the values then describe a
/// generic 2013-era server, matching the paper's hardware generation).
struct CpuTopology {
  uint32_t logical_cores = 1;
  CpuIsaFeatures isa;
  std::vector<CacheLevelInfo> caches;

  /// Returns the capacity of the given data/unified cache level, or 0 when
  /// that level is absent.
  uint64_t CacheSizeBytes(int level) const;

  /// Human-readable one-line-per-level summary.
  std::string ToString() const;
};

/// Discovers the host topology. Reads
/// /sys/devices/system/cpu/cpu0/cache/index*/ when available; otherwise
/// returns the generic fallback (32KB L1d / 256KB L2 / 8MB L3, 64B lines).
CpuTopology DiscoverTopology();

}  // namespace hwstar::hw

#endif  // HWSTAR_HW_TOPOLOGY_H_
