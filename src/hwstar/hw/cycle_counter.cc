#include "hwstar/hw/cycle_counter.h"

#include <chrono>
#include <mutex>
#include <thread>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace hwstar::hw {

uint64_t ReadCycleCounter() {
#if defined(__x86_64__) || defined(_M_X64)
  return __rdtsc();
#else
  auto now = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now).count());
#endif
}

double EstimateCycleCounterHz() {
  static double cached = 0.0;
  static std::once_flag flag;
  std::call_once(flag, [] {
    const auto t0 = std::chrono::steady_clock::now();
    const uint64_t c0 = ReadCycleCounter();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const uint64_t c1 = ReadCycleCounter();
    const auto t1 = std::chrono::steady_clock::now();
    const double secs =
        std::chrono::duration<double>(t1 - t0).count();
    cached = secs > 0 ? static_cast<double>(c1 - c0) / secs : 1e9;
  });
  return cached;
}

}  // namespace hwstar::hw
