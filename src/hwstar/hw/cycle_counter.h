#ifndef HWSTAR_HW_CYCLE_COUNTER_H_
#define HWSTAR_HW_CYCLE_COUNTER_H_

#include <cstdint>

namespace hwstar::hw {

/// Reads the CPU timestamp counter (rdtsc on x86); falls back to a
/// steady-clock-derived pseudo-cycle count elsewhere. Only differences are
/// meaningful; the unit is "reference cycles".
uint64_t ReadCycleCounter();

/// Estimates the counter frequency in Hz by timing a short sleep. Cached
/// after the first call.
double EstimateCycleCounterHz();

}  // namespace hwstar::hw

#endif  // HWSTAR_HW_CYCLE_COUNTER_H_
