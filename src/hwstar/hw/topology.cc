#include "hwstar/hw/topology.h"

#include <fstream>
#include <sstream>
#include <thread>

namespace hwstar::hw {

namespace {

/// Reads a whole small sysfs file; returns empty string when unreadable.
std::string ReadSysFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return "";
  std::string content;
  std::getline(in, content);
  return content;
}

/// Parses sizes of the form "32K", "8192K", "1M".
uint64_t ParseSize(const std::string& s) {
  if (s.empty()) return 0;
  uint64_t value = 0;
  size_t i = 0;
  while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
    value = value * 10 + static_cast<uint64_t>(s[i] - '0');
    ++i;
  }
  if (i < s.size()) {
    if (s[i] == 'K' || s[i] == 'k') value <<= 10;
    if (s[i] == 'M' || s[i] == 'm') value <<= 20;
    if (s[i] == 'G' || s[i] == 'g') value <<= 30;
  }
  return value;
}

std::vector<CacheLevelInfo> FallbackCaches() {
  // Generic 2013-era server core: 32KB L1d, 256KB L2, 8MB shared L3.
  return {
      {1, "Data", 32 * 1024, 64, 8, false},
      {2, "Unified", 256 * 1024, 64, 8, false},
      {3, "Unified", 8 * 1024 * 1024, 64, 16, true},
  };
}

}  // namespace

std::string CpuIsaFeatures::ToString() const {
  std::string out;
  if (sse42) out += "sse4.2 ";
  if (avx2) out += "avx2 ";
  if (avx512f) out += "avx512f ";
  if (out.empty()) return "none";
  out.pop_back();  // trailing space
  return out;
}

CpuIsaFeatures DetectIsaFeatures() {
  CpuIsaFeatures isa;
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  isa.sse42 = __builtin_cpu_supports("sse4.2") != 0;
  isa.avx2 = __builtin_cpu_supports("avx2") != 0;
  isa.avx512f = __builtin_cpu_supports("avx512f") != 0;
#endif
  return isa;
}

uint64_t CpuTopology::CacheSizeBytes(int level) const {
  for (const auto& c : caches) {
    if (c.level == level && (c.type == "Data" || c.type == "Unified")) {
      return c.size_bytes;
    }
  }
  return 0;
}

std::string CpuTopology::ToString() const {
  std::ostringstream os;
  os << "cores=" << logical_cores;
  for (const auto& c : caches) {
    os << " L" << c.level << (c.type == "Data" ? "d" : "")
       << "=" << (c.size_bytes >> 10) << "KB";
  }
  os << " isa=" << isa.ToString();
  return os.str();
}

CpuTopology DiscoverTopology() {
  CpuTopology topo;
  unsigned hc = std::thread::hardware_concurrency();
  topo.logical_cores = hc == 0 ? 1 : hc;
  topo.isa = DetectIsaFeatures();

  const std::string base = "/sys/devices/system/cpu/cpu0/cache/index";
  for (int idx = 0; idx < 8; ++idx) {
    std::string dir = base + std::to_string(idx) + "/";
    std::string level_s = ReadSysFile(dir + "level");
    if (level_s.empty()) break;
    CacheLevelInfo info;
    info.level = std::stoi(level_s);
    info.type = ReadSysFile(dir + "type");
    info.size_bytes = ParseSize(ReadSysFile(dir + "size"));
    std::string line_s = ReadSysFile(dir + "coherency_line_size");
    if (!line_s.empty()) info.line_bytes = static_cast<uint32_t>(std::stoul(line_s));
    std::string ways_s = ReadSysFile(dir + "ways_of_associativity");
    if (!ways_s.empty() && ways_s != "0") {
      info.associativity = static_cast<uint32_t>(std::stoul(ways_s));
    }
    info.shared = info.level >= 3;
    if (info.type == "Instruction") continue;  // data-path model only
    if (info.size_bytes == 0) continue;
    topo.caches.push_back(info);
  }
  if (topo.caches.empty()) topo.caches = FallbackCaches();
  return topo;
}

}  // namespace hwstar::hw
