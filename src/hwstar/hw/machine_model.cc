#include "hwstar/hw/machine_model.h"

#include <atomic>
#include <sstream>

namespace hwstar::hw {

namespace {
std::atomic<uint32_t> g_probe_group_size{16};
std::atomic<uint32_t> g_stream_batch_rows{4096};
std::atomic<uint32_t> g_stream_max_inflight{8};
std::atomic<uint64_t> g_stream_lateness_bound{1024};
std::atomic<uint32_t> g_epoch_advance_interval{64};
std::atomic<uint32_t> g_epoch_retire_batch{128};
}  // namespace

uint32_t DefaultProbeGroupSize() {
  return g_probe_group_size.load(std::memory_order_relaxed);
}

void SetDefaultProbeGroupSize(uint32_t group_size) {
  if (group_size < 1) group_size = 1;
  if (group_size > 64) group_size = 64;
  g_probe_group_size.store(group_size, std::memory_order_relaxed);
}

uint32_t DefaultStreamBatchRows() {
  return g_stream_batch_rows.load(std::memory_order_relaxed);
}

void SetDefaultStreamBatchRows(uint32_t rows) {
  if (rows < 64) rows = 64;
  if (rows > (1u << 20)) rows = 1u << 20;
  g_stream_batch_rows.store(rows, std::memory_order_relaxed);
}

uint32_t DefaultStreamMaxInflight() {
  return g_stream_max_inflight.load(std::memory_order_relaxed);
}

void SetDefaultStreamMaxInflight(uint32_t batches) {
  if (batches < 1) batches = 1;
  if (batches > 4096) batches = 4096;
  g_stream_max_inflight.store(batches, std::memory_order_relaxed);
}

uint64_t DefaultStreamLatenessBound() {
  return g_stream_lateness_bound.load(std::memory_order_relaxed);
}

void SetDefaultStreamLatenessBound(uint64_t bound) {
  g_stream_lateness_bound.store(bound, std::memory_order_relaxed);
}

uint32_t DefaultEpochAdvanceInterval() {
  return g_epoch_advance_interval.load(std::memory_order_relaxed);
}

void SetDefaultEpochAdvanceInterval(uint32_t retires) {
  if (retires < 1) retires = 1;
  if (retires > (1u << 20)) retires = 1u << 20;
  g_epoch_advance_interval.store(retires, std::memory_order_relaxed);
}

uint32_t DefaultEpochRetireBatch() {
  return g_epoch_retire_batch.load(std::memory_order_relaxed);
}

void SetDefaultEpochRetireBatch(uint32_t entries) {
  if (entries < 1) entries = 1;
  if (entries > (1u << 20)) entries = 1u << 20;
  g_epoch_retire_batch.store(entries, std::memory_order_relaxed);
}

void MachineModel::ApplyProbeDefaults() const {
  SetDefaultProbeGroupSize(probe_group_size);
}

void MachineModel::ApplyStreamDefaults() const {
  SetDefaultStreamBatchRows(stream_batch_rows);
  SetDefaultStreamMaxInflight(stream_max_inflight);
  SetDefaultStreamLatenessBound(stream_lateness_bound);
}

void MachineModel::ApplySyncDefaults() const {
  SetDefaultEpochAdvanceInterval(epoch_advance_interval);
  SetDefaultEpochRetireBatch(epoch_retire_batch);
}

MachineModel MachineModel::Server2013() {
  MachineModel m;
  m.name = "server2013";
  m.cores = 8;
  m.caches = {
      {32 * 1024, 64, 8, 4, false},
      {256 * 1024, 64, 8, 12, false},
      {20 * 1024 * 1024, 64, 16, 40, true},
  };
  m.tlb = {64, 4096, 30};
  m.dram_latency_cycles = 200;
  m.numa_nodes = 2;
  m.numa_remote_multiplier = 1.6;
  return m;
}

MachineModel MachineModel::Desktop() {
  MachineModel m;
  m.name = "desktop";
  m.cores = 4;
  m.caches = {
      {32 * 1024, 64, 8, 4, false},
      {256 * 1024, 64, 8, 12, false},
      {8 * 1024 * 1024, 64, 16, 36, true},
  };
  m.tlb = {64, 4096, 30};
  m.dram_latency_cycles = 180;
  m.numa_nodes = 1;
  m.numa_remote_multiplier = 1.0;
  return m;
}

MachineModel MachineModel::ManyCore() {
  MachineModel m;
  m.name = "manycore";
  m.cores = 32;
  m.caches = {
      {32 * 1024, 64, 8, 3, false},
      {512 * 1024, 64, 8, 15, false},
  };
  m.tlb = {32, 4096, 40};
  m.dram_latency_cycles = 300;
  m.numa_nodes = 4;
  m.numa_remote_multiplier = 2.0;
  // Small in-order-ish cores track fewer outstanding misses, and the
  // missing L3 means a micro-batch must fit the 512KB L2 alongside the
  // window state it updates.
  m.probe_group_size = 8;
  m.stream_batch_rows = 2048;
  return m;
}

MachineModel MachineModel::FromHost(const CpuTopology& topo) {
  MachineModel m = Server2013();
  m.name = "host";
  m.cores = topo.logical_cores;
  if (!topo.caches.empty()) {
    m.caches.clear();
    // Default per-level latencies by position in the hierarchy.
    const uint32_t kLatencies[] = {4, 12, 40, 90};
    size_t i = 0;
    for (const auto& c : topo.caches) {
      CacheLevelSpec spec;
      spec.size_bytes = c.size_bytes;
      spec.line_bytes = c.line_bytes;
      spec.associativity = c.associativity;
      spec.hit_latency_cycles = kLatencies[i < 4 ? i : 3];
      spec.shared = c.shared;
      m.caches.push_back(spec);
      ++i;
    }
  }
  return m;
}

std::string MachineModel::ToString() const {
  std::ostringstream os;
  os << name << ": cores=" << cores;
  int level = 1;
  for (const auto& c : caches) {
    os << " L" << level++ << "=" << (c.size_bytes >> 10) << "KB/"
       << c.hit_latency_cycles << "cy";
  }
  os << " dram=" << dram_latency_cycles << "cy numa=" << numa_nodes << "x"
     << numa_remote_multiplier;
  return os.str();
}

}  // namespace hwstar::hw
