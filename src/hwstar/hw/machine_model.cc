#include "hwstar/hw/machine_model.h"

#include <sstream>

#include "hwstar/tune/tunable.h"

namespace hwstar::hw {

// The old file-local `g_probe_group_size`-style atomics are gone: every
// default lives in the tune registry now, so clamping happens centrally
// in each Tunable's spec and the values show up in DumpText snapshots.

uint32_t DefaultProbeGroupSize() {
  return static_cast<uint32_t>(tune::ProbeGroupSize().Get());
}

void SetDefaultProbeGroupSize(uint32_t group_size) {
  tune::ProbeGroupSize().Set(group_size);
}

uint32_t DefaultAmacRingWidth() {
  return static_cast<uint32_t>(tune::AmacRingWidth().Get());
}

void SetDefaultAmacRingWidth(uint32_t ring_width) {
  tune::AmacRingWidth().Set(ring_width);
}

uint64_t DefaultAmacMinTableBytes() {
  return tune::AmacMinTableBytes().Get();
}

void SetDefaultAmacMinTableBytes(uint64_t bytes) {
  tune::AmacMinTableBytes().Set(bytes);
}

uint32_t DefaultStreamBatchRows() {
  return static_cast<uint32_t>(tune::StreamBatchRows().Get());
}

void SetDefaultStreamBatchRows(uint32_t rows) {
  tune::StreamBatchRows().Set(rows);
}

uint32_t DefaultStreamMaxInflight() {
  return static_cast<uint32_t>(tune::StreamMaxInflight().Get());
}

void SetDefaultStreamMaxInflight(uint32_t batches) {
  tune::StreamMaxInflight().Set(batches);
}

uint64_t DefaultStreamLatenessBound() {
  return tune::StreamLatenessBound().Get();
}

void SetDefaultStreamLatenessBound(uint64_t bound) {
  tune::StreamLatenessBound().Set(bound);
}

uint32_t DefaultEpochAdvanceInterval() {
  return static_cast<uint32_t>(tune::EpochAdvanceInterval().Get());
}

void SetDefaultEpochAdvanceInterval(uint32_t retires) {
  tune::EpochAdvanceInterval().Set(retires);
}

uint32_t DefaultEpochRetireBatch() {
  return static_cast<uint32_t>(tune::EpochRetireBatch().Get());
}

void SetDefaultEpochRetireBatch(uint32_t entries) {
  tune::EpochRetireBatch().Set(entries);
}

uint32_t DefaultSimdBackend() {
  return static_cast<uint32_t>(tune::SimdBackend().Get());
}

void SetDefaultSimdBackend(uint32_t backend) {
  tune::SimdBackend().Set(backend);
}

void MachineModel::ApplyAll() const {
  tune::ProbeGroupSize().Set(probe_group_size);
  tune::AmacRingWidth().Set(amac_ring_width);
  tune::AmacMinTableBytes().Set(amac_min_table_bytes);
  tune::StreamBatchRows().Set(stream_batch_rows);
  tune::StreamMaxInflight().Set(stream_max_inflight);
  tune::StreamLatenessBound().Set(stream_lateness_bound);
  tune::EpochAdvanceInterval().Set(epoch_advance_interval);
  tune::EpochRetireBatch().Set(epoch_retire_batch);
  tune::MorselRows().Set(morsel_rows);
  tune::SimdBackend().Set(simd_backend);
}

MachineModel MachineModel::Server2013() {
  MachineModel m;
  m.name = "server2013";
  m.cores = 8;
  m.caches = {
      {32 * 1024, 64, 8, 4, false},
      {256 * 1024, 64, 8, 12, false},
      {20 * 1024 * 1024, 64, 16, 40, true},
  };
  m.tlb = {64, 4096, 30};
  m.dram_latency_cycles = 200;
  m.numa_nodes = 2;
  m.numa_remote_multiplier = 1.6;
  return m;
}

MachineModel MachineModel::Desktop() {
  MachineModel m;
  m.name = "desktop";
  m.cores = 4;
  m.caches = {
      {32 * 1024, 64, 8, 4, false},
      {256 * 1024, 64, 8, 12, false},
      {8 * 1024 * 1024, 64, 16, 36, true},
  };
  m.tlb = {64, 4096, 30};
  m.dram_latency_cycles = 180;
  m.numa_nodes = 1;
  m.numa_remote_multiplier = 1.0;
  return m;
}

MachineModel MachineModel::ManyCore() {
  MachineModel m;
  m.name = "manycore";
  m.cores = 32;
  m.caches = {
      {32 * 1024, 64, 8, 3, false},
      {512 * 1024, 64, 8, 15, false},
  };
  m.tlb = {32, 4096, 40};
  m.dram_latency_cycles = 300;
  m.numa_nodes = 4;
  m.numa_remote_multiplier = 2.0;
  // Small in-order-ish cores track fewer outstanding misses, and the
  // missing L3 means a micro-batch must fit the 512KB L2 alongside the
  // window state it updates.
  m.probe_group_size = 8;
  m.amac_ring_width = 8;
  m.stream_batch_rows = 2048;
  // No shared LLC: a table is effectively DRAM-resident once past L2, so
  // the AMAC gate sits right above it.
  m.amac_min_table_bytes = 2 * 512 * 1024;
  return m;
}

/// The AMAC gate from a cache hierarchy: the footprint where chain steps
/// start missing whatever cache the table can actually occupy. With a
/// shared last-level cache every core competes for it, so the per-core
/// effective share (LLC / cores) is the knee; without one the last
/// private level is. The tunable's own bounds keep degenerate topologies
/// (tiny embedded caches, enormous LLCs) inside the measured-sane range.
static uint64_t DeriveAmacGateBytes(const std::vector<CacheLevelSpec>& caches,
                                    uint32_t cores) {
  if (caches.empty()) return 2u << 20;
  const CacheLevelSpec& last = caches.back();
  uint64_t bytes = last.size_bytes;
  if (last.shared && cores > 0) bytes /= cores;
  return tune::AmacMinTableBytes().Clamp(bytes);
}

MachineModel MachineModel::FromHost(const CpuTopology& topo) {
  MachineModel m = Server2013();
  m.name = "host";
  m.cores = topo.logical_cores;
  if (!topo.caches.empty()) {
    m.caches.clear();
    // Default per-level latencies by position in the hierarchy.
    const uint32_t kLatencies[] = {4, 12, 40, 90};
    size_t i = 0;
    for (const auto& c : topo.caches) {
      CacheLevelSpec spec;
      spec.size_bytes = c.size_bytes;
      spec.line_bytes = c.line_bytes;
      spec.associativity = c.associativity;
      spec.hit_latency_cycles = kLatencies[i < 4 ? i : 3];
      spec.shared = c.shared;
      m.caches.push_back(spec);
      ++i;
    }
  }
  // Feed the detected hierarchy into the AMAC footprint gate instead of
  // inheriting Server2013's constant: the whole point of FromHost is that
  // the knobs track the machine underfoot.
  m.amac_min_table_bytes = DeriveAmacGateBytes(m.caches, m.cores);
  // Record the cpuid answer instead of the hand-built models' "best"
  // request, so the tunables dump states which ISA this host actually ran.
  m.simd_backend = topo.isa.avx2 ? 2u : topo.isa.sse42 ? 1u : 0u;
  return m;
}

std::string MachineModel::ToString() const {
  std::ostringstream os;
  os << name << ": cores=" << cores;
  int level = 1;
  for (const auto& c : caches) {
    os << " L" << level++ << "=" << (c.size_bytes >> 10) << "KB/"
       << c.hit_latency_cycles << "cy";
  }
  os << " dram=" << dram_latency_cycles << "cy numa=" << numa_nodes << "x"
     << numa_remote_multiplier << " simd="
     << (simd_backend >= 2 ? "avx2" : simd_backend == 1 ? "sse4.2"
                                                        : "scalar");
  return os.str();
}

}  // namespace hwstar::hw
