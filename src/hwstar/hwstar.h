#ifndef HWSTAR_HWSTAR_H_
#define HWSTAR_HWSTAR_H_

/// Umbrella header: pulls in the whole public API. Fine-grained headers
/// remain the recommended includes for production use; this exists for
/// exploration and examples.

// Foundations.
#include "hwstar/common/bits.h"
#include "hwstar/common/hash.h"
#include "hwstar/common/logging.h"
#include "hwstar/common/random.h"
#include "hwstar/common/status.h"
#include "hwstar/common/timer.h"

// Hardware description and discovery.
#include "hwstar/hw/cycle_counter.h"
#include "hwstar/hw/machine_model.h"
#include "hwstar/hw/topology.h"

// Simulated hardware substrate.
#include "hwstar/sim/cache_sim.h"
#include "hwstar/sim/coherence.h"
#include "hwstar/sim/energy_model.h"
#include "hwstar/sim/flash_model.h"
#include "hwstar/sim/hierarchy.h"
#include "hwstar/sim/memory_trace.h"
#include "hwstar/sim/numa_model.h"
#include "hwstar/sim/offload_model.h"
#include "hwstar/sim/prefetcher.h"
#include "hwstar/sim/roofline.h"
#include "hwstar/sim/tlb.h"

// Memory management.
#include "hwstar/mem/aligned.h"
#include "hwstar/mem/arena.h"
#include "hwstar/mem/memory_pool.h"
#include "hwstar/mem/numa_allocator.h"

// Synchronization: epoch-based reclamation and optimistic latches.
#include "hwstar/sync/epoch.h"
#include "hwstar/sync/optlock.h"

// Self-tuning: the knob substrate, the offline calibrator, the online
// controller.
#include "hwstar/tune/calibrator.h"
#include "hwstar/tune/controller.h"
#include "hwstar/tune/tunable.h"

// Parallel execution.
#include "hwstar/exec/affinity.h"
#include "hwstar/exec/executor.h"
#include "hwstar/exec/morsel.h"

// Observability: bounded lock-free telemetry.
#include "hwstar/obs/histogram.h"
#include "hwstar/obs/metric.h"
#include "hwstar/obs/registry.h"

// Storage layouts and compression.
#include "hwstar/storage/column.h"
#include "hwstar/storage/column_store.h"
#include "hwstar/storage/compression.h"
#include "hwstar/storage/pax.h"
#include "hwstar/storage/row_store.h"
#include "hwstar/storage/table.h"
#include "hwstar/storage/types.h"

// Operators and index structures.
#include "hwstar/ops/aggregation.h"
#include "hwstar/ops/art.h"
#include "hwstar/ops/bloom_filter.h"
#include "hwstar/ops/btree.h"
#include "hwstar/ops/concurrent_hash_table.h"
#include "hwstar/ops/hash_table.h"
#include "hwstar/ops/hot_cold.h"
#include "hwstar/ops/join_nop.h"
#include "hwstar/ops/join_radix.h"
#include "hwstar/ops/join_sort_merge.h"
#include "hwstar/ops/merge.h"
#include "hwstar/ops/partition.h"
#include "hwstar/ops/relation.h"
#include "hwstar/ops/selection.h"
#include "hwstar/ops/sort.h"
#include "hwstar/ops/topk.h"

// Embedded key-value store.
#include "hwstar/kv/kv_store.h"
#include "hwstar/kv/tiered_store.h"

// Query engine.
#include "hwstar/engine/expression.h"
#include "hwstar/engine/fused.h"
#include "hwstar/engine/join_query.h"
#include "hwstar/engine/parallel.h"
#include "hwstar/engine/plan.h"
#include "hwstar/engine/planner.h"
#include "hwstar/engine/vectorized.h"
#include "hwstar/engine/volcano.h"

// Streaming: continuous queries on the Executor.
#include "hwstar/stream/join.h"
#include "hwstar/stream/operator.h"
#include "hwstar/stream/pipeline.h"
#include "hwstar/stream/source.h"
#include "hwstar/stream/stream_batch.h"
#include "hwstar/stream/watermark.h"
#include "hwstar/stream/window.h"

// Request-serving front end.
#include "hwstar/svc/admission.h"
#include "hwstar/svc/batcher.h"
#include "hwstar/svc/metrics.h"
#include "hwstar/svc/overload_policy.h"
#include "hwstar/svc/request.h"
#include "hwstar/svc/service.h"

// Workload generation and measurement.
#include "hwstar/perf/counters.h"
#include "hwstar/perf/harness.h"
#include "hwstar/perf/report.h"
#include "hwstar/workload/distributions.h"
#include "hwstar/workload/tpch_like.h"
#include "hwstar/workload/ycsb_like.h"

#endif  // HWSTAR_HWSTAR_H_
