#include "hwstar/simd/kernels.h"

#include "hwstar/common/hash.h"

// The vector bodies are compiled with function-level target attributes so
// the library's baseline stays portable x86-64: only these functions carry
// AVX2/SSE4.2 code, and they are only reached when BestSupported() said the
// host executes them. HWSTAR_DISABLE_SIMD (the forced-portable CI leg),
// non-x86 targets, and TSan builds compile the scalar bodies alone.
#if !defined(HWSTAR_DISABLE_SIMD) && !defined(__SANITIZE_THREAD__) && \
    (defined(__x86_64__) || defined(__i386__)) &&                     \
    (defined(__GNUC__) || defined(__clang__))
#define HWSTAR_SIMD_X86 1
#include <immintrin.h>
#define HWSTAR_TARGET_AVX2 __attribute__((target("avx2")))
#define HWSTAR_TARGET_SSE42 __attribute__((target("sse4.2")))
#endif

namespace hwstar::simd {

namespace {

// --- Scalar bodies (the reference semantics; always compiled) --------------

void Mix64BatchScalar(const uint64_t* keys, size_t n, uint64_t* out,
                      uint64_t x) {
  for (size_t i = 0; i < n; ++i) out[i] = Mix64(keys[i] ^ x);
}

void BuildRangeBitmapScalar(const int64_t* v, size_t n, int64_t lo,
                            int64_t hi, uint64_t* words) {
  const size_t num_words = (n + 63) / 64;
  for (size_t w = 0; w < num_words; ++w) words[w] = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t bit =
        static_cast<uint64_t>(v[i] >= lo) & static_cast<uint64_t>(v[i] < hi);
    words[i >> 6] |= bit << (i & 63);
  }
}

uint64_t CountInRangeScalar(const int64_t* v, size_t n, int64_t lo,
                            int64_t hi) {
  uint64_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    count +=
        static_cast<uint64_t>(v[i] >= lo) & static_cast<uint64_t>(v[i] < hi);
  }
  return count;
}

int64_t SumScalar(const int64_t* v, size_t n) {
  // Accumulate unsigned so the wrap is defined; the result is the same
  // mod-2^64 value a wrapping signed loop produces.
  uint64_t sum = 0;
  for (size_t i = 0; i < n; ++i) sum += static_cast<uint64_t>(v[i]);
  return static_cast<int64_t>(sum);
}

int64_t MinScalar(const int64_t* v, size_t n) {
  int64_t best = v[0];
  for (size_t i = 1; i < n; ++i) best = v[i] < best ? v[i] : best;
  return best;
}

int64_t MaxScalar(const int64_t* v, size_t n) {
  int64_t best = v[0];
  for (size_t i = 1; i < n; ++i) best = v[i] > best ? v[i] : best;
  return best;
}

bool TestBlock512Scalar(const uint64_t* block, const uint64_t* mask) {
  for (int w = 0; w < 8; ++w) {
    if ((block[w] & mask[w]) != mask[w]) return false;
  }
  return true;
}

size_t FindKeyOrEmptyScalar(const uint64_t* slots, size_t n, uint64_t key,
                            uint64_t empty) {
  for (size_t i = 0; i < n; ++i) {
    if (slots[i] == key || slots[i] == empty) return i;
  }
  return n;
}

#if defined(HWSTAR_SIMD_X86)

// --- AVX2 bodies: 4 x 64-bit lanes -----------------------------------------

/// 64x64->low-64 multiply from three 32x32 widening multiplies (AVX2 has
/// no vpmullq): lo + ((a_lo*b_hi + a_hi*b_lo) << 32), exact mod 2^64.
HWSTAR_TARGET_AVX2 inline __m256i MulLo64Avx2(__m256i a, __m256i b) {
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(a, b_hi), _mm256_mul_epu32(a_hi, b));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

HWSTAR_TARGET_AVX2 inline __m256i Mix64Avx2(__m256i k, __m256i c1,
                                            __m256i c2) {
  k = _mm256_xor_si256(k, _mm256_srli_epi64(k, 33));
  k = MulLo64Avx2(k, c1);
  k = _mm256_xor_si256(k, _mm256_srli_epi64(k, 33));
  k = MulLo64Avx2(k, c2);
  return _mm256_xor_si256(k, _mm256_srli_epi64(k, 33));
}

HWSTAR_TARGET_AVX2 void Mix64BatchAvx2(const uint64_t* keys, size_t n,
                                       uint64_t* out, uint64_t x) {
  const __m256i c1 = _mm256_set1_epi64x(
      static_cast<int64_t>(0xff51afd7ed558ccdULL));
  const __m256i c2 = _mm256_set1_epi64x(
      static_cast<int64_t>(0xc4ceb9fe1a85ec53ULL));
  const __m256i vx = _mm256_set1_epi64x(static_cast<int64_t>(x));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i k = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(keys + i));
    k = Mix64Avx2(_mm256_xor_si256(k, vx), c1, c2);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), k);
  }
  for (; i < n; ++i) out[i] = Mix64(keys[i] ^ x);
}

/// Lane predicate (v >= lo) & (v < hi) as an all-ones/all-zeros mask:
/// andnot(lo > v, hi > v) with signed compares, matching the scalar
/// int64_t comparisons bit for bit.
HWSTAR_TARGET_AVX2 inline __m256i InRangeAvx2(__m256i v, __m256i vlo,
                                              __m256i vhi) {
  return _mm256_andnot_si256(_mm256_cmpgt_epi64(vlo, v),
                             _mm256_cmpgt_epi64(vhi, v));
}

HWSTAR_TARGET_AVX2 void BuildRangeBitmapAvx2(const int64_t* v, size_t n,
                                             int64_t lo, int64_t hi,
                                             uint64_t* words) {
  const __m256i vlo = _mm256_set1_epi64x(lo);
  const __m256i vhi = _mm256_set1_epi64x(hi);
  size_t i = 0;
  size_t w = 0;
  for (; i + 64 <= n; i += 64, ++w) {
    uint64_t word = 0;
    for (uint32_t j = 0; j < 16; ++j) {
      const __m256i x = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(v + i + 4 * j));
      const uint32_t m = static_cast<uint32_t>(
          _mm256_movemask_pd(_mm256_castsi256_pd(InRangeAvx2(x, vlo, vhi))));
      word |= static_cast<uint64_t>(m) << (4 * j);
    }
    words[w] = word;
  }
  if (i < n) {
    uint64_t word = 0;
    for (size_t t = i; t < n; ++t) {
      const uint64_t bit = static_cast<uint64_t>(v[t] >= lo) &
                           static_cast<uint64_t>(v[t] < hi);
      word |= bit << (t - i);
    }
    words[w] = word;
  }
}

HWSTAR_TARGET_AVX2 uint64_t CountInRangeAvx2(const int64_t* v, size_t n,
                                             int64_t lo, int64_t hi) {
  const __m256i vlo = _mm256_set1_epi64x(lo);
  const __m256i vhi = _mm256_set1_epi64x(hi);
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    // Passing lanes are all-ones (-1); subtracting counts them.
    acc = _mm256_sub_epi64(acc, InRangeAvx2(x, vlo, vhi));
  }
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  uint64_t count = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) {
    count +=
        static_cast<uint64_t>(v[i] >= lo) & static_cast<uint64_t>(v[i] < hi);
  }
  return count;
}

HWSTAR_TARGET_AVX2 int64_t SumAvx2(const int64_t* v, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_epi64(
        acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i)));
  }
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  uint64_t sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) sum += static_cast<uint64_t>(v[i]);
  return static_cast<int64_t>(sum);
}

HWSTAR_TARGET_AVX2 int64_t MinAvx2(const int64_t* v, size_t n) {
  if (n < 4) return MinScalar(v, n);
  __m256i best = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v));
  size_t i = 4;
  for (; i + 4 <= n; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    best = _mm256_blendv_epi8(best, x, _mm256_cmpgt_epi64(best, x));
  }
  alignas(32) int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), best);
  int64_t out = MinScalar(lanes, 4);
  for (; i < n; ++i) out = v[i] < out ? v[i] : out;
  return out;
}

HWSTAR_TARGET_AVX2 int64_t MaxAvx2(const int64_t* v, size_t n) {
  if (n < 4) return MaxScalar(v, n);
  __m256i best = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v));
  size_t i = 4;
  for (; i + 4 <= n; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    best = _mm256_blendv_epi8(best, x, _mm256_cmpgt_epi64(x, best));
  }
  alignas(32) int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), best);
  int64_t out = MaxScalar(lanes, 4);
  for (; i < n; ++i) out = v[i] > out ? v[i] : out;
  return out;
}

HWSTAR_TARGET_AVX2 bool TestBlock512Avx2(const uint64_t* block,
                                         const uint64_t* mask) {
  const __m256i b0 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(block));
  const __m256i m0 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mask));
  const __m256i b1 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(block + 4));
  const __m256i m1 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mask + 4));
  // testc(a, b) == 1 iff (~a & b) is all zero, i.e. b's bits all in a.
  return (_mm256_testc_si256(b0, m0) & _mm256_testc_si256(b1, m1)) != 0;
}

HWSTAR_TARGET_AVX2 size_t FindKeyOrEmptyAvx2(const uint64_t* slots, size_t n,
                                             uint64_t key, uint64_t empty) {
  const __m256i vkey = _mm256_set1_epi64x(static_cast<int64_t>(key));
  const __m256i vempty = _mm256_set1_epi64x(static_cast<int64_t>(empty));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(slots + i));
    const __m256i hit = _mm256_or_si256(_mm256_cmpeq_epi64(x, vkey),
                                        _mm256_cmpeq_epi64(x, vempty));
    const uint32_t m = static_cast<uint32_t>(
        _mm256_movemask_pd(_mm256_castsi256_pd(hit)));
    if (m != 0) return i + static_cast<uint32_t>(__builtin_ctz(m));
  }
  for (; i < n; ++i) {
    if (slots[i] == key || slots[i] == empty) return i;
  }
  return n;
}

// --- SSE4.2 bodies: 2 x 64-bit lanes ---------------------------------------

HWSTAR_TARGET_SSE42 inline __m128i MulLo64Sse(__m128i a, __m128i b) {
  const __m128i a_hi = _mm_srli_epi64(a, 32);
  const __m128i b_hi = _mm_srli_epi64(b, 32);
  const __m128i lo = _mm_mul_epu32(a, b);
  const __m128i cross =
      _mm_add_epi64(_mm_mul_epu32(a, b_hi), _mm_mul_epu32(a_hi, b));
  return _mm_add_epi64(lo, _mm_slli_epi64(cross, 32));
}

HWSTAR_TARGET_SSE42 void Mix64BatchSse(const uint64_t* keys, size_t n,
                                       uint64_t* out, uint64_t x) {
  const __m128i c1 =
      _mm_set1_epi64x(static_cast<int64_t>(0xff51afd7ed558ccdULL));
  const __m128i c2 =
      _mm_set1_epi64x(static_cast<int64_t>(0xc4ceb9fe1a85ec53ULL));
  const __m128i vx = _mm_set1_epi64x(static_cast<int64_t>(x));
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    __m128i k =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys + i));
    k = _mm_xor_si128(k, vx);
    k = _mm_xor_si128(k, _mm_srli_epi64(k, 33));
    k = MulLo64Sse(k, c1);
    k = _mm_xor_si128(k, _mm_srli_epi64(k, 33));
    k = MulLo64Sse(k, c2);
    k = _mm_xor_si128(k, _mm_srli_epi64(k, 33));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), k);
  }
  for (; i < n; ++i) out[i] = Mix64(keys[i] ^ x);
}

HWSTAR_TARGET_SSE42 inline __m128i InRangeSse(__m128i v, __m128i vlo,
                                              __m128i vhi) {
  return _mm_andnot_si128(_mm_cmpgt_epi64(vlo, v), _mm_cmpgt_epi64(vhi, v));
}

HWSTAR_TARGET_SSE42 void BuildRangeBitmapSse(const int64_t* v, size_t n,
                                             int64_t lo, int64_t hi,
                                             uint64_t* words) {
  const __m128i vlo = _mm_set1_epi64x(lo);
  const __m128i vhi = _mm_set1_epi64x(hi);
  size_t i = 0;
  size_t w = 0;
  for (; i + 64 <= n; i += 64, ++w) {
    uint64_t word = 0;
    for (uint32_t j = 0; j < 32; ++j) {
      const __m128i x = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(v + i + 2 * j));
      const uint32_t m = static_cast<uint32_t>(
          _mm_movemask_pd(_mm_castsi128_pd(InRangeSse(x, vlo, vhi))));
      word |= static_cast<uint64_t>(m) << (2 * j);
    }
    words[w] = word;
  }
  if (i < n) {
    uint64_t word = 0;
    for (size_t t = i; t < n; ++t) {
      const uint64_t bit = static_cast<uint64_t>(v[t] >= lo) &
                           static_cast<uint64_t>(v[t] < hi);
      word |= bit << (t - i);
    }
    words[w] = word;
  }
}

HWSTAR_TARGET_SSE42 uint64_t CountInRangeSse(const int64_t* v, size_t n,
                                             int64_t lo, int64_t hi) {
  const __m128i vlo = _mm_set1_epi64x(lo);
  const __m128i vhi = _mm_set1_epi64x(hi);
  __m128i acc = _mm_setzero_si128();
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i x =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + i));
    acc = _mm_sub_epi64(acc, InRangeSse(x, vlo, vhi));
  }
  alignas(16) uint64_t lanes[2];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), acc);
  uint64_t count = lanes[0] + lanes[1];
  for (; i < n; ++i) {
    count +=
        static_cast<uint64_t>(v[i] >= lo) & static_cast<uint64_t>(v[i] < hi);
  }
  return count;
}

HWSTAR_TARGET_SSE42 int64_t SumSse(const int64_t* v, size_t n) {
  __m128i acc = _mm_setzero_si128();
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    acc = _mm_add_epi64(
        acc, _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + i)));
  }
  alignas(16) uint64_t lanes[2];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), acc);
  uint64_t sum = lanes[0] + lanes[1];
  for (; i < n; ++i) sum += static_cast<uint64_t>(v[i]);
  return static_cast<int64_t>(sum);
}

HWSTAR_TARGET_SSE42 int64_t MinSse(const int64_t* v, size_t n) {
  if (n < 2) return MinScalar(v, n);
  __m128i best = _mm_loadu_si128(reinterpret_cast<const __m128i*>(v));
  size_t i = 2;
  for (; i + 2 <= n; i += 2) {
    const __m128i x =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + i));
    best = _mm_blendv_epi8(best, x, _mm_cmpgt_epi64(best, x));
  }
  alignas(16) int64_t lanes[2];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), best);
  int64_t out = lanes[0] < lanes[1] ? lanes[0] : lanes[1];
  for (; i < n; ++i) out = v[i] < out ? v[i] : out;
  return out;
}

HWSTAR_TARGET_SSE42 int64_t MaxSse(const int64_t* v, size_t n) {
  if (n < 2) return MaxScalar(v, n);
  __m128i best = _mm_loadu_si128(reinterpret_cast<const __m128i*>(v));
  size_t i = 2;
  for (; i + 2 <= n; i += 2) {
    const __m128i x =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + i));
    best = _mm_blendv_epi8(best, x, _mm_cmpgt_epi64(x, best));
  }
  alignas(16) int64_t lanes[2];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), best);
  int64_t out = lanes[0] > lanes[1] ? lanes[0] : lanes[1];
  for (; i < n; ++i) out = v[i] > out ? v[i] : out;
  return out;
}

HWSTAR_TARGET_SSE42 bool TestBlock512Sse(const uint64_t* block,
                                         const uint64_t* mask) {
  int ok = 1;
  for (int w = 0; w < 8; w += 2) {
    const __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + w));
    const __m128i m =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(mask + w));
    ok &= _mm_testc_si128(b, m);
  }
  return ok != 0;
}

HWSTAR_TARGET_SSE42 size_t FindKeyOrEmptySse(const uint64_t* slots, size_t n,
                                             uint64_t key, uint64_t empty) {
  const __m128i vkey = _mm_set1_epi64x(static_cast<int64_t>(key));
  const __m128i vempty = _mm_set1_epi64x(static_cast<int64_t>(empty));
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i x =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(slots + i));
    const __m128i hit = _mm_or_si128(_mm_cmpeq_epi64(x, vkey),
                                     _mm_cmpeq_epi64(x, vempty));
    const uint32_t m =
        static_cast<uint32_t>(_mm_movemask_pd(_mm_castsi128_pd(hit)));
    if (m != 0) return i + static_cast<uint32_t>(__builtin_ctz(m));
  }
  for (; i < n; ++i) {
    if (slots[i] == key || slots[i] == empty) return i;
  }
  return n;
}

#endif  // HWSTAR_SIMD_X86

}  // namespace

void Mix64Batch(Backend b, const uint64_t* keys, size_t n, uint64_t* out,
                uint64_t xor_mask) {
#if defined(HWSTAR_SIMD_X86)
  if (b == Backend::kAvx2) return Mix64BatchAvx2(keys, n, out, xor_mask);
  if (b == Backend::kSse42) return Mix64BatchSse(keys, n, out, xor_mask);
#else
  (void)b;
#endif
  Mix64BatchScalar(keys, n, out, xor_mask);
}

void BuildRangeBitmap(Backend b, const int64_t* values, size_t n, int64_t lo,
                      int64_t hi, uint64_t* words) {
#if defined(HWSTAR_SIMD_X86)
  if (b == Backend::kAvx2) return BuildRangeBitmapAvx2(values, n, lo, hi, words);
  if (b == Backend::kSse42) return BuildRangeBitmapSse(values, n, lo, hi, words);
#else
  (void)b;
#endif
  BuildRangeBitmapScalar(values, n, lo, hi, words);
}

uint64_t CountInRange(Backend b, const int64_t* values, size_t n, int64_t lo,
                      int64_t hi) {
#if defined(HWSTAR_SIMD_X86)
  if (b == Backend::kAvx2) return CountInRangeAvx2(values, n, lo, hi);
  if (b == Backend::kSse42) return CountInRangeSse(values, n, lo, hi);
#else
  (void)b;
#endif
  return CountInRangeScalar(values, n, lo, hi);
}

int64_t Sum(Backend b, const int64_t* values, size_t n) {
#if defined(HWSTAR_SIMD_X86)
  if (b == Backend::kAvx2) return SumAvx2(values, n);
  if (b == Backend::kSse42) return SumSse(values, n);
#else
  (void)b;
#endif
  return SumScalar(values, n);
}

int64_t Min(Backend b, const int64_t* values, size_t n) {
#if defined(HWSTAR_SIMD_X86)
  if (b == Backend::kAvx2) return MinAvx2(values, n);
  if (b == Backend::kSse42) return MinSse(values, n);
#else
  (void)b;
#endif
  return MinScalar(values, n);
}

int64_t Max(Backend b, const int64_t* values, size_t n) {
#if defined(HWSTAR_SIMD_X86)
  if (b == Backend::kAvx2) return MaxAvx2(values, n);
  if (b == Backend::kSse42) return MaxSse(values, n);
#else
  (void)b;
#endif
  return MaxScalar(values, n);
}

bool TestBlock512(Backend b, const uint64_t* block, const uint64_t* mask) {
#if defined(HWSTAR_SIMD_X86)
  if (b == Backend::kAvx2) return TestBlock512Avx2(block, mask);
  if (b == Backend::kSse42) return TestBlock512Sse(block, mask);
#else
  (void)b;
#endif
  return TestBlock512Scalar(block, mask);
}

size_t FindKeyOrEmpty(Backend b, const uint64_t* slots, size_t n,
                      uint64_t key, uint64_t empty) {
#if defined(HWSTAR_SIMD_X86)
  if (b == Backend::kAvx2) return FindKeyOrEmptyAvx2(slots, n, key, empty);
  if (b == Backend::kSse42) return FindKeyOrEmptySse(slots, n, key, empty);
#else
  (void)b;
#endif
  return FindKeyOrEmptyScalar(slots, n, key, empty);
}

}  // namespace hwstar::simd

namespace hwstar {

// Declared in common/hash.h next to the scalar Mix64 it batches; defined
// here so common/ stays free of ISA dispatch.
void Mix64Batch(const uint64_t* keys, size_t n, uint64_t* out) {
  simd::Mix64Batch(simd::ActiveBackend(), keys, n, out);
}

}  // namespace hwstar
