#include "hwstar/simd/backend.h"

#include <algorithm>

#include "hwstar/hw/topology.h"
#include "hwstar/tune/tunable.h"

namespace hwstar::simd {

const char* BackendName(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kSse42:
      return "sse42";
    case Backend::kAvx2:
      return "avx2";
  }
  return "unknown";
}

Backend BestSupported() {
#if defined(HWSTAR_DISABLE_SIMD) || defined(__SANITIZE_THREAD__) || \
    !(defined(__x86_64__) || defined(__i386__))
  return Backend::kScalar;
#else
  // cpuid once; the answer cannot change while the process runs.
  static const Backend best = [] {
    const hw::CpuIsaFeatures isa = hw::DetectIsaFeatures();
    if (isa.avx2) return Backend::kAvx2;
    if (isa.sse42) return Backend::kSse42;
    return Backend::kScalar;
  }();
  return best;
#endif
}

Backend ActiveBackend() {
  const uint64_t requested = tune::SimdBackend().Get();
  const uint64_t best = static_cast<uint64_t>(BestSupported());
  return static_cast<Backend>(std::min(requested, best));
}

}  // namespace hwstar::simd
