#ifndef HWSTAR_SIMD_KERNELS_H_
#define HWSTAR_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "hwstar/simd/backend.h"

namespace hwstar::simd {

/// Explicit data-parallel kernels for the data-plane inner loops, with
/// runtime ISA dispatch. Design rules, in force for every kernel here:
///
///  1. *Bit-identity.* Each kernel computes exactly what the scalar loop
///     it replaces computes — same values, same observable order. The
///     vector backends change lane width, never semantics, so a
///     tune::SimdBackend flip mid-run is invisible in results. (Integer
///     arithmetic is mod-2^64 associative, so even the sum reduction is
///     exact.)
///  2. *Runtime dispatch, compile-time bodies.* The hot bodies are built
///     with target attributes (AVX2 / SSE4.2) inside kernels.cc; the
///     baseline build stays portable and the backend is picked per batch
///     from one relaxed load (ActiveBackend), or passed in by callers
///     that hoisted it.
///  3. *No out-of-bounds reads.* Vector loads cover only full lanes;
///     ragged tails run the scalar body. Safe under ASan.
///
/// The overloads taking an explicit Backend are the hot-path form (the
/// caller hoists ActiveBackend() out of its loop); the short forms fetch
/// it themselves.

// --- Batch hashing ---------------------------------------------------------

/// out[i] = common/hash.h Mix64(keys[i] ^ xor_mask). The xor_mask serves
/// the Bloom filters' second hash (Mix64(key ^ C)); pass 0 for plain
/// Mix64. 4-wide under AVX2 (64x64 mullo emulated with three 32x32
/// widening multiplies), 2-wide under SSE4.2.
void Mix64Batch(Backend b, const uint64_t* keys, size_t n, uint64_t* out,
                uint64_t xor_mask = 0);

// --- Selection scans -------------------------------------------------------

/// words[w] bit (i & 63) = (values[i] >= lo) & (values[i] < hi), LSB =
/// lowest index, exactly ops::BuildSelectionBitmap's layout. `words` must
/// hold (n + 63) / 64 entries; they are fully overwritten. Vector form:
/// signed 64-bit compares + movemask, 4 predicate bits per AVX2 compare
/// pair.
void BuildRangeBitmap(Backend b, const int64_t* values, size_t n, int64_t lo,
                      int64_t hi, uint64_t* words);

/// Count of values in [lo, hi) without materializing anything.
uint64_t CountInRange(Backend b, const int64_t* values, size_t n, int64_t lo,
                      int64_t hi);

// --- Columnar aggregates ---------------------------------------------------

/// Wrapping mod-2^64 sum — identical to the scalar `sum += v` loop.
int64_t Sum(Backend b, const int64_t* values, size_t n);

/// Min/Max over n > 0 values (callers guard the empty case).
int64_t Min(Backend b, const int64_t* values, size_t n);
int64_t Max(Backend b, const int64_t* values, size_t n);

// --- Blocked-Bloom block test ----------------------------------------------

/// (block[w] & mask[w]) == mask[w] for all 8 words — i.e. every probe bit
/// of a one-cache-line (512-bit) Bloom block is set. The vector backends
/// test the whole line with unrolled wide compares (vptest under AVX2)
/// instead of the scalar word-at-a-time early-exit walk; one branchless
/// line test composes with the group prefetch that already covers the
/// line's single miss.
bool TestBlock512(Backend b, const uint64_t* block, const uint64_t* mask);

// --- Hash-table slot scan --------------------------------------------------

/// Index of the first slot in slots[0, n) equal to `key` or to `empty`
/// (n if none): the linear-probe inner loop's "next interesting slot".
/// Vector compares scan 4 (AVX2) / 2 (SSE4.2) slots per step; the ragged
/// tail is scalar.
///
/// Concurrency contract: the loads here are *plain* (not atomic). The
/// caller (LinearProbeTable) treats the answer as an accelerator hint and
/// re-reads the nominated slot through its acquire-load protocol before
/// acting — a slot this scan skips was seen non-empty and non-matching,
/// and published keys are immutable, so skipping is always safe; any slot
/// it stops on is re-validated. Under TSan, BestSupported() is kScalar and
/// callers never reach this with a vector backend, keeping the
/// instrumented scalar path authoritative for the race checker.
size_t FindKeyOrEmpty(Backend b, const uint64_t* slots, size_t n,
                      uint64_t key, uint64_t empty);

}  // namespace hwstar::simd

#endif  // HWSTAR_SIMD_KERNELS_H_
