#ifndef HWSTAR_SIMD_BACKEND_H_
#define HWSTAR_SIMD_BACKEND_H_

#include <cstdint>

namespace hwstar::simd {

/// The data-parallel backends the simd kernels are compiled for, in
/// strictly increasing capability order (so "clamp to what the host
/// supports" is a min). Every kernel has all three implementations with
/// *bit-identical* results; the backend only changes how many lanes one
/// instruction covers, never what is computed. kScalar is always present
/// (and is the only backend compiled under HWSTAR_DISABLE_SIMD or on
/// non-x86 hosts).
enum class Backend : uint8_t {
  kScalar = 0,
  kSse42 = 1,  ///< 2 x 64-bit lanes (pcmpgtq needs SSE4.2)
  kAvx2 = 2,   ///< 4 x 64-bit lanes
};

/// Stable lowercase name for reports and bench labels.
const char* BackendName(Backend b);

/// The most capable backend this *build + host* can execute: runtime
/// cpuid capped by what was compiled in. Detected once; never changes.
/// Under HWSTAR_DISABLE_SIMD (the forced-portable CI leg), on non-x86
/// targets, and under ThreadSanitizer this is kScalar — TSan cannot see
/// through vector loads of atomic slot arrays, so sanitizer builds keep
/// the fully-instrumented scalar paths.
Backend BestSupported();

/// The backend the kernels should use right now: the tune::SimdBackend
/// knob clamped to BestSupported(). One relaxed atomic load + a min;
/// batch kernels read it once per batch (callers doing per-key work fetch
/// it once and pass it down). Forcing the knob above the host's
/// capability is legal and simply yields the best the host has — which is
/// what lets one test/bench matrix run unchanged on any machine.
Backend ActiveBackend();

/// Lanes of 64-bit work per vector op for a backend (1 for scalar).
inline constexpr uint32_t LaneCount(Backend b) {
  return b == Backend::kAvx2 ? 4u : b == Backend::kSse42 ? 2u : 1u;
}

}  // namespace hwstar::simd

#endif  // HWSTAR_SIMD_BACKEND_H_
