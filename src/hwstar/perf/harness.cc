#include "hwstar/perf/harness.h"

#include <algorithm>

#include "hwstar/common/timer.h"
#include "hwstar/perf/report.h"

namespace hwstar::perf {

Measurement MeasureRepeated(const std::function<void()>& fn, uint32_t reps,
                            uint32_t warmups) {
  for (uint32_t i = 0; i < warmups; ++i) fn();
  std::vector<double> times;
  times.reserve(reps);
  for (uint32_t i = 0; i < reps; ++i) {
    WallTimer timer;
    fn();
    times.push_back(timer.ElapsedSeconds());
  }
  std::sort(times.begin(), times.end());
  Measurement m;
  m.repetitions = reps;
  if (!times.empty()) {
    m.median_seconds = times[times.size() / 2];
    m.min_seconds = times.front();
    m.max_seconds = times.back();
  }
  return m;
}

void Experiment::AddRow(std::string label, CounterSet counters) {
  rows_.push_back(ExperimentRow{std::move(label), std::move(counters)});
}

void Experiment::PrintTable(
    const std::vector<std::string>& counter_names) const {
  std::vector<std::string> columns;
  columns.push_back("config");
  for (const auto& n : counter_names) columns.push_back(n);
  ReportTable table(name_, columns);
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.push_back(row.label);
    for (const auto& n : counter_names) {
      cells.push_back(ReportTable::Num(row.counters.Get(n)));
    }
    table.AddRow(std::move(cells));
  }
  table.Print();
}

}  // namespace hwstar::perf
