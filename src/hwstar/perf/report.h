#ifndef HWSTAR_PERF_REPORT_H_
#define HWSTAR_PERF_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace hwstar::perf {

/// A fixed-column text table for experiment output: every bench binary
/// prints one (or more) of these so EXPERIMENTS.md rows can be pasted
/// directly from bench output.
class ReportTable {
 public:
  ReportTable(std::string title, std::vector<std::string> columns);

  /// Adds a row of pre-rendered cells; must match the column count.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: renders doubles with 3 significant decimals and
  /// integers plainly.
  static std::string Num(double v);
  static std::string Num(uint64_t v);

  /// Renders the table with aligned columns.
  std::string ToString() const;

  /// Renders as CSV (header row + data rows) for plotting pipelines.
  /// Cells containing commas or quotes are quoted.
  std::string ToCsv() const;

  /// Prints to stdout.
  void Print() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hwstar::perf

#endif  // HWSTAR_PERF_REPORT_H_
