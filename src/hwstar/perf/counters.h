#ifndef HWSTAR_PERF_COUNTERS_H_
#define HWSTAR_PERF_COUNTERS_H_

#include <cstdint>
#include <map>
#include <string>

namespace hwstar::perf {

/// A bag of named metric values accumulated during a measured run: wall
/// time, derived throughputs, and -- when the run used the simulated
/// hierarchy -- miss ratios, remote fractions and energy. Doubles
/// throughout; names are free-form but the helpers below standardize the
/// common ones.
class CounterSet {
 public:
  void Set(const std::string& name, double value) { values_[name] = value; }
  void Add(const std::string& name, double value) { values_[name] += value; }

  /// Value or 0 when absent.
  double Get(const std::string& name) const;
  bool Has(const std::string& name) const {
    return values_.count(name) != 0;
  }

  const std::map<std::string, double>& values() const { return values_; }

  /// Merges (sums) another set into this one.
  void Merge(const CounterSet& other);

 private:
  std::map<std::string, double> values_;
};

/// Derived-metric helpers.
inline double TuplesPerSecond(uint64_t tuples, double seconds) {
  return seconds <= 0 ? 0.0 : static_cast<double>(tuples) / seconds;
}
inline double BytesPerSecond(uint64_t bytes, double seconds) {
  return seconds <= 0 ? 0.0 : static_cast<double>(bytes) / seconds;
}
inline double NanosPerTuple(double seconds, uint64_t tuples) {
  return tuples == 0 ? 0.0 : seconds * 1e9 / static_cast<double>(tuples);
}

}  // namespace hwstar::perf

#endif  // HWSTAR_PERF_COUNTERS_H_
