#include "hwstar/perf/counters.h"

namespace hwstar::perf {

double CounterSet::Get(const std::string& name) const {
  auto it = values_.find(name);
  return it == values_.end() ? 0.0 : it->second;
}

void CounterSet::Merge(const CounterSet& other) {
  for (const auto& [name, value] : other.values_) {
    values_[name] += value;
  }
}

}  // namespace hwstar::perf
