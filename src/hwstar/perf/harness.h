#ifndef HWSTAR_PERF_HARNESS_H_
#define HWSTAR_PERF_HARNESS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "hwstar/perf/counters.h"

namespace hwstar::perf {

/// Result of a repeated measurement.
struct Measurement {
  double median_seconds = 0;
  double min_seconds = 0;
  double max_seconds = 0;
  uint32_t repetitions = 0;
};

/// Runs `fn` `reps` times (after `warmups` unmeasured runs) and reports
/// median/min/max wall time. The repetition-and-median discipline is the
/// minimum the paper's "strict performance engineering" demands: a single
/// timing on a multicore machine is noise.
Measurement MeasureRepeated(const std::function<void()>& fn, uint32_t reps = 5,
                            uint32_t warmups = 1);

/// One measured configuration inside an experiment: a label plus counters.
struct ExperimentRow {
  std::string label;
  CounterSet counters;
};

/// Collects rows and emits a ReportTable over a chosen set of counter
/// names.
class Experiment {
 public:
  explicit Experiment(std::string name) : name_(std::move(name)) {}

  /// Adds a measured configuration.
  void AddRow(std::string label, CounterSet counters);

  /// Prints a table with the given counter columns (missing counters
  /// render as 0).
  void PrintTable(const std::vector<std::string>& counter_names) const;

  const std::vector<ExperimentRow>& rows() const { return rows_; }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::vector<ExperimentRow> rows_;
};

}  // namespace hwstar::perf

#endif  // HWSTAR_PERF_HARNESS_H_
