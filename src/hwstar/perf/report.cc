#include "hwstar/perf/report.h"

#include <cstdio>
#include <sstream>

#include "hwstar/common/macros.h"

namespace hwstar::perf {

ReportTable::ReportTable(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void ReportTable::AddRow(std::vector<std::string> cells) {
  HWSTAR_CHECK(cells.size() == columns_.size());
  rows_.push_back(std::move(cells));
}

std::string ReportTable::Num(double v) {
  std::ostringstream os;
  if (v == 0) {
    os << "0";
  } else if (v >= 1000 || v <= -1000) {
    os.precision(0);
    os << std::fixed << v;
  } else {
    os.precision(3);
    os << std::fixed << v;
  }
  return os.str();
}

std::string ReportTable::Num(uint64_t v) { return std::to_string(v); }

std::string ReportTable::ToString() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }
  std::ostringstream os;
  os << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      // Right-align all cells for numeric readability.
      for (size_t pad = cells[c].size(); pad < widths[c]; ++pad) os << ' ';
      os << cells[c];
    }
    os << "\n";
  };
  emit_row(columns_);
  size_t total = columns_.size() - 1;
  for (size_t w : widths) total += w + 1;
  for (size_t i = 0; i < total; ++i) os << '-';
  os << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string ReportTable::ToCsv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ',';
      const std::string& cell = cells[c];
      if (cell.find_first_of(",\"\n") != std::string::npos) {
        os << '"';
        for (char ch : cell) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << cell;
      }
    }
    os << '\n';
  };
  emit(columns_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void ReportTable::Print() const {
  std::fputs(ToString().c_str(), stdout);
  std::fputc('\n', stdout);
}

}  // namespace hwstar::perf
