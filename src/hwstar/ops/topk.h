#ifndef HWSTAR_OPS_TOPK_H_
#define HWSTAR_OPS_TOPK_H_

#include <cstdint>
#include <span>
#include <vector>

namespace hwstar::ops {

/// Top-k selection kernels: the k largest values of an unordered column,
/// returned in descending order. Three implementations of identical
/// semantics whose relative cost is decided by k's relation to the cache
/// and to n -- a recurring pattern in the proceedings' top-k query papers:
///
///  * TopKBySort      -- sort everything, take a prefix. O(n log n), the
///                       oblivious baseline; competitive only when k ~ n.
///  * TopKByHeap      -- bounded min-heap of k entries. O(n log k) worst
///                       case, but the heap root short-circuits most
///                       inputs with one predictable comparison once the
///                       heap holds large values; the heap stays
///                       cache-resident while k fits L1/L2.
///  * TopKByThreshold -- two-pass: sample to estimate the k-th value,
///                       filter the column branch-free against it, finish
///                       on the survivors. Trades a second sequential scan
///                       for data-independent control flow.
std::vector<uint64_t> TopKBySort(std::span<const uint64_t> values, uint64_t k);
std::vector<uint64_t> TopKByHeap(std::span<const uint64_t> values, uint64_t k);
std::vector<uint64_t> TopKByThreshold(std::span<const uint64_t> values,
                                      uint64_t k, uint64_t seed = 42);

}  // namespace hwstar::ops

#endif  // HWSTAR_OPS_TOPK_H_
