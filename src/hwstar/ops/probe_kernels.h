#ifndef HWSTAR_OPS_PROBE_KERNELS_H_
#define HWSTAR_OPS_PROBE_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>

#include "hwstar/common/macros.h"
#include "hwstar/hw/machine_model.h"

namespace hwstar::ops {

/// Memory-level-parallelism drivers for batched point lookups.
///
/// Every point lookup in the library is a dependent-load chain: hash ->
/// bucket line -> (maybe) next line. Executed one key at a time, each
/// cache miss in the chain is paid at full DRAM latency before the next
/// access is even issued, so throughput is bounded by latency, not
/// bandwidth. Modern cores can track ~10 outstanding misses per core;
/// these drivers restructure a *batch* of independent lookups so that
/// many chains are in flight at once, converting the probe phase from
/// latency-bound to miss-queue-bound (Balkesen et al., and the AMAC line
/// of work). Two interleaving disciplines are provided:
///
///  - Group Prefetching (GroupPrefetchLoop): process keys in groups of G.
///    Stage 1 hashes all G keys and issues a prefetch for each key's
///    first probe target; stage 2 walks each key's (short) chain. Best
///    when the chain almost always terminates within the prefetched
///    line(s): open-addressing tables at moderate load factors, blocked
///    bloom filters.
///
///  - AMAC (AmacLoop): a ring of K in-flight probe state machines,
///    advanced round-robin one stage at a time; each stage issues the
///    prefetch for its next dependent access and yields. A finished
///    machine is immediately refilled with the next key, so K misses stay
///    outstanding regardless of how long individual chains are. Best for
///    variable-length walks: chained buckets, multi-level index descents.
///
/// Group size is a compile-time constant inside the kernels (the staging
/// arrays must live in registers / L1 and the inner loops must unroll),
/// dispatched from a runtime value by WithProbeGroup. Callers pass 0 to
/// use the process-wide default: the tune::ProbeGroupSize knob (read here
/// via hw::DefaultProbeGroupSize), published by
/// hw::MachineModel::ApplyAll and re-measured by the tune::Calibrator.
/// The knob is re-read on every batch, so a calibration install takes
/// effect mid-run; results are bit-identical across a flip because group
/// width only changes which misses overlap, never what is probed.
///
/// Interaction with optimistic reads (hwstar/sync): the index FindBatch
/// kernels run these loops inside an OLC retry scope -- version
/// validation failures restart the *whole group's* descent, not a single
/// key's, so the interleaving discipline (and therefore the results and
/// the miss-overlap shape) is identical whether or not a writer is live.
/// The kernels themselves are oblivious to this: they see the same
/// lane-step structure either way, which is what keeps the latched and
/// latch-free paths bit-identical.

/// Group sizes the batched kernels are compiled for. Runtime requests are
/// rounded up to the next compiled size (and capped at the largest).
inline constexpr uint32_t kProbeGroupSizes[] = {4, 8, 16, 32};

/// Invokes body(std::integral_constant<uint32_t, G>{}) with G the
/// compiled group size for `group_size` (0 = process default).
template <typename Body>
HWSTAR_ALWAYS_INLINE decltype(auto) WithProbeGroup(uint32_t group_size,
                                                   Body&& body) {
  if (group_size == 0) group_size = hw::DefaultProbeGroupSize();
  if (group_size <= 4) return body(std::integral_constant<uint32_t, 4>{});
  if (group_size <= 8) return body(std::integral_constant<uint32_t, 8>{});
  if (group_size <= 16) return body(std::integral_constant<uint32_t, 16>{});
  return body(std::integral_constant<uint32_t, 32>{});
}

/// Group Prefetching driver. For each full group of G indexes,
/// stage1(lane, i) runs for all lanes (compute the probe target, stash
/// per-lane state, issue the prefetch), then stage2(lane, i) consumes in
/// the same lane order — by which time the G prefetches have had G-1
/// stage-1 executions to overlap with. The ragged tail (< G keys) runs
/// stage1 immediately followed by stage2 per key, i.e. the scalar path,
/// so results are defined for every n. Lane order is index order:
/// observable side effects of stage2 happen in exactly the order a scalar
/// loop would produce them.
template <uint32_t G, typename Stage1, typename Stage2>
HWSTAR_ALWAYS_INLINE void GroupPrefetchLoop(size_t n, Stage1&& stage1,
                                            Stage2&& stage2) {
  size_t i = 0;
  for (; i + G <= n; i += G) {
    for (uint32_t lane = 0; lane < G; ++lane) stage1(lane, i + lane);
    for (uint32_t lane = 0; lane < G; ++lane) stage2(lane, i + lane);
  }
  for (; i < n; ++i) {
    stage1(0, i);
    stage2(0, i);
  }
}

/// AMAC driver: K probe state machines advanced round-robin. The Job type
/// supplies:
///
///   struct State { ... };            // default-constructible
///   void Start(State&, size_t i);    // begin key i: hash + first prefetch
///   bool Step(State&);               // advance one stage, issuing the
///                                    // prefetch for the next dependent
///                                    // access; false when the key is done
///
/// Between a prefetch issued in one Step and the load that consumes it in
/// the next, up to K-1 other machines execute — that interval is the
/// latency-hiding window. Finished machines are refilled from the input
/// stream immediately, so the ring stays full until fewer than K keys
/// remain. Keys complete out of order; per-key results must be written to
/// per-key slots (or be order-insensitive, like a global match count).
template <uint32_t K, typename Job>
void AmacLoop(size_t n, Job&& job) {
  using State = typename std::decay_t<Job>::State;
  State ring[K];
  bool active[K] = {};
  size_t next = 0;
  uint32_t live = 0;
  const uint32_t width = static_cast<uint32_t>(n < K ? n : K);
  for (uint32_t k = 0; k < width; ++k) {
    job.Start(ring[k], next++);
    active[k] = true;
    ++live;
  }
  while (live > 0) {
    for (uint32_t k = 0; k < width; ++k) {
      if (!active[k]) continue;
      if (job.Step(ring[k])) continue;
      if (next < n) {
        job.Start(ring[k], next++);
      } else {
        active[k] = false;
        --live;
      }
    }
  }
}

}  // namespace hwstar::ops

#endif  // HWSTAR_OPS_PROBE_KERNELS_H_
